// Cross-module integration and property tests: deterministic replay,
// reorg/fair-exchange interplay, partitions mid-exchange, gossip orphan
// handling, and chain-wide invariants under the full protocol load.
#include <gtest/gtest.h>

#include "bcwan/directory.hpp"
#include "chain/miner.hpp"
#include "sim/scenario.hpp"

namespace bcwan {
namespace {

using util::str_bytes;

sim::ScenarioConfig fast_config(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 2;
  config.seed = seed;
  config.chain_params.pow_zero_bits = 4;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 10 * util::kSecond;
  config.recipient_funding = 30 * chain::kCoin;
  return config;
}

// --- Determinism: the whole stack replays bit-for-bit ---

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  sim::Scenario a(fast_config(123));
  sim::Scenario b(fast_config(123));
  a.bootstrap();
  b.bootstrap();
  a.run_exchanges(10, 30 * util::kMinute);
  b.run_exchanges(10, 30 * util::kMinute);
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].device_id, b.records()[i].device_id);
    EXPECT_EQ(a.records()[i].ephemeral_sent_at,
              b.records()[i].ephemeral_sent_at);
    EXPECT_EQ(a.records()[i].decrypted_at, b.records()[i].decrypted_at);
  }
  EXPECT_EQ(a.master_node().chain().tip_hash(),
            b.master_node().chain().tip_hash());
}

TEST(Determinism, DifferentSeedsDifferentTimelines) {
  sim::Scenario a(fast_config(1));
  sim::Scenario b(fast_config(2));
  a.bootstrap();
  b.bootstrap();
  a.run_exchanges(5, 30 * util::kMinute);
  b.run_exchanges(5, 30 * util::kMinute);
  // Chains diverge (different identities are impossible — seeds only drive
  // latencies/mining times — but block hashes must differ via timestamps).
  EXPECT_NE(a.master_node().chain().tip_hash(),
            b.master_node().chain().tip_hash());
}

// --- Chain invariants under full protocol load ---

TEST(Invariants, UtxoValueBoundedByIssuanceUnderLoad) {
  sim::Scenario s(fast_config(55));
  s.bootstrap();
  s.run_exchanges(10, 30 * util::kMinute);
  const auto& chain = s.master_node().chain();
  const chain::Amount issued =
      static_cast<chain::Amount>(chain.height()) *
      s.config().chain_params.block_reward;
  EXPECT_LE(chain.utxo().total_value(), issued);
  EXPECT_GT(chain.utxo().total_value(), 0);
}

TEST(Invariants, AllNodesConvergeAfterLoad) {
  sim::Scenario s(fast_config(56));
  s.bootstrap();
  s.run_exchanges(10, 30 * util::kMinute);
  // Drain all in-flight gossip, then compare tips.
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  const auto tip = s.master_node().chain().tip_hash();
  for (int a = 0; a < s.actor_count(); ++a) {
    EXPECT_EQ(s.actor_node(a).chain().tip_hash(), tip) << "actor " << a;
    EXPECT_EQ(s.actor_node(a).chain().utxo().total_value(),
              s.master_node().chain().utxo().total_value());
  }
}

TEST(Invariants, ValueConservationAcrossSettlement) {
  // recipient spend + gateway income + fees mined back = 0 net, i.e. the
  // recipient's loss >= the gateway's gain (difference = fees).
  sim::Scenario s(fast_config(57));
  s.bootstrap();
  chain::Amount recipients_before = 0;
  for (int a = 0; a < s.actor_count(); ++a) {
    recipients_before +=
        s.recipient(a).wallet().balance(s.master_node().chain());
  }
  s.run_exchanges(9, 30 * util::kMinute);
  s.loop().run_until(s.loop().now() + 10 * util::kMinute);

  chain::Amount recipients_after = 0;
  chain::Amount gateways_after = 0;
  for (int a = 0; a < s.actor_count(); ++a) {
    recipients_after +=
        s.recipient(a).wallet().balance(s.master_node().chain());
    gateways_after += s.gateway(a).wallet().balance(s.master_node().chain());
  }
  const chain::Amount spent = recipients_before - recipients_after;
  EXPECT_GT(spent, 0);
  EXPECT_GT(gateways_after, 0);
  EXPECT_LE(gateways_after, spent);  // gateways can't gain more than paid
}

// --- Reorg vs fair exchange ---

TEST(Reorg, ExchangeSettlesDespiteReorg) {
  // Run an exchange to completion, then force a 2-block reorg from a
  // parallel branch; the settled redeem must survive (it was in both
  // mempools and gets re-mined) and no value may be destroyed.
  sim::ScenarioConfig config = fast_config(58);
  sim::Scenario s(config);
  s.bootstrap();
  s.run_exchanges(3, 30 * util::kMinute);
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);

  auto& victim = s.actor_node(0);
  const int before_height = victim.chain().height();
  const auto before_value = victim.chain().utxo().total_value();

  // Build a competing branch two blocks long from two blocks back.
  chain::Blockchain fork(s.config().chain_params);
  for (int h = 1; h <= before_height - 2; ++h) {
    fork.accept_block(*victim.chain().block_at(h));
  }
  const chain::Wallet other_miner = chain::Wallet::from_seed("fork-miner");
  const chain::Miner miner(s.config().chain_params, other_miner.pkh());
  chain::Mempool empty_pool(s.config().chain_params);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const chain::Block block = miner.mine(fork, empty_pool, 900000 + i);
    ASSERT_NE(fork.accept_block(block), chain::AcceptBlockResult::kInvalid);
    victim.chain().accept_block(block);
  }
  EXPECT_GT(victim.chain().height(), before_height);
  // Supply invariant holds across the reorg (coinbase-only branch).
  EXPECT_LE(victim.chain().utxo().total_value(),
            before_value + 3 * s.config().chain_params.block_reward);
}

// --- Partition / failure injection ---

TEST(Partition, RecipientPartitionedDuringDeliveryReclaims) {
  // The DELIVER message is dropped while the recipient's host is
  // partitioned; no offer is ever made, the gateway holds a useless eSk,
  // and the device is eventually freed. Nobody loses money.
  sim::ScenarioConfig config = fast_config(59);
  config.exchange_stale_after = 2 * util::kMinute;
  sim::Scenario s(config);
  s.bootstrap();

  s.net().set_partitioned(s.actor_node(0).host(), true);
  s.sensor(0, 0).start_exchange(str_bytes("into the void"));
  s.loop().run_until(s.loop().now() + 3 * util::kMinute);
  EXPECT_EQ(s.recipient(0).deliveries_received(), 0u);
  EXPECT_EQ(s.recipient(0).offers_posted(), 0u);

  // Heal; later exchanges work again.
  s.net().set_partitioned(s.actor_node(0).host(), false);
  // The partitioned node missed blocks; gossip of the next blocks triggers
  // orphan reconnection. Give it time to resync.
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  bool delivered = false;
  s.recipient(0).on_reading = [&](std::uint16_t, const util::Bytes&) {
    delivered = true;
  };
  s.sensor(0, 0).start_exchange(str_bytes("back online"));
  const util::SimTime deadline = s.loop().now() + 10 * util::kMinute;
  while (!delivered && s.loop().now() < deadline) {
    s.loop().run_until(s.loop().now() + util::kSecond);
  }
  EXPECT_TRUE(delivered);
}

TEST(Partition, GatewayPartitionNeverSeesOffer) {
  // The gateway forwards the data, then its host partitions before the
  // offer gossip arrives: it cannot redeem, and the recipient reclaims
  // after the timeout.
  sim::ScenarioConfig config = fast_config(60);
  config.recipient_config.timeout_blocks = 4;
  config.chain_params.block_interval = 5 * util::kSecond;
  sim::Scenario s(config);
  s.bootstrap();

  auto& gateway_host = s.actor_node(1);  // sensor(0,*) attach to gateway 1
  bool reclaimed = false;
  s.recipient(0).on_reclaimed = [&](std::uint16_t) { reclaimed = true; };
  s.gateway(1).on_forwarded = [&](std::uint16_t) {
    s.net().set_partitioned(gateway_host.host(), true);
  };
  s.sensor(0, 0).start_exchange(str_bytes("gone gateway"));
  s.loop().run_until(s.loop().now() + 10 * util::kMinute);

  EXPECT_TRUE(reclaimed);
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 0u);
  EXPECT_EQ(s.gateway(1).redeems_submitted(), 0u);
}

// --- Radio adversity at federation scale ---

TEST(RadioAdversity, AlohaCollisionsDoNotWedgeTheProtocol) {
  // Shared-medium collisions corrupt overlapping uplinks; retries and
  // write-offs must keep the federation making progress.
  sim::ScenarioConfig config = fast_config(63);
  config.sensors_per_actor = 4;  // more contention per gateway
  config.radio_config.collisions = true;
  config.exchange_stale_after = 3 * util::kMinute;
  sim::Scenario s(config);
  s.bootstrap();
  s.run_exchanges(10, 60 * util::kMinute);
  EXPECT_GE(s.exchanges_completed(), 10u);
}

TEST(RadioAdversity, HonestRunDecryptsMatchRedeems) {
  // Fair-exchange conservation: in a fully honest run every redeem funds
  // exactly one decryption and vice versa.
  sim::Scenario s(fast_config(64));
  s.bootstrap();
  s.run_exchanges(9, 30 * util::kMinute);
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  std::uint64_t redeems = 0;
  std::uint64_t decrypted = 0;
  std::uint64_t reclaims = 0;
  for (int a = 0; a < s.actor_count(); ++a) {
    redeems += s.gateway(a).redeems_submitted();
    decrypted += s.recipient(a).readings_decrypted();
    reclaims += s.recipient(a).reclaims_submitted();
  }
  EXPECT_EQ(redeems, decrypted);
  EXPECT_EQ(reclaims, 0u);
}

// --- Directory hardening ---

TEST(DirectoryHardening, SpoofedAnnouncementIgnored) {
  // Mallory announces an IP for VICTIM's address. The directory must only
  // accept announcements signed by the claimed owner.
  sim::Scenario s(fast_config(61));
  s.bootstrap();

  const auto& victim_pkh = s.recipient(0).pkh();
  // The probe must outlive all event processing: Directory registers
  // watchers on the node that reference it for its whole lifetime.
  core::Directory probe(s.actor_node(1));
  const auto genuine_entry = probe.lookup(victim_pkh);
  ASSERT_TRUE(genuine_entry.has_value());
  const auto genuine = genuine_entry->ip;

  // Mallory = gateway 2's wallet (funded? gateways start broke; fund it).
  // Use recipient 2's wallet instead — it has funds.
  const util::Bytes spoof =
      core::encode_directory_entry(victim_pkh, 0xDEAD0001, 666);
  auto& mallory_node = s.actor_node(2);
  const auto tx = s.recipient(2).wallet().create_announcement(
      mallory_node.chain(), &mallory_node.mempool(), spoof, 500);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(mallory_node.submit_tx(*tx).ok());
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);

  const auto entry = probe.lookup(victim_pkh);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->ip, genuine) << "spoofed announcement took effect";
}

TEST(DirectoryHardening, RepublishUpdatesIp) {
  sim::Scenario s(fast_config(62));
  s.bootstrap();
  // Recipient 0 "moves": announces a new IP; directories follow.
  ASSERT_TRUE(s.recipient(0).announce_ip(0x0a0000FE, 9000));
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  core::Directory probe(s.actor_node(1));
  const auto entry = probe.lookup(s.recipient(0).pkh());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->ip, 0x0a0000FEu);
  EXPECT_EQ(entry->port, 9000);
}

// --- Gossip-level orphan transactions ---

TEST(GossipOrphans, ChildBeforeParentStillAccepted) {
  p2p::EventLoop loop;
  p2p::SimNet net(loop, 9);
  chain::ChainParams params;
  params.pow_zero_bits = 4;
  params.coinbase_maturity = 1;
  p2p::ChainNode node(loop, net, net.add_host("n"), params, {}, 1);
  p2p::ChainNode remote(loop, net, net.add_host("r"), params, {}, 2);

  const chain::Wallet miner_wallet = chain::Wallet::from_seed("om");
  const chain::Miner miner(params, miner_wallet.pkh());
  for (std::uint64_t i = 0; i < 3; ++i) {
    remote.submit_block(miner.mine(remote.chain(), remote.mempool(), i));
  }
  loop.run();

  // Parent pays alice; child (alice -> bob) spends the parent.
  const chain::Wallet alice = chain::Wallet::from_seed("oa");
  const chain::Wallet bob = chain::Wallet::from_seed("ob");
  const auto parent = miner_wallet.create_payment(
      remote.chain(), &remote.mempool(), alice.pkh(), chain::kCoin, 1000);
  ASSERT_TRUE(parent.has_value());
  chain::Transaction child;
  {
    chain::TxIn in;
    in.prevout = chain::OutPoint{parent->txid(), 0};
    child.vin.push_back(in);
    chain::TxOut out;
    out.value = chain::kCoin - 1000;
    out.script_pubkey = script::make_p2pkh(bob.pkh());
    child.vout.push_back(out);
    alice.sign_p2pkh_input(child, 0, parent->vout[0].script_pubkey);
  }

  // Deliver CHILD first, then PARENT (simulating gossip reordering).
  net.send(remote.chain().height() >= 0 ? 1 : 1, 0,
           p2p::Message{"tx", child.serialize(), -1});
  loop.run();
  EXPECT_FALSE(node.mempool().contains(child.txid()));  // parked as orphan
  net.send(1, 0, p2p::Message{"tx", parent->serialize(), -1});
  loop.run();
  EXPECT_TRUE(node.mempool().contains(parent->txid()));
  EXPECT_TRUE(node.mempool().contains(child.txid()));  // drained from orphans
}

}  // namespace
}  // namespace bcwan

// Byzantine adversary tests: every attack in sim/adversary asserts the
// economic/safety invariant that defeats it. The fair exchange of Listing 1
// must hold against cheating gateways (withheld, garbled and double-claimed
// reveals), adversarial miners (censorship, fee-sniping), Sybil election
// swarms, and LoRa-hop attacks (replay, jamming, bit-flips).
#include <gtest/gtest.h>

#include <stdexcept>

#include "bcwan/election.hpp"
#include "sim/adversary.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"
#include "sim/scenario.hpp"

namespace bcwan {
namespace {

using util::str_bytes;

sim::ScenarioConfig adversary_config(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.actors = 2;
  config.sensors_per_actor = 1;
  config.seed = seed;
  config.chain_params.pow_zero_bits = 4;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 10 * util::kSecond;
  config.recipient_funding = 50 * chain::kCoin;
  // Short CLTV window so reclaim tests resolve in simulated minutes, not
  // the paper's height+100.
  config.recipient_config.timeout_blocks = 12;
  return config;
}

/// Step the loop in 1 s ticks until `pred()` or the deadline.
template <typename Pred>
void run_until(sim::Scenario& s, Pred pred, util::SimTime deadline) {
  while (!pred() && s.loop().now() < deadline) {
    s.loop().run_until(s.loop().now() + util::kSecond);
  }
}

/// The gateway serving actor 0's sensors (they attach to actor 1's master).
std::size_t serving_gateway_index(sim::Scenario& s) {
  return static_cast<std::size_t>(1 * s.config().gateways_per_actor) +
         s.master_index(1);
}

// --- Cheating gateways ---

TEST(Adversary, WithholdingGatewayForcesCltvReclaim) {
  sim::Scenario s(adversary_config(601));
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 1);
  adversary.corrupt_gateway(serving_gateway_index(s),
                            core::GatewayMisbehavior::kWithholdKey,
                            s.loop().now());
  s.loop().run_until(s.loop().now() + util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("pay me first"));
  const util::SimTime deadline = s.loop().now() + 30 * util::kMinute;
  run_until(
      s, [&] { return s.recipient(0).pending_exchange_count() == 0 &&
                      s.recipient(0).offers_posted() > 0; },
      deadline);

  // The offer went out, eSk never did; the recipient's only exit is the
  // OP_CHECKLOCKTIMEVERIFY branch, and it must have taken it exactly once.
  EXPECT_GE(s.gateway(1).redeems_withheld(), 1u);
  EXPECT_EQ(s.gateway(1).redeems_submitted(), 0u);
  EXPECT_GE(s.recipient(0).reclaims_submitted(), 1u);
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 0u);
  EXPECT_EQ(s.recipient(0).pending_exchange_count(), 0u);

  sim::InvariantReport report;
  const sim::SettlementTally tally =
      sim::check_settlement_invariants(s.master_node().chain(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(tally.offers, 1u);
  EXPECT_EQ(tally.redeemed, 0u) << "paid without reveal";
  EXPECT_GE(tally.reclaimed, 1u) << "withheld exchange never reclaimed";
}

TEST(Adversary, GarbledRevealRejectedByCheckRsaPair) {
  sim::Scenario s(adversary_config(602));
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 2);
  adversary.corrupt_gateway(serving_gateway_index(s),
                            core::GatewayMisbehavior::kGarbleKey,
                            s.loop().now());
  s.loop().run_until(s.loop().now() + util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("garbled"));
  const util::SimTime deadline = s.loop().now() + 30 * util::kMinute;
  run_until(
      s, [&] { return s.recipient(0).pending_exchange_count() == 0 &&
                      s.gateway(1).garbled_submits() > 0; },
      deadline);

  // Every garbled reveal must have been rejected — locally and at every
  // peer: OP_CHECKRSA512PAIR fails, the spend falls into the CLTV branch
  // and dies on the unsatisfied locktime.
  EXPECT_GE(s.gateway(1).garbled_submits(), 1u);
  EXPECT_EQ(s.gateway(1).garbled_rejected(), s.gateway(1).garbled_submits());
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 0u);
  EXPECT_GE(s.recipient(0).reclaims_submitted(), 1u);

  sim::InvariantReport report;
  const sim::SettlementTally tally =
      sim::check_settlement_invariants(s.master_node().chain(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(tally.redeemed, 0u) << "a garbled reveal reached the chain";
}

TEST(Adversary, DoubleClaimRejectedByFirstSeenMempool) {
  sim::Scenario s(adversary_config(603));
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 3);
  adversary.corrupt_gateway(serving_gateway_index(s),
                            core::GatewayMisbehavior::kDoubleClaim,
                            s.loop().now());
  s.loop().run_until(s.loop().now() + util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("claim once"));
  const util::SimTime deadline = s.loop().now() + 20 * util::kMinute;
  run_until(
      s, [&] { return s.recipient(0).readings_decrypted() > 0 &&
                      s.gateway(1).double_claims() > 0; },
      deadline);

  // The honest reveal settles the exchange; the conflicting second claim
  // must bounce off the first-seen mempool (no RBF).
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);
  EXPECT_GE(s.gateway(1).double_claims(), 1u);
  EXPECT_EQ(s.gateway(1).double_claims_rejected(),
            s.gateway(1).double_claims());

  // Let the chain bury the settlement, then check at-most-once pay.
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  sim::InvariantReport report;
  (void)sim::check_settlement_invariants(s.master_node().chain(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- Adversarial miners ---

TEST(Adversary, CensoringMinerDelaysButCannotSteal) {
  sim::Scenario s(adversary_config(604));
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 4);
  // Censor reveals for a long window covering the whole exchange.
  adversary.censor_reveals(s.loop().now() + util::kSecond, 10 * util::kMinute);
  s.loop().run_until(s.loop().now() + 2 * util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("censored"));
  const util::SimTime deadline = s.loop().now() + 20 * util::kMinute;
  run_until(s, [&] { return s.recipient(0).readings_decrypted() > 0; },
            deadline);

  // The recipient learns eSk from the mempool sighting (paper's 0-conf
  // fast path): censorship delays burial, it cannot unwind the reveal.
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);
  EXPECT_EQ(adversary.censorship_windows(), 1u);

  // After the window lifts, the redeem confirms and invariants hold. (The
  // censored-tx counter only ticks when blocks are assembled with the
  // reveal stuck in the mempool, so it is checked after the drain.)
  s.loop().run_until(s.loop().now() + 12 * util::kMinute);
  EXPECT_GT(s.miner().txs_censored(), 0u) << "filter never engaged";
  sim::InvariantReport report;
  const sim::SettlementTally tally =
      sim::check_settlement_invariants(s.master_node().chain(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(tally.redeemed, 1u) << "reveal never confirmed after censorship";
}

TEST(Adversary, FeeSnipeRaceSettlesExactlyOnce) {
  sim::Scenario s(adversary_config(605));
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 5);
  const std::size_t gw = serving_gateway_index(s);
  adversary.corrupt_gateway(gw, core::GatewayMisbehavior::kWithholdKey,
                            s.loop().now());
  s.loop().run_until(s.loop().now() + util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("snipe me"));
  const util::SimTime deadline = s.loop().now() + 30 * util::kMinute;
  // Wait for the reclaim to hit the recipient's mempool, then dump the
  // withheld redeem — the race at the timeout boundary.
  run_until(s, [&] { return s.recipient(0).reclaims_submitted() > 0; },
            deadline);
  ASSERT_GT(s.recipient(0).reclaims_submitted(), 0u);
  adversary.fee_snipe(gw, s.loop().now() + util::kSecond);

  run_until(s, [&] { return s.recipient(0).pending_exchange_count() == 0; },
            deadline);
  EXPECT_EQ(adversary.fee_snipes(), 1u);

  // Either side may win the gossip race; what must NOT happen is both
  // spends confirming, or neither. The offer settles exactly once.
  sim::InvariantReport report;
  const sim::SettlementTally tally =
      sim::check_settlement_invariants(s.master_node().chain(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(tally.offers, 1u);
  EXPECT_EQ(tally.redeemed + tally.reclaimed, tally.offers)
      << "offer neither redeemed nor reclaimed";
}

// --- LoRa-hop attacks ---

TEST(Adversary, ReplayedDataFrameIsDroppedNotSettled) {
  sim::ScenarioConfig config = adversary_config(606);
  // Shrink the re-ACK window below the replay delay: a replay arriving
  // after it must be recognised as hostile, not re-ACKed as a retransmit.
  config.gateway_config.reack_window = 10 * util::kSecond;
  sim::Scenario s(config);
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 6);
  adversary.replay_data_frames(1.0, 30 * util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("replay me"));
  const util::SimTime deadline = s.loop().now() + 20 * util::kMinute;
  run_until(s, [&] { return s.recipient(0).readings_decrypted() > 0; },
            deadline);
  ASSERT_EQ(s.recipient(0).readings_decrypted(), 1u);

  // Let the replay fire and bounce off the payload-fingerprint dedupe.
  run_until(s, [&] { return s.gateway(1).replays_dropped() > 0; },
            s.loop().now() + 5 * util::kMinute);
  EXPECT_GE(adversary.frames_replayed(), 1u);
  EXPECT_GE(s.gateway(1).replays_dropped(), 1u);
  // Defeated, not just detected: no new key burned, no second delivery,
  // no second offer, no second settlement.
  EXPECT_EQ(s.gateway(1).rekeys_issued(), 0u);
  EXPECT_EQ(s.gateway(1).frames_forwarded(), 1u);
  EXPECT_EQ(s.recipient(0).offers_posted(), 1u);
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);

  sim::InvariantReport report;
  (void)sim::check_settlement_invariants(s.master_node().chain(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Adversary, BitFlippedPayloadCaughtByRsaSignature) {
  sim::Scenario s(adversary_config(607));
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 7);
  adversary.flip_bits(1.0);  // corrupt every DATA frame in flight

  s.sensor(0, 0).start_exchange(str_bytes("flip me"));
  const util::SimTime deadline = s.loop().now() + 10 * util::kMinute;
  run_until(s, [&] { return s.recipient(0).signature_rejects() > 0; },
            deadline);

  // The gateway cannot verify the envelope (it never holds K or Pk), so it
  // forwards the corrupted payload; the recipient's RSA-512 signature
  // check is the firewall — and no offer is ever posted for flipped data.
  EXPECT_GT(s.radio().frames_mangled(), 0u);
  EXPECT_GE(s.recipient(0).signature_rejects(), 1u);
  EXPECT_EQ(s.recipient(0).offers_posted(), 0u);
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 0u);

  sim::InvariantReport report;
  const sim::SettlementTally tally =
      sim::check_settlement_invariants(s.master_node().chain(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(tally.offers, 0u) << "corrupted frame reached settlement";
}

TEST(Adversary, JammingWindowDelaysButExchangeRecovers) {
  sim::Scenario s(adversary_config(608));
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 8);
  adversary.jam_lora(s.loop().now() + util::kSecond, util::kMinute);
  s.loop().run_until(s.loop().now() + 2 * util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("thru the jam"));
  const util::SimTime deadline = s.loop().now() + 30 * util::kMinute;
  run_until(s, [&] { return s.recipient(0).readings_decrypted() > 0; },
            deadline);

  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);
  EXPECT_GT(s.radio().frames_jammed(), 0u);
  EXPECT_EQ(adversary.jam_windows(), 1u);
}

TEST(Adversary, DutyGrieferCannotStarveHonestExchange) {
  sim::ScenarioConfig config = adversary_config(609);
  // Age spoofed-device keys out quickly so the griefer cannot leak state.
  config.gateway_config.issued_key_timeout = 2 * util::kMinute;
  sim::Scenario s(config);
  s.bootstrap();
  sim::AdversaryPlan adversary(s, 9);
  // Spray spoofed key requests at actor 1's master gateway — the one
  // serving actor 0's sensor — fast enough to drain its downlink duty
  // budget while the honest exchange runs.
  adversary.add_duty_griefer(1, 30, s.loop().now() + util::kSecond,
                             util::kSecond);
  s.loop().run_until(s.loop().now() + 2 * util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("still here"));
  const util::SimTime deadline = s.loop().now() + 30 * util::kMinute;
  run_until(s, [&] { return s.recipient(0).readings_decrypted() > 0; },
            deadline);

  // The duty limiter and retry machinery must carry the honest exchange
  // through the grief load.
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);
  // Drain the rest of the barrage, then confirm the griefer really burned
  // gateway keygens and that the spoofed keys age out instead of leaking.
  s.loop().run_until(s.loop().now() + 5 * util::kMinute);
  EXPECT_GE(adversary.grief_requests_sent(), 25u);
  EXPECT_GT(s.gateway(1).keys_issued(), 1u) << "griefer burned no keygens";
  EXPECT_EQ(s.gateway(1).issued_key_count(), 0u);
}

// --- Sybil election pressure ---

TEST(Adversary, SybilSwarmGamesUnweightedElectionOnly) {
  const sim::SybilElectionStats stats =
      sim::run_sybil_election_trial(/*honest=*/5, /*sybils=*/15,
                                    /*epochs=*/400, /*seed=*/42);
  // Unweighted: identities are free, so the swarm wins ~15/20 of epochs.
  EXPECT_GT(stats.sybil_wins, stats.epochs / 2);
  EXPECT_LT(stats.sybil_wins, stats.epochs);  // not a total takeover
  // Weighted: zero-weight identities can never win an epoch.
  EXPECT_EQ(stats.weighted_sybil_wins, 0);
  EXPECT_EQ(stats.honest_wins + stats.sybil_wins, stats.epochs);
}

TEST(Adversary, WeightedElectionTracksWeightAndIsDeterministic) {
  util::Rng rng(7);
  std::vector<script::PubKeyHash> ids(3);
  for (auto& id : ids) {
    const util::Bytes b = rng.bytes(id.size());
    std::copy(b.begin(), b.end(), id.begin());
  }
  const std::vector<double> weights{1.0, 1.0, 8.0};
  int heavy_wins = 0;
  const int epochs = 300;
  for (int e = 0; e < epochs; ++e) {
    const std::size_t w = core::elect_master_gateway_weighted(ids, weights, e);
    // Deterministic: recomputing the same epoch elects the same winner.
    ASSERT_EQ(core::elect_master_gateway_weighted(ids, weights, e), w);
    if (w == 2) ++heavy_wins;
  }
  // Expected share 0.8; demand well above the uniform 1/3.
  EXPECT_GT(heavy_wins, epochs / 2);

  EXPECT_THROW(core::elect_master_gateway_weighted(ids, {1.0, 1.0}, 0),
               std::invalid_argument);
  EXPECT_THROW(core::elect_master_gateway_weighted(ids, {0.0, 0.0, 0.0}, 0),
               std::invalid_argument);
}

// --- Composition with the chaos layer ---

TEST(Adversary, UnleashComposesWithChaosAndInvariantsHold) {
  sim::ScenarioConfig config = adversary_config(610);
  config.sensors_per_actor = 2;
  sim::Scenario s(config);
  s.bootstrap();

  sim::AdversaryPlan adversary(s, 10);
  sim::AdversaryProfile profile;
  profile.withholding_gateways = 1.0;
  profile.censorship_windows = 1.0;
  profile.censorship_duration = util::kMinute;
  profile.jam_windows = 1.0;
  profile.jam_duration = 20 * util::kSecond;
  profile.replay_probability = 0.5;
  profile.replay_delay = 3 * util::kMinute;
  profile.duty_griefers = 1;
  adversary.unleash(profile, 10 * util::kMinute);

  sim::FaultPlan faults(s, 11);
  sim::ChaosProfile chaos;
  chaos.partitions_per_actor = 0.5;
  chaos.partition_duration = 30 * util::kSecond;
  chaos.gateway_crashes = 0.0;  // keep the byzantine gateway's state alive
  chaos.miner_stalls = 1.0;
  chaos.stall_duration = util::kMinute;
  faults.unleash(chaos, 10 * util::kMinute);

  s.run_exchanges(6, 40 * util::kMinute);
  // Drain: let reclaims confirm and retries settle.
  s.loop().run_until(s.loop().now() + 20 * util::kMinute);

  // Under combined chaos + adversaries the safety invariants must hold
  // (liveness may degrade — that is the point of the attack).
  const sim::InvariantReport report = sim::check_federation_invariants(
      s, /*expect_quiescent=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_FALSE(adversary.log().empty());
}

}  // namespace
}  // namespace bcwan

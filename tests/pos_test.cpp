#include <gtest/gtest.h>

#include <map>

#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "chain/pos.hpp"
#include "chain/wallet.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace bcwan::chain {
namespace {

using util::str_bytes;

std::vector<Validator> three_validators(Amount a, Amount b, Amount c) {
  return {
      Validator{crypto::ec_pubkey_encode(
                    crypto::ec_from_seed(str_bytes("val-a")).pub),
                a},
      Validator{crypto::ec_pubkey_encode(
                    crypto::ec_from_seed(str_bytes("val-b")).pub),
                b},
      Validator{crypto::ec_pubkey_encode(
                    crypto::ec_from_seed(str_bytes("val-c")).pub),
                c},
  };
}

TEST(PosSchedule, Deterministic) {
  const auto validators = three_validators(1, 1, 1);
  Hash256 prev{};
  prev[0] = 7;
  EXPECT_EQ(scheduled_proposer(validators, prev, 5),
            scheduled_proposer(validators, prev, 5));
}

TEST(PosSchedule, VariesWithHeightAndParent) {
  const auto validators = three_validators(1, 1, 1);
  Hash256 prev{};
  std::map<std::size_t, int> histogram;
  for (int h = 1; h <= 300; ++h) ++histogram[scheduled_proposer(validators, prev, h)];
  // All three validators get slots.
  EXPECT_EQ(histogram.size(), 3u);
  for (const auto& [slot, count] : histogram) EXPECT_GT(count, 50);
}

TEST(PosSchedule, StakeWeighted) {
  // 8:1:1 stake should hand validator 0 the large majority of slots.
  const auto validators = three_validators(8, 1, 1);
  Hash256 prev{};
  int heavy = 0;
  const int kSlots = 1000;
  for (int h = 1; h <= kSlots; ++h) {
    if (scheduled_proposer(validators, prev, h) == 0) ++heavy;
  }
  EXPECT_GT(heavy, kSlots * 7 / 10);
  EXPECT_LT(heavy, kSlots * 9 / 10);
}

TEST(PosSchedule, RejectsDegenerateSets) {
  Hash256 prev{};
  EXPECT_THROW(scheduled_proposer({}, prev, 1), std::invalid_argument);
  EXPECT_THROW(
      scheduled_proposer({Validator{util::Bytes{1}, 0}}, prev, 1),
      std::invalid_argument);
}

TEST(PosSignature, SignVerifyRoundTrip) {
  const crypto::EcKeyPair key = crypto::ec_from_seed(str_bytes("val-a"));
  BlockHeader header;
  header.time = 42;
  pos_sign_block(header, key);
  const Validator expected{crypto::ec_pubkey_encode(key.pub), 1};
  EXPECT_TRUE(pos_verify_block(header, expected));
}

TEST(PosSignature, RejectsWrongProposer) {
  const crypto::EcKeyPair key = crypto::ec_from_seed(str_bytes("val-a"));
  BlockHeader header;
  pos_sign_block(header, key);
  const Validator other{
      crypto::ec_pubkey_encode(crypto::ec_from_seed(str_bytes("val-b")).pub),
      1};
  EXPECT_FALSE(pos_verify_block(header, other));
}

TEST(PosSignature, RejectsTamperedHeader) {
  const crypto::EcKeyPair key = crypto::ec_from_seed(str_bytes("val-a"));
  BlockHeader header;
  pos_sign_block(header, key);
  header.time = 99;  // mutate after signing
  const Validator expected{crypto::ec_pubkey_encode(key.pub), 1};
  EXPECT_FALSE(pos_verify_block(header, expected));
}

TEST(PosSignature, SignatureCoversProposerIdentity) {
  // Transplanting a valid signature onto a different proposer key fails.
  const crypto::EcKeyPair a = crypto::ec_from_seed(str_bytes("val-a"));
  const crypto::EcKeyPair b = crypto::ec_from_seed(str_bytes("val-b"));
  BlockHeader header;
  pos_sign_block(header, a);
  header.proposer_pubkey = crypto::ec_pubkey_encode(b.pub);
  EXPECT_FALSE(
      pos_verify_block(header, Validator{header.proposer_pubkey, 1}));
}

// --- PoS chain end to end ---

struct PosHarness {
  std::vector<crypto::EcKeyPair> keys;  // must precede params (init order)
  ChainParams params;
  Blockchain chain;
  Mempool pool;
  Wallet reward_wallet = Wallet::from_seed("pos-rewards");
  std::vector<Miner> miners;

  PosHarness()
      : params([this] {
          ChainParams p;
          p.consensus = ConsensusMode::kProofOfStake;
          p.coinbase_maturity = 2;
          for (const char* name : {"val-a", "val-b", "val-c"}) {
            keys.push_back(crypto::ec_from_seed(str_bytes(name)));
            p.validators.push_back(
                Validator{crypto::ec_pubkey_encode(keys.back().pub), 1});
          }
          return p;
        }()),
        chain(params),
        pool(params) {
    for (const auto& key : keys) {
      miners.emplace_back(params, reward_wallet.pkh());
      miners.back().set_pos_key(key);
    }
  }

  /// The scheduled validator produces the next block.
  Block produce(std::uint64_t time) {
    const std::size_t slot = scheduled_proposer(params.validators,
                                                chain.tip_hash(),
                                                chain.height() + 1);
    return miners[slot].mine(chain, pool, time);
  }
};

TEST(PosChain, ScheduledValidatorExtendsChain) {
  PosHarness h;
  for (int i = 0; i < 10; ++i) {
    const Block block = h.produce(static_cast<std::uint64_t>(i));
    // PoS blocks need no grinding: nonce remains untouched.
    EXPECT_EQ(block.header.nonce, 0u);
    ASSERT_EQ(h.chain.accept_block(block), AcceptBlockResult::kConnected);
  }
  EXPECT_EQ(h.chain.height(), 10);
}

TEST(PosChain, UnscheduledValidatorRejected) {
  PosHarness h;
  const std::size_t slot = scheduled_proposer(h.params.validators,
                                              h.chain.tip_hash(), 1);
  const std::size_t wrong = (slot + 1) % h.miners.size();
  // Force the wrong miner to sign (bypass its own schedule check).
  Block block = h.miners[wrong].assemble(h.chain, h.pool, 1);
  pos_sign_block(block.header, h.keys[wrong]);
  EXPECT_EQ(h.chain.accept_block(block), AcceptBlockResult::kInvalid);
  EXPECT_EQ(h.chain.last_failure().error, BlockError::kBadProposer);
}

TEST(PosChain, OutsiderCannotForge) {
  PosHarness h;
  const crypto::EcKeyPair outsider = crypto::ec_from_seed(str_bytes("mallory"));
  Block block = h.miners[0].assemble(h.chain, h.pool, 1);
  pos_sign_block(block.header, outsider);
  EXPECT_EQ(h.chain.accept_block(block), AcceptBlockResult::kInvalid);
  EXPECT_EQ(h.chain.last_failure().error, BlockError::kBadProposer);
}

TEST(PosChain, MinerRefusesOutOfTurn) {
  PosHarness h;
  const std::size_t slot = scheduled_proposer(h.params.validators,
                                              h.chain.tip_hash(), 1);
  const std::size_t wrong = (slot + 1) % h.miners.size();
  EXPECT_FALSE(h.miners[wrong].is_scheduled(h.chain));
  EXPECT_TRUE(h.miners[slot].is_scheduled(h.chain));
  EXPECT_THROW(h.miners[wrong].mine(h.chain, h.pool, 1), std::logic_error);
}

TEST(PosChain, TransactionsConfirmNormally) {
  PosHarness h;
  std::uint64_t t = 0;
  for (int i = 0; i < h.params.coinbase_maturity + 2; ++i) {
    ASSERT_EQ(h.chain.accept_block(h.produce(++t)),
              AcceptBlockResult::kConnected);
  }
  const Wallet alice = Wallet::from_seed("pos-alice");
  const auto tx = h.reward_wallet.create_payment(h.chain, &h.pool,
                                                 alice.pkh(), kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  const Block block = h.produce(++t);
  ASSERT_EQ(h.chain.accept_block(block), AcceptBlockResult::kConnected);
  h.pool.remove_confirmed(block);
  EXPECT_EQ(alice.balance(h.chain), kCoin);
}

TEST(PosChain, FullFederationRunsOnPos) {
  // The whole BcWAN scenario on a proof-of-stake chain: exchanges complete
  // in the same latency regime as PoW (consensus is off the critical path
  // when verification stalls are disabled).
  sim::ScenarioConfig config;
  config.actors = 2;
  config.sensors_per_actor = 1;
  config.chain_params.consensus = ConsensusMode::kProofOfStake;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 10 * util::kSecond;
  config.recipient_funding = 10 * kCoin;
  config.seed = 404;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(4, 30 * util::kMinute);
  EXPECT_GE(scenario.exchanges_completed(), 4u);
  EXPECT_LT(scenario.latency_stats().mean(), 6.0);
}

}  // namespace
}  // namespace bcwan::chain

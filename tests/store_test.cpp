// Durable persistence tests: CRC32C, log framing and torn-tail scanning,
// snapshot atomicity, ChainStore open-or-recover, and crash/restart at the
// ChainNode level. The torn-tail sweep drives a truncation through every
// byte offset of the final record; the mid-file CRC-flip cases pin the
// refuse-don't-truncate policy.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/event_loop.hpp"
#include "p2p/network.hpp"
#include "store/crc32c.hpp"
#include "store/log.hpp"
#include "store/snapshot.hpp"
#include "store/store.hpp"

namespace bcwan::store {
namespace {

namespace fs = std::filesystem;
using chain::AcceptBlockResult;
using chain::Block;
using chain::Blockchain;
using chain::ChainParams;
using chain::Mempool;
using chain::Miner;
using chain::Wallet;
using util::Bytes;

ChainParams test_params() {
  ChainParams p;
  p.pow_zero_bits = 4;
  p.coinbase_maturity = 2;
  return p;
}

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "bcwan-store-XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, util::ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

/// A persistent chain: mines into a store-backed Blockchain, and can
/// "crash" (drop everything without a final snapshot) and reopen.
struct StoreHarness {
  ChainParams params = test_params();
  TempDir dir;
  StoreOptions opts;
  std::unique_ptr<ChainStore> store;
  std::optional<Blockchain> chain;
  Mempool pool{params};
  Wallet wallet = Wallet::from_seed("miner");
  Miner miner{params, wallet.pkh()};
  std::uint64_t now = 0;

  StoreHarness() {
    opts.dir = dir.str();
    opts.snapshot_interval = 1000;  // no automatic snapshots unless asked
    open();
  }

  void open() {
    std::string error;
    store = ChainStore::open(params, opts, &error);
    ASSERT_NE(store, nullptr) << error;
    chain.emplace(store->take_chain());
    chain->set_block_sink([this](const Block& b, const chain::BlockUndo* u) {
      store->append_block(b, u);
    });
  }

  /// Crash-stop: no snapshot, no extra fsync — just drop the handles.
  void crash() {
    chain.reset();
    store.reset();
  }

  void reopen() {
    crash();
    open();
  }

  void mine_block() {
    const Block block = miner.mine(*chain, pool, ++now);
    const auto result = chain->accept_block(block);
    ASSERT_TRUE(result == AcceptBlockResult::kConnected ||
                result == AcceptBlockResult::kReorganized)
        << chain::accept_block_result_name(result);
    pool.remove_confirmed(block);
    store->maybe_snapshot(*chain);
  }

  void mine_blocks(int n) {
    for (int i = 0; i < n; ++i) mine_block();
  }

  void fund() { mine_blocks(params.coinbase_maturity + 1); }

  void pay(chain::Amount amount) {
    const Wallet alice = Wallet::from_seed("alice");
    const auto tx =
        wallet.create_payment(*chain, &pool, alice.pkh(), amount, 1000);
    ASSERT_TRUE(tx.has_value());
    ASSERT_TRUE(pool.accept(*tx, chain->utxo(), chain->height() + 1).ok());
    mine_block();
  }

  std::string log_path() const { return log_file_path(dir.str()); }
};

// --- CRC32C ---

TEST(Crc32c, KnownVectors) {
  // RFC 3720 check value.
  EXPECT_EQ(crc32c(util::str_bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(util::ByteView{}), 0u);
  // 32 zero bytes (iSCSI test vector).
  EXPECT_EQ(crc32c(Bytes(32, 0x00)), 0x8A9136AAu);
  EXPECT_EQ(crc32c(Bytes(32, 0xFF)), 0x62A8AB43u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  const Bytes data = util::str_bytes("the quick brown fox jumps over");
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t part =
        crc32c_extend(crc32c(util::ByteView(data).subspan(0, split)),
                      util::ByteView(data).subspan(split));
    EXPECT_EQ(part, whole) << "split at " << split;
  }
}

// --- Log framing & scanning ---

Bytes build_log_image(const std::vector<Bytes>& payloads) {
  TempDir dir;
  const std::string path = (dir.path / "img.log").string();
  BlockLog log;
  ScanResult scan;
  EXPECT_TRUE(log.open(path, scan, nullptr));
  std::uint64_t seq = 1;
  for (const Bytes& p : payloads) EXPECT_TRUE(log.append(seq++, p, false));
  log.close();
  return read_file(path);
}

TEST(BlockLog, ScanRoundTrip) {
  const Bytes image = build_log_image(
      {util::str_bytes("alpha"), util::str_bytes("beta"), Bytes{}});
  const ScanResult scan = scan_log(image);
  EXPECT_EQ(scan.status, ScanStatus::kOk);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[0].payload, util::str_bytes("alpha"));
  EXPECT_EQ(scan.records[2].payload, Bytes{});
  EXPECT_EQ(scan.valid_bytes, image.size());
}

TEST(BlockLog, ScanRejectsForeignHeader) {
  EXPECT_EQ(scan_log(util::str_bytes("not a log file at all")).status,
            ScanStatus::kBadHeader);
  EXPECT_EQ(scan_log(Bytes{}).status, ScanStatus::kBadHeader);
  // Right magic, wrong version.
  Bytes image = build_log_image({util::str_bytes("x")});
  image[8] ^= 0x01;
  EXPECT_EQ(scan_log(image).status, ScanStatus::kBadHeader);
}

TEST(BlockLog, TornTailAtEveryOffset) {
  const Bytes image = build_log_image({util::str_bytes("first record"),
                                       util::str_bytes("second record"),
                                       util::str_bytes("the torn one")});
  const ScanResult full = scan_log(image);
  ASSERT_EQ(full.status, ScanStatus::kOk);
  ASSERT_EQ(full.records.size(), 3u);
  const std::uint64_t last_start =
      full.valid_bytes - kRecordHeaderBytes - full.records[2].payload.size();

  // Truncate at every byte inside the final record: always a torn tail
  // recovering exactly the first two records, never a refusal.
  for (std::uint64_t cut = last_start + 1; cut < image.size(); ++cut) {
    const ScanResult scan =
        scan_log(util::ByteView(image).subspan(0, static_cast<std::size_t>(cut)));
    EXPECT_EQ(scan.status, ScanStatus::kTornTail) << "cut at " << cut;
    EXPECT_EQ(scan.records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, last_start) << "cut at " << cut;
  }
  // Truncating exactly at the record boundary is a clean two-record log.
  const ScanResult boundary = scan_log(
      util::ByteView(image).subspan(0, static_cast<std::size_t>(last_start)));
  EXPECT_EQ(boundary.status, ScanStatus::kOk);
  EXPECT_EQ(boundary.records.size(), 2u);
}

TEST(BlockLog, CorruptionInLastRecordIsTornTail) {
  Bytes image = build_log_image(
      {util::str_bytes("aaaa"), util::str_bytes("bbbb")});
  // Flip a payload byte of the LAST record: truncate, don't refuse.
  image[image.size() - 1] ^= 0xFF;
  const ScanResult scan = scan_log(image);
  EXPECT_EQ(scan.status, ScanStatus::kTornTail);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST(BlockLog, CorruptionMidFileRefuses) {
  Bytes image = build_log_image(
      {util::str_bytes("aaaa"), util::str_bytes("bbbb"),
       util::str_bytes("cccc")});
  // Flip a byte in the FIRST record's payload: valid records follow, so
  // this is mid-file corruption and must be refused, not truncated.
  image[kFileHeaderBytes + kRecordHeaderBytes] ^= 0xFF;
  EXPECT_EQ(scan_log(image).status, ScanStatus::kCorrupt);
}

TEST(BlockLog, OpenTruncatesTornTailOnDisk) {
  TempDir dir;
  const std::string path = (dir.path / "blocks.log").string();
  {
    BlockLog log;
    ScanResult scan;
    ASSERT_TRUE(log.open(path, scan, nullptr));
    ASSERT_TRUE(log.append(1, util::str_bytes("keep me"), true));
    ASSERT_TRUE(log.append(2, util::str_bytes("torn"), true));
  }
  ASSERT_GT(tear_log_tail(path, 2), 0u);

  BlockLog log;
  ScanResult scan;
  std::string error;
  ASSERT_TRUE(log.open(path, scan, &error)) << error;
  EXPECT_EQ(scan.status, ScanStatus::kTornTail);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].payload, util::str_bytes("keep me"));
  // Appending after recovery continues the sequence cleanly.
  ASSERT_TRUE(log.append(2, util::str_bytes("replacement"), true));
  log.close();
  const ScanResult rescan = scan_log(read_file(path));
  EXPECT_EQ(rescan.status, ScanStatus::kOk);
  ASSERT_EQ(rescan.records.size(), 2u);
  EXPECT_EQ(rescan.records[1].payload, util::str_bytes("replacement"));
}

// --- Snapshots ---

TEST(Snapshot, RoundTripAndListing) {
  TempDir dir;
  const Bytes state = util::str_bytes("pretend chainstate");
  SnapshotInfo info;
  ASSERT_TRUE(write_snapshot_file(dir.str(), 42, state, &info, nullptr));
  EXPECT_EQ(info.seq, 42u);

  const auto listed = list_snapshots(dir.str());
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].seq, 42u);

  std::uint64_t next_seq = 0;
  const auto loaded = load_snapshot_file(listed[0].path, &next_seq);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, state);
  EXPECT_EQ(next_seq, 42u);
}

TEST(Snapshot, CorruptFileIsSkippedNotFatal) {
  TempDir dir;
  SnapshotInfo info;
  ASSERT_TRUE(write_snapshot_file(dir.str(), 7,
                                  util::str_bytes("snapshot body"), &info,
                                  nullptr));
  Bytes raw = read_file(info.path);
  raw[raw.size() - 3] ^= 0x40;
  write_file(info.path, raw);
  EXPECT_FALSE(load_snapshot_file(info.path, nullptr).has_value());
}

TEST(Snapshot, PruneKeepsNewest) {
  TempDir dir;
  for (std::uint64_t seq : {3u, 1u, 9u, 5u}) {
    ASSERT_TRUE(
        write_snapshot_file(dir.str(), seq, util::str_bytes("s"), nullptr,
                            nullptr));
  }
  prune_snapshots(dir.str(), 2);
  const auto listed = list_snapshots(dir.str());
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].seq, 9u);
  EXPECT_EQ(listed[1].seq, 5u);
}

// --- Delta snapshots (incremental elements) ---

TEST(DeltaSnapshot, RoundTripListingAndPrune) {
  TempDir dir;
  const Bytes first = util::str_bytes("delta payload one");
  DeltaFileInfo info;
  ASSERT_TRUE(write_delta_file(dir.str(), 4, 9, first, &info, nullptr));
  EXPECT_EQ(info.parent_seq, 4u);
  EXPECT_EQ(info.seq, 9u);
  ASSERT_TRUE(write_delta_file(dir.str(), 9, 14,
                               util::str_bytes("delta payload two"), nullptr,
                               nullptr));

  // Oldest first: the order deltas are applied on top of the base.
  auto listed = list_delta_files(dir.str());
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].seq, 9u);
  EXPECT_EQ(listed[1].seq, 14u);

  std::uint64_t parent = 0, next = 0;
  const auto loaded = load_delta_file(listed[0].path, &parent, &next);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, first);
  EXPECT_EQ(parent, 4u);
  EXPECT_EQ(next, 9u);

  // Pruning removes deltas folded into a base (seq <= below_seq).
  prune_delta_files(dir.str(), 9);
  listed = list_delta_files(dir.str());
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].seq, 14u);
}

TEST(DeltaSnapshot, TornFileAtEveryOffsetIsRejected) {
  TempDir dir;
  DeltaFileInfo info;
  ASSERT_TRUE(write_delta_file(dir.str(), 3, 8,
                               util::str_bytes("a delta body that will be "
                                               "torn at every offset"),
                               &info, nullptr));
  const Bytes image = read_file(info.path);

  // Truncate the file at every byte offset: each torn variant must be
  // rejected by the CRC/length checks, never accepted or crash.
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    write_file(info.path, util::ByteView(image).subspan(0, cut));
    EXPECT_FALSE(load_delta_file(info.path, nullptr, nullptr).has_value())
        << "cut at " << cut;
  }
  // A single flipped payload byte at full length is rejected too.
  Bytes flipped = image;
  flipped[flipped.size() - 5] ^= 0x20;
  write_file(info.path, flipped);
  EXPECT_FALSE(load_delta_file(info.path, nullptr, nullptr).has_value());

  // The intact image still loads.
  write_file(info.path, image);
  std::uint64_t parent = 0, next = 0;
  EXPECT_TRUE(load_delta_file(info.path, &parent, &next).has_value());
  EXPECT_EQ(parent, 3u);
  EXPECT_EQ(next, 8u);
}

// --- ChainStore open-or-recover ---

TEST(ChainStore, FreshDirectoryStartsAtGenesis) {
  StoreHarness h;
  EXPECT_EQ(h.chain->height(), 0);
  EXPECT_FALSE(h.store->recovery().snapshot_loaded);
  EXPECT_EQ(h.store->recovery().replayed_blocks, 0u);
}

TEST(ChainStore, ReopenReplaysLoggedBlocks) {
  StoreHarness h;
  h.fund();
  h.pay(5 * chain::kCoin);
  const chain::Hash256 state = h.chain->state_hash();
  const int height = h.chain->height();

  h.reopen();
  EXPECT_EQ(h.chain->height(), height);
  EXPECT_EQ(h.chain->state_hash(), state);
  EXPECT_EQ(h.store->recovery().replayed_blocks,
            static_cast<std::size_t>(height));
  EXPECT_FALSE(h.store->recovery().snapshot_loaded);
  EXPECT_EQ(h.store->recovery().truncated_bytes, 0u);

  // The recovered chain keeps working: mine more, reopen again.
  h.mine_blocks(2);
  const chain::Hash256 state2 = h.chain->state_hash();
  h.reopen();
  EXPECT_EQ(h.chain->state_hash(), state2);
}

TEST(ChainStore, SnapshotShortensReplay) {
  StoreHarness h;
  h.opts.snapshot_interval = 3;
  h.reopen();
  h.mine_blocks(8);  // snapshots at 3 and 6; log holds 2 blocks

  const chain::Hash256 state = h.chain->state_hash();
  h.reopen();
  EXPECT_TRUE(h.store->recovery().snapshot_loaded);
  EXPECT_EQ(h.store->recovery().replayed_blocks, 2u);
  EXPECT_EQ(h.chain->height(), 8);
  EXPECT_EQ(h.chain->state_hash(), state);
}

TEST(ChainStore, SnapshotNewerThanLog) {
  StoreHarness h;
  h.mine_blocks(5);
  // Snapshot rotates the log; a crash right after leaves an empty log with
  // a snapshot whose next_seq is ahead of everything in it.
  ASSERT_TRUE(h.store->write_snapshot(*h.chain));
  const std::uint64_t seq_before = h.store->next_seq();
  const chain::Hash256 state = h.chain->state_hash();

  h.reopen();
  EXPECT_TRUE(h.store->recovery().snapshot_loaded);
  EXPECT_EQ(h.store->recovery().replayed_blocks, 0u);
  EXPECT_EQ(h.chain->height(), 5);
  EXPECT_EQ(h.chain->state_hash(), state);
  // Sequence numbering resumes at the snapshot's next_seq, not at 1.
  EXPECT_EQ(h.store->next_seq(), seq_before);
  h.mine_block();
  h.reopen();
  EXPECT_EQ(h.chain->height(), 6);
}

TEST(ChainStore, TornTailRecoversToPreviousBlock) {
  StoreHarness h;
  h.mine_blocks(4);
  const Bytes image = read_file(h.log_path());
  const ScanResult full = scan_log(image);
  ASSERT_EQ(full.records.size(), 4u);
  const std::uint64_t last_start =
      full.valid_bytes - kRecordHeaderBytes - full.records[3].payload.size();
  h.crash();

  // Rip off progressively deeper torn tails: a few bytes, half the record,
  // all but one byte of it. Every variant must recover to height 3.
  for (const std::uint64_t keep :
       {image.size() - 3, last_start + kRecordHeaderBytes + 1,
        last_start + 7, last_start + 1}) {
    write_file(h.log_path(), util::ByteView(image).subspan(
                                 0, static_cast<std::size_t>(keep)));
    std::string error;
    auto store = ChainStore::open(h.params, h.opts, &error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_EQ(store->recovery().truncated_bytes, keep - last_start)
        << "keep=" << keep;
    Blockchain chain = store->take_chain();
    EXPECT_EQ(chain.height(), 3) << "keep=" << keep;
  }
}

TEST(ChainStore, MidFileCorruptionRefusesToOpen) {
  StoreHarness h;
  h.mine_blocks(4);
  h.crash();
  Bytes image = read_file(h.log_path());
  // Flip one byte in the middle of the second record's payload.
  const ScanResult full = scan_log(image);
  ASSERT_EQ(full.records.size(), 4u);
  const std::uint64_t second_payload = kFileHeaderBytes +
                                       2 * kRecordHeaderBytes +
                                       full.records[0].payload.size() + 10;
  ASSERT_TRUE(flip_log_byte(h.log_path(), second_payload));

  std::string error;
  auto store = ChainStore::open(h.params, h.opts, &error);
  EXPECT_EQ(store, nullptr);
  EXPECT_NE(error.find("corrupt"), std::string::npos) << error;
  // The file was NOT truncated by the refused open.
  EXPECT_EQ(read_file(h.log_path()).size(), image.size());
}

TEST(ChainStore, CorruptSnapshotFallsBackToReplay) {
  StoreHarness h;
  h.opts.snapshot_interval = 2;
  // Legacy full-base-only mode: this test is about base-to-base fallback.
  h.opts.incremental_snapshots = false;
  h.reopen();
  h.mine_blocks(4);
  const chain::Hash256 state = h.chain->state_hash();
  h.crash();

  // Corrupt every snapshot: recovery must fall back to... nothing but the
  // log. The log was rotated at the last snapshot though, so corrupt only
  // the NEWEST and let the older one + replay carry the day.
  auto snapshots = list_snapshots(h.dir.str());
  ASSERT_GE(snapshots.size(), 2u);
  Bytes raw = read_file(snapshots[0].path);
  raw[raw.size() / 2] ^= 0x10;
  write_file(snapshots[0].path, raw);

  std::string error;
  auto store = ChainStore::open(h.params, h.opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().snapshots_skipped, 1u);
  // NOTE: the newest snapshot covered the rotated log, and it's gone. The
  // older snapshot + the current log can only rebuild up to what they
  // jointly know — which is everything up to the last rotation point.
  Blockchain chain = store->take_chain();
  EXPECT_LE(chain.height(), 4);
  EXPECT_GE(chain.height(), 2);
  (void)state;
}

TEST(ChainStore, ReplayAcrossReorg) {
  StoreHarness h;  // persistent node that will reorg
  // A competing in-memory branch builder sharing the same genesis.
  Blockchain rival(h.params);
  Mempool rival_pool(h.params);
  Miner rival_miner(h.params, Wallet::from_seed("rival").pkh());

  h.fund();
  h.pay(3 * chain::kCoin);  // payment that will be disconnected
  const int fork_height = h.chain->height() - 1;

  // Rival catches up to the block BELOW our tip (excluding the payment
  // block), then mines two blocks on top — a longer branch that forces the
  // payment block to disconnect.
  for (int bh = 1; bh <= fork_height; ++bh) {
    ASSERT_EQ(rival.accept_block(*h.chain->block_at(bh)),
              AcceptBlockResult::kConnected);
  }
  std::uint64_t rt = 1000;
  const Block r1 = rival_miner.mine(rival, rival_pool, ++rt);
  ASSERT_EQ(rival.accept_block(r1), AcceptBlockResult::kConnected);
  const Block r2 = rival_miner.mine(rival, rival_pool, ++rt);
  ASSERT_EQ(rival.accept_block(r2), AcceptBlockResult::kConnected);

  // Feed the longer rival branch into the persistent chain: side-chain
  // first, then the reorg trigger. Both land in the block log via the sink.
  ASSERT_EQ(h.chain->accept_block(r1), AcceptBlockResult::kSideChain);
  ASSERT_EQ(h.chain->accept_block(r2), AcceptBlockResult::kReorganized);
  EXPECT_EQ(h.chain->tip_hash(), r2.hash());
  const chain::Hash256 state = h.chain->state_hash();
  const int height = h.chain->height();

  // The log now carries: linear history, then r1 (side), then r2 (reorg
  // trigger). Replay must walk the same side-chain + reorg path.
  h.reopen();
  EXPECT_EQ(h.chain->height(), height);
  EXPECT_EQ(h.chain->tip_hash(), r2.hash());
  EXPECT_EQ(h.chain->state_hash(), state);
  // Every logged record replayed: the linear history (fork_height + the
  // disconnected payment block), the side-chain block, the reorg trigger.
  EXPECT_EQ(h.store->recovery().replayed_blocks,
            static_cast<std::size_t>(fork_height) + 3);
}

TEST(ChainStore, ReplayedChainKeepsUndoForNewReorgs) {
  StoreHarness h;
  h.fund();
  const chain::Hash256 old_tip = h.chain->tip_hash();
  const int fork_height = h.chain->height() - 1;
  h.reopen();
  ASSERT_EQ(h.chain->tip_hash(), old_tip);

  // Build a two-block rival branch from fork_height and feed it in: the
  // replayed chain must disconnect its replayed tip using the undo data
  // regenerated during recovery.
  Blockchain rival(h.params);
  Mempool rival_pool(h.params);
  Miner rival_miner(h.params, Wallet::from_seed("rival2").pkh());
  for (int bh = 1; bh <= fork_height; ++bh) {
    ASSERT_EQ(rival.accept_block(*h.chain->block_at(bh)),
              AcceptBlockResult::kConnected);
  }
  std::uint64_t rt = 2000;
  const Block r1 = rival_miner.mine(rival, rival_pool, ++rt);
  ASSERT_EQ(rival.accept_block(r1), AcceptBlockResult::kConnected);
  const Block r2 = rival_miner.mine(rival, rival_pool, ++rt);
  ASSERT_EQ(rival.accept_block(r2), AcceptBlockResult::kConnected);

  ASSERT_EQ(h.chain->accept_block(r1), AcceptBlockResult::kSideChain);
  ASSERT_EQ(h.chain->accept_block(r2), AcceptBlockResult::kReorganized);
  EXPECT_EQ(h.chain->tip_hash(), r2.hash());
  EXPECT_EQ(h.chain->utxo().state_hash(), rival.utxo().state_hash());
}

// --- Incremental elements: delta chain, compaction, torn deltas ---

TEST(ChainStore, IncrementalReopenAppliesDeltaChain) {
  StoreHarness h;
  h.opts.snapshot_interval = 2;
  h.opts.compact_every = 100;  // first element is a base, everything after
                               // stays a delta for this test
  h.reopen();
  h.fund();
  h.pay(2 * chain::kCoin);
  h.mine_blocks(3);  // 7 blocks total: elements at 2 (base), 4, 6 (deltas)
  EXPECT_GE(h.store->deltas_since_base(), 2u);
  EXPECT_GT(h.store->last_delta_bytes(), 0u);
  const chain::Hash256 state = h.chain->state_hash();
  const int height = h.chain->height();

  h.reopen();
  EXPECT_TRUE(h.store->recovery().snapshot_loaded);
  EXPECT_EQ(h.store->recovery().deltas_applied, 2u);
  EXPECT_EQ(h.store->recovery().deltas_skipped, 0u);
  EXPECT_EQ(h.store->recovery().replayed_blocks, 1u);  // log tail: block 7
  EXPECT_EQ(h.chain->height(), height);
  EXPECT_EQ(h.chain->state_hash(), state);

  // The recovered chain keeps producing valid elements.
  h.mine_blocks(2);
  const chain::Hash256 state2 = h.chain->state_hash();
  h.reopen();
  EXPECT_EQ(h.chain->state_hash(), state2);
}

TEST(ChainStore, CompactionFoldsDeltasIntoBaseAndPrunes) {
  StoreHarness h;
  h.opts.snapshot_interval = 1;
  h.opts.compact_every = 2;  // base, delta, delta, base, delta, delta, ...
  h.reopen();
  h.mine_blocks(7);
  // Block 7 wrote the third base: the delta counter restarts and the fold
  // itself was timed.
  EXPECT_EQ(h.store->deltas_since_base(), 0u);
  EXPECT_GT(h.store->last_compaction_ms(), 0.0);

  // keep_snapshots bases survive; deltas at or below the OLDEST kept base
  // are spent (folded) and pruned. Deltas above it stay: they are the
  // fallback chain if the newest base turns out corrupt.
  const auto bases = list_snapshots(h.dir.str());
  ASSERT_EQ(bases.size(), h.opts.keep_snapshots);
  const std::uint64_t oldest_kept = bases.back().seq;
  for (const auto& delta : list_delta_files(h.dir.str())) {
    EXPECT_GT(delta.seq, oldest_kept) << delta.path;
  }

  // Recovery prefers the newest base: nothing to re-apply.
  const chain::Hash256 state = h.chain->state_hash();
  h.reopen();
  EXPECT_TRUE(h.store->recovery().snapshot_loaded);
  EXPECT_EQ(h.store->recovery().snapshot_seq, bases.front().seq);
  EXPECT_EQ(h.store->recovery().deltas_applied, 0u);
  EXPECT_EQ(h.chain->state_hash(), state);
}

TEST(ChainStore, CorruptBaseFallsBackToOlderBasePlusDeltas) {
  StoreHarness h;
  h.opts.snapshot_interval = 1;
  h.opts.compact_every = 2;
  h.reopen();
  h.mine_blocks(6);  // elements: base, delta, delta, base, delta, delta
  const chain::Hash256 state6 = h.chain->state_hash();
  h.mine_block();  // 7th element: a compacting base covering everything
  h.crash();

  // Corrupt the newest base: recovery must fall back to the previous base
  // plus the delta chain on top of it. The log was rotated at the newest
  // element, so the fallback recovers the pre-compaction state (height 6).
  const auto bases = list_snapshots(h.dir.str());
  ASSERT_GE(bases.size(), 2u);
  Bytes raw = read_file(bases.front().path);
  raw[raw.size() / 2] ^= 0x04;
  write_file(bases.front().path, raw);

  std::string error;
  auto store = ChainStore::open(h.params, h.opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().snapshots_skipped, 1u);
  EXPECT_EQ(store->recovery().deltas_applied, 2u);
  Blockchain chain = store->take_chain();
  EXPECT_EQ(chain.height(), 6);
  EXPECT_EQ(chain.state_hash(), state6);
}

TEST(ChainStore, TornDeltaAtEveryOffsetFallsBackToBase) {
  StoreHarness h;
  h.opts.snapshot_interval = 2;
  h.opts.compact_every = 100;
  h.reopen();
  h.mine_blocks(2);  // element 1: full base covering height 2
  const chain::Hash256 base_state = h.chain->state_hash();
  h.mine_blocks(2);  // element 2: delta covering heights 3-4 (rotates log)
  const chain::Hash256 full_state = h.chain->state_hash();
  h.crash();

  const auto deltas = list_delta_files(h.dir.str());
  ASSERT_EQ(deltas.size(), 1u);
  const Bytes image = read_file(deltas[0].path);

  // Truncate the delta file at every byte offset. Every torn variant must
  // still open — falling back to the base element and recovering the exact
  // state the base covered (the delta rotated the log, so blocks 3-4 are
  // only reachable through the delta itself).
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    write_file(deltas[0].path, util::ByteView(image).subspan(0, cut));
    std::string error;
    auto store = ChainStore::open(h.params, h.opts, &error);
    ASSERT_NE(store, nullptr) << "cut at " << cut << ": " << error;
    EXPECT_EQ(store->recovery().deltas_skipped, 1u) << "cut at " << cut;
    EXPECT_EQ(store->recovery().deltas_applied, 0u) << "cut at " << cut;
    Blockchain chain = store->take_chain();
    EXPECT_EQ(chain.height(), 2) << "cut at " << cut;
    EXPECT_EQ(chain.state_hash(), base_state) << "cut at " << cut;
  }

  // Restored intact, the delta applies and the full state comes back.
  write_file(deltas[0].path, image);
  std::string error;
  auto store = ChainStore::open(h.params, h.opts, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->recovery().deltas_applied, 1u);
  Blockchain chain = store->take_chain();
  EXPECT_EQ(chain.height(), 4);
  EXPECT_EQ(chain.state_hash(), full_state);
}

TEST(ChainStore, DeltaAcrossReorgReopens) {
  StoreHarness h;
  h.opts.snapshot_interval = 2;
  h.opts.compact_every = 100;
  h.reopen();
  h.fund();
  h.pay(3 * chain::kCoin);  // height 4: element boundary right at the block
                            // a reorg is about to disconnect
  const int fork_height = h.chain->height() - 1;

  Blockchain rival(h.params);
  Mempool rival_pool(h.params);
  Miner rival_miner(h.params, Wallet::from_seed("rival-delta").pkh());
  for (int bh = 1; bh <= fork_height; ++bh) {
    ASSERT_EQ(rival.accept_block(*h.chain->block_at(bh)),
              AcceptBlockResult::kConnected);
  }
  std::uint64_t rt = 3000;
  const Block r1 = rival_miner.mine(rival, rival_pool, ++rt);
  ASSERT_EQ(rival.accept_block(r1), AcceptBlockResult::kConnected);
  const Block r2 = rival_miner.mine(rival, rival_pool, ++rt);
  ASSERT_EQ(rival.accept_block(r2), AcceptBlockResult::kConnected);

  ASSERT_EQ(h.chain->accept_block(r1), AcceptBlockResult::kSideChain);
  ASSERT_EQ(h.chain->accept_block(r2), AcceptBlockResult::kReorganized);

  // A delta collected across the reorg window carries the pop of the
  // payment block and the pushes of the rival branch.
  ASSERT_TRUE(h.store->write_delta(*h.chain));
  const chain::Hash256 state = h.chain->state_hash();
  const int height = h.chain->height();

  h.reopen();
  EXPECT_GE(h.store->recovery().deltas_applied, 1u);
  EXPECT_EQ(h.chain->height(), height);
  EXPECT_EQ(h.chain->tip_hash(), r2.hash());
  EXPECT_EQ(h.chain->state_hash(), state);
}

TEST(ChainStore, UndoPruneRefusesReorgPastPrunedBlocks) {
  StoreHarness h;
  h.opts.snapshot_interval = 2;
  h.opts.undo_prune_depth = 2;
  h.reopen();
  h.mine_blocks(8);  // element writes prune undo buried deeper than 2
  ASSERT_TRUE(h.chain->undo_pruned_at(1));
  const chain::Hash256 tip = h.chain->tip_hash();

  // A rival branch from genesis that outgrows the active chain would have
  // to disconnect pruned blocks: the reorg must be refused, tip unchanged.
  Blockchain rival(h.params);
  Mempool rival_pool(h.params);
  Miner rival_miner(h.params, Wallet::from_seed("deep-rival").pkh());
  std::uint64_t rt = 4000;
  std::vector<Block> branch;
  for (int i = 0; i < 9; ++i) {
    const Block b = rival_miner.mine(rival, rival_pool, ++rt);
    ASSERT_EQ(rival.accept_block(b), AcceptBlockResult::kConnected);
    branch.push_back(b);
  }
  for (const Block& b : branch) {
    EXPECT_EQ(h.chain->accept_block(b), AcceptBlockResult::kSideChain);
  }
  EXPECT_EQ(h.chain->tip_hash(), tip);

  // The pruned watermark survives a restart and still refuses the reorg.
  h.reopen();
  EXPECT_TRUE(h.chain->undo_pruned_at(1));
  std::uint64_t rt2 = 5000;
  const Block b10 = rival_miner.mine(rival, rival_pool, ++rt2);
  ASSERT_EQ(rival.accept_block(b10), AcceptBlockResult::kConnected);
  for (const Block& b : branch) (void)h.chain->accept_block(b);
  EXPECT_EQ(h.chain->accept_block(b10), AcceptBlockResult::kSideChain);
  EXPECT_EQ(h.chain->tip_hash(), tip);

  // The chain itself still extends normally.
  h.mine_block();
  EXPECT_EQ(h.chain->height(), 9);
}

TEST(ChainStore, ParallelReplayMatchesSerial) {
  StoreHarness h;  // default interval: no snapshots, replay is the whole log
  h.mine_blocks(70);  // above the parallel-decode threshold (64 records)
  const chain::Hash256 state = h.chain->state_hash();
  const int height = h.chain->height();
  h.crash();

  StoreOptions serial = h.opts;
  serial.replay_threads = 1;
  std::string error;
  auto store1 = ChainStore::open(h.params, serial, &error);
  ASSERT_NE(store1, nullptr) << error;
  EXPECT_EQ(store1->recovery().decode_threads, 1u);
  Blockchain chain1 = store1->take_chain();

  StoreOptions parallel = h.opts;
  parallel.replay_threads = 4;
  auto store4 = ChainStore::open(h.params, parallel, &error);
  ASSERT_NE(store4, nullptr) << error;
  EXPECT_EQ(store4->recovery().decode_threads, 4u);
  Blockchain chain4 = store4->take_chain();

  EXPECT_EQ(chain1.height(), height);
  EXPECT_EQ(chain4.height(), height);
  EXPECT_EQ(chain1.state_hash(), state);
  EXPECT_EQ(chain4.state_hash(), state);
  EXPECT_EQ(chain1.active_chain(), chain4.active_chain());
}

TEST(ChainStore, LegacyKind1RecordReplays) {
  StoreHarness h;
  h.mine_blocks(3);
  const std::uint64_t next = h.store->next_seq();

  // Mine block 4 on an in-memory twin so its record never reaches the log
  // through the modern kind-2 encoder.
  Blockchain twin(h.params);
  for (int bh = 1; bh <= 3; ++bh) {
    ASSERT_EQ(twin.accept_block(*h.chain->block_at(bh)),
              AcceptBlockResult::kConnected);
  }
  Mempool twin_pool(h.params);
  Miner twin_miner(h.params, Wallet::from_seed("legacy").pkh());
  const Block b4 = twin_miner.mine(twin, twin_pool, 500);
  ASSERT_EQ(twin.accept_block(b4), AcceptBlockResult::kConnected);
  const chain::BlockUndo* undo = twin.undo_for(b4.hash());
  ASSERT_NE(undo, nullptr);
  h.crash();

  // Hand-craft the legacy kind-1 payload (no stored hash or txids: replay
  // recomputes them) and append it to the live log.
  util::Writer w;
  w.u8(1);  // record kind 1
  w.u8(1);  // has_undo
  w.var_bytes(b4.serialize());
  chain::write_undo(w, *undo);
  {
    BlockLog log;
    ScanResult scan;
    ASSERT_TRUE(log.open(h.log_path(), scan, nullptr));
    ASSERT_EQ(scan.status, ScanStatus::kOk);
    ASSERT_TRUE(log.append(next, w.data(), true));
    log.close();
  }

  h.open();
  EXPECT_EQ(h.chain->height(), 4);
  EXPECT_EQ(h.chain->tip_hash(), b4.hash());
  EXPECT_EQ(h.chain->state_hash(), twin.state_hash());
  EXPECT_EQ(h.store->recovery().replayed_blocks, 4u);
}

// --- Blockchain state serialization ---

TEST(Blockchain, StateSerializationRoundTrip) {
  StoreHarness h;
  h.fund();
  h.pay(2 * chain::kCoin);

  const Bytes state = h.chain->serialize_state();
  const auto restored = Blockchain::restore_state(h.params, state);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->height(), h.chain->height());
  EXPECT_EQ(restored->tip_hash(), h.chain->tip_hash());
  EXPECT_EQ(restored->state_hash(), h.chain->state_hash());
  EXPECT_EQ(restored->active_chain(), h.chain->active_chain());
  // tx_index_ rebuilt: confirmations resolve on the restored chain.
  int confs = 0;
  ASSERT_TRUE(restored->tx_confirmations(
      h.chain->block_at(h.chain->height())->txs[0].txid(), confs));
  EXPECT_EQ(confs, 1);
}

TEST(Blockchain, RestoreStateRejectsMalformedInput) {
  StoreHarness h;
  h.mine_blocks(2);
  Bytes state = h.chain->serialize_state();

  EXPECT_FALSE(Blockchain::restore_state(h.params, Bytes{}).has_value());
  Bytes truncated(state.begin(), state.begin() + state.size() / 2);
  EXPECT_FALSE(Blockchain::restore_state(h.params, truncated).has_value());
  Bytes trailing = state;
  trailing.push_back(0x00);
  EXPECT_FALSE(Blockchain::restore_state(h.params, trailing).has_value());

  // Foreign genesis: restoring under different consensus params must fail
  // (the federation's deterministic genesis no longer matches).
  ChainParams other = h.params;
  other.block_reward = h.params.block_reward + 1;
  EXPECT_FALSE(Blockchain::restore_state(other, state).has_value());
}

TEST(UtxoSet, SerializationIsCanonical) {
  StoreHarness h;
  h.fund();
  h.pay(chain::kCoin);
  const chain::UtxoSet& utxo = h.chain->utxo();
  const Bytes raw = utxo.serialize();
  const auto back = chain::UtxoSet::deserialize(raw);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), utxo.size());
  EXPECT_EQ(back->state_hash(), utxo.state_hash());
  EXPECT_EQ(back->serialize(), raw);  // canonical: same bytes either way
  EXPECT_EQ(back->total_value(), utxo.total_value());
}

TEST(UtxoSet, JournalEmitsNetDiffOnly) {
  chain::UtxoSet set;
  const auto op = [](std::uint8_t tag, std::uint32_t index) {
    chain::OutPoint o;
    o.txid.fill(tag);
    o.index = index;
    return o;
  };
  const chain::Coin coin{chain::TxOut{50, {}}, 1, false};
  set.add(op(0xAA, 0), coin);
  set.add(op(0xBB, 0), coin);

  set.begin_journal();
  ASSERT_TRUE(set.journal_enabled());
  // Net effect: 0xAA spent, 0xCC added. 0xDD is churn (added then spent
  // inside the window) and must cancel out of the diff entirely.
  ASSERT_TRUE(set.spend(op(0xAA, 0)).has_value());
  set.add(op(0xCC, 2), coin);
  set.add(op(0xDD, 1), coin);
  ASSERT_TRUE(set.spend(op(0xDD, 1)).has_value());

  const chain::UtxoJournal diff = set.take_journal();
  ASSERT_EQ(diff.spent.size(), 1u);
  EXPECT_EQ(diff.spent[0], op(0xAA, 0));
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].first, op(0xCC, 2));
  // The window restarted: an untouched window is an empty diff.
  const chain::UtxoJournal empty = set.take_journal();
  EXPECT_TRUE(empty.spent.empty());
  EXPECT_TRUE(empty.added.empty());
}

TEST(Validation, UndoSerializationRoundTrip) {
  StoreHarness h;
  h.fund();
  h.pay(chain::kCoin);
  const chain::BlockUndo* undo = h.chain->undo_for(h.chain->tip_hash());
  ASSERT_NE(undo, nullptr);
  ASSERT_FALSE(undo->spent.empty());

  util::Writer w;
  chain::write_undo(w, *undo);
  util::Reader r(w.data());
  const chain::BlockUndo back = chain::read_undo(r);
  r.expect_done();
  EXPECT_EQ(back, *undo);
}

// --- ChainNode crash/restart ---

struct NodeHarness {
  ChainParams params = test_params();
  TempDir dir;
  p2p::EventLoop loop;
  p2p::SimNet net{loop, 7};
  std::vector<std::unique_ptr<p2p::ChainNode>> nodes;
  Wallet wallet = Wallet::from_seed("miner");
  Miner miner{params, wallet.pkh()};
  std::uint64_t now = 0;

  /// node 0: persistent; node 1: in-memory peer.
  NodeHarness() {
    p2p::ChainNodeConfig persistent;
    persistent.store_dir = (dir.path / "node0").string();
    nodes.push_back(std::make_unique<p2p::ChainNode>(
        loop, net, net.add_host("node0"), params, persistent, 100));
    nodes.push_back(std::make_unique<p2p::ChainNode>(
        loop, net, net.add_host("node1"), params, p2p::ChainNodeConfig{},
        101));
  }

  void mine_on(int i) {
    auto& node = *nodes[i];
    const Block block = miner.mine(node.chain(), node.mempool(), ++now);
    ASSERT_EQ(node.submit_block(block), AcceptBlockResult::kConnected);
    loop.run();
  }
};

TEST(ChainNode, PersistentRestartRecoversFromDisk) {
  NodeHarness h;
  for (int i = 0; i < 5; ++i) h.mine_on(0);
  const chain::Hash256 state = h.nodes[0]->chain().state_hash();

  h.nodes[0]->crash();
  EXPECT_TRUE(h.nodes[0]->crashed());
  ASSERT_TRUE(h.nodes[0]->restart());
  EXPECT_EQ(h.nodes[0]->chain().state_hash(), state);
  EXPECT_EQ(h.nodes[0]->last_recovery().replayed_blocks, 5u);

  // Still a functioning daemon after recovery.
  h.mine_on(0);
  EXPECT_EQ(h.nodes[0]->chain().height(), 6);
  EXPECT_EQ(h.nodes[1]->chain().height(), 6);  // gossip still flows
}

TEST(ChainNode, CrashedNodeIgnoresTraffic) {
  NodeHarness h;
  h.mine_on(0);
  h.nodes[0]->crash();
  const int before = h.nodes[0]->chain().height();
  h.mine_on(1);  // gossip lands while node 0 is dead
  EXPECT_EQ(h.nodes[0]->chain().height(), before);
  ASSERT_TRUE(h.nodes[0]->restart());
  // The missed block arrives via catch-up when the next one gossips.
  h.mine_on(1);
  EXPECT_EQ(h.nodes[0]->chain().height(), h.nodes[1]->chain().height());
}

TEST(ChainNode, InMemoryRestartResetsAndResyncs) {
  NodeHarness h;
  for (int i = 0; i < 3; ++i) h.mine_on(0);
  ASSERT_EQ(h.nodes[1]->chain().height(), 3);
  h.nodes[1]->crash();
  ASSERT_TRUE(h.nodes[1]->restart());
  EXPECT_EQ(h.nodes[1]->chain().height(), 0);  // no disk: genesis reboot
  h.mine_on(0);  // next gossip block is an orphan -> catch-up sync
  EXPECT_EQ(h.nodes[1]->chain().height(), 4);
}

TEST(ChainNode, TornStoreTailRecovers) {
  NodeHarness h;
  for (int i = 0; i < 4; ++i) h.mine_on(0);
  h.nodes[0]->crash();
  ASSERT_GT(h.nodes[0]->tear_store_tail(5), 0u);
  ASSERT_TRUE(h.nodes[0]->restart());
  // Shearing 5 bytes leaves a partial tail record; recovery truncates the
  // whole remainder of that record, not just the missing bytes.
  EXPECT_GT(h.nodes[0]->last_recovery().truncated_bytes, 0u);
  EXPECT_EQ(h.nodes[0]->chain().height(), 3);  // tip block was torn
  // Catch-up sync restores the lost tip on the next gossip round.
  h.mine_on(1);
  EXPECT_EQ(h.nodes[0]->chain().height(), 5);
  EXPECT_EQ(h.nodes[0]->chain().state_hash(),
            h.nodes[1]->chain().state_hash());
}

}  // namespace
}  // namespace bcwan::store

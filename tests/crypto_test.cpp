#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/base58.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/hmac.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace bcwan::crypto {
namespace {

using util::Bytes;
using util::ByteView;
using util::from_hex_strict;
using util::Rng;
using util::str_bytes;
using util::to_hex;

std::string hex256(const Digest256& d) { return to_hex(digest_bytes(d)); }
std::string hex160(const Digest160& d) { return to_hex(digest_bytes(d)); }

// --- SHA-256 (FIPS 180-4 vectors) ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex256(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex256(sha256(str_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex256(sha256(str_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  const Bytes data(1000000, 'a');
  EXPECT_EQ(hex256(sha256(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(1);
  const Bytes data = rng.bytes(1000);
  Sha256 ctx;
  // Feed in irregular chunk sizes to exercise buffering.
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 200u, 607u}) {
    const std::size_t take = std::min(chunk, data.size() - off);
    ctx.update(ByteView(data.data() + off, take));
    off += take;
  }
  ctx.update(ByteView(data.data() + off, data.size() - off));
  EXPECT_EQ(ctx.finalize(), sha256(data));
}

TEST(Sha256, DoubleHash) {
  // sha256d("hello") — well-known value from Bitcoin documentation.
  EXPECT_EQ(hex256(sha256d(str_bytes("hello"))),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50");
}

// --- RIPEMD-160 (Bosselaers vectors) ---

TEST(Ripemd160, EmptyString) {
  EXPECT_EQ(hex160(ripemd160({})),
            "9c1185a5c5e9fc54612808977ee8f548b2258d31");
}

TEST(Ripemd160, Abc) {
  EXPECT_EQ(hex160(ripemd160(str_bytes("abc"))),
            "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
}

TEST(Ripemd160, SingleA) {
  EXPECT_EQ(hex160(ripemd160(str_bytes("a"))),
            "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe");
}

TEST(Ripemd160, MessageDigest) {
  EXPECT_EQ(hex160(ripemd160(str_bytes("message digest"))),
            "5d0689ef49d2fae572b881b123a85ffa21595f36");
}

TEST(Ripemd160, Alphabet) {
  EXPECT_EQ(hex160(ripemd160(str_bytes("abcdefghijklmnopqrstuvwxyz"))),
            "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
}

TEST(Ripemd160, LongPaddingBoundary) {
  // 56..64-byte inputs cross the two-block padding boundary.
  for (std::size_t len = 50; len <= 70; ++len) {
    const Bytes data(len, 'x');
    EXPECT_EQ(ripemd160(data).size(), 20u);
  }
}

TEST(Hash160, KnownPubkeyHash) {
  // HASH160 of the uncompressed generator-point pubkey (Bitcoin's
  // "Satoshi" test value): computed as ripemd160(sha256(x)) by definition.
  const Bytes data = str_bytes("bcwan");
  const Digest256 inner = sha256(data);
  EXPECT_EQ(hash160(data), ripemd160(ByteView(inner.data(), inner.size())));
}

// --- HMAC-SHA256 (RFC 4231 vectors) ---

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex256(hmac_sha256(key, str_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex256(hmac_sha256(str_bytes("Jefe"),
                               str_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hex256(hmac_sha256(
          key, str_bytes("Test Using Larger Than Block-Size Key - Hash Key "
                         "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- AES-256 (FIPS 197 + CBC round trips) ---

TEST(Aes, Fips197Vector) {
  AesKey256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  AesBlock pt;
  const Bytes pt_raw = from_hex_strict("00112233445566778899aabbccddeeff");
  std::copy(pt_raw.begin(), pt_raw.end(), pt.begin());

  const Aes256 cipher(key);
  const AesBlock ct = cipher.encrypt_block(pt);
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.end())),
            "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(cipher.decrypt_block(ct), pt);
}

TEST(Aes, NistSp80038aCbcVector) {
  // NIST SP 800-38A F.2.5 (CBC-AES256.Encrypt), first block. Our API adds
  // PKCS#7 padding, so only the first 16 ciphertext bytes correspond.
  AesKey256 key;
  const Bytes key_raw = from_hex_strict(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  std::copy(key_raw.begin(), key_raw.end(), key.begin());
  AesBlock iv;
  const Bytes iv_raw = from_hex_strict("000102030405060708090a0b0c0d0e0f");
  std::copy(iv_raw.begin(), iv_raw.end(), iv.begin());
  const Bytes pt = from_hex_strict("6bc1bee22e409f96e93d7e117393172a");
  const Bytes ct = aes256_cbc_encrypt(key, iv, pt);
  ASSERT_GE(ct.size(), 16u);
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 16)),
            "f58c4c04d6e5f1ba779eabfb5f7bfbd6");
}

TEST(Aes, CbcRoundTripVariousLengths) {
  Rng rng(2);
  AesKey256 key;
  const Bytes key_raw = rng.bytes(32);
  std::copy(key_raw.begin(), key_raw.end(), key.begin());
  AesBlock iv;
  const Bytes iv_raw = rng.bytes(16);
  std::copy(iv_raw.begin(), iv_raw.end(), iv.begin());

  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u}) {
    const Bytes pt = rng.bytes(len);
    const Bytes ct = aes256_cbc_encrypt(key, iv, pt);
    EXPECT_EQ(ct.size() % kAesBlockSize, 0u);
    EXPECT_GE(ct.size(), len);  // padding never shrinks
    const auto back = aes256_cbc_decrypt(key, iv, ct);
    ASSERT_TRUE(back.has_value()) << len;
    EXPECT_EQ(*back, pt);
  }
}

TEST(Aes, PaperSizedMessageIsOneBlock) {
  // §5.1: readings are < 16 bytes, so ciphertext is exactly 16 bytes and the
  // Fig. 4 blob is 1 + 16 + 1 + 16 = 34 bytes.
  Rng rng(3);
  AesKey256 key{};
  AesBlock iv{};
  const Bytes reading = str_bytes("t=21.5C;h=40%");
  ASSERT_LT(reading.size(), 16u);
  const Bytes ct = aes256_cbc_encrypt(key, iv, reading);
  EXPECT_EQ(ct.size(), 16u);
}

TEST(Aes, CbcRejectsCorruptPadding) {
  Rng rng(4);
  AesKey256 key{};
  AesBlock iv{};
  Bytes ct = aes256_cbc_encrypt(key, iv, str_bytes("hello"));
  ct.back() ^= 0xff;
  // Either padding check fails or (rarely) content differs; padding check
  // must not crash and usually rejects.
  const auto out = aes256_cbc_decrypt(key, iv, ct);
  if (out) {
    EXPECT_NE(*out, str_bytes("hello"));
  }
}

TEST(Aes, CbcRejectsBadLengths) {
  AesKey256 key{};
  AesBlock iv{};
  EXPECT_FALSE(aes256_cbc_decrypt(key, iv, Bytes{}).has_value());
  EXPECT_FALSE(aes256_cbc_decrypt(key, iv, Bytes(15, 0)).has_value());
}

TEST(Aes, DifferentIvDifferentCiphertext) {
  AesKey256 key{};
  AesBlock iv1{};
  AesBlock iv2{};
  iv2[0] = 1;
  const Bytes pt = str_bytes("same plaintext!");
  EXPECT_NE(aes256_cbc_encrypt(key, iv1, pt), aes256_cbc_encrypt(key, iv2, pt));
}

TEST(Hmac, EmptyInputs) {
  // HMAC with empty key and empty message still produces a fixed digest.
  const Digest256 a = hmac_sha256({}, {});
  const Digest256 b = hmac_sha256({}, {});
  EXPECT_EQ(a, b);
  EXPECT_NE(hex256(a), hex256(hmac_sha256(str_bytes("k"), {})));
}

TEST(Sha256, BlockBoundaryLengths) {
  // Lengths around the 64-byte block / 56-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes data(len, 0x61);
    Sha256 ctx;
    // Incremental one-byte feed must equal the one-shot digest.
    for (std::size_t i = 0; i < len; ++i)
      ctx.update(ByteView(data.data() + i, 1));
    EXPECT_EQ(ctx.finalize(), sha256(data)) << len;
  }
}

// --- RSA ---

class RsaFixture : public ::testing::Test {
 protected:
  static const RsaKeyPair& pair512() {
    static const RsaKeyPair kp = [] {
      Rng rng(100);
      return rsa_generate(rng, 512);
    }();
    return kp;
  }
};

TEST_F(RsaFixture, ModulusExactly512Bits) {
  EXPECT_EQ(pair512().pub.n.bit_length(), 512u);
  EXPECT_EQ(pair512().pub.modulus_bytes(), 64u);
}

TEST_F(RsaFixture, EncryptDecryptRoundTrip) {
  Rng rng(101);
  const Bytes msg = str_bytes("ephemeral payload 34 bytes long!!x");
  ASSERT_EQ(msg.size(), 34u);  // the Fig. 4 blob size
  const Bytes ct = rsa_encrypt(pair512().pub, msg, rng);
  EXPECT_EQ(ct.size(), 64u);  // §5.1: 64-byte RSA-512 blob
  const auto back = rsa_decrypt(pair512().priv, ct);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST_F(RsaFixture, EncryptionIsRandomized) {
  Rng rng(102);
  const Bytes msg = str_bytes("m");
  EXPECT_NE(rsa_encrypt(pair512().pub, msg, rng),
            rsa_encrypt(pair512().pub, msg, rng));
}

TEST_F(RsaFixture, PlaintextTooLongThrows) {
  Rng rng(103);
  EXPECT_THROW(rsa_encrypt(pair512().pub, Bytes(54, 0), rng),
               std::invalid_argument);
  EXPECT_NO_THROW(rsa_encrypt(pair512().pub, Bytes(53, 0), rng));
}

TEST_F(RsaFixture, DecryptRejectsGarbage) {
  EXPECT_FALSE(rsa_decrypt(pair512().priv, Bytes(63, 7)).has_value());
  EXPECT_FALSE(rsa_decrypt(pair512().priv, Bytes(64, 0xff)).has_value());
}

TEST_F(RsaFixture, SignVerify) {
  const Bytes msg = str_bytes("Em || ePk");
  const Bytes sig = rsa_sign(pair512().priv, msg);
  EXPECT_EQ(sig.size(), 64u);  // §5.1: 64-byte signature
  EXPECT_TRUE(rsa_verify(pair512().pub, msg, sig));
  EXPECT_FALSE(rsa_verify(pair512().pub, str_bytes("Em || ePk'"), sig));
  Bytes tampered = sig;
  tampered[10] ^= 1;
  EXPECT_FALSE(rsa_verify(pair512().pub, msg, tampered));
}

TEST_F(RsaFixture, VerifyRejectsWrongKey) {
  Rng rng(104);
  const RsaKeyPair other = rsa_generate(rng, 512);
  const Bytes msg = str_bytes("msg");
  const Bytes sig = rsa_sign(pair512().priv, msg);
  EXPECT_FALSE(rsa_verify(other.pub, msg, sig));
}

TEST_F(RsaFixture, PairMatches) {
  EXPECT_TRUE(rsa_pair_matches(pair512().pub, pair512().priv));
  Rng rng(105);
  const RsaKeyPair other = rsa_generate(rng, 512);
  EXPECT_FALSE(rsa_pair_matches(pair512().pub, other.priv));
  EXPECT_FALSE(rsa_pair_matches(other.pub, pair512().priv));
}

TEST_F(RsaFixture, PairMatchRejectsMatchingModulusWrongExponent) {
  RsaPrivateKey corrupted = pair512().priv;
  corrupted.d = corrupted.d + bignum::BigUint(2);
  EXPECT_FALSE(rsa_pair_matches(pair512().pub, corrupted));
}

TEST_F(RsaFixture, KeySerializationRoundTrip) {
  const auto pub_ser = pair512().pub.serialize();
  const auto pub_back = RsaPublicKey::deserialize(pub_ser);
  ASSERT_TRUE(pub_back.has_value());
  EXPECT_EQ(*pub_back, pair512().pub);

  const auto priv_ser = pair512().priv.serialize();
  const auto priv_back = RsaPrivateKey::deserialize(priv_ser);
  ASSERT_TRUE(priv_back.has_value());
  EXPECT_EQ(*priv_back, pair512().priv);

  EXPECT_FALSE(RsaPublicKey::deserialize(Bytes{0x01}).has_value());
  EXPECT_FALSE(RsaPrivateKey::deserialize(Bytes{}).has_value());
}

TEST(Rsa, LargerModuli) {
  Rng rng(106);
  for (std::size_t bits : {768u, 1024u}) {
    const RsaKeyPair kp = rsa_generate(rng, bits);
    EXPECT_EQ(kp.pub.n.bit_length(), bits);
    const Bytes msg = str_bytes("ablation");
    const Bytes ct = rsa_encrypt(kp.pub, msg, rng);
    EXPECT_EQ(ct.size(), bits / 8);
    EXPECT_EQ(rsa_decrypt(kp.priv, ct), msg);
    EXPECT_TRUE(rsa_verify(kp.pub, msg, rsa_sign(kp.priv, msg)));
  }
}

// --- RSA-CRT fast path vs the full-width reference ---
//
// The CRT path must be observationally identical to the plain-d path: same
// signature bytes, same plaintexts, same pairing verdicts. A scoped guard
// flips the kill switch so each test restores the process default.

namespace {

class CrtGuard {
 public:
  explicit CrtGuard(bool enabled) : saved_(rsa_crt_enabled()) {
    set_rsa_crt_enabled(enabled);
  }
  ~CrtGuard() { set_rsa_crt_enabled(saved_); }
  CrtGuard(const CrtGuard&) = delete;
  CrtGuard& operator=(const CrtGuard&) = delete;

 private:
  bool saved_;
};

}  // namespace

TEST_F(RsaFixture, CrtParamsFilledByGenerateAndConsistent) {
  const RsaPrivateKey& priv = pair512().priv;
  ASSERT_TRUE(priv.has_crt());
  EXPECT_EQ(priv.p * priv.q, priv.n);
  EXPECT_EQ(priv.dp, priv.d % (priv.p - bignum::BigUint(1)));
  EXPECT_EQ(priv.dq, priv.d % (priv.q - bignum::BigUint(1)));
  EXPECT_EQ(bignum::BigUint::mod_mul(priv.qinv, priv.q % priv.p, priv.p),
            bignum::BigUint(1));
}

TEST_F(RsaFixture, CrtMatchesReferenceOnAllPrivateOps) {
  Rng rng(110);
  const Bytes msg = str_bytes("crt differential payload");
  const Bytes ct = rsa_encrypt(pair512().pub, msg, rng);

  Bytes sig_crt, sig_ref;
  std::optional<Bytes> pt_crt, pt_ref;
  bool pair_crt = false, pair_ref = false;
  {
    CrtGuard on(true);
    sig_crt = rsa_sign(pair512().priv, msg);
    pt_crt = rsa_decrypt(pair512().priv, ct);
    pair_crt = rsa_pair_matches(pair512().pub, pair512().priv);
  }
  {
    CrtGuard off(false);
    sig_ref = rsa_sign(pair512().priv, msg);
    pt_ref = rsa_decrypt(pair512().priv, ct);
    pair_ref = rsa_pair_matches(pair512().pub, pair512().priv);
  }
  EXPECT_EQ(sig_crt, sig_ref);  // byte-identical, not just both-valid
  ASSERT_TRUE(pt_crt.has_value());
  EXPECT_EQ(pt_crt, pt_ref);
  EXPECT_EQ(*pt_crt, msg);
  EXPECT_TRUE(pair_crt);
  EXPECT_TRUE(pair_ref);
}

TEST_F(RsaFixture, CrtRecoveryFromWireKey) {
  // On-chain reveals carry only n||e||d: the deserialized key has no CRT
  // fields, and recovery must refactor n from (e, d).
  const auto wire = RsaPrivateKey::deserialize(pair512().priv.serialize());
  ASSERT_TRUE(wire.has_value());
  RsaPrivateKey key = *wire;
  EXPECT_FALSE(key.has_crt());
  ASSERT_TRUE(rsa_crt_recover(key));
  ASSERT_TRUE(key.has_crt());
  EXPECT_EQ(key.p * key.q, key.n);
  // Same factor set as the generator produced (order may differ).
  const RsaPrivateKey& orig = pair512().priv;
  EXPECT_TRUE((key.p == orig.p && key.q == orig.q) ||
              (key.p == orig.q && key.q == orig.p));
  // Recovery is idempotent.
  EXPECT_TRUE(rsa_crt_recover(key));
}

TEST_F(RsaFixture, WireKeyOpsMatchGeneratedKeyUnderCrt) {
  // The thread-local recovery cache path: private ops on a CRT-less
  // deserialized key must produce the same bytes as the generated key.
  CrtGuard on(true);
  const auto wire = RsaPrivateKey::deserialize(pair512().priv.serialize());
  ASSERT_TRUE(wire.has_value());
  EXPECT_FALSE(wire->has_crt());
  Rng rng(111);
  const Bytes msg = str_bytes("wire key payload");
  const Bytes ct = rsa_encrypt(pair512().pub, msg, rng);
  EXPECT_EQ(rsa_sign(*wire, msg), rsa_sign(pair512().priv, msg));
  EXPECT_EQ(rsa_decrypt(*wire, ct), rsa_decrypt(pair512().priv, ct));
  EXPECT_TRUE(rsa_pair_matches(pair512().pub, *wire));
}

TEST_F(RsaFixture, CorruptedCrtParamsFallBackAndStayCorrect) {
  CrtGuard on(true);
  RsaPrivateKey sabotaged = pair512().priv;
  ASSERT_TRUE(sabotaged.has_crt());
  sabotaged.dp = sabotaged.dp + bignum::BigUint(2);  // wrong but plausible
  const Bytes msg = str_bytes("fault injection");
  const std::uint64_t faults_before = rsa_crt_fault_count();
  const Bytes sig = rsa_sign(sabotaged, msg);
  // The public-exponent re-check caught the miscomputation, counted it, and
  // the full-width fallback still produced the correct signature.
  EXPECT_GT(rsa_crt_fault_count(), faults_before);
  EXPECT_EQ(sig, rsa_sign(pair512().priv, msg));
  EXPECT_TRUE(rsa_verify(pair512().pub, msg, sig));
}

TEST(RsaCrt, RecoveryRejectsInconsistentKeys) {
  Rng rng(112);
  const RsaKeyPair kp = rsa_generate(rng, 512);
  // d corrupted: e*d - 1 is no longer a multiple of lambda(n), so the
  // square-root chain never finds a factor.
  RsaPrivateKey bad_d;
  bad_d.n = kp.priv.n;
  bad_d.e = kp.priv.e;
  bad_d.d = kp.priv.d + bignum::BigUint(2);
  EXPECT_FALSE(rsa_crt_recover(bad_d));
  EXPECT_FALSE(bad_d.has_crt());

  RsaPrivateKey zero_e = bad_d;
  zero_e.d = kp.priv.d;
  zero_e.e = bignum::BigUint();
  EXPECT_FALSE(rsa_crt_recover(zero_e));

  RsaPrivateKey even_n = kp.priv;
  even_n.p = even_n.q = even_n.dp = even_n.dq = even_n.qinv = bignum::BigUint();
  even_n.n = even_n.n + bignum::BigUint(1);  // even, certainly not p*q
  EXPECT_FALSE(rsa_crt_recover(even_n));
}

TEST(RsaCrt, KillSwitchAndBackendDefault) {
  // BCWAN_RSA_BACKEND is unset in the test environment, so CRT defaults on;
  // the programmatic switch must round-trip.
  const bool saved = rsa_crt_enabled();
  set_rsa_crt_enabled(false);
  EXPECT_FALSE(rsa_crt_enabled());
  set_rsa_crt_enabled(true);
  EXPECT_TRUE(rsa_crt_enabled());
  set_rsa_crt_enabled(saved);
}

TEST(RsaCrt, LargerModuliDifferential) {
  Rng rng(113);
  const RsaKeyPair kp = rsa_generate(rng, 1024);
  ASSERT_TRUE(kp.priv.has_crt());
  const Bytes msg = str_bytes("1024-bit crt");
  Bytes sig_crt, sig_ref;
  {
    CrtGuard on(true);
    sig_crt = rsa_sign(kp.priv, msg);
  }
  {
    CrtGuard off(false);
    sig_ref = rsa_sign(kp.priv, msg);
  }
  EXPECT_EQ(sig_crt, sig_ref);
  EXPECT_TRUE(rsa_verify(kp.pub, msg, sig_crt));
}

// --- ECDSA secp256k1 ---

TEST(Ecdsa, GeneratorOnCurve) {
  EXPECT_TRUE(Secp256k1::on_curve(Secp256k1::g()));
}

TEST(Ecdsa, GroupOrderAnnihilatesGenerator) {
  const EcPoint ng = Secp256k1::mul(Secp256k1::n(), Secp256k1::g());
  EXPECT_TRUE(ng.infinity);
}

TEST(Ecdsa, KnownScalarMultiple) {
  // 2G, well-known value.
  const EcPoint g2 = Secp256k1::mul(bignum::BigUint(2), Secp256k1::g());
  EXPECT_EQ(g2.x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(g2.y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Ecdsa, AddCommutesWithMul) {
  const EcPoint g = Secp256k1::g();
  const EcPoint g2 = Secp256k1::add(g, g);
  const EcPoint g3a = Secp256k1::add(g2, g);
  const EcPoint g3b = Secp256k1::mul(bignum::BigUint(3), g);
  EXPECT_EQ(g3a, g3b);
}

TEST(Ecdsa, AddInverseGivesInfinity) {
  const EcPoint g = Secp256k1::g();
  const EcPoint neg{g.x, Secp256k1::p() - g.y, false};
  EXPECT_TRUE(Secp256k1::add(g, neg).infinity);
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  Rng rng(200);
  const EcKeyPair kp = ec_generate(rng);
  EXPECT_TRUE(Secp256k1::on_curve(kp.pub));
  const Bytes msg = str_bytes("transaction bytes");
  const EcdsaSignature sig = ecdsa_sign(kp.priv, msg);
  EXPECT_TRUE(ecdsa_verify(kp.pub, msg, sig));
  EXPECT_FALSE(ecdsa_verify(kp.pub, str_bytes("other"), sig));
}

TEST(Ecdsa, SignatureIsDeterministic) {
  Rng rng(201);
  const EcKeyPair kp = ec_generate(rng);
  const Bytes msg = str_bytes("same message");
  EXPECT_EQ(ecdsa_sign(kp.priv, msg), ecdsa_sign(kp.priv, msg));
}

TEST(Ecdsa, WrongKeyRejected) {
  Rng rng(202);
  const EcKeyPair kp1 = ec_generate(rng);
  const EcKeyPair kp2 = ec_generate(rng);
  const Bytes msg = str_bytes("msg");
  EXPECT_FALSE(ecdsa_verify(kp2.pub, msg, ecdsa_sign(kp1.priv, msg)));
}

TEST(Ecdsa, TamperedSignatureRejected) {
  Rng rng(203);
  const EcKeyPair kp = ec_generate(rng);
  const Bytes msg = str_bytes("msg");
  EcdsaSignature sig = ecdsa_sign(kp.priv, msg);
  sig.r = sig.r + bignum::BigUint(1);
  EXPECT_FALSE(ecdsa_verify(kp.pub, msg, sig));
}

TEST(Ecdsa, LowSNormalization) {
  Rng rng(204);
  const EcKeyPair kp = ec_generate(rng);
  for (int i = 0; i < 10; ++i) {
    const Bytes msg = rng.bytes(32);
    const EcdsaSignature sig = ecdsa_sign(kp.priv, msg);
    EXPECT_TRUE(sig.s <= Secp256k1::n() >> 1);
  }
}

TEST(Ecdsa, PubkeyEncodeDecodeRoundTrip) {
  Rng rng(205);
  const EcKeyPair kp = ec_generate(rng);
  const Bytes enc = ec_pubkey_encode(kp.pub);
  EXPECT_EQ(enc.size(), 65u);
  EXPECT_EQ(enc[0], 0x04);
  const auto back = ec_pubkey_decode(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, kp.pub);
}

TEST(Ecdsa, PubkeyDecodeRejectsOffCurve) {
  Rng rng(206);
  const EcKeyPair kp = ec_generate(rng);
  Bytes enc = ec_pubkey_encode(kp.pub);
  enc[40] ^= 1;
  EXPECT_FALSE(ec_pubkey_decode(enc).has_value());
  EXPECT_FALSE(ec_pubkey_decode(Bytes(64, 4)).has_value());
}

TEST(Ecdsa, SignatureSerializationRoundTrip) {
  Rng rng(207);
  const EcKeyPair kp = ec_generate(rng);
  const EcdsaSignature sig = ecdsa_sign(kp.priv, str_bytes("x"));
  const Bytes ser = sig.serialize();
  EXPECT_EQ(ser.size(), 64u);
  const auto back = EcdsaSignature::deserialize(ser);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, sig);
  EXPECT_FALSE(EcdsaSignature::deserialize(Bytes(63, 1)).has_value());
  EXPECT_FALSE(EcdsaSignature::deserialize(Bytes(64, 0)).has_value());
}

TEST(Ecdsa, SeededIdentityIsStable) {
  const EcKeyPair a = ec_from_seed(str_bytes("gateway-1"));
  const EcKeyPair b = ec_from_seed(str_bytes("gateway-1"));
  const EcKeyPair c = ec_from_seed(str_bytes("gateway-2"));
  EXPECT_EQ(a.priv, b.priv);
  EXPECT_FALSE(a.priv == c.priv);
  EXPECT_TRUE(Secp256k1::on_curve(a.pub));
}

// --- ECDSA fast paths (wNAF / Shamir) vs the reference oracle ---
//
// Secp256k1::mul is the untouched double-and-add ladder; every fast-path
// result must match it bit for bit, including the edge scalars 0, 1, n-1, n
// and point-at-infinity inputs.

namespace {

using bignum::BigUint;

std::vector<BigUint> edge_scalars() {
  const BigUint& n = Secp256k1::n();
  return {BigUint(0),          BigUint(1),
          BigUint(2),          n - BigUint(1),
          n,                   n + BigUint(1),
          n >> 1,              (n >> 1) + BigUint(1),
          BigUint(0xdeadbeef), n + n - BigUint(1)};
}

/// Pseudorandom curve point derived through the reference ladder.
EcPoint reference_point(Rng& rng) {
  const BigUint k = BigUint::from_bytes_be(rng.bytes(32)) % Secp256k1::n();
  return Secp256k1::mul(k + bignum::BigUint(1), Secp256k1::g());
}

}  // namespace

TEST(EcdsaFast, WnafMatchesReferenceOnRandomScalars) {
  Rng rng(300);
  for (int i = 0; i < 24; ++i) {
    const BigUint k = BigUint::from_bytes_be(rng.bytes(32));
    const EcPoint q = reference_point(rng);
    EXPECT_EQ(ec_mul_wnaf(k, q), Secp256k1::mul(k, q)) << "iteration " << i;
  }
}

TEST(EcdsaFast, WnafMatchesReferenceOnEdgeScalars) {
  Rng rng(301);
  const EcPoint q = reference_point(rng);
  for (const BigUint& k : edge_scalars()) {
    EXPECT_EQ(ec_mul_wnaf(k, q), Secp256k1::mul(k, q)) << k.to_hex();
    EXPECT_EQ(ec_mul_gen_wnaf(k), Secp256k1::mul(k, Secp256k1::g()))
        << k.to_hex();
  }
}

TEST(EcdsaFast, WnafHandlesInfinityInput) {
  const EcPoint inf{BigUint{}, BigUint{}, true};
  EXPECT_TRUE(ec_mul_wnaf(BigUint(12345), inf).infinity);
  EXPECT_TRUE(ec_mul_wnaf(BigUint(0), inf).infinity);
}

TEST(EcdsaFast, GenWnafMatchesReferenceOnRandomScalars) {
  Rng rng(302);
  for (int i = 0; i < 24; ++i) {
    const BigUint k = BigUint::from_bytes_be(rng.bytes(32));
    EXPECT_EQ(ec_mul_gen_wnaf(k), Secp256k1::mul(k, Secp256k1::g()))
        << "iteration " << i;
  }
}

TEST(EcdsaFast, ShamirMatchesReferenceOnRandomPairs) {
  Rng rng(303);
  for (int i = 0; i < 24; ++i) {
    const BigUint u1 = BigUint::from_bytes_be(rng.bytes(32));
    const BigUint u2 = BigUint::from_bytes_be(rng.bytes(32));
    const EcPoint q = reference_point(rng);
    const EcPoint expected = Secp256k1::add(
        Secp256k1::mul(u1, Secp256k1::g()), Secp256k1::mul(u2, q));
    EXPECT_EQ(ec_shamir(u1, u2, q), expected) << "iteration " << i;
  }
}

TEST(EcdsaFast, ShamirEdgeCombinations) {
  Rng rng(304);
  const EcPoint q = reference_point(rng);
  const EcPoint& g = Secp256k1::g();
  const EcPoint neg_g{g.x, Secp256k1::p() - g.y, false};
  for (const BigUint& u1 : edge_scalars()) {
    for (const BigUint& u2 : {BigUint(0), BigUint(1), Secp256k1::n(),
                              Secp256k1::n() - BigUint(1)}) {
      const EcPoint expected = Secp256k1::add(
          Secp256k1::mul(u1, Secp256k1::g()), Secp256k1::mul(u2, q));
      EXPECT_EQ(ec_shamir(u1, u2, q), expected)
          << u1.to_hex() << " / " << u2.to_hex();
    }
  }
  // Cancellation corners: Q collides with +-G so the shared doubling chain
  // hits the equal-x branches of the addition formulas.
  EXPECT_EQ(ec_shamir(BigUint(5), BigUint(7), g),
            Secp256k1::mul(BigUint(12), g));
  EXPECT_TRUE(ec_shamir(BigUint(9), BigUint(9), neg_g).infinity);
  EXPECT_TRUE(
      ec_shamir(BigUint(0), BigUint(0),
                EcPoint{BigUint{}, BigUint{}, true}).infinity);
  EXPECT_TRUE(ec_shamir(BigUint(3), BigUint(4),
                        EcPoint{BigUint{}, BigUint{}, true}) ==
              Secp256k1::mul(BigUint(3), g));
}

TEST(EcdsaFast, SignaturesIdenticalAcrossBackends) {
  Rng rng(305);
  const EcKeyPair kp = ec_generate(rng);
  const char* backends[] = {"reference", "wnaf", "shamir"};
  for (int i = 0; i < 8; ++i) {
    const Bytes msg = rng.bytes(40);
    std::vector<Bytes> sigs;
    for (const char* name : backends) {
      ASSERT_TRUE(ecdsa_select_backend(name));
      sigs.push_back(ecdsa_sign(kp.priv, msg).serialize());
    }
    EXPECT_EQ(sigs[0], sigs[1]);
    EXPECT_EQ(sigs[0], sigs[2]);
  }
  ASSERT_TRUE(ecdsa_select_backend("auto"));
}

TEST(EcdsaFast, VerifyAgreesAcrossBackends) {
  Rng rng(306);
  const EcKeyPair kp = ec_generate(rng);
  const char* backends[] = {"reference", "wnaf", "shamir"};
  for (int i = 0; i < 8; ++i) {
    const Bytes msg = rng.bytes(33);
    EcdsaSignature sig = ecdsa_sign(kp.priv, msg);
    EcdsaSignature bad = sig;
    bad.s = bad.s + BigUint(1);
    for (const char* name : backends) {
      ASSERT_TRUE(ecdsa_select_backend(name));
      EXPECT_TRUE(ecdsa_verify(kp.pub, msg, sig)) << name;
      EXPECT_FALSE(ecdsa_verify(kp.pub, msg, bad)) << name;
      EXPECT_FALSE(ecdsa_verify(kp.pub, str_bytes("other"), sig)) << name;
    }
  }
  ASSERT_TRUE(ecdsa_select_backend("auto"));
}

TEST(EcdsaFast, BackendSelection) {
  EXPECT_TRUE(ecdsa_select_backend("reference"));
  EXPECT_STREQ(ecdsa_backend_name(), "reference");
  EXPECT_TRUE(ecdsa_select_backend("wnaf"));
  EXPECT_STREQ(ecdsa_backend_name(), "wnaf");
  EXPECT_FALSE(ecdsa_select_backend("no-such-backend"));
  EXPECT_STREQ(ecdsa_backend_name(), "wnaf");  // unchanged on bad name
  // "auto" restores the configured default: the BCWAN_ECDSA_BACKEND pin
  // when it names a valid backend (CI's forced-reference pass), shamir
  // otherwise.
  const char* env = std::getenv("BCWAN_ECDSA_BACKEND");
  std::string expected = env ? env : "shamir";
  if (expected != "reference" && expected != "wnaf" && expected != "shamir")
    expected = "shamir";
  EXPECT_TRUE(ecdsa_select_backend("auto"));
  EXPECT_EQ(ecdsa_backend_name(), expected);
  ecdsa_warmup();  // smoke: builds tables, primes thread-local contexts
}

TEST(EcdsaFast, ConcurrentUseIsRaceFree) {
  // Several threads hammer the shared generator tables and their own
  // thread-local Montgomery caches at once; every thread must agree with
  // the reference ladder. Run under TSan in CI, this is the regression net
  // for the one-time precomputation init and the warmup call in the
  // checkqueue workers.
  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<std::thread> workers;
  std::array<bool, kThreads> ok{};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &ok] {
      ecdsa_warmup();
      Rng rng(400 + static_cast<std::uint64_t>(t));
      bool all_match = true;
      for (int i = 0; i < kIters; ++i) {
        const bignum::BigUint k =
            bignum::BigUint::random_below(rng, Secp256k1::n());
        const EcPoint want = Secp256k1::mul(k, Secp256k1::g());
        all_match = all_match && ec_mul_gen_wnaf(k) == want &&
                    ec_shamir(k, bignum::BigUint(), Secp256k1::g()) == want;
      }
      ok[static_cast<std::size_t>(t)] = all_match;
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[static_cast<std::size_t>(t)]) << t;
}

// --- Base58 ---

TEST(Base58, KnownVectors) {
  EXPECT_EQ(base58_encode(str_bytes("hello world")), "StV1DL6CwTryKyV");
  EXPECT_EQ(base58_encode({}), "");
  const Bytes zeros = {0x00, 0x00, 0x01};
  EXPECT_EQ(base58_encode(zeros), "112");
}

TEST(Base58, RoundTripRandom) {
  Rng rng(300);
  for (int i = 0; i < 50; ++i) {
    const Bytes data = rng.bytes(rng.below(40));
    EXPECT_EQ(base58_decode(base58_encode(data)), data);
  }
}

TEST(Base58, DecodeRejectsBadChars) {
  EXPECT_FALSE(base58_decode("0OIl").has_value());
  EXPECT_FALSE(base58_decode("abc!").has_value());
}

TEST(Base58Check, RoundTrip) {
  Rng rng(301);
  const Bytes payload = rng.bytes(20);
  const std::string addr = base58check_encode(0x00, payload);
  const auto back = base58check_decode(addr);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 0x00);
  EXPECT_EQ(back->payload, payload);
}

TEST(Base58Check, DetectsCorruption) {
  const std::string addr = base58check_encode(0x00, Bytes(20, 7));
  std::string bad = addr;
  bad[bad.size() / 2] = bad[bad.size() / 2] == '2' ? '3' : '2';
  EXPECT_FALSE(base58check_decode(bad).has_value());
  EXPECT_FALSE(base58check_decode("abc").has_value());
}

}  // namespace
}  // namespace bcwan::crypto

// Chaos-injection and recovery tests: the FaultPlan subsystem, the
// end-to-end retry paths it exercises (sensor retransmit, gateway re-key
// and DELIVER retry, recipient offer re-broadcast), and the federation
// safety invariants that must survive every fault.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "chain/miner.hpp"
#include "script/templates.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"
#include "sim/scenario.hpp"

namespace bcwan {
namespace {

using util::str_bytes;

sim::ScenarioConfig fault_config(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 2;
  config.seed = seed;
  config.chain_params.pow_zero_bits = 4;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 10 * util::kSecond;
  config.recipient_funding = 30 * chain::kCoin;
  return config;
}

// --- FaultPlan mechanics ---

TEST(FaultPlan, MinerStallFreezesAndResumesBlockProduction) {
  sim::Scenario s(fault_config(101));
  s.bootstrap();
  sim::FaultPlan faults(s, 1);
  faults.stall_miner(s.loop().now() + 10 * util::kSecond, 2 * util::kMinute);

  s.loop().run_until(s.loop().now() + 15 * util::kSecond);
  ASSERT_TRUE(s.mining_paused());
  const std::uint64_t frozen = s.blocks_mined();
  s.loop().run_until(s.loop().now() + 100 * util::kSecond);
  EXPECT_EQ(s.blocks_mined(), frozen) << "blocks mined during the stall";

  s.loop().run_until(s.loop().now() + 5 * util::kMinute);
  EXPECT_FALSE(s.mining_paused());
  EXPECT_GT(s.blocks_mined(), frozen) << "mining never resumed";
  EXPECT_EQ(faults.stalls_injected(), 1u);
}

TEST(FaultPlan, PartitionOpensAndHeals) {
  sim::Scenario s(fault_config(102));
  s.bootstrap();
  sim::FaultPlan faults(s, 2);
  faults.partition_actor(0, s.loop().now() + util::kSecond,
                         30 * util::kSecond);
  s.loop().run_until(s.loop().now() + 5 * util::kSecond);
  EXPECT_TRUE(s.net().is_partitioned(s.actor_node(0).host()));
  s.loop().run_until(s.loop().now() + util::kMinute);
  EXPECT_FALSE(s.net().is_partitioned(s.actor_node(0).host()));
  EXPECT_EQ(faults.partitions_injected(), 1u);
  EXPECT_EQ(faults.log().size(), 2u);
}

// --- Recovery paths ---

TEST(Recovery, BurstLossDegradationRecoversViaRetransmission) {
  // Force every LoRa link into a total-blackout bad state for a minute; the
  // exchange started under it must complete once the channel recovers.
  sim::Scenario s(fault_config(103));
  s.bootstrap();
  sim::FaultPlan faults(s, 3);
  lora::BurstLossModel burst;
  burst.loss_bad = 1.0;
  burst.mean_bad_s = 20.0;
  faults.degrade_lora(burst, s.loop().now() + util::kSecond,
                      util::kMinute);
  s.loop().run_until(s.loop().now() + 2 * util::kSecond);

  s.sensor(0, 0).start_exchange(str_bytes("thru the fade"));
  const util::SimTime deadline = s.loop().now() + 20 * util::kMinute;
  while (s.recipient(0).readings_decrypted() == 0 &&
         s.loop().now() < deadline) {
    s.loop().run_until(s.loop().now() + util::kSecond);
  }
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);
  EXPECT_GT(s.radio().frames_lost(), 0u);
  // Recovery really went through the radio retry machinery.
  EXPECT_GE(s.sensor(0, 0).request_retries() +
                s.sensor(0, 0).data_retransmissions() +
                s.sensor(0, 0).exchange_restarts(),
            1u);
}

TEST(Recovery, GatewayCrashMidExchangeRecovers) {
  // Crash the serving gateway just as it mints the ephemeral key; the
  // sensor's retry path must re-drive the exchange after the restart.
  sim::Scenario s(fault_config(104));
  s.bootstrap();

  // sensor(0,*) attaches to actor 1's master gateway.
  const std::size_t victim = static_cast<std::size_t>(
      1 * s.config().gateways_per_actor + static_cast<int>(s.master_index(1)));
  sim::FaultPlan faults(s, 4);

  s.sensor(0, 0).start_exchange(str_bytes("crash test"));
  // Run until the key is minted, then crash immediately for 45 s.
  const util::SimTime key_deadline = s.loop().now() + 2 * util::kMinute;
  while (s.gateway_by_index(victim).keys_issued() == 0 &&
         s.loop().now() < key_deadline) {
    s.loop().run_until(s.loop().now() + 100 * util::kMillisecond);
  }
  ASSERT_GE(s.gateway_by_index(victim).keys_issued(), 1u);
  faults.crash_gateway(victim, s.loop().now(), 45 * util::kSecond);

  const util::SimTime deadline = s.loop().now() + 30 * util::kMinute;
  while (s.recipient(0).readings_decrypted() == 0 &&
         s.loop().now() < deadline) {
    s.loop().run_until(s.loop().now() + util::kSecond);
  }
  EXPECT_TRUE(s.gateway_by_index(victim).alive());
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);
  EXPECT_EQ(faults.crashes_injected(), 1u);
  // Safety: the crash must not have double-paid anybody.
  const auto report = sim::check_chain_invariants(s.master_node().chain());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Recovery, DeliverRetriesAcrossRecipientPartition) {
  // Partition the recipient's host just long enough to eat the first
  // DELIVER; the gateway's backoff retries must land after the heal and the
  // exchange must settle (pre-retry behaviour: write-off + CLTV reclaim).
  sim::ScenarioConfig config = fault_config(105);
  sim::Scenario s(config);
  s.bootstrap();
  sim::FaultPlan faults(s, 5);

  bool delivered = false;
  s.recipient(0).on_reading = [&](std::uint16_t, const util::Bytes&) {
    delivered = true;
  };
  // Partition now; the exchange starts under it and the heal comes 40 s in.
  faults.partition_actor(0, s.loop().now(), 40 * util::kSecond);
  s.loop().run_until(s.loop().now() + util::kSecond);
  s.sensor(0, 0).start_exchange(str_bytes("try, try again"));

  const util::SimTime deadline = s.loop().now() + 20 * util::kMinute;
  while (!delivered && s.loop().now() < deadline) {
    s.loop().run_until(s.loop().now() + util::kSecond);
  }
  EXPECT_TRUE(delivered);
  EXPECT_EQ(s.recipient(0).reclaims_submitted(), 0u);
  // At least one retry was needed to get the DELIVER through.
  std::uint64_t retries = 0;
  for (std::size_t g = 0; g < s.gateway_count(); ++g)
    retries += s.gateway_by_index(g).deliver_retries();
  EXPECT_GE(retries, 1u);
}

// --- Reorg vs offer (satellite regression) ---

TEST(ReorgRecovery, OrphanedOfferSettlesExactlyOnce) {
  // The offer tx is mined, then a longer coinbase-only fork orphans it
  // before the gateway's confirmation gate opens. The recipient must
  // re-broadcast the offer, and the exchange must settle exactly once —
  // no double pay, no stuck exchange.
  sim::ScenarioConfig config = fault_config(106);
  config.gateway_config.confirmations_required = 2;
  sim::Scenario s(config);
  s.bootstrap();

  std::uint64_t offers = 0;
  s.recipient(0).on_offer_posted = [&](std::uint16_t) { ++offers; };
  s.sensor(0, 0).start_exchange(str_bytes("reorg me"));

  // Wait until the offer is mined (1 confirmation, below the gate of 2).
  auto offer_confirmed_once = [&]() -> bool {
    if (offers == 0) return false;
    const auto& chain = s.master_node().chain();
    bool found = false;
    chain.scan_recent(3, [&](const chain::Transaction& tx, int) {
      for (const auto& out : tx.vout) {
        if (script::classify(out.script_pubkey).type ==
            script::ScriptType::kKeyRelease) {
          found = true;
        }
      }
    });
    return found;
  };
  const util::SimTime mine_deadline = s.loop().now() + 10 * util::kMinute;
  while (!offer_confirmed_once() && s.loop().now() < mine_deadline) {
    s.loop().run_until(s.loop().now() + util::kSecond);
  }
  ASSERT_TRUE(offer_confirmed_once()) << "offer never got mined";
  ASSERT_EQ(s.recipient(0).readings_decrypted(), 0u)
      << "settled before the reorg could be staged";

  // Freeze honest mining and graft a longer, empty fork from two blocks
  // back — the offer's block loses.
  s.set_mining_paused(true);
  s.loop().run_until(s.loop().now() + 2 * util::kSecond);
  const int tip = s.master_node().chain().height();
  chain::Blockchain fork(s.config().chain_params);
  for (int h = 1; h <= tip - 2; ++h) {
    ASSERT_NE(fork.accept_block(*s.master_node().chain().block_at(h)),
              chain::AcceptBlockResult::kInvalid);
  }
  const chain::Wallet fork_miner_wallet = chain::Wallet::from_seed("forker");
  const chain::Miner fork_miner(s.config().chain_params,
                                fork_miner_wallet.pkh());
  chain::Mempool empty_pool(s.config().chain_params);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const chain::Block block = fork_miner.mine(fork, empty_pool, 800000 + i);
    ASSERT_NE(fork.accept_block(block), chain::AcceptBlockResult::kInvalid);
    s.master_node().submit_block(block);
  }
  s.loop().run_until(s.loop().now() + 5 * util::kSecond);
  ASSERT_GT(s.master_node().chain().height(), tip);
  {
    // The offer must actually be orphaned for the test to mean anything.
    bool still_confirmed = false;
    s.master_node().chain().scan_recent(
        s.master_node().chain().height(),
        [&](const chain::Transaction& tx, int) {
          for (const auto& out : tx.vout) {
            if (script::classify(out.script_pubkey).type ==
                script::ScriptType::kKeyRelease) {
              still_confirmed = true;
            }
          }
        });
    ASSERT_FALSE(still_confirmed) << "fork failed to orphan the offer";
  }

  // Resume mining. The reorging nodes resurrect the orphaned offer (and
  // its parent chain) into their mempools; the recipient's block-driven
  // re-broadcast backstops them. Either way: one settlement, no reclaim.
  s.set_mining_paused(false);
  const util::SimTime deadline = s.loop().now() + 20 * util::kMinute;
  while (s.recipient(0).readings_decrypted() == 0 &&
         s.loop().now() < deadline) {
    s.loop().run_until(s.loop().now() + util::kSecond);
  }
  EXPECT_EQ(s.recipient(0).readings_decrypted(), 1u);
  EXPECT_EQ(s.recipient(0).reclaims_submitted(), 0u);
  EXPECT_EQ(s.recipient(0).pending_exchange_count(), 0u);

  // Exactly one settlement on-chain, funds conserved everywhere.
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  const auto report = sim::check_chain_invariants(s.master_node().chain());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- Full chaos acceptance ---

TEST(Chaos, FederationSurvivesCombinedFaults) {
  // The acceptance bar: Gilbert–Elliott burst loss, one WAN partition per
  // actor, a gateway crash/restart and a 2-minute miner stall, all in one
  // run — every offered exchange still completes and no safety invariant
  // breaks.
  sim::ScenarioConfig config = fault_config(107);
  config.gateway_config.offer_timeout = 5 * util::kMinute;
  config.gateway_config.issued_key_timeout = 5 * util::kMinute;
  config.recipient_config.timeout_blocks = 30;
  sim::Scenario s(config);
  s.bootstrap();

  const util::SimTime chaos_start = s.loop().now();
  constexpr util::SimTime kHorizon = 30 * util::kMinute;
  sim::FaultPlan faults(s, 7);
  sim::ChaosProfile profile;
  profile.partitions_per_actor = 1.0;
  profile.partition_duration = 60 * util::kSecond;
  profile.gateway_crashes = 1.0;
  profile.crash_downtime = 90 * util::kSecond;
  profile.miner_stalls = 1.0;
  profile.stall_duration = 2 * util::kMinute;
  profile.burst.loss_bad = 0.25;
  profile.burst.loss_good = 0.01;
  profile.burst.mean_good_s = 60.0;
  profile.burst.mean_bad_s = 10.0;
  faults.unleash(profile, kHorizon);

  s.run_exchanges(8, 3 * util::kHour);
  EXPECT_GE(s.exchanges_completed(), 8u);

  // Mid-run (non-quiescent) safety check.
  auto mid = sim::check_federation_invariants(s, false);
  EXPECT_TRUE(mid.ok()) << mid.to_string();

  // Drain: let retries, housekeeping and reclaims run dry, then demand
  // full quiescence (no leaked in-flight state anywhere). The drain must
  // also outlast the fault horizon — a partition scheduled near its end
  // could otherwise still be open when the check fires.
  s.loop().run_until(std::max(s.loop().now() + 20 * util::kMinute,
                              chaos_start + kHorizon + 10 * util::kMinute));
  auto final = sim::check_federation_invariants(s, true);
  EXPECT_TRUE(final.ok()) << final.to_string();
}

// --- Persistent deployments: crash-restart through real disk recovery ---

struct ChaosTempDir {
  std::filesystem::path path;
  ChaosTempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "bcwan-chaos-XXXXXX")
            .string();
    path = ::mkdtemp(tmpl.data());
  }
  ~ChaosTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(Recovery, TornWriteCrashRecoversFromDisk) {
  // Deterministic torn-write fault against a persistent deployment: the
  // gateway's co-located daemon crash-stops, bytes are sheared off its
  // block log tail, and restart must come back through snapshot + replay +
  // torn-tail truncation — visible in the fault log and telemetry.
  ChaosTempDir dir;
  sim::ScenarioConfig config = fault_config(109);
  config.persist_dir = dir.path.string();
  sim::Scenario s(config);
  s.bootstrap();
  // Let some blocks reach disk first.
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  ASSERT_TRUE(s.node_for_gateway(0).persistent());
  const int height_before = s.node_for_gateway(0).chain().height();
  ASSERT_GT(height_before, 0);

  sim::FaultPlan faults(s, 3);
  faults.torn_write_crash(0, s.loop().now() + util::kSecond,
                          30 * util::kSecond, 7);
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);

  auto& node = s.node_for_gateway(0);
  EXPECT_FALSE(node.crashed());
  EXPECT_GT(node.last_recovery().truncated_bytes, 0u);
  // Catch-up gossip closes whatever the torn tail cost.
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  EXPECT_GE(node.chain().height(), height_before);
  const auto& log = faults.log();
  const bool recovered_logged =
      std::any_of(log.begin(), log.end(), [](const std::string& line) {
        return line.find("recovered after torn write") != std::string::npos;
      });
  EXPECT_TRUE(recovered_logged);
}

TEST(Recovery, MinerCrashRecoversAndResumesMining) {
  ChaosTempDir dir;
  sim::ScenarioConfig config = fault_config(110);
  config.persist_dir = dir.path.string();
  sim::Scenario s(config);
  s.bootstrap();
  s.loop().run_until(s.loop().now() + 2 * util::kMinute);
  ASSERT_TRUE(s.master_node().persistent());
  const int height_before = s.master_node().chain().height();
  ASSERT_GT(height_before, 0);

  sim::FaultPlan faults(s, 4);
  faults.crash_miner(s.loop().now() + util::kSecond, 30 * util::kSecond);
  s.loop().run_until(s.loop().now() + 10 * util::kSecond);
  EXPECT_TRUE(s.mining_paused());
  EXPECT_TRUE(s.master_node().crashed());

  s.loop().run_until(s.loop().now() + 3 * util::kMinute);
  EXPECT_FALSE(s.mining_paused());
  EXPECT_FALSE(s.master_node().crashed());
  EXPECT_GE(s.master_node().last_recovery().tip_height, height_before);
  EXPECT_GT(s.master_node().chain().height(), height_before)
      << "mining never resumed after the crash";
}

TEST(Chaos, PersistentFederationSurvivesCrashChaos) {
  // The ISSUE acceptance path: chaos profile with gateway crashes, torn
  // writes and a miner crash, all against a store-backed deployment, while
  // exchanges run. Every crash-restart goes through real disk recovery.
  ChaosTempDir dir;
  sim::ScenarioConfig config = fault_config(111);
  config.persist_dir = dir.path.string();
  config.gateway_config.offer_timeout = 5 * util::kMinute;
  config.gateway_config.issued_key_timeout = 5 * util::kMinute;
  config.recipient_config.timeout_blocks = 30;
  sim::Scenario s(config);
  s.bootstrap();

  constexpr util::SimTime kHorizon = 20 * util::kMinute;
  sim::FaultPlan faults(s, 11);
  sim::ChaosProfile profile;
  profile.partitions_per_actor = 0.0;
  profile.gateway_crashes = 1.0;
  profile.torn_writes = 1.0;
  profile.miner_crashes = 1.0;
  profile.miner_stalls = 0.0;
  profile.crash_downtime = 60 * util::kSecond;
  faults.unleash(profile, kHorizon);

  s.run_exchanges(6, 3 * util::kHour);
  EXPECT_GE(s.exchanges_completed(), 6u);
  s.loop().run_until(s.loop().now() + kHorizon + 10 * util::kMinute);
  auto report = sim::check_federation_invariants(s, true);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Every persistent daemon is back up.
  EXPECT_FALSE(s.master_node().crashed());
  for (std::size_t g = 0; g < s.gateway_count(); ++g)
    EXPECT_FALSE(s.node_for_gateway(g).crashed()) << "gateway " << g;
}

TEST(Chaos, CleanRunPassesAllInvariants) {
  sim::ScenarioConfig config = fault_config(108);
  config.gateway_config.offer_timeout = 5 * util::kMinute;
  config.gateway_config.issued_key_timeout = 5 * util::kMinute;
  config.recipient_config.timeout_blocks = 30;
  sim::Scenario s(config);
  s.bootstrap();
  s.run_exchanges(6, util::kHour);
  EXPECT_GE(s.exchanges_completed(), 6u);
  s.loop().run_until(s.loop().now() + 15 * util::kMinute);
  const auto report = sim::check_federation_invariants(s, true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace bcwan

#include <gtest/gtest.h>

#include "lora/airtime.hpp"
#include "lora/frame.hpp"
#include "lora/radio.hpp"
#include <algorithm>

#include "util/rng.hpp"

namespace bcwan::lora {
namespace {

using util::Bytes;
using util::SimTime;
using util::kSecond;

// --- Airtime (values cross-checked against the Semtech airtime formula) ---

TEST(Airtime, SymbolTimes) {
  LoraConfig sf7;
  EXPECT_NEAR(symbol_time_s(sf7), 128.0 / 125000.0, 1e-9);
  LoraConfig sf12;
  sf12.sf = SpreadingFactor::kSF12;
  EXPECT_NEAR(symbol_time_s(sf12), 4096.0 / 125000.0, 1e-9);
}

TEST(Airtime, GrowsWithSpreadingFactor) {
  double prev = 0;
  for (int sf = 7; sf <= 12; ++sf) {
    LoraConfig cfg;
    cfg.sf = static_cast<SpreadingFactor>(sf);
    const double t = airtime_s(cfg, 64);
    EXPECT_GT(t, prev) << "SF" << sf;
    prev = t;
  }
}

TEST(Airtime, GrowsWithPayload) {
  LoraConfig cfg;
  EXPECT_LT(airtime_s(cfg, 16), airtime_s(cfg, 64));
  EXPECT_LT(airtime_s(cfg, 64), airtime_s(cfg, 128));
}

TEST(Airtime, Sf7KnownValue) {
  // SF7/BW125/CR4-5, preamble 8, explicit header + CRC, 132-byte payload:
  // T_sym = 1.024 ms; payload symbols = 8 + ceil((8*132-4*7+28+16)/(4*7))*5
  //        = 8 + ceil(1072/28)*5 = 8 + 39*5 = 203; preamble = 12.25 sym.
  // Total = 215.25 sym = 220.4 ms.
  LoraConfig cfg;
  const double t = airtime_s(cfg, 132);
  EXPECT_NEAR(t, 0.220416, 0.0001);
}

TEST(Airtime, LowDataRateOptimizeKicksInAtSf11) {
  LoraConfig sf10;
  sf10.sf = SpreadingFactor::kSF10;
  EXPECT_FALSE(sf10.low_data_rate_optimize());
  LoraConfig sf11;
  sf11.sf = SpreadingFactor::kSF11;
  EXPECT_TRUE(sf11.low_data_rate_optimize());
  LoraConfig sf11_250 = sf11;
  sf11_250.bandwidth_hz = 250'000;
  EXPECT_FALSE(sf11_250.low_data_rate_optimize());
}

TEST(Airtime, PaperDutyCycleClaim) {
  // §5.2: 128 B payload + 4 B header at SF7, 1% duty cycle ->
  // "a theoretical maximum of 183 messages per sensor per hour".
  LoraConfig cfg;  // SF7 defaults
  const int max_per_hour = max_messages_per_hour(cfg, 132, 0.01);
  EXPECT_GE(max_per_hour, 155);
  EXPECT_LE(max_per_hour, 190);
  // The exact paper figure implies airtime ≈ 3600*0.01/183 ≈ 196.7 ms; our
  // Semtech-exact computation gives 220.4 ms -> 163/h. Same order, slightly
  // under the paper's optimistic accounting (documented in EXPERIMENTS.md).
  EXPECT_EQ(max_per_hour, 163);
}

TEST(DutyCycle, AllowsInitialBurstThenThrottles) {
  DutyCycleLimiter limiter(0.01);
  // Fresh devices start with ~2% of the hourly budget (≈0.72 s of airtime
  // at 1%): a request + data burst fits, sustained traffic does not.
  const SimTime frame = util::from_millis(100);
  SimTime now = 0;
  int sent_immediately = 0;
  for (int i = 0; i < 50; ++i) {
    if (!limiter.can_transmit(now, frame)) break;
    limiter.record(now, frame);
    now += frame;
    ++sent_immediately;
  }
  EXPECT_GE(sent_immediately, 2);   // burst allowed
  EXPECT_LT(sent_immediately, 20);  // budget exhausts
  EXPECT_GT(limiter.earliest_start(now, frame), now);
}

TEST(DutyCycle, CreditAccruesAtDutyRate) {
  DutyCycleLimiter limiter(0.01);
  SimTime now = 0;
  const SimTime frame = util::from_millis(100);
  // Exhaust the initial allowance.
  while (limiter.can_transmit(now, frame)) {
    limiter.record(now, frame);
    now += frame;
  }
  // A 100 ms frame at 1% duty needs up to 10 s of accrual (less whatever
  // fractional credit was left over).
  const SimTime earliest = limiter.earliest_start(now, frame);
  EXPECT_GT(earliest, now);
  EXPECT_LE(earliest - now, util::from_millis(10001));
  // And at that time the transmission is actually allowed.
  EXPECT_TRUE(limiter.can_transmit(earliest, frame));
}

TEST(DutyCycle, HigherDutyShorterWait) {
  DutyCycleLimiter strict(0.01);
  DutyCycleLimiter loose(0.1);
  const SimTime frame = util::from_millis(100);
  SimTime now = 0;
  while (strict.can_transmit(now, frame)) strict.record(now, frame);
  while (loose.can_transmit(now, frame)) loose.record(now, frame);
  EXPECT_GT(strict.earliest_start(now, frame),
            loose.earliest_start(now, frame));
}

TEST(DutyCycle, HourlyRateBoundHolds) {
  // Long-run: on-air time over an hour never exceeds duty * hour (+ the
  // small starting allowance).
  DutyCycleLimiter limiter(0.01);
  const SimTime frame = util::from_millis(220);
  SimTime now = 0;
  SimTime on_air = 0;
  while (now < util::kHour) {
    const SimTime earliest = limiter.earliest_start(now, frame);
    if (earliest > util::kHour) break;
    now = std::max(now, earliest);
    limiter.record(now, frame);
    on_air += frame;
    now += frame;
  }
  EXPECT_LE(util::to_seconds(on_air), 36.0 + 0.02 * 36.0 + 0.3);
}

// --- Frames ---

TEST(Frame, InnerBlobLayoutIsFig4) {
  InnerBlob blob;
  blob.iv.fill(0xaa);
  blob.ciphertext = Bytes(16, 0xbb);
  const Bytes encoded = blob.encode();
  ASSERT_EQ(encoded.size(), kInnerBlobSize);  // 34 bytes, per Fig. 4
  EXPECT_EQ(encoded[0], 16);                  // IV length
  EXPECT_EQ(encoded[17], 16);                 // ciphertext length
  const auto back = InnerBlob::decode(encoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->iv, blob.iv);
  EXPECT_EQ(back->ciphertext, blob.ciphertext);
}

TEST(Frame, InnerBlobRejectsMalformed) {
  EXPECT_FALSE(InnerBlob::decode(Bytes{}).has_value());
  EXPECT_FALSE(InnerBlob::decode(Bytes(10, 0)).has_value());
  InnerBlob blob;
  blob.ciphertext = Bytes(16, 1);
  Bytes enc = blob.encode();
  enc.push_back(0);  // trailing byte
  EXPECT_FALSE(InnerBlob::decode(enc).has_value());
}

TEST(Frame, UplinkRequestRoundTrip) {
  UplinkRequestFrame frame;
  frame.device_id = 1234;
  const auto back = UplinkRequestFrame::decode(frame.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->device_id, 1234);
  EXPECT_EQ(frame.encode().size(), kFrameHeaderSize);
}

TEST(Frame, EphemeralKeyRoundTrip) {
  util::Rng rng(1);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  EphemeralKeyFrame frame;
  frame.device_id = 7;
  frame.ephemeral_pub = kp.pub;
  const auto back = EphemeralKeyFrame::decode(frame.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->device_id, 7);
  EXPECT_EQ(back->ephemeral_pub, kp.pub);
}

TEST(Frame, UplinkDataRoundTripAndSize) {
  UplinkDataFrame frame;
  frame.device_id = 99;
  frame.recipient.fill(0xcd);
  frame.em = Bytes(kDoubleEncSize, 0x11);
  frame.sig = Bytes(kSignatureSize, 0x22);
  const Bytes encoded = frame.encode();
  const auto back = UplinkDataFrame::decode(encoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->device_id, frame.device_id);
  EXPECT_EQ(back->em, frame.em);
  EXPECT_EQ(back->sig, frame.sig);
  EXPECT_EQ(back->recipient, frame.recipient);
  // 128-byte payload as §5.1 states; the explicit wire adds the 20-byte @R
  // and 2 varint length bytes.
  EXPECT_EQ(frame.em.size() + frame.sig.size(), kDataPayloadSize);
  EXPECT_NEAR(static_cast<double>(encoded.size()),
              static_cast<double>(UplinkDataFrame::wire_size()), 2.0);
}

TEST(Frame, PeekType) {
  UplinkRequestFrame req;
  EXPECT_EQ(peek_frame_type(req.encode()), FrameType::kUplinkRequest);
  EXPECT_FALSE(peek_frame_type(Bytes{}).has_value());
  EXPECT_FALSE(peek_frame_type(Bytes{0x77}).has_value());
}

// --- Radio ---

struct RadioHarness {
  p2p::EventLoop loop;
  LoraRadio radio;
  std::vector<std::pair<RadioDeviceId, Bytes>> uplinks;
  std::vector<Bytes> downlinks;
  RadioGatewayId gw;

  explicit RadioHarness(RadioConfig config = {})
      : radio(loop, 11, config),
        gw(radio.add_gateway([this](RadioDeviceId from, const Bytes& frame) {
          uplinks.emplace_back(from, frame);
        })) {}

  RadioDeviceId add_device(double duty = 0.01) {
    return radio.add_device(gw, LoraConfig{}, duty, [this](const Bytes& f) {
      downlinks.push_back(f);
    });
  }
};

TEST(Radio, UplinkDeliveredAfterAirtime) {
  RadioHarness h;
  const RadioDeviceId dev = h.add_device();
  const Bytes frame(132, 0xab);
  const TxResult tx = h.radio.uplink(dev, frame);
  ASSERT_TRUE(tx.accepted);
  EXPECT_GT(tx.airtime, util::from_millis(200));  // SF7, 132 B ≈ 220 ms
  EXPECT_LT(tx.airtime, util::from_millis(250));
  h.loop.run();
  ASSERT_EQ(h.uplinks.size(), 1u);
  EXPECT_EQ(h.uplinks[0].first, dev);
  EXPECT_EQ(h.uplinks[0].second, frame);
  EXPECT_EQ(h.loop.now(), tx.airtime);
}

TEST(Radio, DutyCycleBlocksRapidFire) {
  RadioHarness h;
  const RadioDeviceId dev = h.add_device(0.01);
  // The starting allowance (~0.72 s of airtime) covers a short burst of
  // 220 ms frames, then the limiter must refuse and name a retry time.
  int accepted = 0;
  TxResult last{};
  for (int i = 0; i < 10; ++i) {
    last = h.radio.uplink(dev, Bytes(132, 1));
    if (!last.accepted) break;
    ++accepted;
  }
  EXPECT_GE(accepted, 2);
  EXPECT_LT(accepted, 10);
  EXPECT_FALSE(last.accepted);
  EXPECT_GT(last.next_allowed, h.loop.now());
  h.loop.run();
  EXPECT_EQ(h.uplinks.size(), static_cast<std::size_t>(accepted));
}

TEST(Radio, DownlinkReachesDevice) {
  RadioHarness h;
  const RadioDeviceId dev = h.add_device();
  const TxResult tx = h.radio.downlink(h.gw, dev, Bytes(70, 0x5a));
  ASSERT_TRUE(tx.accepted);
  h.loop.run();
  ASSERT_EQ(h.downlinks.size(), 1u);
  EXPECT_EQ(h.downlinks[0].size(), 70u);
}

TEST(Radio, CollisionsCorruptOverlappingUplinks) {
  RadioConfig config;
  config.collisions = true;
  RadioHarness h(config);
  const RadioDeviceId d1 = h.add_device(1.0);
  const RadioDeviceId d2 = h.add_device(1.0);
  // Both transmit at t=0: overlap at the shared gateway.
  ASSERT_TRUE(h.radio.uplink(d1, Bytes(132, 1)).accepted);
  ASSERT_TRUE(h.radio.uplink(d2, Bytes(132, 2)).accepted);
  h.loop.run();
  EXPECT_EQ(h.uplinks.size(), 0u);
  EXPECT_EQ(h.radio.frames_lost(), 2u);
  EXPECT_GE(h.radio.collisions_observed(), 1u);
}

TEST(Radio, NonOverlappingFramesBothArrive) {
  RadioConfig config;
  config.collisions = true;
  RadioHarness h(config);
  const RadioDeviceId d1 = h.add_device(1.0);
  const RadioDeviceId d2 = h.add_device(1.0);
  ASSERT_TRUE(h.radio.uplink(d1, Bytes(132, 1)).accepted);
  h.loop.run();  // first completes
  ASSERT_TRUE(h.radio.uplink(d2, Bytes(132, 2)).accepted);
  h.loop.run();
  EXPECT_EQ(h.uplinks.size(), 2u);
}

TEST(Radio, FrameLossDropsSomeFrames) {
  RadioConfig config;
  config.frame_loss = 0.5;
  RadioHarness h(config);
  const RadioDeviceId dev = h.add_device(1.0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(h.radio.uplink(dev, Bytes(32, 0)).accepted);
    // Dropped frames schedule no events, so advance the clock explicitly
    // past the airtime before the next attempt.
    h.loop.run_until(h.loop.now() + kSecond);
  }
  EXPECT_GT(h.uplinks.size(), 20u);
  EXPECT_LT(h.uplinks.size(), 80u);
  EXPECT_EQ(h.uplinks.size() + h.radio.frames_lost(), 100u);
}

TEST(Radio, PaperScenarioThroughputCap) {
  // One sensor at 1% duty, SF7, 132-byte frames: over one virtual hour it
  // cannot deliver more than ~163 frames (Semtech-exact airtime).
  RadioHarness h;
  const RadioDeviceId dev = h.add_device(0.01);
  int sent = 0;
  std::function<void()> pump = [&] {
    const TxResult tx = h.radio.uplink(dev, Bytes(132, 0));
    if (tx.accepted) ++sent;
    const SimTime next =
        tx.accepted ? h.radio.device_next_allowed(dev, h.loop.now())
                    : tx.next_allowed;
    if (next < util::kHour) h.loop.at(next, pump);
  };
  pump();
  h.loop.run_until(util::kHour);
  EXPECT_GE(sent, 158);
  EXPECT_LE(sent, 167);
}

}  // namespace
}  // namespace bcwan::lora

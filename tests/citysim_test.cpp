// Cross-backend determinism gates for the city-scale engine (DESIGN.md §14)
// plus the Scenario's streamed-stats / keep_records contract.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <tuple>

#include "sim/citysim.hpp"
#include "sim/scenario.hpp"

namespace bcwan::sim {
namespace {

CityConfig small_city() {
  CityConfig config;
  config.gateways = 100;
  config.sensors = 1200;
  config.recipients = 40;
  config.seed = 17;
  config.keep_trace = true;
  return config;
}

struct CityRun {
  std::uint64_t exchanges;
  std::uint64_t digest;
  std::uint64_t verify_failures;
  std::uint64_t sum_us, min_us, max_us;
  std::uint64_t parallel_windows;
  std::vector<CityTraceRecord> trace;
};

CityRun run_city(p2p::EventLoop::Backend backend, unsigned threads) {
  CityEngine engine(small_city(), backend, threads);
  engine.run_for(90 * util::kSecond);
  return CityRun{engine.exchanges_completed(),
                 engine.trace_digest(),
                 engine.verify_failures(),
                 engine.latency_sum_us(),
                 engine.latency_min_us(),
                 engine.latency_max_us(),
                 engine.loop().parallel_windows(),
                 engine.sorted_trace()};
}

// The tentpole contract: serial and sharded backends (at several worker
// counts) complete the identical exchange set — same digest, same exact
// latency aggregates, same full trace.
TEST(CityEngine, BackendsProduceIdenticalTraces) {
  const CityRun serial = run_city(p2p::EventLoop::Backend::kSerial, 1);
  ASSERT_GT(serial.exchanges, 100u);
  EXPECT_EQ(serial.verify_failures, 0u);
  EXPECT_EQ(serial.parallel_windows, 0u);
  EXPECT_EQ(serial.trace.size(), serial.exchanges);

  for (const unsigned threads : {1u, 2u, 8u}) {
    const CityRun sharded = run_city(p2p::EventLoop::Backend::kSharded,
                                     threads);
    EXPECT_EQ(sharded.exchanges, serial.exchanges) << threads << " threads";
    EXPECT_EQ(sharded.digest, serial.digest) << threads << " threads";
    EXPECT_EQ(sharded.verify_failures, 0u);
    EXPECT_EQ(sharded.sum_us, serial.sum_us) << threads << " threads";
    EXPECT_EQ(sharded.min_us, serial.min_us);
    EXPECT_EQ(sharded.max_us, serial.max_us);
    EXPECT_EQ(sharded.trace, serial.trace) << threads << " threads";
    if (threads > 1) {
      // The dense city must actually exercise the worker-pool path —
      // otherwise this test silently degrades to serial-vs-serial.
      EXPECT_GT(sharded.parallel_windows, 0u) << threads << " threads";
    }
  }
}

TEST(CityEngine, RealCryptoPipelineVerifies) {
  CityConfig config = small_city();
  config.sensors = 300;
  CityEngine engine(config, p2p::EventLoop::Backend::kSerial, 1);
  engine.run_for(60 * util::kSecond);
  EXPECT_GT(engine.exchanges_completed(), 0u);
  // Every AES decrypt matched its plaintext and every SHA-256 envelope tag
  // checked out.
  EXPECT_EQ(engine.verify_failures(), 0u);
  EXPECT_GE(engine.latency_min_us(), 1000u);  // > 1 ms of modeled pipeline
  EXPECT_LE(engine.latency_min_us(), engine.latency_max_us());
  EXPECT_DOUBLE_EQ(
      engine.latency_mean_s(),
      static_cast<double>(engine.latency_sum_us()) / 1e6 /
          static_cast<double>(engine.exchanges_completed()));
}

TEST(CityEngine, RejectsConfigBreakingLookahead) {
  CityConfig config = small_city();
  config.wan_floor_ms = 1.0;  // below the 5 ms lookahead window
  EXPECT_THROW(CityEngine(config, p2p::EventLoop::Backend::kSharded, 2),
               std::invalid_argument);
}

// The full-stack Scenario (real agents, RSA, chain) must settle on the same
// chain under both backends — its traffic is serial-strand, so the sharded
// loop must preserve exact legacy ordering.
TEST(Scenario, ChainTipsEqualAcrossBackends) {
  const auto fingerprint = [](const char* backend) {
    setenv("BCWAN_SIM_BACKEND", backend, 1);
    ScenarioConfig config;
    config.actors = 2;
    config.sensors_per_actor = 3;
    config.seed = 5;
    Scenario scenario(config);
    scenario.bootstrap();
    scenario.run_exchanges(4, 20 * util::kMinute);
    unsetenv("BCWAN_SIM_BACKEND");
    return std::tuple(scenario.master_node().chain().tip_hash(),
                      scenario.master_node().chain().height(),
                      scenario.exchanges_completed());
  };
  const auto serial = fingerprint("serial");
  const auto sharded = fingerprint("sharded");
  EXPECT_GE(std::get<2>(serial), 4u);
  EXPECT_EQ(serial, sharded);
}

// keep_records caps the retained per-exchange material while the streamed
// statistics keep covering every completion.
TEST(Scenario, KeepRecordsCapsRetainedSamples) {
  setenv("BCWAN_SIM_BACKEND", "serial", 1);
  ScenarioConfig config;
  config.actors = 2;
  config.sensors_per_actor = 3;
  config.seed = 11;
  config.keep_records = 3;
  Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(8, 40 * util::kMinute);
  unsetenv("BCWAN_SIM_BACKEND");

  ASSERT_GE(scenario.exchanges_completed(), 8u);
  EXPECT_EQ(scenario.records().size(), 3u);
  EXPECT_EQ(scenario.latency_stats().count(), 3u);
  // Streamed stats saw everything.
  EXPECT_EQ(scenario.streamed_latency().count(),
            scenario.exchanges_completed());
  EXPECT_GT(scenario.streamed_latency().mean(), 0.0);
  EXPECT_GE(scenario.streamed_latency().max(),
            scenario.streamed_latency().mean());
}

}  // namespace
}  // namespace bcwan::sim

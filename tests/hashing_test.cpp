// Differential and equivalence tests for the hashing hot path: SHA-256
// backend dispatch, batched sha256d64, parallel merkle, sighash midstates
// and txid memoization. Every SIMD/parallel/midstate fast path is pinned
// bit-for-bit to its scalar/naive reference here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "chain/wallet.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace bcwan::chain {
namespace {

using crypto::Digest256;
using crypto::Sha256;
using crypto::sha256;
using crypto::sha256d;
using util::Bytes;
using util::ByteView;
using util::Rng;
using util::str_bytes;
using util::to_hex;

std::string hex256(const Digest256& d) {
  return to_hex(crypto::digest_bytes(d));
}

/// Backends the running CPU supports, "scalar" always first. Restores the
/// auto-detected backend when destroyed so tests don't leak a forced one.
struct BackendSweep {
  std::vector<const char*> names;
  BackendSweep() {
    for (const char* name : {"scalar", "shani", "avx2"}) {
      if (crypto::sha256_select_backend(name)) names.push_back(name);
    }
    crypto::sha256_select_backend("auto");
  }
  ~BackendSweep() { crypto::sha256_select_backend("auto"); }
};

// --- Per-backend NIST vectors ---

TEST(Sha256Dispatch, NistVectorsOnEveryBackend) {
  BackendSweep sweep;
  ASSERT_GE(sweep.names.size(), 1u);
  for (const char* name : sweep.names) {
    ASSERT_TRUE(crypto::sha256_select_backend(name));
    EXPECT_STREQ(crypto::sha256_backend_name(), name);
    EXPECT_EQ(
        hex256(sha256({})),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        << name;
    EXPECT_EQ(
        hex256(sha256(str_bytes("abc"))),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        << name;
    EXPECT_EQ(
        hex256(sha256(str_bytes(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        << name;
    EXPECT_EQ(
        hex256(sha256(Bytes(1000000, 'a'))),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
        << name;
  }
  crypto::sha256_select_backend("auto");
}

TEST(Sha256Dispatch, UnknownBackendRejected) {
  const std::string before = crypto::sha256_backend_name();
  EXPECT_FALSE(crypto::sha256_select_backend("quantum"));
  EXPECT_EQ(crypto::sha256_backend_name(), before);  // dispatch unchanged
}

// --- Randomized stream differential: every backend vs scalar ---

TEST(Sha256Dispatch, StreamsMatchScalarOnRandomInput) {
  BackendSweep sweep;
  Rng rng(7001);
  for (int round = 0; round < 50; ++round) {
    const Bytes data = rng.bytes(1 + rng.below(2048));
    ASSERT_TRUE(crypto::sha256_select_backend("scalar"));
    const Digest256 ref = sha256(data);
    const Digest256 refd = sha256d(data);
    for (const char* name : sweep.names) {
      ASSERT_TRUE(crypto::sha256_select_backend(name));
      EXPECT_EQ(sha256(data), ref) << name << " round " << round;
      EXPECT_EQ(sha256d(data), refd) << name << " round " << round;
      // Irregular chunking exercises the buffered multi-block path.
      Sha256 ctx;
      std::size_t off = 0;
      while (off < data.size()) {
        const std::size_t take =
            std::min<std::size_t>(1 + rng.below(200), data.size() - off);
        ctx.update(ByteView(data.data() + off, take));
        off += take;
      }
      EXPECT_EQ(ctx.finalize(), ref) << name << " round " << round;
    }
  }
  crypto::sha256_select_backend("auto");
}

// --- sha256d64: batched kernel vs per-element reference ---

TEST(Sha256Dispatch, D64MatchesPerElementReference) {
  BackendSweep sweep;
  Rng rng(7002);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{8}, std::size_t{9},
                              std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{33}}) {
    const Bytes in = rng.bytes(n * 64);
    std::vector<Digest256> ref(n);
    ASSERT_TRUE(crypto::sha256_select_backend("scalar"));
    for (std::size_t i = 0; i < n; ++i)
      ref[i] = sha256d(ByteView(in.data() + 64 * i, 64));
    for (const char* name : sweep.names) {
      ASSERT_TRUE(crypto::sha256_select_backend(name));
      Bytes out(n * 32);
      crypto::sha256d64(out.data(), in.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(0, std::memcmp(out.data() + 32 * i, ref[i].data(), 32))
            << name << " n=" << n << " i=" << i;
      }
    }
  }
  crypto::sha256_select_backend("auto");
}

// --- Merkle: parallel/batched vs the naive definition ---

/// The definition, straight from the old serial implementation.
Hash256 naive_merkle(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = i + 1 < level.size() ? level[i + 1] : level[i];
      Bytes combined(left.begin(), left.end());
      combined.insert(combined.end(), right.begin(), right.end());
      next.push_back(sha256d(combined));
    }
    level = std::move(next);
  }
  return level[0];
}

TEST(Merkle, MatchesNaiveForAllShapesBackendsAndThreadCounts) {
  BackendSweep sweep;
  Rng rng(7003);
  std::vector<std::size_t> shapes;
  for (std::size_t n = 0; n <= 17; ++n) shapes.push_back(n);
  for (std::size_t n : {63, 64, 65, 1000}) shapes.push_back(n);

  for (const std::size_t n : shapes) {
    std::vector<Hash256> leaves(n);
    for (auto& leaf : leaves) {
      const Bytes b = rng.bytes(32);
      std::copy(b.begin(), b.end(), leaf.begin());
    }
    ASSERT_TRUE(crypto::sha256_select_backend("scalar"));
    const Hash256 ref = naive_merkle(leaves);
    for (const char* name : sweep.names) {
      ASSERT_TRUE(crypto::sha256_select_backend(name));
      for (const unsigned threads : {0u, 1u, 2u, 4u}) {
        EXPECT_EQ(merkle_root(leaves, threads), ref)
            << name << " n=" << n << " threads=" << threads;
      }
    }
  }
  crypto::sha256_select_backend("auto");
}

// --- Sighash midstates vs naive message hashing ---

Transaction random_tx(Rng& rng, std::size_t nin, std::size_t nout) {
  Transaction tx;
  tx.version = static_cast<std::uint32_t>(rng.below(3) + 1);
  tx.locktime = static_cast<std::uint32_t>(rng.below(1000));
  for (std::size_t i = 0; i < nin; ++i) {
    TxIn in;
    const Bytes id = rng.bytes(32);
    std::copy(id.begin(), id.end(), in.prevout.txid.begin());
    in.prevout.index = static_cast<std::uint32_t>(rng.below(8));
    in.script_sig = script::Script(rng.bytes(rng.below(120)));
    in.sequence = rng.below(2) ? kSequenceFinal : 7;
    tx.vin.push_back(std::move(in));
  }
  for (std::size_t i = 0; i < nout; ++i) {
    TxOut out;
    out.value = static_cast<Amount>(rng.below(100000));
    out.script_pubkey = script::Script(rng.bytes(rng.below(80)));
    tx.vout.push_back(std::move(out));
  }
  return tx;
}

TEST(SighashMidstate, MatchesNaiveMessageOnRandomTransactions) {
  Rng rng(7004);
  for (int round = 0; round < 40; ++round) {
    const std::size_t nin = 1 + rng.below(8);
    const Transaction tx = random_tx(rng, nin, 1 + rng.below(4));
    const PrecomputedTxData precomp(tx);
    ASSERT_EQ(precomp.input_count(), nin);
    for (std::size_t i = 0; i < nin; ++i) {
      const script::Script spent(rng.bytes(rng.below(100)));
      const Digest256 naive =
          sha256d(signature_hash_message(tx, i, spent));
      EXPECT_EQ(precomp.sighash(i, spent), naive)
          << "round " << round << " input " << i;
    }
  }
}

TEST(SighashMidstate, SurvivesScriptSigMutation) {
  // The template blanks every scriptSig, so a precomp built before signing
  // stays valid while signatures land input by input — the wallet relies
  // on this to sign a whole transaction off one midstate set.
  Rng rng(7005);
  Transaction tx = random_tx(rng, 4, 2);
  const PrecomputedTxData precomp(tx);
  const script::Script spent(rng.bytes(40));
  const Digest256 before = precomp.sighash(2, spent);
  tx.vin[0].script_sig = script::Script(rng.bytes(64));
  tx.vin[3].script_sig = script::Script();
  tx.invalidate_txid();
  EXPECT_EQ(precomp.sighash(2, spent), before);
  EXPECT_EQ(sha256d(signature_hash_message(tx, 2, spent)), before);
}

// --- Txid memoization ---

TEST(TxidCache, MemoizedAndInvalidatedOnMutation) {
  Rng rng(7006);
  Transaction tx = random_tx(rng, 2, 2);
  const Hash256 id1 = tx.txid();
  EXPECT_EQ(tx.txid(), id1);  // stable on repeat

  tx.vout[0].value += 1;
  tx.invalidate_txid();
  const Hash256 id2 = tx.txid();
  EXPECT_NE(id2, id1);
  EXPECT_EQ(sha256d(tx.serialize()), id2);  // cache matches serialization
}

TEST(TxidCache, CopyAndMoveCarryTheCache) {
  Rng rng(7007);
  Transaction tx = random_tx(rng, 1, 1);
  const Hash256 id = tx.txid();

  const Transaction copy = tx;
  EXPECT_EQ(copy.txid(), id);
  EXPECT_TRUE(copy == tx);

  Transaction moved = std::move(tx);
  EXPECT_EQ(moved.txid(), id);

  // Copy taken BEFORE the id was computed must still agree.
  Transaction fresh = random_tx(rng, 1, 1);
  Transaction fresh_copy = fresh;
  EXPECT_EQ(fresh.txid(), fresh_copy.txid());
}

TEST(TxidCache, DeserializeSeedsTheCache) {
  Rng rng(7008);
  const Transaction tx = random_tx(rng, 3, 2);
  const Bytes wire = tx.serialize();
  const auto back = Transaction::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->txid(), tx.txid());
  EXPECT_EQ(back->txid(), sha256d(wire));
}

TEST(TxidCache, WalletSigningInvalidates) {
  // sign_p2pkh_input mutates the scriptSig; a txid observed before signing
  // must not leak through the cache afterwards.
  const Wallet wallet = Wallet::from_seed("memo-test");
  Rng rng(7009);
  Transaction tx = random_tx(rng, 1, 1);
  tx.vin[0].script_sig = script::Script();
  const Hash256 unsigned_id = tx.txid();
  wallet.sign_p2pkh_input(tx, 0, script::Script(rng.bytes(25)));
  EXPECT_NE(tx.txid(), unsigned_id);
  EXPECT_EQ(tx.txid(), sha256d(tx.serialize()));
}

}  // namespace
}  // namespace bcwan::chain

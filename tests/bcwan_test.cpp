#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "bcwan/directory.hpp"
#include "bcwan/election.hpp"
#include "bcwan/fair_exchange.hpp"
#include "chain/miner.hpp"
#include "bcwan/envelope.hpp"
#include "sim/scenario.hpp"

namespace bcwan::core {
namespace {

using util::Bytes;
using util::Rng;
using util::str_bytes;

// --- Envelope crypto (protocol steps 3-4, 8, 10-11) ---

class EnvelopeFixture : public ::testing::Test {
 protected:
  static Rng& rng() {
    static Rng r(1000);
    return r;
  }
  static const NodeProvisioning& prov() {
    static const NodeProvisioning p =
        provision_node(7, script::to_pubkey_hash(str_bytes("recipient")),
                       rng());
    return p;
  }
  static const crypto::RsaKeyPair& ephemeral() {
    static const crypto::RsaKeyPair kp = crypto::rsa_generate(rng(), 512);
    return kp;
  }
};

TEST_F(EnvelopeFixture, SealProducesPaperSizes) {
  const Envelope env =
      seal_reading(prov(), str_bytes("t=21.5"), ephemeral().pub, rng());
  EXPECT_EQ(env.em.size(), lora::kDoubleEncSize);    // 64 B
  EXPECT_EQ(env.sig.size(), lora::kSignatureSize);   // 64 B
}

TEST_F(EnvelopeFixture, RoundTripThroughBothLayers) {
  const Bytes reading = str_bytes("t=21.5;rh=40");
  const Envelope env = seal_reading(prov(), reading, ephemeral().pub, rng());
  ASSERT_TRUE(verify_envelope(prov().node_verify_key, env, ephemeral().pub));
  const auto opened = open_envelope(prov().k, ephemeral().priv, env.em);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, reading);
}

TEST_F(EnvelopeFixture, OversizedReadingThrows) {
  EXPECT_THROW(
      seal_reading(prov(), Bytes(16, 'x'), ephemeral().pub, rng()),
      std::invalid_argument);
}

TEST_F(EnvelopeFixture, TamperedEmFailsVerification) {
  Envelope env = seal_reading(prov(), str_bytes("m"), ephemeral().pub, rng());
  env.em[5] ^= 1;
  EXPECT_FALSE(verify_envelope(prov().node_verify_key, env, ephemeral().pub));
}

TEST_F(EnvelopeFixture, SwappedEphemeralKeyFailsVerification) {
  // The signature commits to ePk — a MITM gateway cannot substitute its own
  // long-lived key to skim future traffic.
  const Envelope env =
      seal_reading(prov(), str_bytes("m"), ephemeral().pub, rng());
  const crypto::RsaKeyPair other = crypto::rsa_generate(rng(), 512);
  EXPECT_FALSE(verify_envelope(prov().node_verify_key, env, other.pub));
}

TEST_F(EnvelopeFixture, WrongEskCannotOpen) {
  const Envelope env =
      seal_reading(prov(), str_bytes("m"), ephemeral().pub, rng());
  const crypto::RsaKeyPair other = crypto::rsa_generate(rng(), 512);
  EXPECT_FALSE(open_envelope(prov().k, other.priv, env.em).has_value());
}

TEST_F(EnvelopeFixture, WrongSymmetricKeyCannotOpen) {
  const Envelope env =
      seal_reading(prov(), str_bytes("secret"), ephemeral().pub, rng());
  crypto::AesKey256 wrong_k = prov().k;
  wrong_k[0] ^= 1;
  const auto opened = open_envelope(wrong_k, ephemeral().priv, env.em);
  // Either padding fails or the plaintext differs; it must never equal the
  // original.
  if (opened) {
    EXPECT_NE(*opened, str_bytes("secret"));
  }
}

TEST_F(EnvelopeFixture, GatewayCannotReadWithoutEsk) {
  // The gateway holds Em but (before redeeming) no key that opens it —
  // confidentiality on the LoRa hop and at the forwarding gateway.
  const Envelope env =
      seal_reading(prov(), str_bytes("private"), ephemeral().pub, rng());
  // All the gateway could try is the blob as-is; it is RSA ciphertext under
  // ePk and never decodes as a Fig. 4 blob.
  EXPECT_FALSE(lora::InnerBlob::decode(env.em).has_value());
}

TEST_F(EnvelopeFixture, DeliverPayloadRoundTrip) {
  DeliverPayload payload;
  payload.device_id = 42;
  payload.em = Bytes(64, 1);
  payload.sig = Bytes(64, 2);
  payload.ephemeral_pub = ephemeral().pub;
  payload.gateway = script::to_pubkey_hash(str_bytes("gw"));
  const auto back = DeliverPayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->device_id, 42);
  EXPECT_EQ(back->em, payload.em);
  EXPECT_EQ(back->sig, payload.sig);
  EXPECT_EQ(back->ephemeral_pub, payload.ephemeral_pub);
  EXPECT_EQ(back->gateway, payload.gateway);
  EXPECT_FALSE(DeliverPayload::deserialize(Bytes(5, 0)).has_value());
}

TEST_F(EnvelopeFixture, ProvisioningIsPerDevice) {
  Rng r(2000);
  const auto p1 = provision_node(1, prov().recipient, r);
  const auto p2 = provision_node(2, prov().recipient, r);
  EXPECT_NE(p1.k, p2.k);
  EXPECT_FALSE(p1.node_verify_key == p2.node_verify_key);
}

// --- Directory ---

TEST(DirectoryCodec, RoundTrip) {
  const script::PubKeyHash owner = script::to_pubkey_hash(str_bytes("r"));
  const Bytes data = encode_directory_entry(owner, 0x0a000005, 4242);
  const auto entry = decode_directory_entry(data);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->owner, owner);
  EXPECT_EQ(entry->ip, 0x0a000005u);
  EXPECT_EQ(entry->port, 4242);
}

TEST(DirectoryCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_directory_entry(str_bytes("not a bcwn entry")).has_value());
  EXPECT_FALSE(decode_directory_entry(Bytes{}).has_value());
  script::PubKeyHash owner{};
  Bytes data = encode_directory_entry(owner, 1, 2);
  data[0] = 'X';  // break magic
  EXPECT_FALSE(decode_directory_entry(data).has_value());
}

TEST(DirectoryCodec, FormatIp) {
  EXPECT_EQ(format_ip(0x0a000005), "10.0.0.5");
  EXPECT_EQ(format_ip(0xc0a80101), "192.168.1.1");
}

// --- FairExchange state machines (the packaged Listing-1 protocol) ---

class FairExchangeApi : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fund the buyer.
    for (int i = 0; i < params.coinbase_maturity + 4; ++i) mine();
    const auto fund = miner_wallet.create_payment(bc, &pool, buyer_wallet.pkh(),
                                                  10 * chain::kCoin, 1000);
    ASSERT_TRUE(fund.has_value());
    ASSERT_TRUE(pool.accept(*fund, bc.utxo(), bc.height() + 1).ok());
    mine();
  }

  void mine() {
    const chain::Block block = miner.mine(bc, pool, ++now);
    ASSERT_NE(bc.accept_block(block), chain::AcceptBlockResult::kInvalid);
    pool.remove_confirmed(block);
  }

  chain::ChainParams params = [] {
    chain::ChainParams p;
    p.pow_zero_bits = 4;
    p.coinbase_maturity = 2;
    return p;
  }();
  chain::Blockchain bc{params};
  chain::Mempool pool{params};
  chain::Wallet miner_wallet = chain::Wallet::from_seed("fx-miner");
  chain::Wallet buyer_wallet = chain::Wallet::from_seed("fx-buyer");
  chain::Wallet seller_wallet = chain::Wallet::from_seed("fx-seller");
  chain::Miner miner{params, miner_wallet.pkh()};
  std::uint64_t now = 0;
  Rng rng{909};
};

TEST_F(FairExchangeApi, HappyPathRevealsKey) {
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
  FairExchangeSeller seller(seller_wallet, ephemeral);
  FairExchangeBuyer buyer(buyer_wallet, seller.ephemeral_pub(),
                          seller_wallet.pkh(), chain::kCoin, 1000, 50);

  const auto offer = buyer.make_offer(bc, &pool);
  ASSERT_TRUE(offer.has_value());
  EXPECT_EQ(buyer.state(), FairExchangeBuyer::State::kOffered);
  ASSERT_TRUE(pool.accept(*offer, bc.utxo(), bc.height() + 1).ok());

  const auto redeem = seller.try_redeem(*offer, 500);
  ASSERT_TRUE(redeem.has_value());
  EXPECT_EQ(seller.state(), FairExchangeSeller::State::kRedeemed);
  ASSERT_TRUE(pool.accept(*redeem, bc.utxo(), bc.height() + 1).ok());

  const auto revealed = buyer.observe(*redeem);
  ASSERT_TRUE(revealed.has_value());
  EXPECT_EQ(*revealed, ephemeral.priv);
  EXPECT_EQ(buyer.state(), FairExchangeBuyer::State::kSettled);

  // Settlement confirms; the seller banks the price.
  mine();
  EXPECT_EQ(seller_wallet.balance(bc), chain::kCoin - 500);
}

TEST_F(FairExchangeApi, SellerIgnoresForeignOffers) {
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
  const crypto::RsaKeyPair other = crypto::rsa_generate(rng, 512);
  FairExchangeSeller seller(seller_wallet, ephemeral);
  // Offer locked to a DIFFERENT ephemeral key: not ours to redeem.
  FairExchangeBuyer buyer(buyer_wallet, other.pub, seller_wallet.pkh(),
                          chain::kCoin, 1000, 50);
  const auto offer = buyer.make_offer(bc, &pool);
  ASSERT_TRUE(offer.has_value());
  EXPECT_FALSE(seller.try_redeem(*offer, 500).has_value());
  EXPECT_EQ(seller.state(), FairExchangeSeller::State::kAwaitingOffer);
}

TEST_F(FairExchangeApi, BuyerRejectsWrongKeyReveal) {
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
  FairExchangeBuyer buyer(buyer_wallet, ephemeral.pub, seller_wallet.pkh(),
                          chain::kCoin, 1000, 50);
  const auto offer = buyer.make_offer(bc, &pool);
  ASSERT_TRUE(offer.has_value());
  // A forged "redeem" revealing a different key must not settle the buyer.
  const crypto::RsaKeyPair wrong = crypto::rsa_generate(rng, 512);
  const chain::Transaction forged = seller_wallet.create_redeem(
      chain::OutPoint{offer->txid(), 0}, offer->vout[0], wrong.priv, 500);
  EXPECT_FALSE(buyer.observe(forged).has_value());
  EXPECT_EQ(buyer.state(), FairExchangeBuyer::State::kOffered);
}

TEST_F(FairExchangeApi, ReclaimOnlyAfterTimeoutAndOnce) {
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
  FairExchangeBuyer buyer(buyer_wallet, ephemeral.pub, seller_wallet.pkh(),
                          chain::kCoin, 1000, 3);
  const auto offer = buyer.make_offer(bc, &pool);
  ASSERT_TRUE(offer.has_value());
  ASSERT_TRUE(pool.accept(*offer, bc.utxo(), bc.height() + 1).ok());
  mine();

  EXPECT_FALSE(buyer.make_reclaim(bc.height()).has_value());  // too early
  while (bc.height() + 1 < buyer.timeout_height()) mine();
  const auto reclaim = buyer.make_reclaim(bc.height());
  ASSERT_TRUE(reclaim.has_value());
  EXPECT_EQ(buyer.state(), FairExchangeBuyer::State::kReclaimed);
  EXPECT_FALSE(buyer.make_reclaim(bc.height()).has_value());  // once only

  const auto accept = pool.accept(*reclaim, bc.utxo(), bc.height() + 1);
  ASSERT_TRUE(accept.ok()) << chain::mempool_error_name(accept.error);
  mine();
  // Funds are back, minus the two fees.
  EXPECT_EQ(buyer_wallet.balance(bc), 10 * chain::kCoin - 1000 - 1000);
}

TEST_F(FairExchangeApi, InvariantDecryptImpliesPayable) {
  // The exchange invariant: when the buyer learns eSk, the seller's redeem
  // is the very transaction that pays it — one cannot happen without the
  // other being broadcastable.
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
  FairExchangeSeller seller(seller_wallet, ephemeral);
  FairExchangeBuyer buyer(buyer_wallet, seller.ephemeral_pub(),
                          seller_wallet.pkh(), chain::kCoin, 1000, 50);
  const auto offer = buyer.make_offer(bc, &pool);
  ASSERT_TRUE(pool.accept(*offer, bc.utxo(), bc.height() + 1).ok());
  const auto redeem = seller.try_redeem(*offer, 500);
  const auto revealed = buyer.observe(*redeem);
  ASSERT_TRUE(revealed.has_value());
  // The same tx that leaked eSk is valid on-chain and pays the seller.
  ASSERT_TRUE(pool.accept(*redeem, bc.utxo(), bc.height() + 1).ok());
  mine();
  EXPECT_GT(seller_wallet.balance(bc), 0);
}

// --- Master gateway election (§4.2, footnote 3) ---

TEST(Election, DeterministicAcrossObservers) {
  std::vector<script::PubKeyHash> candidates;
  for (const char* name : {"gw-a", "gw-b", "gw-c", "gw-d"}) {
    candidates.push_back(script::to_pubkey_hash(str_bytes(name)));
  }
  EXPECT_EQ(elect_master_gateway(candidates, 3),
            elect_master_gateway(candidates, 3));
  const std::size_t winner = elect_master_gateway(candidates, 3);
  EXPECT_LT(winner, candidates.size());
}

TEST(Election, RotatesAcrossEpochs) {
  std::vector<script::PubKeyHash> candidates;
  for (const char* name : {"gw-a", "gw-b", "gw-c", "gw-d", "gw-e"}) {
    candidates.push_back(script::to_pubkey_hash(str_bytes(name)));
  }
  // Over many epochs every gateway wins sometimes (fair rotation).
  std::vector<int> wins(candidates.size(), 0);
  for (int epoch = 0; epoch < 200; ++epoch) {
    ++wins[elect_master_gateway(candidates, epoch)];
  }
  for (std::size_t i = 0; i < wins.size(); ++i) {
    EXPECT_GT(wins[i], 10) << "gateway " << i << " never elected";
  }
}

TEST(Election, IndependentOfCandidateOrderModuloIndex) {
  // The winner's identity (not its index) is order-independent.
  std::vector<script::PubKeyHash> a;
  for (const char* name : {"gw-1", "gw-2", "gw-3"}) {
    a.push_back(script::to_pubkey_hash(str_bytes(name)));
  }
  std::vector<script::PubKeyHash> b = {a[2], a[0], a[1]};
  EXPECT_EQ(a[elect_master_gateway(a, 9)], b[elect_master_gateway(b, 9)]);
}

TEST(Election, ThrowsOnEmpty) {
  EXPECT_THROW(elect_master_gateway({}, 0), std::invalid_argument);
}

// --- Full federation integration (small scale for test speed) ---

sim::ScenarioConfig small_config(std::uint64_t seed = 7) {
  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 2;
  config.seed = seed;
  config.chain_params.pow_zero_bits = 4;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 10 * util::kSecond;
  config.recipient_funding = 30 * chain::kCoin;
  return config;
}

TEST(Federation, BootstrapFundsAndAnnounces) {
  sim::Scenario scenario(small_config());
  scenario.bootstrap();
  for (int a = 0; a < scenario.actor_count(); ++a) {
    // Funding minus the directory-announcement fee.
    EXPECT_EQ(scenario.recipient(a).wallet().balance(
                  scenario.actor_node(a).chain()),
              30 * chain::kCoin - 500)
        << "actor " << a;
  }
  // Every actor's chain agrees with the master.
  const auto tip = scenario.master_node().chain().tip_hash();
  for (int a = 0; a < scenario.actor_count(); ++a) {
    EXPECT_EQ(scenario.actor_node(a).chain().tip_hash(), tip);
  }
}

TEST(Federation, EndToEndExchangesComplete) {
  sim::Scenario scenario(small_config());
  scenario.bootstrap();
  scenario.run_exchanges(12, 30 * util::kMinute);
  EXPECT_GE(scenario.exchanges_completed(), 12u);
  ASSERT_GE(scenario.latency_stats().count(), 12u);
  // Without block-verification stalls the mean exchange latency sits in the
  // paper's Fig. 5 regime: a couple of seconds, never tens of seconds.
  EXPECT_GT(scenario.latency_stats().mean(), 0.3);
  EXPECT_LT(scenario.latency_stats().mean(), 6.0);
}

TEST(Federation, GatewaysEarnRewards) {
  sim::Scenario scenario(small_config());
  scenario.bootstrap();
  scenario.run_exchanges(12, 30 * util::kMinute);
  // Let redeems confirm and mature: run some more virtual time.
  scenario.loop().run_until(scenario.loop().now() + 5 * util::kMinute);
  std::uint64_t total_redeems = 0;
  for (int a = 0; a < scenario.actor_count(); ++a) {
    total_redeems += scenario.gateway(a).redeems_submitted();
  }
  EXPECT_GE(total_redeems, 12u);
  // At least one gateway banked a confirmed reward.
  chain::Amount banked = 0;
  for (int a = 0; a < scenario.actor_count(); ++a)
    banked += scenario.gateway(a).confirmed_reward();
  EXPECT_GT(banked, 0);
}

TEST(Federation, ReadingsArriveIntact) {
  sim::ScenarioConfig config = small_config();
  sim::Scenario scenario(config);
  scenario.bootstrap();
  std::vector<Bytes> readings;
  for (int a = 0; a < scenario.actor_count(); ++a) {
    scenario.recipient(a).on_reading = [&](std::uint16_t, const Bytes& r) {
      readings.push_back(r);
    };
  }
  // Rewire breaks the scenario's own completion counting, so drive manually:
  scenario.sensor(0, 0).start_exchange(str_bytes("hello-bcwan"));
  scenario.loop().run_until(scenario.loop().now() + 2 * util::kMinute);
  ASSERT_FALSE(readings.empty());
  EXPECT_EQ(readings[0], str_bytes("hello-bcwan"));
}

TEST(Federation, StallModeSlowsExchanges) {
  sim::ScenarioConfig fast = small_config(11);
  sim::ScenarioConfig slow = small_config(11);
  slow.block_verification_stall = true;
  slow.stall_median_s = 6.0;
  slow.stall_sigma = 0.3;

  sim::Scenario s1(fast);
  s1.bootstrap();
  s1.run_exchanges(8, 60 * util::kMinute);

  sim::Scenario s2(slow);
  s2.bootstrap();
  s2.run_exchanges(8, 60 * util::kMinute);

  ASSERT_GE(s1.latency_stats().count(), 8u);
  ASSERT_GE(s2.latency_stats().count(), 8u);
  // Fig. 6 vs Fig. 5: an order-of-magnitude separation.
  EXPECT_GT(s2.latency_stats().mean(), 3.0 * s1.latency_stats().mean());
}

TEST(Federation, WithholdingGatewayTriggersReclaim) {
  // Confirmations-required = huge makes the gateway sit on eSk forever —
  // operationally identical to a withholding gateway. With a short CLTV
  // timeout the recipient reclaims its funds.
  sim::ScenarioConfig config = small_config(13);
  config.gateway_config.confirmations_required = 1'000'000;
  config.recipient_config.timeout_blocks = 3;
  config.chain_params.block_interval = 5 * util::kSecond;
  sim::Scenario scenario(config);
  scenario.bootstrap();

  std::uint64_t reclaims = 0;
  for (int a = 0; a < scenario.actor_count(); ++a) {
    scenario.recipient(a).on_reclaimed = [&](std::uint16_t) { ++reclaims; };
  }
  scenario.sensor(0, 0).start_exchange(str_bytes("doomed"));
  scenario.loop().run_until(scenario.loop().now() + 10 * util::kMinute);

  EXPECT_GE(reclaims, 1u);
  // No reading was ever decrypted.
  for (int a = 0; a < scenario.actor_count(); ++a) {
    EXPECT_EQ(scenario.recipient(a).readings_decrypted(), 0u);
  }
  // And the recipient's money is back (minus fees): balance close to the
  // initial funding.
  const chain::Amount balance = scenario.recipient(0).wallet().balance(
      scenario.actor_node(0).chain());
  EXPECT_GT(balance, 30 * chain::kCoin - chain::kCoin / 10);
}

TEST(Federation, TamperedDeliveryNeverPaid) {
  // A malicious gateway that mangles Em: the recipient's signature check
  // fails, no offer is ever posted.
  sim::ScenarioConfig config = small_config(17);
  sim::Scenario scenario(config);
  scenario.bootstrap();

  // Intercept DELIVER messages to actor 0 and corrupt them.
  auto& node = scenario.actor_node(0);
  auto& recipient = scenario.recipient(0);
  node.set_app_handler([&recipient](const p2p::Message& msg) {
    p2p::Message corrupted = msg;
    // Payload buffers are shared/immutable: tampering takes a private copy.
    util::Bytes mangled = corrupted.payload;
    if (mangled.size() > 10) mangled[8] ^= 0xff;
    corrupted.payload = std::move(mangled);
    recipient.handle_message(corrupted);
  });

  scenario.sensor(0, 0).start_exchange(str_bytes("tamper-me"));
  scenario.loop().run_until(scenario.loop().now() + 2 * util::kMinute);

  EXPECT_GE(recipient.deliveries_received(), 1u);
  EXPECT_GE(recipient.signature_rejects(), 1u);
  EXPECT_EQ(recipient.offers_posted(), 0u);
  EXPECT_EQ(recipient.readings_decrypted(), 0u);
}

TEST(Federation, FrameLossRecoversViaRetry) {
  sim::ScenarioConfig config = small_config(19);
  config.radio_config.frame_loss = 0.25;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(6, 60 * util::kMinute);
  EXPECT_GE(scenario.exchanges_completed(), 6u);
}

TEST(Federation, NonPayingRecipientGetsNothing) {
  sim::ScenarioConfig config = small_config(23);
  config.recipient_config.pay_for_data = false;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.sensor(0, 0).start_exchange(str_bytes("freeload"));
  scenario.loop().run_until(scenario.loop().now() + 5 * util::kMinute);
  // Delivery arrives, signature verifies, but with no offer there is no
  // eSk and no plaintext: "gateways should not be able to receive more
  // data than what it participates in" — and freeloading recipients get
  // no data either.
  EXPECT_GE(scenario.recipient(0).deliveries_received(), 1u);
  EXPECT_EQ(scenario.recipient(0).offers_posted(), 0u);
  EXPECT_EQ(scenario.recipient(0).readings_decrypted(), 0u);
}

TEST(Federation, OverpricedGatewayGetsNoOffer) {
  sim::ScenarioConfig config = small_config(67);
  config.gateway_config.price_quote = chain::kCoin;       // extortionate
  config.recipient_config.max_price = chain::kCoin / 100; // ceiling
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.sensor(0, 0).start_exchange(str_bytes("too pricey"));
  scenario.loop().run_until(scenario.loop().now() + 2 * util::kMinute);
  EXPECT_GE(scenario.recipient(0).deliveries_received(), 1u);
  EXPECT_GE(scenario.recipient(0).price_rejects(), 1u);
  EXPECT_EQ(scenario.recipient(0).offers_posted(), 0u);
  EXPECT_EQ(scenario.recipient(0).readings_decrypted(), 0u);
}

TEST(Federation, NegotiatedPriceIsPaid) {
  sim::ScenarioConfig config = small_config(68);
  config.gateway_config.price_quote = chain::kCoin / 400;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(3, 30 * util::kMinute);
  scenario.loop().run_until(scenario.loop().now() + 5 * util::kMinute);
  // Gateways banked the quoted price per message (minus redeem fees).
  chain::Amount banked = 0;
  std::uint64_t redeems = 0;
  for (int a = 0; a < scenario.actor_count(); ++a) {
    banked += scenario.gateway(a).confirmed_reward();
    redeems += scenario.gateway(a).redeems_submitted();
  }
  ASSERT_GE(redeems, 3u);
  EXPECT_LE(banked, static_cast<chain::Amount>(redeems) * chain::kCoin / 400);
  EXPECT_GT(banked, 0);
}

TEST(Federation, MultiGatewayActorsUseElectedMaster) {
  sim::ScenarioConfig config = small_config(71);
  config.gateways_per_actor = 3;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(3, 30 * util::kMinute);
  EXPECT_GE(scenario.exchanges_completed(), 3u);
  // Only elected masters served traffic; the other gateways stayed idle.
  for (int a = 0; a < scenario.actor_count(); ++a) {
    const std::size_t master = scenario.master_index(a);
    for (int g = 0; g < config.gateways_per_actor; ++g) {
      auto& gw = scenario.gateway_at(a, g);
      if (static_cast<std::size_t>(g) == master) continue;
      EXPECT_EQ(gw.keys_issued(), 0u) << "actor " << a << " gw " << g;
      EXPECT_EQ(gw.redeems_submitted(), 0u);
    }
  }
  std::uint64_t master_redeems = 0;
  for (int a = 0; a < scenario.actor_count(); ++a) {
    master_redeems += scenario.gateway(a).redeems_submitted();
  }
  EXPECT_GE(master_redeems, 3u);
}

// Minimal single-node world for exercising the directory against reorgs:
// a ChainNode with no peers, driven by direct block submission.
struct DirReorgHarness {
  chain::ChainParams params = [] {
    chain::ChainParams p;
    p.pow_zero_bits = 4;
    p.coinbase_maturity = 1;
    return p;
  }();
  p2p::EventLoop loop;
  p2p::SimNet net{loop, 77};
  p2p::HostId host = net.add_host("dir-node");
  p2p::ChainNode node{loop, net, host, params, {}, 42};
  chain::Wallet miner_wallet = chain::Wallet::from_seed("dir-miner");
  chain::Miner miner{params, miner_wallet.pkh()};

  chain::Block mine(std::uint64_t time) {
    return miner.mine(node.chain(), node.mempool(), time);
  }
};

TEST(Directory, ReorgResyncsStaleEntries) {
  DirReorgHarness a;
  Directory dir(a.node);

  // Fund the announcer, then put an announcement on-chain in block 2.
  ASSERT_EQ(a.node.submit_block(a.mine(1)),
            chain::AcceptBlockResult::kConnected);
  const auto announce = a.miner_wallet.create_announcement(
      a.node.chain(), &a.node.mempool(),
      encode_directory_entry(a.miner_wallet.pkh(), 0x0a000001, 9000), 1000);
  ASSERT_TRUE(announce.has_value());
  ASSERT_TRUE(a.node.submit_tx(*announce).ok());
  ASSERT_EQ(a.node.submit_block(a.mine(2)),
            chain::AcceptBlockResult::kConnected);
  {
    const auto entry = dir.lookup(a.miner_wallet.pkh());
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->height, 2);
  }

  // A competing branch (same genesis + block 1, no announcement) overtakes
  // the announcement block.
  DirReorgHarness b;
  const auto common = a.node.chain().block_at(1);
  ASSERT_TRUE(common.has_value());
  ASSERT_EQ(b.node.submit_block(*common), chain::AcceptBlockResult::kConnected);
  const chain::Block b2 = b.mine(20);
  ASSERT_EQ(b.node.submit_block(b2), chain::AcceptBlockResult::kConnected);
  const chain::Block b3 = b.mine(21);
  ASSERT_EQ(b.node.submit_block(b3), chain::AcceptBlockResult::kConnected);

  ASSERT_EQ(a.node.submit_block(b2), chain::AcceptBlockResult::kSideChain);
  ASSERT_EQ(a.node.submit_block(b3), chain::AcceptBlockResult::kReorganized);

  // The announcement's block was disconnected; its tx was resurrected into
  // the mempool. The reorg watcher must have resynced the directory, so
  // the entry now reports the mempool (-1), not the dead height 2 — before
  // the resync hook it kept claiming a block the active chain doesn't have.
  const auto entry = dir.lookup(a.miner_wallet.pkh());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->height, -1);
}

// Two optional entries describe the same resolver fact.
void expect_same_entry(const std::optional<DirectoryEntry>& got,
                       const std::optional<DirectoryEntry>& want) {
  ASSERT_EQ(got.has_value(), want.has_value());
  if (!got) return;
  EXPECT_EQ(got->owner, want->owner);
  EXPECT_EQ(got->ip, want->ip);
  EXPECT_EQ(got->port, want->port);
  EXPECT_EQ(got->height, want->height);
}

TEST(Directory, DeepReorgUnwindsViaUndoFramesNoRescan) {
  DirReorgHarness a;
  Directory dir(a.node);
  ASSERT_EQ(dir.full_rescans(), 1u);  // the cold-start scan

  // Fund, announce ip .1 in block 2, then overwrite with ip .2 in block 4 —
  // the overwrite is what exercises the had_prev undo path.
  ASSERT_EQ(a.node.submit_block(a.mine(1)),
            chain::AcceptBlockResult::kConnected);
  const auto first = a.miner_wallet.create_announcement(
      a.node.chain(), &a.node.mempool(),
      encode_directory_entry(a.miner_wallet.pkh(), 0x0a000001, 9001), 1000);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(a.node.submit_tx(*first).ok());
  ASSERT_EQ(a.node.submit_block(a.mine(2)),
            chain::AcceptBlockResult::kConnected);
  ASSERT_EQ(a.node.submit_block(a.mine(3)),
            chain::AcceptBlockResult::kConnected);
  const auto second = a.miner_wallet.create_announcement(
      a.node.chain(), &a.node.mempool(),
      encode_directory_entry(a.miner_wallet.pkh(), 0x0a000002, 9002), 1000);
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(a.node.submit_tx(*second).ok());
  ASSERT_EQ(a.node.submit_block(a.mine(4)),
            chain::AcceptBlockResult::kConnected);
  {
    const auto entry = dir.lookup(a.miner_wallet.pkh());
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->ip, 0x0a000002u);
    EXPECT_EQ(entry->height, 4);
  }
  EXPECT_EQ(dir.indexed_tip(), 4);

  // A rival branch forking at height 2: blocks 3-4 (with the overwrite)
  // disconnect, three rival blocks connect.
  DirReorgHarness b;
  for (int h = 1; h <= 2; ++h) {
    const auto common = a.node.chain().block_at(h);
    ASSERT_TRUE(common.has_value());
    ASSERT_EQ(b.node.submit_block(*common),
              chain::AcceptBlockResult::kConnected);
  }
  const chain::Block r3 = b.mine(20);
  ASSERT_EQ(b.node.submit_block(r3), chain::AcceptBlockResult::kConnected);
  const chain::Block r4 = b.mine(21);
  ASSERT_EQ(b.node.submit_block(r4), chain::AcceptBlockResult::kConnected);
  const chain::Block r5 = b.mine(22);
  ASSERT_EQ(b.node.submit_block(r5), chain::AcceptBlockResult::kConnected);

  ASSERT_EQ(a.node.submit_block(r3), chain::AcceptBlockResult::kSideChain);
  ASSERT_EQ(a.node.submit_block(r4), chain::AcceptBlockResult::kSideChain);
  ASSERT_EQ(a.node.submit_block(r5), chain::AcceptBlockResult::kReorganized);

  // The reorg was absorbed through undo frames: no full rescan.
  EXPECT_EQ(dir.indexed_reorgs(), 1u);
  EXPECT_EQ(dir.full_rescans(), 1u);
  EXPECT_EQ(dir.indexed_tip(), 5);

  // The disconnected overwrite resurrected into the mempool and shadows the
  // restored confirmed entry; a freshly-built full-rescan directory must
  // agree exactly with the incrementally unwound one.
  const Directory probe(a.node);
  expect_same_entry(dir.lookup(a.miner_wallet.pkh()),
                    probe.lookup(a.miner_wallet.pkh()));
  EXPECT_EQ(dir.size(), probe.size());
  {
    const auto entry = dir.lookup(a.miner_wallet.pkh());
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->height, -1);  // mempool sighting of the resurrected tx
    EXPECT_EQ(entry->ip, 0x0a000002u);
  }

  // Mining on the new branch confirms the resurrected announcement and
  // retires the mempool shadow — still in lockstep with the rescan copy.
  ASSERT_EQ(a.node.submit_block(a.mine(30)),
            chain::AcceptBlockResult::kConnected);
  const auto entry = dir.lookup(a.miner_wallet.pkh());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->height, 6);
  EXPECT_EQ(entry->ip, 0x0a000002u);
  expect_same_entry(dir.lookup(a.miner_wallet.pkh()),
                    probe.lookup(a.miner_wallet.pkh()));
}

TEST(Directory, ReorgPastUndoWindowFallsBackToRescan) {
  DirReorgHarness a;
  DirectoryOptions options;
  options.undo_depth = 2;  // frames for the newest two heights only
  Directory dir(a.node, options);
  ASSERT_EQ(dir.full_rescans(), 1u);

  ASSERT_EQ(a.node.submit_block(a.mine(1)),
            chain::AcceptBlockResult::kConnected);
  const auto announce = a.miner_wallet.create_announcement(
      a.node.chain(), &a.node.mempool(),
      encode_directory_entry(a.miner_wallet.pkh(), 0x0a000003, 9003), 1000);
  ASSERT_TRUE(announce.has_value());
  ASSERT_TRUE(a.node.submit_tx(*announce).ok());
  for (std::uint64_t t = 2; t <= 4; ++t) {
    ASSERT_EQ(a.node.submit_block(a.mine(t)),
              chain::AcceptBlockResult::kConnected);
  }

  // Rival branch forking at height 1 — deeper than the two retained undo
  // frames, so the unwind hits a missing frame and rebuilds instead.
  DirReorgHarness b;
  const auto common = a.node.chain().block_at(1);
  ASSERT_TRUE(common.has_value());
  ASSERT_EQ(b.node.submit_block(*common),
            chain::AcceptBlockResult::kConnected);
  std::vector<chain::Block> branch;
  for (std::uint64_t t = 40; t < 44; ++t) {
    const chain::Block blk = b.mine(t);
    ASSERT_EQ(b.node.submit_block(blk), chain::AcceptBlockResult::kConnected);
    branch.push_back(blk);
  }
  for (std::size_t i = 0; i + 1 < branch.size(); ++i) {
    ASSERT_EQ(a.node.submit_block(branch[i]),
              chain::AcceptBlockResult::kSideChain);
  }
  ASSERT_EQ(a.node.submit_block(branch.back()),
            chain::AcceptBlockResult::kReorganized);

  EXPECT_EQ(dir.indexed_reorgs(), 0u);
  EXPECT_EQ(dir.full_rescans(), 2u);
  EXPECT_EQ(dir.indexed_tip(), 5);
  const Directory probe(a.node);
  expect_same_entry(dir.lookup(a.miner_wallet.pkh()),
                    probe.lookup(a.miner_wallet.pkh()));
  EXPECT_EQ(dir.size(), probe.size());
}

// Persistent-store node whose directory index is persisted next to it: the
// restart watcher must recover the directory from disk, not rescan.
struct PersistDirHarness {
  chain::ChainParams params = [] {
    chain::ChainParams p;
    p.pow_zero_bits = 4;
    p.coinbase_maturity = 1;
    return p;
  }();
  std::filesystem::path dir = [] {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "bcwan-dir-XXXXXX").string();
    return std::filesystem::path(::mkdtemp(tmpl.data()));
  }();
  p2p::EventLoop loop;
  p2p::SimNet net{loop, 78};
  p2p::HostId host = net.add_host("persist-dir-node");
  p2p::ChainNodeConfig config = [this] {
    p2p::ChainNodeConfig c;
    c.store_dir = (dir / "node").string();
    return c;
  }();
  p2p::ChainNode node{loop, net, host, params, config, 52};
  chain::Wallet miner_wallet = chain::Wallet::from_seed("persist-dir-miner");
  chain::Miner miner{params, miner_wallet.pkh()};

  ~PersistDirHarness() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::string index_path() const { return (dir / "directory.idx").string(); }

  chain::Block mine(std::uint64_t time) {
    return miner.mine(node.chain(), node.mempool(), time);
  }

  /// Fund the announcer, confirm one announcement at height 2, bury it.
  void announce_and_confirm(Directory& directory) {
    ASSERT_EQ(node.submit_block(mine(1)),
              chain::AcceptBlockResult::kConnected);
    const auto announce = miner_wallet.create_announcement(
        node.chain(), &node.mempool(),
        encode_directory_entry(miner_wallet.pkh(), 0x0a000007, 9007), 1000);
    ASSERT_TRUE(announce.has_value());
    ASSERT_TRUE(node.submit_tx(*announce).ok());
    ASSERT_EQ(node.submit_block(mine(2)),
              chain::AcceptBlockResult::kConnected);
    ASSERT_EQ(node.submit_block(mine(3)),
              chain::AcceptBlockResult::kConnected);
    const auto entry = directory.lookup(miner_wallet.pkh());
    ASSERT_TRUE(entry.has_value());
    ASSERT_EQ(entry->height, 2);
  }
};

TEST(Directory, PersistedIndexSurvivesCrashRestart) {
  PersistDirHarness a;
  DirectoryOptions options;
  options.persist_path = a.index_path();
  Directory dir(a.node, options);
  ASSERT_EQ(dir.full_rescans(), 1u);  // first boot: nothing persisted yet
  a.announce_and_confirm(dir);
  const auto before = dir.lookup(a.miner_wallet.pkh());
  ASSERT_TRUE(std::filesystem::exists(a.index_path()));

  a.node.crash();
  ASSERT_TRUE(a.node.restart());
  // Recovery installed the persisted index: no additional rescan.
  EXPECT_EQ(dir.full_rescans(), 1u);
  EXPECT_EQ(dir.indexed_tip(), 3);
  expect_same_entry(dir.lookup(a.miner_wallet.pkh()), before);

  // The recovered index stays live on new blocks.
  ASSERT_EQ(a.node.submit_block(a.mine(10)),
            chain::AcceptBlockResult::kConnected);
  EXPECT_EQ(dir.indexed_tip(), 4);
}

TEST(Directory, CorruptPersistedIndexFallsBackToRescan) {
  PersistDirHarness a;
  DirectoryOptions options;
  options.persist_path = a.index_path();
  Directory dir(a.node, options);
  a.announce_and_confirm(dir);
  const auto before = dir.lookup(a.miner_wallet.pkh());

  // Flip a byte in the middle of the persisted payload: the CRC rejects it
  // and recovery rebuilds by scanning instead of trusting the file.
  a.node.crash();
  {
    std::ifstream in(a.index_path(), std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    ASSERT_FALSE(raw.empty());
    raw[raw.size() / 2] ^= 0x08;
    std::ofstream out(a.index_path(),
                      std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }
  ASSERT_TRUE(a.node.restart());
  EXPECT_EQ(dir.full_rescans(), 2u);
  expect_same_entry(dir.lookup(a.miner_wallet.pkh()), before);

  // A truncated (torn) index file is rejected the same way. The rescan
  // above re-persisted a good file first.
  a.node.crash();
  {
    std::ifstream in(a.index_path(), std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    ASSERT_GT(raw.size(), 8u);
    std::ofstream out(a.index_path(),
                      std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size() / 2));
  }
  ASSERT_TRUE(a.node.restart());
  EXPECT_EQ(dir.full_rescans(), 3u);
  expect_same_entry(dir.lookup(a.miner_wallet.pkh()), before);
}

TEST(Federation, DirectoryServesForeignLookups) {
  sim::Scenario scenario(small_config(29));
  scenario.bootstrap();
  // Every gateway can resolve every recipient.
  for (int g = 0; g < scenario.actor_count(); ++g) {
    for (int r = 0; r < scenario.actor_count(); ++r) {
      const auto& pkh = scenario.recipient(r).pkh();
      // Use the gateway's directory through a fresh lookup via its agent's
      // directory reference: check through the scenario's actor node.
      core::Directory probe(scenario.actor_node(g));
      const auto entry = probe.lookup(pkh);
      ASSERT_TRUE(entry.has_value()) << "gateway " << g << " recipient " << r;
      EXPECT_EQ(entry->ip, sim::host_ip(scenario.actor_node(r).host()));
    }
  }
}

}  // namespace
}  // namespace bcwan::core

// End-to-end over real sockets: two in-process ChainNodes on localhost TCP
// complete a getblocks catch-up sync and one full fair exchange. This is
// the smallest cousin of examples/cluster — same stack, no fork/exec — and
// runs under the sanitizer jobs. Every wait has a hard wall-clock deadline
// so a wedged transport fails the test instead of hanging CI.
#include <gtest/gtest.h>

#include <ctime>
#include <functional>
#include <optional>
#include <string>

#include "bcwan/fair_exchange.hpp"
#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "crypto/rsa.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/tcp_transport.hpp"
#include "sim/invariants.hpp"
#include "util/rng.hpp"

namespace bcwan {
namespace {

chain::ChainParams fast_params() {
  chain::ChainParams params;
  params.pow_zero_bits = 8;
  params.coinbase_maturity = 2;
  return params;
}

std::int64_t wall_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

/// Pump both transports until `done` or the deadline expires.
bool pump_until(p2p::TcpTransport& a, p2p::TcpTransport& b,
                const std::function<bool()>& done, int deadline_ms = 30000) {
  const std::int64_t deadline = wall_ms() + deadline_ms;
  while (wall_ms() < deadline) {
    a.poll(1);
    b.poll(1);
    if (done()) return true;
  }
  return done();
}

TEST(TransportChainNode, GetblocksSyncOverTcp) {
  const chain::ChainParams params = fast_params();

  // Node A mines ahead while it knows no peers: those broadcasts go
  // nowhere, exactly like a node that was partitioned from day one.
  p2p::TcpTransportConfig ca;
  ca.self = 0;
  p2p::TcpTransport ta(ca);
  p2p::ChainNode na(ta, 0, params, {}, 1);
  chain::Wallet miner_wallet = chain::Wallet::from_seed("sync-miner");
  chain::Miner miner(params, miner_wallet.pkh());
  for (int i = 0; i < 5; ++i) {
    const chain::Block block =
        miner.mine(na.chain(), na.mempool(), static_cast<std::uint64_t>(i));
    ASSERT_EQ(na.submit_block(block), chain::AcceptBlockResult::kConnected);
  }
  ASSERT_EQ(na.chain().height(), 5);

  // Node B joins at genesis; wire the two transports both ways.
  p2p::TcpTransportConfig cb;
  cb.self = 1;
  p2p::TcpTransport tb(cb);
  p2p::ChainNode nb(tb, 1, params, {}, 2);
  ta.set_peer_address(1, "127.0.0.1:" + std::to_string(tb.listen_port()));
  tb.set_peer_address(0, "127.0.0.1:" + std::to_string(ta.listen_port()));

  // One more block: B sees an orphan (parent unknown), issues getblocks,
  // and A streams the missing history back — all over the real sockets.
  const chain::Block next =
      miner.mine(na.chain(), na.mempool(), 99);
  ASSERT_TRUE(pump_until(ta, tb, [&] { return ta.peer_connected(1); }));
  ASSERT_EQ(na.submit_block(next), chain::AcceptBlockResult::kConnected);

  ASSERT_TRUE(pump_until(ta, tb, [&] { return nb.chain().height() == 6; }))
      << "node B is at height " << nb.chain().height();
  EXPECT_EQ(nb.chain().tip_hash(), na.chain().tip_hash());
  EXPECT_GE(nb.sync_requests(), 1u);
  EXPECT_GE(na.sync_blocks_served(), 5u);
}

TEST(TransportChainNode, FullFairExchangeOverTcp) {
  const chain::ChainParams params = fast_params();

  p2p::TcpTransportConfig ca;
  ca.self = 0;
  p2p::TcpTransport ta(ca);
  p2p::TcpTransportConfig cb;
  cb.self = 1;
  p2p::TcpTransport tb(cb);
  p2p::ChainNode na(ta, 0, params, {}, 1);
  p2p::ChainNode nb(tb, 1, params, {}, 2);
  ta.set_peer_address(1, "127.0.0.1:" + std::to_string(tb.listen_port()));
  tb.set_peer_address(0, "127.0.0.1:" + std::to_string(ta.listen_port()));

  // Node A hosts the gateway (seller) and the miner; node B the buyer.
  chain::Wallet seller_wallet = chain::Wallet::from_seed("tcp-seller");
  chain::Wallet buyer_wallet = chain::Wallet::from_seed("tcp-buyer");
  chain::Miner miner(params, buyer_wallet.pkh());  // rewards fund the buyer
  std::uint64_t mine_time = 0;
  auto mine_on_a = [&] {
    const chain::Block block =
        miner.mine(na.chain(), na.mempool(), ++mine_time);
    ASSERT_NE(na.submit_block(block), chain::AcceptBlockResult::kInvalid);
  };
  for (int i = 0; i < params.coinbase_maturity + 1; ++i) mine_on_a();
  ASSERT_TRUE(pump_until(ta, tb, [&] {
    return nb.chain().height() == na.chain().height();
  }));
  ASSERT_GT(buyer_wallet.balance(nb.chain()), 0);

  // Protocol steps 8-13 of the paper, each hop crossing the wire.
  util::Rng rng(7);
  core::FairExchangeSeller seller(seller_wallet,
                                  crypto::rsa_generate(rng, 512));
  core::FairExchangeBuyer buyer(buyer_wallet, seller.ephemeral_pub(),
                                seller_wallet.pkh(), 2 * chain::kCoin, 1000,
                                40);

  // Seller's watcher on A: redeem any matching offer the moment it lands
  // in the mempool (reveals eSk on-chain).
  std::optional<chain::Transaction> redeem;
  na.add_tx_watcher([&](const chain::Transaction& tx) {
    if (redeem.has_value()) return;
    if (auto r = seller.try_redeem(tx, 1000)) {
      redeem = *r;
      ASSERT_TRUE(na.submit_tx(*redeem).ok());
    }
  });
  // Buyer's watcher on B: recover the ephemeral secret from the redeem.
  std::optional<crypto::RsaPrivateKey> esk;
  nb.add_tx_watcher([&](const chain::Transaction& tx) {
    if (esk.has_value()) return;
    if (auto key = buyer.observe(tx)) esk = std::move(*key);
  });

  const auto offer = buyer.make_offer(nb.chain(), &nb.mempool());
  ASSERT_TRUE(offer.has_value());
  ASSERT_TRUE(nb.submit_tx(*offer).ok());

  // offer: B -> A gossip; redeem: A -> B gossip; both must land.
  ASSERT_TRUE(pump_until(ta, tb, [&] { return esk.has_value(); }));
  EXPECT_EQ(buyer.state(), core::FairExchangeBuyer::State::kSettled);

  // Confirm the pair and check the settled exchange on both chains.
  mine_on_a();
  ASSERT_TRUE(pump_until(ta, tb, [&] {
    return nb.chain().tip_hash() == na.chain().tip_hash();
  }));
  for (const chain::Blockchain* chain : {&na.chain(), &nb.chain()}) {
    sim::InvariantReport report;
    const sim::SettlementTally tally =
        sim::check_settlement_invariants(*chain, report);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_EQ(tally.redeemed, 1u);
    EXPECT_EQ(tally.open, 0u);
  }
  EXPECT_TRUE(sim::check_chain_invariants(na.chain()).ok());
}

}  // namespace
}  // namespace bcwan
#include <gtest/gtest.h>

#include "bignum/biguint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/primes.hpp"
#include "util/rng.hpp"

namespace bcwan::bignum {
namespace {

using util::Rng;

TEST(BigUint, ZeroAndSmallValues) {
  const BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_even());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");

  const BigUint one(1);
  EXPECT_TRUE(one.is_one());
  EXPECT_FALSE(one.is_even());
  EXPECT_EQ(one.bit_length(), 1u);
}

TEST(BigUint, U64RoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 0xffffffffULL, 0x100000000ULL,
                          0xdeadbeefcafebabeULL, ~0ULL}) {
    EXPECT_EQ(BigUint(v).to_u64(), v);
  }
}

TEST(BigUint, HexRoundTrip) {
  const char* kCases[] = {
      "1", "ff", "100", "deadbeef",
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"};
  for (const char* h : kCases) {
    EXPECT_EQ(BigUint::from_hex(h).to_hex(), h);
  }
}

TEST(BigUint, BytesRoundTrip) {
  const auto raw = util::from_hex_strict("00ffee010203");
  const BigUint v = BigUint::from_bytes_be(raw);
  EXPECT_EQ(util::to_hex(v.to_bytes_be(6)), "00ffee010203");
  EXPECT_EQ(util::to_hex(v.to_bytes_be()), "ffee010203");
}

TEST(BigUint, ToBytesThrowsWhenTooNarrow) {
  const BigUint v = BigUint::from_hex("010203");
  EXPECT_THROW(v.to_bytes_be(2), std::domain_error);
}

TEST(BigUint, Comparison) {
  EXPECT_LT(BigUint(1), BigUint(2));
  EXPECT_GT(BigUint(0x100000000ULL), BigUint(0xffffffffULL));
  EXPECT_EQ(BigUint(7), BigUint(7));
}

TEST(BigUint, AddSubInverse) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const BigUint a = BigUint::random_bits(rng, 1 + rng.below(300));
    const BigUint b = BigUint::random_bits(rng, 1 + rng.below(300));
    const BigUint s = a + b;
    EXPECT_EQ(s - a, b);
    EXPECT_EQ(s - b, a);
  }
}

TEST(BigUint, SubUnderflowThrows) {
  EXPECT_THROW(BigUint(1) - BigUint(2), std::domain_error);
}

TEST(BigUint, AddCarryChain) {
  const BigUint a = BigUint::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((a + BigUint(1)).to_hex(), "1000000000000000000000000");
}

TEST(BigUint, MulKnownValues) {
  EXPECT_EQ((BigUint(0xffffffffULL) * BigUint(0xffffffffULL)).to_hex(),
            "fffffffe00000001");
  EXPECT_TRUE((BigUint(12345) * BigUint()).is_zero());
}

TEST(BigUint, DivmodIdentityRandom) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const BigUint a = BigUint::random_bits(rng, 1 + rng.below(512));
    BigUint b = BigUint::random_bits(rng, 1 + rng.below(300));
    if (b.is_zero()) b = BigUint(1);
    const auto [q, r] = BigUint::divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigUint, DivmodEdgeCases) {
  EXPECT_THROW(BigUint::divmod(BigUint(1), BigUint()), std::domain_error);
  const auto [q1, r1] = BigUint::divmod(BigUint(5), BigUint(7));
  EXPECT_TRUE(q1.is_zero());
  EXPECT_EQ(r1, BigUint(5));
  const auto [q2, r2] = BigUint::divmod(BigUint(42), BigUint(42));
  EXPECT_TRUE(q2.is_one());
  EXPECT_TRUE(r2.is_zero());
}

TEST(BigUint, DivmodKnuthAddBackPath) {
  // A divisor with a maximal high limb stresses the qhat correction branch.
  const BigUint a = BigUint::from_hex(
      "7fffffff800000010000000000000000");
  const BigUint b = BigUint::from_hex("800000008000000200000005");
  const auto [q, r] = BigUint::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigUint, Shifts) {
  const BigUint v = BigUint::from_hex("123456789abcdef0");
  EXPECT_EQ(v.shl(0), v);
  EXPECT_EQ(v.shr(0), v);
  EXPECT_EQ(v.shl(4).to_hex(), "123456789abcdef00");
  EXPECT_EQ(v.shr(4).to_hex(), "123456789abcdef");
  EXPECT_EQ(v.shl(64).shr(64), v);
  EXPECT_TRUE(v.shr(100).is_zero());
  EXPECT_EQ(v.shl(37).shr(37), v);
}

TEST(BigUint, BitAccess) {
  const BigUint v = BigUint::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
}

TEST(BigUint, ModExpKnownValues) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigUint::mod_exp(BigUint(2), BigUint(10), BigUint(1000)),
            BigUint(24));
  // Fermat: a^(p-1) = 1 mod p for prime p
  const BigUint p(1000003);
  EXPECT_EQ(BigUint::mod_exp(BigUint(12345), p - BigUint(1), p), BigUint(1));
  // modulus 1 -> 0
  EXPECT_TRUE(BigUint::mod_exp(BigUint(5), BigUint(5), BigUint(1)).is_zero());
}

TEST(BigUint, ModExpLarge) {
  const BigUint m = BigUint::from_hex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  const BigUint base = BigUint::from_hex("deadbeef");
  const BigUint e1 = BigUint::from_hex("12345");
  const BigUint e2 = BigUint::from_hex("54321");
  // (b^e1)^e2 == (b^e2)^e1
  EXPECT_EQ(BigUint::mod_exp(BigUint::mod_exp(base, e1, m), e2, m),
            BigUint::mod_exp(BigUint::mod_exp(base, e2, m), e1, m));
}

TEST(BigUint, ModInv) {
  const BigUint m(97);
  for (std::uint64_t a = 1; a < 97; ++a) {
    const auto inv = BigUint::mod_inv(BigUint(a), m);
    ASSERT_TRUE(inv.has_value()) << a;
    EXPECT_EQ((BigUint(a) * *inv) % m, BigUint(1));
  }
  EXPECT_FALSE(BigUint::mod_inv(BigUint(6), BigUint(9)).has_value());
}

TEST(BigUint, ModInvLargeRandom) {
  Rng rng(3);
  const BigUint p = BigUint::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  for (int i = 0; i < 50; ++i) {
    const BigUint a = BigUint::random_below(rng, p - BigUint(1)) + BigUint(1);
    const auto inv = BigUint::mod_inv(a, p);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ((a * *inv) % p, BigUint(1));
  }
}

TEST(BigUint, ModAddSub) {
  const BigUint m(101);
  EXPECT_EQ(BigUint::mod_add(BigUint(100), BigUint(2), m), BigUint(1));
  EXPECT_EQ(BigUint::mod_sub(BigUint(2), BigUint(100), m), BigUint(3));
  EXPECT_EQ(BigUint::mod_sub(BigUint(100), BigUint(2), m), BigUint(98));
}

TEST(BigUint, Gcd) {
  EXPECT_EQ(BigUint::gcd(BigUint(12), BigUint(18)), BigUint(6));
  EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(13)), BigUint(1));
  EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(5)), BigUint(5));
  EXPECT_EQ(BigUint::gcd(BigUint(5), BigUint(0)), BigUint(5));
}

TEST(BigUint, RandomBitsExactWidth) {
  Rng rng(4);
  for (std::size_t bits : {1u, 7u, 8u, 9u, 64u, 255u, 256u}) {
    const BigUint v = BigUint::random_bits(rng, bits);
    EXPECT_LE(v.bit_length(), bits);
  }
}

TEST(BigUint, RandomBelow) {
  Rng rng(5);
  const BigUint bound(1000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(BigUint::random_below(rng, bound), bound);
  }
  EXPECT_THROW(BigUint::random_below(rng, BigUint()), std::domain_error);
}

TEST(Primes, SmallKnownValues) {
  Rng rng(6);
  EXPECT_FALSE(is_probable_prime(BigUint(0), rng));
  EXPECT_FALSE(is_probable_prime(BigUint(1), rng));
  EXPECT_TRUE(is_probable_prime(BigUint(2), rng));
  EXPECT_TRUE(is_probable_prime(BigUint(3), rng));
  EXPECT_FALSE(is_probable_prime(BigUint(4), rng));
  EXPECT_TRUE(is_probable_prime(BigUint(65537), rng));
  EXPECT_FALSE(is_probable_prime(BigUint(65537ULL * 3), rng));
}

TEST(Primes, CarmichaelNumbersRejected) {
  Rng rng(7);
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 6601ULL}) {
    EXPECT_FALSE(is_probable_prime(BigUint(c), rng)) << c;
  }
}

TEST(Primes, KnownLargePrime) {
  Rng rng(8);
  // 2^127 - 1 is a Mersenne prime.
  const BigUint m127 = (BigUint(1) << 127) - BigUint(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  EXPECT_FALSE(is_probable_prime(m127 * BigUint(3), rng));
}

TEST(Primes, GeneratePrimeHasExactBits) {
  Rng rng(9);
  for (std::size_t bits : {32u, 64u, 128u}) {
    const BigUint p = generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_FALSE(p.is_even());
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Primes, GenerateRsaPrimeCoprimality) {
  Rng rng(10);
  const BigUint e(65537);
  const BigUint p = generate_rsa_prime(rng, 128, e);
  EXPECT_TRUE(BigUint::gcd(p - BigUint(1), e).is_one());
}

class BigUintFieldProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigUintFieldProperty, DistributiveAndAssociative) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const BigUint a = BigUint::random_bits(rng, 200);
  const BigUint b = BigUint::random_bits(rng, 180);
  const BigUint c = BigUint::random_bits(rng, 160);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, BigUintFieldProperty,
                         ::testing::Range(0, 20));

// ---- Montgomery fast path vs the reference slow path -----------------------

BigUint random_odd_modulus(Rng& rng, std::size_t bits) {
  BigUint m = BigUint::random_bits(rng, bits);
  if (m.is_even()) m = m + BigUint(1);
  return m;
}

TEST(Montgomery, DifferentialModMulAcrossWidths) {
  Rng rng(101);
  for (std::size_t bits : {512u, 1024u, 2048u}) {
    const BigUint m = random_odd_modulus(rng, bits);
    const MontgomeryCtx ctx(m);
    for (int round = 0; round < 8; ++round) {
      // Operands deliberately wider than the modulus: mod_mul must reduce
      // unreduced inputs the same way the reference path does.
      const BigUint a = BigUint::random_bits(rng, bits + 64);
      const BigUint b = BigUint::random_bits(rng, bits + 64);
      EXPECT_EQ(ctx.mod_mul(a, b), BigUint::mod_mul_basic(a, b, m))
          << "bits=" << bits << " round=" << round;
    }
  }
}

TEST(Montgomery, DifferentialModExpAcrossWidths) {
  Rng rng(102);
  for (std::size_t bits : {512u, 1024u, 2048u}) {
    const BigUint m = random_odd_modulus(rng, bits);
    const MontgomeryCtx ctx(m);
    for (int round = 0; round < 3; ++round) {
      const BigUint base = BigUint::random_bits(rng, bits + 64);
      // Short exponents keep the schoolbook reference path fast at 2048
      // bits; the window logic is identical for longer exponents.
      const BigUint exp = BigUint::random_bits(rng, 96);
      EXPECT_EQ(ctx.mod_exp(base, exp), BigUint::mod_exp_basic(base, exp, m))
          << "bits=" << bits << " round=" << round;
    }
  }
}

TEST(Montgomery, ModExpEdgeCases) {
  Rng rng(103);
  const BigUint m = random_odd_modulus(rng, 512);
  const MontgomeryCtx ctx(m);
  EXPECT_TRUE(ctx.mod_exp(BigUint::random_bits(rng, 512), BigUint()).is_one());
  EXPECT_TRUE(ctx.mod_exp(BigUint(), BigUint(5)).is_zero());
  EXPECT_TRUE(ctx.mod_exp(BigUint(1), BigUint::random_bits(rng, 256)).is_one());
  const BigUint base = BigUint::random_bits(rng, 512);
  EXPECT_EQ(ctx.mod_exp(base, BigUint(1)), base % m);
  // A multiple of the modulus is congruent to zero.
  EXPECT_TRUE(ctx.mod_mul(m * BigUint(7), BigUint(3)).is_zero());
}

TEST(Montgomery, SmallOddModulusMatchesReference) {
  Rng rng(104);
  const MontgomeryCtx ctx(BigUint(0xfffffffbULL));  // single-limb odd
  for (int round = 0; round < 16; ++round) {
    const BigUint a = BigUint::random_bits(rng, 96);
    const BigUint b = BigUint::random_bits(rng, 96);
    EXPECT_EQ(ctx.mod_mul(a, b),
              BigUint::mod_mul_basic(a, b, BigUint(0xfffffffbULL)));
  }
}

TEST(Montgomery, EvenModulusRejectedAndDispatchFallsBack) {
  Rng rng(105);
  BigUint even = BigUint::random_bits(rng, 512);
  if (!even.is_even()) even = even + BigUint(1);
  EXPECT_THROW(MontgomeryCtx ctx(even), std::domain_error);
  EXPECT_EQ(MontgomeryCtx::cached(even), nullptr);

  // BigUint::mod_exp must still work (reference path) and agree with basic.
  const BigUint base = BigUint::random_bits(rng, 512);
  const BigUint exp = BigUint::random_bits(rng, 64);
  EXPECT_EQ(BigUint::mod_exp(base, exp, even),
            BigUint::mod_exp_basic(base, exp, even));
}

TEST(Montgomery, DispatchAgreesWithBasicOnOddModuli) {
  Rng rng(106);
  for (int round = 0; round < 6; ++round) {
    const BigUint m = random_odd_modulus(rng, 384);
    const BigUint a = BigUint::random_bits(rng, 448);
    const BigUint b = BigUint::random_bits(rng, 448);
    const BigUint e = BigUint::random_bits(rng, 80);
    EXPECT_EQ(BigUint::mod_mul(a, b, m), BigUint::mod_mul_basic(a, b, m));
    EXPECT_EQ(BigUint::mod_exp(a, e, m), BigUint::mod_exp_basic(a, e, m));
  }
}

TEST(Montgomery, KillSwitchDisablesCachedContexts) {
  Rng rng(107);
  const BigUint m = random_odd_modulus(rng, 256);
  ASSERT_NE(MontgomeryCtx::cached(m), nullptr);
  set_montgomery_enabled(false);
  EXPECT_EQ(MontgomeryCtx::cached(m), nullptr);
  set_montgomery_enabled(true);
  EXPECT_NE(MontgomeryCtx::cached(m), nullptr);
}

// --- CRT exponentiation vs the full-width reference ---

TEST(ModExpCrt, DifferentialAcrossRsaWidths) {
  Rng rng(108);
  const BigUint e(65537);
  // 512/1024/2048-bit moduli built the way rsa_generate builds them: two
  // half-width primes, d = e^-1 mod phi, dp/dq/qinv derived from d.
  for (std::size_t bits : {512u, 1024u, 2048u}) {
    const BigUint p = generate_rsa_prime(rng, bits / 2, e);
    BigUint q = generate_rsa_prime(rng, bits / 2, e);
    while (q == p) q = generate_rsa_prime(rng, bits / 2, e);
    const BigUint n = p * q;
    const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    const auto d = BigUint::mod_inv(e, phi);
    ASSERT_TRUE(d.has_value()) << bits;
    const BigUint dp = *d % (p - BigUint(1));
    const BigUint dq = *d % (q - BigUint(1));
    const auto qinv = BigUint::mod_inv(q % p, p);
    ASSERT_TRUE(qinv.has_value()) << bits;
    for (int round = 0; round < 3; ++round) {
      const BigUint x = BigUint::random_below(rng, n);
      EXPECT_EQ(BigUint::mod_exp_crt(x, dp, dq, p, q, *qinv),
                BigUint::mod_exp(x, *d, n))
          << "bits=" << bits << " round=" << round;
    }
    // Edge bases.
    EXPECT_TRUE(BigUint::mod_exp_crt(BigUint(), dp, dq, p, q, *qinv).is_zero())
        << bits;
    EXPECT_EQ(BigUint::mod_exp_crt(BigUint(1), dp, dq, p, q, *qinv), BigUint(1))
        << bits;
    EXPECT_EQ(BigUint::mod_exp_crt(n - BigUint(1), dp, dq, p, q, *qinv),
              BigUint::mod_exp(n - BigUint(1), *d, n))
        << bits;
  }
}

TEST(ModExpCrt, ZeroPrimeThrows) {
  const BigUint one(1);
  EXPECT_THROW(
      BigUint::mod_exp_crt(BigUint(5), one, one, BigUint(), BigUint(7), one),
      std::domain_error);
  EXPECT_THROW(
      BigUint::mod_exp_crt(BigUint(5), one, one, BigUint(7), BigUint(), one),
      std::domain_error);
}

TEST(ModExpCrt, WrongQinvYieldsWrongResult) {
  // The fault-check contract in crypto/rsa.cpp relies on a corrupted CRT
  // parameter actually producing a wrong answer (which the public-exponent
  // re-check then catches); pin that here.
  Rng rng(109);
  const BigUint e(65537);
  const BigUint p = generate_rsa_prime(rng, 128, e);
  BigUint q = generate_rsa_prime(rng, 128, e);
  while (q == p) q = generate_rsa_prime(rng, 128, e);
  const BigUint n = p * q;
  const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
  const auto d = BigUint::mod_inv(e, phi);
  ASSERT_TRUE(d.has_value());
  const BigUint dp = *d % (p - BigUint(1));
  const BigUint dq = *d % (q - BigUint(1));
  const auto qinv = BigUint::mod_inv(q % p, p);
  ASSERT_TRUE(qinv.has_value());
  const BigUint bad_qinv = (*qinv + BigUint(1)) % p;
  const BigUint x = BigUint::random_below(rng, n);
  const BigUint want = BigUint::mod_exp(x, *d, n);
  EXPECT_EQ(BigUint::mod_exp_crt(x, dp, dq, p, q, *qinv), want);
  EXPECT_NE(BigUint::mod_exp_crt(x, dp, dq, p, q, bad_qinv), want);
}

}  // namespace
}  // namespace bcwan::bignum

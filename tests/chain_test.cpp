#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "chain/sigcache.hpp"
#include "chain/validation.hpp"
#include "chain/wallet.hpp"
#include "crypto/ecdsa.hpp"
#include "util/rng.hpp"

namespace bcwan::chain {
namespace {

using util::Bytes;
using util::Rng;
using util::str_bytes;

ChainParams test_params() {
  ChainParams p;
  p.pow_zero_bits = 4;  // fast tests
  p.coinbase_maturity = 2;
  return p;
}

/// A chain with a funded wallet: mines `blocks` blocks paying `wallet`.
struct Harness {
  ChainParams params = test_params();
  Blockchain chain{params};
  Mempool pool{params};
  Wallet miner_wallet = Wallet::from_seed("miner");
  Miner miner{params, miner_wallet.pkh()};
  std::uint64_t now = 0;

  void mine_block() {
    const Block block = miner.mine(chain, pool, ++now);
    const auto result = chain.accept_block(block);
    ASSERT_TRUE(result == AcceptBlockResult::kConnected ||
                result == AcceptBlockResult::kReorganized)
        << accept_block_result_name(result);
    pool.remove_confirmed(block);
  }

  void mine_blocks(int n) {
    for (int i = 0; i < n; ++i) mine_block();
  }

  /// Mine enough for `miner_wallet` to have spendable (mature) funds.
  void fund() { mine_blocks(params.coinbase_maturity + 1); }
};

// --- Transactions ---

TEST(Transaction, SerializationRoundTrip) {
  Transaction tx;
  tx.version = 2;
  tx.locktime = 99;
  TxIn in;
  in.prevout.txid[0] = 0xab;
  in.prevout.index = 3;
  in.script_sig = script::Script(Bytes{0x01, 0x02});
  in.sequence = 0xfffffffe;
  tx.vin.push_back(in);
  TxOut out;
  out.value = 12345;
  out.script_pubkey = script::make_p2pkh(script::PubKeyHash{});
  tx.vout.push_back(out);

  const auto back = Transaction::deserialize(tx.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tx);
  EXPECT_EQ(back->txid(), tx.txid());
}

TEST(Transaction, DeserializeRejectsTrailingBytes) {
  Transaction tx;
  tx.vin.emplace_back();
  tx.vout.emplace_back();
  Bytes raw = tx.serialize();
  raw.push_back(0x00);
  EXPECT_FALSE(Transaction::deserialize(raw).has_value());
  EXPECT_FALSE(Transaction::deserialize(Bytes{1, 2, 3}).has_value());
}

TEST(Transaction, CoinbaseDetection) {
  Transaction cb;
  TxIn in;
  in.prevout = coinbase_prevout();
  cb.vin.push_back(in);
  EXPECT_TRUE(cb.is_coinbase());

  Transaction normal;
  TxIn nin;
  nin.prevout.txid[5] = 1;
  normal.vin.push_back(nin);
  EXPECT_FALSE(normal.is_coinbase());
}

TEST(Transaction, TxidChangesWithContent) {
  Transaction tx;
  tx.vin.emplace_back();
  tx.vout.emplace_back();
  const Hash256 id1 = tx.txid();
  tx.vout[0].value = 1;
  tx.invalidate_txid();  // mutation after a txid() call must be declared
  EXPECT_NE(tx.txid(), id1);
}

TEST(Transaction, SighashCoversOutputsAndIndex) {
  Transaction tx;
  tx.vin.resize(2);
  tx.vout.resize(1);
  const script::Script spent = script::make_p2pkh(script::PubKeyHash{});
  const Bytes m0 = signature_hash_message(tx, 0, spent);
  const Bytes m1 = signature_hash_message(tx, 1, spent);
  EXPECT_NE(m0, m1);  // index is committed
  Transaction tx2 = tx;
  tx2.vout[0].value = 7;
  EXPECT_NE(signature_hash_message(tx2, 0, spent), m0);  // outputs committed
}

// --- Blocks & merkle ---

TEST(Block, HeaderHashChangesWithNonce) {
  BlockHeader h;
  const Hash256 h1 = h.hash();
  h.nonce = 1;
  EXPECT_NE(h.hash(), h1);
}

TEST(Block, SerializationRoundTrip) {
  const ChainParams params = test_params();
  const Block genesis = make_genesis(params);
  const auto back = Block::deserialize(genesis.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, genesis);
}

TEST(Merkle, EmptyAndSingle) {
  EXPECT_EQ(merkle_root({}), Hash256{});
  Hash256 leaf{};
  leaf[0] = 1;
  EXPECT_EQ(merkle_root({leaf}), leaf);
}

TEST(Merkle, OrderMatters) {
  Hash256 a{}, b{};
  a[0] = 1;
  b[0] = 2;
  EXPECT_NE(merkle_root({a, b}), merkle_root({b, a}));
}

TEST(Merkle, OddLeafDuplication) {
  Hash256 a{}, b{}, c{};
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  // Three leaves: (ab, cc) per Bitcoin's duplication rule.
  const Hash256 expected = merkle_root({merkle_root({a, b}),
                                        merkle_root({c, c})});
  EXPECT_EQ(merkle_root({a, b, c}), expected);
}

TEST(Pow, TargetCheck) {
  Hash256 zero{};
  EXPECT_TRUE(hash_meets_target(zero, 256));
  Hash256 h{};
  h[0] = 0x0f;  // 4 leading zero bits
  EXPECT_TRUE(hash_meets_target(h, 4));
  EXPECT_FALSE(hash_meets_target(h, 5));
  h[0] = 0x10;
  EXPECT_TRUE(hash_meets_target(h, 3));
  EXPECT_FALSE(hash_meets_target(h, 4));
}

TEST(Pow, SolveFindsValidNonce) {
  BlockHeader h;
  h.target_zero_bits = 8;
  ASSERT_TRUE(solve_pow(h));
  EXPECT_TRUE(hash_meets_target(h.hash(), 8));
}

// --- UTXO ---

TEST(Utxo, AddSpendLifecycle) {
  UtxoSet set;
  OutPoint op;
  op.txid[0] = 1;
  EXPECT_FALSE(set.contains(op));
  set.add(op, Coin{TxOut{100, {}}, 1, false});
  EXPECT_TRUE(set.contains(op));
  EXPECT_EQ(set.get(op)->out.value, 100);
  const auto spent = set.spend(op);
  ASSERT_TRUE(spent.has_value());
  EXPECT_EQ(spent->out.value, 100);
  EXPECT_FALSE(set.contains(op));
  EXPECT_FALSE(set.spend(op).has_value());
}

TEST(Utxo, FindByScriptAndTotal) {
  UtxoSet set;
  const script::Script s = script::make_p2pkh(script::PubKeyHash{});
  for (std::uint32_t i = 0; i < 3; ++i) {
    OutPoint op;
    op.index = i;
    set.add(op, Coin{TxOut{100, s}, 1, false});
  }
  OutPoint other;
  other.txid[0] = 9;
  set.add(other, Coin{TxOut{5, {}}, 1, false});
  EXPECT_EQ(set.find_by_script(s).size(), 3u);
  EXPECT_EQ(set.total_value(), 305);
}

// --- Genesis & mining ---

TEST(Blockchain, GenesisState) {
  const ChainParams params = test_params();
  Blockchain chain(params);
  EXPECT_EQ(chain.height(), 0);
  EXPECT_EQ(chain.utxo().size(), 0u);  // genesis reward is OP_RETURN
  EXPECT_TRUE(chain.block_at(0).has_value());
}

TEST(Blockchain, MiningExtendsChainAndPaysMiner) {
  Harness h;
  h.fund();
  EXPECT_EQ(h.chain.height(), h.params.coinbase_maturity + 1);
  EXPECT_GT(h.miner_wallet.balance(h.chain), 0);
}

TEST(Blockchain, CoinbaseMaturityEnforced) {
  Harness h;
  h.mine_block();  // one immature coinbase
  EXPECT_EQ(h.miner_wallet.balance(h.chain), 0);  // still immature
  h.mine_blocks(h.params.coinbase_maturity);
  EXPECT_GT(h.miner_wallet.balance(h.chain), 0);
}

TEST(Blockchain, RejectsBadPow) {
  Harness h;
  Block block = h.miner.assemble(h.chain, h.pool, 1);
  // Don't solve; the odds of a random header meeting even 4 bits are 1/16,
  // so grind a nonce that does NOT meet the target.
  while (hash_meets_target(block.hash(), h.params.pow_zero_bits))
    ++block.header.nonce;
  EXPECT_EQ(h.chain.accept_block(block), AcceptBlockResult::kInvalid);
  EXPECT_EQ(h.chain.last_failure().error, BlockError::kBadPow);
}

TEST(Blockchain, RejectsBadMerkleRoot) {
  Harness h;
  Block block = h.miner.assemble(h.chain, h.pool, 1);
  block.header.merkle_root[0] ^= 1;
  solve_pow(block.header);
  EXPECT_EQ(h.chain.accept_block(block), AcceptBlockResult::kInvalid);
  EXPECT_EQ(h.chain.last_failure().error, BlockError::kBadMerkleRoot);
}

TEST(Blockchain, RejectsOverpayingCoinbase) {
  Harness h;
  Block block = h.miner.assemble(h.chain, h.pool, 1);
  block.txs[0].vout[0].value = h.params.block_reward + 1;
  block.txs[0].invalidate_txid();
  block.header.merkle_root = compute_merkle_root(block.txs);
  solve_pow(block.header);
  EXPECT_EQ(h.chain.accept_block(block), AcceptBlockResult::kInvalid);
  EXPECT_EQ(h.chain.last_failure().error, BlockError::kBadCoinbaseValue);
}

TEST(Blockchain, DuplicateBlockDetected) {
  Harness h;
  const Block block = h.miner.mine(h.chain, h.pool, 1);
  EXPECT_EQ(h.chain.accept_block(block), AcceptBlockResult::kConnected);
  EXPECT_EQ(h.chain.accept_block(block), AcceptBlockResult::kDuplicate);
}

TEST(Blockchain, OrphanConnectsWhenParentArrives) {
  Harness h;
  // Build two blocks on a parallel copy of the chain.
  Harness h2;
  const Block b1 = h2.miner.mine(h2.chain, h2.pool, 1);
  h2.chain.accept_block(b1);
  const Block b2 = h2.miner.mine(h2.chain, h2.pool, 2);
  h2.chain.accept_block(b2);

  EXPECT_EQ(h.chain.accept_block(b2), AcceptBlockResult::kOrphan);
  EXPECT_EQ(h.chain.height(), 0);
  EXPECT_EQ(h.chain.accept_block(b1), AcceptBlockResult::kConnected);
  // b2 auto-connected as orphan child.
  EXPECT_EQ(h.chain.height(), 2);
  EXPECT_EQ(h.chain.tip_hash(), b2.hash());
}

TEST(Blockchain, ReorgToLongerChain) {
  Harness a;  // will host the reorg
  Harness b;  // builds the competing branch
  // Common prefix.
  const Block common = a.miner.mine(a.chain, a.pool, 1);
  ASSERT_EQ(a.chain.accept_block(common), AcceptBlockResult::kConnected);
  ASSERT_EQ(b.chain.accept_block(common), AcceptBlockResult::kConnected);

  // a extends by one; b extends by two (b uses a different coinbase tag via
  // different timestamps, so hashes differ).
  const Block a1 = a.miner.mine(a.chain, a.pool, 10);
  ASSERT_EQ(a.chain.accept_block(a1), AcceptBlockResult::kConnected);

  const Block b1 = b.miner.mine(b.chain, b.pool, 20);
  ASSERT_EQ(b.chain.accept_block(b1), AcceptBlockResult::kConnected);
  const Block b2 = b.miner.mine(b.chain, b.pool, 21);
  ASSERT_EQ(b.chain.accept_block(b2), AcceptBlockResult::kConnected);

  // Feed the b-branch to a: first block is a side chain, second triggers
  // the reorg.
  EXPECT_EQ(a.chain.accept_block(b1), AcceptBlockResult::kSideChain);
  EXPECT_EQ(a.chain.accept_block(b2), AcceptBlockResult::kReorganized);
  EXPECT_EQ(a.chain.height(), 3);
  EXPECT_EQ(a.chain.tip_hash(), b2.hash());
  // The UTXO sets of both nodes agree after convergence.
  EXPECT_EQ(a.chain.utxo().total_value(), b.chain.utxo().total_value());
}

// --- Spending & validation ---

TEST(Validation, PaymentRoundTrip) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool, alice.pkh(),
                                                10 * kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  const auto accept = h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1);
  ASSERT_TRUE(accept.ok()) << mempool_error_name(accept.error);
  h.mine_block();
  EXPECT_EQ(alice.balance(h.chain), 10 * kCoin);
}

TEST(Validation, RejectsDoubleSpendAcrossBlocks) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(h.chain, nullptr, alice.pkh(),
                                                10 * kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();
  // Same tx again: inputs are gone.
  const auto again = h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1);
  EXPECT_EQ(again.error, MempoolError::kInvalid);
  EXPECT_EQ(again.validation.error, TxError::kMissingInput);
}

TEST(Validation, RejectsBadSignature) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  auto tx = h.miner_wallet.create_payment(h.chain, nullptr, alice.pkh(),
                                          10 * kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  tx->vout[0].value += 1;  // invalidates signatures
  const auto result =
      check_tx_inputs(*tx, h.chain.utxo(), h.chain.height() + 1, h.params);
  EXPECT_EQ(result.error, TxError::kScriptFailed);
}

TEST(Validation, RejectsWrongSpender) {
  Harness h;
  h.fund();
  const Wallet mallory = Wallet::from_seed("mallory");
  // Mallory tries to spend the miner's coin with her own key.
  const auto coins = h.miner_wallet.spendable(h.chain);
  ASSERT_FALSE(coins.empty());
  Transaction tx;
  TxIn in;
  in.prevout = coins[0].first;
  tx.vin.push_back(in);
  TxOut out;
  out.value = coins[0].second.out.value - 1000;
  out.script_pubkey = script::make_p2pkh(mallory.pkh());
  tx.vout.push_back(out);
  mallory.sign_p2pkh_input(tx, 0, coins[0].second.out.script_pubkey);
  const auto result =
      check_tx_inputs(tx, h.chain.utxo(), h.chain.height() + 1, h.params);
  EXPECT_EQ(result.error, TxError::kScriptFailed);
}

TEST(Validation, StatelessChecks) {
  const ChainParams params = test_params();
  Transaction tx;
  EXPECT_EQ(check_transaction(tx, params).error, TxError::kNoInputs);
  tx.vin.emplace_back();
  tx.vin[0].prevout.txid[0] = 1;
  EXPECT_EQ(check_transaction(tx, params).error, TxError::kNoOutputs);
  tx.vout.emplace_back();
  tx.vout[0].value = -5;
  EXPECT_EQ(check_transaction(tx, params).error, TxError::kNegativeOutput);
  tx.vout[0].value = params.max_money + 1;
  EXPECT_EQ(check_transaction(tx, params).error, TxError::kOutputTooLarge);
  tx.vout[0].value = 1;
  tx.vin.push_back(tx.vin[0]);
  EXPECT_EQ(check_transaction(tx, params).error, TxError::kDuplicateInput);
}

TEST(Validation, OpReturnSizeLimit) {
  const ChainParams params = test_params();
  Transaction tx;
  tx.vin.emplace_back();
  tx.vin[0].prevout.txid[0] = 1;
  TxOut out;
  out.value = 0;
  out.script_pubkey =
      script::make_op_return(Bytes(params.max_op_return_size + 1, 0xaa));
  tx.vout.push_back(out);
  EXPECT_EQ(check_transaction(tx, params).error, TxError::kOpReturnTooLarge);
}

TEST(Validation, LocktimeGatesInclusion) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  auto tx = h.miner_wallet.create_payment(h.chain, nullptr, alice.pkh(),
                                          1 * kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  // Rebuild with a far-future locktime and a non-final sequence.
  Transaction locked = *tx;
  locked.locktime = static_cast<std::uint32_t>(h.chain.height() + 100);
  for (auto& in : locked.vin) in.sequence = kSequenceFinal - 1;
  // Re-sign (the wallet helper re-signs input 0 against its spent script).
  const auto coins = h.miner_wallet.spendable(h.chain);
  // Find spent script for each input.
  for (std::size_t i = 0; i < locked.vin.size(); ++i) {
    const auto coin = h.chain.utxo().get(locked.vin[i].prevout);
    ASSERT_TRUE(coin.has_value());
    h.miner_wallet.sign_p2pkh_input(locked, i, coin->out.script_pubkey);
  }
  const auto result =
      check_tx_inputs(locked, h.chain.utxo(), h.chain.height() + 1, h.params);
  EXPECT_EQ(result.error, TxError::kLocktimeNotReached);
}

// --- Mempool ---

TEST(Mempool, AcceptAndConfirm) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool, alice.pkh(),
                                                2 * kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  EXPECT_TRUE(h.pool.contains(tx->txid()));
  EXPECT_EQ(h.pool.size(), 1u);
  h.mine_block();
  EXPECT_FALSE(h.pool.contains(tx->txid()));
  EXPECT_EQ(h.pool.size(), 0u);
}

TEST(Mempool, RejectsDuplicateAndConflict) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const Wallet bob = Wallet::from_seed("bob");
  const auto tx1 = h.miner_wallet.create_payment(h.chain, nullptr, alice.pkh(),
                                                 2 * kCoin, 1000);
  ASSERT_TRUE(tx1.has_value());
  // tx2 spends the same coins (built without pool knowledge) to bob.
  const auto tx2 = h.miner_wallet.create_payment(h.chain, nullptr, bob.pkh(),
                                                 2 * kCoin, 1000);
  ASSERT_TRUE(tx2.has_value());
  ASSERT_NE(tx1->txid(), tx2->txid());

  ASSERT_TRUE(h.pool.accept(*tx1, h.chain.utxo(), h.chain.height() + 1).ok());
  EXPECT_EQ(h.pool.accept(*tx1, h.chain.utxo(), h.chain.height() + 1).error,
            MempoolError::kAlreadyKnown);
  EXPECT_EQ(h.pool.accept(*tx2, h.chain.utxo(), h.chain.height() + 1).error,
            MempoolError::kConflict);
}

TEST(Mempool, UnconfirmedChainAccepted) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const Wallet bob = Wallet::from_seed("bob");
  const auto tx1 = h.miner_wallet.create_payment(h.chain, &h.pool, alice.pkh(),
                                                 5 * kCoin, 1000);
  ASSERT_TRUE(tx1.has_value());
  ASSERT_TRUE(h.pool.accept(*tx1, h.chain.utxo(), h.chain.height() + 1).ok());

  // Alice immediately spends her unconfirmed output to bob.
  Transaction tx2;
  TxIn in;
  in.prevout = OutPoint{tx1->txid(), 0};
  tx2.vin.push_back(in);
  TxOut out;
  out.value = 5 * kCoin - 1000;
  out.script_pubkey = script::make_p2pkh(bob.pkh());
  tx2.vout.push_back(out);
  {
    const Wallet& signer = alice;
    signer.sign_p2pkh_input(tx2, 0, tx1->vout[0].script_pubkey);
  }
  const auto accept = h.pool.accept(tx2, h.chain.utxo(), h.chain.height() + 1);
  ASSERT_TRUE(accept.ok()) << mempool_error_name(accept.error);

  // Both confirm in one block, parent before child.
  h.mine_block();
  EXPECT_EQ(bob.balance(h.chain), 5 * kCoin - 1000);
}

TEST(Mempool, FeeFloorEnforced) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(h.chain, nullptr, alice.pkh(),
                                                2 * kCoin, 0);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).error,
            MempoolError::kFeeTooLow);
}

TEST(Mempool, DoubleSpendEvictedOnConfirm) {
  // The §6 attack observable: a conflicting tx confirms, the victim's
  // in-pool tx is evicted.
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const Wallet bob = Wallet::from_seed("bob");
  const auto to_alice = h.miner_wallet.create_payment(
      h.chain, nullptr, alice.pkh(), 2 * kCoin, 1000);
  const auto to_bob = h.miner_wallet.create_payment(
      h.chain, nullptr, bob.pkh(), 2 * kCoin, 1000);
  ASSERT_TRUE(to_alice.has_value() && to_bob.has_value());

  // Victim pool holds to_alice; the network confirms to_bob instead.
  Mempool victim(h.params);
  ASSERT_TRUE(victim.accept(*to_alice, h.chain.utxo(), h.chain.height() + 1).ok());
  ASSERT_TRUE(h.pool.accept(*to_bob, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();

  victim.remove_confirmed(*h.chain.block_at(h.chain.height()));
  EXPECT_FALSE(victim.contains(to_alice->txid()));
  EXPECT_EQ(victim.size(), 0u);
}

// --- Wallet ---

TEST(Wallet, AddressRoundTrip) {
  const Wallet w = Wallet::from_seed("w");
  const auto decoded = decode_address(w.address());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, w.pkh());
  EXPECT_FALSE(decode_address("garbage").has_value());
}

TEST(Wallet, DeterministicFromSeed) {
  EXPECT_EQ(Wallet::from_seed("x").address(), Wallet::from_seed("x").address());
  EXPECT_NE(Wallet::from_seed("x").address(), Wallet::from_seed("y").address());
}

TEST(Wallet, InsufficientFunds) {
  Harness h;
  const Wallet alice = Wallet::from_seed("alice");
  EXPECT_FALSE(alice.create_payment(h.chain, nullptr, h.miner_wallet.pkh(),
                                    1, 1)
                   .has_value());
}

TEST(Wallet, ChangeReturnsToSelf) {
  Harness h;
  h.fund();
  const Amount before = h.miner_wallet.balance(h.chain);
  const Wallet alice = Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool, alice.pkh(),
                                                1 * kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();
  // The payment and fee leave; one older coinbase newly matures. The block
  // that confirms the payment carries the fee but is itself still immature.
  const Amount after = h.miner_wallet.balance(h.chain);
  EXPECT_EQ(after, before - 1 * kCoin - 1000 + h.params.block_reward);
}

// --- Fair-exchange transactions end to end on the chain ---

class FairExchangeChain : public ::testing::Test {
 protected:
  void SetUp() override {
    h.fund();
    // Recipient gets budget.
    const auto funding = h.miner_wallet.create_payment(
        h.chain, &h.pool, recipient.pkh(), 20 * kCoin, 1000);
    ASSERT_TRUE(funding.has_value());
    ASSERT_TRUE(
        h.pool.accept(*funding, h.chain.utxo(), h.chain.height() + 1).ok());
    h.mine_block();
    ASSERT_EQ(recipient.balance(h.chain), 20 * kCoin);
  }

  Transaction make_offer() {
    const auto offer = recipient.create_key_release_offer(
        h.chain, &h.pool, ephemeral.pub, gateway.pkh(), 1 * kCoin, 1000,
        h.chain.height() + 100);
    EXPECT_TRUE(offer.has_value());
    return *offer;
  }

  OutPoint offer_outpoint(const Transaction& offer) const {
    // Output 0 is the key-release lock (change, if any, follows).
    return OutPoint{offer.txid(), 0};
  }

  Harness h;
  Wallet recipient = Wallet::from_seed("recipient");
  Wallet gateway = Wallet::from_seed("gateway");
  util::Rng rng{42};
  crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
};

TEST_F(FairExchangeChain, OfferRedeemFlow) {
  const Transaction offer = make_offer();
  ASSERT_TRUE(h.pool.accept(offer, h.chain.utxo(), h.chain.height() + 1).ok());

  // Gateway sees the offer (mempool fast path) and redeems, revealing eSk.
  const Transaction redeem = gateway.create_redeem(
      offer_outpoint(offer), offer.vout[0], ephemeral.priv, 1000);
  const auto accept =
      h.pool.accept(redeem, h.chain.utxo(), h.chain.height() + 1);
  ASSERT_TRUE(accept.ok()) << mempool_error_name(accept.error)
                           << "/" << tx_error_name(accept.validation.error);

  // The recipient extracts eSk from the redeem scriptSig.
  const auto revealed = script::extract_revealed_key(redeem.vin[0].script_sig);
  ASSERT_TRUE(revealed.has_value());
  EXPECT_EQ(*revealed, ephemeral.priv);

  h.mine_block();
  EXPECT_EQ(gateway.balance(h.chain), 1 * kCoin - 1000);
}

TEST_F(FairExchangeChain, RedeemWithWrongKeyRejected) {
  const Transaction offer = make_offer();
  ASSERT_TRUE(h.pool.accept(offer, h.chain.utxo(), h.chain.height() + 1).ok());
  util::Rng rng2(43);
  const crypto::RsaKeyPair wrong = crypto::rsa_generate(rng2, 512);
  const Transaction redeem = gateway.create_redeem(
      offer_outpoint(offer), offer.vout[0], wrong.priv, 1000);
  const auto accept =
      h.pool.accept(redeem, h.chain.utxo(), h.chain.height() + 1);
  EXPECT_EQ(accept.error, MempoolError::kInvalid);
  EXPECT_EQ(accept.validation.error, TxError::kScriptFailed);
}

TEST_F(FairExchangeChain, ReclaimOnlyAfterTimeout) {
  // Use a short timeout so the test can mine past it.
  const auto offer = recipient.create_key_release_offer(
      h.chain, &h.pool, ephemeral.pub, gateway.pkh(), 1 * kCoin, 1000,
      h.chain.height() + 3);
  ASSERT_TRUE(offer.has_value());
  const std::int64_t timeout = h.chain.height() + 3;
  ASSERT_TRUE(
      h.pool.accept(*offer, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();  // confirm the offer

  const Transaction reclaim = recipient.create_reclaim(
      offer_outpoint(*offer), offer->vout[0], timeout, 1000);

  // Too early: consensus locktime blocks it.
  auto early = h.pool.accept(reclaim, h.chain.utxo(), h.chain.height() + 1);
  EXPECT_EQ(early.error, MempoolError::kInvalid);
  EXPECT_EQ(early.validation.error, TxError::kLocktimeNotReached);

  // Mine to the timeout; now the reclaim is valid.
  while (h.chain.height() + 1 < timeout) h.mine_block();
  const Amount before = recipient.balance(h.chain);
  auto late = h.pool.accept(reclaim, h.chain.utxo(), h.chain.height() + 1);
  ASSERT_TRUE(late.ok()) << mempool_error_name(late.error) << "/"
                         << tx_error_name(late.validation.error);
  h.mine_block();
  EXPECT_EQ(recipient.balance(h.chain), before + 1 * kCoin - 1000);
}

TEST_F(FairExchangeChain, DoubleSpendRaceResolvesExclusively) {
  // Offer confirmed, then both the gateway redeem and a malicious
  // double-spend... the offer output can only be consumed once.
  const Transaction offer = make_offer();
  ASSERT_TRUE(h.pool.accept(offer, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();

  const Transaction redeem = gateway.create_redeem(
      offer_outpoint(offer), offer.vout[0], ephemeral.priv, 1000);
  ASSERT_TRUE(
      h.pool.accept(redeem, h.chain.utxo(), h.chain.height() + 1).ok());
  // A second spend of the same outpoint conflicts.
  const Transaction redeem2 = gateway.create_redeem(
      offer_outpoint(offer), offer.vout[0], ephemeral.priv, 2000);
  EXPECT_EQ(h.pool.accept(redeem2, h.chain.utxo(), h.chain.height() + 1).error,
            MempoolError::kConflict);
}

TEST(PermissionedMining, OutsiderBlocksRejected) {
  // Multichain-style "grant mine": only federation members may mine.
  ChainParams params = test_params();
  const Wallet member = Wallet::from_seed("member-miner");
  const Wallet outsider = Wallet::from_seed("outsider-miner");
  params.permitted_miners.push_back(
      util::Bytes(member.pkh().begin(), member.pkh().end()));

  Blockchain chain(params);
  Mempool pool(params);
  const Miner good(params, member.pkh());
  const Miner evil(params, outsider.pkh());

  EXPECT_EQ(chain.accept_block(good.mine(chain, pool, 1)),
            AcceptBlockResult::kConnected);
  EXPECT_EQ(chain.accept_block(evil.mine(chain, pool, 2)),
            AcceptBlockResult::kInvalid);
  EXPECT_EQ(chain.last_failure().error, BlockError::kMinerNotPermitted);
  // The member continues unhindered.
  EXPECT_EQ(chain.accept_block(good.mine(chain, pool, 3)),
            AcceptBlockResult::kConnected);
  EXPECT_EQ(chain.height(), 2);
}

TEST(PermissionedMining, OpenChainAcceptsAnyone) {
  ChainParams params = test_params();
  ASSERT_TRUE(params.permitted_miners.empty());
  const Wallet anyone = Wallet::from_seed("whoever");
  Blockchain chain(params);
  Mempool pool(params);
  const Miner miner(params, anyone.pkh());
  EXPECT_EQ(chain.accept_block(miner.mine(chain, pool, 1)),
            AcceptBlockResult::kConnected);
}

TEST(Wallet, MultiInputPaymentAggregatesCoins) {
  Harness h;
  // Several small mature coinbases; a payment larger than any single coin
  // must aggregate inputs.
  h.mine_blocks(h.params.coinbase_maturity + 4);
  const Wallet alice = Wallet::from_seed("alice");
  const Amount big = h.params.block_reward + h.params.block_reward / 2;
  const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool, alice.pkh(),
                                                big, 1000);
  ASSERT_TRUE(tx.has_value());
  EXPECT_GE(tx->vin.size(), 2u);
  ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();
  EXPECT_EQ(alice.balance(h.chain), big);
}

TEST(Miner, SkipsTxWhoseInputsVanished) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const Wallet bob = Wallet::from_seed("bob");
  // Two conflicting txs; pool A holds one, pool B holds the other. After
  // the first confirms, assembling from pool B must skip the stale tx.
  const auto to_alice = h.miner_wallet.create_payment(h.chain, nullptr,
                                                      alice.pkh(), kCoin, 1000);
  const auto to_bob = h.miner_wallet.create_payment(h.chain, nullptr,
                                                    bob.pkh(), kCoin, 1000);
  ASSERT_TRUE(to_alice.has_value() && to_bob.has_value());
  Mempool pool_b(h.params);
  ASSERT_TRUE(pool_b.accept(*to_bob, h.chain.utxo(), h.chain.height() + 1).ok());
  ASSERT_TRUE(
      h.pool.accept(*to_alice, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();  // confirms to_alice
  const Block stale = h.miner.mine(h.chain, pool_b, 99);
  // to_bob's inputs are gone; the block contains only the coinbase.
  EXPECT_EQ(stale.txs.size(), 1u);
  EXPECT_EQ(h.chain.accept_block(stale), AcceptBlockResult::kConnected);
}

TEST(Mempool, SelectRespectsSizeBudget) {
  Harness h;
  h.mine_blocks(h.params.coinbase_maturity + 6);
  const Wallet alice = Wallet::from_seed("alice");
  for (int i = 0; i < 5; ++i) {
    const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool,
                                                  alice.pkh(), kCoin, 1000);
    ASSERT_TRUE(tx.has_value());
    ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  }
  ASSERT_EQ(h.pool.size(), 5u);
  // A tiny budget admits at most one transaction.
  const auto one = h.pool.select_for_block(400);
  EXPECT_LE(one.size(), 1u);
  const auto all = h.pool.select_for_block(1'000'000);
  EXPECT_EQ(all.size(), 5u);
}

TEST(Blockchain, ConfirmationCountsGrow) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool, alice.pkh(),
                                                kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  const Hash256 txid = tx->txid();
  int confs = 0;
  EXPECT_FALSE(h.chain.tx_confirmations(txid, confs));  // unconfirmed
  ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();
  ASSERT_TRUE(h.chain.tx_confirmations(txid, confs));
  EXPECT_EQ(confs, 1);
  h.mine_blocks(3);
  ASSERT_TRUE(h.chain.tx_confirmations(txid, confs));
  EXPECT_EQ(confs, 4);
}

TEST(Blockchain, ScanRecentDepthBounded) {
  Harness h;
  h.mine_blocks(6);
  int blocks_seen = 0;
  int last_height = 1 << 30;
  h.chain.scan_recent(3, [&](const Transaction&, int height) {
    // Newest first, only coinbases here: one tx per block.
    EXPECT_LE(height, last_height);
    last_height = height;
    ++blocks_seen;
  });
  EXPECT_EQ(blocks_seen, 3);
}

TEST(ChainSnapshot, ExportImportRoundTrip) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool, alice.pkh(),
                                                2 * kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1).ok());
  h.mine_block();

  const Bytes snapshot = h.chain.export_chain();
  const auto restored = Blockchain::import_chain(h.params, snapshot);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->height(), h.chain.height());
  EXPECT_EQ(restored->tip_hash(), h.chain.tip_hash());
  EXPECT_EQ(restored->utxo().total_value(), h.chain.utxo().total_value());
  // Balances survive the round trip.
  EXPECT_EQ(alice.balance(*restored), 2 * kCoin);
}

TEST(ChainSnapshot, ImportRejectsTamperedBlock) {
  Harness h;
  h.fund();
  Bytes snapshot = h.chain.export_chain();
  // Flip a byte deep in the stream: some block's PoW/merkle breaks.
  snapshot[snapshot.size() / 2] ^= 0xff;
  EXPECT_FALSE(Blockchain::import_chain(h.params, snapshot).has_value());
}

TEST(ChainSnapshot, ImportRejectsGarbage) {
  const ChainParams params = test_params();
  EXPECT_FALSE(Blockchain::import_chain(params, Bytes{1, 2, 3}).has_value());
  // An empty snapshot is a valid chain of height 0.
  Blockchain fresh(params);
  const auto restored = Blockchain::import_chain(params, fresh.export_chain());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->height(), 0);
}

TEST(ChainSupply, UtxoValueNeverExceedsIssuance) {
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  for (int i = 0; i < 5; ++i) {
    const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool,
                                                  alice.pkh(), kCoin, 1000);
    if (tx) {
      h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1);
    }
    h.mine_block();
    const Amount issued =
        static_cast<Amount>(h.chain.height()) * h.params.block_reward;
    EXPECT_LE(h.chain.utxo().total_value(), issued);
  }
}

// --- Signature / script-execution cache ---

TEST(SigCache, SaltedEntryNeverValidatesDifferentTriple) {
  VerifyCache cache(64);
  Hash256 digest{};
  for (std::size_t i = 0; i < digest.size(); ++i)
    digest[i] = static_cast<std::uint8_t>(i * 3 + 1);
  Bytes pubkey = str_bytes("serialized-pubkey-bytes");
  Bytes sig = str_bytes("der-encoded-signature");

  auto key_of = [&](const Hash256& d, const Bytes& pk, const Bytes& s) {
    return cache.key({util::ByteView(d.data(), d.size()),
                      util::ByteView(pk.data(), pk.size()),
                      util::ByteView(s.data(), s.size())});
  };
  const Hash256 k = key_of(digest, pubkey, sig);
  cache.insert(k);
  ASSERT_TRUE(cache.contains(k));

  // Flipping any single component of the triple must produce a key the
  // cache has never seen — a cached verdict can never be replayed for a
  // different (sighash, pubkey, sig).
  Hash256 digest2 = digest;
  digest2[0] ^= 0x01;
  EXPECT_FALSE(cache.contains(key_of(digest2, pubkey, sig)));
  Bytes pubkey2 = pubkey;
  pubkey2[0] ^= 0x01;
  EXPECT_FALSE(cache.contains(key_of(digest, pubkey2, sig)));
  Bytes sig2 = sig;
  sig2.back() ^= 0x01;
  EXPECT_FALSE(cache.contains(key_of(digest, pubkey, sig2)));

  // Length prefixes prevent concatenation ambiguity between fields.
  EXPECT_NE(cache.key({util::ByteView(pubkey.data(), 4),
                       util::ByteView(pubkey.data() + 4, 4)}),
            cache.key({util::ByteView(pubkey.data(), 5),
                       util::ByteView(pubkey.data() + 5, 3)}));

  // A different cache instance draws a different salt, so even the same
  // triple maps to an unrelated key (no cross-node cache poisoning).
  VerifyCache other(64);
  EXPECT_NE(k, other.key({util::ByteView(digest.data(), digest.size()),
                          util::ByteView(pubkey.data(), pubkey.size()),
                          util::ByteView(sig.data(), sig.size())}));
}

TEST(SigCache, BoundedEviction) {
  VerifyCache cache(32);
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    Hash256 k{};
    for (std::size_t j = 0; j < 8; ++j)
      k[j] = static_cast<std::uint8_t>(rng.next() >> (j * 8));
    k[8] = static_cast<std::uint8_t>(i);
    k[9] = static_cast<std::uint8_t>(i >> 8);
    cache.insert(k);
    EXPECT_LE(cache.size(), 32u);
  }
}

// --- Serial vs parallel block validation ---

/// Mines funding, queues `n` mempool payments, and assembles (but does not
/// connect) the next block containing them.
Block assemble_payment_block(Harness& h, int n) {
  h.fund();
  h.mine_blocks(4);  // several mature coinbases => independent inputs
  const Wallet alice = Wallet::from_seed("alice");
  for (int i = 0; i < n; ++i) {
    const auto tx = h.miner_wallet.create_payment(h.chain, &h.pool,
                                                  alice.pkh(), kCoin, 1000);
    if (!tx) break;
    h.pool.accept(*tx, h.chain.utxo(), h.chain.height() + 1);
  }
  Block block = h.miner.assemble(h.chain, h.pool, ++h.now);
  solve_pow(block.header);
  return block;
}

TEST(Validation, SerialAndParallelAgreeOnValidBlock) {
  Harness h;
  const Block block = assemble_payment_block(h, 5);
  ASSERT_GT(block.txs.size(), 3u);
  const int height = h.chain.height() + 1;

  UtxoSet serial_utxo = h.chain.utxo();
  UtxoSet parallel_utxo = h.chain.utxo();
  ChainParams serial_params = h.params;
  serial_params.script_check_threads = 0;
  ChainParams parallel_params = h.params;
  parallel_params.script_check_threads = 4;

  // Flush the caches so both paths genuinely execute every script.
  sig_cache().clear();
  script_exec_cache().clear();
  BlockUndo serial_undo;
  const auto serial = connect_block(block, serial_utxo, height,
                                    serial_params, serial_undo);
  sig_cache().clear();
  script_exec_cache().clear();
  BlockUndo parallel_undo;
  const auto parallel = connect_block(block, parallel_utxo, height,
                                      parallel_params, parallel_undo);

  ASSERT_TRUE(serial.ok()) << block_error_name(serial.error);
  ASSERT_TRUE(parallel.ok()) << block_error_name(parallel.error);
  EXPECT_EQ(serial_utxo.size(), parallel_utxo.size());
  EXPECT_EQ(serial_utxo.total_value(), parallel_utxo.total_value());
  ASSERT_EQ(serial_undo.created.size(), parallel_undo.created.size());
  for (std::size_t i = 0; i < serial_undo.created.size(); ++i)
    EXPECT_EQ(serial_undo.created[i], parallel_undo.created[i]);
  EXPECT_EQ(serial_undo.spent.size(), parallel_undo.spent.size());
}

TEST(Validation, SerialAndParallelAgreeOnBadScript) {
  Harness h;
  Block block = assemble_payment_block(h, 5);
  ASSERT_GT(block.txs.size(), 3u);
  // Corrupt the signature of a mid-block transaction, then re-commit the
  // header so only script validation can reject the block.
  Transaction& victim = block.txs[2];
  ASSERT_FALSE(victim.vin[0].script_sig.empty());
  Bytes corrupted = victim.vin[0].script_sig.bytes();
  corrupted[corrupted.size() / 2] ^= 0x01;
  victim.vin[0].script_sig = script::Script(std::move(corrupted));
  victim.invalidate_txid();
  block.header.merkle_root = compute_merkle_root(block.txs);
  solve_pow(block.header);
  const int height = h.chain.height() + 1;

  const std::size_t utxo_size_before = h.chain.utxo().size();
  const Amount utxo_value_before = h.chain.utxo().total_value();

  for (unsigned threads : {0u, 4u}) {
    UtxoSet utxo = h.chain.utxo();
    ChainParams params = h.params;
    params.script_check_threads = threads;
    sig_cache().clear();
    script_exec_cache().clear();
    BlockUndo undo;
    const auto result = connect_block(block, utxo, height, params, undo);
    EXPECT_EQ(result.error, BlockError::kBadTransaction) << threads;
    EXPECT_EQ(result.failed_tx_index, 2u) << threads;
    EXPECT_EQ(result.tx_failure.error, TxError::kScriptFailed) << threads;
    EXPECT_NE(result.tx_failure.script_error, script::ScriptError::kOk)
        << threads;
    // Failure rolls everything back.
    EXPECT_EQ(utxo.size(), utxo_size_before) << threads;
    EXPECT_EQ(utxo.total_value(), utxo_value_before) << threads;
    EXPECT_TRUE(undo.created.empty()) << threads;
    EXPECT_TRUE(undo.spent.empty()) << threads;
  }

  // Both paths agree on the exact script error too.
  UtxoSet u1 = h.chain.utxo();
  UtxoSet u2 = h.chain.utxo();
  ChainParams p1 = h.params;
  ChainParams p2 = h.params;
  p2.script_check_threads = 4;
  BlockUndo undo1;
  BlockUndo undo2;
  sig_cache().clear();
  script_exec_cache().clear();
  const auto serial = connect_block(block, u1, height, p1, undo1);
  sig_cache().clear();
  script_exec_cache().clear();
  const auto parallel = connect_block(block, u2, height, p2, undo2);
  EXPECT_EQ(serial.tx_failure.script_error, parallel.tx_failure.script_error);
  EXPECT_EQ(serial.tx_failure.fee, parallel.tx_failure.fee);
}

TEST(Validation, ColdConnectAgreesAcrossEcdsaBackends) {
  // A checkqueue-driven cold connect (caches flushed, 4 threads) under each
  // ECDSA backend: the wNAF/Shamir fast paths must accept exactly what the
  // reference ladder accepts and leave identical UTXO state. Under TSan
  // this also exercises the one-time precomputation-table init and the
  // per-worker ecdsa_warmup calls racing across pool threads.
  Harness h;
  const Block block = assemble_payment_block(h, 5);
  const int height = h.chain.height() + 1;

  std::optional<std::size_t> utxo_size;
  std::optional<Amount> utxo_value;
  for (const char* backend : {"reference", "wnaf", "shamir"}) {
    ASSERT_TRUE(crypto::ecdsa_select_backend(backend)) << backend;
    UtxoSet utxo = h.chain.utxo();
    ChainParams params = h.params;
    params.script_check_threads = 4;
    sig_cache().clear();
    script_exec_cache().clear();
    BlockUndo undo;
    const auto result = connect_block(block, utxo, height, params, undo);
    EXPECT_TRUE(result.ok()) << backend << ": " << block_error_name(result.error);
    if (!utxo_size) {
      utxo_size = utxo.size();
      utxo_value = utxo.total_value();
    } else {
      EXPECT_EQ(utxo.size(), *utxo_size) << backend;
      EXPECT_EQ(utxo.total_value(), *utxo_value) << backend;
    }
  }
  ASSERT_TRUE(crypto::ecdsa_select_backend("auto"));
}

TEST(Validation, UndoHandlesIntraBlockSpendChains) {
  // An output created AND spent by a later tx in the same block appears in
  // both undo.created and undo.spent. The trusted-replay and disconnect
  // paths must not resurrect it — a replayed node would otherwise carry
  // extra coins its peers never saw (caught live by the cluster harness:
  // fair-exchange offers redeemed in their own block leaked on restart).
  Harness h;
  h.fund();
  const Wallet alice = Wallet::from_seed("alice");
  const Wallet bob = Wallet::from_seed("bob");
  const auto pay = h.miner_wallet.create_payment(h.chain, &h.pool,
                                                 alice.pkh(), 10 * kCoin,
                                                 1000);
  ASSERT_TRUE(pay.has_value());
  ASSERT_TRUE(h.pool.accept(*pay, h.chain.utxo(), h.chain.height() + 1).ok());
  // Alice spends her unconfirmed credit in the same block.
  const auto chained = alice.create_payment(h.chain, &h.pool, bob.pkh(),
                                            4 * kCoin, 1000);
  ASSERT_TRUE(chained.has_value());
  ASSERT_TRUE(
      h.pool.accept(*chained, h.chain.utxo(), h.chain.height() + 1).ok());

  Block block = h.miner.assemble(h.chain, h.pool, ++h.now);
  solve_pow(block.header);
  ASSERT_GE(block.txs.size(), 3u);  // coinbase + pay + chained

  const UtxoSet before = h.chain.utxo();
  const int height = h.chain.height() + 1;
  UtxoSet validated = before;
  BlockUndo undo;
  ASSERT_TRUE(connect_block(block, validated, height, h.params, undo).ok());
  // Alice's 10-coin output must be gone: it was consumed intra-block.
  const OutPoint alice_out{pay->txid(), 0};
  const bool alice_has_0 =
      validated.get(OutPoint{pay->txid(), 0}).has_value() &&
      validated.get(OutPoint{pay->txid(), 0})->out.value == 10 * kCoin;
  (void)alice_out;
  EXPECT_FALSE(alice_has_0);

  // Trusted replay from the undo record must land on the identical state.
  UtxoSet replayed = before;
  apply_block_from_undo(block, undo, replayed, height);
  EXPECT_EQ(replayed.size(), validated.size());
  EXPECT_EQ(replayed.total_value(), validated.total_value());
  for (const auto& [op, coin] : [&] {
         std::vector<std::pair<OutPoint, Coin>> all;
         replayed.for_each([&](const OutPoint& op, const Coin& c) {
           all.emplace_back(op, c);
         });
         return all;
       }()) {
    const auto v = validated.get(op);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, coin);
  }

  // And disconnecting restores the pre-block state exactly.
  UtxoSet rolled = validated;
  disconnect_block(undo, rolled);
  EXPECT_EQ(rolled.size(), before.size());
  EXPECT_EQ(rolled.total_value(), before.total_value());
}

TEST(Validation, ScriptExecCacheSkipsReExecution) {
  Harness h;
  const Block block = assemble_payment_block(h, 3);
  const int height = h.chain.height() + 1;

  sig_cache().clear();
  script_exec_cache().clear();
  UtxoSet u1 = h.chain.utxo();
  BlockUndo undo1;
  ASSERT_TRUE(connect_block(block, u1, height, h.params, undo1).ok());
  const std::uint64_t misses_first = script_exec_cache().misses();
  EXPECT_GT(misses_first, 0u);

  // Re-connecting the same block (a reorg replay) hits the cache for every
  // transaction and still yields the same state.
  UtxoSet u2 = h.chain.utxo();
  BlockUndo undo2;
  ASSERT_TRUE(connect_block(block, u2, height, h.params, undo2).ok());
  EXPECT_GT(script_exec_cache().hits(), 0u);
  EXPECT_EQ(u1.size(), u2.size());
  EXPECT_EQ(u1.total_value(), u2.total_value());
}

}  // namespace
}  // namespace bcwan::chain

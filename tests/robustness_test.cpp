// Robustness sweeps: every wire-format decoder in the system must reject
// malformed input gracefully (no crash, no exception escaping, no partial
// state) — attackers control gossip payloads, LoRa frames and DELIVER
// messages. Inputs are seeded-random garbage plus truncation/bit-flip
// mutations of valid encodings.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "bcwan/directory.hpp"
#include "bcwan/envelope.hpp"
#include "bcwan/recipient_agent.hpp"
#include "chain/block.hpp"
#include "p2p/network.hpp"
#include "chain/miner.hpp"
#include "chain/transaction.hpp"
#include "chain/validation.hpp"
#include "crypto/base58.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/rsa.hpp"
#include "lora/frame.hpp"
#include "script/script.hpp"
#include "util/rng.hpp"

namespace bcwan {
namespace {

using util::Bytes;
using util::Rng;

/// Random garbage buffers across a spread of sizes.
std::vector<Bytes> garbage_corpus(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<Bytes> corpus;
  corpus.push_back({});
  for (std::size_t i = 0; i < count; ++i) {
    corpus.push_back(rng.bytes(rng.below(300)));
  }
  return corpus;
}

/// Truncations and single-bit flips of a valid encoding.
std::vector<Bytes> mutations(const Bytes& valid, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> out;
  for (std::size_t cut = 0; cut < valid.size();
       cut += 1 + valid.size() / 17) {
    out.emplace_back(valid.begin(), valid.begin() + static_cast<long>(cut));
  }
  for (int i = 0; i < 32 && !valid.empty(); ++i) {
    Bytes flipped = valid;
    flipped[rng.below(flipped.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    out.push_back(std::move(flipped));
  }
  return out;
}

class DecoderRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderRobustness, TransactionDecoder) {
  for (const Bytes& data : garbage_corpus(GetParam(), 60)) {
    const auto result = chain::Transaction::deserialize(data);
    if (result) {
      // Anything accepted must re-serialize canonically.
      EXPECT_EQ(chain::Transaction::deserialize(result->serialize()), result);
    }
  }
}

TEST_P(DecoderRobustness, BlockDecoder) {
  for (const Bytes& data : garbage_corpus(GetParam() + 1, 60)) {
    const auto result = chain::Block::deserialize(data);
    if (result) {
      EXPECT_EQ(chain::Block::deserialize(result->serialize()), result);
    }
  }
}

TEST_P(DecoderRobustness, ScriptDecoderAndDisassembler) {
  for (const Bytes& data : garbage_corpus(GetParam() + 2, 60)) {
    const script::Script s(data);
    const auto decoded = s.decode();      // may be nullopt; must not crash
    const std::string text = s.disassemble();
    EXPECT_FALSE(text.empty() && !data.empty() && decoded.has_value());
  }
}

TEST_P(DecoderRobustness, FrameDecoders) {
  for (const Bytes& data : garbage_corpus(GetParam() + 3, 60)) {
    (void)lora::UplinkRequestFrame::decode(data);
    (void)lora::EphemeralKeyFrame::decode(data);
    (void)lora::UplinkDataFrame::decode(data);
    (void)lora::DataAckFrame::decode(data);
    (void)lora::InnerBlob::decode(data);
    (void)lora::peek_frame_type(data);
  }
}

TEST_P(DecoderRobustness, CryptoAndDirectoryDecoders) {
  for (const Bytes& data : garbage_corpus(GetParam() + 4, 60)) {
    (void)crypto::RsaPublicKey::deserialize(data);
    (void)crypto::RsaPrivateKey::deserialize(data);
    (void)crypto::EcdsaSignature::deserialize(data);
    (void)crypto::ec_pubkey_decode(data);
    (void)core::decode_directory_entry(data);
    (void)core::DeliverPayload::deserialize(data);
    (void)crypto::base58_decode(util::bytes_str(data));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderRobustness,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(MutationRobustness, ValidTransactionMutants) {
  Rng rng(5);
  chain::Transaction tx;
  chain::TxIn in;
  in.prevout.txid[3] = 9;
  in.script_sig = script::Script(rng.bytes(40));
  tx.vin.push_back(in);
  chain::TxOut out;
  out.value = 12345;
  out.script_pubkey = script::make_p2pkh(script::PubKeyHash{});
  tx.vout.push_back(out);
  const Bytes valid = tx.serialize();
  for (const Bytes& mutant : mutations(valid, 6)) {
    const auto result = chain::Transaction::deserialize(mutant);
    if (result) {
      EXPECT_EQ(result->serialize().size(), mutant.size());
    }
  }
}

TEST(MutationRobustness, ValidDeliverPayloadMutants) {
  Rng rng(7);
  core::DeliverPayload payload;
  payload.device_id = 3;
  payload.em = rng.bytes(64);
  payload.sig = rng.bytes(64);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  payload.ephemeral_pub = kp.pub;
  payload.price_quote = 1000;
  const Bytes valid = payload.serialize();
  // The untampered encoding must survive a round trip bit-for-bit — the
  // DELIVER retry path depends on the ACK handle (the serialized ePk)
  // matching across re-encodes.
  const auto round = core::DeliverPayload::deserialize(valid);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->serialize(), valid);
  for (const Bytes& mutant : mutations(valid, 8)) {
    (void)core::DeliverPayload::deserialize(mutant);  // must not crash
  }
}

TEST(MutationRobustness, ValidDirectoryEntryMutants) {
  // The directory parses OP_RETURN payloads straight off gossip: anyone can
  // publish an announcement-shaped transaction, so the decoder faces fully
  // attacker-controlled bytes.
  script::PubKeyHash owner{};
  for (std::size_t i = 0; i < owner.size(); ++i) {
    owner[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const Bytes valid = core::encode_directory_entry(owner, 0x0a000042, 8333);
  const auto round = core::decode_directory_entry(valid);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->owner, owner);
  EXPECT_EQ(round->ip, 0x0a000042u);
  EXPECT_EQ(round->port, 8333);
  for (const Bytes& mutant : mutations(valid, 10)) {
    const auto decoded = core::decode_directory_entry(mutant);
    if (decoded && mutant.size() == valid.size()) {
      // A bit flip may still parse (payload is unauthenticated at this
      // layer) but must re-encode to exactly the mutant bytes: the decoder
      // cannot invent or drop fields.
      EXPECT_EQ(core::encode_directory_entry(decoded->owner, decoded->ip,
                                             decoded->port),
                mutant);
    }
  }
}

TEST(MutationRobustness, ValidDataAckFrameMutants) {
  lora::DataAckFrame ack;
  ack.device_id = 0x0102;
  const Bytes valid = ack.encode();
  const auto round = lora::DataAckFrame::decode(valid);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->device_id, ack.device_id);
  for (const Bytes& mutant : mutations(valid, 13)) {
    (void)lora::DataAckFrame::decode(mutant);  // must not crash
  }
}

TEST(MutationRobustness, ValidBlockMutants) {
  chain::ChainParams params;
  const chain::Block genesis = chain::make_genesis(params);
  const Bytes valid = genesis.serialize();
  for (const Bytes& mutant : mutations(valid, 9)) {
    const auto result = chain::Block::deserialize(mutant);
    if (result && !(*result == genesis)) {
      // The block hash covers only the header; a body mutation must be
      // caught by structural validation (merkle mismatch — or PoW, since
      // the genesis header was never mined against params' difficulty).
      if (result->hash() == genesis.hash()) {
        EXPECT_NE(chain::check_block(*result, params).error,
                  chain::BlockError::kOk);
      }
    }
  }
}

}  // namespace
}  // namespace bcwan

namespace bcwan {

// --- Reclaim rebroadcast-budget exhaustion ---
//
// A reclaim can be knocked out of existence after submission (node crash
// wipes the mempool; a reorg evicts the block it rode in). The recipient's
// revisit loop re-broadcasts it up to max_rebroadcasts times; when the
// budget is spent, the exchange must be *abandoned* — counted in
// exchanges_abandoned() and dropped from pending state — never leaked as a
// forever-pending entry that keeps resubmitting.

namespace {

struct ReclaimTempDir {
  std::filesystem::path path;
  ReclaimTempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "bcwan-reclaim-XXXXXX")
            .string();
    path = ::mkdtemp(tmpl.data());
  }
  ~ReclaimTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

}  // namespace

TEST(ReclaimRobustness, BudgetExhaustedReclaimIsAbandonedNotLeaked) {
  chain::ChainParams params;
  params.pow_zero_bits = 4;
  params.coinbase_maturity = 2;

  ReclaimTempDir dir;
  p2p::EventLoop loop;
  p2p::SimNet net{loop, 7};
  // Persistent daemon: crash()/restart() goes through real disk recovery,
  // so the chain (offer included) survives while the mempool (reclaim
  // included) is wiped — exactly the eviction this test needs.
  p2p::ChainNodeConfig node_config;
  node_config.store_dir = (dir.path / "node").string();
  p2p::ChainNode node(loop, net, net.add_host("recipient"), params,
                      node_config, 100);
  const p2p::HostId gateway_host = net.add_host("gateway");

  chain::Wallet recipient_wallet = chain::Wallet::from_seed("reclaim-buyer");
  chain::Miner miner{params, recipient_wallet.pkh()};
  core::RecipientConfig config;
  config.timeout_blocks = 3;
  config.max_rebroadcasts = 0;  // the budget under test
  core::RecipientAgent recipient(loop, net, node, recipient_wallet,
                                 core::TimingModel{}, config, 7);

  std::uint64_t now = 0;
  const auto mine = [&] {
    const chain::Block block =
        miner.mine(node.chain(), node.mempool(), ++now);
    ASSERT_EQ(node.submit_block(block), chain::AcceptBlockResult::kConnected);
    loop.run();
  };

  // Fund the recipient: block rewards mature after coinbase_maturity.
  for (int i = 0; i < params.coinbase_maturity + 1; ++i) mine();
  ASSERT_GT(recipient_wallet.balance(node.chain()), 0);

  // Hand-craft the DELIVER a gateway would forward (Fig. 3 step 7).
  util::Rng rng(9);
  const core::NodeProvisioning prov =
      core::provision_node(7, recipient_wallet.pkh(), rng);
  recipient.register_device(prov);
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
  core::DeliverPayload payload;
  payload.device_id = prov.device_id;
  const core::Envelope envelope =
      core::seal_reading(prov, util::str_bytes("42"), ephemeral.pub, rng);
  payload.em = envelope.em;
  payload.sig = envelope.sig;
  payload.ephemeral_pub = ephemeral.pub;
  payload.gateway = chain::Wallet::from_seed("reclaim-gateway").pkh();
  payload.price_quote = chain::kCoin / 100;
  recipient.handle_message(
      p2p::Message{"DELIVER", payload.serialize(), gateway_host});
  loop.run_until(loop.now() + util::kSecond);
  ASSERT_EQ(recipient.offers_posted(), 1u);

  // Confirm the offer, then mine past the CLTV height with the gateway
  // silent: the recipient reclaims.
  mine();
  while (recipient.reclaims_submitted() == 0 &&
         node.chain().height() < 10) {
    mine();
  }
  ASSERT_EQ(recipient.reclaims_submitted(), 1u);
  ASSERT_EQ(recipient.pending_exchange_count(), 1u);

  // Crash-stop the daemon: disk recovery restores the chain, the mempool
  // (and the reclaim in it) is gone.
  node.crash();
  ASSERT_TRUE(node.restart());
  ASSERT_FALSE(node.mempool().contains(chain::Hash256{}));  // sanity: empty

  // Next block triggers the revisit sweep. With a zero budget the evicted
  // reclaim cannot be re-broadcast: the exchange is written off — once —
  // and the pending entry is released rather than leaked.
  mine();
  loop.run();
  EXPECT_EQ(recipient.exchanges_abandoned(), 1u);
  EXPECT_EQ(recipient.pending_exchange_count(), 0u);
  EXPECT_EQ(recipient.reclaim_rebroadcasts(), 0u);

  // And the abandonment is terminal: further blocks change nothing.
  mine();
  EXPECT_EQ(recipient.exchanges_abandoned(), 1u);
  EXPECT_EQ(recipient.pending_exchange_count(), 0u);
}

}  // namespace bcwan

// Robustness sweeps: every wire-format decoder in the system must reject
// malformed input gracefully (no crash, no exception escaping, no partial
// state) — attackers control gossip payloads, LoRa frames and DELIVER
// messages. Inputs are seeded-random garbage plus truncation/bit-flip
// mutations of valid encodings.
#include <gtest/gtest.h>

#include "bcwan/directory.hpp"
#include "bcwan/envelope.hpp"
#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "chain/validation.hpp"
#include "crypto/base58.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/rsa.hpp"
#include "lora/frame.hpp"
#include "script/script.hpp"
#include "util/rng.hpp"

namespace bcwan {
namespace {

using util::Bytes;
using util::Rng;

/// Random garbage buffers across a spread of sizes.
std::vector<Bytes> garbage_corpus(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<Bytes> corpus;
  corpus.push_back({});
  for (std::size_t i = 0; i < count; ++i) {
    corpus.push_back(rng.bytes(rng.below(300)));
  }
  return corpus;
}

/// Truncations and single-bit flips of a valid encoding.
std::vector<Bytes> mutations(const Bytes& valid, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> out;
  for (std::size_t cut = 0; cut < valid.size();
       cut += 1 + valid.size() / 17) {
    out.emplace_back(valid.begin(), valid.begin() + static_cast<long>(cut));
  }
  for (int i = 0; i < 32 && !valid.empty(); ++i) {
    Bytes flipped = valid;
    flipped[rng.below(flipped.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    out.push_back(std::move(flipped));
  }
  return out;
}

class DecoderRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderRobustness, TransactionDecoder) {
  for (const Bytes& data : garbage_corpus(GetParam(), 60)) {
    const auto result = chain::Transaction::deserialize(data);
    if (result) {
      // Anything accepted must re-serialize canonically.
      EXPECT_EQ(chain::Transaction::deserialize(result->serialize()), result);
    }
  }
}

TEST_P(DecoderRobustness, BlockDecoder) {
  for (const Bytes& data : garbage_corpus(GetParam() + 1, 60)) {
    const auto result = chain::Block::deserialize(data);
    if (result) {
      EXPECT_EQ(chain::Block::deserialize(result->serialize()), result);
    }
  }
}

TEST_P(DecoderRobustness, ScriptDecoderAndDisassembler) {
  for (const Bytes& data : garbage_corpus(GetParam() + 2, 60)) {
    const script::Script s(data);
    const auto decoded = s.decode();      // may be nullopt; must not crash
    const std::string text = s.disassemble();
    EXPECT_FALSE(text.empty() && !data.empty() && decoded.has_value());
  }
}

TEST_P(DecoderRobustness, FrameDecoders) {
  for (const Bytes& data : garbage_corpus(GetParam() + 3, 60)) {
    (void)lora::UplinkRequestFrame::decode(data);
    (void)lora::EphemeralKeyFrame::decode(data);
    (void)lora::UplinkDataFrame::decode(data);
    (void)lora::DataAckFrame::decode(data);
    (void)lora::InnerBlob::decode(data);
    (void)lora::peek_frame_type(data);
  }
}

TEST_P(DecoderRobustness, CryptoAndDirectoryDecoders) {
  for (const Bytes& data : garbage_corpus(GetParam() + 4, 60)) {
    (void)crypto::RsaPublicKey::deserialize(data);
    (void)crypto::RsaPrivateKey::deserialize(data);
    (void)crypto::EcdsaSignature::deserialize(data);
    (void)crypto::ec_pubkey_decode(data);
    (void)core::decode_directory_entry(data);
    (void)core::DeliverPayload::deserialize(data);
    (void)crypto::base58_decode(util::bytes_str(data));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderRobustness,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(MutationRobustness, ValidTransactionMutants) {
  Rng rng(5);
  chain::Transaction tx;
  chain::TxIn in;
  in.prevout.txid[3] = 9;
  in.script_sig = script::Script(rng.bytes(40));
  tx.vin.push_back(in);
  chain::TxOut out;
  out.value = 12345;
  out.script_pubkey = script::make_p2pkh(script::PubKeyHash{});
  tx.vout.push_back(out);
  const Bytes valid = tx.serialize();
  for (const Bytes& mutant : mutations(valid, 6)) {
    const auto result = chain::Transaction::deserialize(mutant);
    if (result) {
      EXPECT_EQ(result->serialize().size(), mutant.size());
    }
  }
}

TEST(MutationRobustness, ValidDeliverPayloadMutants) {
  Rng rng(7);
  core::DeliverPayload payload;
  payload.device_id = 3;
  payload.em = rng.bytes(64);
  payload.sig = rng.bytes(64);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  payload.ephemeral_pub = kp.pub;
  payload.price_quote = 1000;
  const Bytes valid = payload.serialize();
  // The untampered encoding must survive a round trip bit-for-bit — the
  // DELIVER retry path depends on the ACK handle (the serialized ePk)
  // matching across re-encodes.
  const auto round = core::DeliverPayload::deserialize(valid);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->serialize(), valid);
  for (const Bytes& mutant : mutations(valid, 8)) {
    (void)core::DeliverPayload::deserialize(mutant);  // must not crash
  }
}

TEST(MutationRobustness, ValidDirectoryEntryMutants) {
  // The directory parses OP_RETURN payloads straight off gossip: anyone can
  // publish an announcement-shaped transaction, so the decoder faces fully
  // attacker-controlled bytes.
  script::PubKeyHash owner{};
  for (std::size_t i = 0; i < owner.size(); ++i) {
    owner[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const Bytes valid = core::encode_directory_entry(owner, 0x0a000042, 8333);
  const auto round = core::decode_directory_entry(valid);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->owner, owner);
  EXPECT_EQ(round->ip, 0x0a000042u);
  EXPECT_EQ(round->port, 8333);
  for (const Bytes& mutant : mutations(valid, 10)) {
    const auto decoded = core::decode_directory_entry(mutant);
    if (decoded && mutant.size() == valid.size()) {
      // A bit flip may still parse (payload is unauthenticated at this
      // layer) but must re-encode to exactly the mutant bytes: the decoder
      // cannot invent or drop fields.
      EXPECT_EQ(core::encode_directory_entry(decoded->owner, decoded->ip,
                                             decoded->port),
                mutant);
    }
  }
}

TEST(MutationRobustness, ValidDataAckFrameMutants) {
  lora::DataAckFrame ack;
  ack.device_id = 0x0102;
  const Bytes valid = ack.encode();
  const auto round = lora::DataAckFrame::decode(valid);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->device_id, ack.device_id);
  for (const Bytes& mutant : mutations(valid, 13)) {
    (void)lora::DataAckFrame::decode(mutant);  // must not crash
  }
}

TEST(MutationRobustness, ValidBlockMutants) {
  chain::ChainParams params;
  const chain::Block genesis = chain::make_genesis(params);
  const Bytes valid = genesis.serialize();
  for (const Bytes& mutant : mutations(valid, 9)) {
    const auto result = chain::Block::deserialize(mutant);
    if (result && !(*result == genesis)) {
      // The block hash covers only the header; a body mutation must be
      // caught by structural validation (merkle mismatch — or PoW, since
      // the genesis header was never mined against params' difficulty).
      if (result->hash() == genesis.hash()) {
        EXPECT_NE(chain::check_block(*result, params).error,
                  chain::BlockError::kOk);
      }
    }
  }
}

}  // namespace
}  // namespace bcwan

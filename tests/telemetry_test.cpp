// Telemetry subsystem tests: concurrent metric mutation (exercised under
// TSan in CI), registry identity, exporter round-trips, span nesting, and
// the disabled-path no-op contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exporters.hpp"
#include "telemetry/flusher.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

#ifdef BCWAN_TELEMETRY_DISABLED

TEST(Telemetry, CompiledOut) {
  GTEST_SKIP() << "telemetry compiled out (BCWAN_TELEMETRY=OFF)";
}

#else

namespace {

using namespace bcwan::telemetry;

/// Minimal recursive-descent JSON syntax checker — enough to prove the
/// exporter emits a well-formed document without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override { set_enabled(false); }
};

}  // namespace

TEST_F(TelemetryTest, RegistryIdentity) {
  Counter& a = registry().counter("bcwan_test_identity_total");
  Counter& b = registry().counter("bcwan_test_identity_total");
  EXPECT_EQ(&a, &b);
  // Different label value: different instance; same label: same instance.
  Counter& l1 = registry().counter("bcwan_test_labeled_total", "k", "v1");
  Counter& l2 = registry().counter("bcwan_test_labeled_total", "k", "v2");
  Counter& l3 = registry().counter("bcwan_test_labeled_total", "k", "v1");
  EXPECT_NE(&l1, &l2);
  EXPECT_EQ(&l1, &l3);
}

TEST_F(TelemetryTest, CounterConcurrentAdds) {
  Counter& counter = registry().counter("bcwan_test_concurrent_total");
  counter.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST_F(TelemetryTest, GaugeConcurrentAddsSum) {
  Gauge& gauge = registry().gauge("bcwan_test_gauge");
  gauge.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
  gauge.set(3.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
}

TEST_F(TelemetryTest, HistogramConcurrentObserves) {
  Histogram& hist =
      registry().histogram("bcwan_test_concurrent_hist_seconds");
  hist.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.observe(1e-4 * (1 + ((t * kPerThread + i) % 100)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < hist.bucket_count(); ++i)
    bucket_total += hist.bucket(i);
  EXPECT_EQ(bucket_total, hist.count());
}

TEST_F(TelemetryTest, HistogramQuantiles) {
  Histogram& hist = registry().histogram("bcwan_test_quantile_seconds");
  hist.reset();
  for (int i = 1; i <= 1000; ++i) hist.observe(i * 1e-3);  // 1ms .. 1s
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_NEAR(hist.sum(), 500.5, 1e-6);
  EXPECT_DOUBLE_EQ(hist.observed_min(), 1e-3);
  EXPECT_DOUBLE_EQ(hist.observed_max(), 1.0);
  // Monotone in q, clamped to the observed range, and roughly correct
  // (log-bucketing at factor sqrt(2) gives ~±20% worst case per bucket).
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = hist.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, hist.observed_min());
    EXPECT_LE(v, hist.observed_max());
    prev = v;
  }
  EXPECT_NEAR(hist.quantile(0.5), 0.5, 0.15);
  // Empty histogram: quantile is 0.
  Histogram& empty = registry().histogram("bcwan_test_empty_seconds");
  empty.reset();
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST_F(TelemetryTest, DisabledMutationsAreNoOps) {
  Counter& counter = registry().counter("bcwan_test_disabled_total");
  Histogram& hist = registry().histogram("bcwan_test_disabled_seconds");
  Gauge& gauge = registry().gauge("bcwan_test_disabled_gauge");
  counter.reset();
  hist.reset();
  gauge.reset();
  set_enabled(false);
  counter.add(42);
  hist.observe(1.0);
  gauge.set(7.0);
  gauge.add(1.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  set_enabled(true);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
}

TEST_F(TelemetryTest, SpanNestingAndHistogram) {
  clear_spans();
  Histogram& hist = registry().histogram("bcwan_test_span_seconds");
  hist.reset();
  {
    Span outer("test.outer", &hist);
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(outer.depth(), 0u);
    {
      Span inner("test.inner");
      EXPECT_EQ(inner.depth(), 1u);
    }
  }
  EXPECT_EQ(hist.count(), 1u);
  const auto spans = recent_spans();
  ASSERT_GE(spans.size(), 2u);
  // Inner completes first; records are oldest-first.
  const SpanRecord& inner = spans[spans.size() - 2];
  const SpanRecord& outer = spans[spans.size() - 1];
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_EQ(inner.parent, "test.outer");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_EQ(outer.parent, "");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_GE(outer.duration_ns, inner.duration_ns);
}

TEST_F(TelemetryTest, SpansDisabledRecordNothing) {
  clear_spans();
  set_enabled(false);
  {
    Span span("test.disabled");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(recent_spans().empty());
}

TEST_F(TelemetryTest, PrometheusRoundTrip) {
  registry().counter("bcwan_test_prom_total", "help with \"quotes\"").add(3);
  registry().gauge("bcwan_test_prom_gauge", "g", "a\\b", "escaped label");
  registry()
      .histogram("bcwan_test_prom_seconds")
      .observe(0.25);
  const std::string text = render_prometheus();
  const auto error = validate_prometheus(text);
  EXPECT_FALSE(error.has_value()) << *error;

  // Every registered family appears in the exposition.
  std::size_t families = 0;
  registry().visit([&](const MetricEntry& entry) {
    ++families;
    EXPECT_NE(text.find(entry.family), std::string::npos) << entry.family;
  });
  EXPECT_GT(families, 0u);

  // Histogram series: cumulative buckets, +Inf, _sum and _count present.
  EXPECT_NE(text.find("bcwan_test_prom_seconds_bucket{le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(text.find("bcwan_test_prom_seconds_sum "), std::string::npos);
  EXPECT_NE(text.find("bcwan_test_prom_seconds_count 1"), std::string::npos);
}

TEST_F(TelemetryTest, PrometheusValidatorCatchesMalformed) {
  // Well-formed baseline.
  EXPECT_FALSE(validate_prometheus("metric_a 1\n").has_value());
  EXPECT_FALSE(
      validate_prometheus("m{k=\"v\"} 2.5 1700000000\n").has_value());
  EXPECT_FALSE(validate_prometheus("m +Inf\n").has_value());
  // Malformed documents must be rejected.
  EXPECT_TRUE(validate_prometheus("1badname 1\n").has_value());
  EXPECT_TRUE(validate_prometheus("m{k=unquoted} 1\n").has_value());
  EXPECT_TRUE(validate_prometheus("m{k=\"v\" 1\n").has_value());
  EXPECT_TRUE(validate_prometheus("m notanumber\n").has_value());
  EXPECT_TRUE(validate_prometheus("m\n").has_value());
  EXPECT_TRUE(validate_prometheus("# TYPE m bogustype\n").has_value());
  EXPECT_TRUE(validate_prometheus("# HELP 1badname text\n").has_value());
  EXPECT_TRUE(validate_prometheus("m 1 notatimestamp\n").has_value());
  // Free-form comments are legal Prometheus; only HELP/TYPE are strict.
  EXPECT_FALSE(validate_prometheus("# just a comment\n").has_value());
}

TEST_F(TelemetryTest, JsonSnapshotParsesAndCoversRegistry) {
  registry().counter("bcwan_test_json_total").add(7);
  registry().histogram("bcwan_test_json_seconds").observe(0.125);
  const std::string json = render_json(registry(), /*include_spans=*/true);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("bcwan_test_json_total"), std::string::npos);
  EXPECT_NE(json.find("bcwan_test_json_seconds"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST_F(TelemetryTest, CollectorsRunAtExport) {
  std::atomic<int> runs{0};
  const std::uint64_t id = registry().add_collector([&runs] {
    ++runs;
    registry().gauge("bcwan_test_collected").set(11.0);
  });
  const std::string text = render_prometheus();
  EXPECT_GE(runs.load(), 1);
  EXPECT_NE(text.find("bcwan_test_collected 11"), std::string::npos);
  registry().remove_collector(id);
  const int before = runs.load();
  (void)render_prometheus();
  EXPECT_EQ(runs.load(), before);
}

TEST_F(TelemetryTest, FlusherWritesSnapshots) {
  registry().counter("bcwan_test_flusher_total").add(1);
  Flusher::Options options;
  options.interval = std::chrono::milliseconds(10000);  // rely on flush_now
  options.json_path = "telemetry_test_flush.json";
  options.prom_path = "telemetry_test_flush.prom";
  {
    Flusher flusher(options);
    flusher.flush_now();
    EXPECT_GE(flusher.flushes(), 1u);
  }  // dtor: final flush + join
  for (const char* path :
       {"telemetry_test_flush.json", "telemetry_test_flush.prom"}) {
    std::FILE* f = std::fopen(path, "r");
    ASSERT_NE(f, nullptr) << path;
    std::fclose(f);
    std::remove(path);
  }
}

TEST_F(TelemetryTest, ResetAllZeroesValuesKeepsRegistrations) {
  Counter& counter = registry().counter("bcwan_test_reset_total");
  counter.add(5);
  const std::size_t size_before = registry().size();
  registry().reset_all();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(registry().size(), size_before);
  EXPECT_EQ(&registry().counter("bcwan_test_reset_total"), &counter);
}

#endif  // BCWAN_TELEMETRY_DISABLED

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"
#include "util/stats.hpp"
#include "util/threadpool.hpp"
#include "util/time.hpp"

namespace bcwan::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_FALSE(from_hex("abc"));   // odd length
  EXPECT_FALSE(from_hex("zz"));    // bad chars
  EXPECT_THROW(from_hex_strict("0g"), std::invalid_argument);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = {};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, ByteView(a.data(), 2)));
}

TEST(Bytes, StringConversion) {
  EXPECT_EQ(bytes_str(str_bytes("hello")), "hello");
}

TEST(Serial, IntegersLittleEndian) {
  Writer w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0fULL);
  EXPECT_EQ(to_hex(w.data()), "010302070605040f0e0d0c0b0a0908");

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_EQ(r.u32(), 0x04050607u);
  EXPECT_EQ(r.u64(), 0x08090a0b0c0d0e0fULL);
  EXPECT_TRUE(r.done());
}

TEST(Serial, VarintBoundaries) {
  for (std::uint64_t v : {0ULL, 1ULL, 0xfcULL, 0xfdULL, 0xffffULL, 0x10000ULL,
                          0xffffffffULL, 0x100000000ULL,
                          0xffffffffffffffffULL}) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Serial, VarintRejectsNonCanonical) {
  // 0xfd 0x01 0x00 encodes 1 non-canonically.
  const Bytes bad = {0xfd, 0x01, 0x00};
  Reader r(bad);
  EXPECT_THROW(r.varint(), DeserializeError);
}

TEST(Serial, VarBytesRoundTrip) {
  Writer w;
  w.var_bytes(str_bytes("payload"));
  Reader r(w.data());
  EXPECT_EQ(r.var_bytes(), str_bytes("payload"));
}

TEST(Serial, TruncationThrows) {
  const Bytes short_buf = {0x01};
  Reader r(short_buf);
  EXPECT_THROW(r.u32(), DeserializeError);
}

TEST(Serial, LengthPrefixBeyondInputThrows) {
  Writer w;
  w.varint(100);
  w.u8(0);
  Reader r(w.data());
  EXPECT_THROW(r.var_bytes(), DeserializeError);
}

TEST(Serial, ExpectDone) {
  const Bytes buf = {0x01, 0x02};
  Reader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), DeserializeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(a.bytes(33), b.bytes(33));
  EXPECT_EQ(a.bytes(0).size(), 0u);
}

TEST(Stats, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, HistogramCountsAll) {
  SampleStats s;
  for (int i = 0; i < 10; ++i) s.add(i + 0.5);
  const std::string h = s.histogram(0, 10, 5);
  EXPECT_NE(h.find('#'), std::string::npos);
}

TEST(Time, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 3600 * kSecond);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hit(kTasks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i)
    tasks.push_back([&hit, i] { hit[i].fetch_add(1); });
  pool.run(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hit[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int sum = 0;
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) tasks.push_back([&sum, i] { sum += i; });
  pool.run(std::move(tasks));
  EXPECT_EQ(sum, 55);
}

TEST(ThreadPool, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i)
      tasks.push_back([&counter] { counter.fetch_add(1); });
    pool.run(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 20 * 16);
}

TEST(ThreadPool, UnevenTaskDurationsStillComplete) {
  // Work stealing: front-load one queue with slow tasks; idle workers must
  // steal them rather than wait.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&total, i] {
      long local = 0;
      const int spin = (i % 8 == 0) ? 20000 : 10;
      for (int k = 0; k < spin; ++k) local += k;
      total.fetch_add(local + 1);
    });
  }
  pool.run(std::move(tasks));
  EXPECT_GE(total.load(), 64);
}

TEST(ThreadPool, SharedPoolRebuildsOnSizeChange) {
  ThreadPool& a = ThreadPool::shared(2);
  EXPECT_EQ(a.worker_count(), 2u);
  ThreadPool& b = ThreadPool::shared(3);
  EXPECT_EQ(b.worker_count(), 3u);
  std::atomic<int> n{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back([&n] { n.fetch_add(1); });
  ThreadPool::shared(3).run(std::move(tasks));
  EXPECT_EQ(n.load(), 8);
}

}  // namespace
}  // namespace bcwan::util

#include <gtest/gtest.h>

#include "crypto/rsa.hpp"
#include "script/interpreter.hpp"
#include "script/script.hpp"
#include "script/templates.hpp"
#include "util/rng.hpp"

namespace bcwan::script {
namespace {

using util::Bytes;
using util::Rng;
using util::str_bytes;

// A checker with programmable behaviour for unit-testing opcodes in
// isolation from the chain module.
class FakeChecker : public SignatureChecker {
 public:
  bool sig_valid = true;
  std::int64_t locktime = 0;
  bool sequence_final = false;
  mutable Bytes last_sig, last_pubkey;

  bool check_sig(util::ByteView sig, util::ByteView pubkey) const override {
    last_sig.assign(sig.begin(), sig.end());
    last_pubkey.assign(pubkey.begin(), pubkey.end());
    return sig_valid;
  }
  std::int64_t tx_locktime() const override { return locktime; }
  bool input_sequence_final() const override { return sequence_final; }
};

ExecResult run(const Script& s, const SignatureChecker& checker) {
  return eval_script(s, {}, checker);
}

// --- ScriptNum ---

TEST(ScriptNum, EncodeKnownValues) {
  EXPECT_TRUE(scriptnum_encode(0).empty());
  EXPECT_EQ(scriptnum_encode(1), (Bytes{0x01}));
  EXPECT_EQ(scriptnum_encode(127), (Bytes{0x7f}));
  EXPECT_EQ(scriptnum_encode(128), (Bytes{0x80, 0x00}));
  EXPECT_EQ(scriptnum_encode(255), (Bytes{0xff, 0x00}));
  EXPECT_EQ(scriptnum_encode(256), (Bytes{0x00, 0x01}));
  EXPECT_EQ(scriptnum_encode(-1), (Bytes{0x81}));
  EXPECT_EQ(scriptnum_encode(-127), (Bytes{0xff}));
  EXPECT_EQ(scriptnum_encode(-128), (Bytes{0x80, 0x80}));
}

TEST(ScriptNum, RoundTrip) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 16LL, 17LL, 127LL, 128LL, 255LL,
                         256LL, 1000LL, -1000LL, 100000LL, 2147483647LL}) {
    EXPECT_EQ(scriptnum_decode(scriptnum_encode(v), 5), v) << v;
  }
}

TEST(ScriptNum, RejectsNonMinimal) {
  EXPECT_FALSE(scriptnum_decode(Bytes{0x01, 0x00}, 4).has_value());
  EXPECT_FALSE(scriptnum_decode(Bytes{0x00}, 4).has_value());
  // 0x80 0x00 would decode to 128 and IS minimal.
  EXPECT_TRUE(scriptnum_decode(Bytes{0x80, 0x00}, 4).has_value());
}

TEST(ScriptNum, RejectsOversized) {
  EXPECT_FALSE(scriptnum_decode(Bytes{1, 2, 3, 4, 5}, 4).has_value());
  EXPECT_TRUE(scriptnum_decode(Bytes{1, 2, 3, 4, 5}, 5).has_value());
}

// --- Script container ---

TEST(Script, PushEncodings) {
  Script s;
  s.push(Bytes{});             // OP_0
  s.push(Bytes(1, 0xaa));      // direct
  s.push(Bytes(75, 0xbb));     // max direct
  s.push(Bytes(76, 0xcc));     // PUSHDATA1
  s.push(Bytes(300, 0xdd));    // PUSHDATA2
  const auto decoded = s.decode();
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 5u);
  EXPECT_TRUE((*decoded)[0].push.empty());
  EXPECT_EQ((*decoded)[1].push.size(), 1u);
  EXPECT_EQ((*decoded)[2].push.size(), 75u);
  EXPECT_EQ((*decoded)[3].push.size(), 76u);
  EXPECT_EQ((*decoded)[4].push.size(), 300u);
}

TEST(Script, PushTooLargeThrows) {
  Script s;
  EXPECT_THROW(s.push(Bytes(kMaxElementSize + 1, 0)), std::invalid_argument);
}

TEST(Script, DecodeRejectsTruncatedPush) {
  Script s(Bytes{0x05, 0x01, 0x02});  // declares 5 bytes, has 2
  EXPECT_FALSE(s.decode().has_value());
}

TEST(Script, IsPushOnly) {
  Script pushes;
  pushes.push(str_bytes("a")).push_int(5).push_int(0);
  EXPECT_TRUE(pushes.is_push_only());

  Script with_op;
  with_op.push(str_bytes("a")).op(Opcode::OP_DUP);
  EXPECT_FALSE(with_op.is_push_only());
}

TEST(Script, Disassemble) {
  PubKeyHash h{};
  const Script s = make_p2pkh(h);
  const std::string text = s.disassemble();
  EXPECT_NE(text.find("OP_DUP"), std::string::npos);
  EXPECT_NE(text.find("OP_HASH160"), std::string::npos);
  EXPECT_NE(text.find("OP_CHECKSIG"), std::string::npos);
}

// --- Interpreter basics ---

TEST(Interpreter, TruthinessRules) {
  EXPECT_FALSE(cast_to_bool(Bytes{}));
  EXPECT_FALSE(cast_to_bool(Bytes{0x00}));
  EXPECT_FALSE(cast_to_bool(Bytes{0x00, 0x00}));
  EXPECT_FALSE(cast_to_bool(Bytes{0x80}));        // negative zero
  EXPECT_FALSE(cast_to_bool(Bytes{0x00, 0x80}));  // negative zero, 2 bytes
  EXPECT_TRUE(cast_to_bool(Bytes{0x01}));
  EXPECT_TRUE(cast_to_bool(Bytes{0x80, 0x00}));   // 128 is true
}

TEST(Interpreter, DupEqual) {
  FakeChecker checker;
  Script s;
  s.push(str_bytes("x")).op(Opcode::OP_DUP).op(Opcode::OP_EQUAL);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cast_to_bool(r.stack.back()));
}

TEST(Interpreter, Arithmetic) {
  FakeChecker checker;
  Script s;
  s.push_int(2).push_int(3).op(Opcode::OP_ADD).push_int(5)
      .op(Opcode::OP_NUMEQUAL);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cast_to_bool(r.stack.back()));
}

TEST(Interpreter, StackOps) {
  FakeChecker checker;
  Script s;
  s.push_int(1).push_int(2).op(Opcode::OP_SWAP).op(Opcode::OP_DROP);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.stack.size(), 1u);
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 2);
}

TEST(Interpreter, UnderflowDetected) {
  FakeChecker checker;
  Script s;
  s.op(Opcode::OP_DUP);
  EXPECT_EQ(run(s, checker).error, ScriptError::kStackUnderflow);
}

TEST(Interpreter, IfElseTakesCorrectBranch) {
  FakeChecker checker;
  for (const bool cond : {true, false}) {
    Script s;
    s.push_int(cond ? 1 : 0)
        .op(Opcode::OP_IF)
        .push_int(100)
        .op(Opcode::OP_ELSE)
        .push_int(200)
        .op(Opcode::OP_ENDIF);
    const auto r = run(s, checker);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(scriptnum_decode(r.stack.back()), cond ? 100 : 200);
  }
}

TEST(Interpreter, NestedConditionals) {
  FakeChecker checker;
  Script s;
  s.push_int(1)
      .op(Opcode::OP_IF)
      .push_int(0)
      .op(Opcode::OP_IF)
      .push_int(1)
      .op(Opcode::OP_ELSE)
      .push_int(42)
      .op(Opcode::OP_ENDIF)
      .op(Opcode::OP_ENDIF);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 42);
}

TEST(Interpreter, UnbalancedConditionalFails) {
  FakeChecker checker;
  Script s;
  s.push_int(1).op(Opcode::OP_IF);
  EXPECT_EQ(run(s, checker).error, ScriptError::kUnbalancedConditional);

  Script s2;
  s2.op(Opcode::OP_ENDIF);
  EXPECT_EQ(run(s2, checker).error, ScriptError::kUnbalancedConditional);
}

TEST(Interpreter, OpReturnAborts) {
  FakeChecker checker;
  Script s = make_op_return(str_bytes("directory payload"));
  EXPECT_EQ(run(s, checker).error, ScriptError::kOpReturn);
}

TEST(Interpreter, SkippedBranchDoesNotExecute) {
  FakeChecker checker;
  // OP_RETURN inside a non-taken branch must not abort.
  Script s;
  s.push_int(0)
      .op(Opcode::OP_IF)
      .op(Opcode::OP_RETURN)
      .op(Opcode::OP_ENDIF)
      .push_int(1);
  const auto r = run(s, checker);
  EXPECT_TRUE(r.ok());
}

TEST(Interpreter, BadOpcodeFails) {
  FakeChecker checker;
  Script s(Bytes{0xfe});
  EXPECT_EQ(run(s, checker).error, ScriptError::kBadOpcode);
}

TEST(Interpreter, OpCountLimit) {
  FakeChecker checker;
  Script s;
  s.push_int(1);
  for (std::size_t i = 0; i < kMaxOpsPerScript + 1; ++i) s.op(Opcode::OP_DUP);
  EXPECT_EQ(run(s, checker).error, ScriptError::kOpCount);
}

TEST(Interpreter, HashOpcodes) {
  FakeChecker checker;
  Script s;
  s.push(str_bytes("abc")).op(Opcode::OP_SHA256);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(util::to_hex(r.stack.back()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Interpreter, ChecksigDelegatesToChecker) {
  FakeChecker checker;
  checker.sig_valid = true;
  Script s;
  s.push(str_bytes("SIG")).push(str_bytes("PUB")).op(Opcode::OP_CHECKSIG);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cast_to_bool(r.stack.back()));
  EXPECT_EQ(checker.last_sig, str_bytes("SIG"));
  EXPECT_EQ(checker.last_pubkey, str_bytes("PUB"));

  checker.sig_valid = false;
  const auto r2 = run(s, checker);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(cast_to_bool(r2.stack.back()));
}

TEST(Interpreter, AltStackRoundTrip) {
  FakeChecker checker;
  Script s;
  s.push_int(7)
      .op(Opcode::OP_TOALTSTACK)
      .push_int(1)
      .op(Opcode::OP_FROMALTSTACK);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.stack.size(), 2u);
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 7);
}

TEST(Interpreter, FromEmptyAltStackUnderflows) {
  FakeChecker checker;
  Script s;
  s.op(Opcode::OP_FROMALTSTACK);
  EXPECT_EQ(run(s, checker).error, ScriptError::kStackUnderflow);
}

TEST(Interpreter, StackSizeLimit) {
  FakeChecker checker;
  // DUP beyond the 1000-element cap must fail. Raw data pushes don't count
  // against the 201-operator budget (OP_1..OP_16 would), so build the base
  // stack from explicit byte pushes and overflow it with <200 DUPs.
  Script s;
  for (int i = 0; i < 900; ++i) s.push(Bytes{0x2a});
  for (int i = 0; i < 150; ++i) s.op(Opcode::OP_DUP);
  EXPECT_EQ(run(s, checker).error, ScriptError::kStackOverflow);
}

TEST(Interpreter, MinMaxWithin) {
  FakeChecker checker;
  Script s;
  s.push_int(3).push_int(5).op(Opcode::OP_MIN);
  auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 3);

  Script s2;
  s2.push_int(4).push_int(2).push_int(8).op(Opcode::OP_WITHIN);
  r = run(s2, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cast_to_bool(r.stack.back()));

  Script s3;
  s3.push_int(8).push_int(2).push_int(8).op(Opcode::OP_WITHIN);  // hi exclusive
  r = run(s3, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(cast_to_bool(r.stack.back()));
}

TEST(Interpreter, SizeNipOverRot) {
  FakeChecker checker;
  Script s;
  s.push(str_bytes("abcd")).op(Opcode::OP_SIZE);
  auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 4);

  Script s2;
  s2.push_int(1).push_int(2).push_int(3).op(Opcode::OP_ROT);
  r = run(s2, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 1);  // 1 rotated to top

  Script s3;
  s3.push_int(1).push_int(2).op(Opcode::OP_NIP);
  r = run(s3, checker);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.stack.size(), 1u);
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 2);

  Script s4;
  s4.push_int(1).push_int(2).op(Opcode::OP_OVER);
  r = run(s4, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(scriptnum_decode(r.stack.back()), 1);
}

TEST(Interpreter, NumericOpcodesRejectOversizedOperands) {
  FakeChecker checker;
  Script s;
  s.push(Bytes(5, 0x01)).push_int(1).op(Opcode::OP_ADD);
  EXPECT_EQ(run(s, checker).error, ScriptError::kBadNumber);
}

// --- OP_CHECKLOCKTIMEVERIFY ---

TEST(Cltv, SatisfiedWhenTxLocktimeReached) {
  FakeChecker checker;
  checker.locktime = 150;
  checker.sequence_final = false;
  Script s;
  s.push_int(100).op(Opcode::OP_CHECKLOCKTIMEVERIFY);
  const auto r = run(s, checker);
  EXPECT_TRUE(r.ok());
  // CLTV peeks; the operand stays on the stack.
  EXPECT_EQ(r.stack.size(), 1u);
}

TEST(Cltv, FailsWhenTxLocktimeTooLow) {
  FakeChecker checker;
  checker.locktime = 99;
  Script s;
  s.push_int(100).op(Opcode::OP_CHECKLOCKTIMEVERIFY);
  EXPECT_EQ(run(s, checker).error, ScriptError::kUnsatisfiedLocktime);
}

TEST(Cltv, FailsOnFinalSequence) {
  FakeChecker checker;
  checker.locktime = 150;
  checker.sequence_final = true;
  Script s;
  s.push_int(100).op(Opcode::OP_CHECKLOCKTIMEVERIFY);
  EXPECT_EQ(run(s, checker).error, ScriptError::kUnsatisfiedLocktime);
}

TEST(Cltv, RejectsNegativeLocktime) {
  FakeChecker checker;
  Script s;
  s.push_int(-5).op(Opcode::OP_CHECKLOCKTIMEVERIFY);
  EXPECT_EQ(run(s, checker).error, ScriptError::kNegativeLocktime);
}

// --- OP_CHECKRSA512PAIR + Listing 1 ---

class KeyReleaseFixture : public ::testing::Test {
 protected:
  static const crypto::RsaKeyPair& ephemeral() {
    static const crypto::RsaKeyPair kp = [] {
      Rng rng(500);
      return crypto::rsa_generate(rng, 512);
    }();
    return kp;
  }
  static const crypto::RsaKeyPair& other() {
    static const crypto::RsaKeyPair kp = [] {
      Rng rng(501);
      return crypto::rsa_generate(rng, 512);
    }();
    return kp;
  }
};

TEST_F(KeyReleaseFixture, PairCheckTrueOnMatch) {
  FakeChecker checker;
  Script s;
  s.push(ephemeral().priv.serialize())
      .push(ephemeral().pub.serialize())
      .op(Opcode::OP_CHECKRSA512PAIR);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cast_to_bool(r.stack.back()));
}

TEST_F(KeyReleaseFixture, PairCheckFalseOnMismatch) {
  FakeChecker checker;
  Script s;
  s.push(other().priv.serialize())
      .push(ephemeral().pub.serialize())
      .op(Opcode::OP_CHECKRSA512PAIR);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(cast_to_bool(r.stack.back()));
}

TEST_F(KeyReleaseFixture, PairCheckFalseOnGarbage) {
  FakeChecker checker;
  Script s;
  s.push(Bytes{0x00}).push(ephemeral().pub.serialize())
      .op(Opcode::OP_CHECKRSA512PAIR);
  const auto r = run(s, checker);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(cast_to_bool(r.stack.back()));
}

TEST_F(KeyReleaseFixture, GatewayRedeemPathSucceeds) {
  FakeChecker checker;
  checker.sig_valid = true;
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  const Script sig_script = make_key_release_redeem(
      str_bytes("sig"), str_bytes("gateway-pub"), ephemeral().priv);
  const auto r = verify_spend(sig_script, pubkey_script, checker);
  EXPECT_TRUE(r.ok()) << script_error_name(r.error);
}

TEST_F(KeyReleaseFixture, RedeemWithWrongKeyFallsToTimeoutBranchAndFails) {
  FakeChecker checker;
  checker.sig_valid = true;
  checker.locktime = 0;  // timeout not reached
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  // Wrong ephemeral key -> OP_CHECKRSA512PAIR false -> ELSE branch -> CLTV
  // unsatisfied.
  const Script sig_script = make_key_release_redeem(
      str_bytes("sig"), str_bytes("gateway-pub"), other().priv);
  const auto r = verify_spend(sig_script, pubkey_script, checker);
  EXPECT_EQ(r.error, ScriptError::kUnsatisfiedLocktime);
}

TEST_F(KeyReleaseFixture, RedeemWithBitFlippedKeyBytesFails) {
  // A garbling gateway reveals a serialized eSk with one bit flipped: the
  // bytes either fail to deserialize or decode to a key that cannot invert
  // ePk — both land OP_CHECKRSA512PAIR on false and die on the CLTV branch.
  FakeChecker checker;
  checker.sig_valid = true;
  checker.locktime = 0;
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  const Bytes serialized = ephemeral().priv.serialize();
  Rng rng(502);
  for (int i = 0; i < 16; ++i) {
    Bytes garbled = serialized;
    garbled[rng.below(garbled.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    if (garbled == serialized) continue;
    Script sig_script;
    sig_script.push(str_bytes("sig")).push(str_bytes("gateway-pub"))
        .push(garbled);
    const auto r = verify_spend(sig_script, pubkey_script, checker);
    EXPECT_EQ(r.error, ScriptError::kUnsatisfiedLocktime)
        << "flipped byte slipped past the pair check (iteration " << i << ")";
  }
}

TEST_F(KeyReleaseFixture, RedeemWithTruncatedKeyFails) {
  FakeChecker checker;
  checker.sig_valid = true;
  checker.locktime = 0;
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  const Bytes serialized = ephemeral().priv.serialize();
  // Every proper prefix — including empty — must fail closed, never crash.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, serialized.size() / 2,
        serialized.size() - 1}) {
    Script sig_script;
    sig_script.push(str_bytes("sig")).push(str_bytes("gateway-pub"))
        .push(Bytes(serialized.begin(),
                    serialized.begin() + static_cast<long>(cut)));
    const auto r = verify_spend(sig_script, pubkey_script, checker);
    EXPECT_EQ(r.error, ScriptError::kUnsatisfiedLocktime)
        << "truncation to " << cut << " bytes slipped past the pair check";
  }
}

TEST_F(KeyReleaseFixture, RedeemWithMismatchedPairFails) {
  // A well-formed RSA-512 private key from a *different* pair: structurally
  // valid, semantically wrong. Exactly the decoy a garbling gateway mints.
  FakeChecker checker;
  checker.sig_valid = true;
  checker.locktime = 0;
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  const Script sig_script = make_key_release_redeem(
      str_bytes("sig"), str_bytes("gateway-pub"), other().priv);
  const auto r = verify_spend(sig_script, pubkey_script, checker);
  EXPECT_EQ(r.error, ScriptError::kUnsatisfiedLocktime);
  // And even once the timeout passes, the pair check still refuses the
  // gateway branch: a locktime-satisfied spend with a wrong key only works
  // as a *buyer* reclaim, never as a gateway redeem with the thief's hash.
  checker.locktime = 200;
  checker.sequence_final = false;
  const auto late = verify_spend(sig_script, pubkey_script, checker);
  EXPECT_EQ(late.error, ScriptError::kVerifyFailed);
}

TEST_F(KeyReleaseFixture, RedeemWithWrongGatewayIdentityFails) {
  FakeChecker checker;
  checker.sig_valid = true;
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  // Correct eSk but a thief's pubkey: HASH160 mismatch.
  const Script sig_script = make_key_release_redeem(
      str_bytes("sig"), str_bytes("thief-pub"), ephemeral().priv);
  const auto r = verify_spend(sig_script, pubkey_script, checker);
  EXPECT_EQ(r.error, ScriptError::kVerifyFailed);
}

TEST_F(KeyReleaseFixture, BuyerReclaimAfterTimeout) {
  FakeChecker checker;
  checker.sig_valid = true;
  checker.locktime = 200;  // reclaim tx sets nLockTime to the timeout height
  checker.sequence_final = false;
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  const Script sig_script =
      make_key_release_reclaim(str_bytes("sig"), str_bytes("buyer-pub"));
  const auto r = verify_spend(sig_script, pubkey_script, checker);
  EXPECT_TRUE(r.ok()) << script_error_name(r.error);
}

TEST_F(KeyReleaseFixture, BuyerReclaimBeforeTimeoutFails) {
  FakeChecker checker;
  checker.sig_valid = true;
  checker.locktime = 150;  // before the 200 timeout
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  const Script sig_script =
      make_key_release_reclaim(str_bytes("sig"), str_bytes("buyer-pub"));
  const auto r = verify_spend(sig_script, pubkey_script, checker);
  EXPECT_EQ(r.error, ScriptError::kUnsatisfiedLocktime);
}

TEST_F(KeyReleaseFixture, InvalidSignatureFailsBothPaths) {
  FakeChecker checker;
  checker.sig_valid = false;
  checker.locktime = 500;
  const PubKeyHash gw_pkh = to_pubkey_hash(str_bytes("gateway-pub"));
  const PubKeyHash buyer_pkh = to_pubkey_hash(str_bytes("buyer-pub"));
  const Script pubkey_script =
      make_key_release(ephemeral().pub, gw_pkh, buyer_pkh, 200);
  const auto redeem = verify_spend(
      make_key_release_redeem(str_bytes("s"), str_bytes("gateway-pub"),
                              ephemeral().priv),
      pubkey_script, checker);
  EXPECT_EQ(redeem.error, ScriptError::kEvalFalse);
  const auto reclaim = verify_spend(
      make_key_release_reclaim(str_bytes("s"), str_bytes("buyer-pub")),
      pubkey_script, checker);
  EXPECT_EQ(reclaim.error, ScriptError::kEvalFalse);
}

TEST_F(KeyReleaseFixture, ScriptSigMustBePushOnly) {
  FakeChecker checker;
  Script evil;
  evil.push(str_bytes("x")).op(Opcode::OP_DUP);
  const auto r = verify_spend(evil, make_p2pkh(PubKeyHash{}), checker);
  EXPECT_EQ(r.error, ScriptError::kSigPushOnly);
}

// --- Classification & extraction ---

TEST_F(KeyReleaseFixture, ClassifyP2pkh) {
  const PubKeyHash h = to_pubkey_hash(str_bytes("someone"));
  const auto c = classify(make_p2pkh(h));
  EXPECT_EQ(c.type, ScriptType::kP2pkh);
  EXPECT_EQ(c.pubkey_hash, h);
}

TEST_F(KeyReleaseFixture, ClassifyOpReturn) {
  const auto c = classify(make_op_return(str_bytes("BCWAN/IP|...")));
  EXPECT_EQ(c.type, ScriptType::kOpReturn);
  EXPECT_EQ(c.data, str_bytes("BCWAN/IP|..."));
}

TEST_F(KeyReleaseFixture, ClassifyKeyRelease) {
  const PubKeyHash gw = to_pubkey_hash(str_bytes("gw"));
  const PubKeyHash buyer = to_pubkey_hash(str_bytes("buyer"));
  const auto c = classify(make_key_release(ephemeral().pub, gw, buyer, 4242));
  EXPECT_EQ(c.type, ScriptType::kKeyRelease);
  EXPECT_EQ(c.pubkey_hash, gw);
  EXPECT_EQ(c.buyer_pubkey_hash, buyer);
  EXPECT_EQ(c.timeout_height, 4242);
  ASSERT_TRUE(c.ephemeral_pub.has_value());
  EXPECT_EQ(*c.ephemeral_pub, ephemeral().pub);
}

TEST_F(KeyReleaseFixture, ClassifyNonStandard) {
  Script s;
  s.op(Opcode::OP_DUP).op(Opcode::OP_DROP);
  EXPECT_EQ(classify(s).type, ScriptType::kNonStandard);
  EXPECT_EQ(classify(Script(Bytes{0x05, 0x01})).type,
            ScriptType::kNonStandard);
}

TEST_F(KeyReleaseFixture, ExtractRevealedKey) {
  const Script redeem = make_key_release_redeem(
      str_bytes("sig"), str_bytes("pub"), ephemeral().priv);
  const auto key = extract_revealed_key(redeem);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, ephemeral().priv);

  const Script reclaim =
      make_key_release_reclaim(str_bytes("sig"), str_bytes("pub"));
  EXPECT_FALSE(extract_revealed_key(reclaim).has_value());

  Script p2pkh_sig = make_p2pkh_scriptsig(str_bytes("s"), str_bytes("p"));
  EXPECT_FALSE(extract_revealed_key(p2pkh_sig).has_value());
}

// Property sweep: the Listing-1 contract is exclusive — for every locktime
// configuration exactly the intended party can spend.
struct SpendCase {
  bool gateway_has_key;
  std::int64_t tx_locktime;
  bool expect_gateway_ok;
  bool expect_buyer_ok;
};

class KeyReleaseExclusivity : public ::testing::TestWithParam<SpendCase> {};

TEST_P(KeyReleaseExclusivity, OnlyIntendedPartySpends) {
  Rng rng(502);
  static const crypto::RsaKeyPair eph = crypto::rsa_generate(rng, 512);
  static const crypto::RsaKeyPair wrong = crypto::rsa_generate(rng, 512);
  const auto& p = GetParam();

  FakeChecker checker;
  checker.sig_valid = true;
  checker.locktime = p.tx_locktime;
  const PubKeyHash gw = to_pubkey_hash(str_bytes("gw"));
  const PubKeyHash buyer = to_pubkey_hash(str_bytes("buyer"));
  const Script lock = make_key_release(eph.pub, gw, buyer, 300);

  const Script gw_spend = make_key_release_redeem(
      str_bytes("sig"), str_bytes("gw"),
      p.gateway_has_key ? eph.priv : wrong.priv);
  EXPECT_EQ(verify_spend(gw_spend, lock, checker).ok(), p.expect_gateway_ok);

  const Script buyer_spend =
      make_key_release_reclaim(str_bytes("sig"), str_bytes("buyer"));
  EXPECT_EQ(verify_spend(buyer_spend, lock, checker).ok(), p.expect_buyer_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KeyReleaseExclusivity,
    ::testing::Values(
        // Before timeout: only a gateway holding eSk can spend.
        SpendCase{true, 0, true, false},
        SpendCase{false, 0, false, false},
        // After timeout: gateway with key still can; buyer now can too.
        SpendCase{true, 300, true, true},
        SpendCase{false, 300, false, true},
        SpendCase{false, 1000, false, true}));

}  // namespace
}  // namespace bcwan::script

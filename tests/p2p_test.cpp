#include <gtest/gtest.h>

#include <algorithm>

#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/event_loop.hpp"
#include "p2p/network.hpp"
#include "util/rng.hpp"

namespace bcwan::p2p {
namespace {

using util::SimTime;
using util::kMillisecond;
using util::kSecond;

TEST(EventLoop, OrdersByTime) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(30, [&] { order.push_back(3); });
  loop.at(10, [&] { order.push_back(1); });
  loop.at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, FifoAtEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) loop.at(42, [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(10, [&] {
    order.push_back(1);
    loop.after(5, [&] { order.push_back(2); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 15);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  SimTime seen = -1;
  loop.at(100, [&] {
    loop.at(50, [&] { seen = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(seen, 100);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.at(10, [&] { ++fired; });
  loop.at(20, [&] { ++fired; });
  loop.at(30, [&] { ++fired; });
  loop.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StopHaltsRun) {
  EventLoop loop;
  int fired = 0;
  loop.at(1, [&] {
    ++fired;
    loop.stop();
  });
  loop.at(2, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, RunResumesAfterStop) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(1, [&] {
    order.push_back(1);
    loop.stop();
  });
  loop.at(2, [&] { order.push_back(2); });
  loop.at(3, [&] { order.push_back(3); });
  loop.run();
  ASSERT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(loop.pending(), 2u);
  // A fresh run() clears the stop flag and drains the remaining queue in
  // the original order.
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  loop.at(10, [] {});
  // The clock lands on the deadline even though the last event was earlier
  // (and even when nothing at all is scheduled).
  loop.run_until(100);
  EXPECT_EQ(loop.now(), 100);
  loop.run_until(250);
  EXPECT_EQ(loop.now(), 250);
  // run() by contrast stops the clock on the last executed event.
  loop.at(300, [] {});
  loop.run();
  EXPECT_EQ(loop.now(), 300);
}

TEST(EventLoop, CodedEventsDispatchWithPayloadWords) {
  EventLoop loop;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  const std::uint32_t code =
      loop.register_code([&](std::uint64_t a, std::uint64_t b) {
        seen.emplace_back(a, b);
      });
  loop.post(20, kSerialStrand, code, 7, 8);
  loop.post(10, kSerialStrand, code, 5, 6);
  loop.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(std::uint64_t{5}, std::uint64_t{6}));
  EXPECT_EQ(seen[1], std::make_pair(std::uint64_t{7}, std::uint64_t{8}));
  EXPECT_EQ(loop.events_executed(), 2u);
}

TEST(EventLoop, CodedAndCallbackEventsInterleaveBySeq) {
  EventLoop loop;
  std::vector<int> order;
  const std::uint32_t code = loop.register_code(
      [&](std::uint64_t a, std::uint64_t) { order.push_back(static_cast<int>(a)); });
  // Same timestamp: insertion order must hold across both event flavors.
  loop.at(42, [&] { order.push_back(0); });
  loop.post(42, kSerialStrand, code, 1);
  loop.at(42, [&] { order.push_back(2); });
  loop.post(42, kSerialStrand, code, 3);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// A serial-strand workload (nested scheduling, equal timestamps, coded and
// callback events) must execute in the identical order under both backends.
TEST(EventLoop, ShardedBackendMatchesSerialOnSerialWorkload) {
  const auto trace_for = [](EventLoop::Backend backend) {
    EventLoop loop(backend, 4);
    std::vector<std::pair<SimTime, std::uint64_t>> trace;
    const std::uint32_t code =
        loop.register_code([&](std::uint64_t a, std::uint64_t) {
          trace.emplace_back(loop.now(), a);
        });
    util::Rng rng(99);
    for (int i = 0; i < 50; ++i) {
      const SimTime when = static_cast<SimTime>(rng.next() % 21) *
                           kMillisecond / 2;
      loop.post(when, kSerialStrand, code, static_cast<std::uint64_t>(i));
    }
    // Nested re-scheduling off a few of the originals.
    loop.at(5 * kMillisecond, [&, code] {
      trace.emplace_back(loop.now(), 1000);
      loop.after(3 * kMillisecond, [&, code] {
        trace.emplace_back(loop.now(), 1001);
        loop.post(loop.now(), kSerialStrand, code, 1002);
      });
    });
    loop.run();
    return trace;
  };
  const auto serial = trace_for(EventLoop::Backend::kSerial);
  const auto sharded = trace_for(EventLoop::Backend::kSharded);
  ASSERT_EQ(serial.size(), 53u);
  EXPECT_EQ(serial, sharded);
}

// Parallel-strand events scheduling children at >= when + lookahead() run
// through real worker-pool windows and still produce the serial trace.
TEST(EventLoop, ParallelWindowsReproduceSerialTrace) {
  constexpr int kStrands = 4;
  constexpr int kRounds = 6;
  constexpr int kPerStrand = 8;
  const auto trace_for = [&](EventLoop::Backend backend, unsigned threads,
                             std::uint64_t* windows) {
    EventLoop loop(backend, threads);
    // Strand-local recording (no cross-strand writes inside a window);
    // merged deterministically afterwards.
    std::vector<std::vector<std::pair<SimTime, std::uint64_t>>> per_strand(
        kStrands);
    std::uint32_t code = 0;
    code = loop.register_code([&](std::uint64_t strand, std::uint64_t round) {
      per_strand[strand].emplace_back(loop.now(), round);
      if (round + 1 < kRounds) {
        loop.post(loop.now() + loop.lookahead(),
                  static_cast<StrandId>(strand), code, strand, round + 1);
      }
    });
    for (int s = 0; s < kStrands; ++s) {
      for (int i = 0; i < kPerStrand; ++i) {
        loop.post(s * 100 + i * 7, static_cast<StrandId>(s), code,
                  static_cast<std::uint64_t>(s), 0);
      }
    }
    loop.run();
    *windows = loop.parallel_windows();
    std::vector<std::pair<SimTime, std::uint64_t>> merged;
    for (int s = 0; s < kStrands; ++s) {
      for (const auto& entry : per_strand[s])
        merged.emplace_back(entry.first, entry.second * kStrands + s);
    }
    std::sort(merged.begin(), merged.end());
    return merged;
  };
  std::uint64_t serial_windows = 0, sharded_windows = 0;
  const auto serial =
      trace_for(EventLoop::Backend::kSerial, 1, &serial_windows);
  const auto sharded =
      trace_for(EventLoop::Backend::kSharded, 4, &sharded_windows);
  ASSERT_EQ(serial.size(),
            static_cast<std::size_t>(kStrands * kPerStrand * kRounds));
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(serial_windows, 0u);
  EXPECT_GT(sharded_windows, 0u);  // the pool path actually ran
}

// The conservative-lookahead contract is enforced: a parallel-strand event
// may not schedule a child inside its own window.
TEST(EventLoop, LookaheadViolationThrows) {
  EventLoop loop(EventLoop::Backend::kSharded, 2);
  const std::uint32_t noop = loop.register_code([](std::uint64_t,
                                                   std::uint64_t) {});
  std::uint32_t violator = 0;
  violator = loop.register_code([&](std::uint64_t, std::uint64_t) {
    // Child closer than lookahead(): reaches back inside the window.
    loop.post(loop.now() + 1, 0, noop, 0, 0);
  });
  // A dense, fully parallel bucket across two strand groups so the window
  // really goes through the pool (>= 8 events, >= 2 groups).
  for (int i = 0; i < 12; ++i)
    loop.post(100 + i, static_cast<StrandId>(i % 2),
              i == 6 ? violator : noop, 0, 0);
  EXPECT_THROW(loop.run(), std::logic_error);
}

TEST(EventLoop, SetLookaheadRejectsPendingEvents) {
  EventLoop loop(EventLoop::Backend::kSharded, 2);
  EXPECT_THROW(loop.set_lookahead(0), std::invalid_argument);
  loop.set_lookahead(5 * kMillisecond);
  EXPECT_EQ(loop.lookahead(), 5 * kMillisecond);
  loop.at(10, [] {});
  EXPECT_THROW(loop.set_lookahead(kMillisecond), std::logic_error);
}

TEST(SimNet, DeliversWithLatency) {
  EventLoop loop;
  SimNet net(loop, 1);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  net.set_processing_time(b, 0);

  SimTime arrival = -1;
  net.set_handler(b, [&](const Message& msg) {
    EXPECT_EQ(msg.type, "ping");
    EXPECT_EQ(msg.from, a);
    arrival = loop.now();
  });
  net.send(a, b, Message{"ping", {}, -1});
  loop.run();
  EXPECT_GT(arrival, 0);  // nonzero latency
  EXPECT_LT(arrival, kSecond);
}

TEST(SimNet, LatencyIsSampledPerMessage) {
  EventLoop loop;
  SimNet net(loop, 2);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  net.set_processing_time(b, 0);
  std::vector<SimTime> arrivals;
  net.set_handler(b, [&](const Message&) { arrivals.push_back(loop.now()); });
  for (int i = 0; i < 10; ++i) net.send(a, b, Message{"m", {}, -1});
  loop.run();
  ASSERT_EQ(arrivals.size(), 10u);
  // Not all equal (lognormal samples differ).
  EXPECT_NE(std::adjacent_find(arrivals.begin(), arrivals.end(),
                               std::not_equal_to<>()),
            arrivals.end());
}

TEST(SimNet, SerialProcessingQueues) {
  EventLoop loop;
  SimNet net(loop, 3);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  // Zero-latency link, heavy processing: arrivals serialize.
  net.set_latency(a, b, LatencyModel{0.001, 0.0, 0.001});
  net.set_processing_time(b, 100 * kMillisecond);
  std::vector<SimTime> handled;
  net.set_handler(b, [&](const Message&) { handled.push_back(loop.now()); });
  for (int i = 0; i < 3; ++i) net.send(a, b, Message{"m", {}, -1});
  loop.run();
  ASSERT_EQ(handled.size(), 3u);
  EXPECT_GE(handled[1] - handled[0], 100 * kMillisecond);
  EXPECT_GE(handled[2] - handled[1], 100 * kMillisecond);
}

TEST(SimNet, StallDelaysDelivery) {
  EventLoop loop;
  SimNet net(loop, 4);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  net.set_latency(a, b, LatencyModel{1.0, 0.0, 1.0});
  net.set_processing_time(b, 0);
  SimTime handled = -1;
  net.set_handler(b, [&](const Message&) { handled = loop.now(); });
  // Stall b for 10 virtual seconds, then send.
  net.stall(b, 10 * kSecond);
  net.send(a, b, Message{"m", {}, -1});
  loop.run();
  EXPECT_GE(handled, 10 * kSecond);
}

TEST(SimNet, PartitionDropsTraffic) {
  EventLoop loop;
  SimNet net(loop, 5);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  net.set_partitioned(b, true);
  net.send(a, b, Message{"m", {}, -1});
  loop.run();
  EXPECT_EQ(received, 0);
  net.set_partitioned(b, false);
  net.send(a, b, Message{"m", {}, -1});
  loop.run();
  EXPECT_EQ(received, 1);
}

// broadcast() must share one payload buffer across all receivers instead of
// deep-copying the bytes per host (the old per-receiver copy was O(hosts *
// payload) allocations per gossip round).
TEST(SimNet, BroadcastSharesOnePayloadBuffer) {
  EventLoop loop;
  SimNet net(loop, 8);
  const HostId a = net.add_host("a");
  util::Bytes blob(512, 0xab);
  Message original{"blob", std::move(blob), -1};
  const std::uint8_t* shared_data = original.payload.data();

  std::vector<const std::uint8_t*> seen_data;
  std::vector<long> seen_use_counts;
  for (int i = 0; i < 4; ++i) {
    const HostId h = net.add_host("h" + std::to_string(i));
    net.set_handler(h, [&](const Message& msg) {
      seen_data.push_back(msg.payload.data());
      seen_use_counts.push_back(msg.payload.use_count());
      EXPECT_EQ(msg.payload.size(), 512u);
      EXPECT_EQ(msg.payload[0], 0xab);
    });
  }
  net.broadcast(a, original);
  loop.run();

  ASSERT_EQ(seen_data.size(), 4u);
  for (const std::uint8_t* data : seen_data) EXPECT_EQ(data, shared_data);
  // The first delivery happens while later deliveries are still in flight,
  // each holding a reference to the same buffer (plus the caller's copy).
  EXPECT_GT(seen_use_counts.front(), 1);
}

TEST(SimNet, BroadcastReachesAllOthers) {
  EventLoop loop;
  SimNet net(loop, 6);
  const HostId a = net.add_host("a");
  std::vector<HostId> others;
  int received = 0;
  for (int i = 0; i < 4; ++i) {
    const HostId h = net.add_host("h" + std::to_string(i));
    net.set_handler(h, [&](const Message&) { ++received; });
    others.push_back(h);
  }
  net.set_handler(a, [&](const Message&) { FAIL() << "self-delivery"; });
  net.broadcast(a, Message{"m", {}, -1});
  loop.run();
  EXPECT_EQ(received, 4);
}

// --- ChainNode gossip ---

struct GossipHarness {
  chain::ChainParams params = [] {
    chain::ChainParams p;
    p.pow_zero_bits = 4;
    p.coinbase_maturity = 1;
    return p;
  }();
  EventLoop loop;
  SimNet net{loop, 7};
  std::vector<std::unique_ptr<ChainNode>> nodes;
  chain::Wallet miner_wallet = chain::Wallet::from_seed("miner");
  chain::Miner miner{params, miner_wallet.pkh()};

  explicit GossipHarness(int n, ChainNodeConfig config = {}) {
    for (int i = 0; i < n; ++i) {
      const HostId h = net.add_host("node" + std::to_string(i));
      nodes.push_back(std::make_unique<ChainNode>(loop, net, h, params,
                                                  config, 100 + i));
    }
  }

  void mine_and_submit(int node_index) {
    auto& node = *nodes[node_index];
    const chain::Block block = miner.mine(
        node.chain(), node.mempool(),
        static_cast<std::uint64_t>(loop.now() / util::kSecond));
    node.submit_block(block);
  }
};

TEST(ChainNode, BlockGossipSyncsAllNodes) {
  GossipHarness h(4);
  h.mine_and_submit(0);
  h.loop.run();
  for (const auto& node : h.nodes) {
    EXPECT_EQ(node->chain().height(), 1);
    EXPECT_EQ(node->chain().tip_hash(), h.nodes[0]->chain().tip_hash());
  }
}

TEST(ChainNode, TxGossipReachesAllMempools) {
  GossipHarness h(4);
  // Fund the miner wallet on node 0 and let blocks propagate.
  h.mine_and_submit(0);
  h.loop.run();
  h.mine_and_submit(0);
  h.loop.run();

  const chain::Wallet alice = chain::Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(
      h.nodes[0]->chain(), &h.nodes[0]->mempool(), alice.pkh(),
      chain::kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.nodes[0]->submit_tx(*tx).ok());
  h.loop.run();
  for (const auto& node : h.nodes) {
    EXPECT_TRUE(node->mempool().contains(tx->txid()));
  }
}

TEST(ChainNode, TxWatcherFires) {
  GossipHarness h(2);
  h.mine_and_submit(0);
  h.loop.run();
  h.mine_and_submit(0);
  h.loop.run();

  int fired = 0;
  h.nodes[1]->add_tx_watcher([&](const chain::Transaction&) { ++fired; });
  const chain::Wallet alice = chain::Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(
      h.nodes[0]->chain(), nullptr, alice.pkh(), chain::kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.nodes[0]->submit_tx(*tx).ok());
  h.loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(ChainNode, VerificationStallFreezesDaemon) {
  ChainNodeConfig stall_config;
  stall_config.block_verification_stall = true;
  stall_config.stall_median_s = 5.0;
  stall_config.stall_sigma = 0.0;  // deterministic for the assertion
  GossipHarness h(2, stall_config);

  h.mine_and_submit(0);
  h.loop.run();
  // Node 1 received and verified the block: its daemon must have been busy
  // for ~5 virtual seconds.
  EXPECT_GE(h.net.busy_until(h.nodes[1]->host()), 5 * kSecond);
  EXPECT_EQ(h.nodes[1]->chain().height(), 1);
}

TEST(ChainNode, PartitionedNodeCatchesUpViaOrphans) {
  GossipHarness h(3);
  h.net.set_partitioned(h.nodes[2]->host(), true);
  h.mine_and_submit(0);
  h.loop.run();
  h.net.set_partitioned(h.nodes[2]->host(), false);
  h.mine_and_submit(0);
  h.loop.run();
  // Node 2 missed block 1 and receives block 2 as an orphan; parking it
  // triggers a "getblocks" catch-up request to the sender, which streams
  // the gap. The node ends fully synced, not stuck holding orphans.
  EXPECT_EQ(h.nodes[2]->chain().height(), 2);
  EXPECT_EQ(h.nodes[2]->chain().tip_hash(), h.nodes[0]->chain().tip_hash());
  EXPECT_GE(h.nodes[2]->sync_requests(), 1u);
  // Node 1 has both blocks.
  EXPECT_EQ(h.nodes[1]->chain().height(), 2);
}

TEST(ChainNode, AppMessagesRouted) {
  GossipHarness h(2);
  std::string seen_type;
  h.nodes[1]->set_app_handler(
      [&](const Message& msg) { seen_type = msg.type; });
  h.net.send(h.nodes[0]->host(), h.nodes[1]->host(),
             Message{"DELIVER", util::str_bytes("hi"), -1});
  h.loop.run();
  EXPECT_EQ(seen_type, "DELIVER");
}

}  // namespace
}  // namespace bcwan::p2p

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <functional>

#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/event_loop.hpp"
#include "p2p/framing.hpp"
#include "p2p/network.hpp"
#include "p2p/tcp_transport.hpp"
#include "util/rng.hpp"

namespace bcwan::p2p {
namespace {

using util::SimTime;
using util::kMillisecond;
using util::kSecond;

TEST(EventLoop, OrdersByTime) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(30, [&] { order.push_back(3); });
  loop.at(10, [&] { order.push_back(1); });
  loop.at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, FifoAtEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) loop.at(42, [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(10, [&] {
    order.push_back(1);
    loop.after(5, [&] { order.push_back(2); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 15);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  SimTime seen = -1;
  loop.at(100, [&] {
    loop.at(50, [&] { seen = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(seen, 100);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.at(10, [&] { ++fired; });
  loop.at(20, [&] { ++fired; });
  loop.at(30, [&] { ++fired; });
  loop.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StopHaltsRun) {
  EventLoop loop;
  int fired = 0;
  loop.at(1, [&] {
    ++fired;
    loop.stop();
  });
  loop.at(2, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, RunResumesAfterStop) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(1, [&] {
    order.push_back(1);
    loop.stop();
  });
  loop.at(2, [&] { order.push_back(2); });
  loop.at(3, [&] { order.push_back(3); });
  loop.run();
  ASSERT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(loop.pending(), 2u);
  // A fresh run() clears the stop flag and drains the remaining queue in
  // the original order.
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  loop.at(10, [] {});
  // The clock lands on the deadline even though the last event was earlier
  // (and even when nothing at all is scheduled).
  loop.run_until(100);
  EXPECT_EQ(loop.now(), 100);
  loop.run_until(250);
  EXPECT_EQ(loop.now(), 250);
  // run() by contrast stops the clock on the last executed event.
  loop.at(300, [] {});
  loop.run();
  EXPECT_EQ(loop.now(), 300);
}

TEST(EventLoop, CodedEventsDispatchWithPayloadWords) {
  EventLoop loop;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  const std::uint32_t code =
      loop.register_code([&](std::uint64_t a, std::uint64_t b) {
        seen.emplace_back(a, b);
      });
  loop.post(20, kSerialStrand, code, 7, 8);
  loop.post(10, kSerialStrand, code, 5, 6);
  loop.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(std::uint64_t{5}, std::uint64_t{6}));
  EXPECT_EQ(seen[1], std::make_pair(std::uint64_t{7}, std::uint64_t{8}));
  EXPECT_EQ(loop.events_executed(), 2u);
}

TEST(EventLoop, CodedAndCallbackEventsInterleaveBySeq) {
  EventLoop loop;
  std::vector<int> order;
  const std::uint32_t code = loop.register_code(
      [&](std::uint64_t a, std::uint64_t) { order.push_back(static_cast<int>(a)); });
  // Same timestamp: insertion order must hold across both event flavors.
  loop.at(42, [&] { order.push_back(0); });
  loop.post(42, kSerialStrand, code, 1);
  loop.at(42, [&] { order.push_back(2); });
  loop.post(42, kSerialStrand, code, 3);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// A serial-strand workload (nested scheduling, equal timestamps, coded and
// callback events) must execute in the identical order under both backends.
TEST(EventLoop, ShardedBackendMatchesSerialOnSerialWorkload) {
  const auto trace_for = [](EventLoop::Backend backend) {
    EventLoop loop(backend, 4);
    std::vector<std::pair<SimTime, std::uint64_t>> trace;
    const std::uint32_t code =
        loop.register_code([&](std::uint64_t a, std::uint64_t) {
          trace.emplace_back(loop.now(), a);
        });
    util::Rng rng(99);
    for (int i = 0; i < 50; ++i) {
      const SimTime when = static_cast<SimTime>(rng.next() % 21) *
                           kMillisecond / 2;
      loop.post(when, kSerialStrand, code, static_cast<std::uint64_t>(i));
    }
    // Nested re-scheduling off a few of the originals.
    loop.at(5 * kMillisecond, [&, code] {
      trace.emplace_back(loop.now(), 1000);
      loop.after(3 * kMillisecond, [&, code] {
        trace.emplace_back(loop.now(), 1001);
        loop.post(loop.now(), kSerialStrand, code, 1002);
      });
    });
    loop.run();
    return trace;
  };
  const auto serial = trace_for(EventLoop::Backend::kSerial);
  const auto sharded = trace_for(EventLoop::Backend::kSharded);
  ASSERT_EQ(serial.size(), 53u);
  EXPECT_EQ(serial, sharded);
}

// Parallel-strand events scheduling children at >= when + lookahead() run
// through real worker-pool windows and still produce the serial trace.
TEST(EventLoop, ParallelWindowsReproduceSerialTrace) {
  constexpr int kStrands = 4;
  constexpr int kRounds = 6;
  constexpr int kPerStrand = 8;
  const auto trace_for = [&](EventLoop::Backend backend, unsigned threads,
                             std::uint64_t* windows) {
    EventLoop loop(backend, threads);
    // Strand-local recording (no cross-strand writes inside a window);
    // merged deterministically afterwards.
    std::vector<std::vector<std::pair<SimTime, std::uint64_t>>> per_strand(
        kStrands);
    std::uint32_t code = 0;
    code = loop.register_code([&](std::uint64_t strand, std::uint64_t round) {
      per_strand[strand].emplace_back(loop.now(), round);
      if (round + 1 < kRounds) {
        loop.post(loop.now() + loop.lookahead(),
                  static_cast<StrandId>(strand), code, strand, round + 1);
      }
    });
    for (int s = 0; s < kStrands; ++s) {
      for (int i = 0; i < kPerStrand; ++i) {
        loop.post(s * 100 + i * 7, static_cast<StrandId>(s), code,
                  static_cast<std::uint64_t>(s), 0);
      }
    }
    loop.run();
    *windows = loop.parallel_windows();
    std::vector<std::pair<SimTime, std::uint64_t>> merged;
    for (int s = 0; s < kStrands; ++s) {
      for (const auto& entry : per_strand[s])
        merged.emplace_back(entry.first, entry.second * kStrands + s);
    }
    std::sort(merged.begin(), merged.end());
    return merged;
  };
  std::uint64_t serial_windows = 0, sharded_windows = 0;
  const auto serial =
      trace_for(EventLoop::Backend::kSerial, 1, &serial_windows);
  const auto sharded =
      trace_for(EventLoop::Backend::kSharded, 4, &sharded_windows);
  ASSERT_EQ(serial.size(),
            static_cast<std::size_t>(kStrands * kPerStrand * kRounds));
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(serial_windows, 0u);
  EXPECT_GT(sharded_windows, 0u);  // the pool path actually ran
}

// The conservative-lookahead contract is enforced: a parallel-strand event
// may not schedule a child inside its own window.
TEST(EventLoop, LookaheadViolationThrows) {
  EventLoop loop(EventLoop::Backend::kSharded, 2);
  const std::uint32_t noop = loop.register_code([](std::uint64_t,
                                                   std::uint64_t) {});
  std::uint32_t violator = 0;
  violator = loop.register_code([&](std::uint64_t, std::uint64_t) {
    // Child closer than lookahead(): reaches back inside the window.
    loop.post(loop.now() + 1, 0, noop, 0, 0);
  });
  // A dense, fully parallel bucket across two strand groups so the window
  // really goes through the pool (>= 8 events, >= 2 groups).
  for (int i = 0; i < 12; ++i)
    loop.post(100 + i, static_cast<StrandId>(i % 2),
              i == 6 ? violator : noop, 0, 0);
  EXPECT_THROW(loop.run(), std::logic_error);
}

TEST(EventLoop, SetLookaheadRejectsPendingEvents) {
  EventLoop loop(EventLoop::Backend::kSharded, 2);
  EXPECT_THROW(loop.set_lookahead(0), std::invalid_argument);
  loop.set_lookahead(5 * kMillisecond);
  EXPECT_EQ(loop.lookahead(), 5 * kMillisecond);
  loop.at(10, [] {});
  EXPECT_THROW(loop.set_lookahead(kMillisecond), std::logic_error);
}

TEST(SimNet, DeliversWithLatency) {
  EventLoop loop;
  SimNet net(loop, 1);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  net.set_processing_time(b, 0);

  SimTime arrival = -1;
  net.set_handler(b, [&](const Message& msg) {
    EXPECT_EQ(msg.type, "ping");
    EXPECT_EQ(msg.from, a);
    arrival = loop.now();
  });
  net.send(a, b, Message{"ping", {}, -1});
  loop.run();
  EXPECT_GT(arrival, 0);  // nonzero latency
  EXPECT_LT(arrival, kSecond);
}

TEST(SimNet, LatencyIsSampledPerMessage) {
  EventLoop loop;
  SimNet net(loop, 2);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  net.set_processing_time(b, 0);
  std::vector<SimTime> arrivals;
  net.set_handler(b, [&](const Message&) { arrivals.push_back(loop.now()); });
  for (int i = 0; i < 10; ++i) net.send(a, b, Message{"m", {}, -1});
  loop.run();
  ASSERT_EQ(arrivals.size(), 10u);
  // Not all equal (lognormal samples differ).
  EXPECT_NE(std::adjacent_find(arrivals.begin(), arrivals.end(),
                               std::not_equal_to<>()),
            arrivals.end());
}

TEST(SimNet, SerialProcessingQueues) {
  EventLoop loop;
  SimNet net(loop, 3);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  // Zero-latency link, heavy processing: arrivals serialize.
  net.set_latency(a, b, LatencyModel{0.001, 0.0, 0.001});
  net.set_processing_time(b, 100 * kMillisecond);
  std::vector<SimTime> handled;
  net.set_handler(b, [&](const Message&) { handled.push_back(loop.now()); });
  for (int i = 0; i < 3; ++i) net.send(a, b, Message{"m", {}, -1});
  loop.run();
  ASSERT_EQ(handled.size(), 3u);
  EXPECT_GE(handled[1] - handled[0], 100 * kMillisecond);
  EXPECT_GE(handled[2] - handled[1], 100 * kMillisecond);
}

TEST(SimNet, StallDelaysDelivery) {
  EventLoop loop;
  SimNet net(loop, 4);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  net.set_latency(a, b, LatencyModel{1.0, 0.0, 1.0});
  net.set_processing_time(b, 0);
  SimTime handled = -1;
  net.set_handler(b, [&](const Message&) { handled = loop.now(); });
  // Stall b for 10 virtual seconds, then send.
  net.stall(b, 10 * kSecond);
  net.send(a, b, Message{"m", {}, -1});
  loop.run();
  EXPECT_GE(handled, 10 * kSecond);
}

TEST(SimNet, PartitionDropsTraffic) {
  EventLoop loop;
  SimNet net(loop, 5);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  net.set_partitioned(b, true);
  net.send(a, b, Message{"m", {}, -1});
  loop.run();
  EXPECT_EQ(received, 0);
  net.set_partitioned(b, false);
  net.send(a, b, Message{"m", {}, -1});
  loop.run();
  EXPECT_EQ(received, 1);
}

// broadcast() must share one payload buffer across all receivers instead of
// deep-copying the bytes per host (the old per-receiver copy was O(hosts *
// payload) allocations per gossip round).
TEST(SimNet, BroadcastSharesOnePayloadBuffer) {
  EventLoop loop;
  SimNet net(loop, 8);
  const HostId a = net.add_host("a");
  util::Bytes blob(512, 0xab);
  Message original{"blob", std::move(blob), -1};
  const std::uint8_t* shared_data = original.payload.data();

  std::vector<const std::uint8_t*> seen_data;
  std::vector<long> seen_use_counts;
  for (int i = 0; i < 4; ++i) {
    const HostId h = net.add_host("h" + std::to_string(i));
    net.set_handler(h, [&](const Message& msg) {
      seen_data.push_back(msg.payload.data());
      seen_use_counts.push_back(msg.payload.use_count());
      EXPECT_EQ(msg.payload.size(), 512u);
      EXPECT_EQ(msg.payload[0], 0xab);
    });
  }
  net.broadcast(a, original);
  loop.run();

  ASSERT_EQ(seen_data.size(), 4u);
  for (const std::uint8_t* data : seen_data) EXPECT_EQ(data, shared_data);
  // The first delivery happens while later deliveries are still in flight,
  // each holding a reference to the same buffer (plus the caller's copy).
  EXPECT_GT(seen_use_counts.front(), 1);
}

TEST(SimNet, BroadcastReachesAllOthers) {
  EventLoop loop;
  SimNet net(loop, 6);
  const HostId a = net.add_host("a");
  std::vector<HostId> others;
  int received = 0;
  for (int i = 0; i < 4; ++i) {
    const HostId h = net.add_host("h" + std::to_string(i));
    net.set_handler(h, [&](const Message&) { ++received; });
    others.push_back(h);
  }
  net.set_handler(a, [&](const Message&) { FAIL() << "self-delivery"; });
  net.broadcast(a, Message{"m", {}, -1});
  loop.run();
  EXPECT_EQ(received, 4);
}

// --- ChainNode gossip ---

struct GossipHarness {
  chain::ChainParams params = [] {
    chain::ChainParams p;
    p.pow_zero_bits = 4;
    p.coinbase_maturity = 1;
    return p;
  }();
  EventLoop loop;
  SimNet net{loop, 7};
  std::vector<std::unique_ptr<ChainNode>> nodes;
  chain::Wallet miner_wallet = chain::Wallet::from_seed("miner");
  chain::Miner miner{params, miner_wallet.pkh()};

  explicit GossipHarness(int n, ChainNodeConfig config = {}) {
    for (int i = 0; i < n; ++i) {
      const HostId h = net.add_host("node" + std::to_string(i));
      nodes.push_back(std::make_unique<ChainNode>(loop, net, h, params,
                                                  config, 100 + i));
    }
  }

  void mine_and_submit(int node_index) {
    auto& node = *nodes[node_index];
    const chain::Block block = miner.mine(
        node.chain(), node.mempool(),
        static_cast<std::uint64_t>(loop.now() / util::kSecond));
    node.submit_block(block);
  }
};

TEST(ChainNode, BlockGossipSyncsAllNodes) {
  GossipHarness h(4);
  h.mine_and_submit(0);
  h.loop.run();
  for (const auto& node : h.nodes) {
    EXPECT_EQ(node->chain().height(), 1);
    EXPECT_EQ(node->chain().tip_hash(), h.nodes[0]->chain().tip_hash());
  }
}

TEST(ChainNode, TxGossipReachesAllMempools) {
  GossipHarness h(4);
  // Fund the miner wallet on node 0 and let blocks propagate.
  h.mine_and_submit(0);
  h.loop.run();
  h.mine_and_submit(0);
  h.loop.run();

  const chain::Wallet alice = chain::Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(
      h.nodes[0]->chain(), &h.nodes[0]->mempool(), alice.pkh(),
      chain::kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.nodes[0]->submit_tx(*tx).ok());
  h.loop.run();
  for (const auto& node : h.nodes) {
    EXPECT_TRUE(node->mempool().contains(tx->txid()));
  }
}

TEST(ChainNode, TxWatcherFires) {
  GossipHarness h(2);
  h.mine_and_submit(0);
  h.loop.run();
  h.mine_and_submit(0);
  h.loop.run();

  int fired = 0;
  h.nodes[1]->add_tx_watcher([&](const chain::Transaction&) { ++fired; });
  const chain::Wallet alice = chain::Wallet::from_seed("alice");
  const auto tx = h.miner_wallet.create_payment(
      h.nodes[0]->chain(), nullptr, alice.pkh(), chain::kCoin, 1000);
  ASSERT_TRUE(tx.has_value());
  ASSERT_TRUE(h.nodes[0]->submit_tx(*tx).ok());
  h.loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(ChainNode, VerificationStallFreezesDaemon) {
  ChainNodeConfig stall_config;
  stall_config.block_verification_stall = true;
  stall_config.stall_median_s = 5.0;
  stall_config.stall_sigma = 0.0;  // deterministic for the assertion
  GossipHarness h(2, stall_config);

  h.mine_and_submit(0);
  h.loop.run();
  // Node 1 received and verified the block: its daemon must have been busy
  // for ~5 virtual seconds.
  EXPECT_GE(h.net.busy_until(h.nodes[1]->host()), 5 * kSecond);
  EXPECT_EQ(h.nodes[1]->chain().height(), 1);
}

TEST(ChainNode, PartitionedNodeCatchesUpViaOrphans) {
  GossipHarness h(3);
  h.net.set_partitioned(h.nodes[2]->host(), true);
  h.mine_and_submit(0);
  h.loop.run();
  h.net.set_partitioned(h.nodes[2]->host(), false);
  h.mine_and_submit(0);
  h.loop.run();
  // Node 2 missed block 1 and receives block 2 as an orphan; parking it
  // triggers a "getblocks" catch-up request to the sender, which streams
  // the gap. The node ends fully synced, not stuck holding orphans.
  EXPECT_EQ(h.nodes[2]->chain().height(), 2);
  EXPECT_EQ(h.nodes[2]->chain().tip_hash(), h.nodes[0]->chain().tip_hash());
  EXPECT_GE(h.nodes[2]->sync_requests(), 1u);
  // Node 1 has both blocks.
  EXPECT_EQ(h.nodes[1]->chain().height(), 2);
}

TEST(ChainNode, AppMessagesRouted) {
  GossipHarness h(2);
  std::string seen_type;
  h.nodes[1]->set_app_handler(
      [&](const Message& msg) { seen_type = msg.type; });
  h.net.send(h.nodes[0]->host(), h.nodes[1]->host(),
             Message{"DELIVER", util::str_bytes("hi"), -1});
  h.loop.run();
  EXPECT_EQ(seen_type, "DELIVER");
}

// -- Wire framing (TCP transport). --

Message make_msg(const std::string& type, std::size_t payload_len,
                 HostId from) {
  util::Bytes payload(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return Message{type, std::move(payload), from};
}

TEST(Framing, RoundTrip) {
  const Message in = make_msg("block", 1234, 3);
  FrameDecoder dec;
  dec.feed(encode_frame(in, in.from));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, in.type);
  EXPECT_EQ(static_cast<const util::Bytes&>(out->payload),
            static_cast<const util::Bytes&>(in.payload));
  EXPECT_EQ(out->from, 3);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.poisoned());
}

TEST(Framing, EmptyPayloadAndEmptyType) {
  FrameDecoder dec;
  dec.feed(encode_frame(Message{"", util::Bytes{}, 0}, 0));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type.str(), "");
  EXPECT_EQ(out->payload.size(), 0u);
}

TEST(Framing, ReassemblesAcrossArbitrarySplitBoundaries) {
  // Three frames concatenated, then fed in every chunk size from 1 byte up:
  // the decoder must reproduce the same sequence regardless of where the
  // reads land.
  std::vector<Message> msgs;
  msgs.push_back(make_msg("tx", 0, 1));
  msgs.push_back(make_msg("block", 777, 2));
  msgs.push_back(make_msg("getblocks", 64, 3));
  util::Bytes wire;
  for (const Message& m : msgs) {
    const util::Bytes f = encode_frame(m, m.from);
    wire.insert(wire.end(), f.begin(), f.end());
  }
  for (std::size_t chunk = 1; chunk <= 97; chunk += 16) {
    FrameDecoder dec;
    std::vector<Message> got;
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      const std::size_t len = std::min(chunk, wire.size() - off);
      dec.feed(util::ByteView(wire.data() + off, len));
      while (auto m = dec.next()) got.push_back(std::move(*m));
    }
    ASSERT_EQ(got.size(), msgs.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(got[i].type, msgs[i].type);
      EXPECT_EQ(static_cast<const util::Bytes&>(got[i].payload),
                static_cast<const util::Bytes&>(msgs[i].payload));
      EXPECT_EQ(got[i].from, msgs[i].from);
    }
    EXPECT_FALSE(dec.poisoned());
  }
}

TEST(Framing, TruncatedFrameYieldsNothing) {
  const util::Bytes f = encode_frame(make_msg("block", 100, 1), 1);
  for (std::size_t cut : {std::size_t{1}, kFrameHeaderSize - 1,
                          kFrameHeaderSize, f.size() - 1}) {
    FrameDecoder dec;
    dec.feed(util::ByteView(f.data(), cut));
    EXPECT_FALSE(dec.next().has_value()) << "cut=" << cut;
    EXPECT_FALSE(dec.poisoned()) << "cut=" << cut;  // just incomplete
  }
}

TEST(Framing, BadMagicPoisons) {
  util::Bytes f = encode_frame(make_msg("tx", 8, 1), 1);
  f[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(f);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.poisoned());
  EXPECT_EQ(dec.error(), FrameError::kBadMagic);
  // A poisoned decoder stays poisoned: later valid bytes are not resynced.
  dec.feed(encode_frame(make_msg("tx", 8, 1), 1));
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Framing, BadVersionPoisons) {
  util::Bytes f = encode_frame(make_msg("tx", 8, 1), 1);
  f[4] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(f);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameError::kBadVersion);
}

TEST(Framing, OversizedLengthsPoison) {
  // Claimed payload_len beyond the cap must be rejected from the header
  // alone — the decoder can never be made to buffer unbounded garbage.
  util::Bytes f = encode_frame(make_msg("tx", 8, 1), 1);
  f[8] = 0xFF; f[9] = 0xFF; f[10] = 0xFF; f[11] = 0x7F;
  FrameDecoder dec;
  dec.feed(f);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameError::kOversized);

  util::Bytes g = encode_frame(make_msg("tx", 8, 1), 1);
  g[6] = 0xFF; g[7] = 0xFF;  // type_len 65535 > kMaxFrameTypeLen
  FrameDecoder dec2;
  dec2.feed(g);
  EXPECT_FALSE(dec2.next().has_value());
  EXPECT_EQ(dec2.error(), FrameError::kOversized);
}

TEST(Framing, CorruptBodyFailsChecksum) {
  util::Bytes f = encode_frame(make_msg("block", 64, 1), 1);
  f[kFrameHeaderSize + 10] ^= 0x01;
  FrameDecoder dec;
  dec.feed(f);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameError::kBadChecksum);
  EXPECT_TRUE(dec.poisoned());
}

TEST(Framing, RandomGarbageNeverCrashes) {
  // Fuzz-ish: random byte soup must only ever produce "no frame" or a
  // poisoned decoder — never UB (ASan/UBSan jobs run this too).
  util::Rng rng(0xF00D);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder dec;
    const std::size_t len = 1 + rng.below(512);
    util::Bytes junk(len);
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.below(256));
    dec.feed(junk);
    while (dec.next().has_value()) {
    }
  }
}

TEST(Framing, ReconnectBackoffDeterministicAndBounded) {
  util::Rng a(42), b(42);
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    const util::SimTime da = reconnect_backoff(attempt, a);
    const util::SimTime db = reconnect_backoff(attempt, b);
    EXPECT_EQ(da, db) << "same seed must give the same jitter";
  }
  // Bounds: jitter is 0.7x..1.3x of the doubling schedule, capped at 5 s.
  util::Rng c(7);
  for (unsigned attempt = 0; attempt < 20; ++attempt) {
    const util::SimTime d = reconnect_backoff(attempt, c);
    const util::SimTime sched = std::min<util::SimTime>(
        5 * kSecond, 100 * kMillisecond << std::min(attempt, 20u));
    EXPECT_GE(d, static_cast<util::SimTime>(0.69 * sched));
    EXPECT_LE(d, static_cast<util::SimTime>(1.31 * sched));
  }
}

// -- TcpTransport over real localhost sockets. --

/// Pump both transports until `done` or the deadline. Real time, so the
/// deadline is generous; the normal path finishes in milliseconds.
bool pump_until(TcpTransport& a, TcpTransport& b,
                const std::function<bool()>& done, int deadline_ms = 10000) {
  for (int waited = 0; waited < deadline_ms && !done(); waited += 2) {
    a.poll(1);
    b.poll(1);
  }
  return done();
}

TEST(TcpTransport, LoopbackRoundTrip) {
  TcpTransportConfig ca;
  ca.self = 0;
  TcpTransportConfig cb;
  cb.self = 1;
  TcpTransport a(ca), b(cb);
  a.set_peer_address(1, "127.0.0.1:" + std::to_string(b.listen_port()));
  b.set_peer_address(0, "127.0.0.1:" + std::to_string(a.listen_port()));

  std::vector<Message> at_a, at_b;
  a.set_handler(0, [&](const Message& m) { at_a.push_back(m); });
  b.set_handler(1, [&](const Message& m) { at_b.push_back(m); });

  const Message ping = make_msg("ping", 512, 0);
  const Message pong = make_msg("pong", 64 * 1024, 1);  // multi-read frame
  a.send(0, 1, ping);
  b.send(1, 0, pong);
  ASSERT_TRUE(pump_until(a, b,
                         [&] { return !at_a.empty() && !at_b.empty(); }));
  EXPECT_EQ(at_b[0].type.str(), "ping");
  EXPECT_EQ(at_b[0].from, 0);
  EXPECT_EQ(at_b[0].payload.size(), 512u);
  EXPECT_EQ(at_a[0].type.str(), "pong");
  EXPECT_EQ(at_a[0].payload.size(), 64u * 1024u);
  EXPECT_EQ(static_cast<const util::Bytes&>(at_a[0].payload),
            static_cast<const util::Bytes&>(pong.payload));
  EXPECT_GE(a.stats().frames_out, 1u);
  EXPECT_GE(a.stats().frames_in, 1u);
}

TEST(TcpTransport, SelfSendDeliversLocally) {
  TcpTransportConfig cfg;
  cfg.self = 4;
  TcpTransport t(cfg);
  std::vector<Message> got;
  t.set_handler(4, [&](const Message& m) { got.push_back(m); });
  t.send(4, 4, make_msg("note", 9, 4));
  t.poll(0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type.str(), "note");
}

TEST(TcpTransport, GarbageStreamRejectedWithoutCrash) {
  // A "peer" that talks garbage costs one disconnect, never a crash: dial
  // the victim's listen port raw and write junk.
  TcpTransportConfig cfg;
  cfg.self = 0;
  TcpTransport victim(cfg);
  victim.set_handler(0, [](const Message&) { FAIL() << "garbage decoded"; });

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(victim.listen_port());
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char junk[] = "GET / HTTP/1.1\r\nHost: not-a-bcwan-peer\r\n\r\n";
  ASSERT_GT(write(fd, junk, sizeof(junk) - 1), 0);

  for (int waited = 0; waited < 5000 && victim.stats().frames_rejected == 0;
       waited += 2) {
    victim.poll(2);
  }
  EXPECT_EQ(victim.stats().frames_rejected, 1u);
  close(fd);
}

TEST(TcpTransport, OversizedSendDroppedAtSource) {
  TcpTransportConfig cfg;
  cfg.self = 0;
  TcpTransport t(cfg);
  Message huge = make_msg("blob", kMaxFramePayload + 1, 0);
  t.send(0, 1, std::move(huge));
  EXPECT_EQ(t.stats().queue_drops, 1u);
  EXPECT_EQ(t.stats().frames_out, 0u);
}

TEST(TcpTransport, ReconnectsAfterPeerRestart) {
  // Peer b dies (transport destroyed), a keeps retrying with backoff, a new
  // b comes up on the same port, traffic flows again.
  TcpTransportConfig ca;
  ca.self = 0;
  ca.backoff_base = 5 * kMillisecond;  // keep the test fast
  TcpTransport a(ca);

  std::uint16_t port = 0;
  std::vector<Message> got;
  {
    TcpTransportConfig cb;
    cb.self = 1;
    TcpTransport b(cb);
    port = b.listen_port();
    a.set_peer_address(1, "127.0.0.1:" + std::to_string(port));
    b.set_peer_address(0, "127.0.0.1:" + std::to_string(a.listen_port()));
    b.set_handler(1, [&](const Message& m) { got.push_back(m); });
    a.send(0, 1, make_msg("one", 4, 0));
    ASSERT_TRUE(pump_until(a, b, [&] { return got.size() == 1; }));
  }  // b is gone; its port is free again

  for (int i = 0; i < 50; ++i) a.poll(1);  // notice the EOF, start retrying

  TcpTransportConfig cb2;
  cb2.self = 1;
  cb2.listen = "127.0.0.1:" + std::to_string(port);
  TcpTransport b2(cb2);
  b2.set_peer_address(0, "127.0.0.1:" + std::to_string(a.listen_port()));
  b2.set_handler(1, [&](const Message& m) { got.push_back(m); });

  // a's frames queue until the redial lands, then flush in order.
  a.send(0, 1, make_msg("two", 4, 0));
  ASSERT_TRUE(pump_until(a, b2, [&] { return got.size() == 2; }));
  EXPECT_EQ(got[1].type.str(), "two");
  EXPECT_GE(a.stats().reconnect_attempts, 1u);
}

}  // namespace
}  // namespace bcwan::p2p

#include <gtest/gtest.h>

#include "baseline/exchange_models.hpp"
#include "baseline/legacy_lorawan.hpp"

namespace bcwan::baseline {
namespace {

TEST(LegacyLoraWan, LatencyIsSubSecond) {
  LegacyConfig config;
  LegacyLoraWan legacy(config);
  legacy.run(500);
  ASSERT_EQ(legacy.latency_stats().count(), 500u);
  // Airtime (~70 ms for 33 B at SF7) + two WAN hops: well under a second.
  EXPECT_GT(legacy.latency_stats().mean(), 0.05);
  EXPECT_LT(legacy.latency_stats().mean(), 0.8);
}

TEST(LegacyLoraWan, SlowerAtHigherSf) {
  LegacyConfig fast;
  LegacyConfig slow;
  slow.sf = lora::SpreadingFactor::kSF12;
  LegacyLoraWan a(fast), b(slow);
  a.run(200);
  b.run(200);
  EXPECT_GT(b.latency_stats().mean(), a.latency_stats().mean());
}

TEST(ExchangeModels, ReputationLosesMoneyToCheaters) {
  ExchangeModelConfig config;
  const auto result = run_reputation_model(config);
  EXPECT_GT(result.value_lost, 0.0);           // the §4.4 problem
  EXPECT_LT(result.delivery_rate(), 1.0);
  // Reputation *bounds* the damage: each cheater can cheat only a few times
  // before being shunned, so losses are far below the malicious fraction.
  EXPECT_LT(result.value_lost, result.value_paid * 0.1);
}

TEST(ExchangeModels, BcwanNeverLosesMoney) {
  ExchangeModelConfig config;
  const auto result = run_bcwan_model(config);
  EXPECT_EQ(result.value_lost, 0.0);           // fair exchange guarantee
  EXPECT_GT(result.gateway_revenue, 0.0);      // incentive preserved
  // But withholding gateways cost wall-clock time (reclaim penalty).
  EXPECT_GT(result.mean_latency_s, config.normal_latency_s);
}

TEST(ExchangeModels, AltruisticHasNoIncentive) {
  ExchangeModelConfig config;
  const auto result = run_altruistic_model(config);
  EXPECT_EQ(result.gateway_revenue, 0.0);      // §3: no gateway incentive
  EXPECT_EQ(result.value_lost, 0.0);
  EXPECT_NEAR(result.delivery_rate(), config.altruistic_fraction, 0.05);
}

TEST(ExchangeModels, WhitewashingDefeatsReputation) {
  ExchangeModelConfig pinned;
  pinned.malicious_fraction = 0.2;
  ExchangeModelConfig sybil = pinned;
  sybil.whitewashing = true;
  const auto a = run_reputation_model(pinned);
  const auto b = run_reputation_model(sybil);
  // Fresh identities make losses scale with interactions, not gateways.
  EXPECT_GT(b.value_lost, a.value_lost * 10);
  EXPECT_GT(b.value_lost, b.value_paid * 0.1);
}

TEST(ExchangeModels, MoreMaliceMoreReputationLoss) {
  ExchangeModelConfig low;
  low.malicious_fraction = 0.1;
  ExchangeModelConfig high;
  high.malicious_fraction = 0.5;
  EXPECT_LT(run_reputation_model(low).value_lost,
            run_reputation_model(high).value_lost);
}

TEST(ExchangeModels, DeterministicForSeed) {
  ExchangeModelConfig config;
  const auto a = run_reputation_model(config);
  const auto b = run_reputation_model(config);
  EXPECT_EQ(a.value_lost, b.value_lost);
  EXPECT_EQ(a.delivered, b.delivered);
}

}  // namespace
}  // namespace bcwan::baseline

# Empty dependencies file for asset_tracking.
# This may be replaced when dependencies are built.

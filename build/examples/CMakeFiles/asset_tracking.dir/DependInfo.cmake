
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/asset_tracking.cpp" "examples/CMakeFiles/asset_tracking.dir/asset_tracking.cpp.o" "gcc" "examples/CMakeFiles/asset_tracking.dir/asset_tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bcwan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bcwan/CMakeFiles/bcwan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bcwan_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/lora/CMakeFiles/bcwan_lora.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/bcwan_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/bcwan_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/bcwan_script.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcwan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/bcwan_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcwan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

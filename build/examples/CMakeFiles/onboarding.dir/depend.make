# Empty dependencies file for onboarding.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/onboarding.dir/onboarding.cpp.o"
  "CMakeFiles/onboarding.dir/onboarding.cpp.o.d"
  "onboarding"
  "onboarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onboarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

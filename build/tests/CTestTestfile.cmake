# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bignum_test "/root/repo/build/tests/bignum_test")
set_tests_properties(bignum_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crypto_test "/root/repo/build/tests/crypto_test")
set_tests_properties(crypto_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(script_test "/root/repo/build/tests/script_test")
set_tests_properties(script_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(chain_test "/root/repo/build/tests/chain_test")
set_tests_properties(chain_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pos_test "/root/repo/build/tests/pos_test")
set_tests_properties(pos_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(p2p_test "/root/repo/build/tests/p2p_test")
set_tests_properties(p2p_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lora_test "/root/repo/build/tests/lora_test")
set_tests_properties(lora_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bcwan_test "/root/repo/build/tests/bcwan_test")
set_tests_properties(bcwan_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;bcwan_test;/root/repo/tests/CMakeLists.txt;0;")

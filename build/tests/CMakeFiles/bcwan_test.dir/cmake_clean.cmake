file(REMOVE_RECURSE
  "CMakeFiles/bcwan_test.dir/bcwan_test.cpp.o"
  "CMakeFiles/bcwan_test.dir/bcwan_test.cpp.o.d"
  "bcwan_test"
  "bcwan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

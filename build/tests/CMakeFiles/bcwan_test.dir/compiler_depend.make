# Empty compiler generated dependencies file for bcwan_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lora_test.dir/lora_test.cpp.o"
  "CMakeFiles/lora_test.dir/lora_test.cpp.o.d"
  "lora_test"
  "lora_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lora_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

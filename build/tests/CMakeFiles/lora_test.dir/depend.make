# Empty dependencies file for lora_test.
# This may be replaced when dependencies are built.

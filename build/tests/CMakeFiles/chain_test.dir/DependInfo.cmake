
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chain_test.cpp" "tests/CMakeFiles/chain_test.dir/chain_test.cpp.o" "gcc" "tests/CMakeFiles/chain_test.dir/chain_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/bcwan_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/bcwan_script.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcwan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/bcwan_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcwan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bcwan_baseline.dir/exchange_models.cpp.o"
  "CMakeFiles/bcwan_baseline.dir/exchange_models.cpp.o.d"
  "CMakeFiles/bcwan_baseline.dir/legacy_lorawan.cpp.o"
  "CMakeFiles/bcwan_baseline.dir/legacy_lorawan.cpp.o.d"
  "libbcwan_baseline.a"
  "libbcwan_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bcwan_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbcwan_baseline.a"
)

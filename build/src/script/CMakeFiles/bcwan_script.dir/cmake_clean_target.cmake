file(REMOVE_RECURSE
  "libbcwan_script.a"
)

# Empty dependencies file for bcwan_script.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/interpreter.cpp" "src/script/CMakeFiles/bcwan_script.dir/interpreter.cpp.o" "gcc" "src/script/CMakeFiles/bcwan_script.dir/interpreter.cpp.o.d"
  "/root/repo/src/script/script.cpp" "src/script/CMakeFiles/bcwan_script.dir/script.cpp.o" "gcc" "src/script/CMakeFiles/bcwan_script.dir/script.cpp.o.d"
  "/root/repo/src/script/templates.cpp" "src/script/CMakeFiles/bcwan_script.dir/templates.cpp.o" "gcc" "src/script/CMakeFiles/bcwan_script.dir/templates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/bcwan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcwan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/bcwan_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

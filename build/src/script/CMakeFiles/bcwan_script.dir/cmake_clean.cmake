file(REMOVE_RECURSE
  "CMakeFiles/bcwan_script.dir/interpreter.cpp.o"
  "CMakeFiles/bcwan_script.dir/interpreter.cpp.o.d"
  "CMakeFiles/bcwan_script.dir/script.cpp.o"
  "CMakeFiles/bcwan_script.dir/script.cpp.o.d"
  "CMakeFiles/bcwan_script.dir/templates.cpp.o"
  "CMakeFiles/bcwan_script.dir/templates.cpp.o.d"
  "libbcwan_script.a"
  "libbcwan_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bcwan_bignum.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bcwan_bignum.dir/biguint.cpp.o"
  "CMakeFiles/bcwan_bignum.dir/biguint.cpp.o.d"
  "CMakeFiles/bcwan_bignum.dir/primes.cpp.o"
  "CMakeFiles/bcwan_bignum.dir/primes.cpp.o.d"
  "libbcwan_bignum.a"
  "libbcwan_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

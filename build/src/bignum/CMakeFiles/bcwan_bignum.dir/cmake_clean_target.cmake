file(REMOVE_RECURSE
  "libbcwan_bignum.a"
)

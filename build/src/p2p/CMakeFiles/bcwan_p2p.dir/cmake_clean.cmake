file(REMOVE_RECURSE
  "CMakeFiles/bcwan_p2p.dir/chain_node.cpp.o"
  "CMakeFiles/bcwan_p2p.dir/chain_node.cpp.o.d"
  "CMakeFiles/bcwan_p2p.dir/event_loop.cpp.o"
  "CMakeFiles/bcwan_p2p.dir/event_loop.cpp.o.d"
  "CMakeFiles/bcwan_p2p.dir/network.cpp.o"
  "CMakeFiles/bcwan_p2p.dir/network.cpp.o.d"
  "libbcwan_p2p.a"
  "libbcwan_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbcwan_p2p.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/chain_node.cpp" "src/p2p/CMakeFiles/bcwan_p2p.dir/chain_node.cpp.o" "gcc" "src/p2p/CMakeFiles/bcwan_p2p.dir/chain_node.cpp.o.d"
  "/root/repo/src/p2p/event_loop.cpp" "src/p2p/CMakeFiles/bcwan_p2p.dir/event_loop.cpp.o" "gcc" "src/p2p/CMakeFiles/bcwan_p2p.dir/event_loop.cpp.o.d"
  "/root/repo/src/p2p/network.cpp" "src/p2p/CMakeFiles/bcwan_p2p.dir/network.cpp.o" "gcc" "src/p2p/CMakeFiles/bcwan_p2p.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/bcwan_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcwan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/bcwan_script.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcwan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/bcwan_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bcwan_p2p.
# This may be replaced when dependencies are built.

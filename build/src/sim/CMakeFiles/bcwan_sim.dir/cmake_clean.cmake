file(REMOVE_RECURSE
  "CMakeFiles/bcwan_sim.dir/scenario.cpp.o"
  "CMakeFiles/bcwan_sim.dir/scenario.cpp.o.d"
  "libbcwan_sim.a"
  "libbcwan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbcwan_sim.a"
)

# Empty compiler generated dependencies file for bcwan_sim.
# This may be replaced when dependencies are built.

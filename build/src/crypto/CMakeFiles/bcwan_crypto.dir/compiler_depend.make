# Empty compiler generated dependencies file for bcwan_crypto.
# This may be replaced when dependencies are built.

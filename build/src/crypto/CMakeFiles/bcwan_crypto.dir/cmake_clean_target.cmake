file(REMOVE_RECURSE
  "libbcwan_crypto.a"
)

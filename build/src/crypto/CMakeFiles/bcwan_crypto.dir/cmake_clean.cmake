file(REMOVE_RECURSE
  "CMakeFiles/bcwan_crypto.dir/aes.cpp.o"
  "CMakeFiles/bcwan_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/bcwan_crypto.dir/base58.cpp.o"
  "CMakeFiles/bcwan_crypto.dir/base58.cpp.o.d"
  "CMakeFiles/bcwan_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/bcwan_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/bcwan_crypto.dir/hmac.cpp.o"
  "CMakeFiles/bcwan_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/bcwan_crypto.dir/ripemd160.cpp.o"
  "CMakeFiles/bcwan_crypto.dir/ripemd160.cpp.o.d"
  "CMakeFiles/bcwan_crypto.dir/rsa.cpp.o"
  "CMakeFiles/bcwan_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/bcwan_crypto.dir/sha256.cpp.o"
  "CMakeFiles/bcwan_crypto.dir/sha256.cpp.o.d"
  "libbcwan_crypto.a"
  "libbcwan_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

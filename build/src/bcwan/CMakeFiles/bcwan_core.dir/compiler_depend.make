# Empty compiler generated dependencies file for bcwan_core.
# This may be replaced when dependencies are built.

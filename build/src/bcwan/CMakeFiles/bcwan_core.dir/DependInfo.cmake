
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bcwan/directory.cpp" "src/bcwan/CMakeFiles/bcwan_core.dir/directory.cpp.o" "gcc" "src/bcwan/CMakeFiles/bcwan_core.dir/directory.cpp.o.d"
  "/root/repo/src/bcwan/election.cpp" "src/bcwan/CMakeFiles/bcwan_core.dir/election.cpp.o" "gcc" "src/bcwan/CMakeFiles/bcwan_core.dir/election.cpp.o.d"
  "/root/repo/src/bcwan/envelope.cpp" "src/bcwan/CMakeFiles/bcwan_core.dir/envelope.cpp.o" "gcc" "src/bcwan/CMakeFiles/bcwan_core.dir/envelope.cpp.o.d"
  "/root/repo/src/bcwan/fair_exchange.cpp" "src/bcwan/CMakeFiles/bcwan_core.dir/fair_exchange.cpp.o" "gcc" "src/bcwan/CMakeFiles/bcwan_core.dir/fair_exchange.cpp.o.d"
  "/root/repo/src/bcwan/gateway_agent.cpp" "src/bcwan/CMakeFiles/bcwan_core.dir/gateway_agent.cpp.o" "gcc" "src/bcwan/CMakeFiles/bcwan_core.dir/gateway_agent.cpp.o.d"
  "/root/repo/src/bcwan/recipient_agent.cpp" "src/bcwan/CMakeFiles/bcwan_core.dir/recipient_agent.cpp.o" "gcc" "src/bcwan/CMakeFiles/bcwan_core.dir/recipient_agent.cpp.o.d"
  "/root/repo/src/bcwan/sensor_node.cpp" "src/bcwan/CMakeFiles/bcwan_core.dir/sensor_node.cpp.o" "gcc" "src/bcwan/CMakeFiles/bcwan_core.dir/sensor_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lora/CMakeFiles/bcwan_lora.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/bcwan_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/bcwan_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/bcwan_script.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcwan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcwan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/bcwan_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

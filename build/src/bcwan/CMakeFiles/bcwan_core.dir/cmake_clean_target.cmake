file(REMOVE_RECURSE
  "libbcwan_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bcwan_core.dir/directory.cpp.o"
  "CMakeFiles/bcwan_core.dir/directory.cpp.o.d"
  "CMakeFiles/bcwan_core.dir/election.cpp.o"
  "CMakeFiles/bcwan_core.dir/election.cpp.o.d"
  "CMakeFiles/bcwan_core.dir/envelope.cpp.o"
  "CMakeFiles/bcwan_core.dir/envelope.cpp.o.d"
  "CMakeFiles/bcwan_core.dir/fair_exchange.cpp.o"
  "CMakeFiles/bcwan_core.dir/fair_exchange.cpp.o.d"
  "CMakeFiles/bcwan_core.dir/gateway_agent.cpp.o"
  "CMakeFiles/bcwan_core.dir/gateway_agent.cpp.o.d"
  "CMakeFiles/bcwan_core.dir/recipient_agent.cpp.o"
  "CMakeFiles/bcwan_core.dir/recipient_agent.cpp.o.d"
  "CMakeFiles/bcwan_core.dir/sensor_node.cpp.o"
  "CMakeFiles/bcwan_core.dir/sensor_node.cpp.o.d"
  "libbcwan_core.a"
  "libbcwan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

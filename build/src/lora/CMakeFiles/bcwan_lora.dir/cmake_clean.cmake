file(REMOVE_RECURSE
  "CMakeFiles/bcwan_lora.dir/airtime.cpp.o"
  "CMakeFiles/bcwan_lora.dir/airtime.cpp.o.d"
  "CMakeFiles/bcwan_lora.dir/frame.cpp.o"
  "CMakeFiles/bcwan_lora.dir/frame.cpp.o.d"
  "CMakeFiles/bcwan_lora.dir/radio.cpp.o"
  "CMakeFiles/bcwan_lora.dir/radio.cpp.o.d"
  "libbcwan_lora.a"
  "libbcwan_lora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_lora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbcwan_lora.a"
)

# Empty dependencies file for bcwan_lora.
# This may be replaced when dependencies are built.

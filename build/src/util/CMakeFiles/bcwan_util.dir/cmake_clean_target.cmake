file(REMOVE_RECURSE
  "libbcwan_util.a"
)

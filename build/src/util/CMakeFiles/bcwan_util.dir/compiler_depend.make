# Empty compiler generated dependencies file for bcwan_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bcwan_util.dir/bytes.cpp.o"
  "CMakeFiles/bcwan_util.dir/bytes.cpp.o.d"
  "CMakeFiles/bcwan_util.dir/rng.cpp.o"
  "CMakeFiles/bcwan_util.dir/rng.cpp.o.d"
  "CMakeFiles/bcwan_util.dir/serial.cpp.o"
  "CMakeFiles/bcwan_util.dir/serial.cpp.o.d"
  "CMakeFiles/bcwan_util.dir/stats.cpp.o"
  "CMakeFiles/bcwan_util.dir/stats.cpp.o.d"
  "libbcwan_util.a"
  "libbcwan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bcwan_chain.dir/block.cpp.o"
  "CMakeFiles/bcwan_chain.dir/block.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/blockchain.cpp.o"
  "CMakeFiles/bcwan_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/mempool.cpp.o"
  "CMakeFiles/bcwan_chain.dir/mempool.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/miner.cpp.o"
  "CMakeFiles/bcwan_chain.dir/miner.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/pos.cpp.o"
  "CMakeFiles/bcwan_chain.dir/pos.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/transaction.cpp.o"
  "CMakeFiles/bcwan_chain.dir/transaction.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/utxo.cpp.o"
  "CMakeFiles/bcwan_chain.dir/utxo.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/validation.cpp.o"
  "CMakeFiles/bcwan_chain.dir/validation.cpp.o.d"
  "CMakeFiles/bcwan_chain.dir/wallet.cpp.o"
  "CMakeFiles/bcwan_chain.dir/wallet.cpp.o.d"
  "libbcwan_chain.a"
  "libbcwan_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcwan_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbcwan_chain.a"
)

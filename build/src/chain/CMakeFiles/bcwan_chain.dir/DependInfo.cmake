
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/mempool.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/mempool.cpp.o.d"
  "/root/repo/src/chain/miner.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/miner.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/miner.cpp.o.d"
  "/root/repo/src/chain/pos.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/pos.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/pos.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/transaction.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/transaction.cpp.o.d"
  "/root/repo/src/chain/utxo.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/utxo.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/utxo.cpp.o.d"
  "/root/repo/src/chain/validation.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/validation.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/validation.cpp.o.d"
  "/root/repo/src/chain/wallet.cpp" "src/chain/CMakeFiles/bcwan_chain.dir/wallet.cpp.o" "gcc" "src/chain/CMakeFiles/bcwan_chain.dir/wallet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/script/CMakeFiles/bcwan_script.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bcwan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bcwan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/bcwan_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

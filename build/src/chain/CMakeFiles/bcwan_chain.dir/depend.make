# Empty dependencies file for bcwan_chain.
# This may be replaced when dependencies are built.

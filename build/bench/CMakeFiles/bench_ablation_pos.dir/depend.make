# Empty dependencies file for bench_ablation_pos.
# This may be replaced when dependencies are built.

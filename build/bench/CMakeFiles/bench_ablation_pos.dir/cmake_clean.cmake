file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pos.dir/bench_ablation_pos.cpp.o"
  "CMakeFiles/bench_ablation_pos.dir/bench_ablation_pos.cpp.o.d"
  "bench_ablation_pos"
  "bench_ablation_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_claim_crypto.
# This may be replaced when dependencies are built.

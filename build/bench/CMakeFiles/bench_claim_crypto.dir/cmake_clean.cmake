file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_crypto.dir/bench_claim_crypto.cpp.o"
  "CMakeFiles/bench_claim_crypto.dir/bench_claim_crypto.cpp.o.d"
  "bench_claim_crypto"
  "bench_claim_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_chain_tps.dir/bench_claim_chain_tps.cpp.o"
  "CMakeFiles/bench_claim_chain_tps.dir/bench_claim_chain_tps.cpp.o.d"
  "bench_claim_chain_tps"
  "bench_claim_chain_tps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_chain_tps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_claim_chain_tps.
# This may be replaced when dependencies are built.

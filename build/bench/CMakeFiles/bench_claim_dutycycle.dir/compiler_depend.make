# Empty compiler generated dependencies file for bench_claim_dutycycle.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_dutycycle.dir/bench_claim_dutycycle.cpp.o"
  "CMakeFiles/bench_claim_dutycycle.dir/bench_claim_dutycycle.cpp.o.d"
  "bench_claim_dutycycle"
  "bench_claim_dutycycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_dutycycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_listing1_script.
# This may be replaced when dependencies are built.

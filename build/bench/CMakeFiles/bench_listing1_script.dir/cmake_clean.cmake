file(REMOVE_RECURSE
  "CMakeFiles/bench_listing1_script.dir/bench_listing1_script.cpp.o"
  "CMakeFiles/bench_listing1_script.dir/bench_listing1_script.cpp.o.d"
  "bench_listing1_script"
  "bench_listing1_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing1_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig4_payload.
# This may be replaced when dependencies are built.

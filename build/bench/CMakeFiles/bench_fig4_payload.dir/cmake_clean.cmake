file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_payload.dir/bench_fig4_payload.cpp.o"
  "CMakeFiles/bench_fig4_payload.dir/bench_fig4_payload.cpp.o.d"
  "bench_fig4_payload"
  "bench_fig4_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

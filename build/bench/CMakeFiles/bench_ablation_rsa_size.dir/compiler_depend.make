# Empty compiler generated dependencies file for bench_ablation_rsa_size.
# This may be replaced when dependencies are built.

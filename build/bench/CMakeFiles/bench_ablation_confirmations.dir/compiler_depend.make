# Empty compiler generated dependencies file for bench_ablation_confirmations.
# This may be replaced when dependencies are built.

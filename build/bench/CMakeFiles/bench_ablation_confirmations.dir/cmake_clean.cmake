file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_confirmations.dir/bench_ablation_confirmations.cpp.o"
  "CMakeFiles/bench_ablation_confirmations.dir/bench_ablation_confirmations.cpp.o.d"
  "bench_ablation_confirmations"
  "bench_ablation_confirmations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_confirmations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

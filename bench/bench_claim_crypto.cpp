// CLM-CRYPTO — primitive costs behind the paper's §5.1 design choices
// (AES-256-CBC blocks, RSA-512 blobs and signatures, ECDSA transactions),
// via google-benchmark.
#include <benchmark/benchmark.h>

#include "crypto/aes.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcwan;

void BM_Sha256_64B(benchmark::State& state) {
  util::Rng rng(1);
  const util::Bytes data = rng.bytes(64);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256d_Txid(benchmark::State& state) {
  util::Rng rng(2);
  const util::Bytes data = rng.bytes(250);  // typical tx size
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256d(data));
}
BENCHMARK(BM_Sha256d_Txid);

void BM_Ripemd160_32B(benchmark::State& state) {
  util::Rng rng(3);
  const util::Bytes data = rng.bytes(32);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::ripemd160(data));
}
BENCHMARK(BM_Ripemd160_32B);

void BM_Hash160_Pubkey(benchmark::State& state) {
  util::Rng rng(4);
  const util::Bytes data = rng.bytes(65);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::hash160(data));
}
BENCHMARK(BM_Hash160_Pubkey);

void BM_Aes256CbcEncryptReading(benchmark::State& state) {
  util::Rng rng(5);
  crypto::AesKey256 key{};
  crypto::AesBlock iv{};
  const util::Bytes reading = rng.bytes(13);  // paper-sized sensor reading
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes256_cbc_encrypt(key, iv, reading));
  }
}
BENCHMARK(BM_Aes256CbcEncryptReading);

void BM_RsaKeygen(benchmark::State& state) {
  util::Rng rng(6);
  const auto bits = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_generate(rng, bits));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaEncryptBlob(benchmark::State& state) {
  util::Rng rng(7);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  const util::Bytes blob = rng.bytes(34);  // the Fig. 4 blob
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_encrypt(kp.pub, blob, rng));
  }
}
BENCHMARK(BM_RsaEncryptBlob);

void BM_RsaDecryptBlob(benchmark::State& state) {
  util::Rng rng(8);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  const util::Bytes ct = crypto::rsa_encrypt(kp.pub, rng.bytes(34), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_decrypt(kp.priv, ct));
  }
}
BENCHMARK(BM_RsaDecryptBlob);

void BM_RsaSignEnvelope(benchmark::State& state) {
  util::Rng rng(9);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  const util::Bytes payload = rng.bytes(64 + 70);  // Em || ePk
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, payload));
  }
}
BENCHMARK(BM_RsaSignEnvelope);

void BM_RsaVerifyEnvelope(benchmark::State& state) {
  util::Rng rng(10);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  const util::Bytes payload = rng.bytes(64 + 70);
  const util::Bytes sig = crypto::rsa_sign(kp.priv, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, payload, sig));
  }
}
BENCHMARK(BM_RsaVerifyEnvelope);

void BM_RsaPairCheck(benchmark::State& state) {
  util::Rng rng(11);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_pair_matches(kp.pub, kp.priv));
  }
}
BENCHMARK(BM_RsaPairCheck);

void BM_EcdsaSign(benchmark::State& state) {
  util::Rng rng(12);
  const crypto::EcKeyPair kp = crypto::ec_generate(rng);
  const util::Bytes msg = rng.bytes(250);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ecdsa_sign(kp.priv, msg));
  }
}
BENCHMARK(BM_EcdsaSign)->Unit(benchmark::kMillisecond);

void BM_EcdsaVerify(benchmark::State& state) {
  util::Rng rng(13);
  const crypto::EcKeyPair kp = crypto::ec_generate(rng);
  const util::Bytes msg = rng.bytes(250);
  const crypto::EcdsaSignature sig = crypto::ecdsa_sign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ecdsa_verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_EcdsaVerify)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

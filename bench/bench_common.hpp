// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include <cstdio>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace bcwan::bench {

inline void print_header(const char* experiment_id, const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("==========================================================\n");
}

/// Exchange count override for quick local runs:
/// BCWAN_EXCHANGES=200 ./bench_fig5_latency
inline std::size_t exchange_count(std::size_t paper_default) {
  if (const char* env = std::getenv("BCWAN_EXCHANGES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return paper_default;
}

inline void print_latency_figure(const util::SampleStats& stats,
                                 double paper_mean_s, double hist_max_s) {
  std::printf("exchanges measured : %zu\n", stats.count());
  std::printf("mean latency       : %.3f s   (paper: %.3f s)\n", stats.mean(),
              paper_mean_s);
  std::printf("median             : %.3f s\n", stats.median());
  std::printf("p95 / p99          : %.3f / %.3f s\n", stats.percentile(95),
              stats.percentile(99));
  std::printf("min / max          : %.3f / %.3f s\n", stats.min(),
              stats.max());
  std::printf("\nlatency distribution (s):\n%s\n",
              stats.histogram(0.0, hist_max_s, 20).c_str());
}

/// The paper's Figs. 5/6 are per-exchange series; write one as CSV
/// (exchange index, completion time in virtual seconds, latency seconds)
/// for external plotting.
template <typename Records>
inline void dump_series_csv(const char* path, const Records& records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("(could not write %s)\n", path);
    return;
  }
  std::fprintf(f, "exchange,completed_at_s,latency_s\n");
  std::size_t index = 0;
  for (const auto& record : records) {
    std::fprintf(f, "%zu,%.3f,%.3f\n", index++,
                 util::to_seconds(record.decrypted_at), record.latency_s());
  }
  std::fclose(f);
  std::printf("per-exchange series written to %s\n", path);
}

}  // namespace bcwan::bench

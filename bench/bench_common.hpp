// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace bcwan::bench {

/// Minimal streaming JSON emitter for the BENCH_*.json result files. Tracks
/// the container stack so call sites never hand-manage commas, newlines or
/// indentation (the bug-prone part of the old per-bench fprintf blocks).
/// Usage:
///   JsonWriter w(f);
///   w.begin_object();
///   w.str("experiment", "VAL-TPUT").boolean("smoke", smoke);
///   w.begin_array("configs");
///   w.begin_object().str("name", name).num("ms", ms, "%.3f").end_object();
///   w.end_array();
///   w.end_object();
///   w.finish();
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  JsonWriter& begin_object(const char* key = nullptr) {
    open(key, '{');
    return *this;
  }
  JsonWriter& end_object() {
    close('}');
    return *this;
  }
  JsonWriter& begin_array(const char* key = nullptr) {
    open(key, '[');
    return *this;
  }
  JsonWriter& end_array() {
    close(']');
    return *this;
  }

  JsonWriter& str(const char* key, const std::string& value) {
    prefix(key);
    std::fputc('"', f_);
    for (const char c : value) {
      if (c == '"' || c == '\\') {
        std::fputc('\\', f_);
        std::fputc(c, f_);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        std::fprintf(f_, "\\u%04x", c);
      } else {
        std::fputc(c, f_);
      }
    }
    std::fputc('"', f_);
    return *this;
  }
  JsonWriter& boolean(const char* key, bool value) {
    prefix(key);
    std::fputs(value ? "true" : "false", f_);
    return *this;
  }
  /// `fmt` must consume exactly one double (e.g. "%.3f").
  JsonWriter& num(const char* key, double value, const char* fmt = "%.6g") {
    prefix(key);
    std::fprintf(f_, fmt, value);
    return *this;
  }
  JsonWriter& uint(const char* key, unsigned long long value) {
    prefix(key);
    std::fprintf(f_, "%llu", value);
    return *this;
  }
  JsonWriter& integer(const char* key, long long value) {
    prefix(key);
    std::fprintf(f_, "%lld", value);
    return *this;
  }

  /// Call once after the top-level container closes.
  void finish() { std::fputc('\n', f_); }

 private:
  void indent() {
    for (std::size_t i = 0; i < counts_.size(); ++i) std::fputs("  ", f_);
  }
  void prefix(const char* key) {
    if (!counts_.empty()) {
      if (counts_.back()++ > 0) std::fputc(',', f_);
      std::fputc('\n', f_);
      indent();
    }
    if (key != nullptr) std::fprintf(f_, "\"%s\": ", key);
  }
  void open(const char* key, char bracket) {
    prefix(key);
    std::fputc(bracket, f_);
    counts_.push_back(0);
  }
  void close(char bracket) {
    const std::size_t children = counts_.back();
    counts_.pop_back();
    if (children > 0) {
      std::fputc('\n', f_);
      indent();
    }
    std::fputc(bracket, f_);
  }

  std::FILE* f_;
  std::vector<std::size_t> counts_;
};

/// Peak resident set size of this process (VmHWM from /proc/self/status),
/// in bytes. Returns 0 on platforms without procfs. All JSON-emitting
/// benches report this so memory regressions gate alongside throughput.
inline unsigned long long peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

inline void print_header(const char* experiment_id, const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("==========================================================\n");
}

/// Exchange count override for quick local runs:
/// BCWAN_EXCHANGES=200 ./bench_fig5_latency
inline std::size_t exchange_count(std::size_t paper_default) {
  if (const char* env = std::getenv("BCWAN_EXCHANGES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return paper_default;
}

inline void print_latency_figure(const util::SampleStats& stats,
                                 double paper_mean_s, double hist_max_s) {
  std::printf("exchanges measured : %zu\n", stats.count());
  std::printf("mean latency       : %.3f s   (paper: %.3f s)\n", stats.mean(),
              paper_mean_s);
  std::printf("median             : %.3f s\n", stats.median());
  std::printf("p95 / p99          : %.3f / %.3f s\n", stats.percentile(95),
              stats.percentile(99));
  std::printf("min / max          : %.3f / %.3f s\n", stats.min(),
              stats.max());
  std::printf("\nlatency distribution (s):\n%s\n",
              stats.histogram(0.0, hist_max_s, 20).c_str());
}

/// The paper's Figs. 5/6 are per-exchange series; write one as CSV
/// (exchange index, completion time in virtual seconds, latency seconds)
/// for external plotting.
template <typename Records>
inline void dump_series_csv(const char* path, const Records& records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("(could not write %s)\n", path);
    return;
  }
  std::fprintf(f, "exchange,completed_at_s,latency_s\n");
  std::size_t index = 0;
  for (const auto& record : records) {
    std::fprintf(f, "%zu,%.3f,%.3f\n", index++,
                 util::to_seconds(record.decrypted_at), record.latency_s());
  }
  std::fclose(f);
  std::printf("per-exchange series written to %s\n", path);
}

}  // namespace bcwan::bench

// FIG4 — the encrypted message layout (paper §5.1, Fig. 4).
//
// "The original message (plaintext) is split into a fixed block size (16
// bytes) ... our obtained ciphertext is about 16 bytes. Additionally ...
// the node has to send the random IV ... We end up having 34 bytes."
// And: "we effectively have a predefined minimum payload of 128 bytes,
// 64 bytes for the double data encryption and 64 bytes for the signature."
//
// This bench regenerates the byte accounting across plaintext sizes and
// checks the layout byte-for-byte.
#include <cassert>
#include <cstdio>

#include "bench_common.hpp"
#include "bcwan/envelope.hpp"
#include "lora/airtime.hpp"

int main() {
  using namespace bcwan;
  bench::print_header("FIG4", "encrypted message layout and payload sizes");

  util::Rng rng(4242);
  const script::PubKeyHash recipient =
      script::to_pubkey_hash(util::str_bytes("recipient"));
  const core::NodeProvisioning prov = core::provision_node(1, recipient, rng);
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);

  std::printf("%-12s %-12s %-10s %-8s %-8s %-10s\n", "plaintext_B",
              "ciphertext_B", "blob_B", "Em_B", "Sig_B", "lora_payload_B");
  for (std::size_t pt_size : {1u, 4u, 8u, 12u, 15u}) {
    const util::Bytes reading(pt_size, 0x41);

    // Reproduce the blob explicitly to show the accounting.
    lora::InnerBlob blob;
    const util::Bytes iv = rng.bytes(blob.iv.size());
    std::copy(iv.begin(), iv.end(), blob.iv.begin());
    blob.ciphertext = crypto::aes256_cbc_encrypt(prov.k, blob.iv, reading);
    const util::Bytes encoded = blob.encode();

    const core::Envelope env =
        core::seal_reading(prov, reading, ephemeral.pub, rng);

    std::printf("%-12zu %-12zu %-10zu %-8zu %-8zu %-10zu\n", pt_size,
                blob.ciphertext.size(), encoded.size(), env.em.size(),
                env.sig.size(), env.em.size() + env.sig.size());

    // Layout assertions: Fig. 4 exactly.
    assert(blob.ciphertext.size() == 16);           // one AES block
    assert(encoded.size() == lora::kInnerBlobSize); // 34 bytes
    assert(encoded[0] == 16);                       // IV length marker
    assert(encoded[17] == 16);                      // ciphertext length marker
    assert(env.em.size() == lora::kDoubleEncSize);  // 64 B
    assert(env.sig.size() == lora::kSignatureSize); // 64 B
  }

  lora::LoraConfig sf7;
  std::printf(
      "\npaper accounting : 1 + 16 + 1 + 16 = 34-byte blob (Fig. 4)\n"
      "                   64 B Em + 64 B Sig = 128 B LoRa payload (§5.1)\n"
      "frame on the wire: header %zu B + @R 20 B + payload 128 B = %zu B\n"
      "airtime at SF7   : %.1f ms (132 B paper accounting: %.1f ms)\n",
      lora::kFrameHeaderSize, lora::UplinkDataFrame::wire_size(),
      1000.0 * lora::airtime_s(sf7, lora::UplinkDataFrame::wire_size()),
      1000.0 * lora::airtime_s(sf7, 132));
  std::printf("\nall layout assertions passed.\n");
  return 0;
}

#!/usr/bin/env python3
"""Bench result gate for CI.

Validates every BENCH_*.json / TELEMETRY_*.json in a results directory
against a per-experiment schema, then compares each experiment's headline
metric against the committed baseline of the same name. A smoke run whose
headline regresses more than the allowed fraction (default 30%) fails the
job — catching "the persistence refactor made replay 10x slower" before it
merges, without demanding bit-identical timings from shared CI runners.

Usage:
  check_bench_json.py --results build/bench --baseline . [--threshold 0.30]

Exit codes: 0 ok, 1 regression, 2 schema violation, 3 usage/io error.
"""

import argparse
import json
import sys
from pathlib import Path

# Required keys per experiment id. Every listed key must exist and be of the
# given type (int accepts float-typed JSON numbers and vice versa).
NUM = (int, float)
SCHEMAS = {
    "STORE-REPLAY": {
        "smoke": bool,
        "blocks": NUM,
        "repetitions": NUM,
        "log_mib": NUM,
        "snapshot_bytes": NUM,
        "append_fsync_ms": NUM,
        "append_nofsync_ms": NUM,
        "snapshot_ms": NUM,
        "replay_ms": NUM,
        "replay_blocks_per_s": NUM,
        "replay_mib_per_s": NUM,
        "parallel_replay_ms": NUM,
        "parallel_replay_blocks_per_s": NUM,
        "incremental_snapshot_bytes": NUM,
        "incremental_snapshot_bytes_small_state": NUM,
        "base_snapshot_bytes_small_state": NUM,
        "base_snapshot_bytes_large_state": NUM,
        "compaction_ms": NUM,
        "snapshot_cost_independent": bool,
        "snapshot_resume_ms": NUM,
        "resume_speedup_vs_replay": NUM,
        "peak_rss_bytes": NUM,
    },
    "VAL-TPUT": {
        "smoke": bool,
        "block_txs": NUM,
        "repetitions": NUM,
        "verdicts_match": bool,
        "cold_connect_ms": NUM,
        "cold_speedup_vs_serial": NUM,
        "rsa_reveal_txs": NUM,
        "rsa_plain_ms": NUM,
        "rsa_crt_ms": NUM,
        "rsa_crt_speedup": NUM,
        "configs": list,
        "peak_rss_bytes": NUM,
    },
    "HASH-TPUT": {
        "smoke": bool,
        "detected_backend": str,
        "equivalence_ok": bool,
        "axes": list,
        "stream_speedup_vs_scalar": NUM,
        "sighash_speedup_vs_naive": NUM,
        "peak_rss_bytes": NUM,
    },
    "ADV-MATRIX": {
        "smoke": bool,
        "exchanges_per_level": NUM,
        "attacks_launched": NUM,
        "attacks_defended": NUM,
        "defense_success_ratio": NUM,
        "economic_invariants_hold": bool,
        "levels": list,
        "peak_rss_bytes": NUM,
    },
    "SCALE": {
        "smoke": bool,
        "cores": NUM,
        "gateways": NUM,
        "sensors": NUM,
        "recipients": NUM,
        "virtual_seconds": NUM,
        "exchanges_completed": NUM,
        "events_executed": NUM,
        "wall_seconds": NUM,
        "exchanges_per_sec_wall": NUM,
        "events_per_sec_wall": NUM,
        "latency_mean_s": NUM,
        "verify_failures": NUM,
        "verify_clean": bool,
        "backend_trace_equal": bool,
        "chain_tips_equal": bool,
        "scale_target_met": bool,
        "peak_rss_bytes": NUM,
        "peak_rss_gib": NUM,
        "sharded_speedup_8t": NUM,
        "ablation": list,
    },
    "CLUSTER": {
        "smoke": bool,
        "nodes": NUM,
        "exchanges": NUM,
        "exchanges_completed": NUM,
        "wall_seconds": NUM,
        "exchanges_per_s": NUM,
        "latency_p50_ms": NUM,
        "latency_p99_ms": NUM,
        "frames_sent": NUM,
        "bytes_sent": NUM,
        "converged": bool,
        "peak_rss_bytes": NUM,
    },
}

# Lists of (metric, direction): direction "higher" means larger values are
# better. Only ratio-style or machine-stable metrics are gated; raw
# millisecond numbers shift with runner hardware and stay schema-only.
HEADLINES = {
    # incremental_snapshot_bytes gates "a delta grew back into a full base"
    # (lower is better); compaction_ms keeps the fold itself bounded.
    "STORE-REPLAY": [("replay_blocks_per_s", "higher"),
                     ("parallel_replay_blocks_per_s", "higher"),
                     ("incremental_snapshot_bytes", "lower"),
                     ("compaction_ms", "lower")],
    "VAL-TPUT": [("best_config_speedup", "higher"),  # derived, see below
                 ("cold_speedup_vs_serial", "higher"),
                 ("rsa_crt_speedup", "higher")],
    "HASH-TPUT": [("sighash_speedup_vs_naive", "higher")],
    "ADV-MATRIX": [("defense_success_ratio", "higher")],
    # SCALE smoke runs a much smaller city than the committed full
    # baseline, so a smoke run's per-second throughput sits *above* the
    # baseline; the gate still catches order-of-magnitude slowdowns.
    "SCALE": [("exchanges_per_sec_wall", "higher"),
              ("peak_rss_gib", "lower")],
    # Real-socket exchange throughput: localhost RTTs are stable enough on
    # shared runners for an order-of-magnitude gate; raw ms percentiles
    # stay schema-only.
    "CLUSTER": [("exchanges_per_s", "higher")],
}

# Hard correctness bits: if present and false, fail regardless of timings.
# backend_trace_equal / chain_tips_equal are the cross-backend determinism
# gates (serial vs sharded event loop must be bit-identical).
# snapshot_cost_independent asserts the tentpole property of incremental
# snapshots: a delta's size tracks the change window, not the UTXO set.
CORRECTNESS_FLAGS = ["equivalence_ok", "verdicts_match",
                     "economic_invariants_hold", "verify_clean",
                     "backend_trace_equal", "chain_tips_equal",
                     "converged", "snapshot_cost_independent"]


def fail(code, msg):
    print(f"check_bench_json: FAIL: {msg}")
    sys.exit(code)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(2, f"{path}: unreadable or invalid JSON ({e})")


def check_schema(path, doc):
    if "experiment" not in doc or not isinstance(doc["experiment"], str):
        fail(2, f"{path}: missing string 'experiment' field")
    schema = SCHEMAS.get(doc["experiment"])
    if schema is None:
        print(f"  {path.name}: experiment {doc['experiment']!r} "
              "has no registered schema (skipping field checks)")
        return
    for key, expected in schema.items():
        if key not in doc:
            fail(2, f"{path}: missing required key {key!r} "
                    f"for {doc['experiment']}")
        if not isinstance(doc[key], expected):
            fail(2, f"{path}: key {key!r} has type "
                    f"{type(doc[key]).__name__}, expected {expected}")
    for flag in CORRECTNESS_FLAGS:
        if flag in doc and doc[flag] is not True:
            fail(1, f"{path}: correctness flag {flag!r} is false")


def check_telemetry(path, doc):
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(2, f"{path}: telemetry JSON missing object {section!r}")
    for section in ("counters", "gauges"):
        for name, value in doc[section].items():
            if not isinstance(value, NUM):
                fail(2, f"{path}: {section}[{name!r}] is not numeric")
            if isinstance(value, NUM) and value < 0 and section == "counters":
                fail(2, f"{path}: counter {name!r} is negative")


def headline_value(doc, metric):
    if metric == "best_config_speedup":
        configs = doc.get("configs") or []
        values = [c.get("speedup_vs_serial") for c in configs
                  if isinstance(c.get("speedup_vs_serial"), NUM)]
        return max(values) if values else None
    value = doc.get(metric)
    return value if isinstance(value, NUM) else None


def check_regression(path, doc, baseline_dir, threshold):
    if doc["experiment"] not in HEADLINES:
        return
    base_path = baseline_dir / path.name
    if not base_path.exists():
        print(f"  {path.name}: no committed baseline, skipping "
              "regression check")
        return
    base = load(base_path)
    for metric, direction in HEADLINES[doc["experiment"]]:
        fresh_value = headline_value(doc, metric)
        base_value = headline_value(base, metric)
        if base_value is None:
            # A headline added after the baseline was committed: schema
            # checks already guarantee the fresh run has it; gate it once
            # the baseline is regenerated.
            print(f"  {path.name}: {metric} absent from baseline, skipping")
            continue
        if fresh_value is None or base_value == 0:
            fail(2, f"{path}: headline metric {metric!r} missing or zero")
        ratio = (fresh_value / base_value if direction == "higher"
                 else base_value / fresh_value)
        verdict = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        print(f"  {path.name}: {metric} fresh={fresh_value:.3f} "
              f"baseline={base_value:.3f} ratio={ratio:.2f} -> {verdict}")
        if verdict != "ok":
            fail(1, f"{path.name}: {metric} regressed beyond "
                    f"{threshold:.0%} (ratio {ratio:.2f})")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--results", required=True,
                    help="directory with freshly produced *_*.json files")
    ap.add_argument("--baseline", default=".",
                    help="directory with committed baseline JSON")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="allowed fractional regression (default 0.30)")
    args = ap.parse_args()

    results = Path(args.results)
    baseline = Path(args.baseline)
    if not results.is_dir():
        fail(3, f"results directory {results} does not exist")

    bench_files = sorted(results.glob("BENCH_*.json"))
    telemetry_files = sorted(results.glob("TELEMETRY_*.json"))
    if not bench_files and not telemetry_files:
        fail(3, f"no BENCH_*.json or TELEMETRY_*.json under {results}")

    print(f"checking {len(bench_files)} bench + {len(telemetry_files)} "
          f"telemetry files under {results}")
    for path in bench_files:
        doc = load(path)
        check_schema(path, doc)
        check_regression(path, doc, baseline, args.threshold)
    for path in telemetry_files:
        check_telemetry(path, load(path))
    print("check_bench_json: all checks passed")


if __name__ == "__main__":
    main()

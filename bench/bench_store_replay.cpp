// STORE-REPLAY: durable chainstate persistence cost and recovery speed.
//
// Measures the three prices a store-backed daemon pays:
//   1. append overhead — blocks/s into the CRC'd block log, with and
//      without per-append fsync (daemon vs bulk-sim configuration);
//   2. snapshot cost — serialize + atomic tmp/fsync/rename publish;
//   3. recovery — cold ChainStore::open() replaying the full log vs
//      resuming from the newest snapshot, as replay blocks/s and MB/s.
//
// Results are printed and written to BENCH_store.json (schema checked by
// bench/check_bench_json.py in CI; the smoke run gates regressions on
// replay_blocks_per_s).
//
// BCWAN_SMOKE=1 shrinks the chain for CI sanity runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "store/snapshot.hpp"
#include "store/store.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

using namespace bcwan;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace { double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
} }  // namespace

namespace {

chain::ChainParams bench_params() {
  chain::ChainParams params;
  params.pow_zero_bits = 4;  // grinding is not what this bench measures
  params.coinbase_maturity = 2;
  return params;
}

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "bcwan-bench-store-XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// Deterministic block source: every other block spends, so records carry
/// real undo data.
struct BlockFactory {
  chain::ChainParams params = bench_params();
  chain::Blockchain chain{params};
  chain::Mempool pool{params};
  chain::Wallet miner_wallet = chain::Wallet::from_seed("bench-miner");
  chain::Wallet alice = chain::Wallet::from_seed("bench-alice");
  chain::Miner miner{params, miner_wallet.pkh()};
  std::uint64_t now = 0;

  chain::Block next() {
    const int height = chain.height() + 1;
    if (height % 2 == 0 && height > params.coinbase_maturity + 1) {
      const auto tx = miner_wallet.create_payment(
          chain, &pool, alice.pkh(), chain::kCoin / 4, 1000);
      if (tx) pool.accept(*tx, chain.utxo(), height);
    }
    const chain::Block block = miner.mine(chain, pool, ++now);
    chain.accept_block(block);
    pool.remove_confirmed(block);
    return block;
  }
};

}  // namespace

int main() {
  bench::print_header("STORE-REPLAY", "durable chainstate: append, snapshot, "
                                      "crash recovery");

  const bool smoke = std::getenv("BCWAN_SMOKE") != nullptr;
  const int kBlocks = smoke ? 64 : 512;
  const int kReps = smoke ? 2 : 5;

  // Pre-mine the whole chain once; the store benches then re-drive the same
  // accepted blocks so PoW grinding never pollutes the timings.
  std::printf("pre-mining %d blocks...\n", kBlocks);
  BlockFactory factory;
  std::vector<chain::Block> blocks;
  std::vector<chain::BlockUndo> undos;
  blocks.reserve(static_cast<std::size_t>(kBlocks));
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back(factory.next());
    undos.push_back(*factory.chain.undo_for(blocks.back().hash()));
  }

  // --- 1. Append throughput, fsync on/off ---
  double append_fsync_ms = 0.0, append_nofsync_ms = 0.0;
  std::uint64_t log_bytes = 0;
  for (const bool fsync_each : {true, false}) {
    util::SampleStats per_rep;
    for (int rep = 0; rep < kReps; ++rep) {
      TempDir dir;
      store::StoreOptions options;
      options.dir = dir.str();
      options.snapshot_interval = 0;  // appends only
      options.fsync_each_append = fsync_each;
      auto st = store::ChainStore::open(factory.params, options);
      const auto t0 = Clock::now();
      for (int i = 0; i < kBlocks; ++i)
        st->append_block(blocks[static_cast<std::size_t>(i)],
                         &undos[static_cast<std::size_t>(i)]);
      per_rep.add(ms_since(t0));
      log_bytes = st->log_bytes();
    }
    (fsync_each ? append_fsync_ms : append_nofsync_ms) = per_rep.mean();
    std::printf("append %-9s : %8.2f ms for %d blocks (%.0f blocks/s)\n",
                fsync_each ? "(fsync)" : "(no-fsync)", per_rep.mean(), kBlocks,
                kBlocks / (per_rep.mean() / 1e3));
  }
  const double log_mib = static_cast<double>(log_bytes) / (1 << 20);

  // --- 2. Snapshot cost ---
  util::SampleStats snapshot_ms;
  std::uint64_t snapshot_bytes = 0;
  {
    TempDir dir;
    store::StoreOptions options;
    options.dir = dir.str();
    options.snapshot_interval = 0;
    options.fsync_each_append = false;
    auto st = store::ChainStore::open(factory.params, options);
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      st->write_snapshot(factory.chain);
      snapshot_ms.add(ms_since(t0));
    }
    for (const auto& info : store::list_snapshots(dir.str()))
      snapshot_bytes = std::max(snapshot_bytes, info.bytes);
    std::printf("snapshot         : %8.2f ms (%.2f MiB at height %d)\n",
                snapshot_ms.mean(),
                static_cast<double>(snapshot_bytes) / (1 << 20),
                factory.chain.height());
  }

  // --- 3. Recovery: full-log replay vs snapshot resume ---
  TempDir replay_dir;
  {
    store::StoreOptions options;
    options.dir = replay_dir.str();
    options.snapshot_interval = 0;
    options.fsync_each_append = false;
    auto st = store::ChainStore::open(factory.params, options);
    for (int i = 0; i < kBlocks; ++i)
      st->append_block(blocks[static_cast<std::size_t>(i)],
                       &undos[static_cast<std::size_t>(i)]);
    st->sync();
  }
  util::SampleStats replay_ms;
  for (int rep = 0; rep < kReps; ++rep) {
    store::StoreOptions options;
    options.dir = replay_dir.str();
    const auto t0 = Clock::now();
    auto st = store::ChainStore::open(factory.params, options);
    replay_ms.add(ms_since(t0));
    if (st == nullptr || st->recovery().replayed_blocks !=
                             static_cast<std::size_t>(kBlocks)) {
      std::fprintf(stderr, "replay recovery failed\n");
      return 1;
    }
  }
  const double replay_blocks_per_s = kBlocks / (replay_ms.mean() / 1e3);
  const double replay_mib_per_s = log_mib / (replay_ms.mean() / 1e3);
  std::printf("cold replay      : %8.2f ms for %d blocks (%.0f blocks/s, "
              "%.1f MiB/s)\n",
              replay_ms.mean(), kBlocks, replay_blocks_per_s,
              replay_mib_per_s);

  // --- 4. Parallel replay: decode fan-out across hardware threads ---
  util::SampleStats parallel_ms;
  for (int rep = 0; rep < kReps; ++rep) {
    store::StoreOptions options;
    options.dir = replay_dir.str();
    options.replay_threads = -1;  // one decoder per hardware thread
    const auto t0 = Clock::now();
    auto st = store::ChainStore::open(factory.params, options);
    parallel_ms.add(ms_since(t0));
    if (st == nullptr || st->recovery().replayed_blocks !=
                             static_cast<std::size_t>(kBlocks)) {
      std::fprintf(stderr, "parallel replay recovery failed\n");
      return 1;
    }
  }
  const double parallel_replay_blocks_per_s =
      kBlocks / (parallel_ms.mean() / 1e3);
  std::printf("parallel replay  : %8.2f ms for %d blocks (%.0f blocks/s, "
              "%u decode threads)\n",
              parallel_ms.mean(), kBlocks, parallel_replay_blocks_per_s,
              std::thread::hardware_concurrency());

  // --- 5. Incremental elements: delta cost vs state size, compaction ---
  // Writes a base, appends a fixed window, writes a delta — once on a small
  // chain and once on a large one. A delta priced by *change* has the same
  // cost at both scales while the full base grows with the UTXO set.
  struct ElementProbe {
    std::uint64_t delta_bytes = 0;
    std::uint64_t base_bytes = 0;
    double compaction_ms = 0.0;
  };
  const int kWindow = smoke ? 8 : 16;
  const auto element_probe = [&](int premine) {
    ElementProbe p;
    TempDir dir;
    store::StoreOptions options;
    options.dir = dir.str();
    options.snapshot_interval = 0;  // elements written by hand below
    options.fsync_each_append = false;
    auto st = store::ChainStore::open(factory.params, options);
    chain::Blockchain chain = st->take_chain();
    chain.set_block_sink(
        [&st](const chain::Block& b, const chain::BlockUndo* u) {
          st->append_block(b, u);
        });
    for (int i = 0; i < premine; ++i)
      chain.accept_block(blocks[static_cast<std::size_t>(i)]);
    st->write_snapshot(chain);  // base element; arms the journal anchor
    for (const auto& info : store::list_snapshots(dir.str()))
      p.base_bytes = std::max(p.base_bytes, info.bytes);
    for (int i = premine; i < premine + kWindow; ++i)
      chain.accept_block(blocks[static_cast<std::size_t>(i)]);
    if (!st->write_delta(chain)) {
      std::fprintf(stderr, "delta element write failed\n");
      std::exit(1);
    }
    p.delta_bytes = st->last_delta_bytes();
    st->write_snapshot(chain);  // fold the chain: compaction cost
    p.compaction_ms = st->last_compaction_ms();
    return p;
  };
  const ElementProbe small_probe = element_probe(kBlocks / 8);
  const ElementProbe large_probe = element_probe(kBlocks - kWindow);
  // Delta cost must track the window, not the state: flat across an ~8x
  // state-size jump while the full base at least doubles and dwarfs it.
  const bool snapshot_cost_independent =
      large_probe.delta_bytes < 2 * small_probe.delta_bytes &&
      2 * small_probe.base_bytes < large_probe.base_bytes &&
      4 * large_probe.delta_bytes < large_probe.base_bytes;
  std::printf("delta element    : %8.2f KiB small-state, %.2f KiB large-state "
              "(bases %.2f / %.2f KiB) -> cost independent: %s\n",
              static_cast<double>(small_probe.delta_bytes) / 1024.0,
              static_cast<double>(large_probe.delta_bytes) / 1024.0,
              static_cast<double>(small_probe.base_bytes) / 1024.0,
              static_cast<double>(large_probe.base_bytes) / 1024.0,
              snapshot_cost_independent ? "yes" : "NO");
  std::printf("compaction       : %8.2f ms folding the delta chain at height "
              "%d\n",
              large_probe.compaction_ms, kBlocks);

  // Snapshot the recovered state, then time recovery again: load + empty log.
  {
    store::StoreOptions options;
    options.dir = replay_dir.str();
    auto st = store::ChainStore::open(factory.params, options);
    chain::Blockchain recovered = st->take_chain();
    st->write_snapshot(recovered);
  }
  util::SampleStats resume_ms;
  for (int rep = 0; rep < kReps; ++rep) {
    store::StoreOptions options;
    options.dir = replay_dir.str();
    const auto t0 = Clock::now();
    auto st = store::ChainStore::open(factory.params, options);
    resume_ms.add(ms_since(t0));
    if (st == nullptr || !st->recovery().snapshot_loaded) {
      std::fprintf(stderr, "snapshot recovery failed\n");
      return 1;
    }
  }
  std::printf("snapshot resume  : %8.2f ms (%.1fx faster than full replay)\n",
              resume_ms.mean(), replay_ms.mean() / resume_ms.mean());

  std::FILE* f = std::fopen("BENCH_store.json", "w");
  if (f != nullptr) {
    bench::JsonWriter w(f);
    w.begin_object();
    w.str("experiment", "STORE-REPLAY");
    w.boolean("smoke", smoke);
    w.integer("blocks", kBlocks);
    w.integer("repetitions", kReps);
    w.num("log_mib", log_mib, "%.3f");
    w.uint("snapshot_bytes", snapshot_bytes);
    w.num("append_fsync_ms", append_fsync_ms, "%.3f");
    w.num("append_nofsync_ms", append_nofsync_ms, "%.3f");
    w.num("snapshot_ms", snapshot_ms.mean(), "%.3f");
    w.num("replay_ms", replay_ms.mean(), "%.3f");
    w.num("replay_blocks_per_s", replay_blocks_per_s, "%.1f");
    w.num("replay_mib_per_s", replay_mib_per_s, "%.2f");
    w.num("parallel_replay_ms", parallel_ms.mean(), "%.3f");
    w.num("parallel_replay_blocks_per_s", parallel_replay_blocks_per_s,
          "%.1f");
    w.uint("incremental_snapshot_bytes", large_probe.delta_bytes);
    w.uint("incremental_snapshot_bytes_small_state", small_probe.delta_bytes);
    w.uint("base_snapshot_bytes_small_state", small_probe.base_bytes);
    w.uint("base_snapshot_bytes_large_state", large_probe.base_bytes);
    w.num("compaction_ms", large_probe.compaction_ms, "%.3f");
    w.boolean("snapshot_cost_independent", snapshot_cost_independent);
    w.num("snapshot_resume_ms", resume_ms.mean(), "%.3f");
    w.num("resume_speedup_vs_replay", replay_ms.mean() / resume_ms.mean(),
          "%.2f");
    w.uint("peak_rss_bytes", bench::peak_rss_bytes());
    w.end_object();
    w.finish();
    std::fclose(f);
    std::printf("results written to BENCH_store.json\n");
  }
  return 0;
}

// CLM-TPS — "Multichain advertises a transaction throughput of up to 1000
// tx/s in its latest version" (paper §5.2).
//
// Measures what this chain implementation sustains on this machine:
// mempool acceptance (full validation incl. ECDSA — the transactions under
// test are built by hand and have never been validated, so the signature
// cache cannot shortcut them), block assembly + connect, for both plain
// P2PKH payments and Listing-1 fair-exchange transactions.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "chain/wallet.hpp"

namespace {

using namespace bcwan;

/// Hand-build a 1-in/1-out P2PKH spend of `coin` by `owner` to `dest`,
/// signed fresh (never validated anywhere).
chain::Transaction make_spend(const chain::Wallet& owner,
                              const chain::OutPoint& outpoint,
                              const chain::TxOut& coin,
                              const script::Script& dest_script,
                              chain::Amount fee) {
  chain::Transaction tx;
  chain::TxIn in;
  in.prevout = outpoint;
  tx.vin.push_back(std::move(in));
  chain::TxOut out;
  out.value = coin.value - fee;
  out.script_pubkey = dest_script;
  tx.vout.push_back(std::move(out));
  owner.sign_p2pkh_input(tx, 0, coin.script_pubkey);
  return tx;
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  bench::print_header("CLM-TPS", "chain transaction throughput");

  chain::ChainParams params;
  params.pow_zero_bits = 4;
  params.coinbase_maturity = 2;
  chain::Blockchain bc(params);
  chain::Mempool pool(params);
  const chain::Wallet miner_wallet = chain::Wallet::from_seed("tps-miner");
  const chain::Wallet alice = chain::Wallet::from_seed("tps-alice");
  const chain::Miner miner(params, miner_wallet.pkh());

  std::uint64_t now = 0;
  auto mine = [&] {
    const chain::Block block = miner.mine(bc, pool, ++now);
    bc.accept_block(block);
    pool.remove_confirmed(block);
  };
  for (int i = 0; i < 6; ++i) mine();

  // Give alice a bankroll of independent confirmed coins.
  const int kCoins = 12;
  for (int i = 0; i < kCoins; ++i) {
    const auto tx = miner_wallet.create_payment(bc, &pool, alice.pkh(),
                                                40 * chain::kCoin, 1000);
    if (tx) pool.accept(*tx, bc.utxo(), bc.height() + 1);
    mine();
  }

  // Build chains of fresh spends: 25 per coin, child spending parent, none
  // ever validated.
  const script::Script alice_script = script::make_p2pkh(alice.pkh());
  std::vector<chain::Transaction> fresh;
  for (const auto& [outpoint, coin] : alice.spendable(bc)) {
    chain::OutPoint cursor = outpoint;
    chain::TxOut cursor_out = coin.out;
    for (int depth = 0; depth < 25; ++depth) {
      chain::Transaction tx =
          make_spend(alice, cursor, cursor_out, alice_script, 1000);
      cursor = chain::OutPoint{tx.txid(), 0};
      cursor_out = tx.vout[0];
      fresh.push_back(std::move(tx));
    }
    if (fresh.size() >= 300) break;
  }

  chain::Mempool measured(params);
  auto t0 = Clock::now();
  std::size_t accepted = 0;
  for (const auto& tx : fresh) {
    accepted += measured.accept(tx, bc.utxo(), bc.height() + 1).ok();
  }
  auto t1 = Clock::now();
  const double p2pkh_s = std::chrono::duration<double>(t1 - t0).count();
  std::printf("P2PKH mempool acceptance  : %zu tx in %.3f s = %.0f tx/s\n",
              accepted, p2pkh_s, static_cast<double>(accepted) / p2pkh_s);

  // Listing-1 offers: fresh, never validated.
  util::Rng rng(1);
  const script::PubKeyHash gw = script::to_pubkey_hash(util::str_bytes("gw"));
  std::vector<chain::Transaction> offers;
  {
    // Spend the tips of the measured chains' confirmed ancestors: reuse the
    // original coins by first confirming the fresh chains.
    for (const auto& tx : fresh) pool.accept(tx, bc.utxo(), bc.height() + 1);
    mine();
    mine();
    int built = 0;
    for (const auto& [outpoint, coin] : alice.spendable(bc)) {
      if (built >= 60) break;
      const crypto::RsaKeyPair eph = crypto::rsa_generate(rng, 512);
      chain::Transaction tx;
      chain::TxIn in;
      in.prevout = outpoint;
      tx.vin.push_back(std::move(in));
      chain::TxOut out;
      out.value = coin.out.value - 1000;
      out.script_pubkey = script::make_key_release(eph.pub, gw, alice.pkh(),
                                                   bc.height() + 100);
      tx.vout.push_back(std::move(out));
      alice.sign_p2pkh_input(tx, 0, coin.out.script_pubkey);
      offers.push_back(std::move(tx));
      ++built;
    }
  }
  chain::Mempool offer_pool(params);
  t0 = Clock::now();
  accepted = 0;
  for (const auto& tx : offers) {
    accepted += offer_pool.accept(tx, bc.utxo(), bc.height() + 1).ok();
  }
  t1 = Clock::now();
  const double offer_s = std::chrono::duration<double>(t1 - t0).count();
  std::printf("Listing-1 offer acceptance: %zu tx in %.3f s = %.0f tx/s\n",
              accepted, offer_s, static_cast<double>(accepted) / offer_s);

  // Block assembly + connect for a full block of offers.
  t0 = Clock::now();
  const chain::Block big = miner.mine(bc, offer_pool, ++now);
  const auto result = bc.accept_block(big);
  t1 = Clock::now();
  const double block_s = std::chrono::duration<double>(t1 - t0).count();
  std::printf("block assemble+mine+connect: %zu tx in %.3f s (%s)\n",
              big.txs.size(), block_s,
              chain::accept_block_result_name(result).c_str());

  std::printf(
      "\npaper context: Multichain advertises up to 1000 tx/s; the paper\n"
      "saw far less once block verification stalled the daemon (Fig. 6).\n"
      "This implementation validates fresh P2PKH transactions at the same\n"
      "order of magnitude (bignum ECDSA dominates); Listing-1 offers are\n"
      "plain P2PKH spends to validate, so they cost about the same to\n"
      "accept — the RSA math only runs when the offer is *redeemed*.\n");
  return 0;
}

// Fault-intensity sweep: drive the §5.2 federation under escalating chaos
// (Gilbert–Elliott burst loss, WAN partitions, gateway crashes, miner
// stalls) and report delivery ratio, latency percentiles, retry effort and
// invariant violations at each level. Output is one JSON document so the
// sweep can be diffed or plotted directly.
//
//   BCWAN_EXCHANGES=40 ./bench_fault_recovery
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"
#include "sim/scenario.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace bcwan;

struct SweepResult {
  double intensity = 0.0;
  std::size_t offered = 0;
  std::uint64_t completed = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
  std::uint64_t request_retries = 0;
  std::uint64_t data_retransmissions = 0;
  std::uint64_t exchange_restarts = 0;
  std::uint64_t deliver_retries = 0;
  std::uint64_t rekeys = 0;
  std::uint64_t redeem_resubmits = 0;
  std::uint64_t offer_rebroadcasts = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t duplicate_deliveries = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t faults_injected = 0;
  std::size_t invariant_violations = 0;
};

sim::ScenarioConfig sweep_config(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 3;
  config.seed = seed;
  config.chain_params.pow_zero_bits = 4;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 10 * util::kSecond;
  config.recipient_funding = 200 * chain::kCoin;
  config.gateway_config.offer_timeout = 5 * util::kMinute;
  config.gateway_config.issued_key_timeout = 5 * util::kMinute;
  config.recipient_config.timeout_blocks = 30;
  return config;
}

SweepResult run_level(double intensity, std::size_t exchanges,
                      std::uint64_t seed) {
  sim::Scenario s(sweep_config(seed));
  s.bootstrap();

  const util::SimTime chaos_start = s.loop().now();
  constexpr util::SimTime kHorizon = 40 * util::kMinute;
  sim::FaultPlan faults(s, seed * 31 + 7);
  if (intensity > 0.0) {
    sim::ChaosProfile profile;
    profile.partitions_per_actor = intensity;
    profile.partition_duration = 60 * util::kSecond;
    profile.gateway_crashes = intensity;
    profile.crash_downtime = 90 * util::kSecond;
    profile.miner_stalls = intensity;
    profile.stall_duration = 2 * util::kMinute;
    profile.burst.loss_good = 0.01;
    profile.burst.loss_bad = 0.10 + 0.15 * intensity;
    profile.burst.mean_good_s = 60.0;
    profile.burst.mean_bad_s = 5.0 + 5.0 * intensity;
    faults.unleash(profile, kHorizon);
  }

  s.run_exchanges(exchanges, 4 * util::kHour);
  // Drain retries/housekeeping so the quiescence check is fair — and run
  // past the fault horizon, or a late-scheduled partition is still open
  // (or barely healed) when the convergence check fires.
  const util::SimTime drain_until =
      std::max(s.loop().now() + 20 * util::kMinute,
               chaos_start + kHorizon + 10 * util::kMinute);
  s.loop().run_until(drain_until);

  SweepResult r;
  r.intensity = intensity;
  r.offered = exchanges;
  r.completed = s.exchanges_completed();
  if (s.latency_stats().count() > 0) {
    r.p50_s = s.latency_stats().median();
    r.p99_s = s.latency_stats().percentile(99);
    r.mean_s = s.latency_stats().mean();
  }
  for (std::size_t a = 0; a < static_cast<std::size_t>(s.actor_count()); ++a) {
    const int actor = static_cast<int>(a);
    for (int i = 0; i < s.config().sensors_per_actor; ++i) {
      r.request_retries += s.sensor(actor, i).request_retries();
      r.data_retransmissions += s.sensor(actor, i).data_retransmissions();
      r.exchange_restarts += s.sensor(actor, i).exchange_restarts();
    }
    r.offer_rebroadcasts += s.recipient(actor).offer_rebroadcasts();
    r.reclaims += s.recipient(actor).reclaims_submitted();
    r.duplicate_deliveries += s.recipient(actor).duplicate_deliveries();
  }
  for (std::size_t g = 0; g < s.gateway_count(); ++g) {
    r.deliver_retries += s.gateway_by_index(g).deliver_retries();
    r.rekeys += s.gateway_by_index(g).rekeys_issued();
    r.redeem_resubmits += s.gateway_by_index(g).redeem_resubmits();
  }
  r.frames_lost = s.radio().frames_lost();
  r.faults_injected = faults.partitions_injected() +
                      faults.crashes_injected() + faults.stalls_injected() +
                      faults.lora_degradations();
  const auto report =
      sim::check_federation_invariants(s, /*expect_quiescent=*/true);
  r.invariant_violations = report.violations.size();
  if (!report.ok()) {
    std::fprintf(stderr, "[fault-recovery] intensity %.2f violations:\n%s\n",
                 intensity, report.to_string().c_str());
  }
  return r;
}

void print_json(const SweepResult* results, std::size_t n,
                std::size_t exchanges) {
  bench::JsonWriter w(stdout);
  w.begin_object();
  w.str("experiment", "fault_recovery_sweep");
  w.uint("exchanges_per_level", exchanges);
  w.begin_array("levels");
  for (std::size_t i = 0; i < n; ++i) {
    const SweepResult& r = results[i];
    w.begin_object();
    w.num("intensity", r.intensity, "%.2f");
    w.uint("offered", r.offered);
    w.uint("completed", r.completed);
    // A final in-flight exchange may still complete during the drain
    // window, so clamp against the larger of the two.
    w.num("delivery_ratio",
          r.completed == 0
              ? 0.0
              : static_cast<double>(r.completed) /
                    static_cast<double>(
                        std::max<std::uint64_t>(r.offered, r.completed)),
          "%.4f");
    w.begin_object("latency_s");
    w.num("mean", r.mean_s, "%.3f");
    w.num("p50", r.p50_s, "%.3f");
    w.num("p99", r.p99_s, "%.3f");
    w.end_object();
    w.begin_object("retries");
    w.uint("request", r.request_retries);
    w.uint("data", r.data_retransmissions);
    w.uint("exchange_restarts", r.exchange_restarts);
    w.uint("deliver", r.deliver_retries);
    w.uint("rekeys", r.rekeys);
    w.uint("redeem_resubmits", r.redeem_resubmits);
    w.uint("offer_rebroadcasts", r.offer_rebroadcasts);
    w.end_object();
    w.uint("reclaims", r.reclaims);
    w.uint("duplicate_deliveries", r.duplicate_deliveries);
    w.uint("frames_lost", r.frames_lost);
    w.uint("faults_injected", r.faults_injected);
    w.uint("invariant_violations", r.invariant_violations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.finish();
}

}  // namespace

int main() {
  // Banner and progress go to stderr: stdout carries exactly one JSON
  // document so the sweep pipes straight into jq / json.tool.
  std::fprintf(stderr, "fault-recovery — delivery under escalating chaos injection\n");
  // Virtual-time bench: telemetry stays on for the whole sweep (no
  // wall-clock numbers to perturb) so the snapshot covers every level.
  telemetry::set_enabled(true);
  const std::size_t exchanges = bench::exchange_count(12);
  const double levels[] = {0.0, 0.5, 1.0, 2.0};
  constexpr std::size_t kLevels = sizeof(levels) / sizeof(levels[0]);
  SweepResult results[kLevels];
  for (std::size_t i = 0; i < kLevels; ++i) {
    std::fprintf(stderr, "[fault-recovery] level %.2f ...\n", levels[i]);
    results[i] = run_level(levels[i], exchanges, 1000 + i);
  }
  print_json(results, kLevels, exchanges);
  if (telemetry::compiled_in() &&
      telemetry::write_json_snapshot("TELEMETRY_fault_recovery.json")) {
    std::fprintf(stderr,
                 "telemetry snapshot written to TELEMETRY_fault_recovery.json\n");
  }
  return 0;
}

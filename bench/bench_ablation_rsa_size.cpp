// ABL-RSA — the §6 key-size trade-off.
//
// "We chose RSA-512 as method to encrypt our data due to the size limit of
// the payload that can be sent on the LoRa network ... For application
// where this may be a problem it is possible to use higher levels of
// encryption but messages will be lengthier on the LoRa network."
//
// Sweeps the modulus: payload bytes, SF7 airtime, max msgs/hour at 1% duty,
// and measured crypto cost on this machine.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "crypto/rsa.hpp"
#include "lora/airtime.hpp"

int main() {
  using namespace bcwan;
  using Clock = std::chrono::steady_clock;
  bench::print_header("ABL-RSA", "RSA modulus size vs LoRa payload");

  std::printf("%-8s %-8s %-8s %-12s %-12s %-12s %-10s %-10s\n", "bits",
              "Em_B", "Sig_B", "payload_B", "airtime_ms", "max_msg/h",
              "keygen_ms", "enc+sig_ms");

  util::Rng rng(1);
  lora::LoraConfig sf7;
  for (const std::size_t bits : {512u, 768u, 1024u, 2048u}) {
    auto t0 = Clock::now();
    const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, bits);
    auto t1 = Clock::now();
    const double keygen_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const util::Bytes blob = rng.bytes(34);  // Fig. 4 blob
    t0 = Clock::now();
    const util::Bytes em = crypto::rsa_encrypt(kp.pub, blob, rng);
    const util::Bytes sig = crypto::rsa_sign(kp.priv, em);
    t1 = Clock::now();
    const double crypt_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const std::size_t payload = em.size() + sig.size();
    const std::size_t frame = payload + 4 + 20;  // header + @R
    const double airtime_ms = 1000.0 * lora::airtime_s(sf7, frame);
    const int per_hour = lora::max_messages_per_hour(sf7, frame, 0.01);

    std::printf("%-8zu %-8zu %-8zu %-12zu %-12.1f %-12d %-10.1f %-10.2f\n",
                bits, em.size(), sig.size(), payload, airtime_ms, per_hour,
                keygen_ms, crypt_ms);
  }

  std::printf(
      "\nshape check: payload doubles with the modulus (128 B at 512 ->\n"
      "512 B at 2048), airtime grows accordingly and the 1%%-duty message\n"
      "budget shrinks ~4x; keygen cost grows superlinearly — the reasons\n"
      "the paper accepts RSA-512's weaker security ('the amount to spend\n"
      "in order to decrypt the data is much more than the value that the\n"
      "foreign gateway is asking').\n"
      "note: 2048-bit payloads exceed LoRa SF12 limits entirely; even at\n"
      "SF7 the 256 B LoRaWAN maximum forces fragmentation.\n");
  return 0;
}

// HASH-TPUT — hashing hot-path throughput across the PR's ablations.
//
// Block propagation cost in the BcWAN daemon is dominated by hashing and
// signature checking; this bench measures what the four optimizations buy:
//
//   sha256 stream          runtime-dispatched compressor (scalar vs SIMD)
//   merkle construction    batched sha256d64 kernel (+ thread-pool split)
//   per-input sighash      midstate precomputation vs naive O(n^2)
//                          re-serialization
//   txid                   memoized vs recomputed-per-call
//
// Before any timing, an equivalence gate recomputes block hashes, merkle
// roots, txids, sighashes and the connect_block verdict under EVERY backend
// the CPU offers and cross-checks them bit for bit against the scalar
// reference; any mismatch exits nonzero. Results land in BENCH_hashing.json.
//
// BCWAN_SMOKE=1 shrinks the workload for CI sanity runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "chain/sigcache.hpp"
#include "chain/validation.hpp"
#include "chain/wallet.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcwan;
using Clock = std::chrono::steady_clock;

struct AxisResult {
  std::string name;
  double ms_mean = 0.0;
};

template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  // One untimed warm-up rep, then the mean over `reps`.
  fn();
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
}

chain::Transaction make_spend(const chain::Wallet& owner,
                              const chain::OutPoint& outpoint,
                              const chain::TxOut& coin,
                              const script::Script& dest_script,
                              chain::Amount fee) {
  chain::Transaction tx;
  chain::TxIn in;
  in.prevout = outpoint;
  tx.vin.push_back(std::move(in));
  chain::TxOut out;
  out.value = coin.value - fee;
  out.script_pubkey = dest_script;
  tx.vout.push_back(std::move(out));
  owner.sign_p2pkh_input(tx, 0, coin.script_pubkey);
  return tx;
}

/// Unsigned many-input transaction for the sighash axis (signature validity
/// is irrelevant to hashing cost; only the serialization shape matters).
chain::Transaction make_wide_tx(std::size_t inputs, util::Rng& rng) {
  chain::Transaction tx;
  for (std::size_t i = 0; i < inputs; ++i) {
    chain::TxIn in;
    const util::Bytes id = rng.bytes(32);
    std::copy(id.begin(), id.end(), in.prevout.txid.begin());
    in.prevout.index = static_cast<std::uint32_t>(i);
    in.script_sig = script::Script(rng.bytes(107));  // P2PKH-sized scriptSig
    tx.vin.push_back(std::move(in));
  }
  chain::TxOut out;
  out.value = 1000;
  out.script_pubkey = script::Script(rng.bytes(25));
  tx.vout.push_back(std::move(out));
  return tx;
}

}  // namespace

int main() {
  bench::print_header("HASH-TPUT", "hashing hot-path throughput");

  const bool smoke = std::getenv("BCWAN_SMOKE") != nullptr;
  const std::size_t kBlockTxs = smoke ? 12 : 48;
  const std::size_t kMerkleLeaves = smoke ? 1024 : 8192;
  const std::size_t kSighashInputs = 32;
  const std::size_t kStreamBytes = smoke ? (512u << 10) : (4u << 20);
  const int kReps = smoke ? 3 : 20;

  const std::string detected = crypto::sha256_backend_name();
  std::vector<std::string> backends;
  for (const char* name : {"scalar", "shani", "avx2"}) {
    if (crypto::sha256_select_backend(name)) backends.push_back(name);
  }
  crypto::sha256_select_backend("auto");
  std::printf("detected backend: %s (available:", detected.c_str());
  for (const auto& b : backends) std::printf(" %s", b.c_str());
  std::printf("; %u hardware threads)\n", std::thread::hardware_concurrency());

  // --- A block of real signed spends for the equivalence gate -------------
  chain::ChainParams params;
  params.pow_zero_bits = 4;
  params.coinbase_maturity = 2;
  chain::Blockchain bc(params);
  chain::Mempool pool(params);
  const chain::Wallet miner_wallet = chain::Wallet::from_seed("hash-miner");
  const chain::Wallet alice = chain::Wallet::from_seed("hash-alice");
  const chain::Miner miner(params, miner_wallet.pkh());

  std::uint64_t now = 0;
  auto mine = [&] {
    const chain::Block block = miner.mine(bc, pool, ++now);
    bc.accept_block(block);
    pool.remove_confirmed(block);
  };
  for (int i = 0; i < 6; ++i) mine();
  for (int i = 0; i < 4; ++i) {
    const auto tx = miner_wallet.create_payment(bc, &pool, alice.pkh(),
                                                40 * chain::kCoin, 1000);
    if (tx) pool.accept(*tx, bc.utxo(), bc.height() + 1);
    mine();
  }

  const script::Script alice_script = script::make_p2pkh(alice.pkh());
  chain::Mempool block_pool(params);
  std::size_t queued = 0;
  for (const auto& [outpoint, coin] : alice.spendable(bc)) {
    chain::OutPoint cursor = outpoint;
    chain::TxOut cursor_out = coin.out;
    while (queued < kBlockTxs) {
      chain::Transaction tx =
          make_spend(alice, cursor, cursor_out, alice_script, 1000);
      cursor = chain::OutPoint{tx.txid(), 0};
      cursor_out = tx.vout[0];
      if (!block_pool.accept(tx, bc.utxo(), bc.height() + 1).ok()) break;
      ++queued;
      if (queued % 16 == 0) break;  // bounded chains; move to the next coin
    }
    if (queued >= kBlockTxs) break;
  }
  chain::Block block = miner.assemble(bc, block_pool, ++now);
  chain::solve_pow(block.header);
  const int height = bc.height() + 1;
  util::Rng rng(0x4a5);
  const chain::Transaction wide = make_wide_tx(kSighashInputs, rng);
  const script::Script wide_spent(rng.bytes(25));
  std::printf("gate block: %zu transactions\n\n", block.txs.size());

  // --- Equivalence gate: every backend vs the scalar reference ------------
  // Caches off so each backend performs the full hashing + verification
  // work instead of short-circuiting on another backend's cached results.
  chain::sig_cache().set_enabled(false);
  chain::script_exec_cache().set_enabled(false);
  chain::sig_cache().clear();
  chain::script_exec_cache().clear();

  struct GateResult {
    chain::Hash256 block_hash{};
    chain::Hash256 merkle_serial{};
    chain::Hash256 merkle_parallel{};
    std::vector<chain::Hash256> txids;
    std::vector<crypto::Digest256> sighashes_naive;
    std::vector<crypto::Digest256> sighashes_midstate;
    bool connect_ok = false;
    std::size_t utxo_size = 0;
    chain::Amount utxo_value = 0;
  };
  auto run_gate = [&](const std::string& backend) {
    if (!crypto::sha256_select_backend(backend)) {
      std::printf("cannot select backend %s\n", backend.c_str());
      std::exit(1);
    }
    GateResult g;
    g.block_hash = block.hash();
    std::vector<chain::Hash256> leaves;
    for (const chain::Transaction& tx : block.txs) {
      // Deep-copy through the wire format and drop the seeded cache so the
      // txid really is recomputed under this backend.
      const auto copy = chain::Transaction::deserialize(tx.serialize());
      copy->invalidate_txid();
      g.txids.push_back(copy->txid());
      leaves.push_back(g.txids.back());
    }
    g.merkle_serial = chain::merkle_root(leaves, 1);
    g.merkle_parallel = chain::merkle_root(leaves, 4);
    const chain::PrecomputedTxData precomp(wide);
    for (std::size_t i = 0; i < wide.vin.size(); ++i) {
      g.sighashes_naive.push_back(
          crypto::sha256d(chain::signature_hash_message(wide, i, wide_spent)));
      g.sighashes_midstate.push_back(precomp.sighash(i, wide_spent));
    }
    chain::UtxoSet utxo = bc.utxo();
    chain::BlockUndo undo;
    const auto verdict = chain::connect_block(block, utxo, height, params, undo);
    g.connect_ok = verdict.ok();
    g.utxo_size = utxo.size();
    g.utxo_value = utxo.total_value();
    return g;
  };

  const GateResult ref = run_gate("scalar");
  bool equivalent = true;
  for (const auto& backend : backends) {
    const GateResult got = run_gate(backend);
    const bool same =
        got.block_hash == ref.block_hash &&
        got.merkle_serial == ref.merkle_serial &&
        got.merkle_parallel == ref.merkle_parallel &&
        got.txids == ref.txids &&
        got.sighashes_naive == ref.sighashes_naive &&
        got.sighashes_midstate == ref.sighashes_midstate &&
        got.sighashes_midstate == ref.sighashes_naive &&
        got.connect_ok == ref.connect_ok && got.connect_ok &&
        got.utxo_size == ref.utxo_size && got.utxo_value == ref.utxo_value;
    std::printf("equivalence [%6s]: %s\n", backend.c_str(),
                same ? "bit-identical" : "MISMATCH");
    equivalent &= same;
  }
  crypto::sha256_select_backend("auto");
  chain::sig_cache().set_enabled(true);
  chain::script_exec_cache().set_enabled(true);
  if (!equivalent) {
    std::printf("\nequivalence gate FAILED — not reporting timings\n");
    return 1;
  }

  // --- Timed axes ---------------------------------------------------------
  std::vector<AxisResult> results;
  auto record = [&](std::string name, double ms) {
    std::printf("%-34s : %10.4f ms\n", name.c_str(), ms);
    results.push_back({std::move(name), ms});
    return ms;
  };
  std::printf("\n");

  // Stream throughput per backend.
  const util::Bytes stream = rng.bytes(kStreamBytes);
  double stream_scalar_ms = 0.0, stream_best_ms = 0.0;
  for (const auto& backend : backends) {
    crypto::sha256_select_backend(backend);
    const double ms = time_ms(kReps, [&] {
      volatile std::uint8_t sink = crypto::sha256(stream)[0];
      (void)sink;
    });
    record("sha256_stream_" + backend, ms);
    if (backend == "scalar") stream_scalar_ms = ms;
    stream_best_ms = stream_best_ms == 0.0 ? ms : std::min(stream_best_ms, ms);
  }

  // Merkle: scalar backend vs SIMD batched vs SIMD + threads.
  std::vector<chain::Hash256> leaves(kMerkleLeaves);
  for (auto& leaf : leaves) {
    const util::Bytes b = rng.bytes(32);
    std::copy(b.begin(), b.end(), leaf.begin());
  }
  crypto::sha256_select_backend("scalar");
  const double merkle_scalar_ms = record("merkle_scalar_serial", time_ms(kReps, [&] {
    volatile std::uint8_t sink = chain::merkle_root(leaves, 1)[0];
    (void)sink;
  }));
  crypto::sha256_select_backend("auto");
  const double merkle_simd_ms = record(
      std::string("merkle_") + crypto::sha256_backend_name() + "_serial",
      time_ms(kReps, [&] {
        volatile std::uint8_t sink = chain::merkle_root(leaves, 1)[0];
        (void)sink;
      }));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double merkle_par_ms = record(
      std::string("merkle_") + crypto::sha256_backend_name() + "_t" +
          std::to_string(hw),
      time_ms(kReps, [&] {
        volatile std::uint8_t sink = chain::merkle_root(leaves, hw)[0];
        (void)sink;
      }));
  const double merkle_best_ms = std::min(merkle_simd_ms, merkle_par_ms);
  const double merkle_speedup = merkle_scalar_ms / merkle_best_ms;

  // Sighash: naive per-input re-serialization vs midstate resume. The
  // midstate side includes PrecomputedTxData construction — that is the
  // real per-transaction cost a validator pays.
  const double sighash_naive_ms = record("sighash_naive_32in", time_ms(kReps, [&] {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < wide.vin.size(); ++i) {
      acc ^= crypto::sha256d(
          chain::signature_hash_message(wide, i, wide_spent))[0];
    }
    volatile std::uint8_t sink = acc;
    (void)sink;
  }));
  const double sighash_mid_ms = record("sighash_midstate_32in", time_ms(kReps, [&] {
    const chain::PrecomputedTxData precomp(wide);
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < wide.vin.size(); ++i)
      acc ^= precomp.sighash(i, wide_spent)[0];
    volatile std::uint8_t sink = acc;
    (void)sink;
  }));
  const double sighash_speedup = sighash_naive_ms / sighash_mid_ms;

  // Txid: recomputed every call vs memoized.
  chain::Transaction txid_tx = *chain::Transaction::deserialize(wide.serialize());
  const int txid_reps = kReps * 50;
  const double txid_cold_ms = record("txid_cold", time_ms(txid_reps, [&] {
    txid_tx.invalidate_txid();
    volatile std::uint8_t sink = txid_tx.txid()[0];
    (void)sink;
  }));
  const double txid_memo_ms = record("txid_memoized", time_ms(txid_reps, [&] {
    volatile std::uint8_t sink = txid_tx.txid()[0];
    (void)sink;
  }));

  const double stream_speedup = stream_scalar_ms / stream_best_ms;
  std::printf("\nsha256 stream speedup vs scalar : %5.2fx\n", stream_speedup);
  std::printf("merkle speedup vs scalar serial : %5.2fx %s\n", merkle_speedup,
              merkle_speedup >= 2.0 ? "(target >= 2x met)" : "(TARGET MISSED)");
  std::printf("sighash speedup vs naive        : %5.2fx %s\n", sighash_speedup,
              sighash_speedup >= 2.0 ? "(target >= 2x met)" : "(TARGET MISSED)");
  std::printf("txid memoization speedup        : %5.2fx\n",
              txid_cold_ms / txid_memo_ms);

  std::FILE* f = std::fopen("BENCH_hashing.json", "w");
  if (f != nullptr) {
    bench::JsonWriter w(f);
    w.begin_object();
    w.str("experiment", "HASH-TPUT");
    w.boolean("smoke", smoke);
    w.str("detected_backend", detected);
    w.begin_array("available_backends");
    for (const std::string& backend : backends) w.str(nullptr, backend);
    w.end_array();
    w.uint("hardware_threads", hw);
    w.boolean("equivalence_ok", true);
    w.uint("merkle_leaves", kMerkleLeaves);
    w.uint("sighash_inputs", kSighashInputs);
    w.uint("stream_bytes", kStreamBytes);
    w.begin_array("axes");
    for (const auto& r : results) {
      w.begin_object();
      w.str("name", r.name);
      w.num("ms_mean", r.ms_mean, "%.5f");
      w.end_object();
    }
    w.end_array();
    w.num("stream_speedup_vs_scalar", stream_speedup, "%.3f");
    w.num("merkle_speedup_vs_scalar", merkle_speedup, "%.3f");
    w.num("sighash_speedup_vs_naive", sighash_speedup, "%.3f");
    w.num("txid_memo_speedup", txid_cold_ms / txid_memo_ms, "%.3f");
    w.boolean("merkle_target_2x_met", merkle_speedup >= 2.0);
    w.boolean("sighash_target_2x_met", sighash_speedup >= 2.0);
    w.uint("peak_rss_bytes", bench::peak_rss_bytes());
    w.end_object();
    w.finish();
    std::fclose(f);
    std::printf("results written to BENCH_hashing.json\n");
  }
  return 0;
}

// ABL-CONF — the §6 double-spend trade-off.
//
// "we chose to allow the foreign gateway to not wait for confirmation of
// the recipient transaction before providing the ephemeral private key.
// This can be a security threat as a malicious user could double spend this
// transaction. ... The addition of a confirmation time on the exchange
// protocol to prevent double-spending implies an added latency."
//
// Two measurements per confirmation requirement k ∈ {0, 1, 2, 6}:
//   1. attack success rate — a malicious recipient races a conflicting
//      spend of the offer's funding to the miner while feeding the offer
//      only to the gateway, and sniffs eSk off the gateway's redeem;
//   2. honest-path latency — time from offer broadcast to eSk revelation
//      when everyone is honest.
#include <cstdio>
#include <optional>

#include "bench_common.hpp"
#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/network.hpp"
#include "util/stats.hpp"

namespace {

using namespace bcwan;

struct Lab {
  chain::ChainParams params;
  p2p::EventLoop loop;
  p2p::SimNet net{loop, 0};
  std::unique_ptr<p2p::ChainNode> attacker_node;
  std::unique_ptr<p2p::ChainNode> gateway_node;
  std::unique_ptr<p2p::ChainNode> miner_node;
  chain::Wallet master = chain::Wallet::from_seed("conf-master");
  chain::Wallet attacker = chain::Wallet::from_seed("conf-attacker");
  chain::Wallet gateway = chain::Wallet::from_seed("conf-gateway");
  std::unique_ptr<chain::Miner> miner;
  util::Rng rng;

  explicit Lab(std::uint64_t seed) : net(loop, seed), rng(seed * 31 + 7) {
    params.pow_zero_bits = 4;
    params.coinbase_maturity = 2;
    params.block_interval = 15 * util::kSecond;
    p2p::ChainNodeConfig node_config;
    attacker_node = std::make_unique<p2p::ChainNode>(
        loop, net, net.add_host("attacker"), params, node_config, seed + 1);
    gateway_node = std::make_unique<p2p::ChainNode>(
        loop, net, net.add_host("gateway"), params, node_config, seed + 2);
    miner_node = std::make_unique<p2p::ChainNode>(
        loop, net, net.add_host("miner"), params, node_config, seed + 3);
    miner = std::make_unique<chain::Miner>(params, master.pkh());

    // Fund the attacker.
    for (int i = 0; i < params.coinbase_maturity + 3; ++i) mine_block();
    const auto funding = master.create_payment(
        miner_node->chain(), &miner_node->mempool(), attacker.pkh(),
        10 * chain::kCoin, 1000);
    miner_node->submit_tx(*funding);
    loop.run_until(loop.now() + util::kSecond);
    mine_block();
  }

  void mine_block() {
    loop.run_until(loop.now() + util::kSecond);
    const chain::Block block = miner->mine(
        miner_node->chain(), miner_node->mempool(),
        static_cast<std::uint64_t>(loop.now() / util::kSecond));
    miner_node->submit_block(block);
    loop.run_until(loop.now() + util::kSecond);
  }
};

struct AttackOutcome {
  bool esk_obtained = false;
  bool gateway_paid = false;
};

AttackOutcome run_attack(int confirmations_required, std::uint64_t seed) {
  Lab lab(seed);
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(lab.rng, 512);

  // Gateway-side watcher: redeem the offer once it has the required
  // confirmations (k = 0 means straight from the mempool).
  std::optional<chain::OutPoint> offer_outpoint;
  std::optional<chain::TxOut> offer_out;
  std::optional<chain::Hash256> offer_txid;
  bool redeemed = false;
  auto try_redeem = [&] {
    if (redeemed || !offer_outpoint) return;
    if (confirmations_required > 0) {
      int confs = 0;
      if (!lab.gateway_node->chain().tx_confirmations(*offer_txid, confs) ||
          confs < confirmations_required) {
        return;
      }
    }
    const chain::Transaction redeem = lab.gateway.create_redeem(
        *offer_outpoint, *offer_out, ephemeral.priv, 500);
    lab.gateway_node->submit_tx(redeem);
    redeemed = true;
  };
  lab.gateway_node->add_tx_watcher([&](const chain::Transaction& tx) {
    const chain::Hash256 txid = tx.txid();
    for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
      const auto c = script::classify(tx.vout[v].script_pubkey);
      if (c.type == script::ScriptType::kKeyRelease &&
          c.pubkey_hash == lab.gateway.pkh()) {
        offer_outpoint = chain::OutPoint{txid, v};
        offer_out = tx.vout[v];
        offer_txid = txid;
        if (confirmations_required == 0) try_redeem();
      }
    }
  });
  lab.gateway_node->add_block_watcher(
      [&](const chain::Block&) { try_redeem(); });

  // Attacker-side tap: lift eSk off the wire.
  bool esk_obtained = false;
  lab.attacker_node->set_raw_tx_tap([&](const chain::Transaction& tx) {
    for (const chain::TxIn& in : tx.vin) {
      const auto key = script::extract_revealed_key(in.script_sig);
      if (key && crypto::rsa_pair_matches(ephemeral.pub, *key)) {
        esk_obtained = true;
      }
    }
  });

  // Craft the offer and the conflicting sweep from the same funding coins.
  const auto offer = lab.attacker.create_key_release_offer(
      lab.attacker_node->chain(), nullptr, ephemeral.pub, lab.gateway.pkh(),
      chain::kCoin, 1000, lab.attacker_node->chain().height() + 100);
  const auto conflict = lab.attacker.create_payment(
      lab.attacker_node->chain(), nullptr, lab.attacker.pkh(),
      9 * chain::kCoin, 2000);  // sweeps the same inputs back to self
  if (!offer || !conflict) return {};

  // The race (§6): offer only to the gateway, conflict only to the miner.
  lab.net.send(lab.attacker_node->host(), lab.gateway_node->host(),
               p2p::Message{"tx", offer->serialize(), -1});
  lab.net.send(lab.attacker_node->host(), lab.miner_node->host(),
               p2p::Message{"tx", conflict->serialize(), -1});

  // Let gossip and (k+3) blocks play out.
  for (int i = 0; i < confirmations_required + 3; ++i) lab.mine_block();
  lab.loop.run_until(lab.loop.now() + 5 * util::kSecond);

  AttackOutcome outcome;
  outcome.esk_obtained = esk_obtained;
  // The gateway is paid iff its redeem actually confirmed — check its
  // balance on the miner's (canonical) view of the chain.
  outcome.gateway_paid =
      redeemed && lab.gateway.balance(lab.miner_node->chain()) > 0;
  return outcome;
}

double honest_latency(int confirmations_required, std::uint64_t seed) {
  Lab lab(seed);
  const crypto::RsaKeyPair ephemeral = crypto::rsa_generate(lab.rng, 512);

  std::optional<chain::OutPoint> offer_outpoint;
  std::optional<chain::TxOut> offer_out;
  std::optional<chain::Hash256> offer_txid;
  bool redeemed = false;
  util::SimTime redeem_time = 0;
  auto try_redeem = [&] {
    if (redeemed || !offer_outpoint) return;
    if (confirmations_required > 0) {
      int confs = 0;
      if (!lab.gateway_node->chain().tx_confirmations(*offer_txid, confs) ||
          confs < confirmations_required) {
        return;
      }
    }
    const chain::Transaction redeem = lab.gateway.create_redeem(
        *offer_outpoint, *offer_out, ephemeral.priv, 500);
    lab.gateway_node->submit_tx(redeem);
    redeemed = true;
    redeem_time = lab.loop.now();
  };
  lab.gateway_node->add_tx_watcher([&](const chain::Transaction& tx) {
    const chain::Hash256 txid = tx.txid();
    for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
      const auto c = script::classify(tx.vout[v].script_pubkey);
      if (c.type == script::ScriptType::kKeyRelease &&
          c.pubkey_hash == lab.gateway.pkh()) {
        offer_outpoint = chain::OutPoint{txid, v};
        offer_out = tx.vout[v];
        offer_txid = txid;
        if (confirmations_required == 0) try_redeem();
      }
    }
  });
  lab.gateway_node->add_block_watcher(
      [&](const chain::Block&) { try_redeem(); });

  // Honest broadcast through the attacker's own node (normal gossip).
  const auto offer = lab.attacker.create_key_release_offer(
      lab.attacker_node->chain(), &lab.attacker_node->mempool(),
      ephemeral.pub, lab.gateway.pkh(), chain::kCoin, 1000,
      lab.attacker_node->chain().height() + 100);
  const util::SimTime start = lab.loop.now();
  lab.attacker_node->submit_tx(*offer);

  // Blocks arrive on the configured interval (the attack path mines fast
  // because only ordering matters there; here the wait is the datum).
  for (int i = 0; i < confirmations_required + 3 && !redeemed; ++i) {
    lab.loop.run_until(lab.loop.now() + lab.params.block_interval);
    lab.mine_block();
  }
  lab.loop.run_until(lab.loop.now() + 5 * util::kSecond);

  return redeemed ? util::to_seconds(redeem_time - start) : -1.0;
}

}  // namespace

int main() {
  bench::print_header("ABL-CONF",
                      "confirmations vs double-spend risk vs latency");

  const int kTrials = 10;
  std::printf("%-6s %-20s %-22s %-20s\n", "k", "attack_success",
              "attacker_got_eSk", "offer->eSk latency");
  for (const int k : {0, 1, 2, 6}) {
    int success = 0;
    int got_esk = 0;
    for (int t = 0; t < kTrials; ++t) {
      const AttackOutcome outcome =
          run_attack(k, 1000 + static_cast<std::uint64_t>(t));
      got_esk += outcome.esk_obtained;
      success += outcome.esk_obtained && !outcome.gateway_paid;
    }
    const double latency = honest_latency(k, 77);
    std::printf("%-6d %2d/%-17d %2d/%-19d %8.1f s\n", k, success, kTrials,
                got_esk, kTrials, latency);
  }

  std::printf(
      "\nshape check (paper §6): at k=0 the malicious recipient obtains eSk\n"
      "without paying (success ~100%%); one confirmation already defeats the\n"
      "race, at the cost of ~k x block-interval added honest latency\n"
      "(Bitcoin's '6 confirmations / 60 minutes' rule is the extreme).\n");
  return 0;
}

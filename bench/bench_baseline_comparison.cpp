// ABL-BASE — BcWAN vs the alternatives it displaces.
//
//  * latency: the legacy centralized LoRaWAN path (Fig. 1) vs BcWAN's
//    decentralized fair exchange (Fig. 2) — what removing the network
//    server costs;
//  * economics under malicious gateways: pay-first + reputation (§4.4's
//    rejected design), altruistic P2P (Durand et al., §3) and BcWAN's
//    fair exchange.
#include <cstdio>

#include "baseline/exchange_models.hpp"
#include "baseline/legacy_lorawan.hpp"
#include "bench_common.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  bench::print_header("ABL-BASE", "BcWAN vs centralized / reputation / altruistic");

  // --- Latency: legacy network-server path vs BcWAN ---
  baseline::LegacyConfig legacy_config;
  baseline::LegacyLoraWan legacy(legacy_config);
  legacy.run(1000);

  sim::ScenarioConfig bcwan_config;
  sim::Scenario bcwan_scenario(bcwan_config);
  bcwan_scenario.bootstrap();
  bcwan_scenario.run_exchanges(bench::exchange_count(400));

  std::printf("latency comparison (s):\n");
  std::printf("  %-28s %s\n", "legacy LoRaWAN (Fig. 1):",
              legacy.latency_stats().summary("s").c_str());
  std::printf("  %-28s %s\n", "BcWAN (Fig. 2, no verif.):",
              bcwan_scenario.latency_stats().summary("s").c_str());
  std::printf(
      "  -> BcWAN pays ~1 s of fair-exchange overhead on top of the\n"
      "     centralized path; the paper's claim is that this 'does not add\n"
      "     any significant overhead to a near real-time IoT application'.\n\n");

  // --- Economics under malicious gateways ---
  std::printf("economics under malicious foreign gateways "
              "(10k messages, price 1.0/message):\n");
  std::printf("  %-14s %-12s %-12s %-12s %-12s %-12s\n", "mechanism",
              "delivery", "paid", "lost", "gw_revenue", "mean_lat_s");
  for (const double malicious : {0.0, 0.2, 0.5}) {
    baseline::ExchangeModelConfig config;
    config.malicious_fraction = malicious;
    const auto reputation = baseline::run_reputation_model(config);
    baseline::ExchangeModelConfig sybil_config = config;
    sybil_config.whitewashing = true;
    const auto sybil = baseline::run_reputation_model(sybil_config);
    const auto bcwan = baseline::run_bcwan_model(config);
    const auto altruistic = baseline::run_altruistic_model(config);
    std::printf("  -- malicious fraction %.0f%% --\n", malicious * 100);
    std::printf("  %-14s %-12.3f %-12.0f %-12.0f %-12.0f %-12.2f\n",
                "reputation", reputation.delivery_rate(),
                reputation.value_paid, reputation.value_lost,
                reputation.gateway_revenue, reputation.mean_latency_s);
    std::printf("  %-14s %-12.3f %-12.0f %-12.0f %-12.0f %-12.2f\n",
                "rep.+sybil", sybil.delivery_rate(), sybil.value_paid,
                sybil.value_lost, sybil.gateway_revenue,
                sybil.mean_latency_s);
    std::printf("  %-14s %-12.3f %-12.0f %-12.0f %-12.0f %-12.2f\n", "bcwan",
                bcwan.delivery_rate(), bcwan.value_paid, bcwan.value_lost,
                bcwan.gateway_revenue, bcwan.mean_latency_s);
    std::printf("  %-14s %-12.3f %-12.0f %-12.0f %-12.0f %-12.2f\n",
                "altruistic", altruistic.delivery_rate(),
                altruistic.value_paid, altruistic.value_lost,
                altruistic.gateway_revenue, altruistic.mean_latency_s);
  }

  std::printf(
      "\nshape check: only BcWAN keeps value_lost at exactly 0 at every\n"
      "malice level (the fair-exchange guarantee) while still paying\n"
      "honest gateways (unlike the altruistic model, which offers no\n"
      "deployment incentive — §3's critique of Durand et al.); the\n"
      "reputation model bounds theft only while identities are pinned;\n"
      "with free re-registration (rep.+sybil) losses track the malicious\n"
      "fraction — §4.4: it 'reduces the probability of misbehavior but\n"
      "does not eliminate the problem'.\n");
  return 0;
}

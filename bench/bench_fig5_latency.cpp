// FIG5 — "BcWAN process latency (without block verification)" (paper §5.2).
//
// Setup mirrors the paper: 5 federation hosts + master miner, 30 sensors
// per host at 1% duty cycle, SF7, 128-byte payload + header, 2000 measured
// exchanges, block verification stalls DISABLED. The paper reports a mean
// full-exchange latency of 1.604 s, "from the first message from the
// gateway to the decryption of the message by the recipient".
#include <cstdio>

#include "bench_common.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  bench::print_header("FIG5", "process latency, block verification disabled");

  sim::ScenarioConfig config;
  config.block_verification_stall = false;
  sim::Scenario scenario(config);
  scenario.bootstrap();

  const std::size_t n = bench::exchange_count(2000);
  std::printf("running %zu exchanges across %d actors x %d sensors...\n\n", n,
              config.actors, config.sensors_per_actor);
  scenario.run_exchanges(n);

  bench::print_latency_figure(scenario.latency_stats(), 1.604, 4.0);
  std::printf("blocks mined       : %llu\n",
              static_cast<unsigned long long>(scenario.blocks_mined()));
  std::printf("virtual time       : %.0f s\n",
              util::to_seconds(scenario.loop().now()));
  bench::dump_series_csv("fig5_series.csv", scenario.records());
  std::printf(
      "\nshape check: mean in low single-digit seconds, unimodal, no\n"
      "multi-ten-second outliers — matches Fig. 5's near-real-time claim.\n");
  return 0;
}

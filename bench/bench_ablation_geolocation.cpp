// ABL-GEO — the §6 co-location observation.
//
// "The presented results do not take into account the edge geolocation
// nature of Peer-to-Peer communication. In a real world environment, a
// sensor has higher chances to communicate with a Gateway that is
// geolocated closer to his origin deployment. The network latency can thus
// be decreased between co-located foreign Gateways and lower the data
// retrieval latency."
//
// Sweeps the federation's WAN latency from co-located metro peers down to
// intercontinental PlanetLab distances and reports the exchange latency.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  bench::print_header("ABL-GEO", "gateway co-location vs exchange latency");

  struct Case {
    const char* name;
    double median_ms;
  };
  const Case cases[] = {
      {"same metro (co-located)", 3.0},
      {"same country", 15.0},
      {"continental (paper's PlanetLab)", 45.0},
      {"intercontinental", 140.0},
  };

  std::printf("%-34s %-12s %-30s\n", "deployment", "wan_median",
              "exchange latency");
  for (const Case& c : cases) {
    sim::ScenarioConfig config;
    config.wan_latency.median_ms = c.median_ms;
    config.seed = 7;
    sim::Scenario scenario(config);
    scenario.bootstrap();
    scenario.run_exchanges(bench::exchange_count(300));
    std::printf("%-34s %6.0f ms    mean=%.3fs p50=%.3fs p95=%.3fs\n", c.name,
                c.median_ms, scenario.latency_stats().mean(),
                scenario.latency_stats().median(),
                scenario.latency_stats().percentile(95));
  }

  std::printf(
      "\nshape check: each exchange crosses the WAN ~3 times (DELIVER +\n"
      "offer gossip + redeem gossip), so the mean falls by roughly\n"
      "3 x Delta(one-way latency) as gateways co-locate — the §6 claim\n"
      "that geolocated peering lowers data-retrieval latency.\n");
  return 0;
}

// CLUSTER: fair-exchange round-trip cost over real TCP on localhost.
//
// The simulator benches (FIG5/FIG6, SCALE) measure the protocol in virtual
// time; this one pays for real sockets. One process hosts three daemons —
// seller gateway, buyer gateway, miner — each on its own TcpTransport
// (epoll, framed wire protocol), and drives sequential fair exchanges:
//
//   offer (buyer, gossip) -> redeem (seller's mempool watcher, gossip)
//     -> eSk observed (buyer) = settled, then a block confirms the pair.
//
// Reported: exchange throughput (settled/s of wall clock, confirmation
// included) and the offer->settled latency distribution (p50/p99), plus a
// `converged` correctness flag: at the end all three nodes must agree on
// the tip with clean chain + settlement invariants and every exchange
// redeemed on-chain. Results go to BENCH_cluster.json (schema-checked and
// gated by bench/check_bench_json.py).
//
// BCWAN_SMOKE=1 runs fewer exchanges for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bcwan/fair_exchange.hpp"
#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "crypto/rsa.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/tcp_transport.hpp"
#include "sim/invariants.hpp"
#include "util/rng.hpp"

using namespace bcwan;
using Clock = std::chrono::steady_clock;

namespace {

constexpr chain::Amount kPrice = 2 * chain::kCoin;
constexpr chain::Amount kFee = 1000;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main() {
  const bool smoke = std::getenv("BCWAN_SMOKE") != nullptr;
  const int kExchanges = smoke ? 6 : 40;

  chain::ChainParams params;
  params.pow_zero_bits = 8;
  params.coinbase_maturity = 2;

  // Three daemons, one process: seller gateway (0), buyer gateway (1),
  // miner (2), each on its own epoll transport with a real listen socket.
  p2p::TcpTransportConfig c0, c1, c2;
  c0.self = 0;
  c1.self = 1;
  c2.self = 2;
  p2p::TcpTransport t0(c0), t1(c1), t2(c2);
  p2p::TcpTransport* transports[] = {&t0, &t1, &t2};
  for (p2p::TcpTransport* a : transports) {
    for (p2p::TcpTransport* b : transports) {
      if (a != b) {
        a->set_peer_address(b->self(),
                            "127.0.0.1:" + std::to_string(b->listen_port()));
      }
    }
  }
  p2p::ChainNode n0(t0, 0, params, {}, 1);
  p2p::ChainNode n1(t1, 1, params, {}, 2);
  p2p::ChainNode n2(t2, 2, params, {}, 3);
  p2p::ChainNode* nodes[] = {&n0, &n1, &n2};

  auto pump = [&](const std::function<bool()>& done, double deadline_ms) {
    const auto t0c = Clock::now();
    while (ms_since(t0c) < deadline_ms) {
      for (p2p::TcpTransport* t : transports) t->poll(1);
      if (done()) return true;
    }
    return done();
  };

  chain::Wallet seller_wallet = chain::Wallet::from_seed("bench-seller");
  chain::Wallet buyer_wallet = chain::Wallet::from_seed("bench-buyer");
  chain::Miner miner(params, buyer_wallet.pkh());  // rewards fund the buyer
  std::uint64_t mine_time = 0;
  auto mine = [&] {
    const chain::Block block =
        miner.mine(n2.chain(), n2.mempool(), ++mine_time);
    n2.submit_block(block);
  };

  // Bootstrap: mature coins for the buyer, propagated to everyone.
  for (int i = 0; i < params.coinbase_maturity + 1; ++i) mine();
  if (!pump([&] { return n0.chain().height() == n2.chain().height() &&
                         n1.chain().height() == n2.chain().height(); },
            10000)) {
    std::fprintf(stderr, "bootstrap propagation timed out\n");
    return 1;
  }

  // The seller's redeem watcher survives all exchanges; it redeems against
  // whichever sale is currently open.
  std::unique_ptr<core::FairExchangeSeller> seller;
  n0.add_tx_watcher([&](const chain::Transaction& tx) {
    if (!seller) return;
    if (auto redeem = seller->try_redeem(tx, kFee)) {
      n0.submit_tx(*redeem);
    }
  });
  std::unique_ptr<core::FairExchangeBuyer> buyer;
  bool settled = false;
  n1.add_tx_watcher([&](const chain::Transaction& tx) {
    if (buyer && !settled && buyer->observe(tx)) settled = true;
  });

  util::Rng rng(0xBC4A);
  std::vector<double> latency_ms;
  latency_ms.reserve(static_cast<std::size_t>(kExchanges));
  int completed = 0;
  const auto run_start = Clock::now();
  for (int i = 0; i < kExchanges; ++i) {
    seller = std::make_unique<core::FairExchangeSeller>(
        seller_wallet, crypto::rsa_generate(rng, 512));
    buyer = std::make_unique<core::FairExchangeBuyer>(
        buyer_wallet, seller->ephemeral_pub(), seller_wallet.pkh(), kPrice,
        kFee, 40);
    settled = false;

    const auto x0 = Clock::now();
    const auto offer = buyer->make_offer(n1.chain(), &n1.mempool());
    if (!offer || !n1.submit_tx(*offer).ok()) {
      std::fprintf(stderr, "exchange %d: offer failed (funds?)\n", i);
      break;
    }
    // offer: 1 -> 0 gossip; redeem: 0 -> 1 gossip. Settled = eSk in hand.
    if (!pump([&] { return settled; }, 10000)) {
      std::fprintf(stderr, "exchange %d: timed out\n", i);
      break;
    }
    latency_ms.push_back(ms_since(x0));

    // Confirm the pair before the next round (keeps every exchange's
    // settlement on-chain and the buyer's change spendable).
    mine();
    if (!pump([&] { return n1.chain().height() == n2.chain().height(); },
              10000)) {
      std::fprintf(stderr, "exchange %d: confirmation timed out\n", i);
      break;
    }
    ++completed;
  }
  const double wall_s = ms_since(run_start) / 1000.0;

  // Final convergence audit across all three nodes.
  mine();
  bool converged = pump(
      [&] {
        return n0.chain().tip_hash() == n2.chain().tip_hash() &&
               n1.chain().tip_hash() == n2.chain().tip_hash();
      },
      10000);
  std::uint64_t redeemed = 0;
  for (p2p::ChainNode* node : nodes) {
    sim::InvariantReport settle_report;
    const sim::SettlementTally tally =
        sim::check_settlement_invariants(node->chain(), settle_report);
    if (!sim::check_chain_invariants(node->chain()).ok() ||
        !settle_report.ok()) {
      converged = false;
    }
    redeemed = tally.redeemed;
  }
  if (redeemed != static_cast<std::uint64_t>(completed)) converged = false;
  if (completed != kExchanges) converged = false;

  std::sort(latency_ms.begin(), latency_ms.end());
  const double p50 = percentile(latency_ms, 0.50);
  const double p99 = percentile(latency_ms, 0.99);
  const double per_s = wall_s > 0 ? completed / wall_s : 0.0;

  std::printf("CLUSTER: localhost TCP fair exchange (%s)\n",
              smoke ? "smoke" : "full");
  std::printf("  exchanges        : %d/%d settled + confirmed\n", completed,
              kExchanges);
  std::printf("  throughput       : %.1f exchanges/s wall\n", per_s);
  std::printf("  offer->settled   : p50 %.2f ms, p99 %.2f ms\n", p50, p99);
  std::printf("  converged        : %s (3 nodes, %llu redeemed on-chain)\n",
              converged ? "yes" : "NO",
              static_cast<unsigned long long>(redeemed));

  std::FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f != nullptr) {
    bench::JsonWriter w(f);
    w.begin_object();
    w.str("experiment", "CLUSTER");
    w.boolean("smoke", smoke);
    w.integer("nodes", 3);
    w.integer("exchanges", kExchanges);
    w.integer("exchanges_completed", completed);
    w.num("wall_seconds", wall_s, "%.3f");
    w.num("exchanges_per_s", per_s, "%.2f");
    w.num("latency_p50_ms", p50, "%.3f");
    w.num("latency_p99_ms", p99, "%.3f");
    w.uint("frames_sent", t0.stats().frames_out + t1.stats().frames_out +
                              t2.stats().frames_out);
    w.uint("bytes_sent", t0.stats().bytes_out + t1.stats().bytes_out +
                             t2.stats().bytes_out);
    w.boolean("converged", converged);
    w.uint("peak_rss_bytes", bench::peak_rss_bytes());
    w.end_object();
    w.finish();
    std::fclose(f);
    std::printf("results written to BENCH_cluster.json\n");
  }
  return converged ? 0 : 1;
}
// SCALE — city-scale simulation engine benchmark.
//
// Exercises the sharded deterministic event core (DESIGN.md §14) end to
// end:
//
//   1. Determinism preamble (hard gates, run before any timing):
//      * the city engine's commutative trace digest and its full sorted
//        trace must be identical under the serial backend and the sharded
//        backend at 2 threads;
//      * the paper-scale Scenario — the real agent/chain stack — must
//        produce the same chain tip, height and completed-exchange count
//        under both backends.
//   2. Headline run: 10k gateways / 100k sensors / 1k recipients driven
//      until over one million fair exchanges complete, reporting
//      exchanges/s and events/s of wall time plus peak RSS.
//   3. Shard ablation: the same city re-run under the sharded backend at
//      1/2/4/8 workers, digest-checked against the serial run.
//
// Smoke mode (BCWAN_SCALE_SMOKE=1) shrinks the city so CI finishes in
// seconds. Results land in BENCH_scale.json (schema-checked and
// headline-gated by bench/check_bench_json.py).
//
// Note on speedup numbers: wall-clock speedup from sharding is bounded by
// the physical cores of the host (reported as "cores"); on a single-core
// runner the ablation mostly measures the overhead of the merge barrier.
// The determinism gates are core-count independent.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/citysim.hpp"
#include "sim/scenario.hpp"
#include "util/time.hpp"

namespace {

using bcwan::util::SimTime;
namespace util = bcwan::util;
namespace sim = bcwan::sim;
namespace p2p = bcwan::p2p;

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

sim::CityConfig city_config(bool smoke) {
  sim::CityConfig config;
  if (smoke) {
    config.gateways = 200;
    config.sensors = 2000;
    config.recipients = 50;
  } else {
    config.gateways = 10000;
    config.sensors = 100000;
    config.recipients = 1000;
  }
  config.seed = 42;
  return config;
}

struct CityResult {
  std::uint64_t exchanges = 0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t parallel_windows = 0;
  double latency_mean_s = 0.0;
  double wall_ms = 0.0;
};

CityResult run_city(const sim::CityConfig& config,
                    p2p::EventLoop::Backend backend, unsigned threads,
                    SimTime duration) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::CityEngine engine(config, backend, threads);
  engine.run_for(duration);
  CityResult r;
  r.exchanges = engine.exchanges_completed();
  r.digest = engine.trace_digest();
  r.events = engine.loop().events_executed();
  r.verify_failures = engine.verify_failures();
  r.parallel_windows = engine.loop().parallel_windows();
  r.latency_mean_s = engine.latency_mean_s();
  r.wall_ms = wall_ms_since(t0);
  return r;
}

struct ScenarioFingerprint {
  bcwan::chain::Hash256 tip{};
  int height = 0;
  std::uint64_t exchanges = 0;
  double latency_mean_s = 0.0;
};

/// Run the full-stack Scenario (real agents, real chain) under the given
/// backend and fingerprint its end state. BCWAN_SIM_BACKEND is set for the
/// Scenario's internally constructed EventLoop.
ScenarioFingerprint run_scenario_backend(const char* backend) {
  setenv("BCWAN_SIM_BACKEND", backend, 1);
  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 4;
  config.seed = 7;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(8, 30 * util::kMinute);
  ScenarioFingerprint fp;
  fp.tip = scenario.master_node().chain().tip_hash();
  fp.height = scenario.master_node().chain().height();
  fp.exchanges = scenario.exchanges_completed();
  fp.latency_mean_s = scenario.streamed_latency().mean();
  unsetenv("BCWAN_SIM_BACKEND");
  return fp;
}

}  // namespace

int main() {
  bcwan::bench::print_header("SCALE",
                             "city-scale sharded deterministic event core");
  const bool smoke = []() {
    for (const char* name : {"BCWAN_SMOKE", "BCWAN_SCALE_SMOKE"}) {
      const char* env = std::getenv(name);
      if (env != nullptr && std::string(env) != "0") return true;
    }
    return false;
  }();
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("mode: %s, cores: %u\n\n", smoke ? "smoke" : "full", cores);

  // ---- 1. determinism gates ------------------------------------------------
  std::printf("[1/3] cross-backend determinism gates\n");
  sim::CityConfig gate_config = city_config(true);
  gate_config.keep_trace = true;
  const SimTime gate_virtual = 2 * util::kMinute;
  sim::CityEngine gate_serial(gate_config, p2p::EventLoop::Backend::kSerial,
                              1);
  gate_serial.run_for(gate_virtual);
  sim::CityEngine gate_sharded(gate_config, p2p::EventLoop::Backend::kSharded,
                               2);
  gate_sharded.run_for(gate_virtual);
  const bool trace_equal =
      gate_serial.trace_digest() == gate_sharded.trace_digest() &&
      gate_serial.exchanges_completed() == gate_sharded.exchanges_completed() &&
      gate_serial.sorted_trace() == gate_sharded.sorted_trace();
  std::printf("  city trace: serial digest %016llx, sharded digest %016llx "
              "(%llu exchanges) -> %s\n",
              static_cast<unsigned long long>(gate_serial.trace_digest()),
              static_cast<unsigned long long>(gate_sharded.trace_digest()),
              static_cast<unsigned long long>(
                  gate_serial.exchanges_completed()),
              trace_equal ? "EQUAL" : "MISMATCH");

  const ScenarioFingerprint fp_serial = run_scenario_backend("serial");
  const ScenarioFingerprint fp_sharded = run_scenario_backend("sharded");
  const bool tips_equal = fp_serial.tip == fp_sharded.tip &&
                          fp_serial.height == fp_sharded.height &&
                          fp_serial.exchanges == fp_sharded.exchanges;
  std::printf("  scenario chain: height %d/%d, exchanges %llu/%llu -> %s\n",
              fp_serial.height, fp_sharded.height,
              static_cast<unsigned long long>(fp_serial.exchanges),
              static_cast<unsigned long long>(fp_sharded.exchanges),
              tips_equal ? "EQUAL" : "MISMATCH");
  if (!trace_equal || !tips_equal) {
    std::fprintf(stderr, "determinism gate failed; aborting bench\n");
    return 1;
  }

  // ---- 2. headline city run ------------------------------------------------
  // A sensor's duty cycle is interval + pipeline latency (~55 s at the
  // defaults), so the city completes ~sensors/55 exchanges per virtual
  // second. Size the virtual horizon to clear the exchange target.
  const sim::CityConfig config = city_config(smoke);
  const std::uint64_t target_exchanges = smoke ? 20000 : 1000000;
  const SimTime duration =
      smoke ? 12 * util::kMinute : 11 * util::kMinute;
  std::printf("\n[2/3] headline: %u gateways, %u sensors, %u recipients, "
              "%.0f virtual minutes\n",
              config.gateways, config.sensors, config.recipients,
              util::to_seconds(duration) / 60.0);

  const CityResult headline =
      run_city(config, p2p::EventLoop::Backend::kSerial, 1, duration);
  const double exchanges_per_sec =
      static_cast<double>(headline.exchanges) / (headline.wall_ms / 1e3);
  const double events_per_sec =
      static_cast<double>(headline.events) / (headline.wall_ms / 1e3);
  const unsigned long long rss = bcwan::bench::peak_rss_bytes();
  const double rss_gib = static_cast<double>(rss) / (1024.0 * 1024.0 * 1024.0);
  std::printf("  exchanges : %llu (target %llu) in %.1f s wall\n",
              static_cast<unsigned long long>(headline.exchanges),
              static_cast<unsigned long long>(target_exchanges),
              headline.wall_ms / 1e3);
  std::printf("  throughput: %.0f exchanges/s, %.0f events/s (wall)\n",
              exchanges_per_sec, events_per_sec);
  std::printf("  latency   : %.3f s mean (virtual), verify failures %llu\n",
              headline.latency_mean_s,
              static_cast<unsigned long long>(headline.verify_failures));
  std::printf("  peak RSS  : %.3f GiB\n", rss_gib);
  const bool scale_target_met = headline.exchanges >= target_exchanges &&
                                headline.wall_ms <= 600e3 &&
                                (rss == 0 || rss_gib <= 4.0);
  std::printf("  scale target (>=%llu exchanges, <=10 min, <=4 GiB): %s\n",
              static_cast<unsigned long long>(target_exchanges),
              scale_target_met ? "MET" : "NOT MET");

  // ---- 3. shard ablation ---------------------------------------------------
  std::printf("\n[3/3] shard ablation (sharded backend, digest-checked)\n");
  struct Ablation {
    unsigned threads;
    CityResult result;
  };
  std::vector<Ablation> ablation;
  double speedup_8t = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const CityResult r = run_city(config, p2p::EventLoop::Backend::kSharded,
                                  threads, duration);
    const double speedup = headline.wall_ms / r.wall_ms;
    if (threads == 8) speedup_8t = speedup;
    std::printf("  %u threads: %8.0f ms wall, %llu windows, digest %s, "
                "%.2fx vs serial\n",
                threads, r.wall_ms,
                static_cast<unsigned long long>(r.parallel_windows),
                r.digest == headline.digest ? "EQUAL" : "MISMATCH", speedup);
    if (r.digest != headline.digest ||
        r.exchanges != headline.exchanges) {
      std::fprintf(stderr, "ablation digest mismatch at %u threads\n",
                   threads);
      return 1;
    }
    ablation.push_back(Ablation{threads, r});
  }
  if (cores < 8) {
    std::printf("  (host has %u core(s); wall-clock speedup is bounded by "
                "physical parallelism)\n", cores);
  }

  // ---- JSON ----------------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (f != nullptr) {
    bcwan::bench::JsonWriter w(f);
    w.begin_object();
    w.str("experiment", "SCALE");
    w.boolean("smoke", smoke);
    w.uint("cores", cores);
    w.uint("gateways", config.gateways);
    w.uint("sensors", config.sensors);
    w.uint("recipients", config.recipients);
    w.num("virtual_seconds", util::to_seconds(duration), "%.1f");
    w.uint("exchanges_completed", headline.exchanges);
    w.uint("events_executed", headline.events);
    w.num("wall_seconds", headline.wall_ms / 1e3, "%.3f");
    w.num("exchanges_per_sec_wall", exchanges_per_sec, "%.1f");
    w.num("events_per_sec_wall", events_per_sec, "%.1f");
    w.num("latency_mean_s", headline.latency_mean_s, "%.3f");
    w.uint("verify_failures", headline.verify_failures);
    w.boolean("verify_clean", headline.verify_failures == 0);
    w.boolean("backend_trace_equal", trace_equal);
    w.boolean("chain_tips_equal", tips_equal);
    w.boolean("scale_target_met", scale_target_met);
    w.uint("peak_rss_bytes", rss);
    w.num("peak_rss_gib", rss_gib, "%.3f");
    w.num("sharded_speedup_8t", speedup_8t, "%.2f");
    w.begin_array("ablation");
    for (const Ablation& a : ablation) {
      w.begin_object();
      w.uint("threads", a.threads);
      w.num("wall_ms", a.result.wall_ms, "%.1f");
      w.uint("parallel_windows", a.result.parallel_windows);
      w.num("speedup_vs_serial", headline.wall_ms / a.result.wall_ms, "%.3f");
      w.boolean("digest_match", a.result.digest == headline.digest);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish();
    std::fclose(f);
    std::printf("\nresults written to BENCH_scale.json\n");
  }
  return 0;
}

// ABL-POS — the §6 consensus extension.
//
// "The Proof-of-Work is not suitable for edge nodes to run the blockchain
// as this is a computational power based method of election. Other methods
// such as Proof-of-stake do not rely on computational power and thus can
// help to further close the gap of the blockchain to the edge nodes."
//
// Measures block-production CPU cost under PoW at several difficulties vs
// the PoS slot-leader signature, then runs the full federation on a
// proof-of-stake chain to show exchanges behave identically.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "chain/miner.hpp"
#include "chain/pos.hpp"
#include "chain/wallet.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  using Clock = std::chrono::steady_clock;
  bench::print_header("ABL-POS", "proof-of-work vs proof-of-stake election");

  // --- Block production cost ---
  std::printf("block production cost (mean over 20 blocks):\n");
  std::printf("  %-22s %-14s %-30s\n", "consensus", "cost_ms",
              "edge-node verdict");
  for (const unsigned bits : {8u, 12u, 16u, 20u}) {
    chain::ChainParams params;
    params.pow_zero_bits = bits;
    params.coinbase_maturity = 2;
    chain::Blockchain bc(params);
    chain::Mempool pool(params);
    const chain::Wallet w = chain::Wallet::from_seed("pos-bench");
    const chain::Miner miner(params, w.pkh());
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < 20; ++i) {
      const chain::Block block = miner.mine(bc, pool, i);
      bc.accept_block(block);
    }
    const auto t1 = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / 20.0;
    std::printf("  PoW %2u zero bits       %-14.2f %s\n", bits, ms,
                bits >= 16 ? "minutes-to-hours on a Pi-class gateway"
                           : "feasible but wasteful");
  }
  {
    chain::ChainParams params;
    params.consensus = chain::ConsensusMode::kProofOfStake;
    params.coinbase_maturity = 2;
    const crypto::EcKeyPair key =
        crypto::ec_from_seed(util::str_bytes("pos-bench"));
    params.validators.push_back(
        chain::Validator{crypto::ec_pubkey_encode(key.pub), 1});
    chain::Blockchain bc(params);
    chain::Mempool pool(params);
    const chain::Wallet w = chain::Wallet::from_seed("pos-bench");
    chain::Miner miner(params, w.pkh());
    miner.set_pos_key(key);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < 20; ++i) {
      const chain::Block block = miner.mine(bc, pool, i);
      bc.accept_block(block);
    }
    const auto t1 = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / 20.0;
    std::printf("  PoS slot signature     %-14.2f %s\n", ms,
                "one ECDSA signature: edge-viable");
  }

  // --- Full federation on PoS ---
  std::printf("\nfull federation on a proof-of-stake chain:\n");
  sim::ScenarioConfig config;
  config.chain_params.consensus = chain::ConsensusMode::kProofOfStake;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(bench::exchange_count(400));
  std::printf("  exchange latency: %s\n",
              scenario.latency_stats().summary("s").c_str());

  std::printf(
      "\nshape check: PoW cost scales exponentially with difficulty while\n"
      "PoS stays at one signature regardless; exchange latency on PoS is\n"
      "indistinguishable from PoW's FIG5 regime (consensus is off the\n"
      "fast path — the fair exchange settles in the mempool).\n");
  return 0;
}

// FIG6 — "BcWAN process latency" with block verification (paper §5.2).
//
// Identical setup to FIG5, but every block arrival stalls the receiving
// daemon for a sampled verification period ("the block verification made
// the Multichain daemon stall and become unresponsive for extended periods
// upon each block arrival"). The paper reports a mean of 30.241 s.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  bench::print_header("FIG6", "process latency, with block verification");

  sim::ScenarioConfig config;
  config.block_verification_stall = true;
  sim::Scenario scenario(config);
  scenario.bootstrap();

  const std::size_t n = bench::exchange_count(2000);
  std::printf("running %zu exchanges across %d actors x %d sensors...\n\n", n,
              config.actors, config.sensors_per_actor);
  scenario.run_exchanges(n);

  bench::print_latency_figure(scenario.latency_stats(), 30.241, 120.0);
  std::printf("blocks mined       : %llu\n",
              static_cast<unsigned long long>(scenario.blocks_mined()));
  std::printf("virtual time       : %.0f s\n",
              util::to_seconds(scenario.loop().now()));
  bench::dump_series_csv("fig6_series.csv", scenario.records());
  std::printf(
      "\nshape check: an order of magnitude above FIG5, heavy-tailed and\n"
      "multimodal (fast exchanges that dodge block arrivals vs. exchanges\n"
      "queued behind one or more verification stalls) — matches Fig. 6.\n");
  return 0;
}

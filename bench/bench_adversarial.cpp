// ADV-MATRIX: byzantine-intensity sweep. Drive the §5.2 federation while an
// AdversaryPlan escalates every attack class at once — cheating gateways
// (withhold / garble / double-claim), reveal-censoring + fee-sniping
// miners, LoRa replay / jamming / bit-flips, and duty-cycle griefers — and
// report, per intensity level, how many attacks were launched, how many
// were defended by the protocol mechanism built for them, and whether the
// economic fair-exchange invariants (paid ⟺ revealed, at-most-one
// settlement, reclaim only after timeout) held on the settled chain.
//
// Results go to BENCH_adversarial.json (schema-checked and headline-gated
// by bench/check_bench_json.py).
//
//   BCWAN_SMOKE=1 ./bench_adversarial        # CI smoke run
//   BCWAN_EXCHANGES=40 ./bench_adversarial   # heavier sweep
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "sim/adversary.hpp"
#include "sim/invariants.hpp"
#include "sim/scenario.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace bcwan;

struct LevelResult {
  double intensity = 0.0;
  std::size_t offered = 0;
  std::uint64_t completed = 0;
  double p50_s = 0.0;
  // Attack volume (adversary side).
  std::uint64_t gateways_corrupted = 0;
  std::uint64_t fee_snipes = 0;
  std::uint64_t censorship_windows = 0;
  std::uint64_t jam_windows = 0;
  std::uint64_t frames_replayed = 0;
  std::uint64_t frames_mangled = 0;
  std::uint64_t frames_jammed = 0;
  std::uint64_t grief_requests = 0;
  std::uint64_t txs_censored = 0;
  // Defence volume (protocol side).
  std::uint64_t garbled_submits = 0;
  std::uint64_t garbled_rejected = 0;
  std::uint64_t double_claims = 0;
  std::uint64_t double_claims_rejected = 0;
  std::uint64_t replays_dropped = 0;
  std::uint64_t sig_rejects = 0;
  std::uint64_t redeems_withheld = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t abandoned = 0;
  // Settlement outcome on the master chain.
  std::uint64_t offers_settled_redeemed = 0;
  std::uint64_t offers_settled_reclaimed = 0;
  std::size_t invariant_violations = 0;
};

sim::ScenarioConfig sweep_config(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 3;
  config.seed = seed;
  config.chain_params.pow_zero_bits = 4;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 10 * util::kSecond;
  config.recipient_funding = 200 * chain::kCoin;
  config.gateway_config.offer_timeout = 5 * util::kMinute;
  config.gateway_config.issued_key_timeout = 5 * util::kMinute;
  config.recipient_config.timeout_blocks = 30;
  return config;
}

LevelResult run_level(double intensity, std::size_t exchanges,
                      std::uint64_t seed) {
  sim::Scenario s(sweep_config(seed));
  s.bootstrap();

  // Attacks are sampled over the window the exchange traffic actually
  // occupies (9 sensors at a 40 s mean inter-report interval) — a longer
  // horizon would schedule adversaries into dead air after the target
  // count has completed.
  const util::SimTime start = s.loop().now();
  constexpr util::SimTime kHorizon = 2 * util::kMinute;
  sim::AdversaryPlan adversary(s, seed * 17 + 3);
  if (intensity > 0.0) {
    sim::AdversaryProfile profile;
    profile.withholding_gateways = intensity;
    profile.garbling_gateways = 0.5 * intensity;
    profile.double_claim_gateways = 0.5 * intensity;
    profile.censorship_windows = intensity;
    profile.censorship_duration = 2 * util::kMinute;
    profile.jam_windows = intensity;
    profile.jam_duration = 30 * util::kSecond;
    // Kept sub-saturating: a bit-flip on every frame tests nothing but the
    // retry ceiling; a fraction tests the signature firewall under load.
    profile.bitflip_probability = std::min(0.05 * intensity, 0.5);
    profile.replay_probability = std::min(0.25 * intensity, 1.0);
    profile.replay_delay = 15 * util::kMinute;
    profile.duty_griefers = static_cast<int>(intensity);
    adversary.unleash(profile, kHorizon);
  }

  // High intensities can flip every gateway byzantine, stalling completions
  // entirely — bound the run so the sweep terminates either way.
  s.run_exchanges(exchanges, util::kHour);
  // Drain past the attack horizon: fee-snipes land at its end, reclaim
  // paths need the CLTV height, and delayed replays are still in flight.
  const util::SimTime drain_until =
      std::max(s.loop().now() + 20 * util::kMinute,
               start + kHorizon + 20 * util::kMinute);
  s.loop().run_until(drain_until);

  LevelResult r;
  r.intensity = intensity;
  r.offered = exchanges;
  r.completed = s.exchanges_completed();
  if (s.latency_stats().count() > 0) r.p50_s = s.latency_stats().median();

  r.gateways_corrupted = adversary.gateways_corrupted();
  r.fee_snipes = adversary.fee_snipes();
  r.censorship_windows = adversary.censorship_windows();
  r.jam_windows = adversary.jam_windows();
  r.frames_replayed = adversary.frames_replayed();
  r.grief_requests = adversary.grief_requests_sent();
  r.frames_mangled = s.radio().frames_mangled();
  r.frames_jammed = s.radio().frames_jammed();
  r.txs_censored = s.miner().txs_censored();

  for (std::size_t g = 0; g < s.gateway_count(); ++g) {
    const auto& gw = s.gateway_by_index(g);
    r.garbled_submits += gw.garbled_submits();
    r.garbled_rejected += gw.garbled_rejected();
    r.double_claims += gw.double_claims();
    r.double_claims_rejected += gw.double_claims_rejected();
    r.replays_dropped += gw.replays_dropped();
    r.redeems_withheld += gw.redeems_withheld();
  }
  for (int a = 0; a < s.actor_count(); ++a) {
    r.sig_rejects += s.recipient(a).signature_rejects();
    r.reclaims += s.recipient(a).reclaims_submitted();
    r.abandoned += s.recipient(a).exchanges_abandoned();
  }

  sim::InvariantReport report = sim::check_federation_invariants(
      s, /*expect_quiescent=*/false);
  sim::InvariantReport settlement_report;
  const sim::SettlementTally tally = sim::check_settlement_invariants(
      s.master_node().chain(), settlement_report);
  r.offers_settled_redeemed = tally.redeemed;
  r.offers_settled_reclaimed = tally.reclaimed;
  r.invariant_violations =
      report.violations.size() + settlement_report.violations.size();
  if (!report.ok() || !settlement_report.ok()) {
    std::fprintf(stderr, "[adversarial] intensity %.2f violations:\n%s\n%s\n",
                 intensity, report.to_string().c_str(),
                 settlement_report.to_string().c_str());
  }
  return r;
}

/// Deterministic 1:1 attack/defence pairs: every garbled reveal must be
/// rejected, every double-claim refused, every stale replay dropped.
/// Withholding, jamming, censorship and griefing have no per-event
/// rejection — their defence is the settlement outcome (reclaims, exactly-
/// once settlement), gated by the economic_invariants_hold flag instead.
double defense_ratio(const LevelResult* results, std::size_t n,
                     std::uint64_t* launched_out,
                     std::uint64_t* defended_out) {
  std::uint64_t challenged = 0;
  std::uint64_t defended = 0;
  std::uint64_t launched = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LevelResult& r = results[i];
    challenged += r.garbled_submits + r.double_claims + r.frames_replayed;
    defended += r.garbled_rejected + r.double_claims_rejected +
                r.replays_dropped;
    launched += r.gateways_corrupted + r.fee_snipes + r.censorship_windows +
                r.jam_windows + r.frames_replayed + r.frames_mangled +
                r.grief_requests;
  }
  *launched_out = launched;
  *defended_out = defended;
  if (challenged == 0) return 1.0;
  return std::min(1.0, static_cast<double>(defended) /
                           static_cast<double>(challenged));
}

void write_json(const LevelResult* results, std::size_t n, bool smoke,
                std::size_t exchanges) {
  std::FILE* f = std::fopen("BENCH_adversarial.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open BENCH_adversarial.json\n");
    std::exit(3);
  }
  std::uint64_t launched = 0;
  std::uint64_t defended = 0;
  const double ratio = defense_ratio(results, n, &launched, &defended);
  std::size_t violations = 0;
  for (std::size_t i = 0; i < n; ++i)
    violations += results[i].invariant_violations;

  bench::JsonWriter w(f);
  w.begin_object();
  w.str("experiment", "ADV-MATRIX");
  w.boolean("smoke", smoke);
  w.uint("exchanges_per_level", exchanges);
  w.uint("attacks_launched", launched);
  w.uint("attacks_defended", defended);
  w.num("defense_success_ratio", ratio, "%.4f");
  w.boolean("economic_invariants_hold", violations == 0);
  w.uint("peak_rss_bytes", bench::peak_rss_bytes());
  w.begin_array("levels");
  for (std::size_t i = 0; i < n; ++i) {
    const LevelResult& r = results[i];
    w.begin_object();
    w.num("intensity", r.intensity, "%.2f");
    w.uint("offered", r.offered);
    w.uint("completed", r.completed);
    w.num("p50_latency_s", r.p50_s, "%.3f");
    w.begin_object("attacks");
    w.uint("gateways_corrupted", r.gateways_corrupted);
    w.uint("fee_snipes", r.fee_snipes);
    w.uint("censorship_windows", r.censorship_windows);
    w.uint("jam_windows", r.jam_windows);
    w.uint("frames_replayed", r.frames_replayed);
    w.uint("frames_mangled", r.frames_mangled);
    w.uint("frames_jammed", r.frames_jammed);
    w.uint("grief_requests", r.grief_requests);
    w.uint("txs_censored", r.txs_censored);
    w.end_object();
    w.begin_object("defences");
    w.uint("garbled_submits", r.garbled_submits);
    w.uint("garbled_rejected", r.garbled_rejected);
    w.uint("double_claims", r.double_claims);
    w.uint("double_claims_rejected", r.double_claims_rejected);
    w.uint("replays_dropped", r.replays_dropped);
    w.uint("sig_rejects", r.sig_rejects);
    w.uint("redeems_withheld", r.redeems_withheld);
    w.uint("reclaims", r.reclaims);
    w.uint("exchanges_abandoned", r.abandoned);
    w.end_object();
    w.begin_object("settlement");
    w.uint("redeemed", r.offers_settled_redeemed);
    w.uint("reclaimed", r.offers_settled_reclaimed);
    w.uint("invariant_violations", r.invariant_violations);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.finish();
  std::fclose(f);
  std::fprintf(stderr,
               "[adversarial] launched=%llu defended=%llu ratio=%.4f "
               "violations=%zu -> BENCH_adversarial.json\n",
               static_cast<unsigned long long>(launched),
               static_cast<unsigned long long>(defended), ratio, violations);
}

}  // namespace

int main() {
  std::fprintf(stderr,
               "adversarial — byzantine attack sweep over the fair exchange\n");
  telemetry::set_enabled(true);
  const bool smoke = std::getenv("BCWAN_SMOKE") != nullptr;
  const std::size_t exchanges = smoke ? 12 : bench::exchange_count(30);
  const double levels[] = {0.0, 0.5, 1.0, 2.0};
  constexpr std::size_t kLevels = sizeof(levels) / sizeof(levels[0]);
  LevelResult results[kLevels];
  std::size_t violations = 0;
  for (std::size_t i = 0; i < kLevels; ++i) {
    std::fprintf(stderr, "[adversarial] intensity %.2f ...\n", levels[i]);
    results[i] = run_level(levels[i], exchanges, 2000 + i);
    violations += results[i].invariant_violations;
  }
  write_json(results, kLevels, smoke, exchanges);
  if (telemetry::compiled_in() &&
      telemetry::write_json_snapshot("TELEMETRY_adversarial.json")) {
    std::fprintf(stderr,
                 "telemetry snapshot written to TELEMETRY_adversarial.json\n");
  }
  // The sweep's whole claim is that safety holds under attack: a violation
  // is a failed run, not a data point.
  return violations == 0 ? 0 : 1;
}

// LST1 — the ephemeral private key release script (paper Listing 1).
//
// Prints the exact script and microbenchmarks both spend paths plus plain
// P2PKH for scale, via google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/rsa.hpp"
#include "script/interpreter.hpp"
#include "script/templates.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcwan;

struct Fixture {
  util::Rng rng{99};
  crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng, 512);
  script::PubKeyHash gateway_pkh =
      script::to_pubkey_hash(util::str_bytes("gateway-pub"));
  script::PubKeyHash buyer_pkh =
      script::to_pubkey_hash(util::str_bytes("buyer-pub"));
  script::Script lock =
      script::make_key_release(ephemeral.pub, gateway_pkh, buyer_pkh, 100100);
  script::Script redeem = script::make_key_release_redeem(
      util::str_bytes("sig"), util::str_bytes("gateway-pub"), ephemeral.priv);
  script::Script reclaim = script::make_key_release_reclaim(
      util::str_bytes("sig"), util::str_bytes("buyer-pub"));
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

class AlwaysValidChecker : public script::SignatureChecker {
 public:
  explicit AlwaysValidChecker(std::int64_t locktime) : locktime_(locktime) {}
  bool check_sig(util::ByteView, util::ByteView) const override { return true; }
  std::int64_t tx_locktime() const override { return locktime_; }
  bool input_sequence_final() const override { return false; }

 private:
  std::int64_t locktime_;
};

void BM_KeyReleaseRedeemPath(benchmark::State& state) {
  Fixture& f = fixture();
  const AlwaysValidChecker checker(0);
  for (auto _ : state) {
    const auto result = script::verify_spend(f.redeem, f.lock, checker);
    if (!result.ok()) state.SkipWithError("redeem path failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KeyReleaseRedeemPath);

void BM_KeyReleaseReclaimPath(benchmark::State& state) {
  Fixture& f = fixture();
  const AlwaysValidChecker checker(100100);  // past the timeout
  for (auto _ : state) {
    const auto result = script::verify_spend(f.reclaim, f.lock, checker);
    if (!result.ok()) state.SkipWithError("reclaim path failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KeyReleaseReclaimPath);

void BM_P2pkhPath(benchmark::State& state) {
  Fixture& f = fixture();
  const AlwaysValidChecker checker(0);
  const script::Script lock = script::make_p2pkh(f.gateway_pkh);
  const script::Script sig = script::make_p2pkh_scriptsig(
      util::str_bytes("sig"), util::str_bytes("gateway-pub"));
  for (auto _ : state) {
    const auto result = script::verify_spend(sig, lock, checker);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_P2pkhPath);

void BM_ClassifyKeyRelease(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const auto c = script::classify(f.lock);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClassifyKeyRelease);

void BM_ExtractRevealedKey(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    const auto key = script::extract_revealed_key(f.redeem);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_ExtractRevealedKey);

void BM_CheckRsa512PairOpcode(benchmark::State& state) {
  Fixture& f = fixture();
  const script::NullSignatureChecker checker;
  script::Script s;
  s.push(f.ephemeral.priv.serialize())
      .push(f.ephemeral.pub.serialize())
      .op(script::Opcode::OP_CHECKRSA512PAIR);
  for (auto _ : state) {
    const auto result = script::eval_script(s, {}, checker);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CheckRsa512PairOpcode);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=========================================================\n");
  std::printf("LST1 — ephemeral private key release script (Listing 1)\n");
  std::printf("=========================================================\n");
  std::printf("scriptPubKey:\n  %s\n\n",
              fixture().lock.disassemble().c_str());
  std::printf("gateway redeem scriptSig (reveals eSk):\n  %s\n\n",
              fixture().redeem.disassemble().c_str());
  std::printf("buyer reclaim scriptSig (dummy eSk, CLTV branch):\n  %s\n\n",
              fixture().reclaim.disassemble().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

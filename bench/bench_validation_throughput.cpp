// VAL-TPUT — block-validation throughput across the pipeline ablations.
//
// The paper's Fig. 6 stall is block *verification* saturating the daemon;
// this bench measures what the three optimizations buy on connect_block:
//
//   serial_baseline            threads=1, caches off, Montgomery off,
//                              reference double-and-add ECDSA
//   parallel (thread sweep)    check-queue only
//   parallel_cache             + salted sig/script-execution caches, warmed
//                                the way production warms them (every tx was
//                                fully validated at mempool admission)
//   parallel_cache_montgomery  + Montgomery-form bignum fast path
//
// Cold-path ablation (sigcache off — every signature is verified for real,
// the first-sync / adversarial-flood regime):
//
//   cold_reference             Montgomery on, reference ECDSA ladder
//   cold_wnaf                  + windowed-NAF scalar mul, Jacobian coords
//   cold_shamir                + Shamir's trick (u1*G + u2*Q in one pass)
//   cold_shamir_t8             + 8-thread check queue
//
// plus an OP_CHECKRSA512PAIR reveal block timed with the plain full-width
// private exponent vs RSA-CRT (rsa_plain_ms / rsa_crt_ms).
//
// Every configuration connects the *same* block from the same starting UTXO
// set; the serial and parallel verdicts AND the reference-vs-fast-backend
// verdicts (including a corrupted-block rejection) are cross-checked before
// any timing is reported. Results are printed and written as JSON to
// BENCH_validation.json.
//
// BCWAN_SMOKE=1 shrinks the workload for CI sanity runs (e.g. under TSan).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bignum/montgomery.hpp"
#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "chain/miner.hpp"
#include "chain/sigcache.hpp"
#include "chain/validation.hpp"
#include "chain/wallet.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/rsa.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace bcwan;
using Clock = std::chrono::steady_clock;

chain::Transaction make_spend(const chain::Wallet& owner,
                              const chain::OutPoint& outpoint,
                              const chain::TxOut& coin,
                              const script::Script& dest_script,
                              chain::Amount fee) {
  chain::Transaction tx;
  chain::TxIn in;
  in.prevout = outpoint;
  tx.vin.push_back(std::move(in));
  chain::TxOut out;
  out.value = coin.value - fee;
  out.script_pubkey = dest_script;
  tx.vout.push_back(std::move(out));
  owner.sign_p2pkh_input(tx, 0, coin.script_pubkey);
  return tx;
}

struct ConfigResult {
  std::string name;
  unsigned threads = 1;
  bool cache = false;
  bool montgomery = false;
  std::string backend = "reference";
  double connect_ms_mean = 0.0;
};

void set_caches(bool enabled) {
  chain::sig_cache().set_enabled(enabled);
  chain::script_exec_cache().set_enabled(enabled);
  chain::sig_cache().clear();
  chain::script_exec_cache().clear();
}

}  // namespace

int main() {
  bench::print_header("VAL-TPUT", "block validation pipeline throughput");

  const bool smoke = std::getenv("BCWAN_SMOKE") != nullptr;
  const std::size_t kTxs = smoke ? 24 : 160;
  const int kReps = smoke ? 2 : 5;

  chain::ChainParams params;
  params.pow_zero_bits = 4;
  params.coinbase_maturity = 2;
  chain::Blockchain bc(params);
  chain::Mempool pool(params);
  const chain::Wallet miner_wallet = chain::Wallet::from_seed("val-miner");
  const chain::Wallet alice = chain::Wallet::from_seed("val-alice");
  const chain::Miner miner(params, miner_wallet.pkh());

  std::uint64_t now = 0;
  auto mine = [&] {
    const chain::Block block = miner.mine(bc, pool, ++now);
    bc.accept_block(block);
    pool.remove_confirmed(block);
  };
  for (int i = 0; i < 6; ++i) mine();
  for (int i = 0; i < 8; ++i) {
    const auto tx = miner_wallet.create_payment(bc, &pool, alice.pkh(),
                                                40 * chain::kCoin, 1000);
    if (tx) pool.accept(*tx, bc.utxo(), bc.height() + 1);
    mine();
  }

  // A block of fresh chained P2PKH spends (ECDSA dominates each check).
  set_caches(true);
  const script::Script alice_script = script::make_p2pkh(alice.pkh());
  chain::Mempool block_pool(params);
  std::size_t queued = 0;
  for (const auto& [outpoint, coin] : alice.spendable(bc)) {
    chain::OutPoint cursor = outpoint;
    chain::TxOut cursor_out = coin.out;
    while (queued < kTxs) {
      chain::Transaction tx =
          make_spend(alice, cursor, cursor_out, alice_script, 1000);
      cursor = chain::OutPoint{tx.txid(), 0};
      cursor_out = tx.vout[0];
      if (!block_pool.accept(tx, bc.utxo(), bc.height() + 1).ok()) break;
      ++queued;
      if (queued % 20 == 0) break;  // bounded chains; move to the next coin
    }
    if (queued >= kTxs) break;
  }
  chain::Block block = miner.assemble(bc, block_pool, ++now);
  chain::solve_pow(block.header);
  const int height = bc.height() + 1;
  std::printf("block under test: %zu transactions (%u hardware threads)\n",
              block.txs.size(), std::thread::hardware_concurrency());

  // --- Verdict equivalence gate ------------------------------------------
  bool verdicts_match = true;
  {
    set_caches(false);
    chain::ChainParams serial_p = params;
    chain::ChainParams parallel_p = params;
    parallel_p.script_check_threads = 8;

    chain::UtxoSet u1 = bc.utxo();
    chain::UtxoSet u2 = bc.utxo();
    chain::BlockUndo undo1, undo2;
    const auto r1 = chain::connect_block(block, u1, height, serial_p, undo1);
    const auto r2 = chain::connect_block(block, u2, height, parallel_p, undo2);
    verdicts_match &= r1.ok() && r2.ok() && u1.size() == u2.size() &&
                      u1.total_value() == u2.total_value();

    // Corrupt one mid-block signature: both paths must reject with the same
    // transaction index and error.
    chain::Block bad = block;
    chain::Transaction& victim = bad.txs[bad.txs.size() / 2];
    util::Bytes tampered = victim.vin[0].script_sig.bytes();
    tampered[tampered.size() / 2] ^= 0x01;
    victim.vin[0].script_sig = script::Script(std::move(tampered));
    victim.invalidate_txid();
    bad.header.merkle_root = chain::compute_merkle_root(bad.txs);
    chain::solve_pow(bad.header);
    chain::UtxoSet u3 = bc.utxo();
    chain::UtxoSet u4 = bc.utxo();
    const auto r3 = chain::connect_block(bad, u3, height, serial_p, undo1);
    const auto r4 = chain::connect_block(bad, u4, height, parallel_p, undo2);
    verdicts_match &= !r3.ok() && !r4.ok() && r3.error == r4.error &&
                      r3.failed_tx_index == r4.failed_tx_index &&
                      r3.tx_failure.error == r4.tx_failure.error &&
                      r3.tx_failure.script_error == r4.tx_failure.script_error;

    // Cross-check the ECDSA backends the same way: the wNAF/Shamir fast
    // paths must accept the valid block and reject the corrupted one at the
    // same transaction with the same error as the reference ladder.
    for (const char* backend : {"reference", "wnaf", "shamir"}) {
      if (!crypto::ecdsa_select_backend(backend)) {
        verdicts_match = false;
        break;
      }
      set_caches(false);
      chain::UtxoSet ub1 = bc.utxo();
      chain::UtxoSet ub2 = bc.utxo();
      chain::BlockUndo undo_b1, undo_b2;
      const auto rb1 = chain::connect_block(block, ub1, height, serial_p,
                                            undo_b1);
      const auto rb2 = chain::connect_block(bad, ub2, height, serial_p,
                                            undo_b2);
      verdicts_match &= rb1.ok() && !rb2.ok() && rb2.error == r3.error &&
                        rb2.failed_tx_index == r3.failed_tx_index &&
                        rb2.tx_failure.script_error ==
                            r3.tx_failure.script_error;
    }
    crypto::ecdsa_select_backend("auto");
  }
  std::printf("serial/parallel + reference/fast-backend verdicts match: %s\n\n",
              verdicts_match ? "yes" : "NO — BUG");

  // --- Timed configurations ----------------------------------------------
  auto measure = [&](const std::string& name, unsigned threads, bool cache,
                     bool montgomery, const char* backend) {
    bignum::set_montgomery_enabled(montgomery);
    crypto::ecdsa_select_backend(backend);
    set_caches(cache);
    chain::ChainParams p = params;
    p.script_check_threads = threads;
    chain::UtxoSet utxo = bc.utxo();
    chain::BlockUndo undo;
    if (cache) {
      // Production warm-up: mempool admission validated every tx once.
      chain::Mempool warm(params);
      for (std::size_t i = 1; i < block.txs.size(); ++i)
        warm.accept(block.txs[i], bc.utxo(), height);
    }
    double total_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      const auto result = chain::connect_block(block, utxo, height, p, undo);
      const auto t1 = Clock::now();
      if (!result.ok()) {
        std::printf("unexpected failure in %s\n", name.c_str());
        std::exit(1);
      }
      total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      chain::disconnect_block(undo, utxo);
    }
    ConfigResult r{name, threads, cache, montgomery, backend,
                   total_ms / kReps};
    std::printf("%-28s threads=%u cache=%d mont=%d ecdsa=%-9s : %8.2f "
                "ms/connect\n",
                r.name.c_str(), threads, cache, montgomery, backend,
                r.connect_ms_mean);
    return r;
  };

  std::vector<ConfigResult> results;
  results.push_back(measure("serial_baseline", 1, false, false, "reference"));
  // Montgomery in isolation (ECDSA field/scalar mod_mul + mod_exp): visible
  // here because the cached configs skip script execution entirely.
  results.push_back(measure("serial_montgomery", 1, false, true, "reference"));
  for (unsigned threads : {2u, 4u, 8u}) {
    results.push_back(measure("parallel_t" + std::to_string(threads), threads,
                              false, false, "reference"));
  }
  results.push_back(measure("parallel_cache", 8, true, false, "reference"));
  results.push_back(
      measure("parallel_cache_montgomery", 8, true, true, "reference"));

  // Cold-path ablation: sigcache off, so every connect verifies every
  // signature. serial_montgomery above doubles as the reference-crypto
  // datum (cold_reference repeats it under its ablation name so the
  // quartet reads off one table).
  results.push_back(measure("cold_reference", 1, false, true, "reference"));
  results.push_back(measure("cold_wnaf", 1, false, true, "wnaf"));
  results.push_back(measure("cold_shamir", 1, false, true, "shamir"));
  results.push_back(measure("cold_shamir_t8", 8, false, true, "shamir"));
  bignum::set_montgomery_enabled(true);
  crypto::ecdsa_select_backend("auto");
  set_caches(true);

  const double baseline = results.front().connect_ms_mean;
  double cold_connect_ms = 0.0;
  for (const ConfigResult& r : results)
    if (r.name == "cold_shamir") cold_connect_ms = r.connect_ms_mean;
  const double cold_speedup =
      cold_connect_ms > 0.0 ? baseline / cold_connect_ms : 0.0;
  double best = baseline;
  for (const ConfigResult& r : results)
    best = std::min(best, r.connect_ms_mean);
  std::printf("\nfull pipeline speedup vs serial baseline: %.1fx %s\n",
              baseline / best,
              (baseline / best >= 3.0 ? "(target >= 3x met)" : ""));
  std::printf("cold connect (sigcache off, shamir): %.2f ms, %.1fx vs serial "
              "%s\n",
              cold_connect_ms, cold_speedup,
              (cold_speedup >= 5.0 ? "(target >= 5x met)" : ""));

  // The reveal section below mines new blocks (advancing bc and spending
  // alice's coins), which invalidates `block` against the future UTXO set;
  // snapshot the current state for the telemetry passes at the end.
  const chain::UtxoSet pre_rsa_utxo = bc.utxo();

  // --- OP_CHECKRSA512PAIR reveal block: plain exponent vs RSA-CRT ---------
  // Offers are mined first; the block under test is all redeems, each of
  // which reveals a wire-format (n||e||d) private key that the verifier's
  // OP_CHECKRSA512PAIR must check against the locked public key. The CRT
  // parameters are recovered from (e, d) and cached per thread, exactly the
  // production path for on-chain reveals.
  const std::size_t kReveals = smoke ? 2 : 8;
  util::Rng rsa_rng(4242);
  std::vector<crypto::RsaKeyPair> ephemerals;
  std::vector<chain::Transaction> offers;
  const chain::Wallet gateway = chain::Wallet::from_seed("val-gateway");
  for (std::size_t i = 0; i < kReveals; ++i) {
    ephemerals.push_back(crypto::rsa_generate(rsa_rng, 512));
    const auto offer = alice.create_key_release_offer(
        bc, &pool, ephemerals.back().pub, gateway.pkh(), 1 * chain::kCoin,
        1000, bc.height() + 100);
    if (!offer) break;
    if (!pool.accept(*offer, bc.utxo(), bc.height() + 1).ok()) break;
    offers.push_back(*offer);
  }
  mine();
  chain::Mempool redeem_pool(params);
  for (std::size_t i = 0; i < offers.size(); ++i) {
    const chain::Transaction redeem = gateway.create_redeem(
        chain::OutPoint{offers[i].txid(), 0}, offers[i].vout[0],
        ephemerals[i].priv, 1000);
    redeem_pool.accept(redeem, bc.utxo(), bc.height() + 1);
  }
  chain::Block rsa_block = miner.assemble(bc, redeem_pool, ++now);
  chain::solve_pow(rsa_block.header);
  const int rsa_height = bc.height() + 1;
  const std::size_t rsa_reveal_txs = rsa_block.txs.size() - 1;

  auto measure_rsa = [&](const char* name, bool crt) {
    crypto::set_rsa_crt_enabled(crt);
    set_caches(false);
    chain::UtxoSet utxo = bc.utxo();
    chain::BlockUndo undo;
    double total_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      const auto result =
          chain::connect_block(rsa_block, utxo, rsa_height, params, undo);
      const auto t1 = Clock::now();
      if (!result.ok()) {
        std::printf("unexpected failure in %s\n", name);
        std::exit(1);
      }
      total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      chain::disconnect_block(undo, utxo);
    }
    const double mean = total_ms / kReps;
    std::printf("%-28s %zu reveals                                : %8.2f "
                "ms/connect\n",
                name, rsa_reveal_txs, mean);
    return mean;
  };
  const double rsa_plain_ms = measure_rsa("rsa_reveal_plain", false);
  const double rsa_crt_ms = measure_rsa("rsa_reveal_crt", true);
  const double rsa_crt_speedup =
      rsa_crt_ms > 0.0 ? rsa_plain_ms / rsa_crt_ms : 0.0;
  crypto::set_rsa_crt_enabled(true);
  set_caches(true);
  std::printf("rsa reveal connect: plain %.2f ms -> crt %.2f ms (%.2fx)\n",
              rsa_plain_ms, rsa_crt_ms, rsa_crt_speedup);

  std::FILE* f = std::fopen("BENCH_validation.json", "w");
  if (f != nullptr) {
    bench::JsonWriter w(f);
    w.begin_object();
    w.str("experiment", "VAL-TPUT");
    w.boolean("smoke", smoke);
    w.uint("block_txs", block.txs.size());
    w.uint("hardware_threads", std::thread::hardware_concurrency());
    w.integer("repetitions", kReps);
    w.boolean("verdicts_match", verdicts_match);
    w.num("cold_connect_ms", cold_connect_ms, "%.3f");
    w.num("cold_speedup_vs_serial", cold_speedup, "%.2f");
    w.uint("rsa_reveal_txs", rsa_reveal_txs);
    w.num("rsa_plain_ms", rsa_plain_ms, "%.3f");
    w.num("rsa_crt_ms", rsa_crt_ms, "%.3f");
    w.num("rsa_crt_speedup", rsa_crt_speedup, "%.2f");
    w.begin_array("configs");
    for (const ConfigResult& r : results) {
      w.begin_object();
      w.str("name", r.name);
      w.uint("threads", r.threads);
      w.boolean("sigcache", r.cache);
      w.boolean("montgomery", r.montgomery);
      w.str("ecdsa_backend", r.backend);
      w.num("connect_ms_mean", r.connect_ms_mean, "%.3f");
      w.num("speedup_vs_serial", baseline / r.connect_ms_mean, "%.2f");
      w.end_object();
    }
    w.end_array();
    w.uint("peak_rss_bytes", bench::peak_rss_bytes());
    w.end_object();
    w.finish();
    std::fclose(f);
    std::printf("results written to BENCH_validation.json\n");
  }

  // Telemetry snapshot — taken from one extra *untimed* connect so enabling
  // the runtime flag cannot perturb the numbers above (DESIGN.md §10).
  if (telemetry::compiled_in()) {
    telemetry::set_enabled(true);
    telemetry::registry().reset_all();
    chain::ChainParams p = params;
    p.script_check_threads = 8;
    // Two connects over warm caches so the snapshot's hit-rate gauges are
    // exercised, not vacuously zero.
    set_caches(true);
    chain::BlockValidationResult result;
    for (int pass = 0; pass < 2; ++pass) {
      // Pass 1 is cold (caches just cleared). For pass 2 the script-exec
      // cache is dropped but the sigcache kept, so scripts re-execute and
      // check_sig takes its cached path — the snapshot then shows both
      // sigverify outcome counters, not just cold_valid.
      if (pass == 1) chain::script_exec_cache().clear();
      chain::UtxoSet utxo = pre_rsa_utxo;
      chain::BlockUndo undo;
      result = chain::connect_block(block, utxo, height, p, undo);
      if (!result.ok()) break;
    }
    if (result.ok()) {
      // One reveal-block connect so the RSA/OP_CHECKRSA512PAIR path shows
      // up in the same snapshot.
      chain::UtxoSet utxo = bc.utxo();
      chain::BlockUndo undo;
      result = chain::connect_block(rsa_block, utxo, rsa_height, p, undo);
    }
    // Snapshot while still enabled: collectors write gauges at export time,
    // and those writes are no-ops once the runtime flag drops.
    if (result.ok() &&
        telemetry::write_json_snapshot("TELEMETRY_validation.json",
                                       telemetry::registry(),
                                       /*include_spans=*/false)) {
      std::printf("telemetry snapshot written to TELEMETRY_validation.json\n");
    }
    telemetry::set_enabled(false);
  }
  return verdicts_match ? 0 : 1;
}

// ABL-INT — the Multichain knobs (paper §5.1).
//
// "Multichain ... provides interesting features from a Blockchain testbed
// point of view such as modifying the average mining time, the size of a
// block or the consensus in a Blockchain. Those parameters impact ...
// the overall performance of it."
//
// Sweeps the average mining interval in both FIG5 and FIG6 modes. Without
// verification stalls the interval barely matters (the fair exchange
// settles in the mempool); with stalls it sets how often daemons freeze,
// and the latency swings by an order of magnitude.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  bench::print_header("ABL-INT", "block interval (Multichain mining-time knob)");

  std::printf("%-14s %-12s %-34s\n", "interval", "verif.stall",
              "exchange latency");
  for (const bool stall : {false, true}) {
    for (const int interval_s : {5, 15, 60}) {
      sim::ScenarioConfig config;
      config.chain_params.block_interval = interval_s * util::kSecond;
      config.block_verification_stall = stall;
      // Keep the stall model proportional to the interval so daemons are
      // comparably loaded (the paper's stall was tied to its 15 s blocks).
      config.stall_median_s = 10.1 * interval_s / 15.0;
      config.seed = 7;
      sim::Scenario scenario(config);
      scenario.bootstrap();
      scenario.run_exchanges(bench::exchange_count(300), 4 * util::kHour);
      std::printf("%8d s     %-12s mean=%.2fs p50=%.2fs p95=%.2fs (n=%zu)\n",
                  interval_s, stall ? "on" : "off",
                  scenario.latency_stats().mean(),
                  scenario.latency_stats().median(),
                  scenario.latency_stats().percentile(95),
                  scenario.latency_stats().count());
    }
  }

  std::printf(
      "\nshape check: without verification the exchange never touches a\n"
      "block, so the interval is irrelevant (FIG5 regime throughout); with\n"
      "verification the mean scales with the stall/interval duty cycle —\n"
      "longer blocks mean rarer but longer freezes, and the tail grows\n"
      "with the absolute stall length.\n");
  return 0;
}

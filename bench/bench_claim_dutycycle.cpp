// CLM-DUTY — "a theoretical maximum of 183 messages per sensor per hour"
// (paper §5.2: 128 B payload + 4 B header, SF7, 1% duty cycle).
//
// Regenerates the duty-cycle arithmetic for every spreading factor, and
// validates it against the radio simulator by actually pumping a sensor for
// a virtual hour.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "lora/airtime.hpp"
#include "lora/radio.hpp"

int main() {
  using namespace bcwan;
  bench::print_header("CLM-DUTY", "duty-cycle throughput, 132-byte frame");

  std::printf("%-5s %-14s %-16s %-18s\n", "SF", "airtime_ms",
              "max_per_hour@1%", "simulated_hour");
  for (int sf = 7; sf <= 12; ++sf) {
    lora::LoraConfig cfg;
    cfg.sf = static_cast<lora::SpreadingFactor>(sf);
    const double air_ms = 1000.0 * lora::airtime_s(cfg, 132);
    const int analytic = lora::max_messages_per_hour(cfg, 132, 0.01);

    // Empirical check with the radio simulator.
    p2p::EventLoop loop;
    lora::LoraRadio radio(loop, 1);
    int received = 0;
    const lora::RadioGatewayId gw = radio.add_gateway(
        [&received](lora::RadioDeviceId, const util::Bytes&) { ++received; });
    const lora::RadioDeviceId dev =
        radio.add_device(gw, cfg, 0.01, [](const util::Bytes&) {});
    std::function<void()> pump = [&] {
      const lora::TxResult tx = radio.uplink(dev, util::Bytes(132, 0));
      const util::SimTime next =
          tx.accepted ? radio.device_next_allowed(dev, loop.now())
                      : tx.next_allowed;
      if (next < util::kHour) loop.at(next, pump);
    };
    pump();
    loop.run_until(util::kHour);

    std::printf("%-5d %-14.1f %-16d %-18d\n", sf, air_ms, analytic, received);
  }

  std::printf(
      "\npaper claim: 183 msg/sensor/hour at SF7 — implies ~196.7 ms of\n"
      "airtime per frame; the Semtech-exact formula for 132 B at\n"
      "SF7/BW125/CR4-5 gives 220.4 ms -> 163/h. Same order; the paper's\n"
      "accounting was slightly optimistic. Shape across SF7-12 (airtime\n"
      "roughly doubles per SF step, throughput halves) reproduced.\n");
  return 0;
}

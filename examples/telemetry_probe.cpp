// Telemetry probe — the CI scrape smoke test.
//
// Runs a small federation with telemetry enabled, then:
//   1. renders the Prometheus text exposition and runs the strict
//      validator over it (any malformed line fails the build);
//   2. writes TELEMETRY_probe.prom and TELEMETRY_probe.json;
//   3. asserts the metrics the acceptance criteria name are present:
//      per-phase exchange latency histograms, verification-cache hit
//      rates, and LoRa duty-cycle gauges;
//   4. checks extracted quantiles are monotone.
//
// Exits nonzero on any failure so CI catches exporter or wiring
// regressions.
//
//   ./telemetry_probe
#include <cstdio>
#include <cstdlib>
#include <string>

#include "p2p/tcp_transport.hpp"
#include "sim/scenario.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"

namespace {

int failures = 0;

void require(bool ok, const char* what) {
  std::printf("  %-58s %s\n", what, ok ? "ok" : "FAIL");
  if (!ok) ++failures;
}

}  // namespace

int main() {
  using namespace bcwan;
  std::printf("telemetry probe — scrape + snapshot smoke test\n");

  if (!telemetry::compiled_in()) {
    std::printf("telemetry compiled out (BCWAN_TELEMETRY=OFF) — nothing to "
                "probe, exiting clean.\n");
    return 0;
  }
  telemetry::set_enabled(true);

  sim::ScenarioConfig config;
  config.actors = 2;
  config.sensors_per_actor = 2;
  config.chain_params.pow_zero_bits = 8;
  config.chain_params.coinbase_maturity = 3;
  config.recipient_funding = 10 * chain::kCoin;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  scenario.run_exchanges(4, 2 * util::kHour);
  std::printf("scenario done: %llu exchanges completed\n\n",
              static_cast<unsigned long long>(scenario.exchanges_completed()));
  require(scenario.exchanges_completed() >= 4, "4 exchanges completed");

  // --- Real-socket transport metrics -------------------------------------
  // A tiny TCP loopback exchange so the bcwan_p2p_tcp_* family shows up in
  // the same scrape as the simulated federation.
  {
    p2p::TcpTransportConfig ca;
    ca.self = 0;
    p2p::TcpTransportConfig cb;
    cb.self = 1;
    p2p::TcpTransport ta(ca), tb(cb);
    ta.set_peer_address(1, "127.0.0.1:" + std::to_string(tb.listen_port()));
    tb.set_peer_address(0, "127.0.0.1:" + std::to_string(ta.listen_port()));
    bool got = false;
    tb.set_handler(1, [&](const p2p::Message&) { got = true; });
    ta.send(0, 1, p2p::Message{"probe", util::str_bytes("ping"), 0});
    for (int i = 0; i < 5000 && !got; ++i) {
      ta.poll(1);
      tb.poll(1);
    }
    require(got, "TCP loopback frame delivered");
    require(ta.stats().frames_out >= 1 && tb.stats().frames_in >= 1,
            "TCP transport stats counted the frame");
  }

  // --- Prometheus exposition ---------------------------------------------
  const std::string prom = telemetry::render_prometheus();
  const auto error = telemetry::validate_prometheus(prom);
  require(!error.has_value(), "prometheus exposition validates");
  if (error) std::printf("    validator: %s\n", error->c_str());

  const auto has = [&prom](const char* needle) {
    return prom.find(needle) != std::string::npos;
  };
  require(has("bcwan_exchange_phase_seconds_bucket{phase=\"uplink\""),
          "phase histogram: uplink");
  require(has("bcwan_exchange_phase_seconds_bucket{phase=\"offer\""),
          "phase histogram: offer");
  require(has("bcwan_exchange_phase_seconds_bucket{phase=\"reveal\""),
          "phase histogram: reveal");
  require(has("bcwan_exchange_phase_seconds_bucket{phase=\"decrypt\""),
          "phase histogram: decrypt");
  require(has("bcwan_chain_cache_hit_rate{cache=\"sig\"}"),
          "sigcache hit-rate gauge");
  require(has("bcwan_chain_cache_hit_rate{cache=\"script_exec\"}"),
          "script-exec-cache hit-rate gauge");
  require(has("bcwan_lora_duty_credit_seconds{direction=\"uplink\"}"),
          "LoRa duty-credit gauge (uplink)");
  require(has("bcwan_lora_airtime_seconds_total{direction=\"uplink\"}"),
          "LoRa airtime gauge");
  require(has("bcwan_p2p_messages_in_total"), "p2p message counters");
  require(has("bcwan_chain_connect_block_seconds_count"),
          "connect-block histogram");
  require(has("bcwan_p2p_tcp_frames_out_total"), "TCP frames-out counter");
  require(has("bcwan_p2p_tcp_frames_in_total"), "TCP frames-in counter");
  require(has("bcwan_p2p_tcp_bytes_out_total"), "TCP bytes-out counter");
  require(has("bcwan_p2p_tcp_connects_total"), "TCP connects counter");
  require(has("bcwan_p2p_tcp_open_sockets"), "TCP open-sockets gauge");

  // --- Quantile sanity ----------------------------------------------------
  auto& latency = telemetry::registry().histogram(
      "bcwan_exchange_latency_seconds");
  const double p50 = latency.quantile(0.50);
  const double p90 = latency.quantile(0.90);
  const double p99 = latency.quantile(0.99);
  require(latency.count() >= 4, "latency histogram populated");
  require(p50 <= p90 && p90 <= p99, "quantiles monotone (p50<=p90<=p99)");
  require(p50 >= latency.observed_min() && p99 <= latency.observed_max(),
          "quantiles clamped to observed range");

  // --- Snapshot files -----------------------------------------------------
  bool prom_written = false;
  if (std::FILE* f = std::fopen("TELEMETRY_probe.prom", "w")) {
    prom_written =
        std::fwrite(prom.data(), 1, prom.size(), f) == prom.size();
    std::fclose(f);
  }
  require(prom_written, "TELEMETRY_probe.prom written");
  require(telemetry::write_json_snapshot("TELEMETRY_probe.json",
                                         telemetry::registry(),
                                         /*include_spans=*/true),
          "TELEMETRY_probe.json written");

  std::printf("\n%s\n", failures == 0 ? "probe passed." : "probe FAILED.");
  return failures == 0 ? 0 : 1;
}

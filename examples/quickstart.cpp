// Quickstart: one BcWAN exchange, narrated step by step.
//
// Builds the smallest possible federation (two actors + a master miner),
// provisions one sensor, and walks a single reading through the complete
// Fig. 3 protocol — LoRa request, ephemeral key, double encryption,
// delivery over the simulated WAN, the Listing-1 offer, the redeem that
// reveals eSk, and the final decryption.
//
//   ./quickstart
#include <cstdio>

#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  std::printf("BcWAN quickstart — one fair exchange, end to end\n");
  std::printf("------------------------------------------------\n\n");

  sim::ScenarioConfig config;
  config.actors = 2;             // actor 0 owns the sensor; actor 1's gateway forwards
  config.sensors_per_actor = 1;
  config.chain_params.pow_zero_bits = 8;
  config.chain_params.coinbase_maturity = 3;
  config.recipient_funding = 10 * chain::kCoin;
  sim::Scenario scenario(config);

  std::printf("[bootstrap] mining the funding chain, paying recipients,\n");
  std::printf("            publishing directory announcements...\n");
  scenario.bootstrap();
  std::printf("            chain height %d, recipient balance %.4f coins\n\n",
              scenario.master_node().chain().height(),
              static_cast<double>(scenario.recipient(0).wallet().balance(
                  scenario.actor_node(0).chain())) /
                  chain::kCoin);

  auto& loop = scenario.loop();
  auto& gateway = scenario.gateway(1);     // the FOREIGN gateway
  auto& recipient = scenario.recipient(0); // the sensor's home actor
  auto& sensor = scenario.sensor(0, 0);

  std::printf("[identities]\n");
  std::printf("  recipient @R      : %s\n", recipient.wallet().address().c_str());
  std::printf("  foreign gateway   : %s\n", gateway.wallet().address().c_str());
  std::printf("  sensor device id  : %u\n\n", sensor.device_id());

  gateway.on_ephemeral_sent = [&](std::uint16_t id) {
    std::printf("[%7.3fs] step 1-2  gateway minted ephemeral RSA-512 pair, "
                "downlinked ePk to device %u\n",
                util::to_seconds(loop.now()), id);
  };
  sensor.on_data_sent = [&](std::uint16_t id) {
    std::printf("[%7.3fs] step 3-5  device %u sealed the reading "
                "(AES-256-CBC under K, RSA under ePk, signed with Ska)\n"
                "                     and uplinked Em | Sig | @R (128 B + "
                "addressing)\n",
                util::to_seconds(loop.now()), id);
  };
  gateway.on_forwarded = [&](std::uint16_t id) {
    std::printf("[%7.3fs] step 6-7  gateway looked @R up in the blockchain "
                "directory and DELIVERed (Em, ePk, Sig) over TCP (device %u)\n",
                util::to_seconds(loop.now()), id);
  };
  recipient.on_offer_posted = [&](std::uint16_t id) {
    std::printf("[%7.3fs] step 8-9  recipient verified the signature and "
                "posted the Listing-1 offer transaction (device %u)\n",
                util::to_seconds(loop.now()), id);
  };
  gateway.on_redeemed = [&](std::uint16_t id) {
    std::printf("[%7.3fs] step 10   gateway redeemed the offer, revealing "
                "eSk in its scriptSig (device %u)\n",
                util::to_seconds(loop.now()), id);
  };
  bool done = false;
  recipient.on_reading = [&](std::uint16_t id, const util::Bytes& reading) {
    std::printf("[%7.3fs] step 11   recipient extracted eSk from the redeem, "
                "peeled RSA then AES:\n"
                "                     device %u reading = \"%s\"\n",
                util::to_seconds(loop.now()), id,
                util::bytes_str(reading).c_str());
    done = true;
  };

  const util::SimTime t0 = loop.now();
  std::printf("[exchange] sensor requests an uplink...\n");
  sensor.start_exchange(util::str_bytes("t=22.4;rh=51"));
  while (!done && loop.now() < t0 + 10 * util::kMinute) {
    loop.run_until(loop.now() + util::kSecond);
  }

  // Let the redeem confirm so the reward shows up.
  loop.run_until(loop.now() + 2 * util::kMinute);
  std::printf("\n[settlement] gateway confirmed reward: %.4f coins\n",
              static_cast<double>(
                  gateway.wallet().balance(scenario.actor_node(1).chain())) /
                  chain::kCoin);
  std::printf("done.\n");
  return done ? 0 : 1;
}

// Multi-process cluster harness: the paper's §5.2 testbed on localhost.
//
// Spawns five gateway `bcwand` daemons plus one miner over real TCP, lets
// the fair-exchange workload run, then SIGKILLs one gateway mid-exchange,
// restarts it, and asserts federation convergence: after an orderly
// shutdown every persisted store must reopen to the identical tip hash and
// state hash, with clean chain + settlement invariants and a nonzero
// redeemed count. Exit code 0 only when every assertion holds — CI gates
// on it, under ASan/UBSan too.
//
//   cluster [--gateways 5] [--target-redeemed 6] [--workdir DIR]
//           [--base-port P] [--timeout-s 120] [--no-kill]
//
// The SIGKILL victim (gateway 2 by default) is killed once the federation
// has redeemed about half the target, left dead for a beat, then restarted
// with the same argv: it must recover its chain from disk (snapshot + log
// replay) and catch up the rest over getblocks sync.
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "sim/invariants.hpp"
#include "store/store.hpp"
#include "util/bytes.hpp"

using namespace bcwan;

namespace {

struct NodeStatus {
  int height = -1;
  std::string tip;
  std::string state;
  unsigned long long redeemed = 0;
  unsigned long long reclaimed = 0;
  unsigned long long open = 0;
  unsigned long long offers = 0;
  unsigned long long violations = 0;
  unsigned long long settled = 0;
  bool valid = false;
};

NodeStatus read_status(const std::string& path) {
  NodeStatus s;
  std::ifstream in(path);
  if (!in) return s;
  in >> s.height >> s.tip >> s.state >> s.redeemed >> s.reclaimed >> s.open >>
      s.offers >> s.violations >> s.settled;
  s.valid = static_cast<bool>(in);
  return s;
}

std::int64_t now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

void sleep_ms(int ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000};
  nanosleep(&ts, nullptr);
}

std::string exe_dir(const char* argv0) {
  std::string path(argv0);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  return path.substr(0, slash);
}

struct Child {
  pid_t pid = -1;
  std::vector<std::string> argv;  // saved for restart
  std::string log_path;
};

pid_t spawn(const std::vector<std::string>& argv, const std::string& log_path) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      dup2(log_fd, STDOUT_FILENO);
      dup2(log_fd, STDERR_FILENO);
      if (log_fd > STDERR_FILENO) ::close(log_fd);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    execv(cargv[0], cargv.data());
    std::perror("execv");
    _exit(127);
  }
  return pid;
}

/// Probe a localhost port range for availability so parallel CI jobs on the
/// same host don't collide. Returns the first base where all `n` ports bind.
int find_port_base(int preferred, int n) {
  for (int base = preferred; base < preferred + 4000; base += 100) {
    bool ok = true;
    for (int i = 0; i < n && ok; ++i) {
      const int fd = socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return base;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(base + i));
      ok = bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
      ::close(fd);
    }
    if (ok) return base;
  }
  return preferred;
}

int fail(const char* what) {
  std::fprintf(stderr, "cluster: FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int n_gateways = 5;
  unsigned long long target_redeemed = 6;
  std::string workdir;
  int base_port = 0;
  int timeout_s = 120;
  bool do_kill = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--gateways") n_gateways = std::atoi(value());
    else if (arg == "--target-redeemed") target_redeemed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--workdir") workdir = value();
    else if (arg == "--base-port") base_port = std::atoi(value());
    else if (arg == "--timeout-s") timeout_s = std::atoi(value());
    else if (arg == "--no-kill") do_kill = false;
    else {
      std::fprintf(stderr,
                   "usage: cluster [--gateways N] [--target-redeemed N] "
                   "[--workdir DIR] [--base-port P] [--timeout-s S] "
                   "[--no-kill]\n");
      return 64;
    }
  }
  const int n_nodes = n_gateways + 1;  // + miner
  const int miner_id = n_gateways;

  if (workdir.empty()) {
    workdir = "/tmp/bcwan_cluster_" + std::to_string(getpid());
  }
  mkdir(workdir.c_str(), 0755);
  if (base_port == 0) {
    // Derive from pid so concurrent runs start probing different ranges.
    base_port = find_port_base(21000 + (getpid() % 200) * 10, n_nodes);
  }

  const std::string bcwand = exe_dir(argv[0]) + "/bcwand";
  if (access(bcwand.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "cluster: cannot find bcwand next to cluster (%s)\n",
                 bcwand.c_str());
    return 2;
  }

  std::string peers;
  for (int i = 0; i < n_nodes; ++i) {
    if (i > 0) peers += ',';
    peers += "127.0.0.1:" + std::to_string(base_port + i);
  }

  std::printf("cluster: %d gateways + 1 miner, ports %d-%d, workdir %s\n",
              n_gateways, base_port, base_port + n_nodes - 1, workdir.c_str());

  std::vector<Child> nodes(static_cast<std::size_t>(n_nodes));
  std::vector<std::string> status_files(static_cast<std::size_t>(n_nodes));
  std::vector<std::string> store_dirs(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    store_dirs[idx] = workdir + "/node" + std::to_string(i);
    mkdir(store_dirs[idx].c_str(), 0755);
    status_files[idx] = workdir + "/status" + std::to_string(i);
    nodes[idx].log_path = workdir + "/node" + std::to_string(i) + ".log";
    nodes[idx].argv = {bcwand,
                       "--node-id", std::to_string(i),
                       "--peers", peers,
                       "--role", i == miner_id ? "miner" : "gateway",
                       "--store-dir", store_dirs[idx],
                       "--status-file", status_files[idx],
                       "--seed", std::to_string(1000 + i)};
    nodes[idx].pid = spawn(nodes[idx].argv, nodes[idx].log_path);
  }

  // Reap any child that dies unexpectedly; the drill's SIGKILL is expected.
  auto reap_check = [&](pid_t expect_dead) -> bool {
    int wstatus = 0;
    pid_t dead;
    while ((dead = waitpid(-1, &wstatus, WNOHANG)) > 0) {
      if (dead != expect_dead) {
        std::fprintf(stderr, "cluster: node pid %d died early (status %d)\n",
                     dead, wstatus);
        return false;
      }
    }
    return true;
  };
  auto kill_all = [&] {
    for (auto& node : nodes) {
      if (node.pid > 0) kill(node.pid, SIGKILL);
    }
    while (waitpid(-1, nullptr, WNOHANG) > 0) {
    }
  };

  const std::int64_t deadline = now_ms() + timeout_s * 1000;
  const int victim = do_kill ? (2 < n_gateways ? 2 : 0) : -1;
  bool killed = false, restarted = false;
  std::int64_t restart_at = 0;
  unsigned long long best_redeemed = 0;

  // Phase 1: run the workload until the federation redeems the target,
  // with the SIGKILL + restart drill at the halfway mark.
  while (true) {
    if (now_ms() > deadline) {
      kill_all();
      return fail("timeout waiting for target redeemed count");
    }
    if (!reap_check(-1)) {
      kill_all();
      return fail("daemon exited prematurely");
    }
    sleep_ms(200);

    // The miner's chain view drives progress decisions.
    const NodeStatus miner =
        read_status(status_files[static_cast<std::size_t>(miner_id)]);
    if (!miner.valid) continue;
    if (miner.violations != 0) {
      kill_all();
      return fail("settlement invariant violation reported by miner");
    }
    best_redeemed = miner.redeemed > best_redeemed ? miner.redeemed
                                                   : best_redeemed;

    if (!killed && victim >= 0 && miner.redeemed >= target_redeemed / 2) {
      auto& node = nodes[static_cast<std::size_t>(victim)];
      std::printf("cluster: SIGKILL gateway %d (pid %d) at redeemed=%llu\n",
                  victim, node.pid, miner.redeemed);
      kill(node.pid, SIGKILL);
      waitpid(node.pid, nullptr, 0);
      killed = true;
      restart_at = now_ms() + 1500;  // stay dead long enough to miss blocks
      continue;
    }
    if (killed && !restarted && now_ms() >= restart_at) {
      auto& node = nodes[static_cast<std::size_t>(victim)];
      node.pid = spawn(node.argv, node.log_path);
      restarted = true;
      std::printf("cluster: restarted gateway %d (pid %d)\n", victim,
                  node.pid);
      continue;
    }
    // Don't finish before the drill completed and the victim caught up.
    if (miner.redeemed >= target_redeemed && (!do_kill || restarted)) {
      if (do_kill) {
        const NodeStatus v =
            read_status(status_files[static_cast<std::size_t>(victim)]);
        if (!v.valid || v.height + 2 < miner.height) continue;
      }
      break;
    }
  }
  std::printf("cluster: target reached (redeemed=%llu), shutting down\n",
              best_redeemed);

  // Phase 2: orderly shutdown. Miner first so the block schedule stops,
  // gateways drain in-flight exchanges, then everyone snapshots + fsyncs.
  kill(nodes[static_cast<std::size_t>(miner_id)].pid, SIGTERM);
  sleep_ms(1500);
  for (int i = 0; i < n_gateways; ++i) {
    kill(nodes[static_cast<std::size_t>(i)].pid, SIGTERM);
  }
  const std::int64_t shutdown_deadline = now_ms() + 15000;
  int exited = 0;
  while (exited < n_nodes && now_ms() < shutdown_deadline) {
    int wstatus = 0;
    const pid_t dead = waitpid(-1, &wstatus, WNOHANG);
    if (dead > 0) {
      ++exited;
      if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
        kill_all();
        return fail("daemon did not shut down cleanly");
      }
    } else {
      sleep_ms(100);
    }
  }
  if (exited < n_nodes) {
    kill_all();
    return fail("daemon hung during shutdown");
  }

  // Phase 3: offline convergence audit straight from the persisted stores —
  // the ground truth, independent of anything the daemons claimed.
  chain::ChainParams params;
  params.pow_zero_bits = 8;
  params.coinbase_maturity = 2;
  std::string ref_tip, ref_state;
  int ref_height = -1;
  for (int i = 0; i < n_nodes; ++i) {
    std::string error;
    store::StoreOptions options;
    options.dir = store_dirs[static_cast<std::size_t>(i)];
    auto st = store::ChainStore::open(params, options, &error);
    if (!st) {
      std::fprintf(stderr, "cluster: node %d store reopen failed: %s\n", i,
                   error.c_str());
      return 1;
    }
    chain::Blockchain chain = st->take_chain();
    const std::string tip = util::to_hex(chain.tip_hash());
    const std::string state = util::to_hex(chain.state_hash());
    const sim::InvariantReport chain_report =
        sim::check_chain_invariants(chain);
    sim::InvariantReport settle_report;
    const sim::SettlementTally tally =
        sim::check_settlement_invariants(chain, settle_report);
    std::printf(
        "cluster: node %d height=%d tip=%.12s redeemed=%llu reclaimed=%llu "
        "open=%llu\n",
        i, chain.height(), tip.c_str(),
        static_cast<unsigned long long>(tally.redeemed),
        static_cast<unsigned long long>(tally.reclaimed),
        static_cast<unsigned long long>(tally.open));
    if (!chain_report.ok()) {
      std::fprintf(stderr, "cluster: node %d chain invariants: %s\n", i,
                   chain_report.to_string().c_str());
      return 1;
    }
    if (!settle_report.ok()) {
      std::fprintf(stderr, "cluster: node %d settlement invariants: %s\n", i,
                   settle_report.to_string().c_str());
      return 1;
    }
    if (i == 0) {
      ref_tip = tip;
      ref_state = state;
      ref_height = chain.height();
    } else if (tip != ref_tip || state != ref_state) {
      std::fprintf(stderr,
                   "cluster: node %d diverged (tip %.12s vs %.12s, height %d "
                   "vs %d)\n",
                   i, tip.c_str(), ref_tip.c_str(), chain.height(),
                   ref_height);
      return fail("federation did not converge");
    }
    if (i == 0 && tally.redeemed < target_redeemed) {
      return fail("redeemed count below target after shutdown");
    }
  }

  std::printf("cluster: PASS — %d nodes converged at height %d, tip %.12s\n",
              n_nodes, ref_height, ref_tip.c_str());
  return 0;
}

// Smart-city scenario: the paper's motivating workload (§1: "smart
// metering, smart parking, vehicle fleet tracking, and smart street
// lighting").
//
// Four operators federate their gateways: a parking authority, a water
// utility, a streetlight operator and a logistics company. Every sensor
// reports through a *foreign* operator's gateway, so all traffic crosses
// trust boundaries and every delivery is paid for through the fair
// exchange. The run simulates a virtual hour and prints per-operator
// traffic and settlement accounting.
//
//   ./smart_city
#include <cstdio>
#include <map>

#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  std::printf("BcWAN smart-city federation — 4 operators, 1 virtual hour\n");
  std::printf("---------------------------------------------------------\n\n");

  const char* kOperators[] = {"parking-authority", "water-utility",
                              "streetlights", "logistics"};

  sim::ScenarioConfig config;
  config.actors = 4;
  config.sensors_per_actor = 12;
  config.chain_params.pow_zero_bits = 8;
  config.gateway_config.price_quote = chain::kCoin / 200;  // 0.005/message
  config.recipient_config.max_price = chain::kCoin / 100;
  config.seed = 2026;
  sim::Scenario scenario(config);
  scenario.bootstrap();

  std::printf("operators and their blockchain addresses (@R):\n");
  for (int a = 0; a < scenario.actor_count(); ++a) {
    std::printf("  %-18s %s\n", kOperators[a],
                scenario.recipient(a).wallet().address().c_str());
  }
  std::printf("\nsensors attach to the NEXT operator's gateway — all traffic\n"
              "is roaming; no operator can deliver its own data.\n\n");

  // Run one virtual hour of continuous reporting.
  const chain::Amount funding_before = config.recipient_funding;
  scenario.run_exchanges(600, 1 * util::kHour);
  scenario.loop().run_until(scenario.loop().now() + 5 * util::kMinute);

  std::printf("after %.0f virtual seconds:\n\n",
              util::to_seconds(scenario.loop().now()));
  std::printf("%-18s %-10s %-10s %-12s %-14s %-14s\n", "operator",
              "delivered", "decrypted", "gw_redeems", "gw_reward",
              "spent_on_data");
  for (int a = 0; a < scenario.actor_count(); ++a) {
    auto& recipient = scenario.recipient(a);
    auto& gateway = scenario.gateway(a);
    const chain::Amount reward =
        gateway.wallet().balance(scenario.actor_node(a).chain());
    const chain::Amount remaining =
        recipient.wallet().balance(scenario.actor_node(a).chain());
    std::printf("%-18s %-10llu %-10llu %-12llu %10.4f %12.4f\n",
                kOperators[a],
                static_cast<unsigned long long>(recipient.deliveries_received()),
                static_cast<unsigned long long>(recipient.readings_decrypted()),
                static_cast<unsigned long long>(gateway.redeems_submitted()),
                static_cast<double>(reward) / chain::kCoin,
                static_cast<double>(funding_before - remaining) / chain::kCoin);
  }

  std::printf("\nexchange latency over the hour : %s\n",
              scenario.latency_stats().summary("s").c_str());
  std::printf("blocks mined                   : %llu\n",
              static_cast<unsigned long long>(scenario.blocks_mined()));
  std::printf(
      "\nEvery message was delivered through a foreign gateway, paid for\n"
      "through the Listing-1 contract, and no operator needed to trust —\n"
      "or even to have met — any other.\n");
  return 0;
}

// Persistent chain daemon, built for the CI kill-9 crash-recovery job.
//
// The workload is fully deterministic (fixed wallet seeds, block time ==
// block height, payment schedule derived from the height), so a run that is
// SIGKILLed anywhere — including mid-append, leaving a torn tail — and then
// restarted must converge on the exact same tip hash and UTXO state hash as
// one uninterrupted run. CI asserts exactly that:
//
//   ./persistence expected 120            # uninterrupted, in-memory
//   ./persistence run <dir> 120 &         # durable run; kill -9 mid-way
//   ./persistence run <dir> 120           # recover from disk, finish
//   ./persistence status <dir>            # print recovered tip/state
//
// Subcommands:
//   run <dir> <height> [throttle_ms]
//                         open-or-recover <dir>, mine/replay to <height>,
//                         print "TIP <hex>" / "STATE <hex>" and exit 0.
//                         throttle_ms sleeps after every block so a CI kill
//                         lands mid-run instead of after completion
//   expected <height>     same workload against an in-memory chain
//   status <dir>          open-or-recover only; print recovery stats + tip
//   tear <dir> <bytes>    shear bytes off the block log tail (torn write)
#include <ctime>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "store/store.hpp"

using namespace bcwan;

namespace {

chain::ChainParams demo_params() {
  chain::ChainParams params;
  params.pow_zero_bits = 8;
  params.coinbase_maturity = 2;
  return params;
}

/// Mine deterministically until `target` height. Every 5th block carries a
/// payment whose amount is a function of the height, so the UTXO set keeps
/// churning and undo records stay non-trivial. `throttle_ms` slows the loop
/// down (wall-clock only — the chain itself stays deterministic).
void mine_to(chain::Blockchain& chain, store::ChainStore* store, int target,
             int throttle_ms = 0) {
  const chain::ChainParams& params = chain.params();
  chain::Mempool pool(params);
  const chain::Wallet miner_wallet = chain::Wallet::from_seed("miner");
  const chain::Wallet alice = chain::Wallet::from_seed("alice");
  const chain::Miner miner(params, miner_wallet.pkh());

  while (chain.height() < target) {
    const int next = chain.height() + 1;
    if (next % 5 == 0) {
      const chain::Amount amount =
          (static_cast<chain::Amount>(next % 7) + 1) * chain::kCoin / 10;
      const auto tx =
          miner_wallet.create_payment(chain, &pool, alice.pkh(), amount, 1000);
      if (tx) pool.accept(*tx, chain.utxo(), next);
    }
    const chain::Block block =
        miner.mine(chain, pool, static_cast<std::uint64_t>(next));
    const auto result = chain.accept_block(block);
    if (result != chain::AcceptBlockResult::kConnected) {
      std::fprintf(stderr, "block at height %d rejected: %s\n", next,
                   chain::accept_block_result_name(result).c_str());
      std::exit(1);
    }
    pool.remove_confirmed(block);
    if (store != nullptr) store->maybe_snapshot(chain);
    if (throttle_ms > 0) {
      const timespec delay{throttle_ms / 1000,
                           (throttle_ms % 1000) * 1'000'000L};
      nanosleep(&delay, nullptr);
    }
    if (next % 20 == 0) {
      std::printf("height %d tip %s\n", chain.height(),
                  util::to_hex(chain.tip_hash()).c_str());
      std::fflush(stdout);
    }
  }
}

void print_tip(const chain::Blockchain& chain) {
  std::printf("HEIGHT %d\n", chain.height());
  std::printf("TIP %s\n", util::to_hex(chain.tip_hash()).c_str());
  std::printf("STATE %s\n", util::to_hex(chain.state_hash()).c_str());
}

std::unique_ptr<store::ChainStore> open_or_die(const std::string& dir) {
  store::StoreOptions options;
  options.dir = dir;
  options.snapshot_interval = 32;
  options.fsync_each_append = true;
  std::string error;
  auto store = store::ChainStore::open(demo_params(), options, &error);
  if (!store) {
    std::fprintf(stderr, "store refused to open: %s\n", error.c_str());
    std::exit(2);
  }
  const store::RecoveryStats& stats = store->recovery();
  std::printf(
      "recovered: snapshot=%s replayed=%zu truncated=%lluB tip_height=%d\n",
      stats.snapshot_loaded ? "yes" : "no", stats.replayed_blocks,
      static_cast<unsigned long long>(stats.truncated_bytes),
      stats.tip_height);
  return store;
}

int usage() {
  std::fprintf(stderr,
               "usage: persistence run <dir> <height>\n"
               "       persistence expected <height>\n"
               "       persistence status <dir>\n"
               "       persistence tear <dir> <bytes>\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "expected" && argc == 3) {
    chain::Blockchain chain(demo_params());
    mine_to(chain, nullptr, std::atoi(argv[2]));
    print_tip(chain);
    return 0;
  }

  if (cmd == "run" && (argc == 4 || argc == 5)) {
    auto store = open_or_die(argv[2]);
    chain::Blockchain chain = store->take_chain();
    chain.set_block_sink([&store](const chain::Block& b,
                                  const chain::BlockUndo* u) {
      store->append_block(b, u);
    });
    mine_to(chain, store.get(), std::atoi(argv[3]),
            argc == 5 ? std::atoi(argv[4]) : 0);
    print_tip(chain);
    return 0;
  }

  if (cmd == "status" && argc == 3) {
    auto store = open_or_die(argv[2]);
    print_tip(store->take_chain());
    return 0;
  }

  if (cmd == "tear" && argc == 4) {
    const std::uint64_t torn = store::tear_log_tail(
        store::log_file_path(argv[2]),
        static_cast<std::uint64_t>(std::atoll(argv[3])));
    std::printf("sheared %llu bytes\n", static_cast<unsigned long long>(torn));
    return torn > 0 ? 0 : 1;
  }

  return usage();
}

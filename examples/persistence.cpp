// Persistent chain daemon, built for the CI kill-9 crash-recovery job.
//
// The workload is fully deterministic (fixed wallet seeds, block time ==
// block height, payment schedule derived from the height), so a run that is
// SIGKILLed anywhere — including mid-append, leaving a torn tail — and then
// restarted must converge on the exact same tip hash and UTXO state hash as
// one uninterrupted run. CI asserts exactly that:
//
//   ./persistence expected 120            # uninterrupted, in-memory
//   ./persistence run <dir> 120 &         # durable run; kill -9 mid-way
//   ./persistence run <dir> 120           # recover from disk, finish
//   ./persistence status <dir>            # print recovered tip/state
//
// Subcommands:
//   run <dir> <height> [throttle_ms]
//                         open-or-recover <dir>, mine/replay to <height>,
//                         print "TIP <hex>" / "STATE <hex>" and exit 0.
//                         throttle_ms sleeps after every block so a CI kill
//                         lands mid-run instead of after completion
//   expected <height>     same workload against an in-memory chain
//   status <dir>          open-or-recover only; print recovery stats + tip
//   tear <dir> <bytes>    shear bytes off the block log tail (torn write)
//   matrix <dir> <height> <trials> <seed>
//                         deterministic crash sweep: per trial, fork a
//                         throttled run under a randomly varied store
//                         config (incremental on/off, compaction cadence,
//                         undo pruning), SIGKILL it at a seeded random
//                         offset, occasionally tear the log tail, restart
//                         until a run exits clean, and require the
//                         recovered tip + state hash to equal the
//                         uninterrupted run's. Any divergence exits 1.
//
// Store knobs (read by run/status): BCWAN_PERSIST_INCREMENTAL=0|1,
// BCWAN_PERSIST_COMPACT_EVERY=<n>, BCWAN_PERSIST_UNDO_DEPTH=<n>,
// BCWAN_PERSIST_SNAPSHOT_INTERVAL=<n>.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <ctime>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"

using namespace bcwan;

namespace {

chain::ChainParams demo_params() {
  chain::ChainParams params;
  params.pow_zero_bits = 8;
  params.coinbase_maturity = 2;
  return params;
}

/// Mine deterministically until `target` height. Every 5th block carries a
/// payment whose amount is a function of the height, so the UTXO set keeps
/// churning and undo records stay non-trivial. `throttle_ms` slows the loop
/// down (wall-clock only — the chain itself stays deterministic).
void mine_to(chain::Blockchain& chain, store::ChainStore* store, int target,
             int throttle_ms = 0) {
  const chain::ChainParams& params = chain.params();
  chain::Mempool pool(params);
  const chain::Wallet miner_wallet = chain::Wallet::from_seed("miner");
  const chain::Wallet alice = chain::Wallet::from_seed("alice");
  const chain::Miner miner(params, miner_wallet.pkh());

  while (chain.height() < target) {
    const int next = chain.height() + 1;
    if (next % 5 == 0) {
      const chain::Amount amount =
          (static_cast<chain::Amount>(next % 7) + 1) * chain::kCoin / 10;
      const auto tx =
          miner_wallet.create_payment(chain, &pool, alice.pkh(), amount, 1000);
      if (tx) pool.accept(*tx, chain.utxo(), next);
    }
    const chain::Block block =
        miner.mine(chain, pool, static_cast<std::uint64_t>(next));
    const auto result = chain.accept_block(block);
    if (result != chain::AcceptBlockResult::kConnected) {
      std::fprintf(stderr, "block at height %d rejected: %s\n", next,
                   chain::accept_block_result_name(result).c_str());
      std::exit(1);
    }
    pool.remove_confirmed(block);
    if (store != nullptr) store->maybe_snapshot(chain);
    if (throttle_ms > 0) {
      const timespec delay{throttle_ms / 1000,
                           (throttle_ms % 1000) * 1'000'000L};
      nanosleep(&delay, nullptr);
    }
    if (next % 20 == 0) {
      std::printf("height %d tip %s\n", chain.height(),
                  util::to_hex(chain.tip_hash()).c_str());
      std::fflush(stdout);
    }
  }
}

void print_tip(const chain::Blockchain& chain) {
  std::printf("HEIGHT %d\n", chain.height());
  std::printf("TIP %s\n", util::to_hex(chain.tip_hash()).c_str());
  std::printf("STATE %s\n", util::to_hex(chain.state_hash()).c_str());
}

long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

store::StoreOptions options_from_env(const std::string& dir) {
  store::StoreOptions options;
  options.dir = dir;
  options.fsync_each_append = true;
  options.snapshot_interval = static_cast<std::uint64_t>(
      env_long("BCWAN_PERSIST_SNAPSHOT_INTERVAL", 32));
  options.incremental_snapshots =
      env_long("BCWAN_PERSIST_INCREMENTAL", 1) != 0;
  options.compact_every =
      static_cast<std::uint64_t>(env_long("BCWAN_PERSIST_COMPACT_EVERY", 8));
  options.undo_prune_depth =
      static_cast<int>(env_long("BCWAN_PERSIST_UNDO_DEPTH", -1));
  return options;
}

std::unique_ptr<store::ChainStore> open_or_die(
    const store::StoreOptions& options) {
  std::string error;
  auto store = store::ChainStore::open(demo_params(), options, &error);
  if (!store) {
    std::fprintf(stderr, "store refused to open: %s\n", error.c_str());
    std::exit(2);
  }
  const store::RecoveryStats& stats = store->recovery();
  std::printf(
      "recovered: snapshot=%s replayed=%zu truncated=%lluB tip_height=%d\n",
      stats.snapshot_loaded ? "yes" : "no", stats.replayed_blocks,
      static_cast<unsigned long long>(stats.truncated_bytes),
      stats.tip_height);
  return store;
}

int usage() {
  std::fprintf(stderr,
               "usage: persistence run <dir> <height> [throttle_ms]\n"
               "       persistence expected <height>\n"
               "       persistence status <dir>\n"
               "       persistence tear <dir> <bytes>\n"
               "       persistence matrix <dir> <height> <trials> <seed>\n");
  return 64;
}

/// One matrix attempt in a forked child: open-or-recover, mine to target,
/// exit 0. The child is what gets SIGKILLed, so the parent's state (expected
/// hashes, RNG stream) never dies with it.
[[noreturn]] void matrix_child(const store::StoreOptions& options,
                               int target) {
  // The per-height progress lines are noise times fifty attempts; keep the
  // child quiet and let stderr through for real failures.
  if (std::freopen("/dev/null", "w", stdout) == nullptr) _exit(3);
  std::string error;
  auto store = store::ChainStore::open(demo_params(), options, &error);
  if (!store) {
    std::fprintf(stderr, "matrix child: store refused to open: %s\n",
                 error.c_str());
    _exit(2);
  }
  chain::Blockchain chain = store->take_chain();
  chain.set_block_sink(
      [&store](const chain::Block& b, const chain::BlockUndo* u) {
        store->append_block(b, u);
      });
  mine_to(chain, store.get(), target, /*throttle_ms=*/1);
  _exit(0);
}

int run_matrix(const std::string& dir, int height, int trials,
               std::uint64_t seed) {
  // The ground truth every trial must converge to, whatever got killed.
  chain::Blockchain expected(demo_params());
  mine_to(expected, nullptr, height);
  const std::string expected_tip = util::to_hex(expected.tip_hash());
  const std::string expected_state = util::to_hex(expected.state_hash());
  std::printf("matrix: expected tip %s\n", expected_tip.c_str());
  // Forked children inherit the stdio buffer; flush so their freopen does
  // not replay this line once per attempt.
  std::fflush(stdout);

  util::Rng rng(seed);
  int total_kills = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::string trial_dir = dir + "/trial-" + std::to_string(trial);
    store::StoreOptions options;
    options.dir = trial_dir;
    options.fsync_each_append = true;
    // Vary the persistence shape: cadence, compaction, pruning, and the
    // legacy full-base mode all take kills at random offsets.
    options.snapshot_interval = 1ULL << rng.range(2, 4);       // 4..16
    options.incremental_snapshots = !rng.chance(0.25);
    options.compact_every = rng.range(1, 4);
    options.undo_prune_depth = rng.chance(0.5) ? -1 : static_cast<int>(
                                   rng.range(8, 24));
    // Mining runs ~1 ms/block throttled; a kill offset across ~1.3x the
    // clean runtime also exercises "killed after finishing".
    const std::uint64_t window_us = static_cast<std::uint64_t>(height) * 1300;

    int attempts = 0;
    bool clean = false;
    while (!clean) {
      if (++attempts > 200) {
        std::fprintf(stderr, "matrix trial %d: no clean run in %d attempts\n",
                     trial, attempts);
        return 1;
      }
      const std::uint64_t kill_after_us = rng.below(window_us);
      const bool tear_after = rng.chance(0.2);
      const std::uint64_t tear_bytes = rng.range(1, 40);

      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) matrix_child(options, height);

      const timespec delay{
          static_cast<time_t>(kill_after_us / 1'000'000),
          static_cast<long>(kill_after_us % 1'000'000) * 1000};
      nanosleep(&delay, nullptr);
      kill(pid, SIGKILL);
      int status = 0;
      if (waitpid(pid, &status, 0) != pid) {
        std::perror("waitpid");
        return 1;
      }
      if (WIFEXITED(status)) {
        if (WEXITSTATUS(status) != 0) {
          // Recovery refused the store or the workload broke: the sweep
          // found a real bug, not a crash to retry.
          std::fprintf(stderr, "matrix trial %d: child exited %d\n", trial,
                       WEXITSTATUS(status));
          return 1;
        }
        clean = true;
      } else {
        ++total_kills;
        if (tear_after) {
          store::tear_log_tail(store::log_file_path(trial_dir), tear_bytes);
        }
      }
    }

    // The survivor must match the uninterrupted run exactly.
    std::string error;
    auto store = store::ChainStore::open(demo_params(), options, &error);
    if (!store) {
      std::fprintf(stderr, "matrix trial %d: final open refused: %s\n", trial,
                   error.c_str());
      return 1;
    }
    const chain::Blockchain recovered = store->take_chain();
    const std::string tip = util::to_hex(recovered.tip_hash());
    const std::string state = util::to_hex(recovered.state_hash());
    if (recovered.height() != height || tip != expected_tip ||
        state != expected_state) {
      std::fprintf(stderr,
                   "matrix trial %d DIVERGED: height %d tip %s state %s\n",
                   trial, recovered.height(), tip.c_str(), state.c_str());
      return 1;
    }
    std::printf(
        "matrix trial %d ok: %d attempts (interval=%llu incremental=%d "
        "compact_every=%llu undo_depth=%d)\n",
        trial, attempts,
        static_cast<unsigned long long>(options.snapshot_interval),
        options.incremental_snapshots ? 1 : 0,
        static_cast<unsigned long long>(options.compact_every),
        options.undo_prune_depth);
    std::fflush(stdout);
  }
  std::printf("matrix: %d trials converged (%d kills absorbed)\n", trials,
              total_kills);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "expected" && argc == 3) {
    chain::Blockchain chain(demo_params());
    mine_to(chain, nullptr, std::atoi(argv[2]));
    print_tip(chain);
    return 0;
  }

  if (cmd == "run" && (argc == 4 || argc == 5)) {
    auto store = open_or_die(options_from_env(argv[2]));
    chain::Blockchain chain = store->take_chain();
    chain.set_block_sink([&store](const chain::Block& b,
                                  const chain::BlockUndo* u) {
      store->append_block(b, u);
    });
    mine_to(chain, store.get(), std::atoi(argv[3]),
            argc == 5 ? std::atoi(argv[4]) : 0);
    print_tip(chain);
    return 0;
  }

  if (cmd == "status" && argc == 3) {
    auto store = open_or_die(options_from_env(argv[2]));
    print_tip(store->take_chain());
    return 0;
  }

  if (cmd == "matrix" && argc == 6) {
    return run_matrix(argv[2], std::atoi(argv[3]), std::atoi(argv[4]),
                      static_cast<std::uint64_t>(std::atoll(argv[5])));
  }

  if (cmd == "tear" && argc == 4) {
    const std::uint64_t torn = store::tear_log_tail(
        store::log_file_path(argv[2]),
        static_cast<std::uint64_t>(std::atoll(argv[3])));
    std::printf("sheared %llu bytes\n", static_cast<unsigned long long>(torn));
    return torn > 0 ? 0 : 1;
  }

  return usage();
}

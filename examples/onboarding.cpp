// Onboarding a new federation member.
//
// The paper's master node exists "to bootstrap the nodes" (§5.2): a joining
// actor needs the current chain before it can serve lookups or verify
// offers. This example runs a small federation, snapshots one member's
// chain with Blockchain::export_chain, "ships" it to a newcomer
// (import_chain re-validates every block — a tampered snapshot is
// rejected), and shows the newcomer's directory immediately resolving every
// existing recipient.
//
//   ./onboarding
#include <cstdio>

#include "bcwan/directory.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  std::printf("BcWAN member onboarding via chain snapshot\n");
  std::printf("------------------------------------------\n\n");

  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 1;
  config.chain_params.pow_zero_bits = 8;
  config.chain_params.coinbase_maturity = 3;
  config.recipient_funding = 10 * chain::kCoin;
  config.seed = 99;
  sim::Scenario scenario(config);
  scenario.bootstrap();
  // Some traffic so the chain is non-trivial.
  scenario.run_exchanges(3, 20 * util::kMinute);
  scenario.loop().run_until(scenario.loop().now() + 2 * util::kMinute);

  auto& veteran = scenario.actor_node(0);
  std::printf("[federation] height %d, %zu UTXOs after %llu exchanges\n",
              veteran.chain().height(), veteran.chain().utxo().size(),
              static_cast<unsigned long long>(scenario.exchanges_completed()));

  // 1. Snapshot a member's chain.
  const util::Bytes snapshot = veteran.chain().export_chain();
  std::printf("[snapshot]   exported %zu bytes (%d blocks)\n",
              snapshot.size(), veteran.chain().height());

  // 2. A tampered snapshot is rejected outright.
  util::Bytes tampered = snapshot;
  tampered[tampered.size() / 3] ^= 0x40;
  const auto rejected =
      chain::Blockchain::import_chain(config.chain_params, tampered);
  std::printf("[integrity]  tampered snapshot %s\n",
              rejected ? "ACCEPTED (BUG!)" : "rejected, as it must be");

  // 3. The genuine snapshot re-validates block by block.
  auto newcomer =
      chain::Blockchain::import_chain(config.chain_params, snapshot);
  if (!newcomer) {
    std::printf("[join]       import failed unexpectedly\n");
    return 1;
  }
  std::printf("[join]       newcomer synced to height %d, tip %s...\n",
              newcomer->height(),
              chain::hash_hex(newcomer->tip_hash()).substr(0, 16).c_str());

  // 4. The newcomer's directory scan resolves every recipient in the
  //    federation — it can start forwarding as a gateway immediately.
  int resolved = 0;
  newcomer->scan_recent(1000, [&](const chain::Transaction& tx, int) {
    for (const chain::TxOut& out : tx.vout) {
      const auto classified = script::classify(out.script_pubkey);
      if (classified.type != script::ScriptType::kOpReturn) continue;
      const auto entry = core::decode_directory_entry(classified.data);
      if (entry) ++resolved;
    }
  });
  std::printf("[directory]  %d announcement(s) recovered from the snapshot:\n",
              resolved);
  for (int a = 0; a < scenario.actor_count(); ++a) {
    std::printf("               %s -> (published on-chain)\n",
                scenario.recipient(a).wallet().address().c_str());
  }

  std::printf("\nA joining actor needs nothing but the snapshot and the\n"
              "federation's chain parameters — no trusted introducer.\n");
  return 0;
}

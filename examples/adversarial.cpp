// Adversarial playbook: the misbehaviours §4.4 and §6 worry about, run
// against the real protocol stack, with the defence shown working.
//
//   1. withholding gateway   — takes the offer, never reveals eSk
//                              -> recipient reclaims via the CLTV branch;
//   2. tampering gateway     — mangles Em in flight
//                              -> signature check fails, no offer posted;
//   3. freeloading recipient — receives data, never pays
//                              -> without eSk the ciphertext stays opaque;
//   4. double-spending recipient — the §6 race (see also
//                              bench_ablation_confirmations for the sweep).
//
//   ./adversarial
#include <cstdio>

#include "sim/scenario.hpp"

namespace {

using namespace bcwan;

sim::ScenarioConfig base_config(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.actors = 2;
  config.sensors_per_actor = 1;
  config.chain_params.pow_zero_bits = 8;
  config.chain_params.coinbase_maturity = 3;
  config.chain_params.block_interval = 5 * util::kSecond;
  config.recipient_funding = 10 * chain::kCoin;
  config.seed = seed;
  return config;
}

void scenario_withholding_gateway() {
  std::printf("--- 1. withholding gateway ---------------------------------\n");
  sim::ScenarioConfig config = base_config(31);
  // A gateway that never reveals eSk is modelled by an absurd confirmation
  // requirement; a short CLTV timeout keeps the demo quick.
  config.gateway_config.confirmations_required = 1'000'000;
  config.recipient_config.timeout_blocks = 4;
  sim::Scenario scenario(config);
  scenario.bootstrap();

  const chain::Amount before = scenario.recipient(0).wallet().balance(
      scenario.actor_node(0).chain());
  bool reclaimed = false;
  scenario.recipient(0).on_reclaimed = [&](std::uint16_t) { reclaimed = true; };
  scenario.sensor(0, 0).start_exchange(util::str_bytes("meter=0451"));
  scenario.loop().run_until(scenario.loop().now() + 5 * util::kMinute);

  const chain::Amount after = scenario.recipient(0).wallet().balance(
      scenario.actor_node(0).chain());
  std::printf("  offer posted, eSk never revealed, reclaim fired: %s\n",
              reclaimed ? "yes" : "no");
  std::printf("  recipient funds: %.4f -> %.4f coins (lost only fees)\n",
              static_cast<double>(before) / chain::kCoin,
              static_cast<double>(after) / chain::kCoin);
  std::printf("  readings decrypted: %llu (the data is lost, the money is "
              "not)\n\n",
              static_cast<unsigned long long>(
                  scenario.recipient(0).readings_decrypted()));
}

void scenario_tampering_gateway() {
  std::printf("--- 2. tampering gateway -----------------------------------\n");
  sim::ScenarioConfig config = base_config(37);
  sim::Scenario scenario(config);
  scenario.bootstrap();

  auto& node = scenario.actor_node(0);
  auto& recipient = scenario.recipient(0);
  node.set_app_handler([&recipient](const p2p::Message& msg) {
    p2p::Message corrupted = msg;
    util::Bytes mangled = corrupted.payload;
    if (mangled.size() > 10) mangled[9] ^= 0x55;
    corrupted.payload = std::move(mangled);
    recipient.handle_message(corrupted);
  });

  scenario.sensor(0, 0).start_exchange(util::str_bytes("lot-3 space 41"));
  scenario.loop().run_until(scenario.loop().now() + 2 * util::kMinute);

  std::printf("  deliveries: %llu, signature rejects: %llu, offers: %llu\n",
              static_cast<unsigned long long>(recipient.deliveries_received()),
              static_cast<unsigned long long>(recipient.signature_rejects()),
              static_cast<unsigned long long>(recipient.offers_posted()));
  std::printf("  the node's RSA signature over (Em || ePk) catches the\n"
              "  mangled payload; the tamperer earns nothing.\n\n");
}

void scenario_freeloading_recipient() {
  std::printf("--- 3. freeloading recipient -------------------------------\n");
  sim::ScenarioConfig config = base_config(41);
  config.recipient_config.pay_for_data = false;
  sim::Scenario scenario(config);
  scenario.bootstrap();

  scenario.sensor(0, 0).start_exchange(util::str_bytes("secret telem"));
  scenario.loop().run_until(scenario.loop().now() + 2 * util::kMinute);

  auto& recipient = scenario.recipient(0);
  std::printf("  deliveries: %llu, offers: %llu, decrypted: %llu\n",
              static_cast<unsigned long long>(recipient.deliveries_received()),
              static_cast<unsigned long long>(recipient.offers_posted()),
              static_cast<unsigned long long>(recipient.readings_decrypted()));
  std::printf("  Em is RSA ciphertext under the gateway's ephemeral key: no\n"
              "  payment, no eSk, no plaintext. Freeloading gets nothing.\n\n");
}

void scenario_double_spend_note() {
  std::printf("--- 4. double-spending recipient ---------------------------\n");
  std::printf(
      "  the §6 race (offer fed only to the gateway, conflicting sweep fed\n"
      "  to the miner, eSk sniffed off the redeem) is reproduced trial by\n"
      "  trial in bench_ablation_confirmations: ~100%% success at 0\n"
      "  confirmations, 0%% from 1 confirmation on, at ~15 s per\n"
      "  confirmation of added honest latency.\n\n");
}

}  // namespace

int main() {
  std::printf("BcWAN adversarial playbook\n");
  std::printf("==========================\n\n");
  scenario_withholding_gateway();
  scenario_tampering_gateway();
  scenario_freeloading_recipient();
  scenario_double_spend_note();
  std::printf("all adversarial scenarios behaved as the protocol promises.\n");
  return 0;
}

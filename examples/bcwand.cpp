// bcwand — the BcWAN federation daemon over real TCP.
//
// One process per federation member, the deployment shape of the paper's
// §5.2 evaluation (five PlanetLab gateway hosts + one mining master), built
// on the epoll Transport backend instead of SimNet. `examples/cluster`
// spawns six of these on localhost, SIGKILLs one mid-exchange and asserts
// convergence; this binary is also a usable standalone daemon.
//
//   bcwand --node-id N --peers ip:port,ip:port,...   (index = HostId)
//          --role gateway|miner --store-dir DIR
//          [--status-file PATH]        atomically rewritten ~4x/sec:
//                                      "height tip state redeemed reclaimed
//                                       open offers violations settled"
//          [--block-interval-ms 150]   miner: mining cadence
//          [--exchange-interval-ms 300] gateway: new-sale cadence
//          [--fund-until-height 40]    miner: round-robin gateway funding
//          [--target-height H]         miner: stop mining at H (0 = never)
//          [--telemetry-out PATH]      JSON metric snapshot at shutdown
//          [--seed S]
//
// Workload (the fair exchange of §4, end-to-end over TCP): each gateway
// periodically generates an ephemeral RSA pair and broadcasts an "esale"
// announcement; the next gateway around the ring answers as buyer with a
// Listing-1 offer transaction; the seller's mempool watcher redeems it,
// revealing eSk on-chain; the buyer verifies the reveal against the
// announced ePk. If a seller dies before redeeming (the cluster's SIGKILL),
// the buyer reclaims through the CLTV branch after the timeout — settlement
// invariants hold either way, and `cluster` re-checks them offline from the
// persisted stores.
//
// Clean shutdown: SIGTERM/SIGINT stop the workload timers, drain the
// transport queues for a grace period (so the last mined block reaches
// every peer), write a final snapshot and fsync the store.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/miner.hpp"
#include "chain/wallet.hpp"
#include "bcwan/fair_exchange.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/tcp_transport.hpp"
#include "sim/invariants.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "util/serial.hpp"

using namespace bcwan;

namespace {

p2p::TcpTransport* g_transport = nullptr;

void on_signal(int) {
  if (g_transport != nullptr) g_transport->stop();
}

struct Options {
  p2p::HostId node_id = 0;
  std::vector<std::string> peers;
  std::string role = "gateway";
  std::string store_dir;
  std::string status_file;
  std::string telemetry_out;
  int block_interval_ms = 150;
  int exchange_interval_ms = 300;
  int fund_until_height = 40;
  int target_height = 0;
  std::uint64_t seed = 1;
};

int usage() {
  std::fprintf(stderr,
               "usage: bcwand --node-id N --peers ip:port,... "
               "--role gateway|miner --store-dir DIR [--status-file PATH]\n"
               "              [--block-interval-ms N] "
               "[--exchange-interval-ms N] [--fund-until-height H]\n"
               "              [--target-height H] [--telemetry-out PATH] "
               "[--seed S]\n");
  return 64;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Shared-by-construction chain parameters; every daemon must agree.
chain::ChainParams cluster_params() {
  chain::ChainParams params;
  params.pow_zero_bits = 8;       // trivial grind: schedule comes from timers
  params.coinbase_maturity = 2;
  return params;
}

constexpr chain::Amount kPrice = 2 * chain::kCoin;
constexpr chain::Amount kFee = 1000;
constexpr int kOfferTimeoutBlocks = 40;
constexpr std::size_t kMaxActiveSales = 8;

/// The fair-exchange "esale" announcement: sale id + seller identity +
/// ephemeral public key, broadcast over the app-message channel.
util::Bytes encode_esale(std::uint64_t sale_id,
                         const script::PubKeyHash& seller,
                         const crypto::RsaPublicKey& ephemeral) {
  util::Writer w;
  w.u64(sale_id);
  w.bytes(util::ByteView(seller.data(), seller.size()));
  w.var_bytes(ephemeral.serialize());
  return w.take();
}

struct Esale {
  std::uint64_t sale_id = 0;
  script::PubKeyHash seller{};
  crypto::RsaPublicKey ephemeral;
};

std::optional<Esale> decode_esale(util::ByteView payload) {
  try {
    util::Reader r(payload);
    Esale out;
    out.sale_id = r.u64();
    const util::Bytes pkh = r.bytes(out.seller.size());
    std::copy(pkh.begin(), pkh.end(), out.seller.begin());
    const util::Bytes pub = r.var_bytes();
    r.expect_done();
    auto key = crypto::RsaPublicKey::deserialize(pub);
    if (!key) return std::nullopt;
    out.ephemeral = std::move(*key);
    return out;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

/// The daemon: one ChainNode over TCP plus the role-specific workload.
class Daemon {
 public:
  Daemon(const Options& opts, p2p::TcpTransport& transport)
      : opts_(opts),
        transport_(transport),
        wallet_(chain::Wallet::from_seed("node-" +
                                         std::to_string(opts.node_id))),
        // Ephemeral-key RNG must differ across restarts of the same node:
        // replaying the seed after a SIGKILL would re-announce an already
        // settled RSA key and double-pay it. Mix in process identity.
        rng_(opts.seed ^ (0x9e37u + static_cast<std::uint64_t>(opts.node_id)) ^
             (static_cast<std::uint64_t>(getpid()) << 32) ^
             static_cast<std::uint64_t>(time(nullptr))),
        node_(transport, opts.node_id, params_,
              [&] {
                p2p::ChainNodeConfig config;
                config.store_dir = opts.store_dir;
                config.store_fsync = true;
                config.snapshot_interval = 32;
                return config;
              }(),
              opts.seed + static_cast<std::uint64_t>(opts.node_id)) {
    gateway_count_ = static_cast<int>(opts_.peers.size()) - 1;
    node_.set_app_handler([this](const p2p::Message& msg) { on_app(msg); });
    node_.add_tx_watcher(
        [this](const chain::Transaction& tx) { on_tx(tx); });
    node_.add_block_watcher(
        [this](const chain::Block& block) { on_block(block); });
    if (opts_.role == "miner") {
      miner_ = std::make_unique<chain::Miner>(params_, wallet_.pkh());
      arm_mining_timer();
    } else {
      arm_exchange_timer();
    }
    arm_status_timer();
  }

  void shutdown() {
    stopping_ = true;
    // Drain: flush queued frames (the last block!) and keep serving reads.
    const util::SimTime until = transport_.now() + 700 * util::kMillisecond;
    while (transport_.now() < until) transport_.poll(20);
    if (node_.store() != nullptr) {
      node_.store()->write_snapshot(node_.chain());
      node_.store()->sync();
    }
    write_status();
    if (!opts_.telemetry_out.empty() && telemetry::enabled())
      telemetry::write_json_snapshot(opts_.telemetry_out);
    std::printf("bcwand[%d]: clean shutdown at height %d tip %s\n",
                opts_.node_id, node_.chain().height(),
                util::to_hex(node_.chain().tip_hash()).c_str());
  }

 private:
  // -- Miner role. --

  void arm_mining_timer() {
    transport_.add_timer(opts_.block_interval_ms * util::kMillisecond,
                         [this] {
                           if (!stopping_) {
                             mine_one();
                             arm_mining_timer();
                           }
                         });
  }

  void mine_one() {
    const int next = node_.chain().height() + 1;
    if (opts_.target_height > 0 && next > opts_.target_height) return;
    // Bootstrap: round-robin funding payments so every gateway can buy.
    if (next <= opts_.fund_until_height && gateway_count_ > 0) {
      const int gateway = next % gateway_count_;
      const chain::Wallet dest =
          chain::Wallet::from_seed("node-" + std::to_string(gateway));
      const auto payment = wallet_.create_payment(
          node_.chain(), &node_.mempool(), dest.pkh(), 10 * chain::kCoin,
          kFee);
      if (payment) node_.submit_tx(*payment);
    }
    const chain::Block block =
        miner_->mine(node_.chain(), node_.mempool(),
                     static_cast<std::uint64_t>(next));
    node_.submit_block(block);
  }

  // -- Gateway role: seller side. --

  void arm_exchange_timer() {
    transport_.add_timer(opts_.exchange_interval_ms * util::kMillisecond,
                         [this] {
                           if (!stopping_) {
                             start_sale();
                             arm_exchange_timer();
                           }
                         });
  }

  void start_sale() {
    if (sales_.size() >= kMaxActiveSales) return;
    const std::uint64_t sale_id =
        static_cast<std::uint64_t>(opts_.node_id) << 32 | next_sale_++;
    crypto::RsaKeyPair ephemeral = crypto::rsa_generate(rng_, 512);
    const crypto::RsaPublicKey pub = ephemeral.pub;
    sales_.emplace(sale_id, std::make_unique<core::FairExchangeSeller>(
                                wallet_, std::move(ephemeral)));
    transport_.broadcast(opts_.node_id,
                         p2p::Message{"esale",
                                      encode_esale(sale_id, wallet_.pkh(), pub),
                                      opts_.node_id});
  }

  // -- Gateway role: buyer side. --

  void on_app(const p2p::Message& msg) {
    if (opts_.role == "miner" || msg.type != "esale") return;
    const auto sale = decode_esale(msg.payload);
    if (!sale) return;
    // Ring assignment: gateway (seller+1) % n buys; everyone else ignores.
    if (msg.from < 0 || (msg.from + 1) % gateway_count_ != opts_.node_id)
      return;
    if (buys_.count(sale->sale_id) != 0) return;
    auto buyer = std::make_unique<core::FairExchangeBuyer>(
        wallet_, sale->ephemeral, sale->seller, kPrice, kFee,
        kOfferTimeoutBlocks);
    const auto offer = buyer->make_offer(node_.chain(), &node_.mempool());
    if (!offer) return;  // not funded yet; seller's sale goes stale
    if (!node_.submit_tx(*offer).ok()) return;
    buys_.emplace(sale->sale_id, std::move(buyer));
  }

  void on_tx(const chain::Transaction& tx) {
    // Seller: does any of my open sales' redeem match this offer?
    for (auto it = sales_.begin(); it != sales_.end();) {
      if (auto redeem = it->second->try_redeem(tx, kFee)) {
        node_.submit_tx(*redeem);
        ++redeems_sent_;
        it = sales_.erase(it);
      } else {
        ++it;
      }
    }
    // Buyer: is this the seller's reveal?
    for (auto it = buys_.begin(); it != buys_.end();) {
      if (it->second->observe(tx)) {
        ++settled_;  // eSk recovered and verified against the announced ePk
        it = buys_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void on_block(const chain::Block&) {
    // Buyer reclaim path: a seller that died (the cluster SIGKILL) never
    // redeems; pull the funds back through the CLTV branch after timeout.
    const int height = node_.chain().height();
    for (auto it = buys_.begin(); it != buys_.end();) {
      if (auto reclaim = it->second->make_reclaim(height)) {
        node_.submit_tx(*reclaim);
        it = buys_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // -- Status export (the cluster launcher's progress probe). --

  void arm_status_timer() {
    transport_.add_timer(250 * util::kMillisecond, [this] {
      if (!stopping_) {
        write_status();
        arm_status_timer();
      }
    });
  }

  void write_status() {
    if (opts_.status_file.empty()) return;
    sim::InvariantReport report;
    const sim::SettlementTally tally =
        sim::check_settlement_invariants(node_.chain(), report);
    const std::string tmp = opts_.status_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "%d %s %s %llu %llu %llu %llu %zu %llu\n",
                 node_.chain().height(),
                 util::to_hex(node_.chain().tip_hash()).c_str(),
                 util::to_hex(node_.chain().state_hash()).c_str(),
                 static_cast<unsigned long long>(tally.redeemed),
                 static_cast<unsigned long long>(tally.reclaimed),
                 static_cast<unsigned long long>(tally.open),
                 static_cast<unsigned long long>(tally.offers),
                 report.violations.size(),
                 static_cast<unsigned long long>(settled_));
    std::fclose(f);
    std::rename(tmp.c_str(), opts_.status_file.c_str());
  }

  const Options& opts_;
  p2p::TcpTransport& transport_;
  chain::ChainParams params_ = cluster_params();
  chain::Wallet wallet_;
  util::Rng rng_;
  p2p::ChainNode node_;
  std::unique_ptr<chain::Miner> miner_;
  int gateway_count_ = 0;
  bool stopping_ = false;
  std::uint64_t next_sale_ = 0;
  std::uint64_t redeems_sent_ = 0;
  std::uint64_t settled_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<core::FairExchangeSeller>>
      sales_;
  std::unordered_map<std::uint64_t, std::unique_ptr<core::FairExchangeBuyer>>
      buys_;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--node-id") opts.node_id = std::atoi(value());
    else if (arg == "--peers") opts.peers = split_csv(value());
    else if (arg == "--role") opts.role = value();
    else if (arg == "--store-dir") opts.store_dir = value();
    else if (arg == "--status-file") opts.status_file = value();
    else if (arg == "--telemetry-out") opts.telemetry_out = value();
    else if (arg == "--block-interval-ms") opts.block_interval_ms = std::atoi(value());
    else if (arg == "--exchange-interval-ms") opts.exchange_interval_ms = std::atoi(value());
    else if (arg == "--fund-until-height") opts.fund_until_height = std::atoi(value());
    else if (arg == "--target-height") opts.target_height = std::atoi(value());
    else if (arg == "--seed") opts.seed = std::strtoull(value(), nullptr, 10);
    else return usage();
  }
  if (opts.peers.empty() || opts.node_id < 0 ||
      static_cast<std::size_t>(opts.node_id) >= opts.peers.size() ||
      (opts.role != "gateway" && opts.role != "miner") ||
      opts.store_dir.empty()) {
    return usage();
  }

  if (!opts.telemetry_out.empty() && telemetry::compiled_in())
    telemetry::set_enabled(true);

  p2p::TcpTransportConfig tcfg;
  tcfg.self = opts.node_id;
  tcfg.listen = opts.peers[static_cast<std::size_t>(opts.node_id)];
  tcfg.peers = opts.peers;
  tcfg.seed = opts.seed;
  try {
    p2p::TcpTransport transport(std::move(tcfg));
    g_transport = &transport;
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    Daemon daemon(opts, transport);
    std::printf("bcwand[%d]: %s listening on %s, %zu peers\n", opts.node_id,
                opts.role.c_str(),
                opts.peers[static_cast<std::size_t>(opts.node_id)].c_str(),
                opts.peers.size() - 1);
    std::fflush(stdout);
    transport.run();  // until SIGTERM/SIGINT
    daemon.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bcwand[%d]: fatal: %s\n", opts.node_id, e.what());
    return 2;
  }
  return 0;
}

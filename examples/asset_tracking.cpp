// Asset tracking across operators: the paper's §1 logistics motivation
// ("asset tracking and monitoring (airports, car lots, construction sites,
// warehouses, retail) ... pallet tracking, shipping containers").
//
// A pallet tracker travels through regions covered by different federation
// members. Between reports it "moves": the simulation re-homes the tracker
// to the next operator's gateway and re-runs the exchange there. Farther
// from the gateway the link degrades, so the tracker steps its spreading
// factor up (SF7 -> SF9 -> SF12) and the airtime cost of each report grows.
//
//   ./asset_tracking
#include <cstdio>

#include "lora/airtime.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace bcwan;
  std::printf("BcWAN asset tracking — one pallet, three operators' coverage\n");
  std::printf("------------------------------------------------------------\n\n");

  // Three operators; the pallet belongs to operator 0 (its recipient gets
  // every report) but physically crosses all coverage areas.
  sim::ScenarioConfig config;
  config.actors = 3;
  config.sensors_per_actor = 1;
  config.chain_params.pow_zero_bits = 8;
  config.chain_params.coinbase_maturity = 3;
  config.recipient_funding = 20 * chain::kCoin;
  config.seed = 77;
  sim::Scenario scenario(config);
  scenario.bootstrap();

  // Report airtime cost by link quality (distance from the local gateway).
  std::printf("link budget per report (132 B frame):\n");
  std::printf("  %-22s %-6s %-12s %-14s\n", "leg", "SF", "airtime_ms",
              "max_reports/h");
  struct Leg {
    const char* name;
    lora::SpreadingFactor sf;
  };
  const Leg legs[] = {
      {"warehouse (near gw)", lora::SpreadingFactor::kSF7},
      {"highway (mid-range)", lora::SpreadingFactor::kSF9},
      {"rural depot (far)", lora::SpreadingFactor::kSF12},
  };
  for (const Leg& leg : legs) {
    lora::LoraConfig phy;
    phy.sf = leg.sf;
    std::printf("  %-22s SF%-4d %-12.1f %-14d\n", leg.name,
                static_cast<int>(leg.sf), 1000.0 * lora::airtime_s(phy, 132),
                lora::max_messages_per_hour(phy, 132, 0.01));
  }

  // Drive reports through each operator's gateway in turn. The scenario
  // wires sensor (0,0) to operator 1's gateway; operators 1 and 2 own
  // sensors homed to operators 2 and 0 — we reuse all three devices as
  // "the pallet seen by different gateways", since what matters on-chain
  // is which foreign gateway forwards and gets paid.
  std::printf("\npallet journey (each report crosses a different operator):\n");
  int report = 0;
  for (int hop = 0; hop < 6; ++hop) {
    const int owner = hop % 3;
    auto& sensor = scenario.sensor(owner, 0);
    auto& recipient = scenario.recipient(owner);
    bool delivered = false;
    recipient.on_reading = [&](std::uint16_t, const util::Bytes& reading) {
      std::printf("  report %d via %s's gateway: \"%s\" (latency path ok)\n",
                  ++report,
                  ("operator-" + std::to_string((owner + 1) % 3)).c_str(),
                  util::bytes_str(reading).c_str());
      delivered = true;
    };
    char position[16];
    std::snprintf(position, sizeof position, "pos=%02d.%02d", hop * 7 + 1,
                  hop * 13 % 60);
    sensor.start_exchange(util::str_bytes(position));
    const util::SimTime deadline = scenario.loop().now() + 5 * util::kMinute;
    while (!delivered && scenario.loop().now() < deadline) {
      scenario.loop().run_until(scenario.loop().now() + util::kSecond);
    }
    recipient.on_reading = nullptr;
    if (!delivered) std::printf("  report %d LOST (radio)\n", hop + 1);
  }

  scenario.loop().run_until(scenario.loop().now() + 3 * util::kMinute);
  std::printf("\nsettlement: every forwarding gateway was paid —\n");
  for (int a = 0; a < 3; ++a) {
    std::printf("  operator-%d gateway reward: %.4f coins (%llu redeems)\n", a,
                static_cast<double>(scenario.gateway(a).wallet().balance(
                    scenario.actor_node(a).chain())) /
                    chain::kCoin,
                static_cast<unsigned long long>(
                    scenario.gateway(a).redeems_submitted()));
  }
  std::printf("\nthe pallet's operator never deployed a single gateway along\n"
              "the route, and never trusted the ones it used.\n");
  return 0;
}

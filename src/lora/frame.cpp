#include "lora/frame.hpp"

#include <algorithm>

#include "util/serial.hpp"

namespace bcwan::lora {

namespace {

// Header: type (1) + device id (2) + payload length low byte (1) = 4 bytes.
void write_header(util::Writer& w, FrameType type, std::uint16_t device_id,
                  std::size_t payload_len) {
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(device_id);
  w.u8(static_cast<std::uint8_t>(payload_len & 0xff));
}

}  // namespace

util::Bytes InnerBlob::encode() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(iv.size()));
  w.bytes(util::ByteView(iv.data(), iv.size()));
  w.u8(static_cast<std::uint8_t>(ciphertext.size()));
  w.bytes(ciphertext);
  return w.take();
}

std::optional<InnerBlob> InnerBlob::decode(util::ByteView data) {
  try {
    util::Reader r(data);
    InnerBlob blob;
    const std::uint8_t iv_len = r.u8();
    if (iv_len != blob.iv.size()) return std::nullopt;
    const util::Bytes iv = r.bytes(iv_len);
    std::copy(iv.begin(), iv.end(), blob.iv.begin());
    const std::uint8_t ct_len = r.u8();
    blob.ciphertext = r.bytes(ct_len);
    r.expect_done();
    if (blob.ciphertext.empty() ||
        blob.ciphertext.size() % crypto::kAesBlockSize != 0) {
      return std::nullopt;
    }
    return blob;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

util::Bytes UplinkRequestFrame::encode() const {
  util::Writer w;
  write_header(w, FrameType::kUplinkRequest, device_id, 0);
  return w.take();
}

std::optional<UplinkRequestFrame> UplinkRequestFrame::decode(
    util::ByteView data) {
  try {
    util::Reader r(data);
    if (r.u8() != static_cast<std::uint8_t>(FrameType::kUplinkRequest))
      return std::nullopt;
    UplinkRequestFrame frame;
    frame.device_id = r.u16();
    r.u8();  // length byte
    r.expect_done();
    return frame;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

util::Bytes EphemeralKeyFrame::encode() const {
  const util::Bytes key = ephemeral_pub.serialize();
  util::Writer w;
  write_header(w, FrameType::kEphemeralKey, device_id, key.size());
  w.var_bytes(key);
  return w.take();
}

std::optional<EphemeralKeyFrame> EphemeralKeyFrame::decode(
    util::ByteView data) {
  try {
    util::Reader r(data);
    if (r.u8() != static_cast<std::uint8_t>(FrameType::kEphemeralKey))
      return std::nullopt;
    EphemeralKeyFrame frame;
    frame.device_id = r.u16();
    r.u8();
    const auto pub = crypto::RsaPublicKey::deserialize(r.var_bytes());
    if (!pub) return std::nullopt;
    frame.ephemeral_pub = *pub;
    r.expect_done();
    return frame;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

util::Bytes UplinkDataFrame::encode() const {
  util::Writer w;
  write_header(w, FrameType::kUplinkData, device_id, em.size() + sig.size());
  w.bytes(util::ByteView(recipient.data(), recipient.size()));
  w.var_bytes(em);
  w.var_bytes(sig);
  return w.take();
}

std::optional<UplinkDataFrame> UplinkDataFrame::decode(util::ByteView data) {
  try {
    util::Reader r(data);
    if (r.u8() != static_cast<std::uint8_t>(FrameType::kUplinkData))
      return std::nullopt;
    UplinkDataFrame frame;
    frame.device_id = r.u16();
    r.u8();
    const util::Bytes addr = r.bytes(frame.recipient.size());
    std::copy(addr.begin(), addr.end(), frame.recipient.begin());
    frame.em = r.var_bytes();
    frame.sig = r.var_bytes();
    r.expect_done();
    if (frame.em.empty() || frame.sig.empty()) return std::nullopt;
    return frame;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

util::Bytes DataAckFrame::encode() const {
  util::Writer w;
  write_header(w, FrameType::kDataAck, device_id, 0);
  return w.take();
}

std::optional<DataAckFrame> DataAckFrame::decode(util::ByteView data) {
  try {
    util::Reader r(data);
    if (r.u8() != static_cast<std::uint8_t>(FrameType::kDataAck))
      return std::nullopt;
    DataAckFrame frame;
    frame.device_id = r.u16();
    r.u8();  // length byte
    r.expect_done();
    return frame;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

std::optional<FrameType> peek_frame_type(util::ByteView data) {
  if (data.empty()) return std::nullopt;
  switch (data[0]) {
    case 1: return FrameType::kUplinkRequest;
    case 2: return FrameType::kEphemeralKey;
    case 3: return FrameType::kUplinkData;
    case 4: return FrameType::kDataAck;
    default: return std::nullopt;
  }
}

}  // namespace bcwan::lora

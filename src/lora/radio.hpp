// LoRa radio link simulation.
//
// Devices attach to a gateway in radio range (the paper's Nucleo node and
// RPi/RFM95 gateway). Transmissions occupy the air for the Semtech airtime
// of the frame; the simulator enforces per-device and per-gateway duty
// cycles and, optionally, ALOHA-style collisions between overlapping
// uplinks at the same gateway plus random frame loss.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "lora/airtime.hpp"
#include "p2p/event_loop.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bcwan::lora {

using RadioGatewayId = int;
using RadioDeviceId = int;

/// Gilbert–Elliott burst-loss channel: each device↔gateway link alternates
/// between a good and a bad state with exponentially distributed sojourn
/// times, and drops frames with a state-dependent probability. This models
/// LoRa links that fade for seconds at a time (moving obstacles, interferer
/// duty cycles) far better than independent per-frame loss; the uniform
/// `RadioConfig::frame_loss` knob is the degenerate single-state case.
struct BurstLossModel {
  double mean_good_s = 60.0;  // mean sojourn in the good state
  double mean_bad_s = 10.0;   // mean sojourn in the bad (fading) state
  double loss_good = 0.0;     // per-frame drop probability while good
  double loss_bad = 0.0;      // per-frame drop probability while bad
  bool enabled() const noexcept { return loss_good > 0.0 || loss_bad > 0.0; }
};

struct RadioConfig {
  bool collisions = false;   // overlapping uplinks at a gateway all corrupt
  double frame_loss = 0.0;   // independent loss probability per frame
  BurstLossModel burst;      // correlated (burst) loss on top of frame_loss
  double gateway_duty_cycle = 0.1;  // downlink budget (EU869 10% band)
};

struct TxResult {
  bool accepted = false;              // duty cycle allowed the transmission
  util::SimTime airtime = 0;          // time on air when accepted
  util::SimTime next_allowed = 0;     // earliest retry when rejected
};

class LoraRadio {
 public:
  using RxHandler =
      std::function<void(RadioDeviceId from, const util::Bytes& frame)>;
  using DeviceRxHandler = std::function<void(const util::Bytes& frame)>;

  LoraRadio(p2p::EventLoop& loop, std::uint64_t seed, RadioConfig config = {});

  RadioGatewayId add_gateway(RxHandler on_uplink);
  /// A device is attached to exactly one gateway (the paper's master
  /// gateway for that actor's devices, or the nearest foreign gateway).
  RadioDeviceId add_device(RadioGatewayId gateway, LoraConfig phy,
                           double duty_cycle, DeviceRxHandler on_downlink);

  /// Node -> gateway. Airtime and duty cycle computed from the frame size.
  TxResult uplink(RadioDeviceId device, const util::Bytes& frame);

  /// Gateway -> node (the ephemeral-key reply).
  TxResult downlink(RadioGatewayId gateway, RadioDeviceId device,
                    const util::Bytes& frame);

  const LoraConfig& device_phy(RadioDeviceId id) const {
    return devices_.at(static_cast<std::size_t>(id)).phy;
  }
  /// Earliest start for another frame like the device's last one.
  util::SimTime device_next_allowed(RadioDeviceId id,
                                    util::SimTime now) const {
    const Device& d = devices_.at(static_cast<std::size_t>(id));
    return d.duty.earliest_start(now, d.last_airtime);
  }

  std::uint64_t frames_delivered() const noexcept { return delivered_; }
  std::uint64_t frames_lost() const noexcept { return lost_; }
  std::uint64_t collisions_observed() const noexcept { return collisions_; }
  std::uint64_t frames_jammed() const noexcept { return jammed_; }
  std::uint64_t frames_mangled() const noexcept { return mangled_; }

  // -- Adversary hooks (sim/adversary). The radio medium is unauthenticated
  // -- and shared: anyone in range can sniff, jam, or key up a transmitter.

  /// Observe every uplink frame the moment it is delivered to a gateway —
  /// an attacker's receiver parked on the same channel. Fires after the
  /// gateway's own handler.
  using UplinkTap = std::function<void(RadioGatewayId gateway,
                                       RadioDeviceId from,
                                       const util::Bytes& frame)>;
  void set_uplink_tap(UplinkTap tap) { uplink_tap_ = std::move(tap); }

  /// Corrupt uplink frames in flight (targeted bit-flips on the 128 B
  /// payload). The mangler may mutate the buffer; return true to count the
  /// frame as mangled. nullptr uninstalls.
  using UplinkMangler = std::function<bool(util::Bytes&)>;
  void set_uplink_mangler(UplinkMangler mangler) {
    uplink_mangler_ = std::move(mangler);
  }

  /// Targeted jamming window: every frame (either direction) put on the air
  /// before `until` is lost. Extends, never shortens, an open window.
  void jam_until(util::SimTime until) {
    jam_until_ = std::max(jam_until_, until);
  }
  bool jammed() const { return loop_.now() < jam_until_; }

  /// Swap the burst-loss model at runtime (fault injection). Link states
  /// are resampled lazily on the next transmission.
  void set_burst_model(const BurstLossModel& model);
  /// Force every link into the given state for `hold`; afterwards the
  /// Gilbert–Elliott dynamics resume from that state.
  void force_channel_state(bool bad, util::SimTime hold);
  /// Current Gilbert–Elliott state of one link (tests / telemetry).
  bool link_in_bad_state(RadioDeviceId id) const {
    return devices_.at(static_cast<std::size_t>(id)).link.bad;
  }

 private:
  struct Gateway {
    RxHandler on_uplink;
    DutyCycleLimiter duty;
    LoraConfig phy;  // downlink PHY (mirror of device settings)
    // Ongoing uplink receptions for collision detection.
    struct Reception {
      util::SimTime start;
      util::SimTime end;
      bool corrupted = false;
    };
    std::vector<Reception> receptions;
  };
  struct LinkState {
    bool bad = false;
    util::SimTime until = 0;  // state holds until this virtual time
  };
  struct Device {
    RadioGatewayId gateway;
    LoraConfig phy;
    DutyCycleLimiter duty;
    DeviceRxHandler on_downlink;
    util::SimTime last_airtime = util::kMillisecond;
    LinkState link;
  };

  /// Advance the link's Gilbert–Elliott state to `now`, then decide whether
  /// a frame transmitted now is dropped (burst loss and the legacy uniform
  /// loss are independent).
  bool frame_lost(Device& device);
  void advance_link(LinkState& link, util::SimTime now);
  /// Jamming check shared by both directions: counts and reports loss when
  /// the transmission starts inside an open jam window.
  bool jam_check();

  p2p::EventLoop& loop_;
  util::Rng rng_;
  RadioConfig config_;
  std::vector<Gateway> gateways_;
  std::vector<Device> devices_;
  UplinkTap uplink_tap_;
  UplinkMangler uplink_mangler_;
  util::SimTime jam_until_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t jammed_ = 0;
  std::uint64_t mangled_ = 0;
};

}  // namespace bcwan::lora

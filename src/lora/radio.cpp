#include "lora/radio.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace bcwan::lora {

namespace {

// Shared by uplink and downlink. Airtime is virtual (SimTime µs), exported
// in seconds; duty-cycle credit gauges are per-direction, last-writer-wins
// across devices/gateways of one radio.
void telemetry_note_tx(const char* direction, util::SimTime t_air,
                       util::SimTime credit_left) {
  auto& reg = bcwan::telemetry::registry();
  reg.counter("bcwan_lora_frames_sent_total", "direction", direction,
              "Frames put on the air by direction")
      .add();
  reg.gauge("bcwan_lora_airtime_seconds_total", "direction", direction,
            "Cumulative simulated on-air time by direction")
      .add(util::to_seconds(t_air));
  reg.gauge("bcwan_lora_duty_credit_seconds", "direction", direction,
            "Remaining duty-cycle on-air credit after the latest transmission")
      .set(util::to_seconds(credit_left));
}

void telemetry_note_outcome(const char* outcome) {
  if (!bcwan::telemetry::enabled()) return;
  bcwan::telemetry::registry()
      .counter("bcwan_lora_frame_outcomes_total", "outcome", outcome,
               "Frame fates: delivered, lost, or collided")
      .add();
}

void telemetry_note_duty_reject(const char* direction) {
  bcwan::telemetry::registry()
      .counter("bcwan_lora_duty_rejections_total", "direction", direction,
               "Transmissions deferred by the duty-cycle limiter")
      .add();
}

}  // namespace

LoraRadio::LoraRadio(p2p::EventLoop& loop, std::uint64_t seed,
                     RadioConfig config)
    : loop_(loop), rng_(seed), config_(config) {}

RadioGatewayId LoraRadio::add_gateway(RxHandler on_uplink) {
  gateways_.push_back(Gateway{std::move(on_uplink),
                              DutyCycleLimiter(config_.gateway_duty_cycle),
                              LoraConfig{},
                              {}});
  return static_cast<RadioGatewayId>(gateways_.size() - 1);
}

RadioDeviceId LoraRadio::add_device(RadioGatewayId gateway, LoraConfig phy,
                                    double duty_cycle,
                                    DeviceRxHandler on_downlink) {
  devices_.push_back(Device{gateway, phy, DutyCycleLimiter(duty_cycle),
                            std::move(on_downlink), util::kMillisecond,
                            LinkState{}});
  return static_cast<RadioDeviceId>(devices_.size() - 1);
}

void LoraRadio::set_burst_model(const BurstLossModel& model) {
  config_.burst = model;
  for (Device& device : devices_) device.link = LinkState{};
}

void LoraRadio::force_channel_state(bool bad, util::SimTime hold) {
  const util::SimTime now = loop_.now();
  for (Device& device : devices_) {
    device.link.bad = bad;
    device.link.until = now + hold;
  }
}

void LoraRadio::advance_link(LinkState& link, util::SimTime now) {
  // Sojourn times are exponential, so the state sequence is a continuous-
  // time two-state Markov chain sampled lazily at transmission instants.
  if (link.until == 0 && !link.bad) {
    // Fresh link: it starts in the good state; sample its first sojourn.
    link.until = util::from_seconds(rng_.exponential(config_.burst.mean_good_s));
    if (link.until > now) return;
  }
  while (link.until <= now) {
    link.bad = !link.bad;
    const double mean_s =
        link.bad ? config_.burst.mean_bad_s : config_.burst.mean_good_s;
    link.until += util::from_seconds(rng_.exponential(mean_s));
  }
}

bool LoraRadio::jam_check() {
  if (loop_.now() >= jam_until_) return false;
  ++jammed_;
  telemetry_note_outcome("jammed");
  return true;
}

bool LoraRadio::frame_lost(Device& device) {
  double p = config_.frame_loss;
  if (config_.burst.enabled()) {
    advance_link(device.link, loop_.now());
    const double state_p =
        device.link.bad ? config_.burst.loss_bad : config_.burst.loss_good;
    p = 1.0 - (1.0 - p) * (1.0 - state_p);
  }
  return p > 0.0 && rng_.chance(p);
}

TxResult LoraRadio::uplink(RadioDeviceId device_id, const util::Bytes& frame) {
  Device& device = devices_.at(static_cast<std::size_t>(device_id));
  const util::SimTime now = loop_.now();
  const util::SimTime t_air = airtime(device.phy, frame.size());
  const util::SimTime earliest = device.duty.earliest_start(now, t_air);
  if (earliest > now) {
    if (telemetry::enabled()) telemetry_note_duty_reject("uplink");
    return TxResult{false, 0, earliest};
  }
  device.duty.record(now, t_air);
  if (telemetry::enabled())
    telemetry_note_tx("uplink", t_air, device.duty.credit(now));

  Gateway& gateway = gateways_.at(static_cast<std::size_t>(device.gateway));
  const util::SimTime end = now + t_air;

  bool corrupted = frame_lost(device);
  if (jam_check()) corrupted = true;

  // An in-flight adversary (bit-flips) corrupts the bytes the gateway — and
  // any sniffer — will actually receive.
  util::Bytes rx_frame = frame;
  if (uplink_mangler_ && uplink_mangler_(rx_frame)) ++mangled_;

  if (config_.collisions) {
    // Overlap with any ongoing reception corrupts both frames (ALOHA).
    std::erase_if(gateway.receptions,
                  [now](const Gateway::Reception& r) { return r.end <= now; });
    for (auto& reception : gateway.receptions) {
      if (reception.end > now) {
        reception.corrupted = true;
        corrupted = true;
        ++collisions_;
        telemetry_note_outcome("collision");
      }
    }
    gateway.receptions.push_back(Gateway::Reception{now, end, corrupted});
    // Delivery is decided when the frame completes, because a later frame
    // can still corrupt this one.
    const std::size_t slot = gateway.receptions.size() - 1;
    const RadioGatewayId gw_id = device.gateway;
    loop_.at(end, [this, gw_id, device_id, rx_frame, now, slot]() {
      Gateway& gw = gateways_.at(static_cast<std::size_t>(gw_id));
      // Find our reception entry (by start time; the vector may have been
      // compacted).
      const auto it = std::find_if(
          gw.receptions.begin(), gw.receptions.end(),
          [now](const Gateway::Reception& r) { return r.start == now; });
      const bool ok = it != gw.receptions.end() && !it->corrupted;
      if (it != gw.receptions.end()) gw.receptions.erase(it);
      (void)slot;
      if (ok) {
        ++delivered_;
        telemetry_note_outcome("delivered");
        if (gw.on_uplink) gw.on_uplink(device_id, rx_frame);
        if (uplink_tap_) uplink_tap_(gw_id, device_id, rx_frame);
      } else {
        ++lost_;
        telemetry_note_outcome("lost");
      }
    });
  } else {
    if (corrupted) {
      ++lost_;
      telemetry_note_outcome("lost");
    } else {
      const RadioGatewayId gw_id = device.gateway;
      loop_.at(end, [this, gw_id, device_id, rx_frame]() {
        ++delivered_;
        telemetry_note_outcome("delivered");
        Gateway& gw = gateways_.at(static_cast<std::size_t>(gw_id));
        if (gw.on_uplink) gw.on_uplink(device_id, rx_frame);
        if (uplink_tap_) uplink_tap_(gw_id, device_id, rx_frame);
      });
    }
  }
  device.last_airtime = t_air;
  return TxResult{true, t_air, device.duty.earliest_start(now, t_air)};
}

TxResult LoraRadio::downlink(RadioGatewayId gateway_id, RadioDeviceId device_id,
                             const util::Bytes& frame) {
  Gateway& gateway = gateways_.at(static_cast<std::size_t>(gateway_id));
  Device& device = devices_.at(static_cast<std::size_t>(device_id));
  const util::SimTime now = loop_.now();
  // Downlink uses the device's PHY settings (same SF/BW as the uplink).
  const util::SimTime t_air = airtime(device.phy, frame.size());
  const util::SimTime earliest = gateway.duty.earliest_start(now, t_air);
  if (earliest > now) {
    if (telemetry::enabled()) telemetry_note_duty_reject("downlink");
    return TxResult{false, 0, earliest};
  }
  gateway.duty.record(now, t_air);
  if (telemetry::enabled())
    telemetry_note_tx("downlink", t_air, gateway.duty.credit(now));

  bool dropped = frame_lost(device);
  if (jam_check()) dropped = true;
  if (dropped) {
    ++lost_;
    telemetry_note_outcome("lost");
  } else {
    loop_.at(now + t_air, [this, device_id, frame]() {
      ++delivered_;
      telemetry_note_outcome("delivered");
      Device& dev = devices_.at(static_cast<std::size_t>(device_id));
      if (dev.on_downlink) dev.on_downlink(frame);
    });
  }
  return TxResult{true, t_air, gateway.duty.earliest_start(now, t_air)};
}

}  // namespace bcwan::lora

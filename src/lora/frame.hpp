// BcWAN LoRa frame formats.
//
// Three frames cross the radio per exchange (paper Fig. 3):
//   1. uplink request  (node -> gateway): asks for an ephemeral key;
//   2. ephemeral key   (gateway -> node): carries ePk;
//   3. uplink data     (node -> gateway): Em, Sig and @R.
//
// The data payload follows §5.1: the sensor reading is AES-256-CBC
// encrypted, packed with its IV into the 34-byte blob of Fig. 4
// (len | IV | len | ciphertext), RSA-encrypted under ePk into a 64-byte
// Em, and accompanied by a 64-byte RSA signature over (Em || ePk) —
// "a predefined minimum payload of 128 bytes, 64 bytes for the double data
// encryption and 64 bytes for the signature".
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/aes.hpp"
#include "crypto/rsa.hpp"
#include "script/templates.hpp"
#include "util/bytes.hpp"

namespace bcwan::lora {

/// Fig. 4 inner blob: 1 + 16 + 1 + 16 bytes.
constexpr std::size_t kInnerBlobSize = 34;
/// RSA-512 ciphertext and signature sizes (§5.1).
constexpr std::size_t kDoubleEncSize = 64;
constexpr std::size_t kSignatureSize = 64;
/// The paper's "predefined minimum payload of 128 bytes".
constexpr std::size_t kDataPayloadSize = kDoubleEncSize + kSignatureSize;
/// "4 bytes of length header" (§5.2).
constexpr std::size_t kFrameHeaderSize = 4;

enum class FrameType : std::uint8_t {
  kUplinkRequest = 1,
  kEphemeralKey = 2,
  kUplinkData = 3,
  /// Gateway -> node receipt for an uplink data frame. Not in the paper's
  /// Fig. 3 (its LoRa uplinks are fire-and-forget); added so nodes can
  /// retransmit lost data frames instead of writing the exchange off.
  kDataAck = 4,
};

/// Fig. 4: | len | IV (16) | len | ciphertext (16) |. The paper assumes
/// readings under 16 bytes, so the ciphertext is exactly one AES block.
struct InnerBlob {
  crypto::AesBlock iv{};
  util::Bytes ciphertext;  // one AES block for paper-sized readings

  util::Bytes encode() const;
  static std::optional<InnerBlob> decode(util::ByteView data);
};

struct UplinkRequestFrame {
  std::uint16_t device_id = 0;

  util::Bytes encode() const;
  static std::optional<UplinkRequestFrame> decode(util::ByteView data);
};

struct EphemeralKeyFrame {
  std::uint16_t device_id = 0;
  crypto::RsaPublicKey ephemeral_pub;

  util::Bytes encode() const;
  static std::optional<EphemeralKeyFrame> decode(util::ByteView data);
};

struct UplinkDataFrame {
  std::uint16_t device_id = 0;
  /// @R — the recipient's blockchain address (pubkey hash form).
  script::PubKeyHash recipient{};
  /// Em: RSA(ePk, AES(K, m) blob), 64 bytes.
  util::Bytes em;
  /// Sig: RSA-sign(Ska, Em || ePk), 64 bytes.
  util::Bytes sig;

  util::Bytes encode() const;
  static std::optional<UplinkDataFrame> decode(util::ByteView data);

  /// Wire size (header + address + payload). The paper counts 132 bytes
  /// (128 + 4) by folding the addressing into the header accounting; the
  /// explicit form carries the 20-byte @R too.
  static constexpr std::size_t wire_size() {
    return kFrameHeaderSize + 20 + kDataPayloadSize;
  }
};

/// Delivery receipt for a data frame (recovery extension; see kDataAck).
struct DataAckFrame {
  std::uint16_t device_id = 0;

  util::Bytes encode() const;
  static std::optional<DataAckFrame> decode(util::ByteView data);
};

/// First byte of an encoded frame, if valid.
std::optional<FrameType> peek_frame_type(util::ByteView data);

}  // namespace bcwan::lora

#include "lora/airtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bcwan::lora {

double symbol_time_s(const LoraConfig& cfg) {
  return std::pow(2.0, static_cast<int>(cfg.sf)) /
         static_cast<double>(cfg.bandwidth_hz);
}

double airtime_s(const LoraConfig& cfg, std::size_t payload_bytes) {
  const double t_sym = symbol_time_s(cfg);
  const double t_preamble = (cfg.preamble_symbols + 4.25) * t_sym;

  const int sf = static_cast<int>(cfg.sf);
  const int pl = static_cast<int>(payload_bytes);
  const int ih = cfg.explicit_header ? 0 : 1;
  const int crc = cfg.crc_on ? 1 : 0;
  const int de = cfg.low_data_rate_optimize() ? 1 : 0;

  const double numerator = 8.0 * pl - 4.0 * sf + 28.0 + 16.0 * crc - 20.0 * ih;
  const double denominator = 4.0 * (sf - 2 * de);
  const double payload_symbols =
      8.0 + std::max(std::ceil(numerator / denominator) *
                         (cfg.coding_rate + 4),
                     0.0);
  return t_preamble + payload_symbols * t_sym;
}

util::SimTime airtime(const LoraConfig& cfg, std::size_t payload_bytes) {
  return util::from_seconds(airtime_s(cfg, payload_bytes));
}

int max_messages_per_hour(const LoraConfig& cfg, std::size_t payload_bytes,
                          double duty_cycle) {
  const double t = airtime_s(cfg, payload_bytes);
  return static_cast<int>(std::floor(3600.0 * duty_cycle / t));
}

DutyCycleLimiter::DutyCycleLimiter(double duty_cycle, util::SimTime window)
    : duty_(duty_cycle),
      cap_(duty_cycle * static_cast<double>(window)),
      // A device fresh out of the box has a small starting allowance, not a
      // full hour's budget — 2% of the cap (≈0.7 s of airtime at 1% duty)
      // covers an initial request + data burst.
      tokens_(cap_ * 0.02) {}

util::SimTime DutyCycleLimiter::credit(util::SimTime now) const {
  const double accrued =
      tokens_ + static_cast<double>(now - last_update_) * duty_;
  return static_cast<util::SimTime>(std::min(accrued, cap_));
}

util::SimTime DutyCycleLimiter::earliest_start(util::SimTime now,
                                               util::SimTime airtime) const {
  const double needed = static_cast<double>(airtime);
  if (needed > cap_) return std::numeric_limits<util::SimTime>::max() / 2;
  const double have =
      tokens_ + static_cast<double>(std::max<util::SimTime>(
                    now - last_update_, 0)) *
                    duty_;
  if (have >= needed) return now;
  const double wait_from_update = (needed - tokens_) / duty_;
  return last_update_ + static_cast<util::SimTime>(wait_from_update) + 1;
}

void DutyCycleLimiter::record(util::SimTime start, util::SimTime airtime) {
  const double accrued =
      tokens_ + static_cast<double>(start - last_update_) * duty_;
  tokens_ = std::min(accrued, cap_) - static_cast<double>(airtime);
  if (tokens_ < 0.0) tokens_ = 0.0;
  last_update_ = start;
}

}  // namespace bcwan::lora

// LoRa physical-layer airtime model (Semtech AN1200.13 / SX1272 datasheet
// formula) and regional duty-cycle limiting.
//
// The paper's workload derives from exactly this arithmetic: "we simulated
// 30 sensors per node at a 1% duty cycle using a LoRa Spreading Factor
// level 7, effectively giving us a theoretical maximum of 183 messages per
// sensor per hour" (§5.2) for the 128-byte payload + 4-byte header frame.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace bcwan::lora {

enum class SpreadingFactor : int {
  kSF7 = 7,
  kSF8 = 8,
  kSF9 = 9,
  kSF10 = 10,
  kSF11 = 11,
  kSF12 = 12,
};

struct LoraConfig {
  SpreadingFactor sf = SpreadingFactor::kSF7;
  std::uint32_t bandwidth_hz = 125'000;
  /// Coding rate 4/(4+cr): cr=1 -> 4/5.
  int coding_rate = 1;
  int preamble_symbols = 8;
  bool explicit_header = true;
  bool crc_on = true;

  /// Low data rate optimization is mandatory at SF11/SF12 on 125 kHz.
  bool low_data_rate_optimize() const {
    return bandwidth_hz == 125'000 &&
           static_cast<int>(sf) >= 11;
  }
};

/// Symbol duration in seconds: 2^SF / BW.
double symbol_time_s(const LoraConfig& cfg);

/// Time-on-air for a `payload_bytes` PHY payload.
double airtime_s(const LoraConfig& cfg, std::size_t payload_bytes);
util::SimTime airtime(const LoraConfig& cfg, std::size_t payload_bytes);

/// Maximum messages per hour under a duty-cycle fraction (e.g. 0.01):
/// floor(3600 * duty / airtime).
int max_messages_per_hour(const LoraConfig& cfg, std::size_t payload_bytes,
                          double duty_cycle);

/// Regulatory duty-cycle accounting, ETSI style: at most duty*3600 seconds
/// of cumulative on-air time per hour. Modelled as a token bucket — credit
/// accrues at `duty` seconds-of-airtime per second up to a one-hour cap, so
/// a device that has been quiet may send a short burst (e.g. the BcWAN
/// uplink request immediately followed by the data frame) while the
/// long-run rate stays below the limit.
class DutyCycleLimiter {
 public:
  explicit DutyCycleLimiter(double duty_cycle,
                            util::SimTime window = util::kHour);

  /// Earliest time a frame of `airtime` may start, given the clock reads
  /// `now`.
  util::SimTime earliest_start(util::SimTime now,
                               util::SimTime airtime) const;

  bool can_transmit(util::SimTime now, util::SimTime airtime) const {
    return earliest_start(now, airtime) <= now;
  }

  /// Record a transmission beginning at `start` lasting `airtime`.
  /// Callers must have checked can_transmit.
  void record(util::SimTime start, util::SimTime airtime);

  double duty_cycle() const noexcept { return duty_; }
  /// Remaining on-air credit at `now` (microseconds of airtime).
  util::SimTime credit(util::SimTime now) const;

 private:
  double duty_;
  double cap_;     // duty * window, in microseconds of airtime
  double tokens_;  // current credit
  util::SimTime last_update_ = 0;
};

}  // namespace bcwan::lora

// RSA over bignum::BigUint — keygen, PKCS#1-v1.5-style encryption and
// signatures, and the public/private pair check behind OP_CHECKRSA512PAIR.
//
// BcWAN (§4.4/§5.1) uses RSA-512 twice per uplink:
//   * the gateway mints an *ephemeral* (ePk, eSk) pair per message; the node
//     encrypts its AES blob under ePk, and revealing eSk on-chain is what
//     the gateway gets paid for;
//   * the node signs (Em || ePk) with its provisioned secret Ska so the
//     recipient can authenticate the uplink.
// The paper chooses 512-bit moduli to keep LoRa payloads at 128 bytes and
// accepts the reduced security (§6); key size is a parameter here so the
// ABL-RSA ablation can sweep 512/1024/2048.
#pragma once

#include <cstddef>
#include <optional>

#include "bignum/biguint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bcwan::crypto {

struct RsaPublicKey {
  bignum::BigUint n;
  bignum::BigUint e;

  /// Modulus size in bytes (64 for RSA-512).
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  util::Bytes serialize() const;
  static std::optional<RsaPublicKey> deserialize(util::ByteView data);

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
  bignum::BigUint n;
  bignum::BigUint e;
  bignum::BigUint d;

  // CRT acceleration parameters: p*q = n, dp = d mod p-1, dq = d mod q-1,
  // qinv = q^-1 mod p. Filled by rsa_generate (the primes are in hand) or
  // recovered from (n, e, d) by rsa_crt_recover; all-zero means absent and
  // every private-key operation falls back to the full-width exponent.
  // Deliberately NOT serialized: the on-chain reveal format (the consensus
  // encoding OP_CHECKRSA512PAIR deserializes) stays n‖e‖d, and CRT is
  // re-derived locally by whoever wants the speedup.
  bignum::BigUint p;
  bignum::BigUint q;
  bignum::BigUint dp;
  bignum::BigUint dq;
  bignum::BigUint qinv;

  bool has_crt() const { return !p.is_zero(); }

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
  RsaPublicKey public_key() const { return {n, e}; }

  util::Bytes serialize() const;
  static std::optional<RsaPrivateKey> deserialize(util::ByteView data);

  /// Semantic identity: (n, e, d) only. A freshly generated key (CRT in
  /// hand) must equal its serialize/deserialize round trip (CRT dropped).
  friend bool operator==(const RsaPrivateKey& a, const RsaPrivateKey& b) {
    return a.n == b.n && a.e == b.e && a.d == b.d;
  }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA key pair with a modulus of exactly `modulus_bits` bits
/// (two modulus_bits/2-bit primes, e = 65537). modulus_bits must be a
/// multiple of 16 and >= 128.
RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits = 512);

/// PKCS#1 v1.5 type-2 encryption. Plaintext must be <= modulus_bytes - 11.
/// Output is exactly modulus_bytes long (64 bytes for RSA-512).
util::Bytes rsa_encrypt(const RsaPublicKey& pub, util::ByteView plaintext,
                        util::Rng& rng);

/// Returns std::nullopt on malformed padding or out-of-range ciphertext.
std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       util::ByteView ciphertext);

/// PKCS#1 v1.5 type-1 signature over SHA-256(message).
/// Output is exactly modulus_bytes long (64 bytes for RSA-512).
util::Bytes rsa_sign(const RsaPrivateKey& priv, util::ByteView message);

bool rsa_verify(const RsaPublicKey& pub, util::ByteView message,
                util::ByteView signature);

/// The OP_CHECKRSA512PAIR predicate (paper §4.4: "implemented using the
/// VerifyPubKey method of RSA_PrivKey"): true iff `priv` is the private key
/// matching `pub`. Checked algebraically by a round-trip on fixed probe
/// values, plus modulus equality.
bool rsa_pair_matches(const RsaPublicKey& pub, const RsaPrivateKey& priv);

/// Recover the CRT parameters of `key` from (n, e, d) by factoring n —
/// the standard probabilistic reduction (square roots of 1 along the
/// e*d - 1 = 2^s * t chain), run over a fixed deterministic base list.
/// Returns true and fills p/q/dp/dq/qinv on success; leaves the key
/// untouched (and returns false) when the key material is inconsistent.
/// Used to re-arm CRT on deserialized keys (on-chain reveals, gateway
/// decrypt keys), which carry only n‖e‖d on the wire.
bool rsa_crt_recover(RsaPrivateKey& key);

/// RSA-CRT kill switch (default on; BCWAN_RSA_BACKEND=reference pins it
/// off for a whole run, mirroring BCWAN_SHA256_BACKEND). While off, every
/// private-key operation uses the full-width exponent — the reference path
/// differential tests and CI's forced-reference pass run against.
bool rsa_crt_enabled() noexcept;
void set_rsa_crt_enabled(bool enabled) noexcept;

/// Count of CRT results that failed the public-exponent re-check and fell
/// back to the full-width exponent (a miscomputation can therefore never
/// escape into a signature, plaintext or pairing verdict). Process-wide,
/// monotonic; exercised by the fault-injection tests.
std::uint64_t rsa_crt_fault_count() noexcept;

}  // namespace bcwan::crypto

// RSA over bignum::BigUint — keygen, PKCS#1-v1.5-style encryption and
// signatures, and the public/private pair check behind OP_CHECKRSA512PAIR.
//
// BcWAN (§4.4/§5.1) uses RSA-512 twice per uplink:
//   * the gateway mints an *ephemeral* (ePk, eSk) pair per message; the node
//     encrypts its AES blob under ePk, and revealing eSk on-chain is what
//     the gateway gets paid for;
//   * the node signs (Em || ePk) with its provisioned secret Ska so the
//     recipient can authenticate the uplink.
// The paper chooses 512-bit moduli to keep LoRa payloads at 128 bytes and
// accepts the reduced security (§6); key size is a parameter here so the
// ABL-RSA ablation can sweep 512/1024/2048.
#pragma once

#include <cstddef>
#include <optional>

#include "bignum/biguint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bcwan::crypto {

struct RsaPublicKey {
  bignum::BigUint n;
  bignum::BigUint e;

  /// Modulus size in bytes (64 for RSA-512).
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  util::Bytes serialize() const;
  static std::optional<RsaPublicKey> deserialize(util::ByteView data);

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
  bignum::BigUint n;
  bignum::BigUint e;
  bignum::BigUint d;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
  RsaPublicKey public_key() const { return {n, e}; }

  util::Bytes serialize() const;
  static std::optional<RsaPrivateKey> deserialize(util::ByteView data);

  friend bool operator==(const RsaPrivateKey&, const RsaPrivateKey&) = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA key pair with a modulus of exactly `modulus_bits` bits
/// (two modulus_bits/2-bit primes, e = 65537). modulus_bits must be a
/// multiple of 16 and >= 128.
RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits = 512);

/// PKCS#1 v1.5 type-2 encryption. Plaintext must be <= modulus_bytes - 11.
/// Output is exactly modulus_bytes long (64 bytes for RSA-512).
util::Bytes rsa_encrypt(const RsaPublicKey& pub, util::ByteView plaintext,
                        util::Rng& rng);

/// Returns std::nullopt on malformed padding or out-of-range ciphertext.
std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       util::ByteView ciphertext);

/// PKCS#1 v1.5 type-1 signature over SHA-256(message).
/// Output is exactly modulus_bytes long (64 bytes for RSA-512).
util::Bytes rsa_sign(const RsaPrivateKey& priv, util::ByteView message);

bool rsa_verify(const RsaPublicKey& pub, util::ByteView message,
                util::ByteView signature);

/// The OP_CHECKRSA512PAIR predicate (paper §4.4: "implemented using the
/// VerifyPubKey method of RSA_PrivKey"): true iff `priv` is the private key
/// matching `pub`. Checked algebraically by a round-trip on fixed probe
/// values, plus modulus equality.
bool rsa_pair_matches(const RsaPublicKey& pub, const RsaPrivateKey& priv);

}  // namespace bcwan::crypto

#include "crypto/ripemd160.hpp"

#include <bit>
#include <cstring>

#include "crypto/sha256.hpp"

namespace bcwan::crypto {

namespace {

// Message word selection, left and right lines (5 rounds x 16 steps).
constexpr std::uint8_t kRL[80] = {
    0, 1, 2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,  //
    7, 4, 13, 1,  10, 6,  15, 3,  12, 0,  9,  5,  2,  14, 11, 8,   //
    3, 10, 14, 4, 9,  15, 8,  1,  2,  7,  0,  6,  13, 11, 5,  12,  //
    1, 9, 11, 10, 0,  8,  12, 4,  13, 3,  7,  15, 14, 5,  6,  2,   //
    4, 0, 5,  9,  7,  12, 2,  10, 14, 1,  3,  8,  11, 6,  15, 13};

constexpr std::uint8_t kRR[80] = {
    5,  14, 7,  0, 9, 2,  11, 4,  13, 6,  15, 8,  1,  10, 3,  12,  //
    6,  11, 3,  7, 0, 13, 5,  10, 14, 15, 8,  12, 4,  9,  1,  2,   //
    15, 5,  1,  3, 7, 14, 6,  9,  11, 8,  12, 2,  10, 0,  4,  13,  //
    8,  6,  4,  1, 3, 11, 15, 0,  5,  12, 2,  13, 9,  7,  10, 14,  //
    12, 15, 10, 4, 1, 5,  8,  7,  6,  2,  13, 14, 0,  3,  9,  11};

// Per-step left rotations, left and right lines.
constexpr std::uint8_t kSL[80] = {
    11, 14, 15, 12, 5,  8,  7,  9,  11, 13, 14, 15, 6,  7,  9,  8,   //
    7,  6,  8,  13, 11, 9,  7,  15, 7,  12, 15, 9,  11, 7,  13, 12,  //
    11, 13, 6,  7,  14, 9,  13, 15, 14, 8,  13, 6,  5,  12, 7,  5,   //
    11, 12, 14, 15, 14, 15, 9,  8,  9,  14, 5,  6,  8,  6,  5,  12,  //
    9,  15, 5,  11, 6,  8,  13, 12, 5,  12, 13, 14, 11, 8,  5,  6};

constexpr std::uint8_t kSR[80] = {
    8,  9,  9,  11, 13, 15, 15, 5,  7,  7,  8,  11, 14, 14, 12, 6,   //
    9,  13, 15, 7,  12, 8,  9,  11, 7,  7,  12, 7,  6,  15, 13, 11,  //
    9,  7,  15, 11, 8,  6,  6,  14, 12, 13, 5,  14, 13, 13, 7,  5,   //
    15, 5,  8,  11, 14, 14, 6,  14, 6,  9,  12, 9,  12, 5,  15, 8,   //
    8,  5,  12, 9,  12, 5,  14, 6,  8,  13, 6,  5,  15, 13, 11, 11};

constexpr std::uint32_t kKL[5] = {0x00000000, 0x5a827999, 0x6ed9eba1,
                                  0x8f1bbcdc, 0xa953fd4e};
constexpr std::uint32_t kKR[5] = {0x50a28be6, 0x5c4dd124, 0x6d703ef3,
                                  0x7a6d76e9, 0x00000000};

std::uint32_t f(int round, std::uint32_t x, std::uint32_t y,
                std::uint32_t z) noexcept {
  switch (round) {
    case 0: return x ^ y ^ z;
    case 1: return (x & y) | (~x & z);
    case 2: return (x | ~y) ^ z;
    case 3: return (x & z) | (y & ~z);
    default: return x ^ (y | ~z);
  }
}

struct State {
  std::uint32_t h[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476,
                        0xc3d2e1f0};
};

void compress(State& st, const std::uint8_t* block) noexcept {
  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = static_cast<std::uint32_t>(block[4 * i]) |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 3]) << 24;
  }

  std::uint32_t al = st.h[0], bl = st.h[1], cl = st.h[2], dl = st.h[3],
                el = st.h[4];
  std::uint32_t ar = st.h[0], br = st.h[1], cr = st.h[2], dr = st.h[3],
                er = st.h[4];

  for (int j = 0; j < 80; ++j) {
    const int round = j / 16;
    std::uint32_t t = std::rotl(
        al + f(round, bl, cl, dl) + x[kRL[j]] + kKL[round], kSL[j]);
    t += el;
    al = el;
    el = dl;
    dl = std::rotl(cl, 10);
    cl = bl;
    bl = t;

    t = std::rotl(ar + f(4 - round, br, cr, dr) + x[kRR[j]] + kKR[round],
                  kSR[j]);
    t += er;
    ar = er;
    er = dr;
    dr = std::rotl(cr, 10);
    cr = br;
    br = t;
  }

  const std::uint32_t t = st.h[1] + cl + dr;
  st.h[1] = st.h[2] + dl + er;
  st.h[2] = st.h[3] + el + ar;
  st.h[3] = st.h[4] + al + br;
  st.h[4] = st.h[0] + bl + cr;
  st.h[0] = t;
}

}  // namespace

Digest160 ripemd160(util::ByteView data) noexcept {
  State st;
  std::size_t offset = 0;
  while (offset + 64 <= data.size()) {
    compress(st, data.data() + offset);
    offset += 64;
  }

  // Padding: 0x80, zeros, then 64-bit little-endian bit length.
  std::uint8_t tail[128] = {0};
  const std::size_t rem = data.size() - offset;
  if (rem != 0) std::memcpy(tail, data.data() + offset, rem);
  tail[rem] = 0x80;
  const std::size_t tail_blocks = rem + 9 <= 64 ? 1 : 2;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i)
    tail[tail_blocks * 64 - 8 + i] =
        static_cast<std::uint8_t>(bit_len >> (8 * i));
  compress(st, tail);
  if (tail_blocks == 2) compress(st, tail + 64);

  Digest160 out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(st.h[i]);
    out[4 * i + 1] = static_cast<std::uint8_t>(st.h[i] >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(st.h[i] >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(st.h[i] >> 24);
  }
  return out;
}

Digest160 hash160(util::ByteView data) noexcept {
  const Digest256 inner = sha256(data);
  return ripemd160(util::ByteView(inner.data(), inner.size()));
}

util::Bytes digest_bytes(const Digest160& d) {
  return util::Bytes(d.begin(), d.end());
}

}  // namespace bcwan::crypto

// HMAC-SHA256 (RFC 2104), used for key derivation in node provisioning and
// for the deterministic ECDSA nonce construction.
#pragma once

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace bcwan::crypto {

Digest256 hmac_sha256(util::ByteView key, util::ByteView message) noexcept;

}  // namespace bcwan::crypto

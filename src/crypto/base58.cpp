#include "crypto/base58.hpp"

#include <algorithm>
#include <array>

#include "crypto/sha256.hpp"

namespace bcwan::crypto {

namespace {

constexpr char kAlphabet[] =
    "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

std::array<std::int8_t, 128> build_reverse() {
  std::array<std::int8_t, 128> rev;
  rev.fill(-1);
  for (int i = 0; i < 58; ++i)
    rev[static_cast<std::size_t>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return rev;
}

const std::array<std::int8_t, 128> kReverse = build_reverse();

}  // namespace

std::string base58_encode(util::ByteView data) {
  // Count leading zero bytes (each encodes as '1').
  std::size_t zeros = 0;
  while (zeros < data.size() && data[zeros] == 0) ++zeros;

  // Base conversion on a mutable copy, digit by digit.
  std::vector<std::uint8_t> digits;  // base58, little-endian
  util::Bytes num(data.begin() + static_cast<std::ptrdiff_t>(zeros),
                  data.end());
  while (!num.empty()) {
    std::uint32_t rem = 0;
    util::Bytes quotient;
    quotient.reserve(num.size());
    for (std::uint8_t byte : num) {
      const std::uint32_t acc = (rem << 8) | byte;
      const std::uint8_t q = static_cast<std::uint8_t>(acc / 58);
      rem = acc % 58;
      if (!quotient.empty() || q != 0) quotient.push_back(q);
    }
    digits.push_back(static_cast<std::uint8_t>(rem));
    num = std::move(quotient);
  }

  std::string out(zeros, '1');
  for (auto it = digits.rbegin(); it != digits.rend(); ++it)
    out.push_back(kAlphabet[*it]);
  return out;
}

std::optional<util::Bytes> base58_decode(std::string_view text) {
  std::size_t zeros = 0;
  while (zeros < text.size() && text[zeros] == '1') ++zeros;

  util::Bytes num;  // base256, big-endian
  for (std::size_t i = zeros; i < text.size(); ++i) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (c >= 128 || kReverse[c] < 0) return std::nullopt;
    // num = num * 58 + digit
    std::uint32_t carry = static_cast<std::uint32_t>(kReverse[c]);
    for (std::size_t j = num.size(); j-- > 0;) {
      const std::uint32_t acc = static_cast<std::uint32_t>(num[j]) * 58 + carry;
      num[j] = static_cast<std::uint8_t>(acc);
      carry = acc >> 8;
    }
    while (carry != 0) {
      num.insert(num.begin(), static_cast<std::uint8_t>(carry));
      carry >>= 8;
    }
  }

  util::Bytes out(zeros, 0);
  out.insert(out.end(), num.begin(), num.end());
  return out;
}

std::string base58check_encode(std::uint8_t version, util::ByteView payload) {
  util::Bytes data;
  data.reserve(payload.size() + 5);
  data.push_back(version);
  data.insert(data.end(), payload.begin(), payload.end());
  const Digest256 check = sha256d(data);
  data.insert(data.end(), check.begin(), check.begin() + 4);
  return base58_encode(data);
}

std::optional<Base58CheckDecoded> base58check_decode(std::string_view text) {
  const auto raw = base58_decode(text);
  if (!raw || raw->size() < 5) return std::nullopt;
  const util::ByteView body(raw->data(), raw->size() - 4);
  const Digest256 check = sha256d(body);
  if (!std::equal(check.begin(), check.begin() + 4, raw->end() - 4))
    return std::nullopt;
  return Base58CheckDecoded{
      (*raw)[0], util::Bytes(raw->begin() + 1, raw->end() - 4)};
}

}  // namespace bcwan::crypto

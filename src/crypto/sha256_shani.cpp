// SHA-NI (x86 SHA extensions) single-stream SHA-256 compressor.
//
// Structure follows the canonical Intel reference flow: the eight state
// words live in two XMM registers (ABEF / CDGH), each _mm_sha256rnds2_epu32
// executes two rounds, and the message schedule is extended in-register with
// _mm_sha256msg1/msg2 plus one PALIGNR for the W[t-7] term. Round constants
// are loaded straight from the little-endian kK table — four consecutive
// uint32s are exactly the 128-bit operand the round instruction wants.
//
// This translation unit is compiled with -msha -msse4.1; callers must gate
// on shani_available() (sha256.cpp's dispatch does).
#include "crypto/sha256_impl.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace bcwan::crypto::detail {

namespace {

alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

bool shani_available() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
}

__attribute__((target("sha,sse4.1"))) void transform_shani(
    std::uint32_t* state, const std::uint8_t* blocks, std::size_t nblocks) {
  // Big-endian 32-bit loads via byte shuffle.
  const __m128i kBswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Pack {a,b,c,d,e,f,g,h} into ABEF / CDGH register order.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i cdgh = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);    // CDAB
  cdgh = _mm_shuffle_epi32(cdgh, 0x1B);  // EFGH
  __m128i abef = _mm_alignr_epi8(tmp, cdgh, 8);
  cdgh = _mm_blend_epi16(cdgh, tmp, 0xF0);

  for (std::size_t blk = 0; blk < nblocks; ++blk, blocks += 64) {
    const __m128i abef_save = abef;
    const __m128i cdgh_save = cdgh;

    // m[g & 3] holds W[4g .. 4g+3] when group g's rounds execute.
    __m128i m[4];
    for (int i = 0; i < 4; ++i) {
      m[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16 * i)),
          kBswap);
    }

    for (int g = 0; g < 16; ++g) {
      __m128i msg = _mm_add_epi32(
          m[g & 3],
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
      if (g >= 3 && g < 15) {
        // Finish W[4(g+1) .. 4(g+1)+3]: add the W[t-7] window, then msg2
        // supplies the sigma1(W[t-2]) terms.
        const __m128i w7 = _mm_alignr_epi8(m[g & 3], m[(g + 3) & 3], 4);
        m[(g + 1) & 3] = _mm_add_epi32(m[(g + 1) & 3], w7);
        m[(g + 1) & 3] = _mm_sha256msg2_epu32(m[(g + 1) & 3], m[g & 3]);
      }
      msg = _mm_shuffle_epi32(msg, 0x0E);
      abef = _mm_sha256rnds2_epu32(abef, cdgh, msg);
      if (g >= 1 && g < 13) {
        // Start the sigma0 part of the group that msg2 will finish later.
        m[(g + 3) & 3] = _mm_sha256msg1_epu32(m[(g + 3) & 3], m[g & 3]);
      }
    }

    abef = _mm_add_epi32(abef, abef_save);
    cdgh = _mm_add_epi32(cdgh, cdgh_save);
  }

  // Unpack ABEF / CDGH back to {a..h}.
  tmp = _mm_shuffle_epi32(abef, 0x1B);    // FEBA
  cdgh = _mm_shuffle_epi32(cdgh, 0xB1);   // DCHG
  abef = _mm_blend_epi16(tmp, cdgh, 0xF0);  // DCBA
  cdgh = _mm_alignr_epi8(cdgh, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abef);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), cdgh);
}

}  // namespace bcwan::crypto::detail

#endif  // x86

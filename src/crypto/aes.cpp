#include "crypto/aes.hpp"

#include <cstring>

namespace bcwan::crypto {

namespace {

// GF(2^8) multiply with the AES reduction polynomial x^8+x^4+x^3+x+1.
constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

// The S-box is generated rather than transcribed: multiplicative inverse in
// GF(2^8) followed by the affine transform. This removes any chance of a
// typo in a 256-entry table; FIPS-197 vectors in the test suite confirm it.
struct Tables {
  std::uint8_t sbox[256];
  std::uint8_t inv_sbox[256];

  constexpr Tables() : sbox{}, inv_sbox{} {
    // Build inverses by brute force (constexpr, done once at compile time).
    std::uint8_t inv[256] = {};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (gmul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)) ==
            1) {
          inv[a] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t x = inv[i];
      const auto rotl8 = [](std::uint8_t v, int s) {
        return static_cast<std::uint8_t>((v << s) | (v >> (8 - s)));
      };
      const std::uint8_t s = static_cast<std::uint8_t>(
          x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63);
      sbox[i] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }
  }
};

constexpr Tables kTables{};

constexpr std::uint8_t kRcon[15] = {0x00, 0x01, 0x02, 0x04, 0x08,
                                    0x10, 0x20, 0x40, 0x80, 0x1b,
                                    0x36, 0x6c, 0xd8, 0xab, 0x4d};

std::uint32_t sub_word(std::uint32_t w) noexcept {
  return static_cast<std::uint32_t>(kTables.sbox[w >> 24]) << 24 |
         static_cast<std::uint32_t>(kTables.sbox[(w >> 16) & 0xff]) << 16 |
         static_cast<std::uint32_t>(kTables.sbox[(w >> 8) & 0xff]) << 8 |
         static_cast<std::uint32_t>(kTables.sbox[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) noexcept {
  return (w << 8) | (w >> 24);
}

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) noexcept {
  for (int c = 0; c < 4; ++c) {
    state[4 * c] ^= static_cast<std::uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<std::uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<std::uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<std::uint8_t>(rk[c]);
  }
}

void sub_bytes(std::uint8_t state[16]) noexcept {
  for (int i = 0; i < 16; ++i) state[i] = kTables.sbox[state[i]];
}

void inv_sub_bytes(std::uint8_t state[16]) noexcept {
  for (int i = 0; i < 16; ++i) state[i] = kTables.inv_sbox[state[i]];
}

// State layout: state[4*c + r] = byte at row r, column c (FIPS-197 order of
// the input stream).
void shift_rows(std::uint8_t state[16]) noexcept {
  std::uint8_t tmp[16];
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) tmp[4 * c + r] = state[4 * ((c + r) % 4) + r];
  std::memcpy(state, tmp, 16);
}

void inv_shift_rows(std::uint8_t state[16]) noexcept {
  std::uint8_t tmp[16];
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) tmp[4 * ((c + r) % 4) + r] = state[4 * c + r];
  std::memcpy(state, tmp, 16);
}

void mix_columns(std::uint8_t state[16]) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
  }
}

void inv_mix_columns(std::uint8_t state[16]) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
  }
}

}  // namespace

Aes256::Aes256(const AesKey256& key) noexcept {
  constexpr int nk = 8;   // 256-bit key = 8 words
  constexpr int nr = 14;  // rounds
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = static_cast<std::uint32_t>(key[4 * i]) << 24 |
                     static_cast<std::uint32_t>(key[4 * i + 1]) << 16 |
                     static_cast<std::uint32_t>(key[4 * i + 2]) << 8 |
                     static_cast<std::uint32_t>(key[4 * i + 3]);
  }
  for (int i = nk; i < 4 * (nr + 1); ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^
             (static_cast<std::uint32_t>(kRcon[i / nk]) << 24);
    } else if (i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

AesBlock Aes256::encrypt_block(const AesBlock& in) const noexcept {
  constexpr int nr = 14;
  std::uint8_t state[16];
  std::memcpy(state, in.data(), 16);
  add_round_key(state, round_keys_.data());
  for (int round = 1; round < nr; ++round) {
    sub_bytes(state);
    shift_rows(state);
    mix_columns(state);
    add_round_key(state, round_keys_.data() + 4 * round);
  }
  sub_bytes(state);
  shift_rows(state);
  add_round_key(state, round_keys_.data() + 4 * nr);
  AesBlock out;
  std::memcpy(out.data(), state, 16);
  return out;
}

AesBlock Aes256::decrypt_block(const AesBlock& in) const noexcept {
  constexpr int nr = 14;
  std::uint8_t state[16];
  std::memcpy(state, in.data(), 16);
  add_round_key(state, round_keys_.data() + 4 * nr);
  for (int round = nr - 1; round > 0; --round) {
    inv_shift_rows(state);
    inv_sub_bytes(state);
    add_round_key(state, round_keys_.data() + 4 * round);
    inv_mix_columns(state);
  }
  inv_shift_rows(state);
  inv_sub_bytes(state);
  add_round_key(state, round_keys_.data());
  AesBlock out;
  std::memcpy(out.data(), state, 16);
  return out;
}

util::Bytes aes256_cbc_encrypt(const AesKey256& key, const AesBlock& iv,
                               util::ByteView plaintext) {
  const Aes256 cipher(key);
  const std::size_t pad =
      kAesBlockSize - plaintext.size() % kAesBlockSize;  // 1..16
  util::Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  util::Bytes out;
  out.reserve(padded.size());
  AesBlock prev = iv;
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    AesBlock block;
    for (std::size_t i = 0; i < kAesBlockSize; ++i)
      block[i] = padded[off + i] ^ prev[i];
    prev = cipher.encrypt_block(block);
    out.insert(out.end(), prev.begin(), prev.end());
  }
  return out;
}

std::optional<util::Bytes> aes256_cbc_decrypt(const AesKey256& key,
                                              const AesBlock& iv,
                                              util::ByteView ciphertext) {
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0)
    return std::nullopt;
  const Aes256 cipher(key);
  util::Bytes out;
  out.reserve(ciphertext.size());
  AesBlock prev = iv;
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    AesBlock block;
    std::memcpy(block.data(), ciphertext.data() + off, kAesBlockSize);
    const AesBlock plain = cipher.decrypt_block(block);
    for (std::size_t i = 0; i < kAesBlockSize; ++i)
      out.push_back(plain[i] ^ prev[i]);
    prev = block;
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) return std::nullopt;
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return std::nullopt;
  }
  out.resize(out.size() - pad);
  return out;
}

}  // namespace bcwan::crypto

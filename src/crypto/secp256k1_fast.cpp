// Cold-path secp256k1 fast scalar multiplication.
//
// The reference ladder in ecdsa.cpp routes every field multiply through
// BigUint::mod_mul: a thread-local context lookup, two heap-allocated limb
// conversions and *two* CIOS passes (to-Montgomery, then multiply) per
// multiplication. At ~3800 field multiplies per scalar mul that is the
// entire cold-verification budget. This TU replaces the inner loop with a
// fixed-width field core:
//
//   * field elements are 8x32-bit limb arrays kept in the Montgomery domain
//     end to end — one CIOS pass per multiply, stack scratch, no allocation;
//   * point arithmetic mirrors the reference Jacobian formulas exactly
//     (same dbl-2007-b / add structure, so a formula bug diverges loudly in
//     the differential tests rather than subtly in a corner);
//   * scalars are recoded in windowed NAF: ~n/(w+1) additions instead of
//     n/2, and negative digits are free because affine negation is y -> p-y;
//   * the generator's odd multiples (1G, 3G, ..., 63G, 7-bit wNAF) are
//     precomputed once per process in affine form and shared by all threads
//     — initialization is a C++ magic static (race-free, TSan-clean), the
//     "built once, shared" table the batched check queue amortizes;
//   * ec_shamir interleaves u1*G + u2*Q on one doubling chain (Shamir's
//     trick) with mixed additions, Jacobian throughout, one final inversion.
//
// Everything here is differentially tested against Secp256k1::mul (the
// untouched reference oracle) including the edge scalars 0, 1, n-1, n and
// point-at-infinity inputs; BCWAN_ECDSA_BACKEND=reference forces the whole
// suite back onto the oracle.
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "bignum/montgomery.hpp"
#include "crypto/ecdsa.hpp"

namespace bcwan::crypto {

using bignum::BigUint;

namespace {

// --- Fixed-width field arithmetic mod p, Montgomery domain -----------------

constexpr std::size_t kLimbs = 8;

// p = 2^256 - 2^32 - 977, little-endian 32-bit limbs.
constexpr std::uint32_t kP[kLimbs] = {0xfffffc2f, 0xfffffffe, 0xffffffff,
                                      0xffffffff, 0xffffffff, 0xffffffff,
                                      0xffffffff, 0xffffffff};

// -p[0]^-1 mod 2^32 (Newton iteration result, checked in ctx init).
constexpr std::uint32_t kN0Inv = 0xd2253531;

struct Fe {
  std::uint32_t v[kLimbs];
};

bool fe_eq(const Fe& a, const Fe& b) {
  return std::memcmp(a.v, b.v, sizeof a.v) == 0;
}

bool fe_is_zero(const Fe& a) {
  std::uint32_t acc = 0;
  for (std::uint32_t limb : a.v) acc |= limb;
  return acc == 0;
}

/// out = a * b * R^-1 mod p — single CIOS pass, fixed 8 limbs, stack
/// scratch. Same algorithm as MontgomeryCtx::mont_mul, specialized so the
/// compiler can fully unroll against the constant modulus.
void fe_mul(const Fe& a, const Fe& b, Fe& out) {
  std::uint32_t t[kLimbs + 2] = {0};
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const std::uint64_t ai = a.v[i];
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < kLimbs; ++j) {
      const std::uint64_t cur = t[j] + ai * b.v[j] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[kLimbs] + carry;
    t[kLimbs] = static_cast<std::uint32_t>(cur);
    t[kLimbs + 1] = static_cast<std::uint32_t>(cur >> 32);

    const std::uint32_t mi = t[0] * kN0Inv;
    cur = t[0] + static_cast<std::uint64_t>(mi) * kP[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < kLimbs; ++j) {
      cur = t[j] + static_cast<std::uint64_t>(mi) * kP[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[kLimbs] + carry;
    t[kLimbs - 1] = static_cast<std::uint32_t>(cur);
    t[kLimbs] = t[kLimbs + 1] + static_cast<std::uint32_t>(cur >> 32);
  }

  bool ge = t[kLimbs] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = kLimbs; i-- > 0;) {
      if (t[i] != kP[i]) {
        ge = t[i] > kP[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      std::int64_t diff = static_cast<std::int64_t>(t[i]) - kP[i] - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(1) << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      out.v[i] = static_cast<std::uint32_t>(diff);
    }
  } else {
    for (std::size_t i = 0; i < kLimbs; ++i) out.v[i] = t[i];
  }
}

void fe_sqr(const Fe& a, Fe& out) { fe_mul(a, a, out); }

void fe_add(const Fe& a, const Fe& b, Fe& out) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    carry += static_cast<std::uint64_t>(a.v[i]) + b.v[i];
    out.v[i] = static_cast<std::uint32_t>(carry);
    carry >>= 32;
  }
  bool ge = carry != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = kLimbs; i-- > 0;) {
      if (out.v[i] != kP[i]) {
        ge = out.v[i] > kP[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      std::int64_t diff = static_cast<std::int64_t>(out.v[i]) - kP[i] - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(1) << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      out.v[i] = static_cast<std::uint32_t>(diff);
    }
  }
}

void fe_sub(const Fe& a, const Fe& b, Fe& out) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.v[i]) - b.v[i] - borrow;
    if (diff < 0) {
      diff += static_cast<std::int64_t>(1) << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.v[i] = static_cast<std::uint32_t>(diff);
  }
  if (borrow != 0) {
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      carry += static_cast<std::uint64_t>(out.v[i]) + kP[i];
      out.v[i] = static_cast<std::uint32_t>(carry);
      carry >>= 32;
    }
  }
}

void fe_dbl(const Fe& a, Fe& out) { fe_add(a, a, out); }

/// Additive negation commutes with the Montgomery map, so p - a negates in
/// the domain too. neg(0) stays 0.
void fe_neg(const Fe& a, Fe& out) {
  if (fe_is_zero(a)) {
    out = a;
    return;
  }
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    std::int64_t diff = static_cast<std::int64_t>(kP[i]) - a.v[i] - borrow;
    if (diff < 0) {
      diff += static_cast<std::int64_t>(1) << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.v[i] = static_cast<std::uint32_t>(diff);
  }
}

// --- Point types -----------------------------------------------------------

const Fe& fe_one();  // R mod p (1 in the Montgomery domain), from ctx()

/// Jacobian projective point over Fe: x = X/Z^2, y = Y/Z^3.
struct JPoint {
  Fe x, y, z;
  bool infinity = true;
};

/// Affine table entry (never infinity), Montgomery domain.
struct APoint {
  Fe x, y;
};

// Mirrors ecdsa.cpp's dbl-2007-b-style doubling for a = 0 curves.
void jp_double(const JPoint& a, JPoint& out) {
  if (a.infinity || fe_is_zero(a.y)) {
    out.infinity = true;
    return;
  }
  Fe y2, xy2, s, xx, m, t, x3, y3, z3;
  fe_sqr(a.y, y2);
  fe_mul(a.x, y2, xy2);
  fe_dbl(xy2, s);
  fe_dbl(s, s);  // s = 4*X*Y^2
  fe_sqr(a.x, xx);
  fe_dbl(xx, m);
  fe_add(m, xx, m);  // m = 3*X^2
  fe_sqr(m, x3);
  fe_dbl(s, t);
  fe_sub(x3, t, x3);  // x3 = m^2 - 2s
  fe_sqr(y2, t);
  fe_dbl(t, t);
  fe_dbl(t, t);
  fe_dbl(t, t);  // t = 8*Y^4
  fe_sub(s, x3, y3);
  fe_mul(m, y3, y3);
  fe_sub(y3, t, y3);  // y3 = m*(s - x3) - 8*Y^4
  fe_dbl(a.y, z3);
  fe_mul(z3, a.z, z3);
  out.x = x3;
  out.y = y3;
  out.z = z3;
  out.infinity = false;
}

// General Jacobian + Jacobian addition, same u/s/h/r structure as the
// reference jac_add so the doubling/cancellation corners line up.
void jp_add(const JPoint& a, const JPoint& b, JPoint& out) {
  if (a.infinity) {
    out = b;
    return;
  }
  if (b.infinity) {
    out = a;
    return;
  }
  Fe z1z1, z2z2, u1, u2, s1, s2;
  fe_sqr(a.z, z1z1);
  fe_sqr(b.z, z2z2);
  fe_mul(a.x, z2z2, u1);
  fe_mul(b.x, z1z1, u2);
  fe_mul(a.y, z2z2, s1);
  fe_mul(s1, b.z, s1);
  fe_mul(b.y, z1z1, s2);
  fe_mul(s2, a.z, s2);
  if (fe_eq(u1, u2)) {
    if (!fe_eq(s1, s2)) {
      out.infinity = true;  // P + (-P)
      return;
    }
    jp_double(a, out);
    return;
  }
  Fe h, r, h2, h3, u1h2, x3, y3, z3, t;
  fe_sub(u2, u1, h);
  fe_sub(s2, s1, r);
  fe_sqr(h, h2);
  fe_mul(h2, h, h3);
  fe_mul(u1, h2, u1h2);
  fe_sqr(r, x3);
  fe_sub(x3, h3, x3);
  fe_dbl(u1h2, t);
  fe_sub(x3, t, x3);
  fe_sub(u1h2, x3, y3);
  fe_mul(r, y3, y3);
  fe_mul(s1, h3, t);
  fe_sub(y3, t, y3);
  fe_mul(h, a.z, z3);
  fe_mul(z3, b.z, z3);
  out.x = x3;
  out.y = y3;
  out.z = z3;
  out.infinity = false;
}

/// Mixed addition with an affine point (Z2 = 1): drops 4 multiplies from
/// the general add. Used for every fixed-base table hit.
void jp_add_affine(const JPoint& a, const APoint& b, JPoint& out) {
  if (a.infinity) {
    out.x = b.x;
    out.y = b.y;
    out.z = fe_one();
    out.infinity = false;
    return;
  }
  Fe z1z1, u2, s2;
  fe_sqr(a.z, z1z1);
  fe_mul(b.x, z1z1, u2);
  fe_mul(b.y, z1z1, s2);
  fe_mul(s2, a.z, s2);
  if (fe_eq(a.x, u2)) {
    if (!fe_eq(a.y, s2)) {
      out.infinity = true;
      return;
    }
    jp_double(a, out);
    return;
  }
  Fe h, r, h2, h3, u1h2, x3, y3, z3, t;
  fe_sub(u2, a.x, h);
  fe_sub(s2, a.y, r);
  fe_sqr(h, h2);
  fe_mul(h2, h, h3);
  fe_mul(a.x, h2, u1h2);
  fe_sqr(r, x3);
  fe_sub(x3, h3, x3);
  fe_dbl(u1h2, t);
  fe_sub(x3, t, x3);
  fe_sub(u1h2, x3, y3);
  fe_mul(r, y3, y3);
  fe_mul(a.y, h3, t);
  fe_sub(y3, t, y3);
  fe_mul(h, a.z, z3);
  out.x = x3;
  out.y = y3;
  out.z = z3;
  out.infinity = false;
}

// --- One-time shared context ----------------------------------------------

constexpr int kGenWindow = 7;  // fixed base: 32-entry shared table
constexpr int kPtWindow = 5;   // arbitrary point: 8 Jacobian odd multiples
constexpr std::size_t kGenTable = std::size_t{1} << (kGenWindow - 2);
constexpr std::size_t kPtTable = std::size_t{1} << (kPtWindow - 2);

struct FastCtx {
  Fe r2;                           // R^2 mod p: the to-Montgomery factor
  Fe one;                          // R mod p: 1 in the domain
  APoint gen_tab[kGenTable];       // (2i+1) * G, affine, Montgomery domain
  BigUint order;                   // n, for scalar reduction

  FastCtx();
};

Fe fe_from_biguint_raw(const BigUint& v) {
  // v < p; big-endian export, repack little-endian limbs.
  const util::Bytes be = v.to_bytes_be(32);
  Fe out;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const std::size_t o = 32 - 4 * (i + 1);
    out.v[i] = static_cast<std::uint32_t>(be[o]) << 24 |
               static_cast<std::uint32_t>(be[o + 1]) << 16 |
               static_cast<std::uint32_t>(be[o + 2]) << 8 |
               static_cast<std::uint32_t>(be[o + 3]);
  }
  return out;
}

BigUint fe_to_biguint_raw(const Fe& a) {
  util::Bytes be(32);
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const std::size_t o = 32 - 4 * (i + 1);
    be[o] = static_cast<std::uint8_t>(a.v[i] >> 24);
    be[o + 1] = static_cast<std::uint8_t>(a.v[i] >> 16);
    be[o + 2] = static_cast<std::uint8_t>(a.v[i] >> 8);
    be[o + 3] = static_cast<std::uint8_t>(a.v[i]);
  }
  return BigUint::from_bytes_be(be);
}

/// Race-free shared init: C++ magic static — the first caller builds the
/// tables, concurrent callers block until it is published. No torn reads,
/// no double init, verified under the TSan CI job by the checkqueue-driven
/// cold-connect test.
const FastCtx& ctx() {
  static const FastCtx c;
  return c;
}

const Fe& fe_one() { return ctx().one; }

Fe to_montgomery(const BigUint& v) {
  Fe raw = fe_from_biguint_raw(v % Secp256k1::p());
  Fe out;
  fe_mul(raw, ctx().r2, out);
  return out;
}

BigUint from_montgomery(const Fe& a) {
  Fe one_raw = {};
  one_raw.v[0] = 1;
  Fe std_form;
  fe_mul(a, one_raw, std_form);  // mont(a, 1) = a * R^-1
  return fe_to_biguint_raw(std_form);
}

FastCtx::FastCtx() {
  const BigUint& p = Secp256k1::p();
  // Sanity-check the hardcoded Montgomery constant against a from-scratch
  // computation; a typo here would corrupt every field multiply.
  std::uint32_t inv = 0xfffffc2f;
  for (int i = 0; i < 4; ++i) inv *= 2 - 0xfffffc2fu * inv;
  if (~inv + 1 != kN0Inv)
    throw std::logic_error("secp256k1_fast: n0inv constant mismatch");

  r2 = fe_from_biguint_raw((BigUint(1) << 512) % p);
  one = fe_from_biguint_raw((BigUint(1) << 256) % p);
  order = Secp256k1::n();

  // Generator odd multiples 1G, 3G, ..., 63G: accumulate in Jacobian, then
  // normalize each entry to affine (one-time cost, shared forever).
  const EcPoint& g = Secp256k1::g();
  JPoint gj;
  gj.x = [&] {
    Fe raw = fe_from_biguint_raw(g.x), out;
    fe_mul(raw, r2, out);
    return out;
  }();
  gj.y = [&] {
    Fe raw = fe_from_biguint_raw(g.y), out;
    fe_mul(raw, r2, out);
    return out;
  }();
  gj.z = one;
  gj.infinity = false;

  JPoint g2;
  jp_double(gj, g2);
  JPoint acc = gj;
  for (std::size_t i = 0; i < kGenTable; ++i) {
    // Normalize acc = (2i+1)G to affine: x = X/Z^2, y = Y/Z^3.
    const BigUint z = from_montgomery(acc.z);
    const auto z_inv = BigUint::mod_inv(z, p);
    if (!z_inv) throw std::logic_error("secp256k1_fast: table Z not invertible");
    Fe zi, zi2, zi3;
    {
      Fe raw = fe_from_biguint_raw(*z_inv);
      fe_mul(raw, r2, zi);
    }
    fe_sqr(zi, zi2);
    fe_mul(zi2, zi, zi3);
    fe_mul(acc.x, zi2, gen_tab[i].x);
    fe_mul(acc.y, zi3, gen_tab[i].y);
    if (i + 1 < kGenTable) {
      JPoint next;
      jp_add(acc, g2, next);
      acc = next;
    }
  }
}

// --- Scalar recoding -------------------------------------------------------

/// 9 little-endian limbs: wNAF's k += |d| step can carry one bit past 2^256.
struct Scalar {
  std::uint32_t v[9];

  bool is_zero() const {
    std::uint32_t acc = 0;
    for (std::uint32_t limb : v) acc |= limb;
    return acc == 0;
  }
  void shr1() {
    for (std::size_t i = 0; i + 1 < 9; ++i)
      v[i] = (v[i] >> 1) | (v[i + 1] << 31);
    v[8] >>= 1;
  }
  void sub_small(std::uint32_t d) {
    std::int64_t borrow = d;
    for (std::size_t i = 0; i < 9 && borrow != 0; ++i) {
      std::int64_t diff = static_cast<std::int64_t>(v[i]) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(1) << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      v[i] = static_cast<std::uint32_t>(diff);
    }
  }
  void add_small(std::uint32_t d) {
    std::uint64_t carry = d;
    for (std::size_t i = 0; i < 9 && carry != 0; ++i) {
      carry += v[i];
      v[i] = static_cast<std::uint32_t>(carry);
      carry >>= 32;
    }
  }
};

Scalar scalar_from(const BigUint& k) {
  const util::Bytes be = k.to_bytes_be(32);
  Scalar s{};
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t o = 32 - 4 * (i + 1);
    s.v[i] = static_cast<std::uint32_t>(be[o]) << 24 |
             static_cast<std::uint32_t>(be[o + 1]) << 16 |
             static_cast<std::uint32_t>(be[o + 2]) << 8 |
             static_cast<std::uint32_t>(be[o + 3]);
  }
  return s;
}

constexpr std::size_t kMaxDigits = 258;

/// Standard wNAF: every nonzero digit is odd, |d| < 2^(w-1), and at least
/// w-1 zero digits follow each nonzero one. Returns the digit count.
std::size_t wnaf(const BigUint& k, int w, std::int8_t* out) {
  Scalar s = scalar_from(k);
  const std::uint32_t mask = (1u << w) - 1;
  const std::int32_t half = 1 << (w - 1);
  std::size_t len = 0;
  while (!s.is_zero()) {
    std::int32_t d = 0;
    if (s.v[0] & 1u) {
      d = static_cast<std::int32_t>(s.v[0] & mask);
      if (d >= half) d -= 1 << w;
      if (d >= 0)
        s.sub_small(static_cast<std::uint32_t>(d));
      else
        s.add_small(static_cast<std::uint32_t>(-d));
    }
    out[len++] = static_cast<std::int8_t>(d);
    s.shr1();
  }
  return len;
}

// --- Conversions at the API boundary --------------------------------------

JPoint to_jpoint(const EcPoint& p) {
  JPoint out;
  if (p.infinity) return out;
  out.x = to_montgomery(p.x);
  out.y = to_montgomery(p.y);
  out.z = ctx().one;
  out.infinity = false;
  return out;
}

EcPoint from_jpoint(const JPoint& j) {
  if (j.infinity) return {BigUint{}, BigUint{}, true};
  const BigUint& p = Secp256k1::p();
  const BigUint z = from_montgomery(j.z);
  const auto z_inv = BigUint::mod_inv(z, p);
  if (!z_inv) throw std::logic_error("secp256k1_fast: non-invertible Z");
  Fe zi, zi2, zi3, x, y;
  {
    Fe raw = fe_from_biguint_raw(*z_inv);
    fe_mul(raw, ctx().r2, zi);
  }
  fe_sqr(zi, zi2);
  fe_mul(zi2, zi, zi3);
  fe_mul(j.x, zi2, x);
  fe_mul(j.y, zi3, y);
  return {from_montgomery(x), from_montgomery(y), false};
}

/// Odd multiples 1Q, 3Q, ..., (2^(w-1)-1)Q in Jacobian form (normalizing
/// them to affine would cost an inversion per call — not worth it for the
/// ~43 additions a 5-bit wNAF performs).
void build_pt_table(const JPoint& q, JPoint* tab) {
  tab[0] = q;
  JPoint q2;
  jp_double(q, q2);
  for (std::size_t i = 1; i < kPtTable; ++i) jp_add(tab[i - 1], q2, tab[i]);
}

void jp_neg(const JPoint& a, JPoint& out) {
  out = a;
  if (!a.infinity) fe_neg(a.y, out.y);
}

}  // namespace

// --- Public entry points ---------------------------------------------------

EcPoint ec_mul_wnaf(const BigUint& k, const EcPoint& point) {
  if (point.infinity) return {BigUint{}, BigUint{}, true};
  const BigUint kr = k % ctx().order;
  if (kr.is_zero()) return {BigUint{}, BigUint{}, true};

  std::int8_t digits[kMaxDigits];
  const std::size_t len = wnaf(kr, kPtWindow, digits);
  JPoint tab[kPtTable];
  build_pt_table(to_jpoint(point), tab);

  JPoint acc, tmp;
  for (std::size_t i = len; i-- > 0;) {
    jp_double(acc, tmp);
    acc = tmp;
    const std::int8_t d = digits[i];
    if (d > 0) {
      jp_add(acc, tab[(d - 1) / 2], tmp);
      acc = tmp;
    } else if (d < 0) {
      JPoint neg;
      jp_neg(tab[(-d - 1) / 2], neg);
      jp_add(acc, neg, tmp);
      acc = tmp;
    }
  }
  return from_jpoint(acc);
}

EcPoint ec_mul_gen_wnaf(const BigUint& k) {
  const FastCtx& c = ctx();
  const BigUint kr = k % c.order;
  if (kr.is_zero()) return {BigUint{}, BigUint{}, true};

  std::int8_t digits[kMaxDigits];
  const std::size_t len = wnaf(kr, kGenWindow, digits);

  JPoint acc, tmp;
  for (std::size_t i = len; i-- > 0;) {
    jp_double(acc, tmp);
    acc = tmp;
    const std::int8_t d = digits[i];
    if (d > 0) {
      jp_add_affine(acc, c.gen_tab[(d - 1) / 2], tmp);
      acc = tmp;
    } else if (d < 0) {
      APoint neg = c.gen_tab[(-d - 1) / 2];
      fe_neg(neg.y, neg.y);
      jp_add_affine(acc, neg, tmp);
      acc = tmp;
    }
  }
  return from_jpoint(acc);
}

EcPoint ec_shamir(const BigUint& u1, const BigUint& u2, const EcPoint& q) {
  const FastCtx& c = ctx();
  const BigUint r1 = u1 % c.order;
  const BigUint r2 = u2 % c.order;
  const bool use_q = !q.infinity && !r2.is_zero();
  if (r1.is_zero() && !use_q) return {BigUint{}, BigUint{}, true};

  std::int8_t dg[kMaxDigits] = {0};
  std::int8_t dq[kMaxDigits] = {0};
  const std::size_t lg = r1.is_zero() ? 0 : wnaf(r1, kGenWindow, dg);
  const std::size_t lq = use_q ? wnaf(r2, kPtWindow, dq) : 0;

  JPoint q_tab[kPtTable];
  if (use_q) build_pt_table(to_jpoint(q), q_tab);

  JPoint acc, tmp;
  const std::size_t len = lg > lq ? lg : lq;
  for (std::size_t i = len; i-- > 0;) {
    jp_double(acc, tmp);
    acc = tmp;
    if (i < lg && dg[i] != 0) {
      const std::int8_t d = dg[i];
      if (d > 0) {
        jp_add_affine(acc, c.gen_tab[(d - 1) / 2], tmp);
      } else {
        APoint neg = c.gen_tab[(-d - 1) / 2];
        fe_neg(neg.y, neg.y);
        jp_add_affine(acc, neg, tmp);
      }
      acc = tmp;
    }
    if (i < lq && dq[i] != 0) {
      const std::int8_t d = dq[i];
      if (d > 0) {
        jp_add(acc, q_tab[(d - 1) / 2], tmp);
      } else {
        JPoint neg;
        jp_neg(q_tab[(-d - 1) / 2], neg);
        jp_add(acc, neg, tmp);
      }
      acc = tmp;
    }
  }
  return from_jpoint(acc);
}

// --- Backend pin -----------------------------------------------------------

namespace {

// The process default: the BCWAN_ECDSA_BACKEND pin when set to a valid
// name (CI's forced-reference pass), the Shamir fast path otherwise.
// select_backend("auto") restores this, so a test that pins a specific
// backend and then resets cannot silently override an environment pin for
// the rest of the suite.
EcdsaBackend default_backend() {
  static const EcdsaBackend def = [] {
    if (const char* env = std::getenv("BCWAN_ECDSA_BACKEND")) {
      const std::string_view name(env);
      if (name == "reference") return EcdsaBackend::kReference;
      if (name == "wnaf") return EcdsaBackend::kWnaf;
      if (name == "shamir") return EcdsaBackend::kShamir;
    }
    return EcdsaBackend::kShamir;
  }();
  return def;
}

std::atomic<EcdsaBackend>& backend_slot() {
  static std::atomic<EcdsaBackend> slot{default_backend()};
  return slot;
}

}  // namespace

EcdsaBackend ecdsa_backend() noexcept {
  return backend_slot().load(std::memory_order_relaxed);
}

bool ecdsa_select_backend(std::string_view name) noexcept {
  EcdsaBackend b;
  if (name == "reference") {
    b = EcdsaBackend::kReference;
  } else if (name == "wnaf") {
    b = EcdsaBackend::kWnaf;
  } else if (name == "shamir") {
    b = EcdsaBackend::kShamir;
  } else if (name == "auto") {
    b = default_backend();
  } else {
    return false;
  }
  backend_slot().store(b, std::memory_order_relaxed);
  return true;
}

const char* ecdsa_backend_name() noexcept {
  switch (ecdsa_backend()) {
    case EcdsaBackend::kReference:
      return "reference";
    case EcdsaBackend::kWnaf:
      return "wnaf";
    case EcdsaBackend::kShamir:
      return "shamir";
  }
  return "unknown";
}

EcPoint ec_mul_gen(const BigUint& k) {
  if (ecdsa_backend() == EcdsaBackend::kReference)
    return Secp256k1::mul(k, Secp256k1::g());
  return ec_mul_gen_wnaf(k);
}

void ecdsa_warmup() {
  if (ecdsa_backend() != EcdsaBackend::kReference)
    (void)ctx();  // force the one-time generator tables
  // Prime this thread's Montgomery MRU for the scalar-field (and, on the
  // reference backend, field-prime) moduli so the batch's first signature
  // skips context construction.
  (void)bignum::MontgomeryCtx::cached(Secp256k1::n());
  (void)bignum::MontgomeryCtx::cached(Secp256k1::p());
}

}  // namespace bcwan::crypto

// SHA-256 (FIPS 180-4), implemented from the spec.
//
// Used for transaction/block ids (double SHA-256, Bitcoin convention),
// HASH160 addresses, HMAC and deterministic ECDSA nonces.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace bcwan::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  Sha256& update(util::ByteView data) noexcept;
  Digest256 finalize() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// One-shot SHA-256.
Digest256 sha256(util::ByteView data) noexcept;

/// Double SHA-256 (Bitcoin txid/block-hash convention).
Digest256 sha256d(util::ByteView data) noexcept;

/// Digest as an owning byte buffer (for serialization call sites).
util::Bytes digest_bytes(const Digest256& d);

}  // namespace bcwan::crypto

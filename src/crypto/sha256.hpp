// SHA-256 (FIPS 180-4), implemented from the spec, with runtime-dispatched
// backends.
//
// Used for transaction/block ids (double SHA-256, Bitcoin convention),
// HASH160 addresses, HMAC and deterministic ECDSA nonces. The block
// compressor is selected once at startup from what the CPU offers — a SHA-NI
// single-stream compressor and an AVX2 8-way batched sha256d64 sit next to
// the portable scalar reference — and every backend is bit-identical
// (differential-tested in tests/hashing_test.cpp). Set
// BCWAN_SHA256_BACKEND=scalar|shani|avx2 to pin a backend (CI runs the whole
// suite once per dispatch path), or call sha256_select_backend from tests.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace bcwan::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context. Copyable: a copy snapshots the midstate, so
/// a shared prefix can be absorbed once and resumed many times (the sighash
/// fast path in chain/transaction relies on this).
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  Sha256& update(util::ByteView data) noexcept;
  Digest256 finalize() noexcept;

  /// Bytes absorbed so far (midstate bookkeeping).
  std::uint64_t total_len() const noexcept { return total_len_; }

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// One-shot SHA-256.
Digest256 sha256(util::ByteView data) noexcept;

/// Double SHA-256 (Bitcoin txid/block-hash convention).
Digest256 sha256d(util::ByteView data) noexcept;

/// Batched double SHA-256 over `n` independent 64-byte inputs:
/// out[32*i..] = SHA256d(in[64*i..64*i+63]). This is the merkle inner-node
/// shape; the AVX2 backend runs eight inputs per pass.
void sha256d64(std::uint8_t* out, const std::uint8_t* in, std::size_t n);

/// Active backend name: "scalar", "shani" or "avx2".
const char* sha256_backend_name() noexcept;

/// Force a backend ("scalar", "shani", "avx2", or "auto" to re-detect).
/// Returns false (and leaves the dispatch unchanged) if the name is unknown
/// or the CPU lacks the feature. Not safe against concurrent hashing — call
/// at startup or from single-threaded tests/bench setup.
bool sha256_select_backend(std::string_view name) noexcept;

/// Digest as an owning byte buffer (for serialization call sites).
util::Bytes digest_bytes(const Digest256& d);

}  // namespace bcwan::crypto

#include "crypto/ecdsa.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "util/serial.hpp"

namespace bcwan::crypto {

using bignum::BigUint;

namespace {

const BigUint& field_p() {
  static const BigUint p = BigUint::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  return p;
}

const BigUint& order_n() {
  static const BigUint n = BigUint::from_hex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  return n;
}

const EcPoint& gen_g() {
  static const EcPoint g{
      BigUint::from_hex(
          "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
      BigUint::from_hex(
          "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
      false};
  return g;
}

// Jacobian projective point: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
struct Jacobian {
  BigUint x, y, z;
  bool infinity = true;
};

Jacobian to_jacobian(const EcPoint& p) {
  if (p.infinity) return {};
  return {p.x, p.y, BigUint(1), false};
}

// Field multiply: BigUint::mod_mul routes through the thread-local cached
// Montgomery context for the (fixed, odd) secp256k1 prime — one CIOS pass
// pair instead of a schoolbook multiply plus Knuth division. Small-constant
// products (2x, 3x, 4x, 8x) become modular doublings so every operand stays
// reduced.
BigUint fe_mul(const BigUint& a, const BigUint& b) {
  return BigUint::mod_mul(a, b, field_p());
}

BigUint fe_dbl(const BigUint& a) {
  return BigUint::mod_add(a, a, field_p());
}

EcPoint from_jacobian(const Jacobian& j) {
  if (j.infinity) return {BigUint{}, BigUint{}, true};
  const BigUint& p = field_p();
  const auto z_inv = BigUint::mod_inv(j.z, p);
  if (!z_inv) throw std::logic_error("secp256k1: non-invertible Z");
  const BigUint z2 = fe_mul(*z_inv, *z_inv);
  const BigUint z3 = fe_mul(z2, *z_inv);
  return {fe_mul(j.x, z2), fe_mul(j.y, z3), false};
}

Jacobian jac_double(const Jacobian& a) {
  if (a.infinity) return a;
  const BigUint& p = field_p();
  if (a.y.is_zero()) return {};
  // Standard dbl-2007-b style formulas for a = 0 curves.
  const BigUint y2 = fe_mul(a.y, a.y);
  const BigUint xy2 = fe_mul(a.x, y2);
  const BigUint s = fe_dbl(fe_dbl(xy2));  // 4*X*Y^2
  const BigUint xx = fe_mul(a.x, a.x);
  const BigUint m = BigUint::mod_add(fe_dbl(xx), xx, p);  // 3*X^2
  const BigUint x3 = BigUint::mod_sub(fe_mul(m, m), fe_dbl(s), p);
  const BigUint y8 = fe_dbl(fe_dbl(fe_dbl(fe_mul(y2, y2))));  // 8*Y^4
  const BigUint y3 =
      BigUint::mod_sub(fe_mul(m, BigUint::mod_sub(s, x3, p)), y8, p);
  const BigUint z3 = fe_mul(fe_dbl(a.y), a.z);
  return {x3, y3, z3, false};
}

Jacobian jac_add(const Jacobian& a, const Jacobian& b) {
  if (a.infinity) return b;
  if (b.infinity) return a;
  const BigUint& p = field_p();
  const BigUint z1z1 = fe_mul(a.z, a.z);
  const BigUint z2z2 = fe_mul(b.z, b.z);
  const BigUint u1 = fe_mul(a.x, z2z2);
  const BigUint u2 = fe_mul(b.x, z1z1);
  const BigUint s1 = fe_mul(fe_mul(a.y, z2z2), b.z);
  const BigUint s2 = fe_mul(fe_mul(b.y, z1z1), a.z);
  if (u1 == u2) {
    if (!(s1 == s2)) return {};  // P + (-P) = infinity
    return jac_double(a);
  }
  const BigUint h = BigUint::mod_sub(u2, u1, p);
  const BigUint r = BigUint::mod_sub(s2, s1, p);
  const BigUint h2 = fe_mul(h, h);
  const BigUint h3 = fe_mul(h2, h);
  const BigUint u1h2 = fe_mul(u1, h2);
  BigUint x3 = BigUint::mod_sub(fe_mul(r, r), h3, p);
  x3 = BigUint::mod_sub(x3, fe_dbl(u1h2), p);
  const BigUint y3 = BigUint::mod_sub(
      fe_mul(r, BigUint::mod_sub(u1h2, x3, p)), fe_mul(s1, h3), p);
  const BigUint z3 = fe_mul(fe_mul(h, a.z), b.z);
  return {x3, y3, z3, false};
}

Jacobian jac_mul(const BigUint& k, const Jacobian& point) {
  Jacobian result;  // infinity
  Jacobian base = point;
  const std::size_t bits = k.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (k.bit(i)) result = jac_add(result, base);
    base = jac_double(base);
  }
  return result;
}

// Deterministic nonce: HMAC chain over (priv || digest || counter), reduced
// mod n. Simplified from RFC 6979 but preserves its key property — the nonce
// is a pseudorandom function of (key, message) and never repeats across
// distinct messages.
BigUint deterministic_nonce(const BigUint& priv, const Digest256& digest,
                            std::uint32_t counter) {
  util::Writer w;
  w.var_bytes(priv.to_bytes_be(32));
  w.bytes(util::ByteView(digest.data(), digest.size()));
  w.u32(counter);
  const Digest256 mac =
      hmac_sha256(util::str_bytes("bcwan/ecdsa-nonce"), w.data());
  const BigUint k =
      BigUint::from_bytes_be(util::ByteView(mac.data(), mac.size())) %
      order_n();
  return k;
}

}  // namespace

const BigUint& Secp256k1::p() { return field_p(); }
const BigUint& Secp256k1::n() { return order_n(); }
const EcPoint& Secp256k1::g() { return gen_g(); }

EcPoint Secp256k1::add(const EcPoint& a, const EcPoint& b) {
  return from_jacobian(jac_add(to_jacobian(a), to_jacobian(b)));
}

EcPoint Secp256k1::mul(const BigUint& k, const EcPoint& point) {
  return from_jacobian(jac_mul(k % order_n(), to_jacobian(point)));
}

bool Secp256k1::on_curve(const EcPoint& point) {
  if (point.infinity) return true;
  const BigUint& p = field_p();
  const BigUint lhs = fe_mul(point.y, point.y);
  const BigUint rhs = BigUint::mod_add(
      fe_mul(fe_mul(point.x, point.x), point.x), BigUint(7), p);
  return lhs == rhs;
}

util::Bytes EcdsaSignature::serialize() const {
  return util::concat({r.to_bytes_be(32), s.to_bytes_be(32)});
}

std::optional<EcdsaSignature> EcdsaSignature::deserialize(util::ByteView data) {
  if (data.size() != 64) return std::nullopt;
  EcdsaSignature sig;
  sig.r = BigUint::from_bytes_be(data.subspan(0, 32));
  sig.s = BigUint::from_bytes_be(data.subspan(32, 32));
  if (sig.r.is_zero() || sig.s.is_zero()) return std::nullopt;
  if (sig.r >= order_n() || sig.s >= order_n()) return std::nullopt;
  return sig;
}

EcKeyPair ec_generate(util::Rng& rng) {
  const BigUint one(1);
  const BigUint span = order_n() - one;
  const BigUint priv = BigUint::random_below(rng, span) + one;
  return {priv, ec_mul_gen(priv)};
}

EcKeyPair ec_from_seed(util::ByteView seed) {
  const Digest256 h = hmac_sha256(util::str_bytes("bcwan/ec-identity"), seed);
  BigUint priv = BigUint::from_bytes_be(util::ByteView(h.data(), h.size())) %
                 (order_n() - BigUint(1));
  priv = priv + BigUint(1);
  return {priv, ec_mul_gen(priv)};
}

util::Bytes ec_pubkey_encode(const EcPoint& pub) {
  if (pub.infinity) throw std::invalid_argument("ec_pubkey_encode: infinity");
  util::Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  const util::Bytes x = pub.x.to_bytes_be(32);
  const util::Bytes y = pub.y.to_bytes_be(32);
  out.insert(out.end(), x.begin(), x.end());
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<EcPoint> ec_pubkey_decode(util::ByteView data) {
  if (data.size() != 65 || data[0] != 0x04) return std::nullopt;
  EcPoint p{BigUint::from_bytes_be(data.subspan(1, 32)),
            BigUint::from_bytes_be(data.subspan(33, 32)), false};
  if (!Secp256k1::on_curve(p)) return std::nullopt;
  return p;
}

EcdsaSignature ecdsa_sign(const BigUint& priv, util::ByteView message) {
  return ecdsa_sign_digest(priv, sha256d(message));
}

EcdsaSignature ecdsa_sign_digest(const BigUint& priv, const Digest256& digest) {
  const BigUint& n = order_n();
  const BigUint z =
      BigUint::from_bytes_be(util::ByteView(digest.data(), digest.size())) % n;

  for (std::uint32_t counter = 0;; ++counter) {
    const BigUint k = deterministic_nonce(priv, digest, counter);
    if (k.is_zero()) continue;
    // Backend-dispatched fixed-base multiply: the wNAF table path and the
    // reference ladder produce the identical point, so signatures are
    // byte-identical across backends (differentially tested).
    const EcPoint rp = ec_mul_gen(k);
    if (rp.infinity) continue;
    const BigUint r = rp.x % n;
    if (r.is_zero()) continue;
    const auto k_inv = BigUint::mod_inv(k, n);
    if (!k_inv) continue;
    BigUint s = BigUint::mod_mul(
        *k_inv, BigUint::mod_add(z, BigUint::mod_mul(r, priv, n), n), n);
    if (s.is_zero()) continue;
    // Low-s normalization (BIP-62) for canonical signatures.
    if (s > n >> 1) s = n - s;
    return {r, s};
  }
}

bool ecdsa_verify(const EcPoint& pub, util::ByteView message,
                  const EcdsaSignature& sig) {
  return ecdsa_verify_digest(pub, sha256d(message), sig);
}

bool ecdsa_verify_digest(const EcPoint& pub, const Digest256& digest,
                         const EcdsaSignature& sig) {
  const BigUint& n = order_n();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (sig.r >= n || sig.s >= n) return false;
  if (pub.infinity || !Secp256k1::on_curve(pub)) return false;

  const BigUint z =
      BigUint::from_bytes_be(util::ByteView(digest.data(), digest.size())) % n;
  const auto s_inv = BigUint::mod_inv(sig.s, n);
  if (!s_inv) return false;
  const BigUint u1 = BigUint::mod_mul(z, *s_inv, n);
  const BigUint u2 = BigUint::mod_mul(sig.r, *s_inv, n);

  switch (ecdsa_backend()) {
    case EcdsaBackend::kShamir: {
      // Single interleaved double-scalar pass: one doubling chain serves
      // both u1*G (mixed adds against the shared fixed-base table) and
      // u2*Q, with one field inversion at the very end.
      const EcPoint sum = ec_shamir(u1, u2, pub);
      if (sum.infinity) return false;
      return sum.x % n == sig.r;
    }
    case EcdsaBackend::kWnaf: {
      // Ablation midpoint: both scalar muls on the wNAF fast core, but
      // combined through the reference affine addition (two extra
      // inversions vs Shamir — exactly what the bench isolates).
      const EcPoint sum =
          Secp256k1::add(ec_mul_gen_wnaf(u1), ec_mul_wnaf(u2, pub));
      if (sum.infinity) return false;
      return sum.x % n == sig.r;
    }
    case EcdsaBackend::kReference:
      break;
  }
  const Jacobian sum = jac_add(jac_mul(u1, to_jacobian(gen_g())),
                               jac_mul(u2, to_jacobian(pub)));
  if (sum.infinity) return false;
  const EcPoint affine = from_jacobian(sum);
  return affine.x % n == sig.r;
}

}  // namespace bcwan::crypto

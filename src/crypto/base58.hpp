// Base58 and Base58Check (Bitcoin address encoding).
//
// Blockchain addresses (@R in the paper — the identifier a node sends so the
// gateway can look the recipient up in the chain) are Base58Check-encoded
// HASH160s of ECDSA public keys, exactly as in Bitcoin/Multichain.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace bcwan::crypto {

std::string base58_encode(util::ByteView data);
std::optional<util::Bytes> base58_decode(std::string_view text);

/// version byte || payload || first 4 bytes of SHA-256d checksum, base58'd.
std::string base58check_encode(std::uint8_t version, util::ByteView payload);

struct Base58CheckDecoded {
  std::uint8_t version;
  util::Bytes payload;
};
/// Returns std::nullopt on bad characters or checksum mismatch.
std::optional<Base58CheckDecoded> base58check_decode(std::string_view text);

}  // namespace bcwan::crypto

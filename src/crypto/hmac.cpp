#include "crypto/hmac.hpp"

#include <array>

namespace bcwan::crypto {

Digest256 hmac_sha256(util::ByteView key, util::ByteView message) noexcept {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest256 hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  const Digest256 inner = Sha256()
                              .update(util::ByteView(ipad.data(), ipad.size()))
                              .update(message)
                              .finalize();
  return Sha256()
      .update(util::ByteView(opad.data(), opad.size()))
      .update(util::ByteView(inner.data(), inner.size()))
      .finalize();
}

}  // namespace bcwan::crypto

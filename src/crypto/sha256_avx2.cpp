// AVX2 8-way batched double-SHA-256 of 64-byte inputs.
//
// Eight independent messages occupy one 32-bit lane each of a __m256i, so
// the scalar compressor's data flow runs unchanged with every arithmetic op
// widened to 8 lanes. Specialized for the merkle inner-node shape: the first
// hash is (data block, constant padding block) and the second hash's input
// is the first digest — which is already sitting in the state vectors, so
// the middle transposition costs nothing.
//
// Compiled with -mavx2; callers gate on avx2_available().
#include "crypto/sha256_impl.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace bcwan::crypto::detail {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                  0xa54ff53a, 0x510e527f, 0x9b05688c,
                                  0x1f83d9ab, 0x5be0cd19};

__attribute__((target("avx2"))) inline __m256i Add(__m256i a, __m256i b) {
  return _mm256_add_epi32(a, b);
}
__attribute__((target("avx2"))) inline __m256i Xor(__m256i a, __m256i b) {
  return _mm256_xor_si256(a, b);
}
__attribute__((target("avx2"))) inline __m256i RotR(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}
__attribute__((target("avx2"))) inline __m256i BigSigma0(__m256i x) {
  return Xor(Xor(RotR(x, 2), RotR(x, 13)), RotR(x, 22));
}
__attribute__((target("avx2"))) inline __m256i BigSigma1(__m256i x) {
  return Xor(Xor(RotR(x, 6), RotR(x, 11)), RotR(x, 25));
}
__attribute__((target("avx2"))) inline __m256i SmallSigma0(__m256i x) {
  return Xor(Xor(RotR(x, 7), RotR(x, 18)), _mm256_srli_epi32(x, 3));
}
__attribute__((target("avx2"))) inline __m256i SmallSigma1(__m256i x) {
  return Xor(Xor(RotR(x, 17), RotR(x, 19)), _mm256_srli_epi32(x, 10));
}
__attribute__((target("avx2"))) inline __m256i Ch(__m256i e, __m256i f,
                                                  __m256i g) {
  // (e & f) ^ (~e & g) == g ^ (e & (f ^ g))
  return Xor(g, _mm256_and_si256(e, Xor(f, g)));
}
__attribute__((target("avx2"))) inline __m256i Maj(__m256i a, __m256i b,
                                                   __m256i c) {
  // (a & b) ^ (a & c) ^ (b & c) == (a & b) | (c & (a | b))
  return _mm256_or_si256(_mm256_and_si256(a, b),
                         _mm256_and_si256(c, _mm256_or_si256(a, b)));
}

inline std::uint32_t read_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

inline void write_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

/// 64 rounds over 8 lanes; w[] is consumed/extended in place (ring of 16).
__attribute__((target("avx2"))) void rounds_8way(__m256i s[8], __m256i w[16]) {
  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];
  for (int i = 0; i < 64; ++i) {
    if (i >= 16) {
      w[i & 15] =
          Add(Add(w[i & 15], SmallSigma0(w[(i + 1) & 15])),
              Add(w[(i + 9) & 15], SmallSigma1(w[(i + 14) & 15])));
    }
    const __m256i t1 = Add(Add(h, BigSigma1(e)),
                           Add(Ch(e, f, g), Add(_mm256_set1_epi32(
                                                    static_cast<int>(kK[i])),
                                                w[i & 15])));
    const __m256i t2 = Add(BigSigma0(a), Maj(a, b, c));
    h = g;
    g = f;
    f = e;
    e = Add(d, t1);
    d = c;
    c = b;
    b = a;
    a = Add(t1, t2);
  }
  s[0] = Add(s[0], a);
  s[1] = Add(s[1], b);
  s[2] = Add(s[2], c);
  s[3] = Add(s[3], d);
  s[4] = Add(s[4], e);
  s[5] = Add(s[5], f);
  s[6] = Add(s[6], g);
  s[7] = Add(s[7], h);
}

__attribute__((target("avx2"))) void d64_8way(std::uint8_t* out,
                                              const std::uint8_t* in) {
  // First hash, block 1: gather word t of each of the 8 messages into the
  // lanes of w[t].
  __m256i w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm256_set_epi32(
        static_cast<int>(read_be32(in + 7 * 64 + 4 * t)),
        static_cast<int>(read_be32(in + 6 * 64 + 4 * t)),
        static_cast<int>(read_be32(in + 5 * 64 + 4 * t)),
        static_cast<int>(read_be32(in + 4 * 64 + 4 * t)),
        static_cast<int>(read_be32(in + 3 * 64 + 4 * t)),
        static_cast<int>(read_be32(in + 2 * 64 + 4 * t)),
        static_cast<int>(read_be32(in + 1 * 64 + 4 * t)),
        static_cast<int>(read_be32(in + 0 * 64 + 4 * t)));
  }
  __m256i s[8];
  for (int i = 0; i < 8; ++i) s[i] = _mm256_set1_epi32(static_cast<int>(kIv[i]));
  rounds_8way(s, w);

  // First hash, block 2: constant padding for a 64-byte message.
  w[0] = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  for (int t = 1; t < 15; ++t) w[t] = _mm256_setzero_si256();
  w[15] = _mm256_set1_epi32(512);
  rounds_8way(s, w);

  // Second hash: the 32-byte digest is already transposed in s[0..7].
  for (int t = 0; t < 8; ++t) w[t] = s[t];
  w[8] = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  for (int t = 9; t < 15; ++t) w[t] = _mm256_setzero_si256();
  w[15] = _mm256_set1_epi32(256);
  for (int i = 0; i < 8; ++i) s[i] = _mm256_set1_epi32(static_cast<int>(kIv[i]));
  rounds_8way(s, w);

  // Scatter: lane L of s[t] is word t of output L.
  alignas(32) std::uint32_t lanes[8][8];
  for (int t = 0; t < 8; ++t)
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[t]), s[t]);
  for (int lane = 0; lane < 8; ++lane)
    for (int t = 0; t < 8; ++t)
      write_be32(out + lane * 32 + 4 * t, lanes[t][lane]);
}

}  // namespace

bool avx2_available() { return __builtin_cpu_supports("avx2"); }

void sha256d64_avx2(std::uint8_t* out, const std::uint8_t* in, std::size_t n) {
  while (n >= 8) {
    d64_8way(out, in);
    in += 8 * 64;
    out += 8 * 32;
    n -= 8;
  }
  if (n != 0) sha256d64_scalar(out, in, n);
}

}  // namespace bcwan::crypto::detail

#endif  // x86

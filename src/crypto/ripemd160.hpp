// RIPEMD-160, implemented from the Dobbertin/Bosselaers/Preneel spec.
//
// Combined with SHA-256 it forms HASH160, the address hash used by P2PKH
// outputs and by the Listing-1 ephemeral-key-release script
// (OP_HASH160 <pubKeyHash>).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace bcwan::crypto {

using Digest160 = std::array<std::uint8_t, 20>;

/// One-shot RIPEMD-160.
Digest160 ripemd160(util::ByteView data) noexcept;

/// HASH160(x) = RIPEMD-160(SHA-256(x)) — Bitcoin address hash.
Digest160 hash160(util::ByteView data) noexcept;

util::Bytes digest_bytes(const Digest160& d);

}  // namespace bcwan::crypto

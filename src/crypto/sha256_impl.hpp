// Internal SHA-256 backend surface (crypto module only).
//
// Each backend supplies the one-block-at-a-time streaming compressor and,
// optionally, a specialized sha256d64 (double-SHA-256 of independent 64-byte
// inputs — the merkle inner-node workload). sha256.cpp owns runtime
// detection and dispatch; the SIMD translation units are compiled with their
// target ISA enabled and must only be entered after the matching CPU feature
// check passed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bcwan::crypto::detail {

/// Streaming compressor: absorb `blocks` consecutive 64-byte blocks into
/// `state` (8 words, FIPS 180-4 order a..h).
using TransformFn = void (*)(std::uint32_t* state, const std::uint8_t* blocks,
                             std::size_t nblocks);

/// Batched double-SHA-256: out[32*i .. 32*i+31] = SHA256(SHA256(in[64*i ..
/// 64*i+63])) for i in [0, n).
using Sha256D64Fn = void (*)(std::uint8_t* out, const std::uint8_t* in,
                             std::size_t n);

// Portable reference implementation (always available).
void transform_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                      std::size_t nblocks);

/// Generic sha256d64 built on any streaming compressor: both hashes of every
/// input are single fixed-size blocks, so padding is constant and the
/// byte-level Sha256 buffering machinery is skipped entirely.
void sha256d64_via(TransformFn transform, std::uint8_t* out,
                   const std::uint8_t* in, std::size_t n);

void sha256d64_scalar(std::uint8_t* out, const std::uint8_t* in,
                      std::size_t n);

#if defined(__x86_64__) || defined(__i386__)
// SHA-NI single-stream compressor (sha256_shani.cpp; requires SHA + SSE4.1).
bool shani_available();
void transform_shani(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t nblocks);
void sha256d64_shani(std::uint8_t* out, const std::uint8_t* in, std::size_t n);

// AVX2 8-way sha256d64 (sha256_avx2.cpp): eight independent 64-byte inputs
// ride one 32-bit lane each through a vectorized compressor.
bool avx2_available();
void sha256d64_avx2(std::uint8_t* out, const std::uint8_t* in, std::size_t n);
#endif

}  // namespace bcwan::crypto::detail

// ECDSA over secp256k1, implemented from scratch on bignum::BigUint.
//
// This is the signature scheme behind every blockchain transaction in the
// system (P2PKH outputs, OP_CHECKSIG) — the paper's chain is a Multichain /
// Bitcoin-0.10 fork, which uses exactly this curve. Point arithmetic uses
// Jacobian projective coordinates so a scalar multiplication needs a single
// field inversion.
//
// Nonces are deterministic (HMAC-SHA256 chain over the private key and the
// message digest, in the spirit of RFC 6979) so signing never consumes
// ambient randomness and simulation runs replay exactly.
#pragma once

#include <optional>

#include "bignum/biguint.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bcwan::crypto {

/// Affine curve point; infinity is represented by std::nullopt at the API
/// boundary where relevant.
struct EcPoint {
  bignum::BigUint x;
  bignum::BigUint y;
  bool infinity = false;

  friend bool operator==(const EcPoint& a, const EcPoint& b) {
    if (a.infinity || b.infinity) return a.infinity == b.infinity;
    return a.x == b.x && a.y == b.y;
  }
};

/// secp256k1 group operations and parameters.
class Secp256k1 {
 public:
  static const bignum::BigUint& p();  // field prime
  static const bignum::BigUint& n();  // group order
  static const EcPoint& g();          // generator

  static EcPoint add(const EcPoint& a, const EcPoint& b);
  static EcPoint mul(const bignum::BigUint& k, const EcPoint& point);
  static bool on_curve(const EcPoint& point);
};

struct EcdsaSignature {
  bignum::BigUint r;
  bignum::BigUint s;

  /// Fixed 64-byte encoding: r (32 BE) || s (32 BE).
  util::Bytes serialize() const;
  static std::optional<EcdsaSignature> deserialize(util::ByteView data);

  friend bool operator==(const EcdsaSignature&, const EcdsaSignature&) = default;
};

struct EcKeyPair {
  bignum::BigUint priv;  // scalar in [1, n-1]
  EcPoint pub;           // priv * G
};

/// Random key pair from the given generator.
EcKeyPair ec_generate(util::Rng& rng);

/// Key pair deterministically derived from a seed (used to give simulated
/// actors stable identities).
EcKeyPair ec_from_seed(util::ByteView seed);

/// Uncompressed SEC1 encoding: 0x04 || X (32) || Y (32).
util::Bytes ec_pubkey_encode(const EcPoint& pub);
std::optional<EcPoint> ec_pubkey_decode(util::ByteView data);

/// Sign SHA-256d(message) — Bitcoin's signature-hash convention.
EcdsaSignature ecdsa_sign(const bignum::BigUint& priv, util::ByteView message);

bool ecdsa_verify(const EcPoint& pub, util::ByteView message,
                  const EcdsaSignature& sig);

/// Digest-level entry points: `digest` is the already-computed
/// SHA-256d(message). Byte-identical to the message overloads (same nonce
/// derivation, same scalar reduction) — they exist so callers holding a
/// midstate-derived sighash digest (chain::PrecomputedTxData) skip
/// re-materializing and re-hashing the full message.
EcdsaSignature ecdsa_sign_digest(const bignum::BigUint& priv,
                                 const Digest256& digest);

bool ecdsa_verify_digest(const EcPoint& pub, const Digest256& digest,
                         const EcdsaSignature& sig);

}  // namespace bcwan::crypto

// ECDSA over secp256k1, implemented from scratch on bignum::BigUint.
//
// This is the signature scheme behind every blockchain transaction in the
// system (P2PKH outputs, OP_CHECKSIG) — the paper's chain is a Multichain /
// Bitcoin-0.10 fork, which uses exactly this curve. Point arithmetic uses
// Jacobian projective coordinates so a scalar multiplication needs a single
// field inversion.
//
// Nonces are deterministic (HMAC-SHA256 chain over the private key and the
// message digest, in the spirit of RFC 6979) so signing never consumes
// ambient randomness and simulation runs replay exactly.
#pragma once

#include <optional>
#include <string_view>

#include "bignum/biguint.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bcwan::crypto {

/// Affine curve point; infinity is represented by std::nullopt at the API
/// boundary where relevant.
struct EcPoint {
  bignum::BigUint x;
  bignum::BigUint y;
  bool infinity = false;

  friend bool operator==(const EcPoint& a, const EcPoint& b) {
    if (a.infinity || b.infinity) return a.infinity == b.infinity;
    return a.x == b.x && a.y == b.y;
  }
};

/// secp256k1 group operations and parameters. `mul` is the *reference*
/// double-and-add ladder over BigUint field arithmetic — deliberately left
/// untouched so the wNAF/Shamir fast paths below always have a differential
/// oracle to answer to (the `mod_exp_basic`/Montgomery split in bignum/ is
/// the template).
class Secp256k1 {
 public:
  static const bignum::BigUint& p();  // field prime
  static const bignum::BigUint& n();  // group order
  static const EcPoint& g();          // generator

  static EcPoint add(const EcPoint& a, const EcPoint& b);
  static EcPoint mul(const bignum::BigUint& k, const EcPoint& point);
  static bool on_curve(const EcPoint& point);
};

// --- Cold-path fast scalar multiplication (secp256k1_fast.cpp) -------------
//
// A dedicated fixed-width field core (8x32 limbs, Montgomery domain, one
// CIOS pass per multiply, no heap) plus windowed-NAF recoding. Precomputed
// odd-multiple tables for the generator are built exactly once (race-free
// magic-static init) and shared by every thread; `ecdsa_sign_digest` and
// `ecdsa_verify_digest` dispatch onto these according to the selected
// backend. All three functions reduce `k` mod n first, exactly like
// Secp256k1::mul, so they are drop-in interchangeable with the oracle.

/// k * point via 5-bit wNAF over a per-call odd-multiple table.
EcPoint ec_mul_wnaf(const bignum::BigUint& k, const EcPoint& point);

/// k * G via 7-bit wNAF over the shared precomputed generator table.
EcPoint ec_mul_gen_wnaf(const bignum::BigUint& k);

/// u1*G + u2*Q in a single interleaved double-scalar pass (Shamir's trick):
/// one shared doubling chain, mixed additions against the fixed-base table,
/// Jacobian coordinates throughout with one final inversion.
EcPoint ec_shamir(const bignum::BigUint& u1, const bignum::BigUint& u2,
                  const EcPoint& q);

/// Backend-dispatched fixed-base multiply (key derivation, nonce points).
EcPoint ec_mul_gen(const bignum::BigUint& k);

/// ECDSA backend pin, mirroring BCWAN_SHA256_BACKEND: the environment
/// variable BCWAN_ECDSA_BACKEND=reference|wnaf|shamir pins the dispatch for
/// the whole run (CI runs the suite once with `reference` forced so a
/// silent fast-path divergence cannot hide behind its own code). `auto`
/// resolves to shamir. Unknown names leave the selection unchanged and
/// return false.
enum class EcdsaBackend { kReference, kWnaf, kShamir };
EcdsaBackend ecdsa_backend() noexcept;
bool ecdsa_select_backend(std::string_view name) noexcept;
const char* ecdsa_backend_name() noexcept;

/// Batched-verification warmup: forces the one-time generator tables and
/// primes this thread's Montgomery contexts for the curve moduli, so a
/// checkqueue worker pays table/context resolution once per batch instead
/// of inside the first signature of every chunk.
void ecdsa_warmup();

struct EcdsaSignature {
  bignum::BigUint r;
  bignum::BigUint s;

  /// Fixed 64-byte encoding: r (32 BE) || s (32 BE).
  util::Bytes serialize() const;
  static std::optional<EcdsaSignature> deserialize(util::ByteView data);

  friend bool operator==(const EcdsaSignature&, const EcdsaSignature&) = default;
};

struct EcKeyPair {
  bignum::BigUint priv;  // scalar in [1, n-1]
  EcPoint pub;           // priv * G
};

/// Random key pair from the given generator.
EcKeyPair ec_generate(util::Rng& rng);

/// Key pair deterministically derived from a seed (used to give simulated
/// actors stable identities).
EcKeyPair ec_from_seed(util::ByteView seed);

/// Uncompressed SEC1 encoding: 0x04 || X (32) || Y (32).
util::Bytes ec_pubkey_encode(const EcPoint& pub);
std::optional<EcPoint> ec_pubkey_decode(util::ByteView data);

/// Sign SHA-256d(message) — Bitcoin's signature-hash convention.
EcdsaSignature ecdsa_sign(const bignum::BigUint& priv, util::ByteView message);

bool ecdsa_verify(const EcPoint& pub, util::ByteView message,
                  const EcdsaSignature& sig);

/// Digest-level entry points: `digest` is the already-computed
/// SHA-256d(message). Byte-identical to the message overloads (same nonce
/// derivation, same scalar reduction) — they exist so callers holding a
/// midstate-derived sighash digest (chain::PrecomputedTxData) skip
/// re-materializing and re-hashing the full message.
EcdsaSignature ecdsa_sign_digest(const bignum::BigUint& priv,
                                 const Digest256& digest);

bool ecdsa_verify_digest(const EcPoint& pub, const Digest256& digest,
                         const EcdsaSignature& sig);

}  // namespace bcwan::crypto

// AES-256 block cipher with CBC mode and PKCS#7 padding (FIPS 197 /
// RFC 2451), implemented from the spec.
//
// This is the node→recipient symmetric layer of BcWAN (§5.1): the sensor
// reading is AES-256-CBC encrypted under the provisioned shared key K; the
// 16-byte IV travels with the ciphertext in the Fig. 4 message blob.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace bcwan::crypto {

constexpr std::size_t kAesBlockSize = 16;
constexpr std::size_t kAes256KeySize = 32;

using AesKey256 = std::array<std::uint8_t, kAes256KeySize>;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

/// AES-256 core (14 rounds). Encrypts/decrypts single 16-byte blocks.
class Aes256 {
 public:
  explicit Aes256(const AesKey256& key) noexcept;

  AesBlock encrypt_block(const AesBlock& in) const noexcept;
  AesBlock decrypt_block(const AesBlock& in) const noexcept;

 private:
  // 15 round keys of 16 bytes each.
  std::array<std::uint32_t, 60> round_keys_;
};

/// CBC encrypt with PKCS#7 padding. Output length is a multiple of 16 and
/// always at least 16 (a full padding block is added to aligned inputs).
util::Bytes aes256_cbc_encrypt(const AesKey256& key, const AesBlock& iv,
                               util::ByteView plaintext);

/// CBC decrypt + PKCS#7 unpad. Returns std::nullopt on malformed input
/// (empty, unaligned, or bad padding).
std::optional<util::Bytes> aes256_cbc_decrypt(const AesKey256& key,
                                              const AesBlock& iv,
                                              util::ByteView ciphertext);

}  // namespace bcwan::crypto

#include "crypto/sha256.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "crypto/sha256_impl.hpp"

namespace bcwan::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kIv = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return std::rotr(x, n);
}

void write_be32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

/// A dispatch table entry: streaming compressor + batched double-SHA.
struct Backend {
  const char* name;
  detail::TransformFn transform;
  detail::Sha256D64Fn d64;
};

constexpr Backend kScalarBackend{"scalar", &detail::transform_scalar,
                                 &detail::sha256d64_scalar};

Backend detect_backend() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // SHA-NI wins for streams; for the batched d64 shape prefer SHA-NI too
  // (per-hash latency beats 8-way scalar-width throughput on every CPU that
  // has it), falling back to AVX2 8-way, then scalar.
  if (detail::shani_available()) {
    return Backend{"shani", &detail::transform_shani, &detail::sha256d64_shani};
  }
  if (detail::avx2_available()) {
    return Backend{"avx2", &detail::transform_scalar, &detail::sha256d64_avx2};
  }
#endif
  return kScalarBackend;
}

Backend select_by_name(std::string_view name, bool& ok) noexcept {
  ok = true;
  if (name == "auto") return detect_backend();
  if (name == "scalar") return kScalarBackend;
#if defined(__x86_64__) || defined(__i386__)
  if (name == "shani" && detail::shani_available()) {
    return Backend{"shani", &detail::transform_shani, &detail::sha256d64_shani};
  }
  if (name == "avx2" && detail::avx2_available()) {
    return Backend{"avx2", &detail::transform_scalar, &detail::sha256d64_avx2};
  }
#endif
  ok = false;
  return kScalarBackend;
}

/// Process-wide dispatch, initialized once on first use; the
/// BCWAN_SHA256_BACKEND environment variable pins a backend for the whole
/// run (unknown/unsupported values fall back to auto-detection).
Backend& active_backend() noexcept {
  static Backend backend = [] {
    if (const char* env = std::getenv("BCWAN_SHA256_BACKEND")) {
      bool ok = false;
      const Backend forced = select_by_name(env, ok);
      if (ok) return forced;
    }
    return detect_backend();
  }();
  return backend;
}

}  // namespace

namespace detail {

void transform_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                      std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk, blocks += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<std::uint32_t>(blocks[4 * i]) << 24 |
             static_cast<std::uint32_t>(blocks[4 * i + 1]) << 16 |
             static_cast<std::uint32_t>(blocks[4 * i + 2]) << 8 |
             static_cast<std::uint32_t>(blocks[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

void sha256d64_via(TransformFn transform, std::uint8_t* out,
                   const std::uint8_t* in, std::size_t n) {
  // Both hashes have fixed-size inputs, so both padding blocks are known at
  // compile time: the 64-byte message needs a full block of (0x80, ...,
  // len=512 bits) and the 32-byte digest re-hash fits one block with its
  // padding inline.
  static constexpr std::array<std::uint8_t, 64> kPad512 = [] {
    std::array<std::uint8_t, 64> p{};
    p[0] = 0x80;
    p[62] = 0x02;  // 512 = 0x0200 bits, big-endian in the last 8 bytes
    return p;
  }();

  for (std::size_t i = 0; i < n; ++i, in += 64, out += 32) {
    std::uint32_t state[8];
    std::memcpy(state, kIv.data(), sizeof state);
    transform(state, in, 1);
    transform(state, kPad512.data(), 1);

    std::uint8_t block2[64] = {};
    for (int w = 0; w < 8; ++w) write_be32(block2 + 4 * w, state[w]);
    block2[32] = 0x80;
    block2[62] = 0x01;  // 256 = 0x0100 bits

    std::memcpy(state, kIv.data(), sizeof state);
    transform(state, block2, 1);
    for (int w = 0; w < 8; ++w) write_be32(out + 4 * w, state[w]);
  }
}

void sha256d64_scalar(std::uint8_t* out, const std::uint8_t* in,
                      std::size_t n) {
  sha256d64_via(&transform_scalar, out, in, n);
}

#if defined(__x86_64__) || defined(__i386__)
void sha256d64_shani(std::uint8_t* out, const std::uint8_t* in,
                     std::size_t n) {
  sha256d64_via(&transform_shani, out, in, n);
}
#endif

}  // namespace detail

void Sha256::reset() noexcept {
  state_ = kIv;
  total_len_ = 0;
  buffer_len_ = 0;
}

Sha256& Sha256::update(util::ByteView data) noexcept {
  const detail::TransformFn transform = active_backend().transform;
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      transform(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  if (offset + 64 <= data.size()) {
    const std::size_t nblocks = (data.size() - offset) / 64;
    transform(state_.data(), data.data() + offset, nblocks);
    offset += nblocks * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
  return *this;
}

Digest256 Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(util::ByteView(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) update(util::ByteView(&zero, 1));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(util::ByteView(len_bytes, 8));

  Digest256 out;
  for (int i = 0; i < 8; ++i) write_be32(out.data() + 4 * i, state_[i]);
  return out;
}

Digest256 sha256(util::ByteView data) noexcept {
  return Sha256().update(data).finalize();
}

Digest256 sha256d(util::ByteView data) noexcept {
  const Digest256 first = sha256(data);
  return sha256(util::ByteView(first.data(), first.size()));
}

void sha256d64(std::uint8_t* out, const std::uint8_t* in, std::size_t n) {
  active_backend().d64(out, in, n);
}

const char* sha256_backend_name() noexcept { return active_backend().name; }

bool sha256_select_backend(std::string_view name) noexcept {
  bool ok = false;
  const Backend chosen = select_by_name(name, ok);
  if (ok) active_backend() = chosen;
  return ok;
}

util::Bytes digest_bytes(const Digest256& d) {
  return util::Bytes(d.begin(), d.end());
}

}  // namespace bcwan::crypto

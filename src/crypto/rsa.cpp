#include "crypto/rsa.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "bignum/montgomery.hpp"
#include "bignum/primes.hpp"
#include "crypto/sha256.hpp"
#include "util/serial.hpp"

namespace bcwan::crypto {

using bignum::BigUint;
using bignum::MontgomeryCtx;

namespace {

util::Bytes serialize_ints(std::initializer_list<const BigUint*> values) {
  util::Writer w;
  for (const BigUint* v : values) w.var_bytes(v->to_bytes_be());
  return w.take();
}

// One cached-context lookup per RSA operation: repeated verifies under the
// same key (every OP_CHECKRSA512PAIR probe, every uplink signature) reuse
// the per-modulus Montgomery precomputation. RSA moduli are odd by
// construction, but deserialized keys are attacker-supplied, so an even
// modulus falls back to the reference path instead of asserting.
BigUint pow_mod(const std::shared_ptr<const MontgomeryCtx>& ctx,
                const BigUint& base, const BigUint& exp, const BigUint& m) {
  if (ctx) return ctx->mod_exp(base, exp);
  return BigUint::mod_exp_basic(base, exp, m);
}

std::atomic<std::uint64_t> g_crt_faults{0};

std::atomic<bool>& crt_enabled_flag() {
  // Magic static: the env var is read exactly once, race-free, the first
  // time any thread asks (same pattern as the SHA-256 backend pin).
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("BCWAN_RSA_BACKEND");
    return !(env && std::string_view(env) == std::string_view("reference"));
  }()};
  return flag;
}

// Computes dp/dq/qinv from a claimed factorization (p, q) of key.n and
// installs all five CRT fields. Rejects (leaving the key untouched) unless
// p*q really is n and q is invertible mod p — defensive, since recovery
// feeds this gcd outputs from attacker-supplied key material.
bool fill_crt_fields(RsaPrivateKey& key, BigUint p, BigUint q) {
  if (p.is_zero() || q.is_zero() || p.is_one() || q.is_one()) return false;
  if (!(p * q == key.n)) return false;
  const auto qinv = BigUint::mod_inv(q % p, p);
  if (!qinv) return false;
  key.dp = key.d % (p - BigUint(1));
  key.dq = key.d % (q - BigUint(1));
  key.qinv = *qinv;
  key.p = std::move(p);
  key.q = std::move(q);
  return true;
}

struct CrtParams {
  BigUint p, q, dp, dq, qinv;
};

// Thread-local MRU cache of CRT recoveries keyed on (n, d): deserialized
// keys (on-chain reveals, gateway decrypt keys) carry no CRT fields, and
// factoring n costs a few full-width exponentiations — worth paying once
// per key per thread, not once per operation. Failed recoveries are cached
// too so inconsistent attacker keys don't re-run the factoring loop.
// Mirrors the MontgomeryCtx::cached MRU discipline, but sized for a block
// of reveals: every redeem in a block carries a distinct ephemeral key, and
// a capacity below the per-block reveal count would thrash — refactoring n
// on every operation costs more than CRT saves. ~128 entries of five
// half-width values each is a few hundred KB per verification thread.
const CrtParams* cached_crt(const RsaPrivateKey& key) {
  struct Entry {
    BigUint n, d;
    CrtParams params;
    bool ok = false;
  };
  constexpr std::size_t kCapacity = 128;
  thread_local std::vector<Entry> cache;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (cache[i].n == key.n && cache[i].d == key.d) {
      if (i != 0)
        std::rotate(cache.begin(), cache.begin() + static_cast<std::ptrdiff_t>(i),
                    cache.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      return cache.front().ok ? &cache.front().params : nullptr;
    }
  }
  RsaPrivateKey probe = key;
  Entry entry;
  entry.n = key.n;
  entry.d = key.d;
  entry.ok = rsa_crt_recover(probe);
  if (entry.ok)
    entry.params = {std::move(probe.p), std::move(probe.q), std::move(probe.dp),
                    std::move(probe.dq), std::move(probe.qinv)};
  cache.insert(cache.begin(), std::move(entry));
  if (cache.size() > kCapacity) cache.pop_back();
  return cache.front().ok ? &cache.front().params : nullptr;
}

// x^d mod n through the CRT halves, with the public-exponent re-check that
// makes the fast path result-equivalent to the reference one: y is accepted
// only if y^e == x (mod n), otherwise we count the fault and recompute with
// the full-width exponent. Precondition (all callers enforce): x < n.
BigUint crt_exp_checked(const RsaPrivateKey& priv, const BigUint& x,
                        const BigUint& p, const BigUint& q, const BigUint& dp,
                        const BigUint& dq, const BigUint& qinv) {
  BigUint y;
  bool computed = false;
  try {
    y = BigUint::mod_exp_crt(x, dp, dq, p, q, qinv);
    computed = true;
  } catch (const std::domain_error&) {
    // Degenerate CRT material (zero prime); fall through to the re-check
    // failure path below.
  }
  const auto ctx = MontgomeryCtx::cached(priv.n);
  if (computed && BigUint::compare(y, priv.n) < 0 &&
      pow_mod(ctx, y, priv.e, priv.n) == x)
    return y;
  g_crt_faults.fetch_add(1, std::memory_order_relaxed);
  return pow_mod(ctx, x, priv.d, priv.n);
}

// Are the key-carried CRT fields actually derived from (n, d)? Stale or
// tampered fields would otherwise exponentiate with the *old* d and still
// pass the public-exponent re-check (the result is a valid e-th root either
// way), silently overriding the authoritative d. A handful of divisions and
// one mod_mul — noise next to the exponentiation they guard.
bool crt_consistent(const RsaPrivateKey& priv) {
  if (priv.q.is_zero() || priv.p.is_one() || priv.q.is_one()) return false;
  if (!(priv.p * priv.q == priv.n)) return false;
  if (!(priv.dp == priv.d % (priv.p - BigUint(1)))) return false;
  if (!(priv.dq == priv.d % (priv.q - BigUint(1)))) return false;
  return BigUint::mod_mul(priv.qinv, priv.q % priv.p, priv.p).is_one();
}

// The single private-key entry point: CRT when available (either carried on
// the key from rsa_generate or recovered+cached for wire keys), full-width
// exponent otherwise or when the backend pin forces reference.
// Precondition: x < priv.n.
BigUint rsa_priv_exp(const RsaPrivateKey& priv, const BigUint& x) {
  if (crt_enabled_flag().load(std::memory_order_relaxed)) {
    if (priv.has_crt()) {
      if (crt_consistent(priv))
        return crt_exp_checked(priv, x, priv.p, priv.q, priv.dp, priv.dq,
                               priv.qinv);
      // Sabotaged/stale CRT material: count it and use the full-width
      // exponent, which needs only (n, d).
      g_crt_faults.fetch_add(1, std::memory_order_relaxed);
    } else if (const CrtParams* crt = cached_crt(priv)) {
      // Recovery output was validated by fill_crt_fields against this very
      // (n, d); no recheck needed.
      return crt_exp_checked(priv, x, crt->p, crt->q, crt->dp, crt->dq,
                             crt->qinv);
    }
  }
  return pow_mod(MontgomeryCtx::cached(priv.n), x, priv.d, priv.n);
}

}  // namespace

util::Bytes RsaPublicKey::serialize() const { return serialize_ints({&n, &e}); }

std::optional<RsaPublicKey> RsaPublicKey::deserialize(util::ByteView data) {
  try {
    util::Reader r(data);
    RsaPublicKey key;
    key.n = BigUint::from_bytes_be(r.var_bytes());
    key.e = BigUint::from_bytes_be(r.var_bytes());
    r.expect_done();
    if (key.n.is_zero() || key.e.is_zero()) return std::nullopt;
    return key;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

util::Bytes RsaPrivateKey::serialize() const {
  return serialize_ints({&n, &e, &d});
}

std::optional<RsaPrivateKey> RsaPrivateKey::deserialize(util::ByteView data) {
  try {
    util::Reader r(data);
    RsaPrivateKey key;
    key.n = BigUint::from_bytes_be(r.var_bytes());
    key.e = BigUint::from_bytes_be(r.var_bytes());
    key.d = BigUint::from_bytes_be(r.var_bytes());
    r.expect_done();
    if (key.n.is_zero() || key.d.is_zero()) return std::nullopt;
    return key;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits) {
  if (modulus_bits < 128 || modulus_bits % 16 != 0)
    throw std::invalid_argument("rsa_generate: bad modulus size");
  const BigUint e(65537);
  for (;;) {
    const BigUint p = bignum::generate_rsa_prime(rng, modulus_bits / 2, e);
    const BigUint q = bignum::generate_rsa_prime(rng, modulus_bits / 2, e);
    if (p == q) continue;
    const BigUint n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    const auto d = BigUint::mod_inv(e, phi);
    if (!d) continue;
    RsaKeyPair pair;
    pair.pub = {n, e};
    pair.priv.n = n;
    pair.priv.e = e;
    pair.priv.d = *d;
    // The primes are in hand at generation time, so CRT comes for free; it
    // cannot fail here (distinct odd primes), but a failure would only cost
    // the speedup, not correctness.
    fill_crt_fields(pair.priv, p, q);
    return pair;
  }
}

util::Bytes rsa_encrypt(const RsaPublicKey& pub, util::ByteView plaintext,
                        util::Rng& rng) {
  const std::size_t k = pub.modulus_bytes();
  if (plaintext.size() + 11 > k)
    throw std::invalid_argument("rsa_encrypt: plaintext too long for modulus");
  // EB = 00 || 02 || PS (nonzero random) || 00 || M
  util::Bytes eb;
  eb.reserve(k);
  eb.push_back(0x00);
  eb.push_back(0x02);
  const std::size_t ps_len = k - 3 - plaintext.size();
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) b = static_cast<std::uint8_t>(rng.next());
    eb.push_back(b);
  }
  eb.push_back(0x00);
  eb.insert(eb.end(), plaintext.begin(), plaintext.end());

  const BigUint m = BigUint::from_bytes_be(eb);
  const BigUint c = pow_mod(MontgomeryCtx::cached(pub.n), m, pub.e, pub.n);
  return c.to_bytes_be(k);
}

std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       util::ByteView ciphertext) {
  const std::size_t k = priv.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  const BigUint c = BigUint::from_bytes_be(ciphertext);
  if (BigUint::compare(c, priv.n) >= 0) return std::nullopt;
  const BigUint m = rsa_priv_exp(priv, c);
  const util::Bytes eb = m.to_bytes_be(k);
  if (eb[0] != 0x00 || eb[1] != 0x02) return std::nullopt;
  std::size_t sep = 2;
  while (sep < k && eb[sep] != 0x00) ++sep;
  if (sep < 10 || sep == k) return std::nullopt;  // PS must be >= 8 bytes
  return util::Bytes(eb.begin() + static_cast<std::ptrdiff_t>(sep) + 1,
                     eb.end());
}

namespace {

// EB = 00 || 01 || FF..FF || 00 || SHA-256(message)
util::Bytes signature_encoding(std::size_t k, util::ByteView message) {
  const Digest256 h = sha256(message);
  if (k < h.size() + 11)
    throw std::invalid_argument("rsa_sign: modulus too small for digest");
  util::Bytes eb;
  eb.reserve(k);
  eb.push_back(0x00);
  eb.push_back(0x01);
  eb.insert(eb.end(), k - 3 - h.size(), 0xff);
  eb.push_back(0x00);
  eb.insert(eb.end(), h.begin(), h.end());
  return eb;
}

}  // namespace

util::Bytes rsa_sign(const RsaPrivateKey& priv, util::ByteView message) {
  const std::size_t k = priv.modulus_bytes();
  const util::Bytes eb = signature_encoding(k, message);
  const BigUint m = BigUint::from_bytes_be(eb);
  // m < n: the encoding starts with a zero byte, so m has at most 8(k-1)
  // bits while n has more.
  const BigUint s = rsa_priv_exp(priv, m);
  return s.to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& pub, util::ByteView message,
                util::ByteView signature) {
  const std::size_t k = pub.modulus_bytes();
  if (signature.size() != k) return false;
  const BigUint s = BigUint::from_bytes_be(signature);
  if (BigUint::compare(s, pub.n) >= 0) return false;
  const BigUint m = pow_mod(MontgomeryCtx::cached(pub.n), s, pub.e, pub.n);
  const util::Bytes expected = signature_encoding(k, message);
  return util::ct_equal(m.to_bytes_be(k), expected);
}

bool rsa_pair_matches(const RsaPublicKey& pub, const RsaPrivateKey& priv) {
  if (!(pub.n == priv.n)) return false;
  if (pub.n.is_zero() || priv.d.is_zero()) return false;
  // Round-trip probes: x^(e*d) == x (mod n) for fixed x. Two probes make a
  // coincidental match on a wrong-but-related key astronomically unlikely.
  // One context serves all four exponentiations (pub.n == priv.n here).
  const auto ctx = MontgomeryCtx::cached(pub.n);
  for (std::uint64_t probe : {0x42ULL, 0xdeadbeefULL}) {
    const BigUint x = BigUint(probe) % pub.n;
    const BigUint y = pow_mod(ctx, x, pub.e, pub.n);
    const BigUint back = rsa_priv_exp(priv, y);
    if (!(back == x)) return false;
  }
  return true;
}

bool rsa_crt_recover(RsaPrivateKey& key) {
  if (key.has_crt()) return true;
  const BigUint& n = key.n;
  if (n.is_zero() || n.is_even() || key.e.is_zero() || key.d.is_zero())
    return false;
  if (n.bit_length() < 16) return false;  // smaller than any real modulus
  // e*d - 1 is a multiple of lambda(n), so for any base g, g^(e*d-1) == 1
  // (mod n). Walking the square-root chain of that unity (write
  // e*d - 1 = 2^s * t, t odd) finds a square root of 1 other than +-1 with
  // probability >= 1/2 per base, and gcd(root - 1, n) then splits n. The
  // base list is fixed so recovery is deterministic for a given key.
  BigUint k = key.e * key.d - BigUint(1);
  if (k.is_zero()) return false;
  std::size_t s = 0;
  while (k.is_even()) {
    k = k >> 1;
    ++s;
  }
  const BigUint t = k;
  const BigUint n_minus_1 = n - BigUint(1);
  const auto ctx = MontgomeryCtx::cached(n);
  for (const std::uint64_t g :
       {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
        31ULL, 37ULL}) {
    const BigUint base(g);
    const BigUint shared = BigUint::gcd(base, n);
    if (!shared.is_one()) {
      // The base itself divides n (never for real RSA moduli, but wire keys
      // are attacker-supplied).
      if (!(shared == n) && fill_crt_fields(key, shared, n / shared))
        return true;
      continue;
    }
    BigUint z = pow_mod(ctx, base, t, n);
    if (z.is_one() || z == n_minus_1) continue;
    for (std::size_t i = 0; i < s; ++i) {
      const BigUint w = BigUint::mod_mul(z, z, n);
      if (w.is_one()) {
        const BigUint f = BigUint::gcd(z - BigUint(1), n);
        if (!f.is_one() && !(f == n) && fill_crt_fields(key, f, n / f))
          return true;
        break;
      }
      if (w == n_minus_1) break;
      z = w;
    }
  }
  return false;
}

bool rsa_crt_enabled() noexcept {
  return crt_enabled_flag().load(std::memory_order_relaxed);
}

void set_rsa_crt_enabled(bool enabled) noexcept {
  crt_enabled_flag().store(enabled, std::memory_order_relaxed);
}

std::uint64_t rsa_crt_fault_count() noexcept {
  return g_crt_faults.load(std::memory_order_relaxed);
}

}  // namespace bcwan::crypto

#include "crypto/rsa.hpp"

#include <stdexcept>

#include "bignum/montgomery.hpp"
#include "bignum/primes.hpp"
#include "crypto/sha256.hpp"
#include "util/serial.hpp"

namespace bcwan::crypto {

using bignum::BigUint;
using bignum::MontgomeryCtx;

namespace {

util::Bytes serialize_ints(std::initializer_list<const BigUint*> values) {
  util::Writer w;
  for (const BigUint* v : values) w.var_bytes(v->to_bytes_be());
  return w.take();
}

// One cached-context lookup per RSA operation: repeated verifies under the
// same key (every OP_CHECKRSA512PAIR probe, every uplink signature) reuse
// the per-modulus Montgomery precomputation. RSA moduli are odd by
// construction, but deserialized keys are attacker-supplied, so an even
// modulus falls back to the reference path instead of asserting.
BigUint pow_mod(const std::shared_ptr<const MontgomeryCtx>& ctx,
                const BigUint& base, const BigUint& exp, const BigUint& m) {
  if (ctx) return ctx->mod_exp(base, exp);
  return BigUint::mod_exp_basic(base, exp, m);
}

}  // namespace

util::Bytes RsaPublicKey::serialize() const { return serialize_ints({&n, &e}); }

std::optional<RsaPublicKey> RsaPublicKey::deserialize(util::ByteView data) {
  try {
    util::Reader r(data);
    RsaPublicKey key;
    key.n = BigUint::from_bytes_be(r.var_bytes());
    key.e = BigUint::from_bytes_be(r.var_bytes());
    r.expect_done();
    if (key.n.is_zero() || key.e.is_zero()) return std::nullopt;
    return key;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

util::Bytes RsaPrivateKey::serialize() const {
  return serialize_ints({&n, &e, &d});
}

std::optional<RsaPrivateKey> RsaPrivateKey::deserialize(util::ByteView data) {
  try {
    util::Reader r(data);
    RsaPrivateKey key;
    key.n = BigUint::from_bytes_be(r.var_bytes());
    key.e = BigUint::from_bytes_be(r.var_bytes());
    key.d = BigUint::from_bytes_be(r.var_bytes());
    r.expect_done();
    if (key.n.is_zero() || key.d.is_zero()) return std::nullopt;
    return key;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits) {
  if (modulus_bits < 128 || modulus_bits % 16 != 0)
    throw std::invalid_argument("rsa_generate: bad modulus size");
  const BigUint e(65537);
  for (;;) {
    const BigUint p = bignum::generate_rsa_prime(rng, modulus_bits / 2, e);
    const BigUint q = bignum::generate_rsa_prime(rng, modulus_bits / 2, e);
    if (p == q) continue;
    const BigUint n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    const auto d = BigUint::mod_inv(e, phi);
    if (!d) continue;
    RsaKeyPair pair;
    pair.pub = {n, e};
    pair.priv = {n, e, *d};
    return pair;
  }
}

util::Bytes rsa_encrypt(const RsaPublicKey& pub, util::ByteView plaintext,
                        util::Rng& rng) {
  const std::size_t k = pub.modulus_bytes();
  if (plaintext.size() + 11 > k)
    throw std::invalid_argument("rsa_encrypt: plaintext too long for modulus");
  // EB = 00 || 02 || PS (nonzero random) || 00 || M
  util::Bytes eb;
  eb.reserve(k);
  eb.push_back(0x00);
  eb.push_back(0x02);
  const std::size_t ps_len = k - 3 - plaintext.size();
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) b = static_cast<std::uint8_t>(rng.next());
    eb.push_back(b);
  }
  eb.push_back(0x00);
  eb.insert(eb.end(), plaintext.begin(), plaintext.end());

  const BigUint m = BigUint::from_bytes_be(eb);
  const BigUint c = pow_mod(MontgomeryCtx::cached(pub.n), m, pub.e, pub.n);
  return c.to_bytes_be(k);
}

std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       util::ByteView ciphertext) {
  const std::size_t k = priv.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  const BigUint c = BigUint::from_bytes_be(ciphertext);
  if (BigUint::compare(c, priv.n) >= 0) return std::nullopt;
  const BigUint m = pow_mod(MontgomeryCtx::cached(priv.n), c, priv.d, priv.n);
  const util::Bytes eb = m.to_bytes_be(k);
  if (eb[0] != 0x00 || eb[1] != 0x02) return std::nullopt;
  std::size_t sep = 2;
  while (sep < k && eb[sep] != 0x00) ++sep;
  if (sep < 10 || sep == k) return std::nullopt;  // PS must be >= 8 bytes
  return util::Bytes(eb.begin() + static_cast<std::ptrdiff_t>(sep) + 1,
                     eb.end());
}

namespace {

// EB = 00 || 01 || FF..FF || 00 || SHA-256(message)
util::Bytes signature_encoding(std::size_t k, util::ByteView message) {
  const Digest256 h = sha256(message);
  if (k < h.size() + 11)
    throw std::invalid_argument("rsa_sign: modulus too small for digest");
  util::Bytes eb;
  eb.reserve(k);
  eb.push_back(0x00);
  eb.push_back(0x01);
  eb.insert(eb.end(), k - 3 - h.size(), 0xff);
  eb.push_back(0x00);
  eb.insert(eb.end(), h.begin(), h.end());
  return eb;
}

}  // namespace

util::Bytes rsa_sign(const RsaPrivateKey& priv, util::ByteView message) {
  const std::size_t k = priv.modulus_bytes();
  const util::Bytes eb = signature_encoding(k, message);
  const BigUint m = BigUint::from_bytes_be(eb);
  const BigUint s = pow_mod(MontgomeryCtx::cached(priv.n), m, priv.d, priv.n);
  return s.to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& pub, util::ByteView message,
                util::ByteView signature) {
  const std::size_t k = pub.modulus_bytes();
  if (signature.size() != k) return false;
  const BigUint s = BigUint::from_bytes_be(signature);
  if (BigUint::compare(s, pub.n) >= 0) return false;
  const BigUint m = pow_mod(MontgomeryCtx::cached(pub.n), s, pub.e, pub.n);
  const util::Bytes expected = signature_encoding(k, message);
  return util::ct_equal(m.to_bytes_be(k), expected);
}

bool rsa_pair_matches(const RsaPublicKey& pub, const RsaPrivateKey& priv) {
  if (!(pub.n == priv.n)) return false;
  if (pub.n.is_zero() || priv.d.is_zero()) return false;
  // Round-trip probes: x^(e*d) == x (mod n) for fixed x. Two probes make a
  // coincidental match on a wrong-but-related key astronomically unlikely.
  // One context serves all four exponentiations (pub.n == priv.n here).
  const auto ctx = MontgomeryCtx::cached(pub.n);
  for (std::uint64_t probe : {0x42ULL, 0xdeadbeefULL}) {
    const BigUint x = BigUint(probe) % pub.n;
    const BigUint y = pow_mod(ctx, x, pub.e, pub.n);
    const BigUint back = pow_mod(ctx, y, priv.d, priv.n);
    if (!(back == x)) return false;
  }
  return true;
}

}  // namespace bcwan::crypto

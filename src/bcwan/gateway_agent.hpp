// The foreign gateway (paper: Raspberry Pi + RFM95 LoRa shield, plus the
// Golang BcWAN daemon wrapping Multichain).
//
// Runs the gateway's half of Fig. 3:
//   1-2. mints a fresh ephemeral RSA-512 pair per uplink request and
//        downlinks ePk;
//   6.   looks the recipient's IP up in the blockchain directory;
//   7.   forwards (Em, ePk, Sig) over simulated TCP;
//   10.  watches the mempool for the recipient's Listing-1 offer and
//        redeems it, revealing eSk on-chain — optionally only after the
//        offer has k confirmations (the §6 double-spend trade-off).
//
// Recovery (§6 extension):
//   * every accepted data frame is ACKed over the radio (and duplicates
//     from retransmitting nodes are re-ACKed);
//   * a data frame with no matching ephemeral key (state lost in a crash)
//     answers with a fresh ePk so the node can re-seal;
//   * DELIVER is retried with exponential backoff until the recipient
//     acknowledges it (DELIVER_ACK over the WAN);
//   * redeem transactions evicted by a reorg are re-submitted until they
//     confirm or the offer is settled another way;
//   * issued keys and awaited offers age out on a housekeeping sweep, so
//     long runs don't grow memory without bound.
// crash()/restart() emulate a gateway process dying: all in-flight state
// (issued keys, awaited offers, pending delivers/redeems) is dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bcwan/directory.hpp"
#include "bcwan/envelope.hpp"
#include "bcwan/timing.hpp"
#include "chain/wallet.hpp"
#include "lora/radio.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/event_loop.hpp"

namespace bcwan::core {

/// Byzantine behaviours a gateway can be flipped into by sim/adversary.
/// kHonest is the protocol; the others attack the fair exchange of Fig. 3:
///  * kWithholdKey: take the recipient's offer but never reveal eSk —
///    forces the OP_CHECKLOCKTIMEVERIFY reclaim branch of Listing 1.
///  * kGarbleKey: reveal a well-formed but *wrong* RSA-512 private key —
///    must be rejected by OP_CHECKRSA512PAIR at every validating node.
///  * kDoubleClaim: reveal honestly, then submit a second, conflicting
///    redeem of the same offer output (first-seen mempools must refuse it).
enum class GatewayMisbehavior {
  kHonest,
  kWithholdKey,
  kGarbleKey,
  kDoubleClaim,
};

struct GatewayConfig {
  /// Confirmations required on the offer before revealing eSk. The paper's
  /// PoC uses 0 ("we chose to allow the foreign gateway to not wait for
  /// confirmation ... This can be a security threat", §6).
  int confirmations_required = 0;
  chain::Amount redeem_fee = 500;
  /// Asking price per delivered message, quoted in the DELIVER payload.
  chain::Amount price_quote = chain::kCoin / 100;
  /// Forget an ephemeral key if no offer shows up for this long.
  util::SimTime offer_timeout = 30 * util::kMinute;
  /// Forget an issued-but-unconsumed ephemeral key after this long (the
  /// node never sent data, or died mid-exchange).
  util::SimTime issued_key_timeout = 30 * util::kMinute;
  /// DELIVER retry: base delay, doubled per attempt with jitter.
  util::SimTime deliver_retry_base = 5 * util::kSecond;
  int max_deliver_retries = 8;
  double backoff_factor = 2.0;
  util::SimTime max_backoff = 4 * util::kMinute;
  double backoff_jitter = 0.25;
  /// Drop a submitted redeem from the re-broadcast watch once it has this
  /// many confirmations.
  int redeem_confirm_depth = 1;
  int max_redeem_resubmits = 20;
  /// Period of the state-expiry sweep.
  util::SimTime housekeeping_interval = 30 * util::kSecond;
  /// Re-ACK window for duplicate data frames after the original was
  /// consumed (covers lost DataAck downlinks).
  util::SimTime reack_window = 10 * util::kMinute;
  /// Replay defence: remember the payload fingerprint of every consumed
  /// DATA frame this long. A duplicate inside reack_window is the node's
  /// own retransmission (re-ACK it); beyond that it is a replay and is
  /// silently dropped — never re-keyed, never forwarded, never settled.
  util::SimTime replay_window = util::kHour;
};

class GatewayAgent {
 public:
  GatewayAgent(p2p::EventLoop& loop, p2p::Transport& net, lora::LoraRadio& radio,
               p2p::ChainNode& node, Directory& directory,
               chain::Wallet wallet, TimingModel timing, GatewayConfig config,
               std::uint64_t seed);

  /// Must be called once after the radio gateway is registered.
  void attach_radio(lora::RadioGatewayId gateway);
  /// The uplink handler to register with the radio.
  void on_uplink(lora::RadioDeviceId from, const util::Bytes& frame);
  /// WAN entry point (DELIVER_ACK from recipients). Wire through the
  /// host's app handler alongside the recipient's.
  void handle_message(const p2p::Message& msg);

  /// Fault injection: drop the process. All in-flight exchange state is
  /// lost; the radio and chain daemon keep running (they are separate
  /// boxes in the paper's deployment).
  void crash();
  void restart();
  bool alive() const noexcept { return alive_; }

  /// Adversary injection (sim/adversary): flip this gateway byzantine.
  /// Takes effect on the next redeem; kHonest restores protocol behaviour.
  void set_misbehavior(GatewayMisbehavior m) noexcept { misbehavior_ = m; }
  GatewayMisbehavior misbehavior() const noexcept { return misbehavior_; }
  /// Fee-sniping: a withholding gateway sits on its redeems, then dumps
  /// them all the moment the recipient's reclaim appears — racing the
  /// timeout boundary. Returns the number of redeems released.
  std::size_t release_withheld_redeems();

  const chain::Wallet& wallet() const noexcept { return wallet_; }
  const script::PubKeyHash& pkh() const noexcept { return wallet_.pkh(); }

  /// Fired when the ephemeral key leaves the antenna — the paper's Fig. 5/6
  /// latency clock starts here ("from the first message from the gateway").
  std::function<void(std::uint16_t device_id)> on_ephemeral_sent;
  /// Fired when the DELIVER message has been sent to the recipient.
  std::function<void(std::uint16_t device_id)> on_forwarded;
  /// Fired when a redeem transaction is submitted (eSk revealed).
  std::function<void(std::uint16_t device_id)> on_redeemed;

  std::uint64_t keys_issued() const noexcept { return keys_issued_; }
  std::uint64_t frames_forwarded() const noexcept { return forwarded_; }
  std::uint64_t lookups_failed() const noexcept { return lookups_failed_; }
  std::uint64_t redeems_submitted() const noexcept { return redeems_; }
  std::uint64_t deliver_retries() const noexcept { return deliver_retries_; }
  std::uint64_t redeem_resubmits() const noexcept { return redeem_resubmits_; }
  std::uint64_t rekeys_issued() const noexcept { return rekeys_; }
  std::uint64_t keys_expired() const noexcept { return keys_expired_; }
  std::uint64_t offers_expired() const noexcept { return offers_expired_; }
  std::uint64_t redeems_withheld() const noexcept { return redeems_withheld_; }
  std::uint64_t garbled_submits() const noexcept { return garbled_submits_; }
  std::uint64_t garbled_rejected() const noexcept { return garbled_rejected_; }
  std::uint64_t double_claims() const noexcept { return double_claims_; }
  std::uint64_t double_claims_rejected() const noexcept {
    return double_claims_rejected_;
  }
  std::uint64_t replays_dropped() const noexcept { return replays_dropped_; }
  /// Reward actually banked (confirmed, mature outputs).
  chain::Amount confirmed_reward() const {
    return wallet_.balance(node_.chain());
  }

  /// In-flight state sizes (leak checks / invariants).
  std::size_t issued_key_count() const noexcept { return issued_keys_.size(); }
  std::size_t awaiting_offer_count() const noexcept {
    return awaiting_offer_.size();
  }
  std::size_t pending_redeem_count() const noexcept {
    return pending_redeems_.size();
  }
  std::size_t pending_deliver_count() const noexcept {
    return pending_delivers_.size();
  }
  std::size_t tracked_redeem_count() const noexcept {
    return submitted_redeems_.size();
  }

 private:
  struct PendingKey {
    crypto::RsaKeyPair keys;
    lora::RadioDeviceId radio_device = -1;
    util::SimTime issued_at = 0;
  };
  struct AwaitedOffer {
    crypto::RsaKeyPair keys;
    std::uint16_t device_id = 0;
    util::SimTime since = 0;
  };
  struct PendingRedeem {
    chain::OutPoint outpoint;
    chain::TxOut out;
    crypto::RsaPrivateKey ephemeral_priv;
    chain::Hash256 offer_txid{};
    std::uint16_t device_id = 0;
  };
  struct PendingDeliver {
    DeliverPayload payload;
    script::PubKeyHash recipient{};
    lora::RadioDeviceId radio_device = -1;
    int attempts = 0;
  };
  struct SubmittedRedeem {
    chain::Transaction tx;
    chain::Hash256 txid{};
    chain::OutPoint offer_outpoint;
    std::uint16_t device_id = 0;
    int resubmits = 0;
  };

  void handle_request(lora::RadioDeviceId from,
                      const lora::UplinkRequestFrame& frame);
  void send_ephemeral_key(std::uint16_t device_id, lora::RadioDeviceId from,
                          const util::Bytes& frame);
  void handle_data(lora::RadioDeviceId from, const lora::UplinkDataFrame& frame);
  void send_data_ack(std::uint16_t device_id, lora::RadioDeviceId from);
  void send_deliver(const std::string& handle);
  void on_mempool_tx(const chain::Transaction& tx);
  void on_block(const chain::Block& block);
  void submit_redeem(const PendingRedeem& redeem);
  void revisit_submitted_redeems();
  void schedule_housekeeping();
  void housekeeping();
  util::SimTime backoff_delay(util::SimTime base, int attempt);

  p2p::EventLoop& loop_;
  p2p::Transport& net_;
  lora::LoraRadio& radio_;
  p2p::ChainNode& node_;
  Directory& directory_;
  chain::Wallet wallet_;
  TimingModel timing_;
  GatewayConfig config_;
  util::Rng rng_;
  lora::RadioGatewayId radio_gateway_ = -1;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;  // invalidates callbacks armed before a crash
  GatewayMisbehavior misbehavior_ = GatewayMisbehavior::kHonest;
  // Redeems held back under kWithholdKey (released by a fee-snipe).
  std::vector<PendingRedeem> withheld_redeems_;
  // Lazily minted decoy pair for kGarbleKey (wrong but well-formed eSk).
  std::optional<crypto::RsaKeyPair> decoy_keys_;

  // device id -> key pair issued and not yet consumed by a data frame.
  std::unordered_map<std::uint16_t, PendingKey> issued_keys_;
  // serialized ePk -> keys, waiting for the recipient's offer.
  std::unordered_map<std::string, AwaitedOffer> awaiting_offer_;
  // offers seen but still waiting for confirmations.
  std::vector<PendingRedeem> pending_redeems_;
  // serialized ePk -> DELIVER awaiting the recipient's DELIVER_ACK.
  std::unordered_map<std::string, PendingDeliver> pending_delivers_;
  // device id -> last consumed data frame (re-ACK duplicates).
  std::unordered_map<std::uint16_t, util::SimTime> recent_data_;
  // payload fingerprint -> first-seen time (replay defence; aged out after
  // replay_window by housekeeping).
  std::unordered_map<std::string, util::SimTime> seen_payloads_;
  // redeems submitted but not yet buried (reorg re-broadcast watch).
  std::vector<SubmittedRedeem> submitted_redeems_;

  std::uint64_t keys_issued_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t lookups_failed_ = 0;
  std::uint64_t redeems_ = 0;
  std::uint64_t deliver_retries_ = 0;
  std::uint64_t redeem_resubmits_ = 0;
  std::uint64_t rekeys_ = 0;
  std::uint64_t keys_expired_ = 0;
  std::uint64_t offers_expired_ = 0;
  std::uint64_t redeems_withheld_ = 0;
  std::uint64_t garbled_submits_ = 0;
  std::uint64_t garbled_rejected_ = 0;
  std::uint64_t double_claims_ = 0;
  std::uint64_t double_claims_rejected_ = 0;
  std::uint64_t replays_dropped_ = 0;
};

}  // namespace bcwan::core

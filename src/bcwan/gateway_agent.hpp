// The foreign gateway (paper: Raspberry Pi + RFM95 LoRa shield, plus the
// Golang BcWAN daemon wrapping Multichain).
//
// Runs the gateway's half of Fig. 3:
//   1-2. mints a fresh ephemeral RSA-512 pair per uplink request and
//        downlinks ePk;
//   6.   looks the recipient's IP up in the blockchain directory;
//   7.   forwards (Em, ePk, Sig) over simulated TCP;
//   10.  watches the mempool for the recipient's Listing-1 offer and
//        redeems it, revealing eSk on-chain — optionally only after the
//        offer has k confirmations (the §6 double-spend trade-off).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "bcwan/directory.hpp"
#include "bcwan/envelope.hpp"
#include "bcwan/timing.hpp"
#include "chain/wallet.hpp"
#include "lora/radio.hpp"
#include "p2p/chain_node.hpp"

namespace bcwan::core {

struct GatewayConfig {
  /// Confirmations required on the offer before revealing eSk. The paper's
  /// PoC uses 0 ("we chose to allow the foreign gateway to not wait for
  /// confirmation ... This can be a security threat", §6).
  int confirmations_required = 0;
  chain::Amount redeem_fee = 500;
  /// Asking price per delivered message, quoted in the DELIVER payload.
  chain::Amount price_quote = chain::kCoin / 100;
  /// Forget an ephemeral key if no offer shows up for this long.
  util::SimTime offer_timeout = 30 * util::kMinute;
};

class GatewayAgent {
 public:
  GatewayAgent(p2p::EventLoop& loop, p2p::SimNet& net, lora::LoraRadio& radio,
               p2p::ChainNode& node, Directory& directory,
               chain::Wallet wallet, TimingModel timing, GatewayConfig config,
               std::uint64_t seed);

  /// Must be called once after the radio gateway is registered.
  void attach_radio(lora::RadioGatewayId gateway);
  /// The uplink handler to register with the radio.
  void on_uplink(lora::RadioDeviceId from, const util::Bytes& frame);

  const chain::Wallet& wallet() const noexcept { return wallet_; }
  const script::PubKeyHash& pkh() const noexcept { return wallet_.pkh(); }

  /// Fired when the ephemeral key leaves the antenna — the paper's Fig. 5/6
  /// latency clock starts here ("from the first message from the gateway").
  std::function<void(std::uint16_t device_id)> on_ephemeral_sent;
  /// Fired when the DELIVER message has been sent to the recipient.
  std::function<void(std::uint16_t device_id)> on_forwarded;
  /// Fired when a redeem transaction is submitted (eSk revealed).
  std::function<void(std::uint16_t device_id)> on_redeemed;

  std::uint64_t keys_issued() const noexcept { return keys_issued_; }
  std::uint64_t frames_forwarded() const noexcept { return forwarded_; }
  std::uint64_t lookups_failed() const noexcept { return lookups_failed_; }
  std::uint64_t redeems_submitted() const noexcept { return redeems_; }
  /// Reward actually banked (confirmed, mature outputs).
  chain::Amount confirmed_reward() const {
    return wallet_.balance(node_.chain());
  }

 private:
  struct PendingKey {
    crypto::RsaKeyPair keys;
    lora::RadioDeviceId radio_device = -1;
    util::SimTime issued_at = 0;
  };
  struct AwaitedOffer {
    crypto::RsaKeyPair keys;
    std::uint16_t device_id = 0;
  };
  struct PendingRedeem {
    chain::OutPoint outpoint;
    chain::TxOut out;
    crypto::RsaPrivateKey ephemeral_priv;
    chain::Hash256 offer_txid{};
    std::uint16_t device_id = 0;
  };

  void handle_request(lora::RadioDeviceId from,
                      const lora::UplinkRequestFrame& frame);
  void send_ephemeral_key(std::uint16_t device_id, lora::RadioDeviceId from,
                          const util::Bytes& frame);
  void handle_data(const lora::UplinkDataFrame& frame);
  void on_mempool_tx(const chain::Transaction& tx);
  void on_block(const chain::Block& block);
  void submit_redeem(const PendingRedeem& redeem);

  p2p::EventLoop& loop_;
  p2p::SimNet& net_;
  lora::LoraRadio& radio_;
  p2p::ChainNode& node_;
  Directory& directory_;
  chain::Wallet wallet_;
  TimingModel timing_;
  GatewayConfig config_;
  util::Rng rng_;
  lora::RadioGatewayId radio_gateway_ = -1;

  // device id -> key pair issued and not yet consumed by a data frame.
  std::unordered_map<std::uint16_t, PendingKey> issued_keys_;
  // serialized ePk -> keys, waiting for the recipient's offer.
  std::unordered_map<std::string, AwaitedOffer> awaiting_offer_;
  // offers seen but still waiting for confirmations.
  std::vector<PendingRedeem> pending_redeems_;

  std::uint64_t keys_issued_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t lookups_failed_ = 0;
  std::uint64_t redeems_ = 0;
};

}  // namespace bcwan::core

#include "bcwan/sensor_node.hpp"

#include <stdexcept>

namespace bcwan::core {

SensorNode::SensorNode(p2p::EventLoop& loop, lora::LoraRadio& radio,
                       NodeProvisioning provisioning, TimingModel timing,
                       SensorNodeConfig config, std::uint64_t seed)
    : loop_(loop),
      radio_(radio),
      provisioning_(std::move(provisioning)),
      timing_(timing),
      config_(config),
      rng_(seed) {}

void SensorNode::attach_radio(lora::RadioDeviceId device) {
  radio_device_ = device;
}

bool SensorNode::start_exchange(util::Bytes reading) {
  if (radio_device_ < 0)
    throw std::logic_error("SensorNode: radio not attached");
  if (busy()) return false;
  pending_reading_ = std::move(reading);
  retries_ = 0;
  ++started_;
  ++exchange_epoch_;
  send_request();
  return true;
}

void SensorNode::send_request() {
  if (!busy()) return;
  lora::UplinkRequestFrame request;
  request.device_id = provisioning_.device_id;
  const lora::TxResult tx = radio_.uplink(radio_device_, request.encode());
  if (!tx.accepted) {
    // Duty-cycle silence: retry as soon as the regulator allows.
    const std::uint64_t epoch = exchange_epoch_;
    loop_.at(tx.next_allowed, [this, epoch] {
      if (epoch == exchange_epoch_) send_request();
    });
    return;
  }
  // Arm the ePk timeout.
  const std::uint64_t epoch = exchange_epoch_;
  loop_.after(config_.ephemeral_key_timeout, [this, epoch] {
    if (epoch != exchange_epoch_ || !busy()) return;
    if (++retries_ > config_.max_request_retries) {
      fail_exchange();
    } else {
      send_request();
    }
  });
}

void SensorNode::on_downlink(const util::Bytes& frame) {
  const auto type = lora::peek_frame_type(frame);
  if (!type || *type != lora::FrameType::kEphemeralKey) return;
  const auto decoded = lora::EphemeralKeyFrame::decode(frame);
  if (!decoded || decoded->device_id != provisioning_.device_id) return;
  handle_ephemeral_key(*decoded);
}

void SensorNode::handle_ephemeral_key(const lora::EphemeralKeyFrame& frame) {
  if (!busy()) return;  // stale or duplicate key
  // Crypto happens "now"; the result becomes available node_seal later
  // (STM32-class AES + RSA-512 encrypt + sign).
  const Envelope envelope =
      seal_reading(provisioning_, *pending_reading_, frame.ephemeral_pub, rng_);
  const std::uint64_t epoch = ++exchange_epoch_;  // cancel the ePk timeout
  loop_.after(timing_.node_seal, [this, envelope, epoch] {
    if (epoch != exchange_epoch_ || !busy()) return;
    send_data(envelope);
  });
}

void SensorNode::send_data(const Envelope& envelope) {
  lora::UplinkDataFrame frame;
  frame.device_id = provisioning_.device_id;
  frame.recipient = provisioning_.recipient;
  frame.em = envelope.em;
  frame.sig = envelope.sig;
  const lora::TxResult tx = radio_.uplink(radio_device_, frame.encode());
  if (!tx.accepted) {
    const std::uint64_t epoch = exchange_epoch_;
    loop_.at(tx.next_allowed, [this, envelope, epoch] {
      if (epoch == exchange_epoch_ && busy()) send_data(envelope);
    });
    return;
  }
  pending_reading_.reset();
  ++exchange_epoch_;
  if (on_data_sent) on_data_sent(provisioning_.device_id);
}

void SensorNode::fail_exchange() {
  pending_reading_.reset();
  ++exchange_epoch_;
  ++abandoned_;
  if (on_exchange_failed) on_exchange_failed(provisioning_.device_id);
}

}  // namespace bcwan::core

#include "bcwan/sensor_node.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcwan::core {

SensorNode::SensorNode(p2p::EventLoop& loop, lora::LoraRadio& radio,
                       NodeProvisioning provisioning, TimingModel timing,
                       SensorNodeConfig config, std::uint64_t seed)
    : loop_(loop),
      radio_(radio),
      provisioning_(std::move(provisioning)),
      timing_(timing),
      config_(config),
      rng_(seed) {}

void SensorNode::attach_radio(lora::RadioDeviceId device) {
  radio_device_ = device;
}

bool SensorNode::start_exchange(util::Bytes reading) {
  if (radio_device_ < 0)
    throw std::logic_error("SensorNode: radio not attached");
  if (busy()) return false;
  pending_reading_ = std::move(reading);
  inflight_.reset();
  sealed_key_.clear();
  awaiting_ack_ = false;
  data_announced_ = false;
  retries_ = 0;
  data_retries_ = 0;
  restarts_ = 0;
  ++started_;
  ++exchange_epoch_;
  send_request();
  return true;
}

util::SimTime SensorNode::backoff_delay(util::SimTime base, int attempt) {
  double delay_s = util::to_seconds(base) *
                   std::pow(config_.backoff_factor, std::max(attempt, 0));
  delay_s = std::min(delay_s, util::to_seconds(config_.max_backoff));
  const double jitter =
      1.0 + config_.backoff_jitter * (2.0 * rng_.uniform() - 1.0);
  return std::max<util::SimTime>(util::from_seconds(delay_s * jitter),
                                 util::kMillisecond);
}

void SensorNode::send_request() {
  if (!busy()) return;
  lora::UplinkRequestFrame request;
  request.device_id = provisioning_.device_id;
  const lora::TxResult tx = radio_.uplink(radio_device_, request.encode());
  if (!tx.accepted) {
    // Duty-cycle silence: retry as soon as the regulator allows.
    const std::uint64_t epoch = exchange_epoch_;
    loop_.at(tx.next_allowed, [this, epoch] {
      if (epoch == exchange_epoch_) send_request();
    });
    return;
  }
  // Arm the ePk timeout (exponential backoff across retries).
  const std::uint64_t epoch = exchange_epoch_;
  loop_.after(backoff_delay(config_.ephemeral_key_timeout, retries_),
              [this, epoch] {
                if (epoch != exchange_epoch_ || !busy() || awaiting_ack_)
                  return;
                if (++retries_ > config_.max_request_retries) {
                  fail_exchange();
                } else {
                  ++request_retries_;
                  send_request();
                }
              });
}

void SensorNode::on_downlink(const util::Bytes& frame) {
  const auto type = lora::peek_frame_type(frame);
  if (!type) return;
  if (*type == lora::FrameType::kEphemeralKey) {
    const auto decoded = lora::EphemeralKeyFrame::decode(frame);
    if (decoded && decoded->device_id == provisioning_.device_id)
      handle_ephemeral_key(*decoded);
    return;
  }
  if (*type == lora::FrameType::kDataAck) {
    const auto decoded = lora::DataAckFrame::decode(frame);
    if (decoded && decoded->device_id == provisioning_.device_id)
      handle_data_ack();
  }
}

void SensorNode::handle_ephemeral_key(const lora::EphemeralKeyFrame& frame) {
  if (!busy()) return;  // stale or duplicate key
  if (awaiting_ack_) {
    // Data is in flight. The same key again is a stale duplicate downlink;
    // a *different* key means the gateway lost its ephemeral-key state
    // (crash/restart) and re-keyed us: the sealed envelope is
    // cryptographically dead, so restart by re-sealing under the new key.
    if (frame.ephemeral_pub.serialize() == sealed_key_) return;
    if (++restarts_ > config_.max_exchange_restarts) {
      fail_exchange();
      return;
    }
    ++restarts_total_;
    data_retries_ = 0;
  }
  seal_and_send(frame.ephemeral_pub);
}

void SensorNode::seal_and_send(const crypto::RsaPublicKey& ephemeral_pub) {
  // Crypto happens "now"; the result becomes available node_seal later
  // (STM32-class AES + RSA-512 encrypt + sign).
  const Envelope envelope =
      seal_reading(provisioning_, *pending_reading_, ephemeral_pub, rng_);
  const std::uint64_t epoch = ++exchange_epoch_;  // cancel pending timeouts
  awaiting_ack_ = false;
  sealed_key_ = ephemeral_pub.serialize();
  loop_.after(timing_.node_seal, [this, envelope, epoch] {
    if (epoch != exchange_epoch_ || !busy()) return;
    inflight_ = envelope;
    send_data();
  });
}

void SensorNode::send_data() {
  if (!busy() || !inflight_) return;
  lora::UplinkDataFrame frame;
  frame.device_id = provisioning_.device_id;
  frame.recipient = provisioning_.recipient;
  frame.em = inflight_->em;
  frame.sig = inflight_->sig;
  const lora::TxResult tx = radio_.uplink(radio_device_, frame.encode());
  const std::uint64_t epoch = exchange_epoch_;
  if (!tx.accepted) {
    loop_.at(tx.next_allowed, [this, epoch] {
      if (epoch == exchange_epoch_ && busy()) send_data();
    });
    return;
  }
  awaiting_ack_ = true;
  if (!data_announced_) {
    data_announced_ = true;
    if (on_data_sent) on_data_sent(provisioning_.device_id);
  }
  // Arm the ACK timeout; a silent gateway triggers retransmission.
  loop_.after(backoff_delay(config_.data_ack_timeout, data_retries_),
              [this, epoch] {
                if (epoch != exchange_epoch_ || !busy() || !awaiting_ack_)
                  return;
                if (++data_retries_ > config_.max_data_retries) {
                  restart_exchange();
                } else {
                  ++data_retransmissions_;
                  send_data();
                }
              });
}

void SensorNode::handle_data_ack() {
  if (!busy() || !awaiting_ack_) return;
  ++acks_;
  pending_reading_.reset();
  inflight_.reset();
  sealed_key_.clear();
  awaiting_ack_ = false;
  ++exchange_epoch_;
}

void SensorNode::restart_exchange() {
  // Data retries exhausted without an ACK: the gateway may be gone or our
  // sealed envelope may be undecryptable on its side. Go back to step 1
  // with the same reading, bounded by max_exchange_restarts.
  if (++restarts_ > config_.max_exchange_restarts) {
    fail_exchange();
    return;
  }
  ++restarts_total_;
  ++exchange_epoch_;
  inflight_.reset();
  sealed_key_.clear();
  awaiting_ack_ = false;
  retries_ = 0;
  data_retries_ = 0;
  send_request();
}

void SensorNode::fail_exchange() {
  pending_reading_.reset();
  inflight_.reset();
  sealed_key_.clear();
  awaiting_ack_ = false;
  ++exchange_epoch_;
  ++abandoned_;
  if (on_exchange_failed) on_exchange_failed(provisioning_.device_id);
}

}  // namespace bcwan::core

#include "bcwan/fair_exchange.hpp"

namespace bcwan::core {

std::optional<chain::Transaction> FairExchangeSeller::try_redeem(
    const chain::Transaction& candidate_offer, chain::Amount fee) {
  if (state_ != State::kAwaitingOffer) return std::nullopt;
  const chain::Hash256 txid = candidate_offer.txid();
  for (std::uint32_t v = 0; v < candidate_offer.vout.size(); ++v) {
    const auto classified =
        script::classify(candidate_offer.vout[v].script_pubkey);
    if (classified.type != script::ScriptType::kKeyRelease) continue;
    if (classified.pubkey_hash != wallet_.pkh()) continue;
    if (!classified.ephemeral_pub ||
        !(*classified.ephemeral_pub == ephemeral_.pub)) {
      continue;
    }
    state_ = State::kRedeemed;
    return wallet_.create_redeem(chain::OutPoint{txid, v},
                                 candidate_offer.vout[v], ephemeral_.priv,
                                 fee);
  }
  return std::nullopt;
}

std::optional<chain::Transaction> FairExchangeBuyer::make_offer(
    const chain::Blockchain& chain, const chain::Mempool* pool) {
  if (state_ != State::kInit) return std::nullopt;
  timeout_height_ = chain.height() + timeout_blocks_;
  const auto offer = wallet_.create_key_release_offer(
      chain, pool, ephemeral_pub_, seller_, price_, fee_, timeout_height_);
  if (!offer) return std::nullopt;
  offer_outpoint_ = chain::OutPoint{offer->txid(), 0};
  offer_out_ = offer->vout[0];
  state_ = State::kOffered;
  return offer;
}

std::optional<crypto::RsaPrivateKey> FairExchangeBuyer::observe(
    const chain::Transaction& tx) {
  if (state_ != State::kOffered) return std::nullopt;
  for (const chain::TxIn& in : tx.vin) {
    if (!(in.prevout == offer_outpoint_)) continue;
    const auto revealed = script::extract_revealed_key(in.script_sig);
    if (!revealed) continue;  // our own reclaim or malformed spend
    if (!crypto::rsa_pair_matches(ephemeral_pub_, *revealed)) continue;
    state_ = State::kSettled;
    return revealed;
  }
  return std::nullopt;
}

std::optional<chain::Transaction> FairExchangeBuyer::make_reclaim(
    int current_height) {
  if (state_ != State::kOffered) return std::nullopt;
  if (current_height + 1 < timeout_height_) return std::nullopt;
  state_ = State::kReclaimed;
  return wallet_.create_reclaim(offer_outpoint_, offer_out_, timeout_height_,
                                fee_);
}

}  // namespace bcwan::core

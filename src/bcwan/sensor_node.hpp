// The IoT end-device (paper: Nucleo-144/STM32F746 "node").
//
// Runs the node's half of the Fig. 3 exchange over the LoRa radio:
//   1. sends an uplink request;
//   2. waits for the gateway's ephemeral public key ePk;
//   3-4. seals the reading (AES under K, RSA under ePk, RSA-signs);
//   5. uplinks (Em, Sig, @R).
// Sealing costs virtual time (TimingModel::node_seal); transmissions obey
// the device's duty cycle, with retries when the radio says "not yet" and a
// timeout/retry loop when the ePk downlink is lost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "bcwan/envelope.hpp"
#include "bcwan/timing.hpp"
#include "lora/radio.hpp"
#include "p2p/event_loop.hpp"

namespace bcwan::core {

struct SensorNodeConfig {
  /// Give up waiting for ePk after this long and re-request.
  util::SimTime ephemeral_key_timeout = 30 * util::kSecond;
  int max_request_retries = 5;
};

class SensorNode {
 public:
  SensorNode(p2p::EventLoop& loop, lora::LoraRadio& radio,
             NodeProvisioning provisioning, TimingModel timing,
             SensorNodeConfig config, std::uint64_t seed);

  /// Must be called once after the radio device is registered (the radio
  /// needs a downlink handler that references this object).
  void attach_radio(lora::RadioDeviceId device);
  /// The downlink handler to register with the radio.
  void on_downlink(const util::Bytes& frame);

  /// Kick off one exchange for this reading. Returns false if an exchange
  /// is already in flight (one at a time per device).
  bool start_exchange(util::Bytes reading);

  bool busy() const noexcept { return pending_reading_.has_value(); }
  std::uint16_t device_id() const noexcept { return provisioning_.device_id; }
  const NodeProvisioning& provisioning() const noexcept {
    return provisioning_;
  }

  /// Fired when the data frame has been handed to the radio (step 5 done
  /// from the node's perspective).
  std::function<void(std::uint16_t device_id)> on_data_sent;
  /// Fired when all retries are exhausted.
  std::function<void(std::uint16_t device_id)> on_exchange_failed;

  std::uint64_t exchanges_started() const noexcept { return started_; }
  std::uint64_t exchanges_abandoned() const noexcept { return abandoned_; }

 private:
  void send_request();
  void handle_ephemeral_key(const lora::EphemeralKeyFrame& frame);
  void send_data(const Envelope& envelope);
  void fail_exchange();

  p2p::EventLoop& loop_;
  lora::LoraRadio& radio_;
  NodeProvisioning provisioning_;
  TimingModel timing_;
  SensorNodeConfig config_;
  util::Rng rng_;
  lora::RadioDeviceId radio_device_ = -1;

  std::optional<util::Bytes> pending_reading_;
  int retries_ = 0;
  std::uint64_t exchange_epoch_ = 0;  // invalidates stale timeout callbacks
  std::uint64_t started_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace bcwan::core

// The IoT end-device (paper: Nucleo-144/STM32F746 "node").
//
// Runs the node's half of the Fig. 3 exchange over the LoRa radio:
//   1. sends an uplink request;
//   2. waits for the gateway's ephemeral public key ePk;
//   3-4. seals the reading (AES under K, RSA under ePk, RSA-signs);
//   5. uplinks (Em, Sig, @R) and waits for the gateway's data ACK.
// Sealing costs virtual time (TimingModel::node_seal); transmissions obey
// the device's duty cycle.
//
// Recovery (§6 extension): every radio step retries with exponential
// backoff + jitter, bounded below by the duty-cycle budget. A lost ePk
// downlink re-requests; a lost data frame (no ACK) retransmits; a gateway
// that lost its ephemeral key state (crash/restart) answers the
// retransmission with a fresh ePk, and the node restarts the exchange by
// re-sealing the same reading under the new key.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "bcwan/envelope.hpp"
#include "bcwan/timing.hpp"
#include "lora/radio.hpp"
#include "p2p/event_loop.hpp"

namespace bcwan::core {

struct SensorNodeConfig {
  /// Base wait for ePk before re-requesting; doubles per retry.
  util::SimTime ephemeral_key_timeout = 30 * util::kSecond;
  int max_request_retries = 5;
  /// Base wait for the gateway's data ACK before retransmitting the data
  /// frame; doubles per retry.
  util::SimTime data_ack_timeout = 20 * util::kSecond;
  int max_data_retries = 5;
  /// Full protocol restarts (fresh ePk, re-seal) before giving up — covers
  /// gateways that crashed away the ephemeral key the data was sealed for.
  int max_exchange_restarts = 3;
  /// Backoff shape: delay = base * factor^attempt, capped, +/- jitter.
  double backoff_factor = 2.0;
  util::SimTime max_backoff = 4 * util::kMinute;
  double backoff_jitter = 0.25;
};

class SensorNode {
 public:
  SensorNode(p2p::EventLoop& loop, lora::LoraRadio& radio,
             NodeProvisioning provisioning, TimingModel timing,
             SensorNodeConfig config, std::uint64_t seed);

  /// Must be called once after the radio device is registered (the radio
  /// needs a downlink handler that references this object).
  void attach_radio(lora::RadioDeviceId device);
  /// The downlink handler to register with the radio.
  void on_downlink(const util::Bytes& frame);

  /// Kick off one exchange for this reading. Returns false if an exchange
  /// is already in flight (one at a time per device).
  bool start_exchange(util::Bytes reading);

  /// In flight from start_exchange until the gateway ACKs the data frame
  /// (or the exchange fails).
  bool busy() const noexcept { return pending_reading_.has_value(); }
  std::uint16_t device_id() const noexcept { return provisioning_.device_id; }
  const NodeProvisioning& provisioning() const noexcept {
    return provisioning_;
  }

  /// Fired when the data frame has been handed to the radio for the first
  /// time (step 5 done from the node's perspective).
  std::function<void(std::uint16_t device_id)> on_data_sent;
  /// Fired when all retries are exhausted.
  std::function<void(std::uint16_t device_id)> on_exchange_failed;

  std::uint64_t exchanges_started() const noexcept { return started_; }
  std::uint64_t exchanges_abandoned() const noexcept { return abandoned_; }
  std::uint64_t request_retries() const noexcept { return request_retries_; }
  std::uint64_t data_retransmissions() const noexcept {
    return data_retransmissions_;
  }
  std::uint64_t exchange_restarts() const noexcept { return restarts_total_; }
  std::uint64_t acks_received() const noexcept { return acks_; }

 private:
  void send_request();
  void handle_ephemeral_key(const lora::EphemeralKeyFrame& frame);
  void handle_data_ack();
  void seal_and_send(const crypto::RsaPublicKey& ephemeral_pub);
  void send_data();
  void restart_exchange();
  void fail_exchange();
  /// base * factor^attempt, capped at max_backoff, with +/- jitter.
  util::SimTime backoff_delay(util::SimTime base, int attempt);

  p2p::EventLoop& loop_;
  lora::LoraRadio& radio_;
  NodeProvisioning provisioning_;
  TimingModel timing_;
  SensorNodeConfig config_;
  util::Rng rng_;
  lora::RadioDeviceId radio_device_ = -1;

  std::optional<util::Bytes> pending_reading_;
  std::optional<Envelope> inflight_;     // sealed data being (re)transmitted
  util::Bytes sealed_key_;               // serialized ePk inflight_ was sealed under
  bool awaiting_ack_ = false;
  bool data_announced_ = false;          // on_data_sent fired for this exchange
  int retries_ = 0;                      // ePk request attempts this round
  int data_retries_ = 0;                 // data retransmissions this round
  int restarts_ = 0;                     // protocol restarts this exchange
  std::uint64_t exchange_epoch_ = 0;     // invalidates stale timeout callbacks
  std::uint64_t started_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t request_retries_ = 0;
  std::uint64_t data_retransmissions_ = 0;
  std::uint64_t restarts_total_ = 0;
  std::uint64_t acks_ = 0;
};

}  // namespace bcwan::core

// Master-gateway election (paper §4.2, footnote 3).
//
// "For the sake of simplicity, we assume that each actor of the network
// possesses only one gateway. With several gateways per actor, each actor
// will have to elect one of his gateways as the master gateway. The master
// gateway is the gateway to whom all the actor's devices have to address
// their data to."
//
// The election here is deterministic and verifiable by anyone who knows
// the candidate set: the winner is the gateway whose HASH160 identity is
// smallest when hashed together with an epoch number — a rotating,
// stake-free analogue of the PoS slot schedule that needs no extra
// messages. Provisioning bakes the elected master's radio into each
// device, matching the footnote's semantics.
#pragma once

#include <vector>

#include "script/templates.hpp"

namespace bcwan::core {

/// Index of the elected master among `gateway_identities` for `epoch`.
/// Deterministic; every federation member computes the same winner.
/// Requires a non-empty candidate set.
std::size_t elect_master_gateway(
    const std::vector<script::PubKeyHash>& gateway_identities, int epoch = 0);

/// Sybil-resistant variant: weighted election (Efraimidis–Spirakis A-Res
/// over the same epoch tickets). Each candidate i wins with probability
/// proportional to weights[i], so an attacker who registers k zero-cost
/// identities gains nothing unless it also acquires weight (stake, paid
/// registration, attested hardware — whatever the deployment prices).
/// The unweighted election is the uniform special case and is exactly
/// k/(n+k) vulnerable to a k-identity Sybil swarm.
///
/// Deterministic for a given (identities, weights, epoch); candidates with
/// weight <= 0 can never win. Throws if sizes mismatch or no candidate has
/// positive weight.
std::size_t elect_master_gateway_weighted(
    const std::vector<script::PubKeyHash>& gateway_identities,
    const std::vector<double>& weights, int epoch = 0);

}  // namespace bcwan::core

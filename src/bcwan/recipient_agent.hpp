// The recipient (the actor's application-server side, co-located with its
// own gateway host in the federation).
//
// Runs the recipient's half of Fig. 3:
//   8.  verifies the envelope signature with the device's provisioned Pk;
//   9.  posts the Listing-1 offer transaction paying the forwarding
//       gateway for eSk;
//   10. watches the mempool for the gateway's redeem, extracts eSk from
//       its scriptSig, peels RSA then AES, and hands the reading to the
//       application;
//   — and if the gateway never reveals, reclaims the offer through the
//     OP_CHECKLOCKTIMEVERIFY branch after the timeout height.
//
// It also owns the directory announcement for its IP (§4.3).
//
// Recovery (§6 extension):
//   * every well-formed DELIVER is answered with a DELIVER_ACK so the
//     gateway's retry loop can stop — including rejects, which would
//     otherwise be retried for nothing;
//   * retransmitted DELIVERs for an exchange already in flight are
//     deduplicated by ephemeral key (no double offer);
//   * offer and reclaim transactions evicted by a reorg are re-broadcast
//     until they confirm or their conflict wins.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bcwan/directory.hpp"
#include "bcwan/envelope.hpp"
#include "bcwan/timing.hpp"
#include "chain/wallet.hpp"
#include "p2p/chain_node.hpp"
#include "p2p/event_loop.hpp"

namespace bcwan::core {

struct RecipientConfig {
  /// Fallback price when the gateway quotes nothing (legacy fixed mode).
  chain::Amount price = chain::kCoin / 100;
  /// Ceiling for negotiated quotes: a DELIVER asking more than this is
  /// declined (no offer is posted; the gateway forwarded for nothing).
  chain::Amount max_price = chain::kCoin / 50;
  chain::Amount offer_fee = 500;
  chain::Amount reclaim_fee = 500;
  /// Blocks until the CLTV reclaim branch opens (paper: height + 100).
  int timeout_blocks = 100;
  /// Refuse to pay (misbehaving-recipient experiments).
  bool pay_for_data = true;
  /// Reorg recovery: re-broadcast budget for evicted offers/reclaims.
  int max_rebroadcasts = 20;
  /// Retransmitted DELIVERs within this window of an accepted one are
  /// duplicates, not new exchanges.
  util::SimTime deliver_dedupe_window = util::kHour;
};

class RecipientAgent {
 public:
  RecipientAgent(p2p::EventLoop& loop, p2p::Transport& net, p2p::ChainNode& node,
                 chain::Wallet wallet, TimingModel timing,
                 RecipientConfig config, std::uint64_t seed);

  /// Provisioning registration: the recipient's view of a device is
  /// (device id, K, Pk).
  void register_device(const NodeProvisioning& provisioning);

  /// Publish this recipient's IP in the blockchain directory.
  bool announce_ip(IpAddress ip, std::uint16_t port);

  /// Entry point for DELIVER messages (wire through the host's app
  /// handler).
  void handle_message(const p2p::Message& msg);

  const chain::Wallet& wallet() const noexcept { return wallet_; }
  const script::PubKeyHash& pkh() const noexcept { return wallet_.pkh(); }

  /// Fired when a reading has been decrypted and handed to the application.
  std::function<void(std::uint16_t device_id, const util::Bytes& reading)>
      on_reading;
  /// Fired when an offer transaction enters the local mempool.
  std::function<void(std::uint16_t device_id)> on_offer_posted;
  /// Fired when a reclaim is submitted after a gateway withheld eSk.
  std::function<void(std::uint16_t device_id)> on_reclaimed;

  std::uint64_t deliveries_received() const noexcept { return deliveries_; }
  std::uint64_t signature_rejects() const noexcept { return sig_rejects_; }
  std::uint64_t price_rejects() const noexcept { return price_rejects_; }
  std::uint64_t offers_posted() const noexcept { return offers_; }
  std::uint64_t readings_decrypted() const noexcept { return decrypted_; }
  std::uint64_t reclaims_submitted() const noexcept { return reclaims_; }
  std::uint64_t duplicate_deliveries() const noexcept { return duplicates_; }
  std::uint64_t offer_rebroadcasts() const noexcept {
    return offer_rebroadcasts_;
  }
  std::uint64_t reclaim_rebroadcasts() const noexcept {
    return reclaim_rebroadcasts_;
  }
  std::uint64_t acks_sent() const noexcept { return acks_sent_; }
  /// Exchanges given up for good (rebroadcast budget exhausted with the
  /// offer or reclaim unrecoverable). Money may be stranded; the invariant
  /// layer counts these as explicit losses, never as silent leaks.
  std::uint64_t exchanges_abandoned() const noexcept {
    return exchanges_abandoned_;
  }

  /// Unsettled exchanges (leak checks / invariants).
  std::size_t pending_exchange_count() const noexcept {
    return pending_.size();
  }

 private:
  struct DeviceView {
    crypto::AesKey256 k{};
    crypto::RsaPublicKey verify_key;
  };
  struct PendingExchange {
    std::uint16_t device_id = 0;
    util::Bytes em;
    crypto::RsaPublicKey ephemeral_pub;
    chain::Transaction offer_tx;  // kept whole for reorg re-broadcast
    chain::Hash256 offer_txid{};
    chain::OutPoint offer_outpoint;
    chain::TxOut offer_out;
    std::int64_t timeout_height = 0;
    int rebroadcasts = 0;
    bool reclaiming = false;  // reclaim submitted, awaiting burial
    chain::Transaction reclaim_tx;
    chain::Hash256 reclaim_txid{};
    bool settled = false;
  };

  void handle_deliver(const DeliverPayload& payload);
  void post_offer(const DeliverPayload& payload, int attempt);
  void on_mempool_tx(const chain::Transaction& tx);
  void on_block(const chain::Block& block);
  /// If `in` spends this exchange's offer and carries a matching eSk,
  /// settle the exchange (decrypt + hand the reading up). Returns whether
  /// it settled. Shared by the mempool watcher and the block scanner.
  bool try_extract_reveal(PendingExchange& pending, const chain::TxIn& in);
  void maybe_reclaim(PendingExchange& pending, int height);
  void revisit_transactions(PendingExchange& pending);

  p2p::EventLoop& loop_;
  p2p::Transport& net_;
  p2p::ChainNode& node_;
  chain::Wallet wallet_;
  TimingModel timing_;
  RecipientConfig config_;
  util::Rng rng_;

  std::unordered_map<std::uint16_t, DeviceView> devices_;
  std::vector<PendingExchange> pending_;
  // serialized-ePk hex of accepted deliveries -> acceptance time (dedupe).
  std::unordered_map<std::string, util::SimTime> accepted_delivers_;

  std::uint64_t deliveries_ = 0;
  std::uint64_t sig_rejects_ = 0;
  std::uint64_t price_rejects_ = 0;
  std::uint64_t offers_ = 0;
  std::uint64_t decrypted_ = 0;
  std::uint64_t reclaims_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t offer_rebroadcasts_ = 0;
  std::uint64_t reclaim_rebroadcasts_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t exchanges_abandoned_ = 0;
};

}  // namespace bcwan::core

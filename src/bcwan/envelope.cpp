#include "bcwan/envelope.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/serial.hpp"

namespace bcwan::core {

NodeProvisioning provision_node(std::uint16_t device_id,
                                const script::PubKeyHash& recipient,
                                util::Rng& rng) {
  NodeProvisioning prov;
  prov.device_id = device_id;
  const util::Bytes key = rng.bytes(prov.k.size());
  std::copy(key.begin(), key.end(), prov.k.begin());
  const crypto::RsaKeyPair identity = crypto::rsa_generate(rng, 512);
  prov.node_signing_key = identity.priv;
  prov.node_verify_key = identity.pub;
  prov.recipient = recipient;
  return prov;
}

Envelope seal_reading(const NodeProvisioning& prov, util::ByteView reading,
                      const crypto::RsaPublicKey& ephemeral_pub,
                      util::Rng& rng) {
  if (reading.size() >= crypto::kAesBlockSize) {
    throw std::invalid_argument(
        "seal_reading: reading must be under one AES block (paper §5.1)");
  }
  lora::InnerBlob blob;
  const util::Bytes iv = rng.bytes(blob.iv.size());
  std::copy(iv.begin(), iv.end(), blob.iv.begin());
  blob.ciphertext = crypto::aes256_cbc_encrypt(prov.k, blob.iv, reading);

  Envelope envelope;
  envelope.em = crypto::rsa_encrypt(ephemeral_pub, blob.encode(), rng);
  const util::Bytes signed_payload =
      util::concat({envelope.em, ephemeral_pub.serialize()});
  envelope.sig = crypto::rsa_sign(prov.node_signing_key, signed_payload);
  return envelope;
}

bool verify_envelope(const crypto::RsaPublicKey& node_verify_key,
                     const Envelope& envelope,
                     const crypto::RsaPublicKey& ephemeral_pub) {
  const util::Bytes signed_payload =
      util::concat({envelope.em, ephemeral_pub.serialize()});
  return crypto::rsa_verify(node_verify_key, signed_payload, envelope.sig);
}

std::optional<util::Bytes> open_envelope(const crypto::AesKey256& k,
                                         const crypto::RsaPrivateKey& eSk,
                                         util::ByteView em) {
  const auto blob_bytes = crypto::rsa_decrypt(eSk, em);
  if (!blob_bytes) return std::nullopt;
  const auto blob = lora::InnerBlob::decode(*blob_bytes);
  if (!blob) return std::nullopt;
  return crypto::aes256_cbc_decrypt(k, blob->iv, blob->ciphertext);
}

util::Bytes DeliverPayload::serialize() const {
  util::Writer w;
  w.u16(device_id);
  w.var_bytes(em);
  w.var_bytes(sig);
  w.var_bytes(ephemeral_pub.serialize());
  w.bytes(util::ByteView(gateway.data(), gateway.size()));
  w.u64(static_cast<std::uint64_t>(price_quote));
  return w.take();
}

std::optional<DeliverPayload> DeliverPayload::deserialize(
    util::ByteView data) {
  try {
    util::Reader r(data);
    DeliverPayload payload;
    payload.device_id = r.u16();
    payload.em = r.var_bytes();
    payload.sig = r.var_bytes();
    const auto pub = crypto::RsaPublicKey::deserialize(r.var_bytes());
    if (!pub) return std::nullopt;
    payload.ephemeral_pub = *pub;
    const util::Bytes gw = r.bytes(payload.gateway.size());
    std::copy(gw.begin(), gw.end(), payload.gateway.begin());
    payload.price_quote = static_cast<std::int64_t>(r.u64());
    r.expect_done();
    if (payload.price_quote < 0) return std::nullopt;
    return payload;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

}  // namespace bcwan::core

#include "bcwan/election.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "crypto/sha256.hpp"
#include "util/serial.hpp"

namespace bcwan::core {

std::size_t elect_master_gateway(
    const std::vector<script::PubKeyHash>& gateway_identities, int epoch) {
  if (gateway_identities.empty())
    throw std::invalid_argument("elect_master_gateway: no candidates");
  std::size_t winner = 0;
  crypto::Digest256 best{};
  bool first = true;
  for (std::size_t i = 0; i < gateway_identities.size(); ++i) {
    util::Writer w;
    w.bytes(util::ByteView(gateway_identities[i].data(),
                           gateway_identities[i].size()));
    w.u32(static_cast<std::uint32_t>(epoch));
    const crypto::Digest256 ticket = crypto::sha256(w.data());
    if (first || ticket < best) {
      best = ticket;
      winner = i;
      first = false;
    }
  }
  return winner;
}

std::size_t elect_master_gateway_weighted(
    const std::vector<script::PubKeyHash>& gateway_identities,
    const std::vector<double>& weights, int epoch) {
  if (gateway_identities.empty())
    throw std::invalid_argument("elect_master_gateway_weighted: no candidates");
  if (gateway_identities.size() != weights.size())
    throw std::invalid_argument(
        "elect_master_gateway_weighted: weights/identities size mismatch");
  // Efraimidis–Spirakis: candidate i draws u_i uniform from its ticket and
  // scores -ln(u_i)/w_i; the minimum score wins with probability w_i / Σw.
  std::size_t winner = gateway_identities.size();
  double best = 0.0;
  for (std::size_t i = 0; i < gateway_identities.size(); ++i) {
    if (!(weights[i] > 0.0)) continue;
    util::Writer w;
    w.bytes(util::ByteView(gateway_identities[i].data(),
                           gateway_identities[i].size()));
    w.u32(static_cast<std::uint32_t>(epoch));
    const crypto::Digest256 ticket = crypto::sha256(w.data());
    std::uint64_t raw = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      raw = (raw << 8) | ticket[b];
    }
    // Map to (0, 1]: u = (raw + 1) / 2^64. Never zero, so log() is finite.
    const double u =
        (static_cast<double>(raw) + 1.0) / 18446744073709551616.0;
    const double score = -std::log(u) / weights[i];
    if (winner == gateway_identities.size() || score < best) {
      best = score;
      winner = i;
    }
  }
  if (winner == gateway_identities.size())
    throw std::invalid_argument(
        "elect_master_gateway_weighted: no candidate with positive weight");
  return winner;
}

}  // namespace bcwan::core

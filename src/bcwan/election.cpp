#include "bcwan/election.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"
#include "util/serial.hpp"

namespace bcwan::core {

std::size_t elect_master_gateway(
    const std::vector<script::PubKeyHash>& gateway_identities, int epoch) {
  if (gateway_identities.empty())
    throw std::invalid_argument("elect_master_gateway: no candidates");
  std::size_t winner = 0;
  crypto::Digest256 best{};
  bool first = true;
  for (std::size_t i = 0; i < gateway_identities.size(); ++i) {
    util::Writer w;
    w.bytes(util::ByteView(gateway_identities[i].data(),
                           gateway_identities[i].size()));
    w.u32(static_cast<std::uint32_t>(epoch));
    const crypto::Digest256 ticket = crypto::sha256(w.data());
    if (first || ticket < best) {
      best = ticket;
      winner = i;
      first = false;
    }
  }
  return winner;
}

}  // namespace bcwan::core

// Message envelope crypto — protocol steps 3-4, 8 and 10-11 of Fig. 3,
// plus node provisioning.
//
// Provisioning (§4.4): "the node and the recipient share a symmetric key
// (K). ... The node and the recipient must also share a secret key (Sk), on
// the node, and a public key (Pk), on the recipient. A provisioning phase
// is therefore needed."
//
// Sealing (§5.1): the reading is AES-256-CBC encrypted under K with a
// random IV, packed into the Fig. 4 blob (34 bytes), RSA-encrypted under
// the gateway's ephemeral public key ePk (64 bytes), and the node signs
// (Em || ePk) with Ska (64 bytes).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/aes.hpp"
#include "crypto/rsa.hpp"
#include "lora/frame.hpp"
#include "script/templates.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bcwan::core {

/// Everything a node carries out of the provisioning phase. The recipient
/// keeps (K, Pk, device id); the node keeps (K, Ska, @R).
struct NodeProvisioning {
  std::uint16_t device_id = 0;
  crypto::AesKey256 k{};                  // shared symmetric key K
  crypto::RsaPrivateKey node_signing_key; // Ska (node side)
  crypto::RsaPublicKey node_verify_key;   // Pk  (recipient side)
  script::PubKeyHash recipient{};         // @R
};

/// Run the provisioning phase for one device.
NodeProvisioning provision_node(std::uint16_t device_id,
                                const script::PubKeyHash& recipient,
                                util::Rng& rng);

struct Envelope {
  util::Bytes em;   // RSA_ePk(Fig.4 blob), 64 bytes
  util::Bytes sig;  // RSA-sign_Ska(em || ePk), 64 bytes
};

/// Node side (steps 3-4). `reading` must fit one AES block (< 16 bytes),
/// per the paper's assumption about sensor payloads; longer readings throw.
Envelope seal_reading(const NodeProvisioning& prov, util::ByteView reading,
                      const crypto::RsaPublicKey& ephemeral_pub,
                      util::Rng& rng);

/// Recipient side, step 8: authenticity of (Em, ePk) under the node's Pk.
bool verify_envelope(const crypto::RsaPublicKey& node_verify_key,
                     const Envelope& envelope,
                     const crypto::RsaPublicKey& ephemeral_pub);

/// Recipient side, steps 10-11: peel RSA with the revealed eSk, then AES
/// with K. Returns the plaintext reading, or std::nullopt if either layer
/// fails.
std::optional<util::Bytes> open_envelope(const crypto::AesKey256& k,
                                         const crypto::RsaPrivateKey& eSk,
                                         util::ByteView em);

/// The gateway -> recipient TCP payload (protocol step 7): "The gateway
/// sends the message encryption (Em), the ephemeral public key (ePk) and
/// the signature (Sig) to the recipient using TCP/IP." The gateway also
/// identifies itself so the recipient knows whom to pay.
struct DeliverPayload {
  std::uint16_t device_id = 0;
  util::Bytes em;
  util::Bytes sig;
  crypto::RsaPublicKey ephemeral_pub;
  script::PubKeyHash gateway{};  // reward destination
  /// The gateway's asking price for eSk (protocol step 9: the offer output
  /// is "fixed or negotiated with the gateway" — this is the negotiation).
  std::int64_t price_quote = 0;

  util::Bytes serialize() const;
  static std::optional<DeliverPayload> deserialize(util::ByteView data);
};

}  // namespace bcwan::core

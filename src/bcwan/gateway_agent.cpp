#include "bcwan/gateway_agent.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/sha256.hpp"

namespace bcwan::core {

namespace {
std::string key_handle(const crypto::RsaPublicKey& pub) {
  return util::to_hex(pub.serialize());
}

/// Replay-defence fingerprint of a DATA frame: the sealed payload is bound
/// to the device by the node's signature, so device_id || Em || Sig uniquely
/// identifies one sealed reading regardless of which ephemeral key it rode
/// in on.
std::string payload_fingerprint(const lora::UplinkDataFrame& frame) {
  util::Bytes buf;
  buf.reserve(2 + frame.em.size() + frame.sig.size());
  buf.push_back(static_cast<std::uint8_t>(frame.device_id >> 8));
  buf.push_back(static_cast<std::uint8_t>(frame.device_id & 0xff));
  buf.insert(buf.end(), frame.em.begin(), frame.em.end());
  buf.insert(buf.end(), frame.sig.begin(), frame.sig.end());
  const crypto::Digest256 digest = crypto::sha256(buf);
  return std::string(reinterpret_cast<const char*>(digest.data()),
                     digest.size());
}
}  // namespace

GatewayAgent::GatewayAgent(p2p::EventLoop& loop, p2p::Transport& net,
                           lora::LoraRadio& radio, p2p::ChainNode& node,
                           Directory& directory, chain::Wallet wallet,
                           TimingModel timing, GatewayConfig config,
                           std::uint64_t seed)
    : loop_(loop),
      net_(net),
      radio_(radio),
      node_(node),
      directory_(directory),
      wallet_(std::move(wallet)),
      timing_(timing),
      config_(config),
      rng_(seed) {
  node_.add_tx_watcher(
      [this](const chain::Transaction& tx) { on_mempool_tx(tx); });
  node_.add_block_watcher(
      [this](const chain::Block& block) { on_block(block); });
  schedule_housekeeping();
}

void GatewayAgent::attach_radio(lora::RadioGatewayId gateway) {
  radio_gateway_ = gateway;
}

util::SimTime GatewayAgent::backoff_delay(util::SimTime base, int attempt) {
  double delay_s = util::to_seconds(base) *
                   std::pow(config_.backoff_factor, std::max(attempt, 0));
  delay_s = std::min(delay_s, util::to_seconds(config_.max_backoff));
  const double jitter =
      1.0 + config_.backoff_jitter * (2.0 * rng_.uniform() - 1.0);
  return std::max<util::SimTime>(util::from_seconds(delay_s * jitter),
                                 util::kMillisecond);
}

void GatewayAgent::crash() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;
  issued_keys_.clear();
  awaiting_offer_.clear();
  pending_redeems_.clear();
  pending_delivers_.clear();
  recent_data_.clear();
  seen_payloads_.clear();
  submitted_redeems_.clear();
  withheld_redeems_.clear();
}

void GatewayAgent::restart() {
  if (alive_) return;
  alive_ = true;
  ++epoch_;
}

void GatewayAgent::on_uplink(lora::RadioDeviceId from,
                             const util::Bytes& frame) {
  if (!alive_) return;
  const auto type = lora::peek_frame_type(frame);
  if (!type) return;
  switch (*type) {
    case lora::FrameType::kUplinkRequest: {
      const auto request = lora::UplinkRequestFrame::decode(frame);
      if (request) handle_request(from, *request);
      break;
    }
    case lora::FrameType::kUplinkData: {
      const auto data = lora::UplinkDataFrame::decode(frame);
      if (data) handle_data(from, *data);
      break;
    }
    case lora::FrameType::kEphemeralKey:
    case lora::FrameType::kDataAck:
      break;  // downlink-only frames; ignore on the uplink path
  }
}

void GatewayAgent::handle_request(lora::RadioDeviceId from,
                                  const lora::UplinkRequestFrame& frame) {
  // Mint the per-message key pair (step 1). The generation really runs;
  // the virtual clock charges the Raspberry-Pi cost.
  const crypto::RsaKeyPair keys = crypto::rsa_generate(rng_, 512);
  const std::uint16_t device_id = frame.device_id;
  issued_keys_[device_id] = PendingKey{keys, from, loop_.now()};
  ++keys_issued_;

  const std::uint64_t epoch = epoch_;
  loop_.after(timing_.gateway_keygen, [this, device_id, from, keys, epoch] {
    if (epoch != epoch_) return;
    lora::EphemeralKeyFrame reply;
    reply.device_id = device_id;
    reply.ephemeral_pub = keys.pub;
    send_ephemeral_key(device_id, from, reply.encode());
  });
}

void GatewayAgent::send_ephemeral_key(std::uint16_t device_id,
                                      lora::RadioDeviceId from,
                                      const util::Bytes& frame) {
  if (issued_keys_.find(device_id) == issued_keys_.end()) {
    return;  // key consumed or replaced meanwhile
  }
  const lora::TxResult tx = radio_.downlink(radio_gateway_, from, frame);
  if (!tx.accepted) {
    // Downlink duty budget exhausted; keep retrying until it fits.
    const std::uint64_t epoch = epoch_;
    loop_.at(tx.next_allowed, [this, device_id, from, frame, epoch] {
      if (epoch != epoch_) return;
      send_ephemeral_key(device_id, from, frame);
    });
    return;
  }
  if (on_ephemeral_sent) on_ephemeral_sent(device_id);
}

void GatewayAgent::handle_data(lora::RadioDeviceId from,
                               const lora::UplinkDataFrame& frame) {
  // Replay defence first, before any key can be consumed: a frame whose
  // payload we have already accepted is either the node retransmitting
  // (ACK lost — re-ACK it) or an attacker replaying sniffed bytes (silent
  // drop; re-keying would burn an RSA keygen per replayed frame).
  const std::string fp = payload_fingerprint(frame);
  const auto seen = seen_payloads_.find(fp);
  if (seen != seen_payloads_.end()) {
    if (loop_.now() - seen->second <= config_.reack_window) {
      send_data_ack(frame.device_id, from);
    } else {
      ++replays_dropped_;
    }
    return;
  }
  const auto it = issued_keys_.find(frame.device_id);
  if (it == issued_keys_.end()) {
    // No key on file. Either this is a retransmission of a frame we have
    // already consumed (the ACK got lost), or our issued-key state is gone
    // (crash/restart, expiry). Re-ACK the former; re-key the latter so the
    // node can re-seal under a key we actually hold.
    const auto recent = recent_data_.find(frame.device_id);
    if (recent != recent_data_.end() &&
        loop_.now() - recent->second <= config_.reack_window) {
      send_data_ack(frame.device_id, from);
      return;
    }
    ++rekeys_;
    lora::UplinkRequestFrame as_request;
    as_request.device_id = frame.device_id;
    handle_request(from, as_request);
    return;
  }
  const crypto::RsaKeyPair keys = it->second.keys;
  issued_keys_.erase(it);
  recent_data_[frame.device_id] = loop_.now();
  seen_payloads_[fp] = loop_.now();
  send_data_ack(frame.device_id, from);

  // Step 6: the blockchain lookup @R -> IP.
  const auto entry = directory_.lookup(frame.recipient);
  if (!entry) {
    ++lookups_failed_;
    return;
  }

  DeliverPayload payload;
  payload.device_id = frame.device_id;
  payload.em = frame.em;
  payload.sig = frame.sig;
  payload.ephemeral_pub = keys.pub;
  payload.gateway = wallet_.pkh();
  payload.price_quote = config_.price_quote;

  // Remember the key so the recipient's offer can be recognised and
  // redeemed; housekeeping ages the entry out after offer_timeout.
  const std::string handle = key_handle(keys.pub);
  awaiting_offer_[handle] = AwaitedOffer{keys, frame.device_id, loop_.now()};
  pending_delivers_[handle] =
      PendingDeliver{payload, frame.recipient, from, 0};

  const std::uint64_t epoch = epoch_;
  loop_.after(timing_.gateway_forward, [this, handle, epoch] {
    if (epoch != epoch_) return;
    send_deliver(handle);
  });
}

void GatewayAgent::send_data_ack(std::uint16_t device_id,
                                 lora::RadioDeviceId from) {
  lora::DataAckFrame ack;
  ack.device_id = device_id;
  const lora::TxResult tx = radio_.downlink(radio_gateway_, from, ack.encode());
  if (!tx.accepted) {
    const std::uint64_t epoch = epoch_;
    loop_.at(tx.next_allowed, [this, device_id, from, epoch] {
      if (epoch != epoch_) return;
      send_data_ack(device_id, from);
    });
  }
}

void GatewayAgent::send_deliver(const std::string& handle) {
  const auto it = pending_delivers_.find(handle);
  if (it == pending_delivers_.end()) return;  // acked or expired meanwhile
  PendingDeliver& pending = it->second;

  // Re-resolve the recipient each attempt: the directory may have gained
  // the entry (or a fresher IP) since the last try.
  const auto entry = directory_.lookup(pending.recipient);
  if (entry) {
    const p2p::HostId dest = static_cast<p2p::HostId>(entry->ip & 0xff);
    net_.send(node_.host(), dest,
              p2p::Message{"DELIVER", pending.payload.serialize(),
                           node_.host()});
    if (pending.attempts == 0) {
      ++forwarded_;
      if (on_forwarded) on_forwarded(pending.payload.device_id);
    } else {
      ++deliver_retries_;
    }
  } else {
    ++lookups_failed_;
  }

  if (++pending.attempts > config_.max_deliver_retries) {
    pending_delivers_.erase(it);
    return;
  }
  const std::uint64_t epoch = epoch_;
  loop_.after(backoff_delay(config_.deliver_retry_base, pending.attempts - 1),
              [this, handle, epoch] {
                if (epoch != epoch_) return;
                send_deliver(handle);
              });
}

void GatewayAgent::handle_message(const p2p::Message& msg) {
  if (!alive_) return;
  if (msg.type != "DELIVER_ACK") return;
  // Payload: the serialized ephemeral pub of the delivery being confirmed.
  pending_delivers_.erase(util::to_hex(msg.payload));
}

void GatewayAgent::on_mempool_tx(const chain::Transaction& tx) {
  if (!alive_) return;
  if (awaiting_offer_.empty() && pending_delivers_.empty()) return;
  const chain::Hash256 txid = tx.txid();
  for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
    const auto classified = script::classify(tx.vout[v].script_pubkey);
    if (classified.type != script::ScriptType::kKeyRelease) continue;
    if (classified.pubkey_hash != wallet_.pkh()) continue;
    if (!classified.ephemeral_pub) continue;
    const std::string handle = key_handle(*classified.ephemeral_pub);
    // An offer is an implicit DELIVER_ACK: the recipient clearly has it.
    pending_delivers_.erase(handle);
    const auto it = awaiting_offer_.find(handle);
    if (it == awaiting_offer_.end()) continue;

    PendingRedeem redeem;
    redeem.outpoint = chain::OutPoint{txid, v};
    redeem.out = tx.vout[v];
    redeem.ephemeral_priv = it->second.keys.priv;
    redeem.offer_txid = txid;
    redeem.device_id = it->second.device_id;
    awaiting_offer_.erase(it);

    if (config_.confirmations_required == 0) {
      // Paper PoC behaviour: reveal eSk straight from the mempool sighting.
      const std::uint64_t epoch = epoch_;
      loop_.after(timing_.wallet_tx_build, [this, redeem, epoch] {
        if (epoch != epoch_) return;
        submit_redeem(redeem);
      });
    } else {
      pending_redeems_.push_back(std::move(redeem));
    }
  }
}

void GatewayAgent::on_block(const chain::Block&) {
  if (!alive_) return;
  revisit_submitted_redeems();
  if (pending_redeems_.empty()) return;
  std::vector<PendingRedeem> still_waiting;
  for (const PendingRedeem& redeem : pending_redeems_) {
    int confirmations = 0;
    if (node_.chain().tx_confirmations(redeem.offer_txid, confirmations) &&
        confirmations >= config_.confirmations_required) {
      const std::uint64_t epoch = epoch_;
      loop_.after(timing_.wallet_tx_build, [this, redeem, epoch] {
        if (epoch != epoch_) return;
        submit_redeem(redeem);
      });
    } else {
      still_waiting.push_back(redeem);
    }
  }
  pending_redeems_ = std::move(still_waiting);
}

void GatewayAgent::submit_redeem(const PendingRedeem& redeem) {
  switch (misbehavior_) {
    case GatewayMisbehavior::kWithholdKey:
      // Take the offer, never reveal. The recipient's only exit is the
      // CLTV reclaim branch; release_withheld_redeems() can later dump
      // these to fee-snipe that reclaim.
      ++redeems_withheld_;
      withheld_redeems_.push_back(redeem);
      return;
    case GatewayMisbehavior::kGarbleKey: {
      // Reveal a well-formed RSA-512 private key that does NOT pair with
      // the offer's ePk. OP_CHECKRSA512PAIR evaluates false, the spend
      // falls into the CLTV branch and fails kUnsatisfiedLocktime — at
      // this node and at every peer the raw bytes are pushed to.
      if (!decoy_keys_) decoy_keys_ = crypto::rsa_generate(rng_, 512);
      const chain::Transaction garbled = wallet_.create_redeem(
          redeem.outpoint, redeem.out, decoy_keys_->priv, config_.redeem_fee);
      ++garbled_submits_;
      if (!node_.submit_tx(garbled).ok()) {
        ++garbled_rejected_;
        // Push the raw tx over gossip anyway: peers must reject it through
        // the same script path, not just trust our mempool's verdict.
        net_.broadcast(node_.host(),
                       p2p::Message{"tx", garbled.serialize(), node_.host()});
      }
      return;
    }
    case GatewayMisbehavior::kHonest:
    case GatewayMisbehavior::kDoubleClaim:
      break;
  }
  const chain::Transaction tx = wallet_.create_redeem(
      redeem.outpoint, redeem.out, redeem.ephemeral_priv, config_.redeem_fee);
  const auto result = node_.submit_tx(tx);
  if (result.ok()) {
    ++redeems_;
    submitted_redeems_.push_back(
        SubmittedRedeem{tx, tx.txid(), redeem.outpoint, redeem.device_id, 0});
    if (on_redeemed) on_redeemed(redeem.device_id);
    if (misbehavior_ == GatewayMisbehavior::kDoubleClaim) {
      // Honest reveal, then a second conflicting claim of the same output
      // (fee bumped by 1 so the txid differs). First-seen mempools must
      // answer kConflict; there is no RBF to displace the original.
      const std::uint64_t epoch = epoch_;
      loop_.after(timing_.wallet_tx_build, [this, redeem, epoch] {
        if (epoch != epoch_) return;
        const chain::Transaction second =
            wallet_.create_redeem(redeem.outpoint, redeem.out,
                                  redeem.ephemeral_priv, config_.redeem_fee + 1);
        ++double_claims_;
        if (!node_.submit_tx(second).ok()) ++double_claims_rejected_;
      });
    }
  }
}

std::size_t GatewayAgent::release_withheld_redeems() {
  if (withheld_redeems_.empty()) return 0;
  std::vector<PendingRedeem> held = std::move(withheld_redeems_);
  withheld_redeems_.clear();
  // Submit through the honest path regardless of the standing misbehavior.
  const GatewayMisbehavior saved = misbehavior_;
  misbehavior_ = GatewayMisbehavior::kHonest;
  for (const PendingRedeem& redeem : held) submit_redeem(redeem);
  misbehavior_ = saved;
  return held.size();
}

void GatewayAgent::revisit_submitted_redeems() {
  // A reorg can evict a redeem from the chain without it re-entering the
  // mempool (its block simply lost). Re-broadcast until it is buried
  // redeem_confirm_depth deep, the reclaim branch won (conflict), or the
  // resubmit budget runs out.
  std::erase_if(submitted_redeems_, [this](SubmittedRedeem& sub) {
    int confirmations = 0;
    if (node_.chain().tx_confirmations(sub.txid, confirmations) &&
        confirmations >= config_.redeem_confirm_depth) {
      return true;  // buried; settled for good
    }
    if (node_.mempool().contains(sub.txid)) return false;  // will re-mine
    if (sub.resubmits >= config_.max_redeem_resubmits) return true;
    ++sub.resubmits;
    const auto result = node_.submit_tx(sub.tx);
    if (result.ok()) {
      ++redeem_resubmits_;
      return false;
    }
    // kConflict: the recipient's reclaim spent the offer first — lost race,
    // nothing left to recover. kInvalid: the offer output itself is gone.
    return result.error != chain::MempoolError::kAlreadyKnown;
  });
}

void GatewayAgent::schedule_housekeeping() {
  // The sweep survives crash/restart (it models a cron job on the box, not
  // daemon state), so it is deliberately not epoch-guarded.
  loop_.after(config_.housekeeping_interval, [this] {
    if (alive_) housekeeping();
    schedule_housekeeping();
  });
}

void GatewayAgent::housekeeping() {
  const util::SimTime now = loop_.now();
  keys_expired_ += std::erase_if(issued_keys_, [&](const auto& entry) {
    return now - entry.second.issued_at > config_.issued_key_timeout;
  });
  offers_expired_ += std::erase_if(awaiting_offer_, [&](const auto& entry) {
    return now - entry.second.since > config_.offer_timeout;
  });
  std::erase_if(recent_data_, [&](const auto& entry) {
    return now - entry.second > config_.reack_window;
  });
  std::erase_if(seen_payloads_, [&](const auto& entry) {
    return now - entry.second > config_.replay_window;
  });
}

}  // namespace bcwan::core

#include "bcwan/gateway_agent.hpp"

#include <algorithm>

namespace bcwan::core {

namespace {
std::string key_handle(const crypto::RsaPublicKey& pub) {
  return util::to_hex(pub.serialize());
}
}  // namespace

GatewayAgent::GatewayAgent(p2p::EventLoop& loop, p2p::SimNet& net,
                           lora::LoraRadio& radio, p2p::ChainNode& node,
                           Directory& directory, chain::Wallet wallet,
                           TimingModel timing, GatewayConfig config,
                           std::uint64_t seed)
    : loop_(loop),
      net_(net),
      radio_(radio),
      node_(node),
      directory_(directory),
      wallet_(std::move(wallet)),
      timing_(timing),
      config_(config),
      rng_(seed) {
  node_.add_tx_watcher(
      [this](const chain::Transaction& tx) { on_mempool_tx(tx); });
  node_.add_block_watcher(
      [this](const chain::Block& block) { on_block(block); });
}

void GatewayAgent::attach_radio(lora::RadioGatewayId gateway) {
  radio_gateway_ = gateway;
}

void GatewayAgent::on_uplink(lora::RadioDeviceId from,
                             const util::Bytes& frame) {
  const auto type = lora::peek_frame_type(frame);
  if (!type) return;
  switch (*type) {
    case lora::FrameType::kUplinkRequest: {
      const auto request = lora::UplinkRequestFrame::decode(frame);
      if (request) handle_request(from, *request);
      break;
    }
    case lora::FrameType::kUplinkData: {
      const auto data = lora::UplinkDataFrame::decode(frame);
      if (data) handle_data(*data);
      break;
    }
    case lora::FrameType::kEphemeralKey:
      break;  // downlink-only frame; ignore on the uplink path
  }
}

void GatewayAgent::handle_request(lora::RadioDeviceId from,
                                  const lora::UplinkRequestFrame& frame) {
  // Mint the per-message key pair (step 1). The generation really runs;
  // the virtual clock charges the Raspberry-Pi cost.
  const crypto::RsaKeyPair keys = crypto::rsa_generate(rng_, 512);
  const std::uint16_t device_id = frame.device_id;
  issued_keys_[device_id] = PendingKey{keys, from, loop_.now()};
  ++keys_issued_;

  loop_.after(timing_.gateway_keygen, [this, device_id, from, keys] {
    lora::EphemeralKeyFrame reply;
    reply.device_id = device_id;
    reply.ephemeral_pub = keys.pub;
    send_ephemeral_key(device_id, from, reply.encode());
  });
}

void GatewayAgent::send_ephemeral_key(std::uint16_t device_id,
                                      lora::RadioDeviceId from,
                                      const util::Bytes& frame) {
  if (issued_keys_.find(device_id) == issued_keys_.end()) {
    return;  // key consumed or replaced meanwhile
  }
  const lora::TxResult tx = radio_.downlink(radio_gateway_, from, frame);
  if (!tx.accepted) {
    // Downlink duty budget exhausted; keep retrying until it fits.
    loop_.at(tx.next_allowed, [this, device_id, from, frame] {
      send_ephemeral_key(device_id, from, frame);
    });
    return;
  }
  if (on_ephemeral_sent) on_ephemeral_sent(device_id);
}

void GatewayAgent::handle_data(const lora::UplinkDataFrame& frame) {
  const auto it = issued_keys_.find(frame.device_id);
  if (it == issued_keys_.end()) return;  // no key issued: drop
  const crypto::RsaKeyPair keys = it->second.keys;
  issued_keys_.erase(it);

  // Step 6: the blockchain lookup @R -> IP.
  const auto entry = directory_.lookup(frame.recipient);
  if (!entry) {
    ++lookups_failed_;
    return;
  }

  DeliverPayload payload;
  payload.device_id = frame.device_id;
  payload.em = frame.em;
  payload.sig = frame.sig;
  payload.ephemeral_pub = keys.pub;
  payload.gateway = wallet_.pkh();
  payload.price_quote = config_.price_quote;

  // Remember the key so the recipient's offer can be recognised and
  // redeemed (with a housekeeping timeout).
  const std::string handle = key_handle(keys.pub);
  awaiting_offer_[handle] = AwaitedOffer{keys, frame.device_id};
  loop_.after(config_.offer_timeout,
              [this, handle] { awaiting_offer_.erase(handle); });

  const std::uint16_t device_id = frame.device_id;
  // In the simulator the directory's IP is the recipient's host id.
  const p2p::HostId dest = static_cast<p2p::HostId>(entry->ip & 0xff);
  loop_.after(timing_.gateway_forward, [this, dest, payload, device_id] {
    net_.send(node_.host(), dest,
              p2p::Message{"DELIVER", payload.serialize(), node_.host()});
    ++forwarded_;
    if (on_forwarded) on_forwarded(device_id);
  });
}

void GatewayAgent::on_mempool_tx(const chain::Transaction& tx) {
  if (awaiting_offer_.empty()) return;
  const chain::Hash256 txid = tx.txid();
  for (std::uint32_t v = 0; v < tx.vout.size(); ++v) {
    const auto classified = script::classify(tx.vout[v].script_pubkey);
    if (classified.type != script::ScriptType::kKeyRelease) continue;
    if (classified.pubkey_hash != wallet_.pkh()) continue;
    if (!classified.ephemeral_pub) continue;
    const auto it = awaiting_offer_.find(key_handle(*classified.ephemeral_pub));
    if (it == awaiting_offer_.end()) continue;

    PendingRedeem redeem;
    redeem.outpoint = chain::OutPoint{txid, v};
    redeem.out = tx.vout[v];
    redeem.ephemeral_priv = it->second.keys.priv;
    redeem.offer_txid = txid;
    redeem.device_id = it->second.device_id;
    awaiting_offer_.erase(it);

    if (config_.confirmations_required == 0) {
      // Paper PoC behaviour: reveal eSk straight from the mempool sighting.
      loop_.after(timing_.wallet_tx_build,
                  [this, redeem] { submit_redeem(redeem); });
    } else {
      pending_redeems_.push_back(std::move(redeem));
    }
  }
}

void GatewayAgent::on_block(const chain::Block&) {
  if (pending_redeems_.empty()) return;
  std::vector<PendingRedeem> still_waiting;
  for (const PendingRedeem& redeem : pending_redeems_) {
    int confirmations = 0;
    if (node_.chain().tx_confirmations(redeem.offer_txid, confirmations) &&
        confirmations >= config_.confirmations_required) {
      loop_.after(timing_.wallet_tx_build,
                  [this, redeem] { submit_redeem(redeem); });
    } else {
      still_waiting.push_back(redeem);
    }
  }
  pending_redeems_ = std::move(still_waiting);
}

void GatewayAgent::submit_redeem(const PendingRedeem& redeem) {
  const chain::Transaction tx = wallet_.create_redeem(
      redeem.outpoint, redeem.out, redeem.ephemeral_priv, config_.redeem_fee);
  const auto result = node_.submit_tx(tx);
  if (result.ok()) {
    ++redeems_;
    if (on_redeemed) on_redeemed(redeem.device_id);
  }
}

}  // namespace bcwan::core

#include "bcwan/recipient_agent.hpp"

#include <algorithm>

namespace bcwan::core {

RecipientAgent::RecipientAgent(p2p::EventLoop& loop, p2p::Transport& net,
                               p2p::ChainNode& node, chain::Wallet wallet,
                               TimingModel timing, RecipientConfig config,
                               std::uint64_t seed)
    : loop_(loop),
      net_(net),
      node_(node),
      wallet_(std::move(wallet)),
      timing_(timing),
      config_(config),
      rng_(seed) {
  node_.add_tx_watcher(
      [this](const chain::Transaction& tx) { on_mempool_tx(tx); });
  node_.add_block_watcher(
      [this](const chain::Block& block) { on_block(block); });
}

void RecipientAgent::register_device(const NodeProvisioning& provisioning) {
  devices_[provisioning.device_id] =
      DeviceView{provisioning.k, provisioning.node_verify_key};
}

bool RecipientAgent::announce_ip(IpAddress ip, std::uint16_t port) {
  const util::Bytes data = encode_directory_entry(wallet_.pkh(), ip, port);
  const auto tx = wallet_.create_announcement(node_.chain(), &node_.mempool(),
                                              data, config_.offer_fee);
  if (!tx) return false;
  return node_.submit_tx(*tx).ok();
}

void RecipientAgent::handle_message(const p2p::Message& msg) {
  if (msg.type != "DELIVER") return;
  const auto payload = DeliverPayload::deserialize(msg.payload);
  if (!payload) return;
  ++deliveries_;
  // Acknowledge every well-formed DELIVER — even ones we go on to reject —
  // so the gateway's retry loop stops. The ACK names the ephemeral key.
  net_.send(node_.host(), msg.from,
            p2p::Message{"DELIVER_ACK", payload->ephemeral_pub.serialize(),
                         node_.host()});
  ++acks_sent_;
  // Gateway retransmissions of an exchange we already accepted (our first
  // ACK was lost) must not post a second offer.
  const std::string handle = util::to_hex(payload->ephemeral_pub.serialize());
  const auto seen = accepted_delivers_.find(handle);
  if (seen != accepted_delivers_.end() &&
      loop_.now() - seen->second <= config_.deliver_dedupe_window) {
    ++duplicates_;
    return;
  }
  handle_deliver(*payload);
}

void RecipientAgent::handle_deliver(const DeliverPayload& payload) {
  const auto device = devices_.find(payload.device_id);
  if (device == devices_.end()) return;  // not one of ours

  // Step 8: authenticity. A tampered Em or a swapped ePk fails here and
  // the recipient never pays.
  Envelope envelope{payload.em, payload.sig};
  if (!verify_envelope(device->second.verify_key, envelope,
                       payload.ephemeral_pub)) {
    ++sig_rejects_;
    return;
  }

  if (!config_.pay_for_data) return;  // misbehaving recipient: takes nothing

  // Negotiation (step 9): decline overpriced quotes.
  if (payload.price_quote > config_.max_price) {
    ++price_rejects_;
    return;
  }

  // Accepted: mark it so a retransmission does not open a second exchange.
  // Rejects are deliberately not marked — a clean retransmission after a
  // corrupted first copy should still go through.
  accepted_delivers_[util::to_hex(payload.ephemeral_pub.serialize())] =
      loop_.now();
  loop_.after(timing_.recipient_verify + timing_.wallet_tx_build,
              [this, payload] { post_offer(payload, 0); });
}

void RecipientAgent::post_offer(const DeliverPayload& payload, int attempt) {
  const std::int64_t timeout_height =
      node_.chain().height() + config_.timeout_blocks;
  const chain::Amount agreed_price =
      payload.price_quote > 0 ? payload.price_quote : config_.price;
  const auto offer = wallet_.create_key_release_offer(
      node_.chain(), &node_.mempool(), payload.ephemeral_pub, payload.gateway,
      agreed_price, config_.offer_fee, timeout_height);
  if (!offer) {
    // Transiently out of spendable coins (e.g. everything is tied up in
    // unconfirmed offers another node hasn't relayed back yet): retry for
    // a bounded window, then drop the exchange. The budget is per-exchange
    // — a shared counter would let one starved exchange eat the retries of
    // every concurrent one.
    if (attempt < 24) {
      loop_.after(5 * util::kSecond,
                  [this, payload, attempt] { post_offer(payload, attempt + 1); });
    }
    return;
  }
  const auto result = node_.submit_tx(*offer);
  if (!result.ok()) return;

  PendingExchange pending;
  pending.device_id = payload.device_id;
  pending.em = payload.em;
  pending.ephemeral_pub = payload.ephemeral_pub;
  pending.offer_tx = *offer;
  pending.offer_txid = offer->txid();
  pending.offer_outpoint = chain::OutPoint{pending.offer_txid, 0};
  pending.offer_out = offer->vout[0];
  pending.timeout_height = timeout_height;
  pending_.push_back(std::move(pending));
  ++offers_;
  if (on_offer_posted) on_offer_posted(payload.device_id);
}

bool RecipientAgent::try_extract_reveal(PendingExchange& pending,
                                        const chain::TxIn& in) {
  if (pending.settled || !(in.prevout == pending.offer_outpoint)) return false;
  // Step 10: someone spent our offer. If it is the gateway's redeem, the
  // scriptSig carries eSk.
  const auto revealed = script::extract_revealed_key(in.script_sig);
  if (!revealed) return false;  // our own reclaim, or malformed
  if (!crypto::rsa_pair_matches(pending.ephemeral_pub, *revealed))
    return false;  // garbled key: the chain will reject this spend too
  pending.settled = true;

  const auto device = devices_.find(pending.device_id);
  if (device == devices_.end()) return true;
  const auto device_id = pending.device_id;
  const auto em = pending.em;
  const auto k = device->second.k;
  const auto eSk = *revealed;
  loop_.after(timing_.recipient_decrypt, [this, device_id, em, k, eSk] {
    const auto reading = open_envelope(k, eSk, em);
    if (!reading) return;
    ++decrypted_;
    if (on_reading) on_reading(device_id, *reading);
  });
  return true;
}

void RecipientAgent::on_mempool_tx(const chain::Transaction& tx) {
  if (pending_.empty()) return;
  for (const chain::TxIn& in : tx.vin) {
    for (PendingExchange& pending : pending_) {
      try_extract_reveal(pending, in);
    }
  }
  std::erase_if(pending_, [](const PendingExchange& p) { return p.settled; });
}

void RecipientAgent::on_block(const chain::Block& block) {
  // A redeem can arrive already inside a block without ever crossing our
  // mempool (a miner that got it first, censorship lifting, a partition
  // healing straight into a block announcement). Missing it here would
  // hang the exchange and burn the reclaim budget on kInvalid submissions
  // against an already-spent offer output.
  for (const chain::Transaction& tx : block.txs) {
    for (const chain::TxIn& in : tx.vin) {
      for (PendingExchange& pending : pending_) {
        try_extract_reveal(pending, in);
      }
    }
  }
  const int height = node_.chain().height();
  for (PendingExchange& pending : pending_) {
    if (pending.settled) continue;
    revisit_transactions(pending);
    if (!pending.settled && !pending.reclaiming)
      maybe_reclaim(pending, height);
  }
  std::erase_if(pending_, [](const PendingExchange& p) { return p.settled; });

  // Dedupe entries outlive their usefulness one window after acceptance.
  std::erase_if(accepted_delivers_, [&](const auto& entry) {
    return loop_.now() - entry.second > config_.deliver_dedupe_window;
  });
}

void RecipientAgent::maybe_reclaim(PendingExchange& pending, int height) {
  // Withholding gateways: once the CLTV branch opens, take the funds back.
  if (height + 1 < pending.timeout_height) return;
  const chain::Transaction reclaim =
      wallet_.create_reclaim(pending.offer_outpoint, pending.offer_out,
                             pending.timeout_height, config_.reclaim_fee);
  if (node_.submit_tx(reclaim).ok()) {
    pending.reclaiming = true;
    pending.reclaim_tx = reclaim;
    pending.reclaim_txid = reclaim.txid();
    ++reclaims_;
    if (on_reclaimed) on_reclaimed(pending.device_id);
  }
}

void RecipientAgent::revisit_transactions(PendingExchange& pending) {
  // Reorg recovery. A transaction whose block lost a reorg race vanishes
  // without re-entering the mempool; re-broadcast it or the exchange hangs
  // until the CLTV timeout (offer) or forever (reclaim).
  int confirmations = 0;
  if (pending.reclaiming) {
    if (node_.chain().tx_confirmations(pending.reclaim_txid, confirmations)) {
      if (confirmations >= 1) pending.settled = true;  // funds are back
      return;
    }
    if (node_.mempool().contains(pending.reclaim_txid)) return;
    if (pending.rebroadcasts >= config_.max_rebroadcasts) {
      pending.settled = true;  // give up tracking
      ++exchanges_abandoned_;
      return;
    }
    ++pending.rebroadcasts;
    const auto result = node_.submit_tx(pending.reclaim_tx);
    if (result.ok()) {
      ++reclaim_rebroadcasts_;
    } else if (result.error == chain::MempoolError::kConflict) {
      // The gateway's redeem beat us after all; go back to watching for it
      // (its mempool sighting reveals eSk and settles the exchange).
      pending.reclaiming = false;
    }
    return;
  }
  // No reclaim in flight: make sure the offer itself is still alive.
  if (node_.chain().tx_confirmations(pending.offer_txid, confirmations))
    return;
  if (node_.mempool().contains(pending.offer_txid)) return;
  if (pending.rebroadcasts >= config_.max_rebroadcasts) {
    pending.settled = true;  // unrecoverable; stop leaking the entry
    ++exchanges_abandoned_;
    return;
  }
  ++pending.rebroadcasts;
  const auto result = node_.submit_tx(pending.offer_tx);
  if (result.ok()) {
    ++offer_rebroadcasts_;
  } else if (result.error == chain::MempoolError::kConflict) {
    // An input was double-spent (shouldn't happen with our own wallet);
    // the exchange cannot proceed.
    pending.settled = true;
  }
}

}  // namespace bcwan::core

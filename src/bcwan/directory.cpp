#include "bcwan/directory.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "store/crc32c.hpp"
#include "telemetry/metrics.hpp"
#include "util/serial.hpp"

namespace fs = std::filesystem;

namespace bcwan::core {

namespace {

constexpr char kMagic[4] = {'B', 'C', 'W', 'N'};
constexpr std::uint8_t kVersion = 1;

// Persisted index file: magic | u32 version | u32 len | u32 crc32c(payload)
// | payload. The payload names the active-chain tip it reflects, so a
// loader can tell "install and catch up" apart from "stale branch, rescan".
constexpr char kIndexMagic[8] = {'B', 'C', 'W', 'A', 'N', 'D', 'I', 'R'};
constexpr std::uint32_t kIndexFileVersion = 1;

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

util::Bytes encode_directory_entry(const script::PubKeyHash& owner,
                                   IpAddress ip, std::uint16_t port) {
  util::Writer w;
  w.bytes(util::Bytes{static_cast<std::uint8_t>(kMagic[0]),
                      static_cast<std::uint8_t>(kMagic[1]),
                      static_cast<std::uint8_t>(kMagic[2]),
                      static_cast<std::uint8_t>(kMagic[3])});
  w.u8(kVersion);
  w.bytes(util::ByteView(owner.data(), owner.size()));
  w.u32(ip);
  w.u16(port);
  return w.take();
}

std::optional<DirectoryEntry> decode_directory_entry(util::ByteView data) {
  try {
    util::Reader r(data);
    const util::Bytes magic = r.bytes(4);
    for (int i = 0; i < 4; ++i) {
      if (magic[static_cast<std::size_t>(i)] !=
          static_cast<std::uint8_t>(kMagic[i])) {
        return std::nullopt;
      }
    }
    if (r.u8() != kVersion) return std::nullopt;
    DirectoryEntry entry;
    const util::Bytes owner = r.bytes(entry.owner.size());
    std::copy(owner.begin(), owner.end(), entry.owner.begin());
    entry.ip = r.u32();
    entry.port = r.u16();
    r.expect_done();
    return entry;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

std::string format_ip(IpAddress ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", ip >> 24 & 0xff,
                ip >> 16 & 0xff, ip >> 8 & 0xff, ip & 0xff);
  return buf;
}

namespace {

/// Validated announcements in `tx`: decoded OP_RETURN entries whose claimed
/// owner matches the hash of the first input's pushed pubkey.
template <typename Fn>
void for_each_announcement(const chain::Transaction& tx, Fn&& fn) {
  if (tx.is_coinbase() || tx.vin.empty()) return;
  for (const chain::TxOut& out : tx.vout) {
    const auto classified = script::classify(out.script_pubkey);
    if (classified.type != script::ScriptType::kOpReturn) continue;
    const auto entry = decode_directory_entry(classified.data);
    if (!entry) continue;
    const auto sig_items = tx.vin[0].script_sig.decode();
    if (!sig_items || sig_items->size() < 2) continue;
    const util::Bytes& pubkey = (*sig_items)[1].push;
    if (script::to_pubkey_hash(pubkey) != entry->owner) continue;
    fn(*entry);
  }
}

void write_entry(util::Writer& w, const DirectoryEntry& e) {
  w.bytes(util::ByteView(e.owner.data(), e.owner.size()));
  w.u32(e.ip);
  w.u16(e.port);
  w.u32(static_cast<std::uint32_t>(e.height));
}

DirectoryEntry read_entry(util::Reader& r) {
  DirectoryEntry e;
  const util::Bytes owner = r.bytes(e.owner.size());
  std::copy(owner.begin(), owner.end(), e.owner.begin());
  e.ip = r.u32();
  e.port = r.u16();
  e.height = static_cast<int>(r.u32());
  return e;
}

}  // namespace

Directory::Directory(p2p::ChainNode& node, DirectoryOptions options)
    : node_(node), options_(std::move(options)) {
  recover();
  node_.add_tx_watcher(
      [this](const chain::Transaction& tx) { ingest_mempool(tx); });
  node_.add_block_watcher(
      [this](const chain::Block& block) { on_block(block); });
  node_.add_reorg_watcher([this](int fork_height) { on_reorg(fork_height); });
  // A restart replays the chain from disk; the reorg watchers alone cannot
  // cover it (replay may land on a different branch without reporting a
  // reorg), so rebuild-or-reload the index from scratch.
  node_.add_restart_watcher([this] { recover(); });
}

void Directory::recover() {
  if (!options_.persist_path.empty() && try_load()) return;
  rescan(options_.startup_scan_depth);
}

void Directory::rescan(int depth) {
  ++full_rescans_;
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_directory_rescans_total",
                 "Full directory rebuilds (cold starts + deep-reorg and "
                 "stale-index fallbacks)")
        .add();
  }
  confirmed_.clear();
  mempool_.clear();
  undo_.clear();
  const int tip = node_.chain().height();
  // Pre-create empty frames for the retained window so a later reorg can
  // unwind through heights that carried no announcements.
  for (int h = std::max(0, tip - options_.undo_depth + 1); h <= tip; ++h)
    undo_[h];
  // Oldest-first so newer announcements overwrite older ones: scan_recent
  // walks newest-first, so collect then replay in reverse. The callback
  // refs point into the chain's block storage, which is stable for the
  // duration of the scan — collecting pointers avoids copying every
  // scanned transaction (the old full-copy collection dominated startup
  // on deep scans).
  std::vector<std::pair<const chain::Transaction*, int>> found;
  node_.chain().scan_recent(depth, [&](const chain::Transaction& tx, int h) {
    found.emplace_back(&tx, h);
  });
  for (auto it = found.rbegin(); it != found.rend(); ++it)
    apply_confirmed(*it->first, it->second);
  indexed_tip_ = tip;
  node_.mempool().for_each(
      [this](const chain::Transaction& tx) { ingest_mempool(tx); });
  persist();
  note_entries_gauge();
}

void Directory::ingest_mempool(const chain::Transaction& tx) {
  for_each_announcement(tx, [this](const DirectoryEntry& entry) {
    DirectoryEntry stored = entry;
    stored.height = -1;
    mempool_[stored.owner] = stored;
  });
  note_entries_gauge();
}

void Directory::apply_confirmed(const chain::Transaction& tx, int height) {
  for_each_announcement(tx, [this, height](const DirectoryEntry& entry) {
    const auto frame = undo_.find(height);
    if (frame != undo_.end()) {
      UndoRecord rec;
      rec.owner = entry.owner;
      const auto prev = confirmed_.find(entry.owner);
      if (prev != confirmed_.end()) {
        rec.had_prev = true;
        rec.prev = prev->second;
      }
      frame->second.push_back(std::move(rec));
    }
    DirectoryEntry stored = entry;
    stored.height = height;
    confirmed_[stored.owner] = stored;
    // The sighting that shadowed this owner just confirmed (or was
    // superseded by a confirmed announcement); the overlay entry is no
    // longer the newest information.
    mempool_.erase(stored.owner);
  });
}

void Directory::begin_frame(int height) {
  undo_[height];
  while (undo_.size() >
         static_cast<std::size_t>(std::max(options_.undo_depth, 1))) {
    undo_.erase(undo_.begin());
  }
}

void Directory::on_block(const chain::Block& block) {
  const int height = node_.chain().height();
  // The reorg watcher (which runs first) may already have caught up through
  // this block; re-applying it would double-enter its undo records.
  if (height <= indexed_tip_) return;
  if (height == indexed_tip_ + 1) {
    begin_frame(height);
    for (const chain::Transaction& tx : block.txs) apply_confirmed(tx, height);
    indexed_tip_ = height;
    persist();
    note_entries_gauge();
    return;
  }
  catch_up();
}

void Directory::catch_up() {
  const int tip = node_.chain().height();
  for (int h = indexed_tip_ + 1; h <= tip; ++h) {
    const auto block = node_.chain().block_at(h);
    if (!block) {
      rescan(options_.startup_scan_depth);
      return;
    }
    begin_frame(h);
    for (const chain::Transaction& tx : block->txs) apply_confirmed(tx, h);
    indexed_tip_ = h;
  }
  persist();
  note_entries_gauge();
}

void Directory::on_reorg(int fork_height) {
  if (fork_height < 0) {
    rescan(options_.startup_scan_depth);
    return;
  }
  // Unwind the branch we indexed past the fork point, newest first; each
  // frame restores exactly what its height overwrote.
  for (int h = indexed_tip_; h > fork_height; --h) {
    const auto it = undo_.find(h);
    if (it == undo_.end()) {
      // The fork is deeper than the undo window — the incremental index
      // cannot reconstruct the pre-fork state.
      rescan(options_.startup_scan_depth);
      return;
    }
    for (auto rec = it->second.rbegin(); rec != it->second.rend(); ++rec) {
      if (rec->had_prev) {
        confirmed_[rec->owner] = rec->prev;
      } else {
        confirmed_.erase(rec->owner);
      }
    }
    undo_.erase(it);
  }
  indexed_tip_ = std::min(indexed_tip_, fork_height);
  ++indexed_reorgs_;
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_directory_indexed_reorgs_total",
                 "Reorgs absorbed via undo frames (no rescan)")
        .add();
  }
  catch_up();
}

std::optional<DirectoryEntry> Directory::lookup(
    const script::PubKeyHash& owner) const {
  const auto pending = mempool_.find(owner);
  if (pending != mempool_.end()) return pending->second;
  const auto it = confirmed_.find(owner);
  if (it == confirmed_.end()) return std::nullopt;
  return it->second;
}

std::size_t Directory::size() const noexcept {
  std::size_t n = confirmed_.size();
  for (const auto& [owner, entry] : mempool_) {
    if (confirmed_.find(owner) == confirmed_.end()) ++n;
  }
  return n;
}

void Directory::note_entries_gauge() const {
  if (!telemetry::enabled()) return;
  telemetry::registry()
      .gauge("bcwan_directory_entries",
             "Resolver entries in the most recently updated directory")
      .set(static_cast<double>(size()));
}

bool Directory::persist() const {
  if (options_.persist_path.empty()) return true;
  if (indexed_tip_ < 0) return true;

  util::Writer payload;
  payload.u32(static_cast<std::uint32_t>(indexed_tip_));
  const chain::Hash256& tip_hash =
      node_.chain().active_chain()[static_cast<std::size_t>(indexed_tip_)];
  payload.bytes(util::ByteView(tip_hash.data(), tip_hash.size()));
  payload.varint(confirmed_.size());
  for (const auto& [owner, entry] : confirmed_) write_entry(payload, entry);
  payload.varint(undo_.size());
  for (const auto& [height, records] : undo_) {
    payload.u32(static_cast<std::uint32_t>(height));
    payload.varint(records.size());
    for (const UndoRecord& rec : records) {
      payload.bytes(util::ByteView(rec.owner.data(), rec.owner.size()));
      payload.u8(rec.had_prev ? 1 : 0);
      if (rec.had_prev) write_entry(payload, rec.prev);
    }
  }

  util::Writer header;
  header.bytes(util::ByteView(
      reinterpret_cast<const std::uint8_t*>(kIndexMagic), sizeof(kIndexMagic)));
  header.u32(kIndexFileVersion);
  header.u32(static_cast<std::uint32_t>(payload.data().size()));
  header.u32(store::crc32c(payload.data()));

  const fs::path final_path(options_.persist_path);
  const fs::path tmp_path = final_path.string() + ".tmp";
  std::error_code ec;
  fs::create_directories(final_path.parent_path(), ec);
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(header.data().data(), 1, header.data().size(), f) ==
            header.data().size();
  ok = ok && std::fwrite(payload.data().data(), 1, payload.data().size(), f) ==
                 payload.data().size();
  // Data on disk before the rename publishes it; rename on disk before the
  // caller can rely on the index surviving a crash.
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    fs::remove(tmp_path, ec);
    return false;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return false;
  }
  return fsync_dir(final_path.parent_path().string());
}

bool Directory::try_load() {
  std::FILE* f = std::fopen(options_.persist_path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  constexpr std::size_t kHeaderBytes = sizeof(kIndexMagic) + 4 + 4 + 4;
  if (size < static_cast<long>(kHeaderBytes)) {
    std::fclose(f);
    return false;
  }
  util::Bytes data(static_cast<std::size_t>(size));
  const bool read_ok =
      std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!read_ok) return false;

  try {
    util::Reader r(data);
    const util::Bytes magic = r.bytes(sizeof(kIndexMagic));
    if (std::memcmp(magic.data(), kIndexMagic, sizeof(kIndexMagic)) != 0)
      return false;
    if (r.u32() != kIndexFileVersion) return false;
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    const util::ByteView payload = r.view(len);
    r.expect_done();
    if (store::crc32c(payload) != crc) return false;

    util::Reader p(payload);
    const int stored_tip = static_cast<int>(p.u32());
    chain::Hash256 stored_hash;
    const util::Bytes raw_hash = p.bytes(stored_hash.size());
    std::copy(raw_hash.begin(), raw_hash.end(), stored_hash.begin());
    // Usable only if the stored tip is still on the active chain: equal to
    // our tip (install as-is) or an ancestor of it (install + catch up).
    // A tip on a dead branch would need undo past what the file knows.
    const auto& active = node_.chain().active_chain();
    if (stored_tip < 0 ||
        static_cast<std::size_t>(stored_tip) >= active.size() ||
        active[static_cast<std::size_t>(stored_tip)] != stored_hash) {
      return false;
    }

    EntryMap confirmed;
    const std::uint64_t n_entries = p.varint();
    for (std::uint64_t i = 0; i < n_entries; ++i) {
      DirectoryEntry e = read_entry(p);
      confirmed[e.owner] = e;
    }
    std::map<int, std::vector<UndoRecord>> undo;
    const std::uint64_t n_frames = p.varint();
    for (std::uint64_t i = 0; i < n_frames; ++i) {
      const int height = static_cast<int>(p.u32());
      const std::uint64_t n_records = p.varint();
      std::vector<UndoRecord> records;
      records.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(n_records, len / 21 + 1)));
      for (std::uint64_t j = 0; j < n_records; ++j) {
        UndoRecord rec;
        const util::Bytes owner = p.bytes(rec.owner.size());
        std::copy(owner.begin(), owner.end(), rec.owner.begin());
        rec.had_prev = p.u8() != 0;
        if (rec.had_prev) rec.prev = read_entry(p);
        records.push_back(std::move(rec));
      }
      undo[height] = std::move(records);
    }
    p.expect_done();

    confirmed_ = std::move(confirmed);
    undo_ = std::move(undo);
    mempool_.clear();
    indexed_tip_ = stored_tip;
  } catch (const util::DeserializeError&) {
    return false;
  }

  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_directory_index_loads_total",
                 "Directory indexes recovered from their persisted file")
        .add();
  }
  catch_up();
  node_.mempool().for_each(
      [this](const chain::Transaction& tx) { ingest_mempool(tx); });
  return true;
}

}  // namespace bcwan::core

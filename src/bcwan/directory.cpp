#include "bcwan/directory.hpp"

#include <cstdio>

#include "telemetry/metrics.hpp"
#include "util/serial.hpp"

namespace bcwan::core {

namespace {
constexpr char kMagic[4] = {'B', 'C', 'W', 'N'};
constexpr std::uint8_t kVersion = 1;
}  // namespace

util::Bytes encode_directory_entry(const script::PubKeyHash& owner,
                                   IpAddress ip, std::uint16_t port) {
  util::Writer w;
  w.bytes(util::Bytes{static_cast<std::uint8_t>(kMagic[0]),
                      static_cast<std::uint8_t>(kMagic[1]),
                      static_cast<std::uint8_t>(kMagic[2]),
                      static_cast<std::uint8_t>(kMagic[3])});
  w.u8(kVersion);
  w.bytes(util::ByteView(owner.data(), owner.size()));
  w.u32(ip);
  w.u16(port);
  return w.take();
}

std::optional<DirectoryEntry> decode_directory_entry(util::ByteView data) {
  try {
    util::Reader r(data);
    const util::Bytes magic = r.bytes(4);
    for (int i = 0; i < 4; ++i) {
      if (magic[static_cast<std::size_t>(i)] !=
          static_cast<std::uint8_t>(kMagic[i])) {
        return std::nullopt;
      }
    }
    if (r.u8() != kVersion) return std::nullopt;
    DirectoryEntry entry;
    const util::Bytes owner = r.bytes(entry.owner.size());
    std::copy(owner.begin(), owner.end(), entry.owner.begin());
    entry.ip = r.u32();
    entry.port = r.u16();
    r.expect_done();
    return entry;
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
}

std::string format_ip(IpAddress ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", ip >> 24 & 0xff,
                ip >> 16 & 0xff, ip >> 8 & 0xff, ip & 0xff);
  return buf;
}

Directory::Directory(p2p::ChainNode& node, int startup_scan_depth)
    : node_(node), scan_depth_(startup_scan_depth) {
  rescan(scan_depth_);
  node_.add_tx_watcher(
      [this](const chain::Transaction& tx) { ingest(tx, -1); });
  node_.add_block_watcher([this](const chain::Block& block) {
    const int height = node_.chain().height();
    for (const chain::Transaction& tx : block.txs) ingest(tx, height);
  });
  // A reorg disconnects blocks whose announcements we already ingested;
  // without a resync those entries survive with heights that no longer
  // exist on the active chain (and shadow older, still-valid ones).
  node_.add_reorg_watcher([this] { rescan(scan_depth_); });
}

void Directory::rescan(int depth) {
  if (telemetry::enabled()) {
    telemetry::registry()
        .counter("bcwan_directory_rescans_total",
                 "Full directory rebuilds (startup + post-reorg resyncs)")
        .add();
  }
  entries_.clear();
  // Oldest-first so newer announcements overwrite older ones: scan_recent
  // walks newest-first, so collect then replay in reverse. The callback
  // refs point into the chain's block storage, which is stable for the
  // duration of the scan — collecting pointers avoids copying every
  // scanned transaction (the old full-copy collection dominated startup
  // on deep scans).
  std::vector<std::pair<const chain::Transaction*, int>> found;
  node_.chain().scan_recent(depth, [&](const chain::Transaction& tx, int h) {
    found.emplace_back(&tx, h);
  });
  for (auto it = found.rbegin(); it != found.rend(); ++it)
    ingest(*it->first, it->second);
  node_.mempool().for_each(
      [this](const chain::Transaction& tx) { ingest(tx, -1); });
}

void Directory::ingest(const chain::Transaction& tx, int height) {
  for (const chain::TxOut& out : tx.vout) {
    const auto classified = script::classify(out.script_pubkey);
    if (classified.type != script::ScriptType::kOpReturn) continue;
    const auto entry = decode_directory_entry(classified.data);
    if (!entry) continue;

    // Anti-spoofing: the announcing transaction must be signed by the owner
    // it claims — the first input's pushed pubkey must hash to it.
    if (tx.is_coinbase() || tx.vin.empty()) continue;
    const auto sig_items = tx.vin[0].script_sig.decode();
    if (!sig_items || sig_items->size() < 2) continue;
    const util::Bytes& pubkey = (*sig_items)[1].push;
    if (script::to_pubkey_hash(pubkey) != entry->owner) continue;

    DirectoryEntry stored = *entry;
    stored.height = height;
    // Newest wins; a mempool sighting (height -1) still updates the IP
    // because it is the most recent information.
    entries_[stored.owner] = stored;
    if (telemetry::enabled()) {
      telemetry::registry()
          .gauge("bcwan_directory_entries",
                 "Resolver entries in the most recently updated directory")
          .set(static_cast<double>(entries_.size()));
    }
  }
}

std::optional<DirectoryEntry> Directory::lookup(
    const script::PubKeyHash& owner) const {
  const auto it = entries_.find(owner);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bcwan::core

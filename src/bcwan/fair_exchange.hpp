// The fair exchange as a standalone, transport-agnostic state machine.
//
// GatewayAgent and RecipientAgent embed this protocol in their event
// handlers; this header packages the same moves as two small objects for
// downstream users who bring their own networking:
//
//   seller (gateway)                     buyer (recipient)
//   ----------------                     -----------------
//   FairExchangeSeller s(wallet);        FairExchangeBuyer b(wallet, s.ephemeral_pub(),
//     -> hand s.ephemeral_pub() to                            seller_pkh, price, ...);
//        the device / buyer              tx = b.make_offer(chain, pool)   // broadcast
//   redeem = s.try_redeem(tx, fee)       eSk = b.observe(redeem)          // from gossip
//     // broadcast; reveals eSk          // or, if the seller went silent:
//                                        reclaim = b.make_reclaim(height) // after timeout
//
// Invariant (tested): the buyer recovers eSk if and only if the seller
// produced a redeem transaction that can pay it.
#pragma once

#include <optional>

#include "chain/wallet.hpp"
#include "crypto/rsa.hpp"

namespace bcwan::core {

/// The gateway-side role: owns the ephemeral pair, waits for an offer
/// locked to it, redeems by revealing eSk.
class FairExchangeSeller {
 public:
  enum class State { kAwaitingOffer, kRedeemed };

  /// `wallet` receives the payment; `ephemeral` is the per-message pair
  /// whose public half the buyer's data was encrypted under.
  FairExchangeSeller(const chain::Wallet& wallet, crypto::RsaKeyPair ephemeral)
      : wallet_(wallet), ephemeral_(std::move(ephemeral)) {}

  const crypto::RsaPublicKey& ephemeral_pub() const noexcept {
    return ephemeral_.pub;
  }
  State state() const noexcept { return state_; }

  /// Inspect a transaction (from the mempool/gossip). If it is a Listing-1
  /// offer addressed to this seller's identity and ephemeral key, build the
  /// redeem that claims it (revealing eSk). At most one redeem is produced.
  std::optional<chain::Transaction> try_redeem(
      const chain::Transaction& candidate_offer, chain::Amount fee);

 private:
  const chain::Wallet& wallet_;
  crypto::RsaKeyPair ephemeral_;
  State state_ = State::kAwaitingOffer;
};

/// The recipient-side role: posts the offer, watches for the redeem, and
/// reclaims through the CLTV branch if the seller goes silent.
class FairExchangeBuyer {
 public:
  enum class State { kInit, kOffered, kSettled, kReclaimed };

  FairExchangeBuyer(const chain::Wallet& wallet,
                    crypto::RsaPublicKey ephemeral_pub,
                    const script::PubKeyHash& seller, chain::Amount price,
                    chain::Amount fee, int timeout_blocks)
      : wallet_(wallet),
        ephemeral_pub_(std::move(ephemeral_pub)),
        seller_(seller),
        price_(price),
        fee_(fee),
        timeout_blocks_(timeout_blocks) {}

  State state() const noexcept { return state_; }
  std::int64_t timeout_height() const noexcept { return timeout_height_; }

  /// Build the Listing-1 offer (protocol step 9). Call once; broadcast the
  /// result. std::nullopt if the wallet lacks funds.
  std::optional<chain::Transaction> make_offer(const chain::Blockchain& chain,
                                               const chain::Mempool* pool);

  /// Feed every transaction observed on the network. Returns the revealed
  /// ephemeral secret key when the seller's redeem passes by (step 10) —
  /// verified against the expected public key before being accepted.
  std::optional<crypto::RsaPrivateKey> observe(const chain::Transaction& tx);

  /// After the timeout height, build the CLTV reclaim. std::nullopt before
  /// the timeout, before an offer exists, or after settlement.
  std::optional<chain::Transaction> make_reclaim(int current_height);

 private:
  const chain::Wallet& wallet_;
  crypto::RsaPublicKey ephemeral_pub_;
  script::PubKeyHash seller_;
  chain::Amount price_;
  chain::Amount fee_;
  int timeout_blocks_;

  State state_ = State::kInit;
  chain::OutPoint offer_outpoint_;
  chain::TxOut offer_out_;
  std::int64_t timeout_height_ = 0;
};

}  // namespace bcwan::core

// Virtual-time cost model for the paper's hardware.
//
// The crypto on the critical path is *really executed* (a distinct RSA-512
// key pair per message, real AES/RSA on every envelope, real ECDSA on every
// transaction) — but the virtual clock charges the cost class of the
// paper's platforms (STM32F746 node, Raspberry Pi gateway, PlanetLab-node
// recipient daemon), not of this build machine. DESIGN.md §5 records the
// calibration.
#pragma once

#include "util/time.hpp"

namespace bcwan::core {

struct TimingModel {
  /// Node (STM32F746): AES-256-CBC of one block + RSA-512 encrypt (e=65537)
  /// + RSA-512 sign with a 512-bit private exponent, software bignum.
  util::SimTime node_seal = 120 * util::kMillisecond;

  /// Gateway (Raspberry Pi): RSA-512 key generation — two 256-bit primes.
  util::SimTime gateway_keygen = 150 * util::kMillisecond;

  /// Gateway: directory lookup + TCP connection setup to the recipient.
  util::SimTime gateway_forward = 10 * util::kMillisecond;

  /// Recipient daemon: RSA-512 signature verification of the envelope.
  util::SimTime recipient_verify = 10 * util::kMillisecond;

  /// Recipient daemon: RSA-512 decrypt + AES decrypt once eSk is revealed.
  util::SimTime recipient_decrypt = 15 * util::kMillisecond;

  /// Building a transaction in the BcWAN daemon. The paper's Golang daemon
  /// drives Multichain over JSON-RPC — "create the transactions, sign the
  /// transactions and send the transactions" — three round trips to a
  /// separate daemon process on a memory-constrained (512 MB) PlanetLab
  /// node.
  util::SimTime wallet_tx_build = 350 * util::kMillisecond;
};

}  // namespace bcwan::core

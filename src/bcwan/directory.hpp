// Decentralized gateway directory (paper §4.3 / §5.1).
//
// BcWAN has no DNS: "Each recipient that is ready to receive messages on a
// given IP address must create a blockchain transaction containing the
// information relative to its IP address. The gateway ... will then do a
// lookup in the blockchain to find the IP address associated to this
// blockchain address." Announcements ride in OP_RETURN outputs; on start-up
// a node "retrieves the recent blocks ... and scans their content for
// foreign gateways IPs", then keeps its cache live from gossip.
//
// The cache is a height-indexed materialization of the chain's
// announcements: confirmed entries carry the height that published them,
// and every indexed height keeps an undo frame (the entries it overwrote),
// so a reorg unwinds in O(depth) instead of rescanning the whole window.
// With a persist_path the index survives restarts — the file names the tip
// it reflects, and recovery catches up from there (or rescans if that tip
// left the active chain).
//
// Anti-spoofing: an announcement is only ingested when the announcing
// transaction is signed by the claimed owner — the first input's pubkey
// must hash to the advertised blockchain address.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "p2p/chain_node.hpp"
#include "script/templates.hpp"

namespace bcwan::core {

/// IPv4 address in host byte order (the simulator hands out 10.0.0.x).
using IpAddress = std::uint32_t;

struct DirectoryEntry {
  script::PubKeyHash owner{};
  IpAddress ip = 0;
  std::uint16_t port = 0;
  /// Height of the block carrying it; -1 while only in the mempool.
  int height = -1;
};

/// "BCWN" | version | owner pkh (20) | ipv4 (4) | port (2).
util::Bytes encode_directory_entry(const script::PubKeyHash& owner,
                                   IpAddress ip, std::uint16_t port);
std::optional<DirectoryEntry> decode_directory_entry(util::ByteView data);

std::string format_ip(IpAddress ip);

struct DirectoryOptions {
  /// Blocks scanned on a cold start (no usable persisted index).
  int startup_scan_depth = 1000;
  /// Indexed heights that keep an undo frame. Reorgs within this depth
  /// unwind incrementally; anything deeper falls back to a full rescan.
  int undo_depth = 256;
  /// Persisted index file (written atomically via tmp+rename). Empty keeps
  /// the index in memory only.
  std::string persist_path;
};

class Directory {
 public:
  Directory(p2p::ChainNode& node, DirectoryOptions options);
  /// Installs tx/block/reorg/restart watchers on the node and builds the
  /// index (from the persisted file when one is configured and still
  /// matches the chain, otherwise by scanning).
  /// LIFETIME: the watchers reference this object for the node's remaining
  /// lifetime — a Directory must outlive any further event processing on
  /// the node it watches.
  explicit Directory(p2p::ChainNode& node, int startup_scan_depth = 1000)
      : Directory(node, with_depth(startup_scan_depth)) {}

  /// The paper's lookup: blockchain address -> IP. Newest announcement wins
  /// — a mempool sighting shadows the confirmed entry until it confirms.
  std::optional<DirectoryEntry> lookup(const script::PubKeyHash& owner) const;

  /// Distinct owners known (confirmed plus mempool-only).
  std::size_t size() const noexcept;

  /// Drop the index and re-run the full scan (tests / deep-reorg fallback).
  void rescan(int depth);

  // -- Index introspection (tests / experiments). --

  /// Highest active-chain height the confirmed index reflects.
  int indexed_tip() const noexcept { return indexed_tip_; }
  /// Full rebuilds performed (startup without a usable persisted index,
  /// reorgs past the undo window, corrupt/stale persisted files).
  std::uint64_t full_rescans() const noexcept { return full_rescans_; }
  /// Reorgs absorbed incrementally via undo frames.
  std::uint64_t indexed_reorgs() const noexcept { return indexed_reorgs_; }

  /// Write the persisted index now. No-op (true) without a persist_path;
  /// false on I/O failure.
  bool persist() const;

 private:
  struct PkhHasher {
    std::size_t operator()(const script::PubKeyHash& h) const noexcept {
      std::size_t out;
      std::memcpy(&out, h.data(), sizeof out);
      return out;
    }
  };

  /// Confirmed-map mutation made by one indexed height, inverted: what the
  /// owner's slot held before that height touched it.
  struct UndoRecord {
    script::PubKeyHash owner{};
    bool had_prev = false;
    DirectoryEntry prev{};
  };

  using EntryMap =
      std::unordered_map<script::PubKeyHash, DirectoryEntry, PkhHasher>;

  static DirectoryOptions with_depth(int depth) {
    DirectoryOptions o;
    o.startup_scan_depth = depth;
    return o;
  }

  void ingest_mempool(const chain::Transaction& tx);
  /// Apply a confirmed transaction's announcements at `height`, recording
  /// undo when that height keeps a frame.
  void apply_confirmed(const chain::Transaction& tx, int height);
  void begin_frame(int height);
  void on_block(const chain::Block& block);
  /// Ingest active-chain heights above indexed_tip_ up to the current tip.
  void catch_up();
  void on_reorg(int fork_height);
  /// Restart/startup: install the persisted index or rescan.
  void recover();
  bool try_load();
  void note_entries_gauge() const;

  p2p::ChainNode& node_;
  DirectoryOptions options_;
  /// Announcements confirmed on the active chain, keyed by owner.
  EntryMap confirmed_;
  /// Unconfirmed sightings (height -1); shadows confirmed_ in lookups and
  /// is retired per-owner when an announcement for that owner confirms.
  EntryMap mempool_;
  /// Undo frames for the most recent indexed heights, oldest first.
  std::map<int, std::vector<UndoRecord>> undo_;
  int indexed_tip_ = -1;
  std::uint64_t full_rescans_ = 0;
  std::uint64_t indexed_reorgs_ = 0;
};

}  // namespace bcwan::core

// Decentralized gateway directory (paper §4.3 / §5.1).
//
// BcWAN has no DNS: "Each recipient that is ready to receive messages on a
// given IP address must create a blockchain transaction containing the
// information relative to its IP address. The gateway ... will then do a
// lookup in the blockchain to find the IP address associated to this
// blockchain address." Announcements ride in OP_RETURN outputs; on start-up
// a node "retrieves the recent blocks ... and scans their content for
// foreign gateways IPs", then keeps its cache live from gossip.
//
// Anti-spoofing: an announcement is only ingested when the announcing
// transaction is signed by the claimed owner — the first input's pubkey
// must hash to the advertised blockchain address.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "p2p/chain_node.hpp"
#include "script/templates.hpp"

namespace bcwan::core {

/// IPv4 address in host byte order (the simulator hands out 10.0.0.x).
using IpAddress = std::uint32_t;

struct DirectoryEntry {
  script::PubKeyHash owner{};
  IpAddress ip = 0;
  std::uint16_t port = 0;
  /// Height of the block carrying it; -1 while only in the mempool.
  int height = -1;
};

/// "BCWN" | version | owner pkh (20) | ipv4 (4) | port (2).
util::Bytes encode_directory_entry(const script::PubKeyHash& owner,
                                   IpAddress ip, std::uint16_t port);
std::optional<DirectoryEntry> decode_directory_entry(util::ByteView data);

std::string format_ip(IpAddress ip);

class Directory {
 public:
  /// Installs tx/block/reorg watchers on the node and performs the start-up
  /// scan; a reorg triggers a full resync so entries from disconnected
  /// blocks cannot linger.
  /// LIFETIME: the watchers reference this object for the node's remaining
  /// lifetime — a Directory must outlive any further event processing on
  /// the node it watches.
  explicit Directory(p2p::ChainNode& node, int startup_scan_depth = 1000);

  /// The paper's lookup: blockchain address -> IP. Newest announcement wins.
  std::optional<DirectoryEntry> lookup(const script::PubKeyHash& owner) const;

  std::size_t size() const noexcept { return entries_.size(); }

  /// Re-run the full scan (tests / recovery).
  void rescan(int depth);

 private:
  struct PkhHasher {
    std::size_t operator()(const script::PubKeyHash& h) const noexcept {
      std::size_t out;
      std::memcpy(&out, h.data(), sizeof out);
      return out;
    }
  };

  void ingest(const chain::Transaction& tx, int height);

  p2p::ChainNode& node_;
  int scan_depth_;
  std::unordered_map<script::PubKeyHash, DirectoryEntry, PkhHasher> entries_;
};

}  // namespace bcwan::core

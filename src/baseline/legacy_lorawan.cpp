#include "baseline/legacy_lorawan.hpp"

#include <vector>

namespace bcwan::baseline {

LegacyLoraWan::LegacyLoraWan(LegacyConfig config)
    : config_(config), rng_(config.seed) {}

void LegacyLoraWan::run(std::size_t exchanges) {
  // The centralized path has no feedback loop, so it reduces to a clean
  // per-message pipeline: airtime + backhaul + NS processing + WAN.
  lora::LoraConfig phy;
  phy.sf = config_.sf;
  const util::SimTime t_air = lora::airtime(phy, config_.frame_bytes);

  std::vector<lora::DutyCycleLimiter> limiters(
      static_cast<std::size_t>(config_.sensors),
      lora::DutyCycleLimiter(config_.duty_cycle));

  std::size_t launched = 0;
  std::size_t next_sensor = 0;
  while (launched < exchanges) {
    auto& limiter = limiters[next_sensor];
    next_sensor = (next_sensor + 1) % limiters.size();
    const util::SimTime jittered =
        loop_.now() +
        static_cast<util::SimTime>(rng_.below(2 * util::kSecond));
    const util::SimTime start =
        std::max(limiter.earliest_start(jittered, t_air), jittered);
    limiter.record(start, t_air);
    const util::SimTime backhaul = config_.backhaul.sample(rng_);
    const util::SimTime wan = config_.wan.sample(rng_);
    const util::SimTime done = start + t_air + backhaul +
                               config_.network_server_processing + wan;
    loop_.at(done, [this, start, done] {
      latency_.add(util::to_seconds(done - start));
    });
    ++launched;
  }
  loop_.run();
}

}  // namespace bcwan::baseline

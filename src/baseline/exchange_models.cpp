#include "baseline/exchange_models.hpp"

namespace bcwan::baseline {

namespace {

struct GatewayState {
  bool malicious = false;
  int reputation = 0;
};

std::vector<GatewayState> make_gateways(const ExchangeModelConfig& config,
                                        util::Rng& rng) {
  std::vector<GatewayState> gateways(
      static_cast<std::size_t>(config.gateways));
  for (auto& gw : gateways) gw.malicious = rng.chance(config.malicious_fraction);
  return gateways;
}

}  // namespace

ExchangeModelResult run_reputation_model(const ExchangeModelConfig& config) {
  util::Rng rng(config.seed);
  auto gateways = make_gateways(config, rng);
  ExchangeModelResult result;
  double total_latency = 0.0;

  for (std::size_t i = 0; i < config.interactions; ++i) {
    // Pick a random gateway the recipient still trusts; if none qualifies
    // the message simply isn't sent through a foreign gateway.
    std::vector<std::size_t> candidates;
    for (std::size_t g = 0; g < gateways.size(); ++g) {
      if (gateways[g].reputation > config.reputation_threshold)
        candidates.push_back(g);
    }
    ++result.attempted;
    if (candidates.empty()) continue;
    auto& gw = gateways[candidates[rng.below(candidates.size())]];

    // Pay first.
    result.value_paid += config.price;
    if (gw.malicious) {
      // Keeps the money, never delivers. Reputation damage follows, but
      // the payment is gone — the §4.4 problem.
      result.value_lost += config.price;
      gw.reputation -= 4;
      if (config.whitewashing && gw.reputation <= config.reputation_threshold) {
        gw.reputation = 0;  // re-registers under a fresh identity
      }
    } else {
      ++result.delivered;
      result.gateway_revenue += config.price;
      gw.reputation += 1;
      total_latency += config.normal_latency_s;
    }
  }
  result.mean_latency_s =
      result.delivered == 0 ? 0.0
                            : total_latency / static_cast<double>(result.delivered);
  return result;
}

ExchangeModelResult run_altruistic_model(const ExchangeModelConfig& config) {
  util::Rng rng(config.seed);
  ExchangeModelResult result;
  double total_latency = 0.0;
  for (std::size_t i = 0; i < config.interactions; ++i) {
    ++result.attempted;
    // A random gateway forwards only if it happens to be altruistic.
    if (rng.chance(config.altruistic_fraction)) {
      ++result.delivered;
      total_latency += config.normal_latency_s;
    }
  }
  // Nobody pays, nobody earns: zero incentive to deploy gateways (§3).
  result.mean_latency_s =
      result.delivered == 0 ? 0.0
                            : total_latency / static_cast<double>(result.delivered);
  return result;
}

ExchangeModelResult run_bcwan_model(const ExchangeModelConfig& config) {
  util::Rng rng(config.seed);
  auto gateways = make_gateways(config, rng);
  ExchangeModelResult result;
  double total_latency = 0.0;

  for (std::size_t i = 0; i < config.interactions; ++i) {
    ++result.attempted;
    auto& gw = gateways[rng.below(gateways.size())];
    if (gw.malicious) {
      // Gateway withholds eSk: the Listing-1 contract lets the recipient
      // reclaim after the CLTV timeout. Money safe, time lost, no data.
      total_latency += config.reclaim_penalty_s;
    } else {
      ++result.delivered;
      result.value_paid += config.price;
      result.gateway_revenue += config.price;
      total_latency += config.normal_latency_s;
    }
  }
  result.mean_latency_s =
      total_latency / static_cast<double>(config.interactions);
  return result;
}

}  // namespace bcwan::baseline

// Baselines 2 and 3: alternative exchange mechanisms, Monte-Carlo models.
//
// §4.4 discusses the reputation alternative: "If the recipient pays for the
// data first ... the recipient can alter the reputation of the gateway.
// This solution reduces the probability of misbehavior but does not
// eliminate the problem." §3 discusses Durand et al.'s altruistic P2P
// design: "their solution does not incentive gateways ... and thus it
// reduces users interest in deploying gateways."
//
// These models quantify both against BcWAN's fair exchange: value lost to
// malicious gateways, delivery rate, and the latency penalty the victim
// pays instead (BcWAN loses time to the CLTV reclaim, never money).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace bcwan::baseline {

struct ExchangeModelConfig {
  int gateways = 20;
  double malicious_fraction = 0.2;
  std::size_t interactions = 10'000;
  double price = 1.0;  // paid per message, arbitrary unit
  std::uint64_t seed = 23;

  // Reputation model: score starts at 0; +1 on honest delivery, -4 on
  // cheat; a recipient avoids gateways below the threshold.
  int reputation_threshold = -4;
  // Whitewashing/Sybil: a shunned gateway re-registers under a fresh
  // identity (reputation resets), so exclusion never sticks. This is the
  // attack that makes §4.4 dismiss reputation — identity is free in an
  // open federation.
  bool whitewashing = false;

  // Altruistic model: fraction of gateways that forward with no payment.
  double altruistic_fraction = 0.4;

  // BcWAN model: reclaim penalty when a gateway withholds (timeout blocks x
  // block interval, in seconds).
  double reclaim_penalty_s = 100.0 * 15.0;
  double normal_latency_s = 1.6;
};

struct ExchangeModelResult {
  std::size_t attempted = 0;
  std::size_t delivered = 0;
  double value_paid = 0.0;
  double value_lost = 0.0;       // paid but no data received
  double gateway_revenue = 0.0;  // honest gateways' income (incentive)
  double mean_latency_s = 0.0;

  double delivery_rate() const {
    return attempted == 0
               ? 0.0
               : static_cast<double>(delivered) / static_cast<double>(attempted);
  }
};

/// Pay-first with reputation tracking (§4.4's rejected alternative).
ExchangeModelResult run_reputation_model(const ExchangeModelConfig& config);

/// No payment at all (Durand et al. / The Things Network style).
ExchangeModelResult run_altruistic_model(const ExchangeModelConfig& config);

/// BcWAN's fair exchange: a malicious gateway can only waste the victim's
/// time (reclaim after timeout); it cannot take payment without delivering.
ExchangeModelResult run_bcwan_model(const ExchangeModelConfig& config);

}  // namespace bcwan::baseline

// Baseline 1: the legacy centralized LoRaWAN path (paper Fig. 1).
//
// node --LoRa--> gateway --backhaul--> network server --WAN--> app server.
// No per-message key exchange, no blockchain: the network server holds the
// session keys and routes by DevAddr. This is the latency comparator for
// ABL-BASE: what BcWAN's decentralization costs relative to the
// trusted-operator architecture it replaces.
#pragma once

#include "lora/airtime.hpp"
#include "lora/radio.hpp"
#include "p2p/event_loop.hpp"
#include "p2p/network.hpp"
#include "util/stats.hpp"

namespace bcwan::baseline {

struct LegacyConfig {
  int sensors = 30;
  double duty_cycle = 0.01;
  lora::SpreadingFactor sf = lora::SpreadingFactor::kSF7;
  std::size_t frame_bytes = 33;  // 13 B LoRaWAN overhead + ~20 B payload
  p2p::LatencyModel backhaul;    // gateway -> network server
  p2p::LatencyModel wan;         // network server -> app server
  util::SimTime network_server_processing = 5 * util::kMillisecond;
  std::uint64_t seed = 17;
};

/// Runs `exchanges` uplinks through the centralized path and reports
/// node-to-application latencies.
class LegacyLoraWan {
 public:
  explicit LegacyLoraWan(LegacyConfig config);

  /// Blocks (in virtual time) until all exchanges complete.
  void run(std::size_t exchanges);

  const util::SampleStats& latency_stats() const noexcept { return latency_; }

 private:
  LegacyConfig config_;
  p2p::EventLoop loop_;
  util::Rng rng_;
  util::SampleStats latency_;
};

}  // namespace bcwan::baseline

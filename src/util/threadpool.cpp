#include "util/threadpool.hpp"

namespace bcwan::util {

ThreadPool::ThreadPool(std::size_t workers) {
  queues_.reserve(workers + 1);
  for (std::size_t i = 0; i < workers + 1; ++i)
    queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::run_one(std::size_t home) {
  std::function<void()> task;
  {
    Queue& own = *queues_[home];
    std::lock_guard lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (!task) {
    // Own queue dry: steal from the back of a victim's deque. Starting the
    // scan at home+1 spreads contention instead of mobbing queue 0.
    for (std::size_t k = 1; k < queues_.size() && !task; ++k) {
      Queue& victim = *queues_[(home + k) % queues_.size()];
      std::lock_guard lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
      }
    }
  }
  if (!task) return false;
  task();
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(mutex_);
    done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen_batch = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_id_ != seen_batch &&
                         remaining_.load(std::memory_order_acquire) > 0);
      });
      if (stop_) return;
      seen_batch = batch_id_;
    }
    while (run_one(index)) {
    }
  }
}

void ThreadPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    for (auto& task : tasks) task();
    return;
  }
  std::lock_guard batch_lock(batch_mutex_);
  remaining_.store(tasks.size(), std::memory_order_release);
  const std::size_t nq = queues_.size();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Queue& q = *queues_[i % nq];
    std::lock_guard lock(q.mutex);
    q.tasks.push_back(std::move(tasks[i]));
  }
  {
    std::lock_guard lock(mutex_);
    ++batch_id_;
  }
  work_cv_.notify_all();

  const std::size_t master = nq - 1;
  while (run_one(master)) {
  }
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::shared(std::size_t workers) {
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard lock(mutex);
  if (!pool || pool->worker_count() != workers)
    pool = std::make_unique<ThreadPool>(workers);
  return *pool;
}

}  // namespace bcwan::util

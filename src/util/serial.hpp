// Canonical binary serialization used by transactions, blocks and frames.
//
// Integers are little-endian (Bitcoin convention); variable-length sizes use
// Bitcoin's CompactSize ("varint") encoding so serialized transactions look
// like the real thing on the wire.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace bcwan::util {

/// Thrown by Reader when the input is truncated or malformed.
class DeserializeError : public std::runtime_error {
 public:
  explicit DeserializeError(const std::string& what)
      : std::runtime_error("deserialize: " + what) {}
};

/// Append-only binary writer.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Bitcoin CompactSize.
  void varint(std::uint64_t v);
  void bytes(ByteView b) {
    // The explicit capacity check keeps GCC-12's -Wstringop-overflow quiet
    // on the inlined insert path. Grow geometrically when we do grow: an
    // exact-size reserve() would pin capacity == size and turn a run of
    // appends quadratic, since reserve never over-allocates.
    const std::size_t need = out_.size() + b.size();
    if (need > out_.capacity())
      out_.reserve(std::max(need, out_.size() + out_.size() / 2));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// varint length prefix + raw bytes.
  void var_bytes(ByteView b);

  const Bytes& data() const noexcept { return out_; }
  Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
};

/// Bounds-checked binary reader over a borrowed buffer.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  Bytes bytes(std::size_t n);
  Bytes var_bytes();
  /// Zero-copy variants: a view into the underlying buffer, valid only as
  /// long as the buffer the Reader borrows. The hot replay path decodes
  /// thousands of length-prefixed blobs per millisecond; copying each one
  /// into a fresh Bytes dominated the profile.
  ByteView view(std::size_t n);
  ByteView var_view();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }
  /// Require that the whole buffer was consumed (canonical encodings).
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace bcwan::util

// Chunked slab with an intrusive freelist: fixed-cost slot recycling for
// high-churn simulator records (event-loop events, in-flight SimNet
// deliveries).
//
// The city-scale event core allocates and frees one record per scheduled
// event; a general-purpose allocator pays a malloc/free round trip plus
// fragmentation for every one of them. A Slab instead hands out stable
// uint32 slot indices backed by fixed-size chunks: release pushes the index
// onto a freelist, acquire pops it, and the chunk memory is reused for the
// lifetime of the simulation. Slots are never returned to the OS until the
// slab dies — exactly the right trade for a simulator whose live-event
// population plateaus.
//
// Not thread-safe: every slab instance is owned by one scheduler thread
// (parallel event execution *stages* new events and the owning thread
// allocates at the merge barrier).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace bcwan::util {

template <typename T, std::size_t kChunkSize = 1024>
class Slab {
  static_assert(kChunkSize > 0 && (kChunkSize & (kChunkSize - 1)) == 0,
                "chunk size must be a power of two");

 public:
  using Index = std::uint32_t;
  static constexpr Index kInvalid = ~Index{0};

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  /// Slots still live at slab death are destroyed (a simulation may end
  /// with events/messages in flight).
  ~Slab() {
    for (std::size_t slot = 0; slot < size_; ++slot)
      if (live_mask_[slot]) get(static_cast<Index>(slot)).~T();
  }

  /// Claim a slot, constructing T from `args` in place. O(1) amortized.
  template <typename... Args>
  Index acquire(Args&&... args) {
    Index slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<Index>(size_);
      if ((size_ & (kChunkSize - 1)) == 0)
        chunks_.push_back(std::make_unique<Storage[]>(kChunkSize));
      ++size_;
      live_mask_.resize(size_, false);
    }
    ::new (address(slot)) T(std::forward<Args>(args)...);
    live_mask_[slot] = true;
    ++live_;
    return slot;
  }

  /// Destroy the slot's value and recycle the index.
  void release(Index slot) {
    assert(slot < size_);
    assert(live_mask_[slot]);
    get(slot).~T();
    live_mask_[slot] = false;
    free_.push_back(slot);
    --live_;
  }

  T& get(Index slot) {
    assert(slot < size_);
    return *std::launder(reinterpret_cast<T*>(address(slot)));
  }
  const T& get(Index slot) const {
    assert(slot < size_);
    return *std::launder(reinterpret_cast<const T*>(
        const_cast<Slab*>(this)->address(slot)));
  }

  /// Live (acquired, unreleased) slots.
  std::size_t size() const noexcept { return live_; }
  /// High-water slot count (memory actually committed).
  std::size_t capacity() const noexcept { return size_; }
  bool empty() const noexcept { return live_ == 0; }

 private:
  struct alignas(T) Storage {
    unsigned char bytes[sizeof(T)];
  };

  void* address(Index slot) {
    return chunks_[slot / kChunkSize][slot & (kChunkSize - 1)].bytes;
  }

  std::vector<std::unique_ptr<Storage[]>> chunks_;
  std::vector<Index> free_;
  std::vector<bool> live_mask_;
  std::size_t size_ = 0;  // slots ever created
  std::size_t live_ = 0;  // currently acquired
};

}  // namespace bcwan::util

#include "util/serial.hpp"

namespace bcwan::util {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::varint(std::uint64_t v) {
  if (v < 0xfd) {
    u8(static_cast<std::uint8_t>(v));
  } else if (v <= 0xffff) {
    u8(0xfd);
    u16(static_cast<std::uint16_t>(v));
  } else if (v <= 0xffffffffULL) {
    u8(0xfe);
    u32(static_cast<std::uint32_t>(v));
  } else {
    u8(0xff);
    u64(v);
  }
}

void Writer::var_bytes(ByteView b) {
  varint(b.size());
  bytes(b);
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DeserializeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | hi << 8);
}

std::uint32_t Reader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | hi << 16;
}

std::uint64_t Reader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | hi << 32;
}

std::uint64_t Reader::varint() {
  const auto tag = u8();
  if (tag < 0xfd) return tag;
  if (tag == 0xfd) {
    const auto v = u16();
    if (v < 0xfd) throw DeserializeError("non-canonical varint");
    return v;
  }
  if (tag == 0xfe) {
    const auto v = u32();
    if (v <= 0xffff) throw DeserializeError("non-canonical varint");
    return v;
  }
  const auto v = u64();
  if (v <= 0xffffffffULL) throw DeserializeError("non-canonical varint");
  return v;
}

Bytes Reader::bytes(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes Reader::var_bytes() {
  const std::uint64_t n = varint();
  if (n > remaining()) throw DeserializeError("length prefix beyond input");
  return bytes(static_cast<std::size_t>(n));
}

ByteView Reader::view(std::size_t n) {
  need(n);
  const ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

ByteView Reader::var_view() {
  const std::uint64_t n = varint();
  if (n > remaining()) throw DeserializeError("length prefix beyond input");
  return view(static_cast<std::size_t>(n));
}

void Reader::expect_done() const {
  if (!done()) throw DeserializeError("trailing bytes");
}

}  // namespace bcwan::util

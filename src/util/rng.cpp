#include "util/rng.hpp"

#include <cmath>

namespace bcwan::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) noexcept { return splitmix64(x); }

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

double Rng::exponential(double mean) noexcept {
  double u = 0.0;
  while (u == 0.0) u = uniform();
  return -mean * std::log(u);
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t r = next();
    for (int k = 0; k < 8 && i < n; ++k) {
      out[i++] = static_cast<std::uint8_t>(r);
      r >>= 8;
    }
  }
  return out;
}

}  // namespace bcwan::util

// Small work-stealing thread pool for batch workloads.
//
// Built for the block-validation check queue: a master thread drops a batch
// of independent tasks, every worker (plus the master itself) drains its own
// deque front-to-back and steals from the back of a victim's deque when it
// runs dry, and run() returns once the whole batch has executed. Workers
// park on a condition variable between batches, so an idle pool costs
// nothing but N sleeping threads.
//
// Scope limits, deliberately: one batch in flight at a time (run() holds the
// batch lock), tasks must not throw, and tasks must not call run() on the
// same pool re-entrantly. That is exactly the shape connect_block needs, and
// it keeps the synchronization small enough to reason about under TSan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bcwan::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 is valid: run() then executes inline.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Execute every task to completion; the calling thread participates.
  void run(std::vector<std::function<void()>> tasks);

  /// Process-wide pool, lazily (re)built when a different size is asked
  /// for. Not safe to resize while another thread is inside run().
  static ThreadPool& shared(std::size_t workers);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t index);
  /// Pop from own queue (front) or steal (back) and execute one task.
  bool run_one(std::size_t home);

  // queues_[i] feeds worker thread i; the last queue belongs to the thread
  // calling run().
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex batch_mutex_;  // serializes run() calls

  std::mutex mutex_;  // guards batch_id_/stop_, pairs with the cvs
  std::condition_variable work_cv_;  // workers: a new batch arrived
  std::condition_variable done_cv_;  // master: the batch finished
  std::atomic<std::size_t> remaining_{0};
  std::uint64_t batch_id_ = 0;
  bool stop_ = false;
};

}  // namespace bcwan::util

// Deterministic random number generation.
//
// Every stochastic component of the simulator (latency sampling, mining,
// key generation in tests) draws from an explicitly-seeded Rng so whole
// experiments replay bit-for-bit. The generator is xoshiro256**.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace bcwan::util {

/// One stateless splitmix64 scramble: a full-avalanche 64-bit mix used to
/// derive independent RNG substreams and order-free trace digests.
std::uint64_t mix64(std::uint64_t x) noexcept;

class Rng {
 public:
  /// Seeds via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Standard normal via Box-Muller.
  double normal() noexcept;

  /// Lognormal with the given log-space mu / sigma.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given mean (inter-arrival sampling).
  double exponential(double mean) noexcept;

  bool chance(double p) noexcept { return uniform() < p; }

  Bytes bytes(std::size_t n);

  /// Derive an independent generator (stable given call order).
  Rng fork() noexcept { return Rng(next() ^ 0xa0761d6478bd642fULL); }

  /// Order-independent substream derivation: the returned generator's state
  /// is a pure function of (seed, stream), never of how many draws any other
  /// stream has made. This is what makes sharded-simulation sampling
  /// deterministic — per-entity and per-host-pair streams stay bit-identical
  /// no matter which thread samples first.
  static Rng substream(std::uint64_t seed, std::uint64_t stream) noexcept {
    return Rng(mix64(seed ^ mix64(stream ^ 0x6a09e667f3bcc909ULL)));
  }
  /// Two-dimensional substream (entity, per-entity nonce).
  static Rng substream(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t nonce) noexcept {
    return substream(seed, mix64(stream) ^ nonce * 0x9e3779b97f4a7c15ULL);
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace bcwan::util

#include "util/bytes.hpp"

#include <stdexcept>

namespace bcwan::util {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_val(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_val(hex[i]);
    const int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

Bytes from_hex_strict(std::string_view hex) {
  auto decoded = from_hex(hex);
  if (!decoded) throw std::invalid_argument("from_hex_strict: malformed hex");
  return *std::move(decoded);
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool ct_equal(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

Bytes str_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string bytes_str(ByteView b) { return std::string(b.begin(), b.end()); }

}  // namespace bcwan::util

// Virtual-time types for the discrete-event simulator.
//
// All simulated latencies are carried as SimTime (microsecond ticks) so that
// event ordering is exact and runs are reproducible across platforms — no
// floating point drift in the scheduler.
#pragma once

#include <cstdint>

namespace bcwan::util {

/// Microseconds of virtual time since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

constexpr SimTime from_millis(double ms) noexcept {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

}  // namespace bcwan::util

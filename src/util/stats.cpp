#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bcwan::util {

double StreamingStats::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_);
  const auto m = static_cast<double>(other.count_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleStats::add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleStats::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleStats::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[std::max<std::size_t>(rank, 1) - 1];
}

std::string SampleStats::histogram(double lo, double hi, std::size_t bins,
                                   std::size_t width) const {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("histogram: bad range");
  std::vector<std::size_t> counts(bins, 0);
  std::size_t overflow = 0;
  std::size_t underflow = 0;
  for (double v : samples_) {
    if (v < lo) {
      ++underflow;
    } else if (v >= hi) {
      ++overflow;
    } else {
      const auto idx = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                                static_cast<double>(bins));
      ++counts[std::min(idx, bins - 1)];
    }
  }
  std::size_t peak = 1;
  for (auto c : counts) peak = std::max(peak, c);

  std::string out;
  char line[160];
  const double bin_width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const double a = lo + bin_width * static_cast<double>(i);
    const double b = a + bin_width;
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    std::snprintf(line, sizeof line, "  [%8.3f, %8.3f) %6zu |", a, b,
                  counts[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow != 0 || overflow != 0) {
    std::snprintf(line, sizeof line, "  (underflow %zu, overflow %zu)\n",
                  underflow, overflow);
    out += line;
  }
  return out;
}

std::string SampleStats::summary(const std::string& unit) const {
  char line[256];
  std::snprintf(line, sizeof line,
                "n=%zu mean=%.3f%s sd=%.3f min=%.3f p50=%.3f p95=%.3f "
                "p99=%.3f max=%.3f",
                count(), mean(), unit.c_str(), stddev(), min(),
                percentile(50), percentile(95), percentile(99), max());
  return line;
}

}  // namespace bcwan::util

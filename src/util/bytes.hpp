// Byte-buffer primitives shared across all BcWAN modules.
//
// `Bytes` is the universal wire/value type: transaction payloads, script
// programs, crypto blobs and LoRa frames are all carried as `Bytes`.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bcwan::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encode a byte buffer as lowercase hex.
std::string to_hex(ByteView data);

/// Decode a hex string (case-insensitive). Returns std::nullopt on malformed
/// input (odd length or non-hex characters).
std::optional<Bytes> from_hex(std::string_view hex);

/// Decode hex that is known-good at the call site (test vectors, constants).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex_strict(std::string_view hex);

/// Byte-wise concatenation of any number of buffers.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality (length leak only); for comparing secrets/MACs.
bool ct_equal(ByteView a, ByteView b) noexcept;

/// Interpret a UTF-8/ASCII string as bytes.
Bytes str_bytes(std::string_view s);

/// Interpret bytes as a std::string (no validation).
std::string bytes_str(ByteView b);

}  // namespace bcwan::util

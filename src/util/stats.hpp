// Online sample statistics used by the benchmark harness to summarise
// exchange latencies the way the paper's Figures 5 and 6 do.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bcwan::util {

class SampleStats {
 public:
  void add(double v);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// p in [0, 100]; nearest-rank on the sorted samples.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

  /// Fixed-width ASCII histogram between [lo, hi) with `bins` buckets —
  /// the bench binaries print these as the stand-in for the paper's figures.
  std::string histogram(double lo, double hi, std::size_t bins,
                        std::size_t width = 50) const;

  /// One-line summary: n, mean, sd, min, p50, p95, p99, max.
  std::string summary(const std::string& unit) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace bcwan::util

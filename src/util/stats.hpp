// Online sample statistics used by the benchmark harness to summarise
// exchange latencies the way the paper's Figures 5 and 6 do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bcwan::util {

/// O(1)-memory running statistics (Welford). The streaming counterpart of
/// SampleStats for workloads whose sample count is unbounded — city-scale
/// runs stream millions of exchange latencies through one of these instead
/// of retaining them. No percentiles; the telemetry histograms cover those.
class StreamingStats {
 public:
  void add(double v) noexcept {
    ++count_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Fold another accumulator in (Chan et al. parallel combine) — used to
  /// merge per-shard partials.
  void merge(const StreamingStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class SampleStats {
 public:
  void add(double v);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// p in [0, 100]; nearest-rank on the sorted samples.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

  /// Fixed-width ASCII histogram between [lo, hi) with `bins` buckets —
  /// the bench binaries print these as the stand-in for the paper's figures.
  std::string histogram(double lo, double hi, std::size_t bins,
                        std::size_t width = 50) const;

  /// One-line summary: n, mean, sd, min, p50, p95, p99, max.
  std::string summary(const std::string& unit) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace bcwan::util

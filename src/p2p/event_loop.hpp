// Discrete-event scheduler over virtual time — serial and sharded backends.
//
// The whole evaluation is a deterministic simulation: LoRa airtime, WAN
// propagation, daemon stalls and mining all schedule callbacks here. Events
// at equal timestamps run in insertion order, so runs replay exactly.
//
// City-scale rebuild (DESIGN.md §14): the original loop was a
// std::priority_queue of heap-allocated std::function callbacks — three
// allocations and a ~40-byte closure per scheduled message at 10k gateways.
// This version keeps events in a slab (util::Slab) addressed by uint32
// slots, offers an allocation-free *coded* event flavor (a (code, a, b)
// triple dispatched through a registered handler — the compact agents'
// native currency), and runs under one of two backends:
//
//   * kSerial — an intrusive 4-ary min-heap of (when, seq, slot) entries.
//     Exactly the legacy semantics: strict (when, seq) execution order.
//   * kSharded — a bucketed calendar queue with conservative-lookahead
//     windows. Events land in aligned buckets of `lookahead()` virtual
//     time; a bucket whose events all belong to parallel strands executes
//     across the worker pool (one worker per strand group), then a merge
//     barrier re-assigns child sequence numbers in the exact order the
//     serial backend would have — so the two backends produce bit-identical
//     traces. Buckets containing serial-strand events (everything scheduled
//     through the legacy at()/after() API) fall back to strict serial
//     stepping within the bucket.
//
// Determinism contract for parallel strands: an event on strand >= 0 may
// only touch state owned by its strand, must draw randomness from
// order-independent substreams (util::Rng::substream), and may only
// schedule further events at >= its own timestamp + lookahead(). The last
// rule is enforced (std::logic_error) — it is what guarantees a window
// never receives events from inside itself, which in turn is why windows
// can run concurrently without violating causality.
//
// Backend selection: explicit constructor argument, or BCWAN_SIM_BACKEND
// ("serial" | "sharded") for the default constructor; worker count from
// BCWAN_SIM_THREADS (default: hardware concurrency, capped at 8).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/slab.hpp"
#include "util/time.hpp"

namespace bcwan::util {
class ThreadPool;
}  // namespace bcwan::util

namespace bcwan::p2p {

/// Events on strand kSerialStrand (every legacy at()/after() call) keep
/// strict global ordering; strands >= 0 declare "my state is disjoint from
/// other strands'" and become eligible for windowed parallel execution.
using StrandId = std::int32_t;
constexpr StrandId kSerialStrand = -1;

class EventLoop {
 public:
  using Callback = std::function<void()>;
  /// Handler for coded events: receives the (a, b) payload words.
  using CodeHandler = std::function<void(std::uint64_t, std::uint64_t)>;

  enum class Backend { kSerial, kSharded };

  /// Reads BCWAN_SIM_BACKEND / BCWAN_SIM_THREADS.
  EventLoop();
  EventLoop(Backend backend, unsigned threads);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Virtual now. Inside a parallel window this is the executing event's
  /// timestamp on the calling worker thread.
  util::SimTime now() const noexcept;

  /// Schedule at an absolute virtual time (clamped to now). Serial strand.
  void at(util::SimTime when, Callback cb) {
    schedule_callback(when, kSerialStrand, std::move(cb));
  }
  /// Schedule `delay` after now. Serial strand.
  void after(util::SimTime delay, Callback cb) {
    schedule_callback(now() + delay, kSerialStrand, std::move(cb));
  }
  /// Strand-tagged callback event.
  void at_strand(util::SimTime when, StrandId strand, Callback cb) {
    schedule_callback(when, strand, std::move(cb));
  }

  /// Register a coded-event handler; returns the code to post() with.
  /// Registration order is part of the deterministic setup — do it before
  /// running.
  std::uint32_t register_code(CodeHandler handler);

  /// Allocation-free event: at `when`, on `strand`, invoke the handler
  /// registered for `code` with (a, b). The event record lives in the slab;
  /// nothing is heap-allocated per post.
  void post(util::SimTime when, StrandId strand, std::uint32_t code,
            std::uint64_t a = 0, std::uint64_t b = 0);

  /// Run one event; false when the queue is empty. Strict serial semantics
  /// on both backends.
  bool step();
  /// Run until the queue empties or stop() is called.
  void run();
  /// Run every event scheduled at or before `deadline`; the clock ends at
  /// `deadline` even if the queue still has later events.
  void run_until(util::SimTime deadline);

  /// Stops run()/run_until() at the next boundary: immediately between
  /// events on the serial path, after the in-flight window on the sharded
  /// path. A subsequent run() resumes with the remaining queue.
  void stop() noexcept { stopped_.store(true, std::memory_order_relaxed); }
  std::size_t pending() const noexcept { return pending_; }

  Backend backend() const noexcept { return backend_; }
  unsigned shard_threads() const noexcept { return threads_; }

  /// Conservative window width (also the calendar bucket width). Only
  /// changeable while the queue is empty. Default 2 ms.
  void set_lookahead(util::SimTime lookahead);
  util::SimTime lookahead() const noexcept { return lookahead_; }

  /// Events executed since construction (both backends).
  std::uint64_t events_executed() const noexcept { return executed_; }
  /// Windows that actually ran on the worker pool (diagnostics).
  std::uint64_t parallel_windows() const noexcept { return parallel_windows_; }

 private:
  struct Event {
    util::SimTime when;
    std::uint64_t seq;
    StrandId strand;
    std::uint32_t code;  // kCallbackCode for cb events
    std::uint64_t a, b;
    Callback cb;
  };
  static constexpr std::uint32_t kCallbackCode = ~std::uint32_t{0};

  struct HeapEntry {
    util::SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator<(const HeapEntry& o) const noexcept {
      return when != o.when ? when < o.when : seq < o.seq;
    }
  };

  /// A child event staged by a worker during a parallel window; the merge
  /// barrier turns these into real slab events with properly ordered seqs.
  struct Staged {
    util::SimTime when;
    StrandId strand;
    std::uint32_t code;
    std::uint64_t a, b;
    Callback cb;
  };

  // Per-worker context while executing a parallel window (thread-local).
  struct ExecContext {
    EventLoop* loop = nullptr;
    util::SimTime now = 0;
    util::SimTime min_child_when = 0;
    std::vector<Staged>* staged = nullptr;
  };
  static thread_local ExecContext* tls_ctx_;

  void schedule_callback(util::SimTime when, StrandId strand, Callback cb);
  void insert(util::SimTime when, StrandId strand, std::uint32_t code,
              std::uint64_t a, std::uint64_t b, Callback cb);
  void insert_entry(HeapEntry entry);
  void execute(std::uint32_t slot);
  void dispatch(const Event& event);

  // 4-ary heap (serial backend).
  void heap_push(HeapEntry entry);
  HeapEntry heap_pop();

  // Calendar queue (sharded backend).
  std::uint64_t bucket_of(util::SimTime when) const noexcept {
    return static_cast<std::uint64_t>(when) / static_cast<std::uint64_t>(lookahead_);
  }
  std::vector<std::uint32_t>& ring_slot(std::uint64_t bucket) noexcept {
    return ring_[bucket & (ring_.size() - 1)];
  }
  void drain_overflow(std::uint64_t upto_bucket);
  /// True if any event is pending at or before `deadline`; sets
  /// `next_bucket` to the first non-empty bucket.
  bool find_next_bucket(util::SimTime deadline, std::uint64_t* next_bucket);
  void run_bucket_serial(std::uint64_t bucket, util::SimTime deadline);
  void run_bucket_parallel(std::vector<HeapEntry>& entries);
  void run_until_sharded(util::SimTime deadline);
  void run_until_serial(util::SimTime deadline);
  bool stop_requested() const noexcept {
    return stopped_.load(std::memory_order_relaxed);
  }

  Backend backend_;
  unsigned threads_;
  util::SimTime lookahead_ = 2 * util::kMillisecond;

  util::Slab<Event> events_;
  std::vector<HeapEntry> heap_;           // serial backend
  std::vector<std::vector<std::uint32_t>> ring_;  // sharded backend
  std::vector<HeapEntry> overflow_;       // beyond-ring-horizon events (heap)
  std::uint64_t ring_floor_bucket_ = 0;   // buckets below this are done
  std::size_t pending_ = 0;

  // While run_bucket_serial drains a bucket, same-bucket insertions go
  // straight into its working heap so intra-bucket causality is exact.
  std::vector<HeapEntry> bucket_heap_;
  std::uint64_t bucket_active_id_ = 0;
  bool bucket_active_ = false;

  std::vector<CodeHandler> codes_;
  std::unique_ptr<util::ThreadPool> pool_;

  // Scratch reused across windows to avoid per-window churn.
  std::vector<HeapEntry> window_;
  std::vector<std::vector<std::uint32_t>> group_order_;  // per worker: window indexes
  std::vector<std::vector<std::vector<Staged>>> staged_;  // [worker][local idx]

  util::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t parallel_windows_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace bcwan::p2p

// Discrete-event scheduler over virtual time.
//
// The whole evaluation is a deterministic simulation: LoRa airtime, WAN
// propagation, daemon stalls and mining all schedule callbacks here. Events
// at equal timestamps run in insertion order, so runs replay exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace bcwan::p2p {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  util::SimTime now() const noexcept { return now_; }

  /// Schedule at an absolute virtual time (clamped to now).
  void at(util::SimTime when, Callback cb);
  /// Schedule `delay` after now.
  void after(util::SimTime delay, Callback cb) { at(now_ + delay, std::move(cb)); }

  /// Run one event; false when the queue is empty.
  bool step();
  /// Run until the queue empties or stop() is called.
  void run();
  /// Run every event scheduled at or before `deadline`; the clock ends at
  /// `deadline` even if the queue still has later events.
  void run_until(util::SimTime deadline);

  void stop() noexcept { stopped_ = true; }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    util::SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  util::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace bcwan::p2p

// Simulated TCP/IP network between federation hosts.
//
// Stands in for the paper's PlanetLab deployment (§5.2): five gateway hosts
// plus a master miner, WAN latencies between sites, and — crucially for
// Fig. 6 — per-host *serial* message processing, so a daemon stalled on
// block verification queues every incoming request until it frees up
// ("the block verification made the Multichain daemon stall and become
// unresponsive for extended periods upon each block arrival").
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "p2p/event_loop.hpp"
#include "p2p/message.hpp"
#include "p2p/transport.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/slab.hpp"

namespace bcwan::p2p {

/// One-way WAN latency model: lognormal with a fixed floor.
struct LatencyModel {
  double median_ms = 45.0;   // inter-PlanetLab-site scale
  double sigma = 0.35;       // log-space spread
  double floor_ms = 2.0;

  util::SimTime sample(util::Rng& rng) const;
};

class SimNet final : public Transport {
 public:
  SimNet(EventLoop& loop, std::uint64_t seed);

  HostId add_host(std::string name);
  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::string& host_name(HostId id) const { return hosts_.at(id).name; }

  /// Default latency for all pairs; per-pair overrides win.
  void set_default_latency(const LatencyModel& model) { default_latency_ = model; }
  void set_latency(HostId a, HostId b, const LatencyModel& model);

  /// Per-message processing cost at the receiving daemon (serialization of
  /// its event loop).
  void set_processing_time(HostId id, util::SimTime t);

  void set_handler(HostId id,
                   std::function<void(const Message&)> handler) override;

  /// Queue a message; it arrives after sampled latency and is processed
  /// when the receiver's daemon is free. Self-sends skip the wire but still
  /// queue behind the daemon. The in-flight record lives in a slab slot —
  /// no per-hop heap allocation beyond the payload refcount.
  void send(HostId from, HostId to, Message msg) override;

  /// Broadcast to every other host. The payload buffer is allocated once
  /// (by the caller's Message) and shared across the whole fan-out.
  void broadcast(HostId from, const Message& msg) override;

  /// Make the host's daemon unresponsive for `duration` starting now (block
  /// verification stall). Stalls extend any existing busy period.
  void stall(HostId id, util::SimTime duration) override;

  /// Virtual time (the underlying EventLoop's clock).
  util::SimTime now() const override { return loop_.now(); }

  /// Virtual time at which the host's daemon frees up.
  util::SimTime busy_until(HostId id) const { return hosts_.at(id).busy_until; }

  /// Partitioned hosts drop all traffic in both directions.
  void set_partitioned(HostId id, bool partitioned);
  bool is_partitioned(HostId id) const {
    return hosts_.at(static_cast<std::size_t>(id)).partitioned;
  }

  /// Delivered-message counter (bench reporting).
  std::uint64_t messages_delivered() const noexcept { return delivered_; }

 private:
  struct Host {
    std::string name;
    std::function<void(const Message&)> handler;
    util::SimTime busy_until = 0;
    util::SimTime processing_time = 1 * util::kMillisecond;
    bool partitioned = false;
  };

  struct Inflight {
    Message msg;
    HostId to;
  };

  util::SimTime latency_between(HostId a, HostId b);
  void on_arrive(std::uint64_t slot, std::uint64_t);
  void on_process(std::uint64_t slot, std::uint64_t);

  EventLoop& loop_;
  std::uint64_t seed_;
  std::vector<Host> hosts_;
  LatencyModel default_latency_;
  std::unordered_map<std::uint64_t, LatencyModel> pair_latency_;
  // Latency randomness is drawn from one substream per host pair, derived
  // statelessly from (seed, pair key): adding hosts or reordering unrelated
  // traffic no longer perturbs the samples another pair sees.
  std::unordered_map<std::uint64_t, util::Rng> pair_rng_;
  util::Slab<Inflight> inflight_;
  std::uint32_t arrive_code_ = 0;
  std::uint32_t process_code_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace bcwan::p2p

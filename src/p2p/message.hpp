// Federation message plumbing: interned message types and shared payloads.
//
// The original Message carried a std::string type tag and an owned byte
// vector; every hop of a broadcast deep-copied both. At city scale that is
// one string + one vector allocation per receiver per message. This header
// replaces them with:
//
//   * MsgType — a process-wide interned identifier (uint16). Construction
//     from a string literal interns once and compares/copies as an integer;
//     the implicit conversion back to the interned std::string keeps every
//     existing `msg.type == "tx"` comparison and telemetry label site
//     compiling unchanged.
//   * SharedPayload — an immutable, reference-counted byte buffer. A
//     broadcast allocates the payload once and every per-receiver Message
//     copy bumps a refcount. Implicit conversions to const util::Bytes& and
//     util::ByteView keep deserialize()/to_hex() call sites unchanged, and
//     immutability makes the sharing sound: receivers cannot observe each
//     other's processing order through the buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace bcwan::p2p {

using HostId = int;

/// Interned message-type tag. Equality via the implicit string conversion;
/// hot paths may compare id() directly.
class MsgType {
 public:
  MsgType() : id_(intern("")) {}
  MsgType(const char* name) : id_(intern(name)) {}  // NOLINT(runtime/explicit)
  MsgType(const std::string& name) : id_(intern(name)) {}  // NOLINT

  std::uint16_t id() const noexcept { return id_; }
  const std::string& str() const noexcept;
  operator const std::string&() const noexcept { return str(); }  // NOLINT

  /// Comparisons intern the other side and compare ids — `msg.type == "tx"`
  /// converts the literal through the MsgType ctor (one table lookup).
  friend bool operator==(const MsgType& a, const MsgType& b) noexcept {
    return a.id_ == b.id_;
  }

 private:
  static std::uint16_t intern(std::string_view name);
  std::uint16_t id_;
};

/// Immutable shared byte buffer: copying a SharedPayload is a refcount
/// bump, never a data copy.
class SharedPayload {
 public:
  SharedPayload() : bytes_(empty_buffer()) {}
  SharedPayload(util::Bytes bytes)  // NOLINT(runtime/explicit)
      : bytes_(std::make_shared<const util::Bytes>(std::move(bytes))) {}

  const util::Bytes& bytes() const noexcept { return *bytes_; }
  operator const util::Bytes&() const noexcept { return *bytes_; }  // NOLINT
  operator util::ByteView() const noexcept { return *bytes_; }      // NOLINT

  std::size_t size() const noexcept { return bytes_->size(); }
  bool empty() const noexcept { return bytes_->empty(); }
  std::uint8_t operator[](std::size_t i) const noexcept { return (*bytes_)[i]; }
  const std::uint8_t* data() const noexcept { return bytes_->data(); }
  auto begin() const noexcept { return bytes_->begin(); }
  auto end() const noexcept { return bytes_->end(); }

  /// Number of Messages (and in-flight copies) sharing this buffer.
  long use_count() const noexcept { return bytes_.use_count(); }

 private:
  static const std::shared_ptr<const util::Bytes>& empty_buffer();
  std::shared_ptr<const util::Bytes> bytes_;
};

struct Message {
  MsgType type;
  SharedPayload payload;
  HostId from = -1;
};

}  // namespace bcwan::p2p

#include "p2p/event_loop.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>

#include "util/threadpool.hpp"

namespace bcwan::p2p {

namespace {

constexpr util::SimTime kMaxTime = std::numeric_limits<util::SimTime>::max();
// Ring of lookahead-wide buckets: 2^15 buckets cover ~65 s of virtual time
// at the default 2 ms lookahead; anything further out waits in the overflow
// heap until the ring floor advances.
constexpr std::size_t kRingBuckets = std::size_t{1} << 15;
// Buckets smaller than this run serially even if fully parallel-strand —
// a worker-pool round trip costs more than a handful of events.
constexpr std::size_t kMinParallelWindow = 8;

EventLoop::Backend backend_from_env() {
  const char* env = std::getenv("BCWAN_SIM_BACKEND");
  if (env != nullptr && std::string_view(env) == "sharded")
    return EventLoop::Backend::kSharded;
  return EventLoop::Backend::kSerial;
}

unsigned threads_from_env() {
  if (const char* env = std::getenv("BCWAN_SIM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 0 && parsed <= 256) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 8u);
}

}  // namespace

thread_local EventLoop::ExecContext* EventLoop::tls_ctx_ = nullptr;

EventLoop::EventLoop() : EventLoop(backend_from_env(), threads_from_env()) {}

EventLoop::EventLoop(Backend backend, unsigned threads)
    : backend_(backend), threads_(std::max(threads, 1u)) {
  if (backend_ == Backend::kSharded) {
    ring_.resize(kRingBuckets);
    group_order_.resize(threads_);
    staged_.resize(threads_);
  }
}

EventLoop::~EventLoop() = default;

util::SimTime EventLoop::now() const noexcept {
  const ExecContext* ctx = tls_ctx_;
  if (ctx != nullptr && ctx->loop == this) return ctx->now;
  return now_;
}

void EventLoop::set_lookahead(util::SimTime lookahead) {
  if (lookahead <= 0) throw std::invalid_argument("lookahead must be > 0");
  if (pending_ != 0)
    throw std::logic_error("set_lookahead with events pending");
  lookahead_ = lookahead;
  // Re-anchor the ring floor so already-elapsed time maps below it.
  if (backend_ == Backend::kSharded) ring_floor_bucket_ = bucket_of(now_);
}

std::uint32_t EventLoop::register_code(CodeHandler handler) {
  codes_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(codes_.size() - 1);
}

void EventLoop::schedule_callback(util::SimTime when, StrandId strand,
                                  Callback cb) {
  insert(when, strand, kCallbackCode, 0, 0, std::move(cb));
}

void EventLoop::post(util::SimTime when, StrandId strand, std::uint32_t code,
                     std::uint64_t a, std::uint64_t b) {
  insert(when, strand, code, a, b, Callback{});
}

void EventLoop::insert(util::SimTime when, StrandId strand, std::uint32_t code,
                       std::uint64_t a, std::uint64_t b, Callback cb) {
  ExecContext* ctx = tls_ctx_;
  if (ctx != nullptr && ctx->loop == this) {
    // Inside a parallel window: stage on this worker, materialize at the
    // merge barrier. The lookahead floor is what keeps windows causally
    // closed — a parallel event may not reach back inside its own horizon.
    if (when < ctx->min_child_when) {
      throw std::logic_error(
          "EventLoop: parallel-strand event scheduled a child closer than "
          "the lookahead window");
    }
    ctx->staged->push_back(Staged{when, strand, code, a, b, std::move(cb)});
    return;
  }
  when = std::max(when, now_);
  const std::uint32_t slot =
      events_.acquire(Event{when, next_seq_++, strand, code, a, b,
                            std::move(cb)});
  insert_entry(HeapEntry{when, events_.get(slot).seq, slot});
}

void EventLoop::insert_entry(HeapEntry entry) {
  ++pending_;
  if (backend_ == Backend::kSerial) {
    heap_push(entry);
    return;
  }
  const std::uint64_t bucket = bucket_of(entry.when);
  if (bucket_active_ && bucket == bucket_active_id_) {
    bucket_heap_.push_back(entry);
    std::push_heap(bucket_heap_.begin(), bucket_heap_.end(),
                   [](const HeapEntry& x, const HeapEntry& y) { return y < x; });
    return;
  }
  if (bucket >= ring_floor_bucket_ + ring_.size()) {
    overflow_.push_back(entry);
    std::push_heap(overflow_.begin(), overflow_.end(),
                   [](const HeapEntry& x, const HeapEntry& y) { return y < x; });
    return;
  }
  ring_slot(bucket).push_back(entry.slot);
}

// ---- 4-ary heap (serial backend) -------------------------------------------

void EventLoop::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!(heap_[i] < heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

EventLoop::HeapEntry EventLoop::heap_pop() {
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c)
      if (heap_[c] < heap_[best]) best = c;
    if (!(heap_[best] < heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

// ---- execution --------------------------------------------------------------

void EventLoop::dispatch(const Event& event) {
  if (event.code == kCallbackCode) {
    event.cb();
  } else {
    codes_[event.code](event.a, event.b);
  }
}

void EventLoop::execute(std::uint32_t slot) {
  Event& event = events_.get(slot);
  now_ = event.when;
  if (event.code == kCallbackCode) {
    // Move the callback out first: it may schedule (growing the slab) or
    // otherwise re-enter; the slot is released only after it returns.
    Callback cb = std::move(event.cb);
    events_.release(slot);
    --pending_;
    ++executed_;
    cb();
  } else {
    const std::uint32_t code = event.code;
    const std::uint64_t a = event.a;
    const std::uint64_t b = event.b;
    events_.release(slot);
    --pending_;
    ++executed_;
    codes_[code](a, b);
  }
}

bool EventLoop::step() {
  if (pending_ == 0) return false;
  if (backend_ == Backend::kSerial) {
    execute(heap_pop().slot);
    return true;
  }
  // Sharded: locate the earliest bucket, pull its minimum, put the rest
  // back. O(bucket) — step() is a test/debug convenience, run_until is the
  // production path.
  std::uint64_t bucket = 0;
  if (!find_next_bucket(kMaxTime, &bucket)) return false;
  auto& slots = ring_slot(bucket);
  std::size_t best = 0;
  for (std::size_t i = 1; i < slots.size(); ++i) {
    const Event& a = events_.get(slots[i]);
    const Event& b = events_.get(slots[best]);
    if (a.when != b.when ? a.when < b.when : a.seq < b.seq) best = i;
  }
  const std::uint32_t slot = slots[best];
  slots[best] = slots.back();
  slots.pop_back();
  execute(slot);
  return true;
}

void EventLoop::run() {
  stopped_.store(false, std::memory_order_relaxed);
  if (backend_ == Backend::kSerial) {
    while (!stop_requested() && step()) {
    }
    return;
  }
  run_until_sharded(kMaxTime);
}

void EventLoop::run_until(util::SimTime deadline) {
  stopped_.store(false, std::memory_order_relaxed);
  if (backend_ == Backend::kSerial) {
    run_until_serial(deadline);
  } else {
    run_until_sharded(deadline);
  }
  now_ = std::max(now_, deadline);
}

void EventLoop::run_until_serial(util::SimTime deadline) {
  while (!stop_requested() && !heap_.empty() &&
         heap_.front().when <= deadline) {
    execute(heap_pop().slot);
  }
}

// ---- sharded backend --------------------------------------------------------

void EventLoop::drain_overflow(std::uint64_t floor_bucket) {
  const auto cmp = [](const HeapEntry& x, const HeapEntry& y) { return y < x; };
  while (!overflow_.empty() &&
         bucket_of(overflow_.front().when) < floor_bucket + ring_.size()) {
    std::pop_heap(overflow_.begin(), overflow_.end(), cmp);
    const HeapEntry entry = overflow_.back();
    overflow_.pop_back();
    ring_slot(bucket_of(entry.when)).push_back(entry.slot);
  }
}

bool EventLoop::find_next_bucket(util::SimTime deadline,
                                 std::uint64_t* next_bucket) {
  if (pending_ == 0) return false;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  if (!overflow_.empty()) best = bucket_of(overflow_.front().when);
  for (std::uint64_t b = ring_floor_bucket_;
       b < ring_floor_bucket_ + ring_.size() && b < best; ++b) {
    if (!ring_slot(b).empty()) {
      best = b;
      break;
    }
  }
  if (best == std::numeric_limits<std::uint64_t>::max()) return false;
  if (static_cast<util::SimTime>(best) * lookahead_ > deadline) {
    // The earliest pending event's bucket starts past the deadline; no
    // event at or before the deadline exists (bucket start <= event time).
    return false;
  }
  ring_floor_bucket_ = best;
  drain_overflow(best);
  *next_bucket = best;
  return true;
}

void EventLoop::run_bucket_serial(std::uint64_t bucket,
                                  util::SimTime deadline) {
  const auto cmp = [](const HeapEntry& x, const HeapEntry& y) { return y < x; };
  auto& slots = ring_slot(bucket);
  bucket_heap_.clear();
  bucket_heap_.reserve(slots.size());
  for (const std::uint32_t slot : slots) {
    const Event& e = events_.get(slot);
    bucket_heap_.push_back(HeapEntry{e.when, e.seq, slot});
  }
  slots.clear();
  std::make_heap(bucket_heap_.begin(), bucket_heap_.end(), cmp);
  bucket_active_ = true;
  bucket_active_id_ = bucket;
  while (!bucket_heap_.empty() && !stop_requested()) {
    if (bucket_heap_.front().when > deadline) break;
    std::pop_heap(bucket_heap_.begin(), bucket_heap_.end(), cmp);
    const HeapEntry entry = bucket_heap_.back();
    bucket_heap_.pop_back();
    execute(entry.slot);
  }
  bucket_active_ = false;
  // Deadline/stop leftovers go back to the ring for the next pass.
  for (const HeapEntry& entry : bucket_heap_) slots.push_back(entry.slot);
  bucket_heap_.clear();
}

void EventLoop::run_bucket_parallel(std::vector<HeapEntry>& entries) {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(threads_ - 1);
  for (auto& order : group_order_) order.clear();
  std::size_t groups_used = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Event& e = events_.get(entries[i].slot);
    const auto group =
        static_cast<std::size_t>(static_cast<std::uint32_t>(e.strand)) %
        threads_;
    if (group_order_[group].empty()) ++groups_used;
    group_order_[group].push_back(static_cast<std::uint32_t>(i));
  }
  if (groups_used < 2) {
    // Everything maps to one worker: run inline, skip the barrier.
    for (const HeapEntry& entry : entries) execute(entry.slot);
    entries.clear();
    return;
  }

  for (std::size_t g = 0; g < threads_; ++g) {
    staged_[g].resize(group_order_[g].size());
    for (auto& staged : staged_[g]) staged.clear();
  }

  // ThreadPool tasks must not throw; park any contract violation (e.g. the
  // lookahead check in insert()) per group and rethrow it on the caller
  // after the batch — the loop is unusable past that point by contract, but
  // the error surfaces as an exception instead of a deadlocked pool.
  std::vector<std::exception_ptr> errors(threads_);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(groups_used);
  for (std::size_t g = 0; g < threads_; ++g) {
    if (group_order_[g].empty()) continue;
    tasks.push_back([this, g, &entries, &errors] {
      ExecContext ctx;
      ctx.loop = this;
      tls_ctx_ = &ctx;
      const auto& order = group_order_[g];
      try {
        for (std::size_t pos = 0; pos < order.size(); ++pos) {
          const Event& event = events_.get(entries[order[pos]].slot);
          ctx.now = event.when;
          ctx.min_child_when = event.when + lookahead_;
          ctx.staged = &staged_[g][pos];
          dispatch(event);
        }
      } catch (...) {
        errors[g] = std::current_exception();
      }
      tls_ctx_ = nullptr;
    });
  }
  pool_->run(std::move(tasks));
  ++parallel_windows_;
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);

  // Merge barrier: walk the window in global (when, seq) order and assign
  // child sequence numbers exactly as the serial backend would have —
  // parents in execution order, each parent's children in emission order.
  std::vector<std::size_t> cursor(threads_, 0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Event& e = events_.get(entries[i].slot);
    const auto group =
        static_cast<std::size_t>(static_cast<std::uint32_t>(e.strand)) %
        threads_;
    for (Staged& staged : staged_[group][cursor[group]]) {
      const std::uint32_t slot = events_.acquire(
          Event{staged.when, next_seq_++, staged.strand, staged.code,
                staged.a, staged.b, std::move(staged.cb)});
      insert_entry(HeapEntry{staged.when, events_.get(slot).seq, slot});
    }
    ++cursor[group];
  }
  now_ = entries.back().when;
  executed_ += entries.size();
  pending_ -= entries.size();
  for (const HeapEntry& entry : entries) events_.release(entry.slot);
  entries.clear();
}

void EventLoop::run_until_sharded(util::SimTime deadline) {
  std::uint64_t bucket = 0;
  while (!stop_requested() && find_next_bucket(deadline, &bucket)) {
    auto& slots = ring_slot(bucket);
    // Peek: a bucket with any serial-strand event (or too few events to
    // amortize a pool round trip) runs strictly serially.
    bool parallel_ok = threads_ > 1 && slots.size() >= kMinParallelWindow;
    util::SimTime min_when = kMaxTime;
    for (const std::uint32_t slot : slots) {
      const Event& e = events_.get(slot);
      min_when = std::min(min_when, e.when);
      if (e.strand < 0) parallel_ok = false;
    }
    if (min_when > deadline) break;  // earliest work lies past the deadline
    if (!parallel_ok) {
      run_bucket_serial(bucket, deadline);
      continue;
    }
    window_.clear();
    window_.reserve(slots.size());
    for (const std::uint32_t slot : slots) {
      const Event& e = events_.get(slot);
      window_.push_back(HeapEntry{e.when, e.seq, slot});
    }
    slots.clear();
    std::sort(window_.begin(), window_.end());
    // Deadline may bisect the bucket: the tail past it goes back.
    auto past = std::partition_point(
        window_.begin(), window_.end(),
        [deadline](const HeapEntry& e) { return e.when <= deadline; });
    if (past != window_.end()) {
      for (auto it = past; it != window_.end(); ++it)
        slots.push_back(it->slot);
      window_.erase(past, window_.end());
    }
    if (window_.empty()) break;
    if (window_.size() < kMinParallelWindow) {
      for (const HeapEntry& entry : window_) execute(entry.slot);
      window_.clear();
      continue;
    }
    run_bucket_parallel(window_);
  }
}

}  // namespace bcwan::p2p

#include "p2p/event_loop.hpp"

#include <algorithm>

namespace bcwan::p2p {

void EventLoop::at(util::SimTime when, Callback cb) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(cb)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires a const_cast dance; copy the
  // small fields and move the callback.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.when;
  event.cb();
  return true;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void EventLoop::run_until(util::SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace bcwan::p2p

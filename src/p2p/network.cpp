#include "p2p/network.hpp"

#include <cmath>
#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace bcwan::p2p {

namespace {

std::uint64_t pair_key(HostId a, HostId b) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return lo << 32 | hi;
}

}  // namespace

util::SimTime LatencyModel::sample(util::Rng& rng) const {
  const double mu = std::log(median_ms);
  const double ms = std::max(floor_ms, rng.lognormal(mu, sigma));
  return util::from_millis(ms);
}

SimNet::SimNet(EventLoop& loop, std::uint64_t seed)
    : loop_(loop), seed_(seed) {
  arrive_code_ = loop_.register_code(
      [this](std::uint64_t slot, std::uint64_t b) { on_arrive(slot, b); });
  process_code_ = loop_.register_code(
      [this](std::uint64_t slot, std::uint64_t b) { on_process(slot, b); });
}

HostId SimNet::add_host(std::string name) {
  hosts_.push_back(Host{std::move(name), nullptr, 0,
                        1 * util::kMillisecond, false});
  return static_cast<HostId>(hosts_.size() - 1);
}

void SimNet::set_latency(HostId a, HostId b, const LatencyModel& model) {
  pair_latency_[pair_key(a, b)] = model;
}

void SimNet::set_processing_time(HostId id, util::SimTime t) {
  hosts_.at(static_cast<std::size_t>(id)).processing_time = t;
}

void SimNet::set_handler(HostId id,
                         std::function<void(const Message&)> handler) {
  hosts_.at(static_cast<std::size_t>(id)).handler = std::move(handler);
}

util::SimTime SimNet::latency_between(HostId a, HostId b) {
  if (a == b) return 0;
  const std::uint64_t key = pair_key(a, b);
  const auto it = pair_latency_.find(key);
  const LatencyModel& model =
      it != pair_latency_.end() ? it->second : default_latency_;
  auto [rng_it, inserted] =
      pair_rng_.try_emplace(key, util::Rng::substream(seed_, key));
  (void)inserted;
  return model.sample(rng_it->second);
}

void SimNet::send(HostId from, HostId to, Message msg) {
  auto& src = hosts_.at(static_cast<std::size_t>(from));
  auto& dst = hosts_.at(static_cast<std::size_t>(to));
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("bcwan_p2p_messages_out_total", "type", msg.type,
                "Messages submitted to the federation backbone by type")
        .add();
    reg.counter("bcwan_p2p_bytes_out_total",
                "Payload bytes submitted to the federation backbone")
        .add(msg.payload.size());
    if (src.partitioned || dst.partitioned) {
      reg.counter("bcwan_p2p_messages_dropped_total",
                  "Messages dropped at a partitioned endpoint")
          .add();
    }
  }
  if (src.partitioned || dst.partitioned) return;  // dropped on the floor

  msg.from = from;
  const util::SimTime arrival = loop_.now() + latency_between(from, to);
  const auto slot = inflight_.acquire(Inflight{std::move(msg), to});
  loop_.post(arrival, kSerialStrand, arrive_code_, slot);
}

void SimNet::on_arrive(std::uint64_t slot, std::uint64_t) {
  // The daemon processes messages serially: a stalled or busy daemon makes
  // this message wait.
  const auto idx = static_cast<std::uint32_t>(slot);
  Host& host = hosts_.at(static_cast<std::size_t>(inflight_.get(idx).to));
  const util::SimTime start = std::max(loop_.now(), host.busy_until);
  host.busy_until = start + host.processing_time;
  loop_.post(start, kSerialStrand, process_code_, slot);
}

void SimNet::on_process(std::uint64_t slot, std::uint64_t) {
  const auto idx = static_cast<std::uint32_t>(slot);
  Inflight& inflight = inflight_.get(idx);
  Host& h = hosts_.at(static_cast<std::size_t>(inflight.to));
  if (!h.partitioned) {
    ++delivered_;
    if (h.handler) h.handler(inflight.msg);
  }
  inflight_.release(idx);
}

void SimNet::broadcast(HostId from, const Message& msg) {
  for (HostId to = 0; to < static_cast<HostId>(hosts_.size()); ++to) {
    if (to == from) continue;
    send(from, to, msg);  // Message copy shares the payload buffer
  }
}

void SimNet::stall(HostId id, util::SimTime duration) {
  Host& host = hosts_.at(static_cast<std::size_t>(id));
  host.busy_until = std::max(host.busy_until, loop_.now()) + duration;
}

void SimNet::set_partitioned(HostId id, bool partitioned) {
  hosts_.at(static_cast<std::size_t>(id)).partitioned = partitioned;
}

}  // namespace bcwan::p2p

// A federation host's blockchain daemon: chainstate + mempool + gossip.
//
// This is the paper's per-gateway "Blockchain module" (the Multichain
// daemon wrapped by the Golang BcWAN daemon, §5.1). Transactions and blocks
// flood over the SimNet; watcher hooks let the BcWAN agents react to
// mempool arrivals (the fast path of the fair exchange) and to block
// connections. The Fig. 6 effect is reproduced by `block_verification_stall`:
// each block arrival freezes the whole daemon for a sampled verification
// time, so every queued message — including DELIVER requests and gossip —
// waits behind it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "p2p/transport.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"

namespace bcwan::p2p {

class EventLoop;

struct ChainNodeConfig {
  /// Fig. 6 mode: stall the daemon on every block arrival.
  bool block_verification_stall = false;
  /// Lognormal stall duration (seconds); calibrated so the with-verification
  /// exchange latency lands in the paper's ~30 s regime.
  double stall_median_s = 9.0;
  double stall_sigma = 0.5;
  /// CPU charged per transaction validated into the mempool.
  util::SimTime tx_processing = 4 * util::kMillisecond;
  /// CPU charged per block connected (besides any stall).
  util::SimTime block_processing = 20 * util::kMillisecond;
  /// Durable chainstate directory. Empty (the default) keeps the daemon
  /// fully in-memory; non-empty opens-or-recovers a ChainStore there and
  /// every accepted block is logged before it is relayed.
  std::string store_dir;
  /// fsync the block log on every append (see StoreOptions).
  bool store_fsync = true;
  /// Blocks between automatic chainstate snapshots.
  std::uint64_t snapshot_interval = 16;
  /// Write differential snapshots (base + delta chain) instead of a full
  /// base per interval (see StoreOptions::incremental_snapshots).
  bool incremental_snapshots = true;
  /// Deltas between compacting base snapshots.
  std::uint64_t compact_every = 8;
  /// Spent-coin undo retention depth; negative keeps everything.
  int undo_prune_depth = -1;
  /// Decode threads for recovery replay; negative = hardware concurrency.
  int replay_threads = -1;
};

class ChainNode {
 public:
  /// Transport-agnostic form: `net` is either the SimNet backend or a real
  /// TcpTransport; the node's timers (sync back-off) read `net.now()`.
  ChainNode(Transport& net, HostId host, const chain::ChainParams& params,
            ChainNodeConfig config, std::uint64_t seed);
  /// Legacy simulator signature — the loop argument is implied by the
  /// SimNet and kept only so existing scenario/test call sites read
  /// naturally.
  ChainNode(EventLoop& loop, Transport& net, HostId host,
            const chain::ChainParams& params, ChainNodeConfig config,
            std::uint64_t seed)
      : ChainNode(net, host, params, std::move(config), seed) {
    (void)loop;
  }

  HostId host() const noexcept { return host_; }
  chain::Blockchain& chain() noexcept { return chain_; }
  const chain::Blockchain& chain() const noexcept { return chain_; }
  chain::Mempool& mempool() noexcept { return mempool_; }
  const chain::Mempool& mempool() const noexcept { return mempool_; }

  /// Local submission by a co-located agent: validate into the mempool and
  /// gossip on success.
  chain::MempoolAcceptResult submit_tx(const chain::Transaction& tx);

  /// Local block submission (the master node's miner).
  chain::AcceptBlockResult submit_block(const chain::Block& block);

  /// Entry point for all SimNet traffic to this host. "tx"/"block" messages
  /// are consumed; anything else goes to the app handler (BcWAN daemon
  /// protocol).
  void handle_message(const Message& msg);

  void set_app_handler(std::function<void(const Message&)> handler) {
    app_handler_ = std::move(handler);
  }

  /// Fires whenever a transaction enters this node's mempool (local or
  /// gossiped) — the fair-exchange watchers hang off this. Watchers cannot
  /// be removed: whatever they capture must outlive the node's event
  /// processing.
  void add_tx_watcher(std::function<void(const chain::Transaction&)> watcher) {
    tx_watchers_.push_back(std::move(watcher));
  }

  /// Fires whenever a block joins the active chain here.
  void add_block_watcher(std::function<void(const chain::Block&)> watcher) {
    block_watchers_.push_back(std::move(watcher));
  }

  /// Fires after a reorganization completed on this node: the losing branch
  /// is disconnected and its transactions resurrected before the call.
  /// Chain-derived caches (the gateway directory) must resync here —
  /// anything ingested from a disconnected block would otherwise survive
  /// with a dead height. Runs before the block watchers for the winning tip.
  void add_reorg_watcher(std::function<void()> watcher) {
    reorg_watchers_.push_back(
        [w = std::move(watcher)](int /*fork_height*/) { w(); });
  }

  /// Reorg watcher that also learns the fork height — the height of the
  /// last block common to both branches (chain().last_fork_height()).
  /// Indexed caches unwind to this height instead of rescanning.
  void add_reorg_watcher(std::function<void(int)> watcher) {
    reorg_watchers_.push_back(std::move(watcher));
  }

  /// Fires at the end of every successful restart(), after recovery and
  /// resurrection. Chain-derived caches rebuild-or-reload here: the reorg
  /// watchers alone cannot cover a restart, because replay may land on a
  /// different branch without ever reporting a reorg.
  void add_restart_watcher(std::function<void()> watcher) {
    restart_watchers_.push_back(std::move(watcher));
  }

  /// Fires for every transaction *message* this host receives, before and
  /// regardless of mempool acceptance — an on-the-wire tap. The §6 attacker
  /// uses this to pull eSk out of a redeem transaction its own mempool
  /// would reject.
  void set_raw_tx_tap(std::function<void(const chain::Transaction&)> tap) {
    raw_tx_tap_ = std::move(tap);
  }

  std::uint64_t txs_seen() const noexcept { return txs_seen_; }
  std::uint64_t blocks_seen() const noexcept { return blocks_seen_; }
  /// Headers-first-style catch-up requests issued / blocks served to peers.
  std::uint64_t sync_requests() const noexcept { return sync_requests_; }
  std::uint64_t sync_blocks_served() const noexcept { return sync_served_; }

  // -- Durability & crash-stop (chaos layer / daemon lifecycle). --

  /// True when this daemon journals to disk.
  bool persistent() const noexcept { return !config_.store_dir.empty(); }
  /// The open store; nullptr for in-memory nodes and while crashed.
  store::ChainStore* store() noexcept { return store_.get(); }

  /// Crash-stop: the process dies mid-whatever. All volatile state
  /// (mempool, orphan pools, gossip dedupe) is lost and the store file
  /// handle closes without any final snapshot — exactly what SIGKILL
  /// leaves behind. The node ignores all traffic until restart().
  void crash();
  /// Come back up. A persistent node re-opens its store and runs real disk
  /// recovery (snapshot + log replay + torn-tail truncation); an in-memory
  /// node resets to genesis. Both rely on gossip catch-up sync for
  /// whatever the disk doesn't cover. Returns false — node stays down —
  /// only if a persistent store refuses to open (mid-file corruption).
  bool restart();
  bool crashed() const noexcept { return crashed_; }
  /// Stats from the most recent open-or-recover (construction or restart).
  const store::RecoveryStats& last_recovery() const noexcept {
    return last_recovery_;
  }

  /// Chaos hook: shear `bytes` off the store's block log tail, emulating a
  /// torn write. Only meaningful while crashed. Returns bytes removed.
  std::uint64_t tear_store_tail(std::uint64_t bytes);

 private:
  bool open_store_and_recover(std::string* error);
  void relay_tx(const chain::Transaction& tx);
  void relay_block(const chain::Block& block);
  void accept_gossip_tx(const chain::Transaction& tx);
  void accept_gossip_block(const chain::Block& block, HostId from);
  void drain_orphan_txs();
  /// Re-accept and relay the losing branch's transactions after a reorg.
  void resurrect_disconnected();
  /// Ask `peer` for the blocks between our chains (sent when a gossiped
  /// block's parent is unknown — we missed history during a partition,
  /// crash, or side-branch reorg that was never relayed).
  void request_sync(HostId peer);
  /// Answer a "getblocks" locator: stream our active chain from the highest
  /// locator hash we recognise up to our tip.
  void serve_sync(HostId peer, const util::Bytes& locator);
  util::Bytes build_locator() const;

  Transport& net_;
  HostId host_;
  ChainNodeConfig config_;
  util::Rng rng_;
  std::unique_ptr<store::ChainStore> store_;
  chain::Blockchain chain_;
  chain::Mempool mempool_;
  bool crashed_ = false;
  store::RecoveryStats last_recovery_;
  std::function<void(const Message&)> app_handler_;
  std::function<void(const chain::Transaction&)> raw_tx_tap_;
  std::vector<std::function<void(const chain::Transaction&)>> tx_watchers_;
  std::vector<std::function<void(const chain::Block&)>> block_watchers_;
  std::vector<std::function<void(int)>> reorg_watchers_;
  std::vector<std::function<void()>> restart_watchers_;
  std::unordered_set<chain::Hash256, chain::Hash256Hasher> seen_txs_;
  std::unordered_set<chain::Hash256, chain::Hash256Hasher> seen_blocks_;
  // Transactions whose inputs are not yet known (gossip reordered a chain
  // of unconfirmed spends); retried after every tx/block acceptance, as
  // Bitcoin's mapOrphanTransactions does.
  std::vector<chain::Transaction> orphan_txs_;
  bool draining_orphans_ = false;
  util::SimTime last_sync_request_ = -(1 << 30);
  std::uint64_t txs_seen_ = 0;
  std::uint64_t blocks_seen_ = 0;
  std::uint64_t sync_requests_ = 0;
  std::uint64_t sync_served_ = 0;
};

}  // namespace bcwan::p2p

// Transport — the federation backbone abstraction.
//
// Everything above this interface (ChainNode gossip, the BcWAN daemon
// protocol, catch-up sync) is written against five verbs: deliver my
// handler, send, broadcast, charge CPU, and tell the time. Two backends
// implement them:
//
//   * SimNet (p2p/network.hpp) — the deterministic discrete-event
//     simulator. `now()` is virtual time from the EventLoop; `stall()`
//     models the daemon's serial message processing (Fig. 6).
//   * TcpTransport (p2p/tcp_transport.hpp) — epoll-based non-blocking TCP
//     between real processes. `now()` is the monotonic clock; `stall()` is
//     a no-op because real validation burns real CPU on the real thread.
//
// The timer source rides on `now()`: sim code sees virtual microseconds,
// daemons see wall-clock microseconds, and rate-limit logic (e.g. the
// getblocks back-off in ChainNode) works unchanged against either.
#pragma once

#include <functional>

#include "p2p/message.hpp"
#include "util/time.hpp"

namespace bcwan::p2p {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Install the message sink for host `id`. SimNet hosts many simulated
  /// daemons; a TcpTransport serves exactly one (its own HostId).
  virtual void set_handler(HostId id,
                           std::function<void(const Message&)> handler) = 0;

  /// Queue a message from `from` to `to`. Delivery is asynchronous and
  /// unreliable-by-contract: partitions (sim) or dead sockets (TCP) drop
  /// traffic silently, and the protocol layer heals via catch-up sync.
  virtual void send(HostId from, HostId to, Message msg) = 0;

  /// Send to every known peer except `from`. Payload buffers are shared
  /// across the fan-out (SharedPayload refcount / one encoded TCP frame).
  virtual void broadcast(HostId from, const Message& msg) = 0;

  /// Charge `duration` of per-daemon serial processing time to host `id`.
  /// Only meaningful under simulation; a real daemon's CPU time is real.
  virtual void stall(HostId id, util::SimTime duration) = 0;

  /// Timer source in microseconds: virtual time under SimNet, monotonic
  /// wall-clock time under TcpTransport.
  virtual util::SimTime now() const = 0;
};

}  // namespace bcwan::p2p

#include "p2p/message.hpp"

#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace bcwan::p2p {

namespace {

struct InternTable {
  std::shared_mutex mutex;
  std::vector<std::unique_ptr<std::string>> names;  // address-stable
  std::unordered_map<std::string_view, std::uint16_t> ids;
};

InternTable& table() {
  static InternTable t;
  return t;
}

}  // namespace

std::uint16_t MsgType::intern(std::string_view name) {
  InternTable& t = table();
  {
    std::shared_lock lock(t.mutex);
    const auto it = t.ids.find(name);
    if (it != t.ids.end()) return it->second;
  }
  std::unique_lock lock(t.mutex);
  const auto it = t.ids.find(name);  // raced with another writer?
  if (it != t.ids.end()) return it->second;
  if (t.names.size() > 0xFFFF)
    throw std::length_error("MsgType: intern table full");
  const auto id = static_cast<std::uint16_t>(t.names.size());
  t.names.push_back(std::make_unique<std::string>(name));
  t.ids.emplace(*t.names.back(), id);
  return id;
}

const std::string& MsgType::str() const noexcept {
  InternTable& t = table();
  std::shared_lock lock(t.mutex);
  return *t.names[id_];
}

const std::shared_ptr<const util::Bytes>& SharedPayload::empty_buffer() {
  static const std::shared_ptr<const util::Bytes> empty =
      std::make_shared<const util::Bytes>();
  return empty;
}

}  // namespace bcwan::p2p

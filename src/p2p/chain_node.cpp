#include "p2p/chain_node.hpp"

#include <cmath>
namespace bcwan::p2p {

using chain::Block;
using chain::Transaction;

ChainNode::ChainNode(EventLoop& loop, SimNet& net, HostId host,
                     const chain::ChainParams& params, ChainNodeConfig config,
                     std::uint64_t seed)
    : loop_(loop),
      net_(net),
      host_(host),
      config_(config),
      rng_(seed),
      chain_(params),
      mempool_(chain_.params()) {
  net_.set_handler(host_, [this](const Message& msg) { handle_message(msg); });
}

chain::MempoolAcceptResult ChainNode::submit_tx(const Transaction& tx) {
  const auto result = mempool_.accept(tx, chain_.utxo(), chain_.height() + 1);
  if (result.ok()) {
    seen_txs_.insert(tx.txid());
    ++txs_seen_;
    for (const auto& watcher : tx_watchers_) watcher(tx);
    relay_tx(tx);
    drain_orphan_txs();
  }
  return result;
}

chain::AcceptBlockResult ChainNode::submit_block(const Block& block) {
  const auto result = chain_.accept_block(block);
  if (result == chain::AcceptBlockResult::kConnected ||
      result == chain::AcceptBlockResult::kReorganized) {
    seen_blocks_.insert(block.hash());
    ++blocks_seen_;
    mempool_.remove_confirmed(block);
    for (const auto& watcher : block_watchers_) watcher(block);
    relay_block(block);
  }
  return result;
}

void ChainNode::handle_message(const Message& msg) {
  if (msg.type == "tx") {
    const auto tx = Transaction::deserialize(msg.payload);
    if (tx) {
      if (raw_tx_tap_) raw_tx_tap_(*tx);
      accept_gossip_tx(*tx);
    }
    return;
  }
  if (msg.type == "block") {
    const auto block = Block::deserialize(msg.payload);
    if (block) accept_gossip_block(*block);
    return;
  }
  if (app_handler_) app_handler_(msg);
}

void ChainNode::accept_gossip_tx(const Transaction& tx) {
  const chain::Hash256 txid = tx.txid();
  if (seen_txs_.count(txid)) return;
  // Charge validation CPU: everything behind this message waits.
  net_.stall(host_, config_.tx_processing);
  const auto result = mempool_.accept(tx, chain_.utxo(), chain_.height() + 1);
  if (!result.ok()) {
    // Gossip can reorder a chain of unconfirmed spends; park the child
    // until its parent shows up.
    if (result.error == chain::MempoolError::kInvalid &&
        result.validation.error == chain::TxError::kMissingInput &&
        orphan_txs_.size() < 1000) {
      orphan_txs_.push_back(tx);
    }
    return;
  }
  seen_txs_.insert(txid);
  ++txs_seen_;
  for (const auto& watcher : tx_watchers_) watcher(tx);
  relay_tx(tx);
  drain_orphan_txs();
}

void ChainNode::drain_orphan_txs() {
  if (draining_orphans_ || orphan_txs_.empty()) return;
  draining_orphans_ = true;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::vector<Transaction> still_orphans;
    for (const Transaction& orphan : orphan_txs_) {
      const auto result =
          mempool_.accept(orphan, chain_.utxo(), chain_.height() + 1);
      if (result.ok()) {
        seen_txs_.insert(orphan.txid());
        ++txs_seen_;
        for (const auto& watcher : tx_watchers_) watcher(orphan);
        relay_tx(orphan);
        progressed = true;
      } else if (result.error == chain::MempoolError::kInvalid &&
                 result.validation.error == chain::TxError::kMissingInput) {
        still_orphans.push_back(orphan);
      }
      // Other failures (conflict, already known) drop the orphan for good.
    }
    orphan_txs_ = std::move(still_orphans);
  }
  draining_orphans_ = false;
}

void ChainNode::accept_gossip_block(const Block& block) {
  const chain::Hash256 hash = block.hash();
  if (seen_blocks_.count(hash)) return;

  // Block verification cost. In Fig. 6 mode the daemon freezes for a long
  // sampled verification period on *every* block arrival.
  net_.stall(host_, config_.block_processing);
  if (config_.block_verification_stall) {
    const double stall_s =
        rng_.lognormal(std::log(config_.stall_median_s), config_.stall_sigma);
    net_.stall(host_, util::from_seconds(stall_s));
  }

  const auto result = chain_.accept_block(block);
  if (result == chain::AcceptBlockResult::kInvalid ||
      result == chain::AcceptBlockResult::kDuplicate) {
    return;
  }
  seen_blocks_.insert(hash);
  ++blocks_seen_;
  if (result == chain::AcceptBlockResult::kConnected ||
      result == chain::AcceptBlockResult::kReorganized) {
    mempool_.remove_confirmed(block);
    for (const auto& watcher : block_watchers_) watcher(block);
    drain_orphan_txs();
  }
  relay_block(block);
}

void ChainNode::relay_tx(const Transaction& tx) {
  net_.broadcast(host_, Message{"tx", tx.serialize(), host_});
}

void ChainNode::relay_block(const Block& block) {
  net_.broadcast(host_, Message{"block", block.serialize(), host_});
}

}  // namespace bcwan::p2p
